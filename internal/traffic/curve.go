// Package traffic implements the paper's traffic model (Section 3):
// leaky-bucket constrained sources, traffic constraint functions
// (Definition 2) represented as concave piecewise-linear curves, and the
// curve algebra needed by the delay analysis — scaling by a flow count
// (Theorem 1), shifting by upstream delay (H(I + Y)), summation across
// input links, and the busy-period maximization sup_{I>0}(F(I) − C·I)
// of Equation (3).
//
// All quantities are plain float64 in SI-consistent units: bits for
// traffic amounts and burst sizes, bits/second for rates and capacities,
// seconds for time intervals and delays.
package traffic

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Line is one affine piece a + b·I of a concave curve.
type Line struct {
	A float64 // intercept, bits
	B float64 // slope, bits/second
}

// Eval returns a + b·t.
func (l Line) Eval(t float64) float64 { return l.A + l.B*t }

// Curve is a concave, nondecreasing, piecewise-linear traffic constraint
// function F(I) = min_i (A_i + B_i·I) for I > 0, with F(0) = 0 by
// convention. The canonical representation keeps lines sorted by strictly
// decreasing slope with strictly increasing intercept; dominated lines are
// removed. The zero value is the identically-zero curve.
type Curve struct {
	lines []Line
}

// NewCurve builds a curve as the lower envelope (pointwise minimum) of the
// given lines. At least one line is required. Lines with negative slope or
// negative intercept are rejected: traffic constraint functions are
// nonnegative and nondecreasing.
func NewCurve(lines ...Line) (Curve, error) {
	if len(lines) == 0 {
		return Curve{}, fmt.Errorf("traffic: curve needs at least one line")
	}
	for _, l := range lines {
		if l.A < 0 || l.B < 0 || math.IsNaN(l.A) || math.IsNaN(l.B) || math.IsInf(l.A, 0) || math.IsInf(l.B, 0) {
			return Curve{}, fmt.Errorf("traffic: invalid line {A:%g B:%g}", l.A, l.B)
		}
	}
	return Curve{lines: canonical(lines)}, nil
}

// MustCurve is NewCurve that panics on error, for tests and constants.
func MustCurve(lines ...Line) Curve {
	c, err := NewCurve(lines...)
	if err != nil {
		panic(err)
	}
	return c
}

// canonical sorts by decreasing slope (increasing intercept on ties) and
// drops lines that never attain the minimum.
func canonical(in []Line) []Line {
	ls := append([]Line(nil), in...)
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].B != ls[j].B {
			return ls[i].B > ls[j].B
		}
		return ls[i].A < ls[j].A
	})
	// Remove equal-slope duplicates (keep smallest intercept).
	uniq := ls[:0]
	for _, l := range ls {
		if len(uniq) > 0 && uniq[len(uniq)-1].B == l.B {
			continue
		}
		uniq = append(uniq, l)
	}
	ls = uniq
	// Lower-envelope scan: a line is dominated if it never lies strictly
	// below the envelope of its neighbors. With slopes strictly
	// decreasing, line j between i and k is useful iff the breakpoint of
	// (i,j) precedes the breakpoint of (j,k).
	var env []Line
	for _, l := range ls {
		for len(env) > 0 {
			top := env[len(env)-1]
			if l.A <= top.A {
				// New line is everywhere ≤ top (smaller slope, ≤ intercept).
				env = env[:len(env)-1]
				continue
			}
			if len(env) >= 2 {
				prev := env[len(env)-2]
				// Breakpoint prev/top vs prev/l: if l cuts below top before
				// top ever matters, top is dominated.
				bt := intersect(prev, top)
				bl := intersect(prev, l)
				if bl <= bt {
					env = env[:len(env)-1]
					continue
				}
			}
			break
		}
		env = append(env, l)
	}
	return env
}

// intersect returns the t at which two lines of different slope meet.
func intersect(hi, lo Line) float64 {
	return (lo.A - hi.A) / (hi.B - lo.B)
}

// IsZero reports whether the curve is identically zero.
func (c Curve) IsZero() bool { return len(c.lines) == 0 }

// Lines returns a copy of the canonical line set.
func (c Curve) Lines() []Line { return append([]Line(nil), c.lines...) }

// Eval returns F(t). F(0) = 0; for t > 0 it is the lower envelope value.
func (c Curve) Eval(t float64) float64 {
	if t <= 0 || len(c.lines) == 0 {
		return 0
	}
	v := math.Inf(1)
	for _, l := range c.lines {
		if y := l.Eval(t); y < v {
			v = y
		}
	}
	return v
}

// Breakpoints returns the interval lengths at which the active line of the
// envelope changes, in increasing order. A curve with a single line has
// none.
func (c Curve) Breakpoints() []float64 {
	if len(c.lines) < 2 {
		return nil
	}
	bps := make([]float64, 0, len(c.lines)-1)
	for i := 0; i+1 < len(c.lines); i++ {
		bps = append(bps, intersect(c.lines[i], c.lines[i+1]))
	}
	return bps
}

// Scale returns n·F, the constraint function of n homogeneous flows
// sharing the same bound (Theorem 1 aggregation). n must be nonnegative;
// n = 0 yields the zero curve.
func (c Curve) Scale(n float64) Curve {
	if n < 0 {
		panic("traffic: negative scale")
	}
	if n == 0 || len(c.lines) == 0 {
		return Curve{}
	}
	out := make([]Line, len(c.lines))
	for i, l := range c.lines {
		out[i] = Line{A: n * l.A, B: n * l.B}
	}
	return Curve{lines: out}
}

// Shift returns the curve G(I) = F(I + y): the constraint function of the
// same traffic after experiencing up to y seconds of upstream queueing
// (Theorem 2.1 of Cruz, used in the proof of Theorem 1). y must be
// nonnegative.
func (c Curve) Shift(y float64) Curve {
	if y < 0 {
		panic("traffic: negative shift")
	}
	if y == 0 || len(c.lines) == 0 {
		return c
	}
	out := make([]Line, len(c.lines))
	for i, l := range c.lines {
		out[i] = Line{A: l.A + l.B*y, B: l.B}
	}
	// Shifting preserves slope order but can make early steep lines
	// dominated; re-canonicalize.
	return Curve{lines: canonical(out)}
}

// Add returns the pointwise sum F + G, again concave piecewise-linear.
func (c Curve) Add(o Curve) Curve {
	if c.IsZero() {
		return o
	}
	if o.IsZero() {
		return c
	}
	return Sum(c, o)
}

// Sum returns the pointwise sum of the given curves.
func Sum(curves ...Curve) Curve {
	var nonzero []Curve
	for _, c := range curves {
		if !c.IsZero() {
			nonzero = append(nonzero, c)
		}
	}
	if len(nonzero) == 0 {
		return Curve{}
	}
	if len(nonzero) == 1 {
		return nonzero[0]
	}
	// Collect the union of breakpoints. Between consecutive breakpoints
	// every summand is affine, so the sum is affine; reconstruct each
	// region's line from the summed slope and the summed value at the
	// region's start.
	var bps []float64
	for _, c := range nonzero {
		bps = append(bps, c.Breakpoints()...)
	}
	sort.Float64s(bps)
	bps = dedupFloats(bps)

	regionStarts := append([]float64{0}, bps...)
	lines := make([]Line, 0, len(regionStarts))
	for _, t0 := range regionStarts {
		// Representative point strictly inside the region.
		slope := 0.0
		val0 := 0.0 // value of sum at t0 (limit from the right)
		for _, c := range nonzero {
			l := c.activeLineAt(t0)
			slope += l.B
			val0 += l.Eval(t0)
		}
		lines = append(lines, Line{A: val0 - slope*t0, B: slope})
	}
	return Curve{lines: canonical(lines)}
}

// activeLineAt returns the envelope line active on the region starting at
// t0 (i.e. for t slightly greater than t0).
func (c Curve) activeLineAt(t0 float64) Line {
	best := c.lines[0]
	for _, l := range c.lines[1:] {
		// At equal values prefer the smaller slope (active to the right).
		vb, vl := best.Eval(t0), l.Eval(t0)
		const rel = 1e-12
		if vl < vb*(1-rel)-rel {
			best = l
		} else if math.Abs(vl-vb) <= rel*math.Max(1, math.Abs(vb)) && l.B < best.B {
			best = l
		}
	}
	return best
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		if len(out) > 0 && x-out[len(out)-1] <= 1e-15*math.Max(1, x) {
			continue
		}
		out = append(out, x)
	}
	return out
}

// MaxBacklog returns sup_{I>0} (F(I) − rate·I) together with the I at
// which it is attained — the busy-period term of the delay formula
// Equation (3) (divided by C it is the worst-case delay). For a stable
// system the long-run slope of F must be below rate; otherwise the
// supremum is unbounded and ok is false.
func (c Curve) MaxBacklog(rate float64) (backlog, at float64, ok bool) {
	if rate <= 0 {
		return 0, 0, false
	}
	if len(c.lines) == 0 {
		return 0, 0, true
	}
	last := c.lines[len(c.lines)-1]
	if last.B >= rate {
		return math.Inf(1), math.Inf(1), false
	}
	// The objective F(I) − rate·I is concave; its maximum over I ≥ 0 is
	// attained at I = 0 (value 0, as F(0)=0) or at a breakpoint of F.
	best, bestAt := 0.0, 0.0
	for _, bp := range c.Breakpoints() {
		if v := c.Eval(bp) - rate*bp; v > best {
			best, bestAt = v, bp
		}
	}
	// Also the right limit at 0: sup over I→0+ of F(I)−rate·I → 0 when the
	// first line passes through origin, or jumps to A of the flattest line
	// if all lines have positive intercept. Concavity makes the breakpoint
	// scan sufficient for curves with a through-origin first line; handle
	// the pure-burst case (single line with A>0) explicitly.
	if len(c.lines) == 1 && c.lines[0].A > 0 {
		// F(I) − rate·I decreasing; sup at I→0+ equals A.
		best, bestAt = c.lines[0].A, 0
	} else if len(c.lines) >= 1 && c.lines[0].A > 0 {
		// First (steepest) line does not pass through the origin: the
		// supremum could be at I→0+ with value c.lines[0].A.
		if c.lines[0].A > best {
			best, bestAt = c.lines[0].A, 0
		}
	}
	return best, bestAt, true
}

// SustainedRate returns the long-run arrival rate of the curve: the slope
// of its flattest line (0 for the zero curve).
func (c Curve) SustainedRate() float64 {
	if len(c.lines) == 0 {
		return 0
	}
	return c.lines[len(c.lines)-1].B
}

// BurstAtRate returns the effective burst of the flattest line (its
// intercept), i.e. lim_{I→∞} F(I) − SustainedRate()·I.
func (c Curve) BurstAtRate() float64 {
	if len(c.lines) == 0 {
		return 0
	}
	return c.lines[len(c.lines)-1].A
}

// String renders the curve for diagnostics.
func (c Curve) String() string {
	if len(c.lines) == 0 {
		return "Curve{0}"
	}
	var b strings.Builder
	b.WriteString("Curve{min[")
	for i, l := range c.lines {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.6g+%.6g·I", l.A, l.B)
	}
	b.WriteString("]}")
	return b.String()
}
