package traffic_test

import (
	"fmt"

	"ubac/internal/traffic"
)

// A leaky-bucket source's constraint function and its worst-case backlog
// at a 1 Mb/s server.
func ExampleLeakyBucket_Curve() {
	lb := traffic.LeakyBucket{Burst: 640, Rate: 32e3}
	curve := lb.Curve(100e6)
	backlog, at, ok := curve.MaxBacklog(1e6)
	fmt.Printf("ok=%v backlog=%.1f bits at I=%.2g s\n", ok, backlog, at)
	// Output: ok=true backlog=633.8 bits at I=6.4e-06 s
}

// Aggregating and jittering curves, as the delay analysis does.
func ExampleCurve_Shift() {
	lb := traffic.LeakyBucket{Burst: 640, Rate: 32e3}
	// Ten flows, each already delayed by up to 5 ms upstream.
	agg := lb.JitteredCurve(100e6, 5e-3).Scale(10)
	fmt.Printf("%.0f bits over 100 ms\n", agg.Eval(0.1))
	// Output: 40000 bits over 100 ms
}
