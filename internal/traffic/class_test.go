package traffic

import (
	"math"
	"testing"
)

func TestLeakyBucketValidate(t *testing.T) {
	good := LeakyBucket{Burst: 640, Rate: 32e3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid bucket rejected: %v", err)
	}
	bad := []LeakyBucket{
		{Burst: -1, Rate: 1},
		{Burst: 1, Rate: 0},
		{Burst: 1, Rate: -5},
		{Burst: math.NaN(), Rate: 1},
		{Burst: 1, Rate: math.Inf(1)},
	}
	for _, lb := range bad {
		if err := lb.Validate(); err == nil {
			t.Errorf("invalid bucket %+v accepted", lb)
		}
	}
}

func TestLeakyBucketCurve(t *testing.T) {
	lb := LeakyBucket{Burst: 640, Rate: 32e3}
	c := lb.Curve(100e6)
	// Long interval: burst + rate·I dominates.
	if got, want := c.Eval(1.0), 640.0+32e3; !approx(got, want) {
		t.Errorf("H(1) = %g, want %g", got, want)
	}
	// Very short interval: link-capacity line dominates.
	if got, want := c.Eval(1e-9), 100e6*1e-9; !approx(got, want) {
		t.Errorf("H(1ns) = %g, want %g", got, want)
	}
}

func TestLeakyBucketCurveDegenerate(t *testing.T) {
	lb := LeakyBucket{Burst: 100, Rate: 1e6}
	c := lb.Curve(1e5) // access link slower than token rate
	if got := c.Eval(1); !approx(got, 1e5) {
		t.Errorf("degenerate H(1) = %g, want 1e5", got)
	}
}

func TestJitteredCurve(t *testing.T) {
	lb := LeakyBucket{Burst: 640, Rate: 32e3}
	y := 50e-3
	c := lb.JitteredCurve(100e6, y)
	// Flat region: T + ρY + ρI.
	want := 640 + 32e3*y + 32e3*1.0
	if got := c.Eval(1.0); !approx(got, want) {
		t.Errorf("H_k(1) = %g, want %g", got, want)
	}
	// y = 0 must equal the plain source curve.
	if got := lb.JitteredCurve(100e6, 0).Eval(0.3); !approx(got, lb.Curve(100e6).Eval(0.3)) {
		t.Error("JitteredCurve(0) differs from Curve")
	}
}

func TestJitteredCurveNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	LeakyBucket{Burst: 1, Rate: 1}.JitteredCurve(10, -0.1)
}

func TestConform(t *testing.T) {
	lb := LeakyBucket{Burst: 1000, Rate: 100}
	// Start full, send the whole burst.
	tok, ok := lb.Conform(1000, 0, 1000)
	if !ok || tok != 0 {
		t.Errorf("full burst: tokens=%g ok=%v", tok, ok)
	}
	// Immediately sending more must fail.
	if _, ok := lb.Conform(0, 0, 1); ok {
		t.Error("overdraft allowed")
	}
	// After 1 s, 100 tokens refilled.
	tok, ok = lb.Conform(0, 1, 100)
	if !ok || !approx(tok, 0) {
		t.Errorf("refill: tokens=%g ok=%v", tok, ok)
	}
	// Refill saturates at the burst size.
	tok, _ = lb.Conform(0, 1e6, 0)
	if tok != 1000 {
		t.Errorf("saturation: tokens=%g want 1000", tok)
	}
}

func TestClassValidate(t *testing.T) {
	v := Voice()
	if err := v.Validate(); err != nil {
		t.Errorf("voice invalid: %v", err)
	}
	if !v.RealTime() {
		t.Error("voice not real-time")
	}
	be := BestEffort(1)
	if err := be.Validate(); err != nil {
		t.Errorf("best-effort invalid: %v", err)
	}
	if be.RealTime() {
		t.Error("best-effort reported real-time")
	}
	bad := []Class{
		{Name: "", Bucket: v.Bucket, Deadline: 1},
		{Name: "x", Bucket: LeakyBucket{Rate: 0}, Deadline: 1},
		{Name: "x", Bucket: v.Bucket, Deadline: 0},
		{Name: "x", Bucket: v.Bucket, Deadline: math.NaN()},
		{Name: "x", Bucket: v.Bucket, Deadline: 1, Priority: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad class %d accepted", i)
		}
	}
}

func TestVoiceMatchesPaper(t *testing.T) {
	v := Voice()
	if v.Bucket.Burst != 640 || v.Bucket.Rate != 32e3 || v.Deadline != 0.1 {
		t.Errorf("voice parameters drifted from the paper: %+v", v)
	}
}

func TestNewClassSetOrdering(t *testing.T) {
	video := Class{Name: "video", Bucket: LeakyBucket{Burst: 15e3, Rate: 1.5e6}, Deadline: 0.2, Priority: 1}
	s, err := NewClassSet(BestEffort(2), video, Voice())
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	names := []string{s.Class(0).Name, s.Class(1).Name, s.Class(2).Name}
	want := []string{"voice", "video", "best-effort"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("order[%d] = %s, want %s", i, names[i], want[i])
		}
	}
	if rt := s.RealTimeClasses(); len(rt) != 2 {
		t.Errorf("real-time classes = %d, want 2", len(rt))
	}
	if c, ok := s.ByName("video"); !ok || c.Priority != 1 {
		t.Error("ByName(video) failed")
	}
	if _, ok := s.ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
	if i, ok := s.Index("voice"); !ok || i != 0 {
		t.Errorf("Index(voice) = %d,%v", i, ok)
	}
}

func TestNewClassSetRejections(t *testing.T) {
	if _, err := NewClassSet(); err == nil {
		t.Error("empty set accepted")
	}
	v := Voice()
	dupPrio := v
	dupPrio.Name = "voice2"
	if _, err := NewClassSet(v, dupPrio); err == nil {
		t.Error("duplicate priority accepted")
	}
	dupName := v
	dupName.Priority = 3
	if _, err := NewClassSet(v, dupName); err == nil {
		t.Error("duplicate name accepted")
	}
	// Best effort above a real-time class.
	be := BestEffort(0)
	rt := v
	rt.Priority = 1
	if _, err := NewClassSet(be, rt); err == nil {
		t.Error("best effort above real-time accepted")
	}
}

func TestClassesCopy(t *testing.T) {
	s, err := NewClassSet(Voice(), BestEffort(1))
	if err != nil {
		t.Fatal(err)
	}
	cs := s.Classes()
	cs[0].Name = "mutated"
	if s.Class(0).Name != "voice" {
		t.Error("Classes() exposed internal storage")
	}
}
