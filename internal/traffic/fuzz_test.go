package traffic

import (
	"math"
	"testing"
)

// FuzzCurveEnvelope feeds arbitrary line parameters into NewCurve and
// cross-checks the canonical envelope against a brute-force minimum at
// many sample points, plus the concavity/monotonicity invariants.
func FuzzCurveEnvelope(f *testing.F) {
	f.Add(0.0, 100.0, 5.0, 2.0, 50.0, 10.0)
	f.Add(0.0, 1e8, 640.0, 32e3, 640.0, 32e3)
	f.Add(1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, a1, b1, a2, b2, a3, b3 float64) {
		lines := []Line{{a1, b1}, {a2, b2}, {a3, b3}}
		for _, l := range lines {
			if l.A < 0 || l.B < 0 || math.IsNaN(l.A) || math.IsNaN(l.B) ||
				math.IsInf(l.A, 0) || math.IsInf(l.B, 0) || l.A > 1e12 || l.B > 1e12 {
				t.Skip()
			}
		}
		c, err := NewCurve(lines...)
		if err != nil {
			t.Fatalf("valid lines rejected: %v", err)
		}
		prev := 0.0
		for i := 1; i <= 64; i++ {
			x := float64(i) * 0.125
			want := math.Inf(1)
			for _, l := range lines {
				if v := l.Eval(x); v < want {
					want = v
				}
			}
			got := c.Eval(x)
			if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("Eval(%g) = %g, brute force %g (lines %v)", x, got, want, lines)
			}
			if got < prev-1e-9*math.Max(1, prev) {
				t.Fatalf("curve decreasing at %g: %g < %g", x, got, prev)
			}
			prev = got
		}
		// MaxBacklog never below a grid scan.
		rate := c.SustainedRate()*1.25 + 1
		best, _, ok := c.MaxBacklog(rate)
		if !ok {
			t.Fatalf("stable curve reported unstable")
		}
		for i := 1; i <= 64; i++ {
			x := float64(i) * 0.125
			if v := c.Eval(x) - rate*x; v > best+1e-6*math.Max(1, best) {
				t.Fatalf("MaxBacklog %g misses grid value %g at %g", best, v, x)
			}
		}
	})
}

// FuzzLeakyBucketConform checks the token bucket never goes negative and
// never exceeds the burst.
func FuzzLeakyBucketConform(f *testing.F) {
	f.Add(1000.0, 100.0, 10.0, 0.5, 50.0)
	f.Add(640.0, 32e3, 640.0, 0.02, 640.0)
	f.Fuzz(func(t *testing.T, burst, rate, tokens, dt, amount float64) {
		if burst < 0 || burst > 1e12 || rate <= 0 || rate > 1e12 ||
			tokens < 0 || tokens > burst || dt < 0 || dt > 1e6 ||
			amount < 0 || amount > 1e12 ||
			math.IsNaN(burst+rate+tokens+dt+amount) {
			t.Skip()
		}
		lb := LeakyBucket{Burst: burst, Rate: rate}
		newTokens, ok := lb.Conform(tokens, dt, amount)
		if newTokens < -1e-9 || newTokens > burst+1e-9 {
			t.Fatalf("tokens out of range: %g (burst %g)", newTokens, burst)
		}
		if ok && amount > math.Min(burst, tokens+rate*dt)+1e-9 {
			t.Fatalf("nonconforming send accepted: %g", amount)
		}
	})
}
