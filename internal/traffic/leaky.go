package traffic

import (
	"fmt"
	"math"
)

// LeakyBucket describes source traffic policed by a leaky bucket with
// burst size Burst (bits) and average rate Rate (bits/second). Per
// Section 3 of the paper, the traffic a source emits over any interval of
// length I is bounded by min(C·I, Burst + Rate·I) where C is the capacity
// of the access link.
type LeakyBucket struct {
	Burst float64 // T in the paper, bits
	Rate  float64 // ρ in the paper, bits/second
}

// Validate checks the bucket parameters.
func (lb LeakyBucket) Validate() error {
	if lb.Burst < 0 || math.IsNaN(lb.Burst) || math.IsInf(lb.Burst, 0) {
		return fmt.Errorf("traffic: invalid burst %g", lb.Burst)
	}
	if lb.Rate <= 0 || math.IsNaN(lb.Rate) || math.IsInf(lb.Rate, 0) {
		return fmt.Errorf("traffic: invalid rate %g", lb.Rate)
	}
	return nil
}

// Curve returns the source constraint function H(I) = min(C·I, T + ρ·I)
// for a source attached through a link of capacity c bits/second
// (Equation (30) of the paper).
func (lb LeakyBucket) Curve(c float64) Curve {
	if c <= lb.Rate {
		// Degenerate: the access link itself polices to C·I.
		return MustCurve(Line{A: 0, B: c})
	}
	return MustCurve(Line{A: 0, B: c}, Line{A: lb.Burst, B: lb.Rate})
}

// JitteredCurve returns H_k(I) = min(C·I, T + ρ·Y + ρ·I), the constraint
// function of the flow after experiencing up to y seconds of upstream
// queueing delay (Theorem 1, Equation (5)).
func (lb LeakyBucket) JitteredCurve(c, y float64) Curve {
	if y < 0 {
		panic("traffic: negative upstream delay")
	}
	if c <= lb.Rate {
		return MustCurve(Line{A: 0, B: c})
	}
	return MustCurve(Line{A: 0, B: c}, Line{A: lb.Burst + lb.Rate*y, B: lb.Rate})
}

// Conform reports whether transmitting amount bits over an interval of
// length dt seconds keeps the source within its envelope when the bucket
// currently holds tokens token bits (capacity Burst, refill Rate).
// It is used by the simulator's policers.
func (lb LeakyBucket) Conform(tokens, dt, amount float64) (newTokens float64, ok bool) {
	t := math.Min(lb.Burst, tokens+lb.Rate*dt)
	if amount > t {
		return t, false
	}
	return t - amount, true
}
