package traffic

import (
	"fmt"
	"math"
)

// Class describes one DiffServ traffic class (Section 3): all flows of a
// class share the same leaky-bucket envelope, the same end-to-end
// deadline, and the same static priority at every link server.
// Priority 0 is the highest; larger values are served later. The
// best-effort class is modeled with Deadline = +Inf.
type Class struct {
	Name     string
	Bucket   LeakyBucket // per-flow source envelope (T, ρ)
	Deadline float64     // D, end-to-end deadline in seconds (Inf = best effort)
	Priority int         // static priority, 0 = highest
}

// RealTime reports whether the class carries a finite deadline.
func (c Class) RealTime() bool { return !math.IsInf(c.Deadline, 1) }

// Validate checks the class parameters.
func (c Class) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("traffic: class needs a name")
	}
	if err := c.Bucket.Validate(); err != nil {
		return fmt.Errorf("traffic: class %q: %w", c.Name, err)
	}
	if c.Deadline <= 0 || math.IsNaN(c.Deadline) {
		return fmt.Errorf("traffic: class %q: invalid deadline %g", c.Name, c.Deadline)
	}
	if c.Priority < 0 {
		return fmt.Errorf("traffic: class %q: negative priority", c.Name)
	}
	return nil
}

// Voice returns the paper's experimental real-time class (Section 6):
// leaky bucket with 640-bit bursts at 32 kb/s and a 100 ms end-to-end
// deadline — a Voice-over-IP profile.
func Voice() Class {
	return Class{
		Name:     "voice",
		Bucket:   LeakyBucket{Burst: 640, Rate: 32e3},
		Deadline: 100e-3,
		Priority: 0,
	}
}

// BestEffort returns the paper's low-priority data class. The bucket is
// nominal (best-effort traffic is not policed and receives no guarantee);
// priority sits below prio-1 real-time classes.
func BestEffort(priority int) Class {
	return Class{
		Name:     "best-effort",
		Bucket:   LeakyBucket{Burst: 12e3, Rate: 1e6},
		Deadline: math.Inf(1),
		Priority: priority,
	}
}

// ClassSet is an ordered collection of classes, highest priority first.
type ClassSet struct {
	classes []Class
}

// NewClassSet validates and orders the classes by priority. Priorities
// must be unique; at most one best-effort (infinite-deadline) class is
// allowed and it must have the lowest priority.
func NewClassSet(classes ...Class) (*ClassSet, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("traffic: class set needs at least one class")
	}
	seenPrio := make(map[int]string)
	seenName := make(map[string]bool)
	ordered := append([]Class(nil), classes...)
	for _, c := range ordered {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if other, dup := seenPrio[c.Priority]; dup {
			return nil, fmt.Errorf("traffic: classes %q and %q share priority %d", other, c.Name, c.Priority)
		}
		seenPrio[c.Priority] = c.Name
		if seenName[c.Name] {
			return nil, fmt.Errorf("traffic: duplicate class name %q", c.Name)
		}
		seenName[c.Name] = true
	}
	for i := 0; i < len(ordered); i++ {
		for j := i + 1; j < len(ordered); j++ {
			if ordered[j].Priority < ordered[i].Priority {
				ordered[i], ordered[j] = ordered[j], ordered[i]
			}
		}
	}
	for i, c := range ordered {
		if !c.RealTime() && i != len(ordered)-1 {
			return nil, fmt.Errorf("traffic: best-effort class %q must have the lowest priority", c.Name)
		}
	}
	return &ClassSet{classes: ordered}, nil
}

// Len returns the number of classes.
func (s *ClassSet) Len() int { return len(s.classes) }

// Class returns the i-th class in priority order (0 = highest).
func (s *ClassSet) Class(i int) Class { return s.classes[i] }

// Classes returns a copy of the priority-ordered class list.
func (s *ClassSet) Classes() []Class { return append([]Class(nil), s.classes...) }

// RealTimeClasses returns the finite-deadline classes in priority order.
func (s *ClassSet) RealTimeClasses() []Class {
	var rt []Class
	for _, c := range s.classes {
		if c.RealTime() {
			rt = append(rt, c)
		}
	}
	return rt
}

// ByName returns the class with the given name.
func (s *ClassSet) ByName(name string) (Class, bool) {
	for _, c := range s.classes {
		if c.Name == name {
			return c, true
		}
	}
	return Class{}, false
}

// Index returns the position of the named class in priority order.
func (s *ClassSet) Index(name string) (int, bool) {
	for i, c := range s.classes {
		if c.Name == name {
			return i, true
		}
	}
	return -1, false
}
