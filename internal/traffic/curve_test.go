package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approx(a, b float64) bool {
	return math.Abs(a-b) <= eps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestNewCurveValidation(t *testing.T) {
	if _, err := NewCurve(); err == nil {
		t.Error("empty line set accepted")
	}
	bad := []Line{
		{A: -1, B: 1},
		{A: 1, B: -1},
		{A: math.NaN(), B: 1},
		{A: 1, B: math.Inf(1)},
	}
	for _, l := range bad {
		if _, err := NewCurve(l); err == nil {
			t.Errorf("invalid line %+v accepted", l)
		}
	}
}

func TestCurveEvalLeakyBucket(t *testing.T) {
	// min(100·I, 5 + 2·I): breakpoint at I = 5/98.
	c := MustCurve(Line{0, 100}, Line{5, 2})
	if got := c.Eval(0); got != 0 {
		t.Errorf("F(0) = %g, want 0", got)
	}
	if got := c.Eval(0.01); !approx(got, 1.0) {
		t.Errorf("F(0.01) = %g, want 1", got)
	}
	if got := c.Eval(1); !approx(got, 7.0) {
		t.Errorf("F(1) = %g, want 7", got)
	}
	bps := c.Breakpoints()
	if len(bps) != 1 || !approx(bps[0], 5.0/98.0) {
		t.Errorf("breakpoints = %v, want [5/98]", bps)
	}
}

func TestCanonicalDropsDominated(t *testing.T) {
	// The middle line lies above the envelope of the outer two everywhere.
	c := MustCurve(Line{0, 10}, Line{100, 5}, Line{10, 1})
	ls := c.Lines()
	if len(ls) != 2 {
		t.Fatalf("lines = %v, want 2 lines", ls)
	}
	if ls[0].B != 10 || ls[1].B != 1 {
		t.Errorf("kept wrong lines: %v", ls)
	}
}

func TestCanonicalDropsEqualSlope(t *testing.T) {
	c := MustCurve(Line{5, 2}, Line{3, 2}, Line{0, 7})
	ls := c.Lines()
	if len(ls) != 2 || ls[1].A != 3 {
		t.Errorf("lines = %v, want the A=3 slope-2 line kept", ls)
	}
}

func TestScale(t *testing.T) {
	c := MustCurve(Line{0, 100}, Line{5, 2})
	s := c.Scale(3)
	if got := s.Eval(1); !approx(got, 21) {
		t.Errorf("3F(1) = %g, want 21", got)
	}
	if !c.Scale(0).IsZero() {
		t.Error("Scale(0) not zero")
	}
}

func TestScaleNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustCurve(Line{0, 1}).Scale(-1)
}

func TestShift(t *testing.T) {
	c := MustCurve(Line{0, 100}, Line{5, 2})
	sh := c.Shift(0.5)
	// F(I + 0.5) for I beyond the breakpoint region: 5 + 2(I+0.5) = 6 + 2I.
	if got := sh.Eval(1); !approx(got, 8) {
		t.Errorf("shifted(1) = %g, want 8", got)
	}
	if got := sh.Shift(0); !approx(got.Eval(1), 8) {
		t.Error("Shift(0) changed curve")
	}
}

func TestShiftMatchesPointwise(t *testing.T) {
	f := func(burst, rate, y, i uint16) bool {
		c := MustCurve(Line{0, 1e5}, Line{float64(burst) + 1, float64(rate)/10 + 1})
		yy := float64(y) / 1e4
		ii := float64(i)/1e3 + 1e-6
		return approx(c.Shift(yy).Eval(ii), c.Eval(ii+yy))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randomCurve(rng *rand.Rand) Curve {
	n := 1 + rng.Intn(4)
	lines := make([]Line, n)
	for i := range lines {
		lines[i] = Line{A: rng.Float64() * 1000, B: rng.Float64() * 1e5}
	}
	// Ensure at least one line through the origin half the time, like
	// real constraint functions.
	if rng.Intn(2) == 0 {
		lines[0].A = 0
	}
	return MustCurve(lines...)
}

// Property: Eval equals the brute-force min over the original lines.
func TestEnvelopeEqualsBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		lines := make([]Line, n)
		for i := range lines {
			lines[i] = Line{A: rng.Float64() * 100, B: rng.Float64() * 1000}
		}
		c := MustCurve(lines...)
		for trial := 0; trial < 40; trial++ {
			x := rng.Float64() * 2
			if x == 0 {
				continue
			}
			want := math.Inf(1)
			for _, l := range lines {
				if v := l.Eval(x); v < want {
					want = v
				}
			}
			if !approx(c.Eval(x), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: curves are concave and nondecreasing.
func TestCurveConcaveMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCurve(rng)
		prev := 0.0
		prevSlope := math.Inf(1)
		for i := 1; i <= 50; i++ {
			x := float64(i) * 0.02
			v := c.Eval(x)
			if v < prev-eps {
				return false // not nondecreasing
			}
			slope := (v - prev) / 0.02
			if slope > prevSlope+1e-6*math.Max(1, prevSlope) {
				return false // not concave
			}
			prev, prevSlope = v, slope
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Sum evaluates to the pointwise sum of its terms.
func TestSumMatchesPointwiseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		curves := make([]Curve, k)
		for i := range curves {
			curves[i] = randomCurve(rng)
		}
		s := Sum(curves...)
		for trial := 0; trial < 30; trial++ {
			x := rng.Float64()*3 + 1e-9
			want := 0.0
			for _, c := range curves {
				want += c.Eval(x)
			}
			if !approx(s.Eval(x), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSumZeroIdentity(t *testing.T) {
	c := MustCurve(Line{0, 10}, Line{3, 1})
	s := c.Add(Curve{})
	if !approx(s.Eval(2), c.Eval(2)) {
		t.Error("adding zero curve changed values")
	}
	if !Sum().IsZero() {
		t.Error("empty Sum not zero")
	}
}

func TestMaxBacklogLeakyBucket(t *testing.T) {
	// F = min(100·I, 5 + 2·I), served at rate 10.
	// Max of F(I) − 10·I at breakpoint I = 5/98: F = 500/98, obj = 450/98.
	c := MustCurve(Line{0, 100}, Line{5, 2})
	got, at, ok := c.MaxBacklog(10)
	if !ok {
		t.Fatal("unexpectedly unstable")
	}
	if !approx(got, 450.0/98.0) || !approx(at, 5.0/98.0) {
		t.Errorf("backlog = %g at %g, want %g at %g", got, at, 450.0/98.0, 5.0/98.0)
	}
}

func TestMaxBacklogUnstable(t *testing.T) {
	c := MustCurve(Line{0, 100}, Line{5, 20})
	if _, _, ok := c.MaxBacklog(10); ok {
		t.Error("rate below sustained arrival rate reported stable")
	}
	if _, _, ok := c.MaxBacklog(0); ok {
		t.Error("zero service rate reported stable")
	}
}

func TestMaxBacklogZeroCurve(t *testing.T) {
	var c Curve
	got, _, ok := c.MaxBacklog(5)
	if !ok || got != 0 {
		t.Errorf("zero curve backlog = %g,%v", got, ok)
	}
}

func TestMaxBacklogPureBurst(t *testing.T) {
	c := MustCurve(Line{7, 2})
	got, at, ok := c.MaxBacklog(10)
	if !ok || !approx(got, 7) || at != 0 {
		t.Errorf("pure burst backlog = %g at %g ok=%v, want 7 at 0", got, at, ok)
	}
}

// Property: MaxBacklog upper-bounds a dense grid search of F(I) − r·I.
func TestMaxBacklogDominatesGridProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCurve(rng)
		r := c.SustainedRate()*1.2 + 1
		best, _, ok := c.MaxBacklog(r)
		if !ok {
			return false
		}
		for i := 1; i <= 300; i++ {
			x := float64(i) * 0.01
			if c.Eval(x)-r*x > best+eps*math.Max(1, best) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSustainedRateAndBurst(t *testing.T) {
	c := MustCurve(Line{0, 100}, Line{5, 2})
	if c.SustainedRate() != 2 || c.BurstAtRate() != 5 {
		t.Errorf("rate=%g burst=%g", c.SustainedRate(), c.BurstAtRate())
	}
	var z Curve
	if z.SustainedRate() != 0 || z.BurstAtRate() != 0 {
		t.Error("zero curve rate/burst not zero")
	}
}

func TestCurveString(t *testing.T) {
	if MustCurve(Line{0, 1}).String() == "" || (Curve{}).String() != "Curve{0}" {
		t.Error("String broken")
	}
}

func BenchmarkSumCurves(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	curves := make([]Curve, 16)
	for i := range curves {
		curves[i] = randomCurve(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sum(curves...)
	}
}

func BenchmarkMaxBacklog(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	c := Sum(randomCurve(rng), randomCurve(rng), randomCurve(rng))
	r := c.SustainedRate()*1.5 + 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MaxBacklog(r)
	}
}
