package core

import (
	"math"
	"testing"

	"ubac/internal/admission"
	"ubac/internal/sim"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

func voiceSystem(t testing.TB, net *topology.Network) *System {
	t.Helper()
	classes, err := traffic.NewClassSet(traffic.Voice(), traffic.BestEffort(1))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(net, classes)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	classes, err := traffic.NewClassSet(traffic.Voice())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(nil, classes); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := NewSystem(topology.MCI(), nil); err == nil {
		t.Error("nil classes accepted")
	}
}

func TestAccessors(t *testing.T) {
	net := topology.MCI()
	sys := voiceSystem(t, net)
	if sys.Network() != net || sys.Model() == nil || sys.Config() == nil {
		t.Error("accessors broken")
	}
	if sys.Classes().Len() != 2 {
		t.Error("classes lost")
	}
}

func TestBoundsMatchTable1(t *testing.T) {
	sys := voiceSystem(t, topology.MCI())
	lb, ub, err := sys.Bounds("voice")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lb-0.30) > 0.005 || math.Abs(ub-0.61) > 0.005 {
		t.Errorf("bounds = %.3f/%.3f, paper: 0.30/0.61", lb, ub)
	}
	if _, _, err := sys.Bounds("nope"); err == nil {
		t.Error("unknown class accepted")
	}
	if _, _, err := sys.Bounds("best-effort"); err == nil {
		t.Error("best-effort bounds accepted")
	}
}

func TestConfigureAndDeploy(t *testing.T) {
	sys := voiceSystem(t, topology.MCI())
	dep, err := sys.Configure(map[string]float64{"voice": 0.30})
	if err != nil {
		t.Fatal(err)
	}
	if !dep.Safe() {
		t.Fatalf("configuration at the lower bound unsafe: %+v", dep.Verify)
	}
	if a, ok := dep.Alpha("voice"); !ok || a != 0.30 {
		t.Errorf("alpha = %g,%v", a, ok)
	}
	if _, ok := dep.Alpha("nope"); ok {
		t.Error("unknown class alpha found")
	}
	if got := len(dep.Inputs()); got != 1 {
		t.Errorf("inputs = %d, want 1 (best effort not configured)", got)
	}

	ctrl, err := dep.Controller(admission.AtomicLedger)
	if err != nil {
		t.Fatal(err)
	}
	id, err := ctrl.Admit("voice", 0, 5)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if err := ctrl.Teardown(id); err != nil {
		t.Fatal(err)
	}
}

func TestConfigureValidation(t *testing.T) {
	sys := voiceSystem(t, topology.MCI())
	if _, err := sys.Configure(map[string]float64{}); err == nil {
		t.Error("missing assignment accepted")
	}
	// A best-effort-only system cannot be configured.
	be, err := traffic.NewClassSet(traffic.BestEffort(0))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSystem(topology.MCI(), be)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Configure(map[string]float64{"best-effort": 0.5}); err == nil {
		t.Error("best-effort-only configure accepted")
	}
}

func TestUnsafeDeploymentRejected(t *testing.T) {
	sys := voiceSystem(t, topology.MCI())
	dep, err := sys.Configure(map[string]float64{"voice": 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Safe() {
		t.Fatal("alpha=0.9 reported safe")
	}
	if _, err := dep.Controller(admission.LockedLedger); err == nil {
		t.Error("unsafe deployment deployed")
	}
}

func TestMaxUtilizationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("slow end-to-end search")
	}
	sys := voiceSystem(t, topology.MCI())
	res, err := sys.MaxUtilization("voice")
	if err != nil {
		t.Fatal(err)
	}
	if res.Alpha < res.Lower || res.Alpha > res.Upper {
		t.Errorf("alpha %.3f outside bounds [%.3f, %.3f]", res.Alpha, res.Lower, res.Upper)
	}
	if _, err := sys.MaxUtilization("nope"); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestSimulatorValidatesBound(t *testing.T) {
	net, err := topology.Line(4, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	sys := voiceSystem(t, net)
	dep, err := sys.Configure(map[string]float64{"voice": 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !dep.Safe() {
		t.Fatal("line config unsafe")
	}
	bound, err := dep.AnalyticWorstRoute("voice")
	if err != nil {
		t.Fatal(err)
	}
	sm, err := dep.Simulator(sim.Config{Seed: 11}, 3, sim.GreedyBurst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sm.Run(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PerClass[0].MaxQueueing; got > bound {
		t.Errorf("simulated %g exceeds analytic bound %g", got, bound)
	}
	if res.PerClass[0].Late != 0 {
		t.Errorf("late packets under a verified configuration: %d", res.PerClass[0].Late)
	}
}

func TestSimulatorValidation(t *testing.T) {
	sys := voiceSystem(t, topology.MCI())
	dep, err := sys.Configure(map[string]float64{"voice": 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Simulator(sim.Config{}, 0, sim.CBR); err == nil {
		t.Error("flowsPerRoute=0 accepted")
	}
}

func TestAnalyticWorstRouteErrors(t *testing.T) {
	sys := voiceSystem(t, topology.MCI())
	dep, err := sys.Configure(map[string]float64{"voice": 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.AnalyticWorstRoute("nope"); err == nil {
		t.Error("unknown class accepted")
	}
	if w, err := dep.AnalyticWorstRoute("voice"); err != nil || w <= 0 {
		t.Errorf("worst = %g, %v", w, err)
	}
}

func TestVerifyAssignmentPassthrough(t *testing.T) {
	sys := voiceSystem(t, topology.MCI())
	dep, err := sys.Configure(map[string]float64{"voice": 0.3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.VerifyAssignment(dep.Inputs())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Safe {
		t.Error("re-verification of a safe deployment failed")
	}
}
