// Package core is the top-level façade of the library: it ties the
// network model, traffic classes, configuration-time analysis
// (verification, route selection, utilization maximization), run-time
// admission control, and the validation simulator together behind one
// documented API.
//
// Typical use mirrors the paper's life cycle:
//
//	net := topology.MCI()
//	classes, _ := traffic.NewClassSet(traffic.Voice(), traffic.BestEffort(1))
//	sys, _ := core.NewSystem(net, classes)
//
//	// Configuration time: find the maximum safe utilization and routes.
//	maxRes, _ := sys.MaxUtilization("voice")
//	dep, _ := sys.Configure(map[string]float64{"voice": maxRes.Alpha})
//
//	// Run time: admission control is a utilization test per server.
//	ctrl, _ := dep.Controller(admission.AtomicLedger)
//	id, err := ctrl.Admit("voice", src, dst)
package core

import (
	"fmt"

	"ubac/internal/admission"
	"ubac/internal/bounds"
	"ubac/internal/config"
	"ubac/internal/delay"
	"ubac/internal/routing"
	"ubac/internal/sim"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

// System binds one network to one set of traffic classes.
type System struct {
	net     *topology.Network
	classes *traffic.ClassSet
	model   *delay.Model
	cfg     *config.Config
}

// NewSystem validates the inputs and returns a System using default
// solver and selector settings (tunable through Model and Config).
func NewSystem(net *topology.Network, classes *traffic.ClassSet) (*System, error) {
	if net == nil {
		return nil, fmt.Errorf("core: nil network")
	}
	if classes == nil || classes.Len() == 0 {
		return nil, fmt.Errorf("core: no classes")
	}
	m := delay.NewModel(net)
	return &System{net: net, classes: classes, model: m, cfg: config.New(m)}, nil
}

// Network returns the system's network.
func (s *System) Network() *topology.Network { return s.net }

// Classes returns the system's class set.
func (s *System) Classes() *traffic.ClassSet { return s.classes }

// Model exposes the delay model for tuning (tolerance, N mode, ...).
func (s *System) Model() *delay.Model { return s.model }

// Config exposes the configuration module for tuning (selector,
// granularity).
func (s *System) Config() *config.Config { return s.cfg }

// Bounds returns the Theorem 4 lower and upper bounds on the maximum
// utilization of the named real-time class for this network.
func (s *System) Bounds(class string) (lower, upper float64, err error) {
	c, ok := s.classes.ByName(class)
	if !ok {
		return 0, 0, fmt.Errorf("core: unknown class %q", class)
	}
	if !c.RealTime() {
		return 0, 0, fmt.Errorf("core: class %q has no deadline", class)
	}
	return bounds.Bounds(bounds.Params{
		N:        s.net.MaxDegree(),
		L:        s.net.Diameter(),
		Burst:    c.Bucket.Burst,
		Rate:     c.Bucket.Rate,
		Deadline: c.Deadline,
	})
}

// MaxUtilization runs configuration procedure 3 for the named class:
// binary search on α between the Theorem 4 bounds with safe route
// selection at every probe.
func (s *System) MaxUtilization(class string) (*config.MaxUtilResult, error) {
	c, ok := s.classes.ByName(class)
	if !ok {
		return nil, fmt.Errorf("core: unknown class %q", class)
	}
	return s.cfg.MaxUtilization(c, nil)
}

// Deployment is a verified configuration: per-class utilization
// assignments with their selected routes, ready to deploy to the
// run-time admission controller.
type Deployment struct {
	sys    *System
	inputs []delay.ClassInput
	// Verify is the joint verification result of the configuration.
	Verify *delay.VerifyResult
	// Reports are the per-class route selection reports.
	Reports []*routing.Report
}

// Configure runs safe route selection for every real-time class with the
// given utilization assignment (class name → α) and verifies the joint
// configuration. It returns the deployment even when unsafe so callers
// can inspect Verify; deploying an unsafe configuration is rejected.
func (s *System) Configure(alphas map[string]float64) (*Deployment, error) {
	rt := s.classes.RealTimeClasses()
	if len(rt) == 0 {
		return nil, fmt.Errorf("core: no real-time classes to configure")
	}
	var specs []config.ClassSpec
	for _, c := range rt {
		a, ok := alphas[c.Name]
		if !ok {
			return nil, fmt.Errorf("core: no utilization assignment for class %q", c.Name)
		}
		specs = append(specs, config.ClassSpec{Class: c, Alpha: a})
	}
	mr, err := s.cfg.SelectMultiClass(specs)
	if err != nil {
		return nil, err
	}
	return &Deployment{sys: s, inputs: mr.Inputs, Verify: mr.Verify, Reports: mr.Reports}, nil
}

// VerifyAssignment runs configuration procedure 1 on externally supplied
// inputs (routes and α given).
func (s *System) VerifyAssignment(inputs []delay.ClassInput) (*delay.VerifyResult, error) {
	return s.cfg.VerifyAssignment(inputs)
}

// Safe reports whether every class's route selection completed and the
// joint configuration passed verification. A failed selection leaves a
// partial route set that may verify trivially, so both checks matter.
func (d *Deployment) Safe() bool {
	if d.Verify == nil || !d.Verify.Safe {
		return false
	}
	for _, rep := range d.Reports {
		if rep == nil || !rep.Safe {
			return false
		}
	}
	return true
}

// Inputs returns the per-class (class, α, routes) triples in priority
// order.
func (d *Deployment) Inputs() []delay.ClassInput {
	return append([]delay.ClassInput(nil), d.inputs...)
}

// Alpha returns the configured utilization of the named class.
func (d *Deployment) Alpha(class string) (float64, bool) {
	for _, in := range d.inputs {
		if in.Class.Name == class {
			return in.Alpha, true
		}
	}
	return 0, false
}

// Controller deploys the configuration to a run-time admission
// controller. Unsafe deployments are rejected: admitting flows against
// an unverified assignment voids the delay guarantees. The verified
// per-class delay vectors are installed on the controller, so RouteDelay
// queries are served from its epoch-keyed route-delay cache.
func (d *Deployment) Controller(kind admission.LedgerKind) (*admission.Controller, error) {
	if !d.Safe() {
		return nil, fmt.Errorf("core: refusing to deploy an unverified configuration")
	}
	var ccs []admission.ClassConfig
	for _, in := range d.inputs {
		ccs = append(ccs, admission.ClassConfig{Class: in.Class, Alpha: in.Alpha, Routes: in.Routes})
	}
	ctrl, err := admission.NewController(d.sys.net, ccs, kind)
	if err != nil {
		return nil, err
	}
	if d.Verify != nil {
		for i, in := range d.inputs {
			if i < len(d.Verify.Results) && d.Verify.Results[i] != nil && d.Verify.Results[i].Converged {
				if err := ctrl.SetDelayBounds(in.Class.Name, d.Verify.Results[i].D); err != nil {
					return nil, err
				}
			}
		}
	}
	return ctrl, nil
}

// Simulator builds a discrete-event simulation of the deployment:
// flowsPerRoute leaky-bucket-worst-case flows of each class on every
// configured route, plus (optionally) greedy best-effort cross traffic on
// the same routes when the class set has a best-effort class. The
// returned simulator is ready to Run.
func (d *Deployment) Simulator(cfg sim.Config, flowsPerRoute int, pattern sim.Pattern) (*sim.Sim, error) {
	if flowsPerRoute < 1 {
		return nil, fmt.Errorf("core: flowsPerRoute must be >= 1")
	}
	sm, err := sim.New(d.sys.net, cfg)
	if err != nil {
		return nil, err
	}
	for prio, in := range d.inputs {
		for ri := 0; ri < in.Routes.Len(); ri++ {
			rt := in.Routes.Route(ri)
			for f := 0; f < flowsPerRoute; f++ {
				_, err := sm.AddFlow(sim.FlowSpec{
					Class:    prio,
					Route:    rt.Servers,
					Size:     in.Class.Bucket.Burst,
					Rate:     in.Class.Bucket.Rate,
					Burst:    in.Class.Bucket.Burst,
					Pattern:  pattern,
					Deadline: in.Class.Deadline,
				})
				if err != nil {
					return nil, err
				}
			}
		}
	}
	return sm, nil
}

// AnalyticWorstRoute returns the largest verified end-to-end delay bound
// of the named class across its routes.
func (d *Deployment) AnalyticWorstRoute(class string) (float64, error) {
	if d.Verify == nil {
		return 0, fmt.Errorf("core: deployment not verified")
	}
	worst := 0.0
	found := false
	for _, rr := range d.Verify.Routes {
		if rr.Class != class {
			continue
		}
		found = true
		if rr.Bound > worst {
			worst = rr.Bound
		}
	}
	if !found {
		return 0, fmt.Errorf("core: class %q has no verified routes", class)
	}
	return worst, nil
}
