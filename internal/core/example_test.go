package core_test

import (
	"fmt"

	"ubac/internal/admission"
	"ubac/internal/core"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

// The full life cycle on the paper's evaluation topology: bounds →
// configure → verify → deploy → admit.
func Example() {
	net := topology.MCI()
	classes, err := traffic.NewClassSet(traffic.Voice(), traffic.BestEffort(1))
	if err != nil {
		panic(err)
	}
	sys, err := core.NewSystem(net, classes)
	if err != nil {
		panic(err)
	}
	lb, ub, err := sys.Bounds("voice")
	if err != nil {
		panic(err)
	}
	fmt.Printf("bounds [%.2f, %.2f]\n", lb, ub)

	dep, err := sys.Configure(map[string]float64{"voice": lb})
	if err != nil {
		panic(err)
	}
	fmt.Printf("safe=%v\n", dep.Safe())

	ctrl, err := dep.Controller(admission.AtomicLedger)
	if err != nil {
		panic(err)
	}
	sea, _ := net.RouterByName("Seattle")
	mia, _ := net.RouterByName("Miami")
	id, err := ctrl.Admit("voice", sea, mia)
	if err != nil {
		panic(err)
	}
	fmt.Printf("admitted flow, active=%d\n", ctrl.Stats().Active)
	if err := ctrl.Teardown(id); err != nil {
		panic(err)
	}
	// Output:
	// bounds [0.30, 0.61]
	// safe=true
	// admitted flow, active=1
}
