// Package signaling realizes the run-time admission control of Section 4
// the way it deploys in a real DiffServ network: as hop-by-hop
// reservation signaling between per-router agents, rather than the
// centralized ledger of internal/admission (which models the same
// decision procedure for analysis and benchmarks).
//
// Each router runs an agent goroutine owning the utilization state of its
// local output link servers. Flow establishment walks the configured
// route with a two-phase protocol:
//
//	RESERVE  — forwarded hop by hop; each agent performs the paper's
//	           local utilization test (used + ρ ≤ α·C) on its outgoing
//	           server and tentatively reserves.
//	COMMIT   — sent by the egress back along the path on success.
//	RELEASE  — unwinds tentative reservations when any hop rejects, and
//	           tears down committed flows on termination.
//
// The decision remains O(path length) with no per-flow state in core
// agents beyond the active reservation counters — the paper's
// scalability property, now with the coordination costs of a
// distributed system made explicit (the benchmarks compare this against
// the centralized ledger).
package signaling

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ubac/internal/delay"
	"ubac/internal/routes"
	"ubac/internal/telemetry"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

// Errors returned by Establish and Terminate.
var (
	// ErrRejected means some hop's utilization test failed.
	ErrRejected = errors.New("signaling: reservation rejected")
	// ErrNoRoute means the configuration carries no route for the pair.
	ErrNoRoute = errors.New("signaling: no configured route")
	// ErrUnknownFlow means the flow is not established.
	ErrUnknownFlow = errors.New("signaling: unknown flow")
	// ErrStopped means the network has been shut down.
	ErrStopped = errors.New("signaling: network stopped")
)

// msgKind enumerates protocol messages.
type msgKind int

const (
	msgReserve msgKind = iota
	msgRelease
	msgQuery
	msgStop
)

// message is one signaling PDU delivered to an agent.
type message struct {
	kind  msgKind
	key   int     // class-qualified server key: class·numServers + server
	rate  float64 // bits/second to reserve/release
	limit float64 // α·C for the (class, server) pair (configured at setup)
	reply chan reply
}

type reply struct {
	ok   bool
	used float64
}

// agent owns the per-class reservation counters of one router's
// outgoing servers.
type agent struct {
	inbox chan message
	used  map[int]float64 // per class-qualified server key, bits/second
}

func (a *agent) run() {
	for m := range a.inbox {
		switch m.kind {
		case msgReserve:
			if a.used[m.key]+m.rate > m.limit {
				m.reply <- reply{ok: false, used: a.used[m.key]}
				continue
			}
			a.used[m.key] += m.rate
			m.reply <- reply{ok: true, used: a.used[m.key]}
		case msgRelease:
			a.used[m.key] -= m.rate
			if a.used[m.key] < 0 {
				a.used[m.key] = 0
			}
			if m.reply != nil {
				m.reply <- reply{ok: true, used: a.used[m.key]}
			}
		case msgQuery:
			m.reply <- reply{ok: true, used: a.used[m.key]}
		case msgStop:
			m.reply <- reply{ok: true}
			return
		}
	}
}

// ClassConfig mirrors admission.ClassConfig for the signaling plane.
type ClassConfig struct {
	Class  traffic.Class
	Alpha  float64
	Routes *routes.Set
}

// FlowID identifies an established flow.
type FlowID uint64

// Network is the signaling plane: one agent per router plus the route
// table from configuration. Create with Start; Stop shuts the agents
// down.
type Network struct {
	net     *topology.Network
	classes []ClassConfig
	byName  map[string]int
	routeOf [][]int32
	limits  [][]float64

	agents []*agent

	mu     sync.Mutex
	flows  map[FlowID]flowRecord
	nextID atomic.Uint64

	stopped atomic.Bool

	// sink receives per-decision telemetry (same schema as the
	// centralized controller, so both planes share dashboards).
	sink        telemetry.Sink
	telemetered bool
}

type flowRecord struct {
	class int
	route int32
}

// Start validates the configuration and launches one agent goroutine per
// router.
func Start(net *topology.Network, classes []ClassConfig) (*Network, error) {
	if net == nil {
		return nil, fmt.Errorf("signaling: nil network")
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("signaling: no classes")
	}
	n := &Network{
		net:    net,
		byName: make(map[string]int),
		flows:  make(map[FlowID]flowRecord),
		sink:   telemetry.Nop{},
	}
	nrt := net.NumRouters()
	for i, cc := range classes {
		if err := cc.Class.Validate(); err != nil {
			return nil, err
		}
		if !(cc.Alpha > 0 && cc.Alpha < 1) {
			return nil, fmt.Errorf("signaling: class %q alpha %g out of (0,1)", cc.Class.Name, cc.Alpha)
		}
		if cc.Routes == nil || cc.Routes.Network() != net {
			return nil, fmt.Errorf("signaling: class %q routes missing or foreign", cc.Class.Name)
		}
		if _, dup := n.byName[cc.Class.Name]; dup {
			return nil, fmt.Errorf("signaling: duplicate class %q", cc.Class.Name)
		}
		n.byName[cc.Class.Name] = i
		n.classes = append(n.classes, cc)

		limits := make([]float64, net.NumServers())
		for s := range limits {
			limits[s] = cc.Alpha * net.ServerCapacity(s)
		}
		n.limits = append(n.limits, limits)

		table := make([]int32, nrt*nrt)
		for j := range table {
			table[j] = -1
		}
		for r := 0; r < cc.Routes.Len(); r++ {
			rt := cc.Routes.Route(r)
			table[rt.Src*nrt+rt.Dst] = int32(r)
		}
		n.routeOf = append(n.routeOf, table)
	}
	n.agents = make([]*agent, nrt)
	for i := range n.agents {
		n.agents[i] = &agent{inbox: make(chan message, 16), used: make(map[int]float64)}
		go n.agents[i].run()
	}
	return n, nil
}

// StartVerified runs the Figure 2 configuration-time verification
// against the given delay model before bringing the signaling plane up,
// and refuses to start on an unsafe assignment — the distributed
// counterpart of the daemon's "a running plane is the proof the
// deadlines hold" contract. The model's solver settings apply, so a
// model with Workers > 1 verifies with the parallel fixed-point sweep.
// Classes must be in priority order (highest first). The verification
// result is returned alongside the running network for operator
// inspection.
func StartVerified(net *topology.Network, m *delay.Model, classes []ClassConfig) (*Network, *delay.VerifyResult, error) {
	if m == nil {
		return nil, nil, fmt.Errorf("signaling: nil delay model")
	}
	if m.Network() != net {
		return nil, nil, fmt.Errorf("signaling: delay model built over a different network")
	}
	inputs := make([]delay.ClassInput, 0, len(classes))
	for _, cc := range classes {
		inputs = append(inputs, delay.ClassInput{Class: cc.Class, Alpha: cc.Alpha, Routes: cc.Routes})
	}
	v, err := m.Verify(inputs)
	if err != nil {
		return nil, nil, err
	}
	if !v.Safe {
		return nil, v, fmt.Errorf("signaling: configuration does not verify (worst slack %.6g s); refusing to start", v.WorstSlack)
	}
	n, err := Start(net, classes)
	if err != nil {
		return nil, v, err
	}
	return n, v, nil
}

// ownerOf returns the agent responsible for a link server: the router at
// its transmitting end.
func (n *Network) ownerOf(server int) *agent {
	tail, _, _ := n.net.Server(server)
	return n.agents[tail]
}

// SetSink routes per-decision telemetry into s (nil restores the no-op
// default). Set it before the network serves concurrent traffic.
func (n *Network) SetSink(s telemetry.Sink) {
	if s == nil {
		s = telemetry.Nop{}
	}
	n.sink = s
	n.telemetered = telemetry.Active(s)
}

// emit reports one decision; callers guard on n.telemetered.
func (n *Network) emit(id FlowID, class string, src, dst int, rate float64,
	v telemetry.Verdict, bottleneck int, start time.Time) {
	n.sink.Decision(telemetry.Decision{
		FlowID:     uint64(id),
		Class:      class,
		Src:        src,
		Dst:        dst,
		Rate:       rate,
		Verdict:    v,
		Bottleneck: bottleneck,
		Latency:    time.Since(start),
	})
}

// Establish runs the two-phase reservation along the configured route of
// (class, src, dst). On success it returns the flow ID; on rejection it
// unwinds all tentative reservations and returns ErrRejected (wrapped
// with the failing hop).
func (n *Network) Establish(class string, src, dst int) (FlowID, error) {
	var start time.Time
	if n.telemetered {
		start = time.Now()
	}
	if n.stopped.Load() {
		return 0, ErrStopped
	}
	ci, ok := n.byName[class]
	if !ok {
		if n.telemetered {
			n.emit(0, class, src, dst, 0, telemetry.RejectedUnknownClass, -1, start)
		}
		return 0, fmt.Errorf("signaling: unknown class %q", class)
	}
	rate := n.classes[ci].Class.Bucket.Rate
	nrt := n.net.NumRouters()
	if src < 0 || src >= nrt || dst < 0 || dst >= nrt || src == dst {
		if n.telemetered {
			n.emit(0, class, src, dst, rate, telemetry.RejectedNoRoute, -1, start)
		}
		return 0, ErrNoRoute
	}
	ri := n.routeOf[ci][src*nrt+dst]
	if ri < 0 {
		if n.telemetered {
			n.emit(0, class, src, dst, rate, telemetry.RejectedNoRoute, -1, start)
		}
		return 0, ErrNoRoute
	}
	servers := n.classes[ci].Routes.Route(int(ri)).Servers

	nsrv := n.net.NumServers()
	reply1 := make(chan reply, 1)
	for i, s := range servers {
		n.ownerOf(s).inbox <- message{
			kind: msgReserve, key: ci*nsrv + s, rate: rate,
			limit: n.limits[ci][s], reply: reply1,
		}
		if r := <-reply1; !r.ok {
			// RELEASE back along the partial path.
			for _, t := range servers[:i] {
				n.ownerOf(t).inbox <- message{kind: msgRelease, key: ci*nsrv + t, rate: rate}
			}
			if n.telemetered {
				n.emit(0, class, src, dst, rate, telemetry.RejectedCapacity, s, start)
			}
			return 0, fmt.Errorf("%w at server %s", ErrRejected, n.net.ServerName(s))
		}
	}
	id := FlowID(n.nextID.Add(1))
	n.mu.Lock()
	n.flows[id] = flowRecord{class: ci, route: ri}
	n.mu.Unlock()
	if n.telemetered {
		n.emit(id, class, src, dst, rate, telemetry.Admitted, -1, start)
	}
	return id, nil
}

// Terminate releases an established flow's reservations along its route.
func (n *Network) Terminate(id FlowID) error {
	var start time.Time
	if n.telemetered {
		start = time.Now()
	}
	if n.stopped.Load() {
		return ErrStopped
	}
	n.mu.Lock()
	rec, ok := n.flows[id]
	if ok {
		delete(n.flows, id)
	}
	n.mu.Unlock()
	if !ok {
		return ErrUnknownFlow
	}
	rate := n.classes[rec.class].Class.Bucket.Rate
	nsrv := n.net.NumServers()
	rt := n.classes[rec.class].Routes.Route(int(rec.route))
	for _, s := range rt.Servers {
		n.ownerOf(s).inbox <- message{kind: msgRelease, key: rec.class*nsrv + s, rate: rate}
	}
	if n.telemetered {
		n.emit(id, n.classes[rec.class].Class.Name, rt.Src, rt.Dst, rate,
			telemetry.TornDown, -1, start)
	}
	return nil
}

// Utilization queries the owning agent for the fraction of a server's
// capacity currently reserved by the named class.
func (n *Network) Utilization(class string, server int) (float64, error) {
	if n.stopped.Load() {
		return 0, ErrStopped
	}
	ci, ok := n.byName[class]
	if !ok {
		return 0, fmt.Errorf("signaling: unknown class %q", class)
	}
	if server < 0 || server >= n.net.NumServers() {
		return 0, fmt.Errorf("signaling: server %d out of range", server)
	}
	reply1 := make(chan reply, 1)
	n.ownerOf(server).inbox <- message{kind: msgQuery, key: ci*n.net.NumServers() + server, reply: reply1}
	r := <-reply1
	return r.used / n.net.ServerCapacity(server), nil
}

// Active returns the number of established flows.
func (n *Network) Active() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.flows)
}

// Stop shuts down all agents. Pending operations complete first; later
// calls return ErrStopped. Stop is idempotent.
func (n *Network) Stop() {
	if n.stopped.Swap(true) {
		return
	}
	reply1 := make(chan reply, 1)
	for _, a := range n.agents {
		a.inbox <- message{kind: msgStop, reply: reply1}
		<-reply1
	}
}
