package signaling

import (
	"errors"
	"math"
	"sync"
	"testing"

	"ubac/internal/delay"
	"ubac/internal/routes"
	"ubac/internal/routing"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

func plane(t testing.TB, alpha float64) (*Network, *topology.Network) {
	t.Helper()
	net, err := topology.Line(3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	m := delay.NewModel(net)
	set, _, err := routing.SP{}.Select(m, routing.Request{Class: traffic.Voice(), Alpha: alpha})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Start(net, []ClassConfig{{Class: traffic.Voice(), Alpha: alpha, Routes: set}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return n, net
}

func TestStartValidation(t *testing.T) {
	net, err := topology.Line(3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	other, err := topology.Line(4, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	set := routes.NewSet(net)
	cases := []struct {
		net     *topology.Network
		classes []ClassConfig
	}{
		{nil, []ClassConfig{{Class: traffic.Voice(), Alpha: 0.3, Routes: set}}},
		{net, nil},
		{net, []ClassConfig{{Class: traffic.Class{}, Alpha: 0.3, Routes: set}}},
		{net, []ClassConfig{{Class: traffic.Voice(), Alpha: 0, Routes: set}}},
		{net, []ClassConfig{{Class: traffic.Voice(), Alpha: 0.3, Routes: nil}}},
		{net, []ClassConfig{{Class: traffic.Voice(), Alpha: 0.3, Routes: routes.NewSet(other)}}},
		{net, []ClassConfig{
			{Class: traffic.Voice(), Alpha: 0.3, Routes: set},
			{Class: traffic.Voice(), Alpha: 0.2, Routes: set},
		}},
	}
	for i, tc := range cases {
		if _, err := Start(tc.net, tc.classes); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestEstablishTerminate(t *testing.T) {
	n, net := plane(t, 0.3)
	id, err := n.Establish("voice", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n.Active() != 1 {
		t.Errorf("active = %d", n.Active())
	}
	s01, _ := net.ServerFor(0, 1)
	u, err := n.Utilization("voice", s01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-32e3/100e6) > 1e-12 {
		t.Errorf("utilization = %g", u)
	}
	if err := n.Terminate(id); err != nil {
		t.Fatal(err)
	}
	if n.Active() != 0 {
		t.Errorf("active after terminate = %d", n.Active())
	}
	if err := n.Terminate(id); !errors.Is(err, ErrUnknownFlow) {
		t.Errorf("double terminate: %v", err)
	}
	if u, _ := n.Utilization("voice", s01); u != 0 {
		t.Errorf("leaked %g", u)
	}
}

func TestEstablishErrors(t *testing.T) {
	n, _ := plane(t, 0.3)
	if _, err := n.Establish("nope", 0, 2); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := n.Establish("voice", 0, 0); !errors.Is(err, ErrNoRoute) {
		t.Errorf("self pair: %v", err)
	}
	if _, err := n.Establish("voice", -1, 2); !errors.Is(err, ErrNoRoute) {
		t.Errorf("bad src: %v", err)
	}
	if _, err := n.Utilization("nope", 0); err == nil {
		t.Error("unknown class utilization accepted")
	}
	if _, err := n.Utilization("voice", -1); err == nil {
		t.Error("bad server accepted")
	}
}

func TestRejectionUnwindsPartialReservations(t *testing.T) {
	n, net := plane(t, 0.3)
	// Fill server 1->2 via 1->2 flows.
	for {
		if _, err := n.Establish("voice", 1, 2); err != nil {
			if !errors.Is(err, ErrRejected) {
				t.Fatal(err)
			}
			break
		}
	}
	s01, _ := net.ServerFor(0, 1)
	before, _ := n.Utilization("voice", s01)
	if _, err := n.Establish("voice", 0, 2); !errors.Is(err, ErrRejected) {
		t.Fatalf("expected rejection, got %v", err)
	}
	after, _ := n.Utilization("voice", s01)
	if before != after {
		t.Errorf("partial reservation leaked: %g -> %g", before, after)
	}
}

func TestCapacityMatchesCentralController(t *testing.T) {
	// The distributed plane must admit exactly the same number of flows
	// as the centralized ledger: floor(αC/ρ) on the bottleneck.
	n, _ := plane(t, 0.3)
	admitted := 0
	for {
		if _, err := n.Establish("voice", 0, 2); err != nil {
			break
		}
		admitted++
	}
	want := int(math.Floor(0.3 * 100e6 / 32e3))
	if admitted != want {
		t.Errorf("admitted %d, want %d", admitted, want)
	}
}

func TestConcurrentEstablishTerminate(t *testing.T) {
	n, net := plane(t, 0.3)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pairs := [][2]int{{0, 2}, {2, 0}, {0, 1}, {1, 2}}
			var held []FlowID
			for i := 0; i < 300; i++ {
				p := pairs[(i+w)%len(pairs)]
				if id, err := n.Establish("voice", p[0], p[1]); err == nil {
					held = append(held, id)
				}
				if len(held) > 3 {
					if err := n.Terminate(held[0]); err != nil {
						t.Errorf("terminate: %v", err)
						return
					}
					held = held[1:]
				}
			}
			for _, id := range held {
				if err := n.Terminate(id); err != nil {
					t.Errorf("drain: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	if n.Active() != 0 {
		t.Errorf("flows leaked: %d", n.Active())
	}
	for s := 0; s < net.NumServers(); s++ {
		if u, _ := n.Utilization("voice", s); u != 0 {
			t.Errorf("server %d leaked %g", s, u)
		}
	}
}

func TestStopIsIdempotentAndFinal(t *testing.T) {
	n, _ := plane(t, 0.3)
	n.Stop()
	n.Stop()
	if _, err := n.Establish("voice", 0, 2); !errors.Is(err, ErrStopped) {
		t.Errorf("post-stop establish: %v", err)
	}
	if err := n.Terminate(1); !errors.Is(err, ErrStopped) {
		t.Errorf("post-stop terminate: %v", err)
	}
	if _, err := n.Utilization("voice", 0); !errors.Is(err, ErrStopped) {
		t.Errorf("post-stop utilization: %v", err)
	}
}

func TestMultiClassIsolationInPlane(t *testing.T) {
	net, err := topology.Line(3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	m := delay.NewModel(net)
	voice := traffic.Voice()
	video := traffic.Class{
		Name:     "video",
		Bucket:   traffic.LeakyBucket{Burst: 15e3, Rate: 1.5e6},
		Deadline: 0.4,
		Priority: 1,
	}
	vset, _, err := routing.SP{}.Select(m, routing.Request{Class: voice, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	dset, _, err := routing.SP{}.Select(m, routing.Request{Class: video, Alpha: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Start(net, []ClassConfig{
		{Class: voice, Alpha: 0.1, Routes: vset},
		{Class: video, Alpha: 0.3, Routes: dset},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	// Exhaust video; voice must be unaffected (class isolation).
	for {
		if _, err := n.Establish("video", 0, 2); err != nil {
			break
		}
	}
	if _, err := n.Establish("voice", 0, 2); err != nil {
		t.Errorf("voice blocked by video exhaustion: %v", err)
	}
}

func BenchmarkEstablishTerminate(b *testing.B) {
	net := topology.MCI()
	m := delay.NewModel(net)
	set, _, err := routing.SP{}.Select(m, routing.Request{Class: traffic.Voice(), Alpha: 0.3})
	if err != nil {
		b.Fatal(err)
	}
	n, err := Start(net, []ClassConfig{{Class: traffic.Voice(), Alpha: 0.3, Routes: set}})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := n.Establish("voice", i%19, (i+7)%19)
		if err == nil {
			if err := n.Terminate(id); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// TestStartVerified gates the distributed plane on Figure 2
// verification: a safe configuration starts (and serves traffic), an
// unsafe one is refused with the verification report attached, and the
// verdict is the same whether the delay solve runs sequentially or on
// the parallel sweep pool.
func TestStartVerified(t *testing.T) {
	net, err := topology.Line(3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		m := delay.NewModel(net)
		m.Workers = workers
		set, _, err := routing.SP{}.Select(m, routing.Request{Class: traffic.Voice(), Alpha: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		n, v, err := StartVerified(net, m, []ClassConfig{{Class: traffic.Voice(), Alpha: 0.3, Routes: set}})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !v.Safe || !v.Converged {
			t.Fatalf("workers=%d: verified start with unsafe report %+v", workers, v)
		}
		id, err := n.Establish("voice", 0, 2)
		if err != nil {
			t.Fatalf("workers=%d: establish on verified plane: %v", workers, err)
		}
		if err := n.Terminate(id); err != nil {
			t.Fatal(err)
		}
		n.Stop()
	}

	// A deadline no route can meet: verification must refuse to start
	// the plane and still hand back the report.
	tight := traffic.Voice()
	tight.Deadline = 1e-9
	m := delay.NewModel(net)
	set, _, err := routing.SP{}.Select(m, routing.Request{Class: tight, Alpha: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	n, v, err := StartVerified(net, m, []ClassConfig{{Class: tight, Alpha: 0.3, Routes: set}})
	if err == nil {
		n.Stop()
		t.Fatal("unsafe configuration started")
	}
	if n != nil {
		t.Fatal("network returned alongside refusal")
	}
	if v == nil || v.Safe {
		t.Fatalf("refusal without a failing report: %+v", v)
	}

	if _, _, err := StartVerified(net, nil, nil); err == nil {
		t.Fatal("nil model accepted")
	}
	other, err := topology.Line(4, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := StartVerified(net, delay.NewModel(other), nil); err == nil {
		t.Fatal("foreign model accepted")
	}
}
