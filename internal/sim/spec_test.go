package sim

import (
	"strings"
	"testing"
)

func TestParseArrivalSpec(t *testing.T) {
	good := []struct {
		spec string
		rate float64 // expected mean arrival rate
		hold float64
	}{
		{"poisson:rate=100", 100, DefaultHolding},
		{"poisson:rate=5,holding=30", 5, 30},
		{"mmpp:high=300,low=60,on=2,off=3,holding=8", 0, 8},
		{"mmpp:high=10,low=1,on=1,off=1", 0, DefaultHolding},
	}
	for _, g := range good {
		a, err := ParseArrivalSpec(g.spec)
		if err != nil {
			t.Fatalf("%s: %v", g.spec, err)
		}
		if a.Holding != g.hold {
			t.Fatalf("%s: holding %g, want %g", g.spec, a.Holding, g.hold)
		}
		if g.rate > 0 && a.MeanRate() != g.rate {
			t.Fatalf("%s: mean rate %g, want %g", g.spec, a.MeanRate(), g.rate)
		}
		if a.MeanRate() <= 0 {
			t.Fatalf("%s: non-positive mean rate", g.spec)
		}
	}
	bad := []string{
		"",
		"poisson",
		"poisson:rate=0",
		"poisson:rate=-5",
		"poisson:rate=nan",
		"poisson:rate=1,rate=2",
		"poisson:rate=1,extra=2",
		"poisson:rate",
		"poisson:rate=1,holding=0",
		"mmpp:high=10,low=1,on=1",
		"mmpp:high=1,low=10,on=1,off=1", // low above high
		"erlang:rate=1",
	}
	for _, b := range bad {
		if _, err := ParseArrivalSpec(b); err == nil {
			t.Fatalf("%q accepted", b)
		}
	}
}

func TestParseScaleSpec(t *testing.T) {
	spec, err := ParseScaleSpec("metro:3", "poisson:rate=50", 9, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Net.NumRouters() != 32 || spec.Seed != 9 || spec.Lifetimes != 1000 {
		t.Fatalf("bad spec: %+v", spec)
	}
	if h := spec.Horizon(); h <= 0 || h < float64(spec.Lifetimes)/spec.Arrival.MeanRate() {
		t.Fatalf("horizon %g cannot cover %d lifetimes at rate %g", h, spec.Lifetimes, spec.Arrival.MeanRate())
	}
	if s2, err := ParseScaleSpec("nsfnet", "poisson:rate=1", 0, 0, 30); err != nil || s2.Horizon() != 30 {
		t.Fatalf("duration-bounded spec: %v %+v", err, s2)
	}

	rejected := []struct{ topo, why string }{
		{"@/etc/passwd", "file reference"},
		{"", "empty"},
		{"waxman:4096:1", "too many routers"},
		{"grid:100x100", "grid product over cap"},
		{"tree:100:4", "tree blowup"},
		{"tree:2:40", "deep tree blowup"},
		{"random:16:1000000000:1", "extra-link loop"},
		{"nosuch:3", "unknown kind"},
	}
	for _, r := range rejected {
		if _, err := ParseScaleSpec(r.topo, "poisson:rate=1", 1, 10, 0); err == nil {
			t.Fatalf("topology %q (%s) accepted", r.topo, r.why)
		}
	}
	if _, err := ParseScaleSpec("line:3", "poisson:rate=0", 1, 10, 0); err == nil {
		t.Fatal("bad arrival accepted")
	}
	if _, err := ParseScaleSpec("line:3", "poisson:rate=1", 1, 0, 0); err == nil {
		t.Fatal("no lifetime count and no duration accepted")
	}
	for _, d := range []float64{-1, nan()} {
		if _, err := ParseScaleSpec("line:3", "poisson:rate=1", 1, 10, d); err == nil {
			t.Fatalf("duration %g accepted", d)
		}
	}
	if _, err := ParseScaleSpec("line:3", "poisson:rate=1", 1, 10, 0); err != nil {
		t.Fatalf("small line spec rejected: %v", err)
	}
	// The error message for an oversize spec should mention the cap so
	// the operator knows it is a harness limit, not a syntax error.
	_, err = ParseScaleSpec("waxman:9999:1", "poisson:rate=1", 1, 10, 0)
	if err == nil || !strings.Contains(err.Error(), "cap") && !strings.Contains(err.Error(), "max") {
		t.Fatalf("oversize error not explanatory: %v", err)
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}
