package sim

import (
	"fmt"
	"math/rand"

	"ubac/internal/admission"
	"ubac/internal/delay"
	"ubac/internal/routing"
	"ubac/internal/traffic"
)

// RunScaleSpec executes a parsed scale specification end to end: route
// selection for every class, safety verification, a real admission
// controller under the virtual clock, the flow-lifetime simulation,
// and the bound-vs-observed verdict attached to the report. This is
// the one code path both the CLI and the CI property gate run.
//
// classes defaults to the paper's voice class; sel defaults to
// shortest-path routing (the only selector whose cost stays trivially
// linear on the large presets). cfg.Seed and cfg.Lifetimes are
// overridden from the spec.
func RunScaleSpec(spec *ScaleSpec, classes []traffic.Class, alpha float64, sel routing.Selector, cfg ScaleConfig) (*ScaleReport, error) {
	if spec == nil {
		return nil, fmt.Errorf("sim: nil scale spec")
	}
	if !(alpha > 0 && alpha < 1) {
		return nil, fmt.Errorf("sim: alpha %g out of (0,1)", alpha)
	}
	if len(classes) == 0 {
		classes = []traffic.Class{traffic.Voice()}
	}
	if sel == nil {
		sel = routing.SP{}
	}

	m := delay.NewModel(spec.Net)
	var ccs []admission.ClassConfig
	var inputs []delay.ClassInput
	for _, cl := range classes {
		set, rep, err := sel.Select(m, routing.Request{Class: cl, Alpha: alpha})
		if err != nil {
			return nil, fmt.Errorf("sim: routing class %q: %w", cl.Name, err)
		}
		if !rep.Safe {
			return nil, fmt.Errorf("sim: class %q has no safe route set on %s at alpha %g", cl.Name, spec.Topo, alpha)
		}
		ccs = append(ccs, admission.ClassConfig{Class: cl, Alpha: alpha, Routes: set})
		inputs = append(inputs, delay.ClassInput{Class: cl, Alpha: alpha, Routes: set})
	}

	ctrl, err := admission.NewController(spec.Net, ccs, admission.AtomicLedger)
	if err != nil {
		return nil, err
	}

	// Offered pairs: every pair some class can route, in class-then-route
	// order (deterministic; no map iteration).
	seen := make(map[[2]int]bool)
	var pairs [][2]int
	for _, cc := range ccs {
		for r := 0; r < cc.Routes.Len(); r++ {
			rt := cc.Routes.Route(r)
			p := [2]int{rt.Src, rt.Dst}
			if !seen[p] {
				seen[p] = true
				pairs = append(pairs, p)
			}
		}
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("sim: no routable pairs on %s", spec.Topo)
	}

	// The source draws from its own stream so the simulator's class-mix
	// draws cannot perturb arrival times; both derive from the run seed.
	src, err := spec.Arrival.Source(pairs, spec.Horizon(), rand.New(rand.NewSource(spec.Seed+1)))
	if err != nil {
		return nil, err
	}

	cfg.Seed = spec.Seed
	cfg.Lifetimes = spec.Lifetimes
	sim, err := NewScale(ctrl, ccs, src, cfg)
	if err != nil {
		return nil, err
	}
	rep, err := sim.Run()
	if err != nil {
		return nil, err
	}
	bc, err := CheckObservedMax(m, inputs, rep.ObservedMax())
	if err != nil {
		return nil, err
	}
	rep.Bounds = bc
	return rep, nil
}
