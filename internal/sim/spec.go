package sim

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"ubac/internal/topology"
	"ubac/internal/workload"
)

// ArrivalSpec is a parsed arrival-process specification, the shared
// syntax of the command-line tools:
//
//	poisson:rate=R[,holding=H]
//	mmpp:high=H,low=L,on=S,off=S[,holding=H]
//
// Rates are calls/second, sojourns and holdings in seconds. The mean
// holding time defaults to 90 s when no holding= key is given.
type ArrivalSpec struct {
	// Kind is "poisson" or "mmpp".
	Kind string
	// Rate is the Poisson arrival rate (calls/second).
	Rate float64
	// MMPP holds the two-state process parameters (Kind "mmpp").
	MMPP workload.MMPPConfig
	// Holding is the mean exponential holding time in seconds.
	Holding float64
}

// DefaultHolding is the mean call holding time assumed when an arrival
// spec carries no holding= key.
const DefaultHolding = 90.0

// MeanRate returns the long-run arrival rate of the process.
func (a ArrivalSpec) MeanRate() float64 {
	if a.Kind == "mmpp" {
		return a.MMPP.MeanRate()
	}
	return a.Rate
}

// Source instantiates the streaming arrival source over the given
// router pairs, pulling every draw from rng. horizon bounds the
// process in virtual time.
func (a ArrivalSpec) Source(pairs [][2]int, horizon float64, rng *rand.Rand) (workload.Source, error) {
	switch a.Kind {
	case "poisson":
		return workload.NewPoissonSource(a.Rate, a.Holding, pairs, horizon, rng)
	case "mmpp":
		return workload.NewMMPPSource(a.MMPP, a.Holding, pairs, horizon, rng)
	default:
		return nil, fmt.Errorf("sim: unknown arrival kind %q", a.Kind)
	}
}

// ParseArrivalSpec parses the arrival-process syntax above.
func ParseArrivalSpec(spec string) (ArrivalSpec, error) {
	var out ArrivalSpec
	kind, rest, hasArgs := strings.Cut(spec, ":")
	kv := map[string]float64{}
	if hasArgs {
		for _, arg := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(arg, "=")
			if !ok {
				return out, fmt.Errorf("sim: malformed arrival argument %q (want key=value)", arg)
			}
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				return out, fmt.Errorf("sim: arrival %s=%q is not a finite number", key, val)
			}
			if _, dup := kv[key]; dup {
				return out, fmt.Errorf("sim: duplicate arrival key %q", key)
			}
			kv[key] = v
		}
	}
	holding := DefaultHolding
	if h, ok := kv["holding"]; ok {
		if h <= 0 {
			return out, fmt.Errorf("sim: non-positive holding %g", h)
		}
		holding = h
		delete(kv, "holding")
	}
	need := func(keys ...string) error {
		for _, k := range keys {
			if _, ok := kv[k]; !ok {
				return fmt.Errorf("sim: arrival %s needs %s=", kind, k)
			}
		}
		if len(kv) != len(keys) {
			return fmt.Errorf("sim: arrival %s takes exactly %v (plus optional holding=)", kind, keys)
		}
		return nil
	}
	switch kind {
	case "poisson":
		if err := need("rate"); err != nil {
			return out, err
		}
		if kv["rate"] <= 0 {
			return out, fmt.Errorf("sim: non-positive arrival rate %g", kv["rate"])
		}
		out = ArrivalSpec{Kind: "poisson", Rate: kv["rate"], Holding: holding}
	case "mmpp":
		if err := need("high", "low", "on", "off"); err != nil {
			return out, err
		}
		cfg := workload.MMPPConfig{
			HighRate: kv["high"], LowRate: kv["low"],
			MeanHigh: kv["on"], MeanLow: kv["off"],
		}
		if err := cfg.Validate(); err != nil {
			return out, err
		}
		out = ArrivalSpec{Kind: "mmpp", MMPP: cfg, Holding: holding}
	default:
		return out, fmt.Errorf("sim: unknown arrival kind %q (poisson | mmpp)", kind)
	}
	return out, nil
}

// ScaleSpec is a fully parsed, buildable scale-run specification.
type ScaleSpec struct {
	// Net is the generated topology.
	Net *topology.Network
	// Topo is the topology specification string Net was built from.
	Topo string
	// Arrival is the parsed arrival process.
	Arrival ArrivalSpec
	// Seed drives the whole run (topology presets carry their own seed
	// inside Topo).
	Seed int64
	// Lifetimes is the number of flow lifetimes to simulate.
	Lifetimes uint64
	// Duration optionally caps the run in virtual seconds (0 = only the
	// lifetime count bounds the run).
	Duration float64
}

// maxScaleRouters bounds generated topologies so a hostile or mistyped
// specification cannot allocate an all-pairs route table that dwarfs
// the simulation itself (the largest preset is 96 routers).
const maxScaleRouters = 2048

// Horizon returns the virtual-time bound handed to the arrival source:
// the explicit duration when set, otherwise a generous multiple of the
// expected time needed to produce Lifetimes arrivals.
func (s *ScaleSpec) Horizon() float64 {
	if s.Duration > 0 {
		return s.Duration
	}
	rate := s.Arrival.MeanRate()
	n := float64(s.Lifetimes)
	if n == 0 {
		n = 1
	}
	return 8*n/rate + 1
}

// ParseScaleSpec validates and builds a scale-run specification from
// its command-line string form. Unlike topology.Parse it is hermetic:
// file references (@file.json) are rejected, and generated topologies
// are size-capped, so the parser is safe to fuzz and safe to expose to
// untrusted run descriptions.
func ParseScaleSpec(topoSpec, arrivalSpec string, seed int64, lifetimes uint64, duration float64) (*ScaleSpec, error) {
	if strings.HasPrefix(topoSpec, "@") {
		return nil, fmt.Errorf("sim: file topologies are not allowed in scale specs")
	}
	if topoSpec == "" {
		return nil, fmt.Errorf("sim: empty topology spec")
	}
	// Size-gate before building so a hostile spec cannot make
	// topology.Parse allocate an oversized network; the post-build
	// router check below is the backstop for forms the estimate skips.
	if err := checkTopoSize(topoSpec); err != nil {
		return nil, err
	}
	net, err := topology.Parse(topoSpec)
	if err != nil {
		return nil, err
	}
	if net.NumRouters() > maxScaleRouters {
		return nil, fmt.Errorf("sim: topology %q has %d routers (max %d)", topoSpec, net.NumRouters(), maxScaleRouters)
	}
	arr, err := ParseArrivalSpec(arrivalSpec)
	if err != nil {
		return nil, err
	}
	if duration < 0 || math.IsNaN(duration) || math.IsInf(duration, 0) {
		return nil, fmt.Errorf("sim: invalid duration %g", duration)
	}
	if lifetimes == 0 && duration == 0 {
		return nil, fmt.Errorf("sim: need a lifetime count or a duration")
	}
	return &ScaleSpec{
		Net:       net,
		Topo:      topoSpec,
		Arrival:   arr,
		Seed:      seed,
		Lifetimes: lifetimes,
		Duration:  duration,
	}, nil
}

// checkTopoSize estimates the router count a specification would
// generate and rejects oversized ones before topology.Parse allocates
// anything. Arguments that fail to parse as integers are left for
// topology.Parse to diagnose; unknown kinds likewise.
func checkTopoSize(spec string) error {
	parts := strings.Split(spec, ":")
	num := func(i int) float64 {
		if i >= len(parts) {
			return 0
		}
		n, err := strconv.Atoi(parts[i])
		if err != nil || n < 0 {
			return 0
		}
		return float64(n)
	}
	routers := 0.0
	switch parts[0] {
	case "line", "ring", "star", "waxman", "ba":
		routers = num(1)
	case "random":
		routers = num(1)
		// The extra-link count drives a sampling loop of its own.
		if e := num(2); e > 8*maxScaleRouters {
			return fmt.Errorf("sim: %g extra links exceeds scale cap %d", e, 8*maxScaleRouters)
		}
	case "grid":
		if len(parts) == 2 {
			wh := strings.SplitN(parts[1], "x", 2)
			if len(wh) == 2 {
				w, errW := strconv.Atoi(wh[0])
				h, errH := strconv.Atoi(wh[1])
				if errW == nil && errH == nil && w > 0 && h > 0 {
					routers = float64(w) * float64(h)
				}
			}
		}
	case "tree":
		// 1 + f + f^2 + ... + f^d routers; f^d dominates.
		f, d := num(1), num(2)
		if f > 1 && d > 0 {
			if d*math.Log(f) > math.Log(float64(maxScaleRouters))+1 {
				return fmt.Errorf("sim: tree %g^%g exceeds scale cap %d", f, d, maxScaleRouters)
			}
			routers = (math.Pow(f, d+1) - 1) / (f - 1)
		} else if f >= 1 {
			routers = f*d + 1
		}
	default:
		// Fixed-size or unknown: nothing to pre-gate.
	}
	if routers > maxScaleRouters {
		return fmt.Errorf("sim: topology %q would generate %.0f routers (max %d)", spec, routers, maxScaleRouters)
	}
	return nil
}
