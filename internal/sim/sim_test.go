package sim

import (
	"math"
	"testing"

	"ubac/internal/delay"
	"ubac/internal/routes"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

func lineNet(t testing.TB, n int) *topology.Network {
	t.Helper()
	net, err := topology.Line(n, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func serverPath(t testing.TB, net *topology.Network, path ...int) []int {
	t.Helper()
	srv, err := net.ServersFromRouterPath(path)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func voiceFlow(route []int) FlowSpec {
	return FlowSpec{
		Class:    0,
		Route:    route,
		Size:     640,
		Rate:     32e3,
		Burst:    640,
		Pattern:  CBR,
		Deadline: 0.1,
	}
}

func TestNewValidation(t *testing.T) {
	net := lineNet(t, 3)
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := New(net, Config{Scheduler: "alien"}); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestAddFlowValidation(t *testing.T) {
	net := lineNet(t, 3)
	s, err := New(net, Config{})
	if err != nil {
		t.Fatal(err)
	}
	route := serverPath(t, net, 0, 1, 2)
	bad := []FlowSpec{
		{Class: 0, Route: nil, Size: 640, Rate: 32e3},
		{Class: 0, Route: []int{99}, Size: 640, Rate: 32e3},
		{Class: 0, Route: route, Size: 0, Rate: 32e3},
		{Class: 0, Route: route, Size: 640, Rate: 0},
		{Class: -1, Route: route, Size: 640, Rate: 32e3},
		{Class: 0, Route: route, Size: 640, Rate: 32e3, Pattern: GreedyBurst, Burst: 100},
	}
	for i, f := range bad {
		if _, err := s.AddFlow(f); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRunValidation(t *testing.T) {
	net := lineNet(t, 3)
	s, _ := New(net, Config{})
	if _, err := s.Run(1); err == nil {
		t.Error("run with no flows accepted")
	}
	if _, err := s.AddFlow(voiceFlow(serverPath(t, net, 0, 1, 2))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := s.Run(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1); err == nil {
		t.Error("second run accepted")
	}
}

func TestSingleCBRFlowNoQueueing(t *testing.T) {
	net := lineNet(t, 4)
	s, _ := New(net, Config{Seed: 1})
	route := serverPath(t, net, 0, 1, 2, 3)
	if _, err := s.AddFlow(voiceFlow(route)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(1.0)
	if err != nil {
		t.Fatal(err)
	}
	// 640 bits at 32 kb/s: one packet every 20 ms, ~51 packets in 1 s.
	if res.Generated < 50 || res.Generated > 52 {
		t.Errorf("generated = %d", res.Generated)
	}
	if res.Delivered != res.Generated {
		t.Errorf("delivered %d of %d", res.Delivered, res.Generated)
	}
	cs := res.PerClass[0]
	if cs.MaxQueueing != 0 {
		t.Errorf("uncontended flow queued: %g", cs.MaxQueueing)
	}
	// Raw latency = 3 hops of store-and-forward transmission.
	wantLat := 3 * 640 / 100e6
	if math.Abs(cs.MaxLatency-wantLat) > 1e-12 {
		t.Errorf("latency = %g, want %g", cs.MaxLatency, wantLat)
	}
	if cs.Late != 0 {
		t.Errorf("late = %d", cs.Late)
	}
}

func TestGreedyBurstQueues(t *testing.T) {
	net := lineNet(t, 3)
	s, _ := New(net, Config{Seed: 1})
	route := serverPath(t, net, 0, 1, 2)
	f := voiceFlow(route)
	f.Pattern = GreedyBurst
	f.Burst = 6400 // 10 packets back-to-back
	if _, err := s.AddFlow(f); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// The 10-packet burst queues 9 packets behind the first at hop 1:
	// worst wait 9·(640/100e6).
	want := 9 * 640 / 100e6
	if math.Abs(res.PerClass[0].MaxQueueing-want) > 1e-9 {
		t.Errorf("burst queueing = %g, want %g", res.PerClass[0].MaxQueueing, want)
	}
	if res.MaxBacklog[route[0]] < 9 {
		t.Errorf("backlog = %d, want >= 9", res.MaxBacklog[route[0]])
	}
}

func TestPriorityIsolation(t *testing.T) {
	// Voice shares the first link with a greedy best-effort aggregate.
	// Under static priority the voice queueing stays within one
	// best-effort packet of transmission; under FIFO it inflates.
	net := lineNet(t, 3)
	route := serverPath(t, net, 0, 1, 2)
	build := func(schedKind string) *Results {
		s, err := New(net, Config{Scheduler: schedKind, Seed: 7, Classes: 2})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddFlow(voiceFlow(route)); err != nil {
			t.Fatal(err)
		}
		be := FlowSpec{
			Class:   1,
			Route:   route,
			Size:    12000,
			Rate:    95e6, // near saturation
			Burst:   24e4,
			Pattern: GreedyBurst,
		}
		if _, err := s.AddFlow(be); err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(0.2)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	prio := build("priority")
	fifo := build("fifo")
	// Priority: voice waits at most one in-flight best-effort packet per
	// hop plus scheduling slack.
	onePkt := 12000 / 100e6
	if prio.PerClass[0].MaxQueueing > 3*onePkt {
		t.Errorf("priority voice queueing %g exceeds ~%g", prio.PerClass[0].MaxQueueing, 3*onePkt)
	}
	if fifo.PerClass[0].MaxQueueing < 4*prio.PerClass[0].MaxQueueing {
		t.Errorf("fifo (%g) did not clearly degrade voice vs priority (%g)",
			fifo.PerClass[0].MaxQueueing, prio.PerClass[0].MaxQueueing)
	}
	if prio.PerClass[0].Late != 0 {
		t.Errorf("priority voice late: %d", prio.PerClass[0].Late)
	}
}

func TestDeadlineMissAccounting(t *testing.T) {
	net := lineNet(t, 3)
	route := serverPath(t, net, 0, 1, 2)
	s, _ := New(net, Config{Seed: 1})
	f := voiceFlow(route)
	f.Pattern = GreedyBurst
	f.Burst = 640 * 50
	f.Deadline = 1e-7 // unmeetably tight
	if _, err := s.AddFlow(f); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerClass[0].Late == 0 {
		t.Error("no late packets under an impossible deadline")
	}
}

func TestOnOffAveragesOut(t *testing.T) {
	net := lineNet(t, 3)
	route := serverPath(t, net, 0, 1, 2)
	s, _ := New(net, Config{Seed: 3})
	f := voiceFlow(route)
	f.Pattern = OnOff
	f.OnTime, f.OffTime = 0.02, 0.02
	if _, err := s.AddFlow(f); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(2.0)
	if err != nil {
		t.Fatal(err)
	}
	// Long-run average must stay near Rate: 32 kb/s · 2 s / 640 b = 100
	// packets (the pattern doubles the peak but halves the duty cycle).
	if res.Generated < 80 || res.Generated > 120 {
		t.Errorf("on-off generated %d packets, want ~100", res.Generated)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Results {
		net := lineNet(t, 4)
		s, _ := New(net, Config{Seed: 42, Classes: 2})
		r1 := serverPath(t, net, 0, 1, 2, 3)
		r2 := serverPath(t, net, 3, 2, 1, 0)
		f1 := voiceFlow(r1)
		f1.Pattern = OnOff
		f2 := voiceFlow(r2)
		f2.Class = 1
		f2.Pattern = GreedyBurst
		f2.Burst = 6400
		if _, err := s.AddFlow(f1); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AddFlow(f2); err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(1.0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Generated != b.Generated || a.Delivered != b.Delivered {
		t.Fatal("counts differ across identical runs")
	}
	for c := range a.PerClass {
		if a.PerClass[c] != b.PerClass[c] {
			t.Fatalf("class %d stats differ: %+v vs %+v", c, a.PerClass[c], b.PerClass[c])
		}
	}
}

// The central validation experiment: simulated worst-case end-to-end
// queueing delay never exceeds the configuration-time analytic bound for
// the same route set and utilization.
func TestSimulatedDelayWithinAnalyticBound(t *testing.T) {
	net := lineNet(t, 4)
	m := delay.NewModel(net)
	const nFlows = 20
	voice := traffic.Voice()

	rs := routes.NewSet(net)
	path := []int{0, 1, 2, 3}
	r, err := routes.FromRouterPath(net, "voice", path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Add(r); err != nil {
		t.Fatal(err)
	}
	// The admission-control population: alpha sized to exactly nFlows on
	// every server of the path.
	alpha := nFlows * voice.Bucket.Rate / 100e6
	res, err := m.SolveTwoClass(delay.ClassInput{Class: voice, Alpha: alpha, Routes: rs})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("analysis diverged")
	}
	bound := r.Delay(res.D)

	s, _ := New(net, Config{Seed: 5})
	srvPath := serverPath(t, net, path...)
	for i := 0; i < nFlows; i++ {
		f := voiceFlow(srvPath)
		f.Pattern = GreedyBurst // synchronized worst-case bursts
		if _, err := s.AddFlow(f); err != nil {
			t.Fatal(err)
		}
	}
	simres, err := s.Run(2.0)
	if err != nil {
		t.Fatal(err)
	}
	observed := simres.PerClass[0].MaxQueueing
	if observed > bound {
		t.Errorf("simulated max queueing %g exceeds analytic bound %g", observed, bound)
	}
	if observed == 0 {
		t.Error("synchronized bursts produced no queueing — simulator broken")
	}
	t.Logf("observed %.6gs vs bound %.6gs (%.1f%% of bound)", observed, bound, 100*observed/bound)
}

func BenchmarkSimVoiceMCI(b *testing.B) {
	net := topology.MCI()
	rg := net.RouterGraph()
	for i := 0; i < b.N; i++ {
		s, err := New(net, Config{Seed: 9})
		if err != nil {
			b.Fatal(err)
		}
		pairs := net.Pairs()[:40]
		for _, p := range pairs {
			path, err := rg.ShortestPath(p[0], p[1])
			if err != nil {
				b.Fatal(err)
			}
			srv, err := net.ServersFromRouterPath(path)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.AddFlow(voiceFlow(srv)); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := s.Run(0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMeanQueueingZeroDelivered(t *testing.T) {
	var cs ClassStats
	if cs.MeanQueueing() != 0 {
		t.Error("zero-delivered mean not 0")
	}
}

func TestWFQSchedulerRuns(t *testing.T) {
	net := lineNet(t, 3)
	route := serverPath(t, net, 0, 1, 2)
	s, err := New(net, Config{Scheduler: "wfq", Classes: 2, Weights: []float64{3, 1}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	f0 := voiceFlow(route)
	f0.Pattern = GreedyBurst
	f0.Burst = 6400
	f1 := voiceFlow(route)
	f1.Class = 1
	f1.Pattern = GreedyBurst
	f1.Burst = 6400
	if _, err := s.AddFlow(f0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddFlow(f1); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Generated || res.Delivered == 0 {
		t.Fatalf("wfq lost packets: %d/%d", res.Delivered, res.Generated)
	}
	// The weight-3 class must see no more queueing than the weight-1
	// class under symmetric load.
	if res.PerClass[0].MaxQueueing > res.PerClass[1].MaxQueueing+1e-9 {
		t.Errorf("weighted class queued more: %g vs %g",
			res.PerClass[0].MaxQueueing, res.PerClass[1].MaxQueueing)
	}
}

func TestPolicingProtectsTheNetwork(t *testing.T) {
	// A 2x-misbehaving voice source shares a path with conformant ones.
	// Unpoliced, the aggregate exceeds the admission contract; with the
	// paper's edge policing, the excess is dropped at the entrance and
	// roughly half the cheater's packets are policed.
	net := lineNet(t, 3)
	route := serverPath(t, net, 0, 1, 2)
	build := func(police bool) *Results {
		s, err := New(net, Config{Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := s.AddFlow(voiceFlow(route)); err != nil {
				t.Fatal(err)
			}
		}
		cheat := voiceFlow(route)
		cheat.Misbehave = 2
		cheat.Police = police
		if _, err := s.AddFlow(cheat); err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(2.0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	open := build(false)
	closed := build(true)
	if open.PerClass[0].Policed != 0 {
		t.Error("unpoliced run recorded police drops")
	}
	if closed.PerClass[0].Policed == 0 {
		t.Error("policed run dropped nothing")
	}
	// The cheater emits ~200 packets in 2 s at 2x; about half must go.
	dropped := float64(closed.PerClass[0].Policed)
	if dropped < 60 || dropped > 140 {
		t.Errorf("policed %v packets, want ~100", dropped)
	}
	// Network load under policing equals the contract: delivered counts
	// (excluding drops) match generated minus policed.
	if closed.Delivered != closed.Generated-closed.PerClass[0].Policed {
		t.Errorf("delivered %d, generated %d, policed %d",
			closed.Delivered, closed.Generated, closed.PerClass[0].Policed)
	}
}

func TestPolicingValidation(t *testing.T) {
	net := lineNet(t, 3)
	s, _ := New(net, Config{})
	route := serverPath(t, net, 0, 1, 2)
	f := voiceFlow(route)
	f.Misbehave = -1
	if _, err := s.AddFlow(f); err == nil {
		t.Error("negative misbehavior accepted")
	}
	f = voiceFlow(route)
	f.Police = true
	f.Burst = 100 // below packet size
	if _, err := s.AddFlow(f); err == nil {
		t.Error("policer with burst < packet accepted")
	}
}

func TestPercentiles(t *testing.T) {
	var cs ClassStats
	if cs.Percentile(0.99) != 0 {
		t.Error("empty percentile not 0")
	}
	// Simulate a contended run and sanity-check the quantiles.
	net := lineNet(t, 3)
	route := serverPath(t, net, 0, 1, 2)
	s, _ := New(net, Config{Seed: 6})
	for i := 0; i < 30; i++ {
		f := voiceFlow(route)
		f.Pattern = GreedyBurst
		if _, err := s.AddFlow(f); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Run(1.0)
	if err != nil {
		t.Fatal(err)
	}
	st := res.PerClass[0]
	p50, p99, p100 := st.Percentile(0.5), st.Percentile(0.99), st.Percentile(1)
	if !(p50 <= p99 && p99 <= p100*1.0000001) {
		t.Errorf("percentiles not monotone: %g %g %g", p50, p99, p100)
	}
	// The log2-resolution estimate brackets the exact maximum within 2x.
	if p100 < st.MaxQueueing/2 || p100 > 2*st.MaxQueueing+2e-6 {
		t.Errorf("p100 = %g vs max %g", p100, st.MaxQueueing)
	}
	if st.Percentile(-1) > st.Percentile(2) {
		t.Error("clamping broken")
	}
}

func TestDRRSchedulerRuns(t *testing.T) {
	net := lineNet(t, 3)
	route := serverPath(t, net, 0, 1, 2)
	s, err := New(net, Config{Scheduler: "drr", Classes: 2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for class := 0; class < 2; class++ {
		f := voiceFlow(route)
		f.Class = class
		f.Pattern = GreedyBurst
		f.Burst = 6400
		if _, err := s.AddFlow(f); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Run(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Generated || res.Delivered == 0 {
		t.Fatalf("drr lost packets: %d/%d", res.Delivered, res.Generated)
	}
}
