package sim

// event is one pending simulation occurrence. The queue orders events
// by (at, seq): virtual time first, insertion order as the tiebreak, so
// runs are deterministic regardless of how the underlying heap happens
// to balance.
//
// The same event type serves both simulators: the classic packet sim
// uses evEmit/evDone, the flow-lifetime layer adds evArrive/evDepart.
type event struct {
	at   float64
	seq  uint64
	kind uint8
	// a is the event operand: the flow (evEmit, evDepart) or the
	// server (evDone). evArrive carries no operand — the pending call
	// lives in the lifetime layer, one at a time.
	a int32
}

// event kinds
const (
	evEmit   = iota // a flow emits its next packet
	evDone          // a server finishes transmitting
	evArrive        // the next flow lifetime arrives (scale sim)
	evDepart        // an admitted flow's holding time expires (scale sim)
)

// eventQueue is a plain binary min-heap of events, specialized to avoid
// the interface boxing and per-push allocation of container/heap. The
// backing slice is preallocated once and reused, so a run that keeps
// millions of events in flight costs one slice, not millions of
// heap.Push allocations.
type eventQueue struct {
	ev  []event
	seq uint64
}

// newEventQueue returns a queue with room for capacity events before
// the first grow.
func newEventQueue(capacity int) *eventQueue {
	if capacity < 16 {
		capacity = 16
	}
	return &eventQueue{ev: make([]event, 0, capacity)}
}

func (q *eventQueue) len() int { return len(q.ev) }

// push inserts e, stamping its insertion sequence.
func (q *eventQueue) push(e event) {
	q.seq++
	e.seq = q.seq
	q.ev = append(q.ev, e)
	// Sift up.
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

// pop removes and returns the earliest event. The queue must be
// non-empty.
func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	q.ev[0] = q.ev[n]
	q.ev = q.ev[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.less(l, small) {
			small = l
		}
		if r < n && q.less(r, small) {
			small = r
		}
		if small == i {
			return top
		}
		q.ev[i], q.ev[small] = q.ev[small], q.ev[i]
		i = small
	}
}

func (q *eventQueue) less(i, j int) bool {
	if q.ev[i].at != q.ev[j].at {
		return q.ev[i].at < q.ev[j].at
	}
	return q.ev[i].seq < q.ev[j].seq
}
