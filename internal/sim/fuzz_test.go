package sim

import (
	"math"
	"testing"
)

// FuzzSimScaleSpec throws arbitrary run descriptions at the scale-spec
// parser. The parser must never panic, never touch the filesystem
// (file topologies are rejected), never accept an oversized topology,
// and must be deterministic: re-parsing an accepted spec yields the
// same network shape and horizon.
func FuzzSimScaleSpec(f *testing.F) {
	f.Add("nsfnet", "poisson:rate=200,holding=10", int64(7), uint64(10000), 0.0)
	f.Add("metro:5", "mmpp:high=300,low=60,on=2,off=3,holding=8", int64(42), uint64(8000), 0.0)
	f.Add("backbone:21", "poisson:rate=3000,holding=6", int64(21), uint64(100000), 0.0)
	f.Add("continental:3", "poisson:rate=100", int64(1), uint64(0), 60.0)
	f.Add("line:4", "poisson:rate=2000,holding=60", int64(3), uint64(30000), 0.0)
	f.Add("grid:4x4", "mmpp:high=10,low=1,on=1,off=1", int64(0), uint64(1), 0.0)
	f.Add("tree:3:2", "poisson:rate=1", int64(-1), uint64(1), 1.5)
	f.Add("@file.json", "poisson:rate=1", int64(0), uint64(1), 0.0)
	f.Add("waxman:4096:1", "poisson:rate=1", int64(0), uint64(1), 0.0)
	f.Add("random:16:8:1", "erlang:rate=1", int64(0), uint64(1), 0.0)
	f.Add("", "", int64(0), uint64(0), math.NaN())

	f.Fuzz(func(t *testing.T, topo, arrival string, seed int64, lifetimes uint64, duration float64) {
		spec, err := ParseScaleSpec(topo, arrival, seed, lifetimes, duration)
		if err != nil {
			return
		}
		if spec.Net == nil {
			t.Fatalf("accepted spec %q with nil network", topo)
		}
		if n := spec.Net.NumRouters(); n < 2 || n > maxScaleRouters {
			t.Fatalf("accepted topology %q with %d routers", topo, n)
		}
		if r := spec.Arrival.MeanRate(); !(r > 0) || math.IsInf(r, 0) {
			t.Fatalf("accepted arrival %q with mean rate %g", arrival, r)
		}
		h := spec.Horizon()
		if !(h > 0) || math.IsInf(h, 0) || math.IsNaN(h) {
			t.Fatalf("accepted spec with unusable horizon %g", h)
		}
		again, err := ParseScaleSpec(topo, arrival, seed, lifetimes, duration)
		if err != nil {
			t.Fatalf("re-parse of accepted spec failed: %v", err)
		}
		if again.Net.NumRouters() != spec.Net.NumRouters() ||
			again.Net.NumServers() != spec.Net.NumServers() ||
			again.Horizon() != h {
			t.Fatalf("re-parse of %q diverged", topo)
		}
	})
}
