package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"ubac/internal/admission"
	"ubac/internal/sched"
	"ubac/internal/topology"
	"ubac/internal/workload"
)

// ScaleConfig configures a flow-lifetime scale run.
type ScaleConfig struct {
	// Scheduler kind: "priority" (default), "fifo", "wfq", or "drr".
	Scheduler string
	// Weights are the WFQ/DRR class weights (nil = equal).
	Weights []float64
	// Seed drives every random draw the simulator itself makes (class
	// mix). The workload source carries its own rng; give it one seeded
	// from the same run seed for a fully reproducible run.
	Seed int64
	// Lifetimes stops the run after this many flow arrivals have been
	// offered to the controller (0 = until the source is exhausted).
	Lifetimes uint64
	// PacketsPerFlow caps how many packets each admitted flow emits: a
	// leaky-bucket burst at admit, then its CBR cadence until the cap or
	// teardown. The cap is what keeps a million-lifetime run's event
	// count linear in lifetimes rather than in holding time (default 4).
	PacketsPerFlow int
	// ClassWeights is the arrival class mix, parallel to the
	// controller's class order (nil = uniform). Each arriving call draws
	// its class from this distribution.
	ClassWeights []float64
}

// ScaleClassReport aggregates one class's flow- and packet-level
// statistics over a scale run. All fields are totals over the whole
// run; delay fields are seconds.
type ScaleClassReport struct {
	Class            string  `json:"class"`
	Offered          uint64  `json:"offered"`
	Admitted         uint64  `json:"admitted"`
	RejectedCapacity uint64  `json:"rejected_capacity"`
	RejectedNoRoute  uint64  `json:"rejected_no_route"`
	Packets          uint64  `json:"packets"`
	Delivered        uint64  `json:"delivered"`
	MaxQueueing      float64 `json:"max_queueing"`
	MeanQueueing     float64 `json:"mean_queueing"`
	P99Queueing      float64 `json:"p99_queueing"`
	MaxLatency       float64 `json:"max_latency"`
}

// ScaleReport is the machine-readable outcome of a scale run. Field
// order is fixed and no maps appear anywhere, so marshaling the report
// of two same-seed runs yields identical bytes — the determinism
// contract CI compares against.
type ScaleReport struct {
	Seed      int64   `json:"seed"`
	Lifetimes uint64  `json:"lifetimes"`
	Admitted  uint64  `json:"admitted"`
	Rejected  uint64  `json:"rejected"`
	Teardowns uint64  `json:"teardowns"`
	Duration  float64 `json:"virtual_duration"`
	// MaxActive is the peak number of concurrently admitted flows.
	MaxActive int `json:"max_active"`
	// PeakSlots and PeakPackets witness the memory bound: live flow
	// slots and live packets track concurrency, not total lifetimes.
	PeakSlots   int `json:"peak_slots"`
	PeakPackets int `json:"peak_packets"`
	// MaxBacklog is the largest packet backlog at any one server.
	MaxBacklog int `json:"max_backlog"`
	// MaxHopDelay is the largest single-hop queueing delay anywhere.
	MaxHopDelay float64            `json:"max_hop_delay"`
	PerClass    []ScaleClassReport `json:"per_class"`
	// Bounds is the bound-vs-observed verdict, attached by the harness
	// via CheckObservedMax over ObservedMax.
	Bounds *BoundCheck `json:"bounds,omitempty"`
}

// ObservedMax returns the per-class observed worst queueing delays,
// parallel to the controller's class order — the vector
// CheckObservedMax validates against the analytic bounds.
func (r *ScaleReport) ObservedMax() []float64 {
	obs := make([]float64, len(r.PerClass))
	for i := range r.PerClass {
		obs[i] = r.PerClass[i].MaxQueueing
	}
	return obs
}

// scaleSlot is one live flow in the churn table. Slots are reused
// through a freelist: a slot is recycled once its flow has departed
// AND no emitted packet still references it, so memory tracks
// concurrent activity rather than total lifetimes.
type scaleSlot struct {
	servers  []int // route link servers (shared with the route set)
	id       admission.FlowID
	departAt float64
	period   float64 // CBR inter-packet gap, Size/Rate
	class    int32
	emitted  int32
	inflight int32
	closed   bool
}

// scaleClass is the per-class emission profile derived from the
// admission configuration.
type scaleClass struct {
	name  string
	size  float64 // packet size in bits (= bucket depth: one burst/packet)
	burst int32   // packets emitted back-to-back at admit
	prio  int
}

// ScaleSim is the flow-lifetime discrete-event simulator: arrivals and
// teardowns are simulation events, every arrival is offered to the real
// admission controller in virtual time, and admitted flows emit a
// bounded burst of packets through the link-server network so observed
// queueing delays can be checked against the verified bounds.
//
// Create with NewScale and Run once. Runs are deterministic: same
// configuration, source, and seed produce a byte-identical marshaled
// ScaleReport.
type ScaleSim struct {
	net     *topology.Network
	ctrl    *admission.Controller
	classes []scaleClass
	// routeOf[ci][src*nrt+dst] mirrors the controller's route table so
	// the simulator knows which servers an admitted flow's packets
	// traverse (last route for a pair wins, as in the controller).
	routeOf [][]int32
	// paths[ci][ri] is route ri's link-server path for class ci.
	paths [][][]int
	// rates[ci] is the class's declared long-run rate in bits/second.
	rates []float64
	src   workload.Source
	cfg   ScaleConfig
	ran   bool
}

// NewScale builds a scale simulator over the controller's network. The
// classes slice must be the exact ClassConfig slice the controller was
// built with (same order); src supplies the arrival process.
func NewScale(ctrl *admission.Controller, classes []admission.ClassConfig, src workload.Source, cfg ScaleConfig) (*ScaleSim, error) {
	if ctrl == nil {
		return nil, fmt.Errorf("sim: nil controller")
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("sim: no classes")
	}
	if src == nil {
		return nil, fmt.Errorf("sim: nil workload source")
	}
	if cfg.Scheduler == "" {
		cfg.Scheduler = "priority"
	}
	if cfg.PacketsPerFlow == 0 {
		cfg.PacketsPerFlow = 4
	}
	if cfg.PacketsPerFlow < 0 {
		return nil, fmt.Errorf("sim: negative packet cap")
	}
	if cfg.ClassWeights != nil && len(cfg.ClassWeights) != len(classes) {
		return nil, fmt.Errorf("sim: %d class weights for %d classes", len(cfg.ClassWeights), len(classes))
	}
	for i, w := range cfg.ClassWeights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("sim: invalid weight %g for class %d", w, i)
		}
	}
	net := classes[0].Routes.Network()
	nrt := net.NumRouters()
	s := &ScaleSim{net: net, ctrl: ctrl, src: src, cfg: cfg}
	for _, cc := range classes {
		size := cc.Class.Bucket.Burst
		if size <= 0 || cc.Class.Bucket.Rate <= 0 {
			return nil, fmt.Errorf("sim: class %q needs a positive bucket", cc.Class.Name)
		}
		s.classes = append(s.classes, scaleClass{
			name:  cc.Class.Name,
			size:  size,
			burst: 1, // bucket depth == packet size: one-packet burst
			prio:  cc.Class.Priority,
		})
		s.rates = append(s.rates, cc.Class.Bucket.Rate)
		table := make([]int32, nrt*nrt)
		for j := range table {
			table[j] = -1
		}
		for r := 0; r < cc.Routes.Len(); r++ {
			rt := cc.Routes.Route(r)
			table[rt.Src*nrt+rt.Dst] = int32(r)
		}
		s.routeOf = append(s.routeOf, table)
	}
	// Keep the route sets for server-path lookup at admit time.
	s.paths = make([][][]int, len(classes))
	for ci, cc := range classes {
		s.paths[ci] = make([][]int, cc.Routes.Len())
		for r := 0; r < cc.Routes.Len(); r++ {
			s.paths[ci][r] = cc.Routes.Route(r).Servers
		}
	}
	return s, nil
}

// Run executes the scale simulation to completion: it pulls arrivals
// from the source (up to cfg.Lifetimes), offers each to the controller
// under the virtual clock, simulates the admitted flows' packets, and
// drains all in-flight work before reporting. A ScaleSim runs once.
func (s *ScaleSim) Run() (*ScaleReport, error) {
	if s.ran {
		return nil, fmt.Errorf("sim: already ran")
	}
	s.ran = true
	rng := rand.New(rand.NewSource(s.cfg.Seed))

	prioClasses := 1
	for _, c := range s.classes {
		if c.prio+1 > prioClasses {
			prioClasses = c.prio + 1
		}
	}
	nsrv := s.net.NumServers()
	servers := make([]serverRun, nsrv)
	for i := range servers {
		q, err := sched.NewScheduler(s.cfg.Scheduler, prioClasses, s.cfg.Weights)
		if err != nil {
			return nil, err
		}
		servers[i] = serverRun{q: q, cap: s.net.ServerCapacity(i)}
	}

	// Virtual clock: the controller reads simulation time. Every event
	// handler updates vnow before touching the controller, so audit
	// timestamps and latencies are pure functions of the event sequence.
	vnow := 0.0
	s.ctrl.SetClock(func() time.Time { return time.Unix(0, int64(math.Round(vnow*1e9))) })
	defer s.ctrl.SetClock(nil)

	rep := &ScaleReport{Seed: s.cfg.Seed}
	stats := make([]ClassStats, len(s.classes))
	rep.PerClass = make([]ScaleClassReport, len(s.classes))
	for i, c := range s.classes {
		rep.PerClass[i].Class = c.name
	}

	// Flow slot table with freelist: bounded by peak concurrency.
	var slots []scaleSlot
	var free []int32
	alloc := func() int32 {
		if n := len(free); n > 0 {
			idx := free[n-1]
			free = free[:n-1]
			return idx
		}
		slots = append(slots, scaleSlot{})
		if len(slots) > rep.PeakSlots {
			rep.PeakSlots = len(slots)
		}
		return int32(len(slots) - 1)
	}
	release := func(idx int32) {
		slots[idx] = scaleSlot{}
		free = append(free, idx)
	}

	// Packet pool, same idea: live packets bound the pool.
	var pool []*sched.Packet
	livePackets := 0
	newPacket := func() *sched.Packet {
		livePackets++
		if livePackets > rep.PeakPackets {
			rep.PeakPackets = livePackets
		}
		if n := len(pool); n > 0 {
			p := pool[n-1]
			pool = pool[:n-1]
			*p = sched.Packet{}
			return p
		}
		return &sched.Packet{}
	}
	freePacket := func(p *sched.Packet) {
		livePackets--
		pool = append(pool, p)
	}

	q := newEventQueue(1024)
	classWeightTotal := 0.0
	for _, w := range s.cfg.ClassWeights {
		classWeightTotal += w
	}
	drawClass := func() int {
		if len(s.classes) == 1 {
			return 0
		}
		if s.cfg.ClassWeights == nil || classWeightTotal <= 0 {
			return rng.Intn(len(s.classes))
		}
		x := rng.Float64() * classWeightTotal
		for i, w := range s.cfg.ClassWeights {
			x -= w
			if x < 0 {
				return i
			}
		}
		return len(s.classes) - 1
	}

	var pktSeq uint64
	active := 0

	var startNext func(srv int, now float64)
	arrivePkt := func(p *sched.Packet, srv int, now float64) {
		servers[srv].q.Enqueue(p, now)
		backlog := servers[srv].q.Len()
		if servers[srv].busy {
			backlog++
		}
		if backlog > rep.MaxBacklog {
			rep.MaxBacklog = backlog
		}
		if !servers[srv].busy {
			startNext(srv, now)
		}
	}
	startNext = func(srv int, now float64) {
		p, ok := servers[srv].q.Dequeue(now)
		if !ok {
			servers[srv].busy = false
			servers[srv].current = nil
			return
		}
		wait := now - p.Enqueued
		if wait > rep.MaxHopDelay {
			rep.MaxHopDelay = wait
		}
		p.Wait += wait
		servers[srv].busy = true
		servers[srv].current = p
		q.push(event{at: now + p.Size/servers[srv].cap, kind: evDone, a: int32(srv)})
	}

	slotDone := func(idx int32) {
		sl := &slots[idx]
		if sl.closed && sl.inflight == 0 {
			release(idx)
		}
	}
	deliver := func(p *sched.Packet, now float64) {
		sl := &slots[p.Flow]
		ci := sl.class
		cs := &stats[ci]
		cs.Delivered++
		w := p.Wait
		if w > cs.MaxQueueing {
			cs.MaxQueueing = w
		}
		cs.SumQueueing += w
		cs.hist[histBin(w)]++
		if lat := now - p.Born; lat > cs.MaxLatency {
			cs.MaxLatency = lat
		}
		idx := int32(p.Flow)
		sl.inflight--
		freePacket(p)
		slotDone(idx)
	}

	emit := func(idx int32, now float64) {
		sl := &slots[idx]
		cl := &s.classes[sl.class]
		pktSeq++
		stats[sl.class].Generated++
		p := newPacket()
		p.ID = pktSeq
		p.Class = cl.prio
		p.Flow = int(idx)
		p.Size = cl.size
		p.Born = now
		sl.inflight++
		sl.emitted++
		arrivePkt(p, sl.servers[0], now)
		if int(sl.emitted) < s.cfg.PacketsPerFlow {
			next := now
			if sl.emitted >= cl.burst {
				next = now + sl.period
			}
			// Strictly before the departure: the teardown event carries a
			// lower sequence number than any emit scheduled at or after
			// it, so an emit past departAt could reference a freed slot.
			if next < sl.departAt {
				q.push(event{at: next, kind: evEmit, a: idx})
			}
		}
	}

	// Arrival pump: one pending call at a time, pulled in source order.
	var pending workload.Call
	havePending := false
	pull := func() {
		havePending = false
		if s.cfg.Lifetimes > 0 && rep.Lifetimes >= s.cfg.Lifetimes {
			return
		}
		c, ok := s.src.Next()
		if !ok {
			return
		}
		pending = c
		havePending = true
		q.push(event{at: c.Arrive, kind: evArrive})
	}
	pull()

	admitCall := func(c workload.Call, now float64) {
		ci := drawClass()
		cl := &s.classes[ci]
		pc := &rep.PerClass[ci]
		pc.Offered++
		id, err := s.ctrl.Admit(cl.name, c.Src, c.Dst)
		if err != nil {
			rep.Rejected++
			switch {
			case errors.Is(err, admission.ErrNoRoute):
				pc.RejectedNoRoute++
			default:
				pc.RejectedCapacity++
			}
			return
		}
		rep.Admitted++
		pc.Admitted++
		active++
		if active > rep.MaxActive {
			rep.MaxActive = active
		}
		ri := s.routeOf[ci][c.Src*s.net.NumRouters()+c.Dst]
		idx := alloc()
		slots[idx] = scaleSlot{
			servers:  s.paths[ci][ri],
			id:       id,
			departAt: now + c.Holding,
			period:   cl.size / s.classBucketRate(ci),
			class:    int32(ci),
		}
		q.push(event{at: slots[idx].departAt, kind: evDepart, a: idx})
		if s.cfg.PacketsPerFlow > 0 && now < slots[idx].departAt {
			q.push(event{at: now, kind: evEmit, a: idx})
		}
	}

	for q.len() > 0 {
		e := q.pop()
		vnow = e.at
		if e.at > rep.Duration {
			rep.Duration = e.at
		}
		switch e.kind {
		case evArrive:
			if !havePending {
				return nil, fmt.Errorf("sim: arrival event with no pending call")
			}
			c := pending
			rep.Lifetimes++
			admitCall(c, e.at)
			pull()
		case evDepart:
			sl := &slots[e.a]
			if err := s.ctrl.Teardown(sl.id); err != nil {
				return nil, fmt.Errorf("sim: teardown of flow %d: %w", sl.id, err)
			}
			rep.Teardowns++
			active--
			sl.closed = true
			slotDone(e.a)
		case evEmit:
			emit(e.a, e.at)
		case evDone:
			srv := int(e.a)
			p := servers[srv].current
			if p == nil {
				return nil, fmt.Errorf("sim: completion on idle server %d", srv)
			}
			p.Hop++
			now := e.at
			route := slots[p.Flow].servers
			if p.Hop < len(route) {
				servers[srv].busy = false
				servers[srv].current = nil
				startNext(srv, now)
				arrivePkt(p, route[p.Hop], now)
			} else {
				deliver(p, now)
				servers[srv].busy = false
				servers[srv].current = nil
				startNext(srv, now)
			}
		}
	}

	for i := range stats {
		pc := &rep.PerClass[i]
		pc.Packets = stats[i].Generated
		pc.Delivered = stats[i].Delivered
		pc.MaxQueueing = stats[i].MaxQueueing
		pc.MeanQueueing = stats[i].MeanQueueing()
		pc.P99Queueing = stats[i].Percentile(0.99)
		pc.MaxLatency = stats[i].MaxLatency
	}
	return rep, nil
}

// classBucketRate returns the class's declared long-run rate. Kept as a
// method so the emission cadence has one source of truth.
func (s *ScaleSim) classBucketRate(ci int) float64 { return s.rates[ci] }
