package sim

import (
	"fmt"
	"strings"

	"ubac/internal/delay"
)

// ClassBoundCheck compares one class's simulated worst-case against its
// analytic bound.
type ClassBoundCheck struct {
	// Class is the traffic class name.
	Class string `json:"class"`
	// Observed is the worst end-to-end queueing delay the run measured
	// for the class, in seconds.
	Observed float64 `json:"observed"`
	// Bound is the analytic worst route bound (queueing only), in
	// seconds.
	Bound float64 `json:"bound"`
	// Route names the route carrying the class's worst analytic bound
	// ("src->dst/hops"), the route a violation is charged against.
	Route string `json:"route"`
	// RouteIndex is that route's index in the class's route set, -1 if
	// the set is empty.
	RouteIndex int `json:"route_index"`
	// Within reports Observed <= Bound (up to solver tolerance).
	Within bool `json:"within"`
}

// Margin returns the fraction of the bound left unused,
// (Bound − Observed) / Bound — 1 means no queueing was observed, 0
// means the bound was met exactly, negative means a violation. Zero
// bound reports no margin.
func (c ClassBoundCheck) Margin() float64 {
	if c.Bound <= 0 {
		return 0
	}
	return (c.Bound - c.Observed) / c.Bound
}

// Verdict renders the check as one line naming the class, the bounding
// route, the observed maximum and the bound — the shape CI failures
// surface.
func (c ClassBoundCheck) Verdict() string {
	if c.Within {
		return fmt.Sprintf("ok: class %s route %s observed %.6gs <= bound %.6gs (margin %.1f%%)",
			c.Class, c.Route, c.Observed, c.Bound, 100*c.Margin())
	}
	return fmt.Sprintf("VIOLATION: class %s route %s observed %.6gs > bound %.6gs (excess %.6gs)",
		c.Class, c.Route, c.Observed, c.Bound, c.Observed-c.Bound)
}

// BoundCheck is the outcome of validating one simulation run against
// the configuration-time delay analysis.
type BoundCheck struct {
	// Classes holds one check per input class, in priority order.
	Classes []ClassBoundCheck `json:"classes"`
	// AllWithin reports whether every class stayed within its bound —
	// the paper's validation claim for the run.
	AllWithin bool `json:"all_within"`
}

// Violations returns the checks that failed, in class order.
func (b *BoundCheck) Violations() []ClassBoundCheck {
	var v []ClassBoundCheck
	for _, c := range b.Classes {
		if !c.Within {
			v = append(v, c)
		}
	}
	return v
}

// Verdict renders the whole check: one line per violated class, or a
// single all-clear line.
func (b *BoundCheck) Verdict() string {
	vs := b.Violations()
	if len(vs) == 0 {
		return fmt.Sprintf("ok: all %d classes within their verified bounds", len(b.Classes))
	}
	lines := make([]string, len(vs))
	for i, c := range vs {
		lines[i] = c.Verdict()
	}
	return strings.Join(lines, "\n")
}

// CheckAgainstBounds validates a finished run against the
// configuration-time analysis: it re-solves the delay fixed point with
// m (using the parallel sweep when m.Workers > 1), takes each class's
// worst route bound, and compares it to the run's observed per-class
// worst queueing delay. inputs must be priority-ordered and parallel to
// the run's class indexes (simulated class i carries inputs[i]).
func CheckAgainstBounds(m *delay.Model, inputs []delay.ClassInput, out *Results) (*BoundCheck, error) {
	if m == nil || out == nil {
		return nil, fmt.Errorf("sim: nil model or results")
	}
	observed := make([]float64, len(inputs))
	for i := range inputs {
		if i < len(out.PerClass) {
			observed[i] = out.PerClass[i].MaxQueueing
		}
	}
	return CheckObservedMax(m, inputs, observed)
}

// CheckObservedMax is the core of CheckAgainstBounds for callers that
// carry their own per-class observed maxima (the flow-lifetime scale
// harness streams statistics instead of building a Results). observed
// must be parallel to inputs; a class the run never exercised passes
// trivially with Observed 0.
func CheckObservedMax(m *delay.Model, inputs []delay.ClassInput, observed []float64) (*BoundCheck, error) {
	if m == nil {
		return nil, fmt.Errorf("sim: nil model")
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("sim: no classes to check")
	}
	if len(observed) != len(inputs) {
		return nil, fmt.Errorf("sim: %d observed maxima for %d classes", len(observed), len(inputs))
	}
	v, err := m.Verify(inputs)
	if err != nil {
		return nil, err
	}
	if !v.Converged {
		return nil, fmt.Errorf("sim: delay fixed point diverged; configuration unsafe")
	}
	net := m.Network()
	bc := &BoundCheck{AllWithin: true}
	for i, in := range inputs {
		bound, ri := in.Routes.MaxRouteDelay(v.Results[i].D)
		route := "<none>"
		if ri >= 0 && ri < in.Routes.Len() {
			rt := in.Routes.Route(ri)
			route = fmt.Sprintf("%s->%s/%d",
				net.Router(rt.Src).Name, net.Router(rt.Dst).Name, rt.Hops())
		} else {
			ri = -1
		}
		within := delay.MeetsDeadline(observed[i], bound)
		if !within {
			bc.AllWithin = false
		}
		bc.Classes = append(bc.Classes, ClassBoundCheck{
			Class:      in.Class.Name,
			Observed:   observed[i],
			Bound:      bound,
			Route:      route,
			RouteIndex: ri,
			Within:     within,
		})
	}
	return bc, nil
}
