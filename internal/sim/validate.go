package sim

import (
	"fmt"

	"ubac/internal/delay"
)

// ClassBoundCheck compares one class's simulated worst-case against its
// analytic bound.
type ClassBoundCheck struct {
	// Class is the traffic class name.
	Class string
	// Observed is the worst end-to-end queueing delay the run measured
	// for the class, in seconds.
	Observed float64
	// Bound is the analytic worst route bound (queueing only), in
	// seconds.
	Bound float64
	// Within reports Observed <= Bound (up to solver tolerance).
	Within bool
}

// BoundCheck is the outcome of validating one simulation run against
// the configuration-time delay analysis.
type BoundCheck struct {
	// Classes holds one check per input class, in priority order.
	Classes []ClassBoundCheck
	// AllWithin reports whether every class stayed within its bound —
	// the paper's validation claim for the run.
	AllWithin bool
}

// CheckAgainstBounds validates a finished run against the
// configuration-time analysis: it re-solves the delay fixed point with
// m (using the parallel sweep when m.Workers > 1), takes each class's
// worst route bound, and compares it to the run's observed per-class
// worst queueing delay. inputs must be priority-ordered and parallel to
// the run's class indexes (simulated class i carries inputs[i]).
func CheckAgainstBounds(m *delay.Model, inputs []delay.ClassInput, out *Results) (*BoundCheck, error) {
	if m == nil || out == nil {
		return nil, fmt.Errorf("sim: nil model or results")
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("sim: no classes to check")
	}
	v, err := m.Verify(inputs)
	if err != nil {
		return nil, err
	}
	if !v.Converged {
		return nil, fmt.Errorf("sim: delay fixed point diverged; configuration unsafe")
	}
	bc := &BoundCheck{AllWithin: true}
	for i, in := range inputs {
		bound, _ := in.Routes.MaxRouteDelay(v.Results[i].D)
		observed := 0.0
		if i < len(out.PerClass) {
			observed = out.PerClass[i].MaxQueueing
		}
		within := delay.MeetsDeadline(observed, bound)
		if !within {
			bc.AllWithin = false
		}
		bc.Classes = append(bc.Classes, ClassBoundCheck{
			Class:    in.Class.Name,
			Observed: observed,
			Bound:    bound,
			Within:   within,
		})
	}
	return bc, nil
}
