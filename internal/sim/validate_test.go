package sim

import (
	"testing"

	"ubac/internal/delay"
	"ubac/internal/routes"
	"ubac/internal/traffic"
)

// TestCheckAgainstBounds runs the TestSimulatedDelayWithinAnalyticBound
// scenario through the packaged validator: the observed worst case must
// land within the analytic bound, identically whether the re-solve runs
// sequentially or on the parallel sweep pool.
func TestCheckAgainstBounds(t *testing.T) {
	net := lineNet(t, 4)
	voice := traffic.Voice()
	const nFlows = 20

	rs := routes.NewSet(net)
	path := []int{0, 1, 2, 3}
	r, err := routes.FromRouterPath(net, "voice", path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Add(r); err != nil {
		t.Fatal(err)
	}
	alpha := nFlows * voice.Bucket.Rate / 100e6
	inputs := []delay.ClassInput{{Class: voice, Alpha: alpha, Routes: rs}}

	s, _ := New(net, Config{Seed: 5})
	srvPath := serverPath(t, net, path...)
	for i := 0; i < nFlows; i++ {
		f := voiceFlow(srvPath)
		f.Pattern = GreedyBurst
		if _, err := s.AddFlow(f); err != nil {
			t.Fatal(err)
		}
	}
	out, err := s.Run(2.0)
	if err != nil {
		t.Fatal(err)
	}

	var ref *BoundCheck
	for _, workers := range []int{0, 4} {
		m := delay.NewModel(net)
		m.Workers = workers
		bc, err := CheckAgainstBounds(m, inputs, out)
		if err != nil {
			t.Fatal(err)
		}
		if len(bc.Classes) != 1 || !bc.AllWithin || !bc.Classes[0].Within {
			t.Fatalf("workers=%d: verified run reported out of bounds: %+v", workers, bc)
		}
		c := bc.Classes[0]
		if c.Class != "voice" || c.Observed <= 0 || c.Observed > c.Bound {
			t.Fatalf("workers=%d: implausible check %+v", workers, c)
		}
		if ref == nil {
			ref = bc
		} else if ref.Classes[0] != bc.Classes[0] {
			t.Fatalf("parallel re-solve changed the check: %+v vs %+v", ref.Classes[0], bc.Classes[0])
		}
	}

	if _, err := CheckAgainstBounds(nil, inputs, out); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := CheckAgainstBounds(delay.NewModel(net), nil, out); err == nil {
		t.Fatal("empty inputs accepted")
	}
	if _, err := CheckAgainstBounds(delay.NewModel(net), inputs, nil); err == nil {
		t.Fatal("nil results accepted")
	}
}
