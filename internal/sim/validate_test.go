package sim

import (
	"fmt"
	"strings"
	"testing"

	"ubac/internal/delay"
	"ubac/internal/routes"
	"ubac/internal/traffic"
)

// TestCheckAgainstBounds runs the TestSimulatedDelayWithinAnalyticBound
// scenario through the packaged validator: the observed worst case must
// land within the analytic bound, identically whether the re-solve runs
// sequentially or on the parallel sweep pool.
func TestCheckAgainstBounds(t *testing.T) {
	net := lineNet(t, 4)
	voice := traffic.Voice()
	const nFlows = 20

	rs := routes.NewSet(net)
	path := []int{0, 1, 2, 3}
	r, err := routes.FromRouterPath(net, "voice", path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Add(r); err != nil {
		t.Fatal(err)
	}
	alpha := nFlows * voice.Bucket.Rate / 100e6
	inputs := []delay.ClassInput{{Class: voice, Alpha: alpha, Routes: rs}}

	s, _ := New(net, Config{Seed: 5})
	srvPath := serverPath(t, net, path...)
	for i := 0; i < nFlows; i++ {
		f := voiceFlow(srvPath)
		f.Pattern = GreedyBurst
		if _, err := s.AddFlow(f); err != nil {
			t.Fatal(err)
		}
	}
	out, err := s.Run(2.0)
	if err != nil {
		t.Fatal(err)
	}

	var ref *BoundCheck
	for _, workers := range []int{0, 4} {
		m := delay.NewModel(net)
		m.Workers = workers
		bc, err := CheckAgainstBounds(m, inputs, out)
		if err != nil {
			t.Fatal(err)
		}
		if len(bc.Classes) != 1 || !bc.AllWithin || !bc.Classes[0].Within {
			t.Fatalf("workers=%d: verified run reported out of bounds: %+v", workers, bc)
		}
		c := bc.Classes[0]
		if c.Class != "voice" || c.Observed <= 0 || c.Observed > c.Bound {
			t.Fatalf("workers=%d: implausible check %+v", workers, c)
		}
		if ref == nil {
			ref = bc
		} else if ref.Classes[0] != bc.Classes[0] {
			t.Fatalf("parallel re-solve changed the check: %+v vs %+v", ref.Classes[0], bc.Classes[0])
		}
	}

	if _, err := CheckAgainstBounds(nil, inputs, out); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := CheckAgainstBounds(delay.NewModel(net), nil, out); err == nil {
		t.Fatal("empty inputs accepted")
	}
	if _, err := CheckAgainstBounds(delay.NewModel(net), inputs, nil); err == nil {
		t.Fatal("nil results accepted")
	}
}

// TestCheckAgainstBoundsViolationReporting injects a synthetic bound
// violation and pins the failure surface: the verdict must name the
// class, the bounding route, the observed maximum and the bound, so a
// CI failure is actionable without re-running the simulation.
func TestCheckAgainstBoundsViolationReporting(t *testing.T) {
	net := lineNet(t, 4)
	voice := traffic.Voice()

	rs := routes.NewSet(net)
	path := []int{0, 1, 2, 3}
	r, err := routes.FromRouterPath(net, "voice", path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Add(r); err != nil {
		t.Fatal(err)
	}
	alpha := 20 * voice.Bucket.Rate / 100e6
	inputs := []delay.ClassInput{{Class: voice, Alpha: alpha, Routes: rs}}
	m := delay.NewModel(net)

	// Establish the analytic bound, then claim an observation beyond it.
	base, err := CheckObservedMax(m, inputs, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	bound := base.Classes[0].Bound
	if bound <= 0 {
		t.Fatalf("no positive bound to violate: %+v", base.Classes[0])
	}
	injected := 2 * bound

	out := &Results{PerClass: []ClassStats{{MaxQueueing: injected}}}
	bc, err := CheckAgainstBounds(m, inputs, out)
	if err != nil {
		t.Fatal(err)
	}
	if bc.AllWithin {
		t.Fatalf("injected violation passed the check: %+v", bc)
	}
	vs := bc.Violations()
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1: %+v", len(vs), bc)
	}
	c := vs[0]
	if c.Class != "voice" || c.Within {
		t.Fatalf("wrong violated class: %+v", c)
	}
	if c.Observed != injected || c.Bound != bound {
		t.Fatalf("violation lost the numbers: %+v (want observed %g bound %g)", c, injected, bound)
	}
	if c.RouteIndex != 0 || c.Route == "" || c.Route == "<none>" {
		t.Fatalf("violation lost the route: %+v", c)
	}
	if m := c.Margin(); m >= 0 {
		t.Fatalf("violated class reports non-negative margin %g", m)
	}

	// The rendered verdict must carry class, route, observed and bound.
	verdict := bc.Verdict()
	for _, want := range []string{
		"VIOLATION",
		"voice",
		c.Route,
		fmt.Sprintf("%.6g", injected),
		fmt.Sprintf("%.6g", bound),
	} {
		if !strings.Contains(verdict, want) {
			t.Fatalf("verdict %q missing %q", verdict, want)
		}
	}

	// A clean check renders an all-clear, not a violation list.
	okVerdict := base.Verdict()
	if strings.Contains(okVerdict, "VIOLATION") || !strings.Contains(okVerdict, "ok") {
		t.Fatalf("clean verdict looks wrong: %q", okVerdict)
	}

	// Observed/inputs length mismatch is an error, not a silent pass.
	if _, err := CheckObservedMax(m, inputs, []float64{0, 0}); err == nil {
		t.Fatal("mismatched observed slice accepted")
	}
}
