// Package sim is a discrete-event network simulator used to validate the
// configuration-time delay bounds empirically: leaky-bucket-conformant
// sources push packets along their configured link-server routes, each
// link server transmits at its capacity under a pluggable scheduling
// discipline (class-based static priority by default, matching the
// paper's forwarding module), and the simulator records per-hop and
// end-to-end delays, deadline misses, and backlog highs.
//
// The paper's analysis bounds *queueing* delay (store-and-forward
// transmission times are constants the paper folds into deadlines), so
// results report both the queueing-only end-to-end delay (comparable to
// the analytic bound) and the raw end-to-end latency.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"ubac/internal/sched"
	"ubac/internal/telemetry"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

// Pattern selects how a flow emits packets.
type Pattern int

const (
	// CBR emits one packet every Size/Rate seconds starting at Offset.
	CBR Pattern = iota
	// GreedyBurst emits its full bucket (Burst bits) back-to-back at
	// Offset, then continues at CBR pace — the leaky-bucket worst case.
	GreedyBurst
	// OnOff alternates active CBR periods at elevated rate with silent
	// periods, keeping the long-run average at Rate. Periods are
	// jittered from the simulation seed.
	OnOff
)

// FlowSpec describes one simulated flow.
type FlowSpec struct {
	// Class is the priority index (0 = highest), used by the scheduler.
	Class int
	// Route is the link-server path the packets traverse.
	Route []int
	// Size is the packet size in bits.
	Size float64
	// Rate is the long-run rate in bits/second.
	Rate float64
	// Burst is the bucket depth in bits (GreedyBurst; must be >= Size).
	Burst float64
	// Pattern selects the emission pattern.
	Pattern Pattern
	// Offset delays the flow's first packet.
	Offset float64
	// Deadline, when positive, marks packets late if their end-to-end
	// queueing delay exceeds it.
	Deadline float64
	// OnTime and OffTime set the OnOff pattern periods (defaults 50 ms
	// on / 50 ms off).
	OnTime, OffTime float64
	// Misbehave multiplies the emission rate above the declared Rate
	// (e.g. 2 = sending twice the contract). 0 or 1 means conformant.
	Misbehave float64
	// Police enables the paper's edge policing for this flow: a leaky
	// bucket (Burst, Rate) at the first hop drops nonconforming packets
	// before they enter the network.
	Police bool
}

func (f FlowSpec) validate(net *topology.Network) error {
	if len(f.Route) == 0 {
		return fmt.Errorf("sim: flow needs a route")
	}
	if f.Misbehave < 0 {
		return fmt.Errorf("sim: negative misbehavior factor")
	}
	if f.Police && f.Burst < f.Size {
		return fmt.Errorf("sim: policing needs burst >= packet size")
	}
	for _, s := range f.Route {
		if s < 0 || s >= net.NumServers() {
			return fmt.Errorf("sim: route server %d out of range", s)
		}
	}
	if f.Size <= 0 || f.Rate <= 0 {
		return fmt.Errorf("sim: flow needs positive size and rate")
	}
	if f.Pattern == GreedyBurst && f.Burst < f.Size {
		return fmt.Errorf("sim: greedy burst %g smaller than packet size %g", f.Burst, f.Size)
	}
	if f.Class < 0 {
		return fmt.Errorf("sim: negative class")
	}
	return nil
}

// Config sets up a simulation.
type Config struct {
	// Scheduler kind: "priority" (default), "fifo", "wfq", or "drr".
	Scheduler string
	// Classes is the number of priority classes (default: max flow
	// class + 1).
	Classes int
	// Weights are the WFQ class weights (nil = equal).
	Weights []float64
	// Seed drives all randomness (OnOff jitter). Same seed, same run.
	Seed int64
}

// ClassStats aggregates per-class delivery statistics.
type ClassStats struct {
	Generated uint64
	Delivered uint64
	// Policed counts packets dropped by edge policing before entering
	// the network.
	Policed uint64
	// Late counts deliveries whose queueing delay exceeded the flow
	// deadline.
	Late uint64
	// MaxQueueing and SumQueueing describe the end-to-end queueing
	// delay (the quantity the paper bounds).
	MaxQueueing float64
	SumQueueing float64
	// MaxLatency is the raw end-to-end latency including transmission.
	MaxLatency float64
	// hist buckets end-to-end queueing delays in log2 bins starting at
	// 1 µs (bin 0 also holds anything smaller). Drives Percentile.
	hist [histBins]uint64
}

// histBins spans 1 µs · 2^63 — far beyond any simulated delay.
const histBins = 40

// histBin maps a queueing delay to its log2 bucket.
func histBin(q float64) int {
	b := 0
	edge := 1e-6
	for q >= edge && b < histBins-1 {
		edge *= 2
		b++
	}
	return b
}

// Percentile returns an upper estimate of the p-quantile (p in [0,1])
// of the class's end-to-end queueing delay, at log2 bin resolution
// (within 2x of the true value). Zero when nothing was delivered.
func (c ClassStats) Percentile(p float64) float64 {
	if c.Delivered == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := uint64(math.Ceil(p * float64(c.Delivered)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b := 0; b < histBins; b++ {
		cum += c.hist[b]
		if cum >= target {
			return 1e-6 * math.Pow(2, float64(b))
		}
	}
	return c.MaxQueueing
}

// MeanQueueing returns the average end-to-end queueing delay.
func (c ClassStats) MeanQueueing() float64 {
	if c.Delivered == 0 {
		return 0
	}
	return c.SumQueueing / float64(c.Delivered)
}

// Results is the outcome of a run.
type Results struct {
	Duration  float64
	PerClass  []ClassStats
	Generated uint64
	Delivered uint64
	// MaxBacklog[s] is the largest packet backlog observed at server s.
	MaxBacklog []int
	// MaxHopDelay[s] is the largest single-hop queueing delay at
	// server s.
	MaxHopDelay []float64
	// PerFlowMaxQueueing[f] is the worst end-to-end queueing delay of
	// flow f's delivered packets.
	PerFlowMaxQueueing []float64
}

// Sim is a single-run simulator instance. Create with New, add flows,
// then Run once.
type Sim struct {
	net   *topology.Network
	cfg   Config
	flows []FlowSpec
	ran   bool
	sink  telemetry.Sink
}

// New returns a simulator over the network.
func New(net *topology.Network, cfg Config) (*Sim, error) {
	if net == nil {
		return nil, fmt.Errorf("sim: nil network")
	}
	if cfg.Scheduler == "" {
		cfg.Scheduler = "priority"
	}
	switch cfg.Scheduler {
	case "priority", "fifo", "wfq", "drr":
	default:
		return nil, fmt.Errorf("sim: unknown scheduler %q", cfg.Scheduler)
	}
	return &Sim{net: net, cfg: cfg, sink: telemetry.Nop{}}, nil
}

// SetSink routes the run's aggregate packet statistics into s as one
// telemetry.SimRun event after Run completes (nil restores the no-op
// default).
func (s *Sim) SetSink(sink telemetry.Sink) {
	if sink == nil {
		sink = telemetry.Nop{}
	}
	s.sink = sink
}

// AddFlow registers a flow and returns its index.
func (s *Sim) AddFlow(f FlowSpec) (int, error) {
	if err := f.validate(s.net); err != nil {
		return 0, err
	}
	s.flows = append(s.flows, f)
	return len(s.flows) - 1, nil
}

type flowRun struct {
	spec      FlowSpec
	nextEmit  float64
	burstLeft int // packets still to emit back-to-back (GreedyBurst)
	onUntil   float64
	offUntil  float64
	// Edge policer state (Police only).
	tokens   float64
	lastFill float64
}

type serverRun struct {
	q       sched.Scheduler
	busy    bool
	current *sched.Packet
	cap     float64
}

// Run executes the simulation for the given number of simulated seconds
// and returns the collected statistics. A Sim can only run once.
func (s *Sim) Run(duration float64) (*Results, error) {
	if s.ran {
		return nil, fmt.Errorf("sim: already ran")
	}
	if duration <= 0 {
		return nil, fmt.Errorf("sim: non-positive duration %g", duration)
	}
	if len(s.flows) == 0 {
		return nil, fmt.Errorf("sim: no flows")
	}
	s.ran = true
	rng := rand.New(rand.NewSource(s.cfg.Seed))

	classes := s.cfg.Classes
	for _, f := range s.flows {
		if f.Class+1 > classes {
			classes = f.Class + 1
		}
	}

	nsrv := s.net.NumServers()
	servers := make([]serverRun, nsrv)
	for i := range servers {
		q, err := sched.NewScheduler(s.cfg.Scheduler, classes, s.cfg.Weights)
		if err != nil {
			return nil, err
		}
		servers[i] = serverRun{q: q, cap: s.net.ServerCapacity(i)}
	}

	res := &Results{
		Duration:           duration,
		PerClass:           make([]ClassStats, classes),
		MaxBacklog:         make([]int, nsrv),
		MaxHopDelay:        make([]float64, nsrv),
		PerFlowMaxQueueing: make([]float64, len(s.flows)),
	}

	var pktSeq uint64
	q := newEventQueue(2 * len(s.flows))
	push := func(e event) { q.push(e) }

	runs := make([]flowRun, len(s.flows))
	for i, f := range s.flows {
		runs[i] = flowRun{spec: f, nextEmit: f.Offset, tokens: f.Burst}
		if f.Pattern == GreedyBurst {
			runs[i].burstLeft = int(f.Burst / f.Size)
		}
		if f.Pattern == OnOff {
			on, off := f.OnTime, f.OffTime
			if on <= 0 {
				on = 0.05
			}
			if off <= 0 {
				off = 0.05
			}
			runs[i].spec.OnTime, runs[i].spec.OffTime = on, off
			// Random initial phase.
			runs[i].nextEmit = f.Offset + rng.Float64()*(on+off)
			runs[i].onUntil = runs[i].nextEmit + on
		}
		push(event{at: runs[i].nextEmit, kind: evEmit, a: int32(i)})
	}

	var startNext func(srv int, now float64)
	arrive := func(p *sched.Packet, srv int, now float64) {
		servers[srv].q.Enqueue(p, now)
		backlog := servers[srv].q.Len()
		if servers[srv].busy {
			backlog++
		}
		if backlog > res.MaxBacklog[srv] {
			res.MaxBacklog[srv] = backlog
		}
		if !servers[srv].busy {
			startNext(srv, now)
		}
	}

	deliver := func(p *sched.Packet, now float64) {
		f := s.flows[p.Flow]
		cs := &res.PerClass[p.Class]
		cs.Delivered++
		res.Delivered++
		w := p.Wait
		if w > cs.MaxQueueing {
			cs.MaxQueueing = w
		}
		cs.SumQueueing += w
		cs.hist[histBin(w)]++
		if lat := now - p.Born; lat > cs.MaxLatency {
			cs.MaxLatency = lat
		}
		if f.Deadline > 0 && w > f.Deadline {
			cs.Late++
		}
		if w > res.PerFlowMaxQueueing[p.Flow] {
			res.PerFlowMaxQueueing[p.Flow] = w
		}
	}

	startNext = func(srv int, now float64) {
		p, ok := servers[srv].q.Dequeue(now)
		if !ok {
			servers[srv].busy = false
			servers[srv].current = nil
			return
		}
		wait := now - p.Enqueued
		if wait > res.MaxHopDelay[srv] {
			res.MaxHopDelay[srv] = wait
		}
		p.Wait += wait
		servers[srv].busy = true
		servers[srv].current = p
		push(event{at: now + p.Size/servers[srv].cap, kind: evDone, a: int32(srv)})
	}

	emit := func(fi int, now float64) {
		run := &runs[fi]
		f := &run.spec
		pktSeq++
		res.PerClass[f.Class].Generated++
		res.Generated++
		admitted := true
		if f.Police {
			// Leaky-bucket edge policer: refill, then require a full
			// packet's worth of tokens.
			run.tokens, admitted = traffic.LeakyBucket{Burst: f.Burst, Rate: f.Rate}.
				Conform(run.tokens, now-run.lastFill, f.Size)
			run.lastFill = now
			if !admitted {
				res.PerClass[f.Class].Policed++
			}
		}
		if admitted {
			p := &sched.Packet{
				ID:    pktSeq,
				Class: f.Class,
				Flow:  fi,
				Size:  f.Size,
				Born:  now,
			}
			arrive(p, f.Route[0], now)
		}

		period := f.Size / f.Rate
		if f.Misbehave > 1 {
			period /= f.Misbehave
		}
		switch f.Pattern {
		case GreedyBurst:
			if run.burstLeft > 1 {
				run.burstLeft--
				run.nextEmit = now // back-to-back
			} else {
				run.nextEmit = now + period
			}
		case OnOff:
			peak := f.Rate * (f.OnTime + f.OffTime) / f.OnTime
			next := now + f.Size/peak
			if next >= run.onUntil {
				next = run.onUntil + f.OffTime
				run.onUntil = next + f.OnTime
			}
			run.nextEmit = next
		default: // CBR
			run.nextEmit = now + period
		}
		if run.nextEmit <= duration {
			push(event{at: run.nextEmit, kind: evEmit, a: int32(fi)})
		}
	}

	if telemetry.Active(s.sink) {
		defer func() {
			run := telemetry.SimRun{
				Generated:   res.Generated,
				Delivered:   res.Delivered,
				Duration:    duration,
				MaxQueueing: 0,
			}
			for _, cs := range res.PerClass {
				run.Policed += cs.Policed
				run.Late += cs.Late
				if cs.MaxQueueing > run.MaxQueueing {
					run.MaxQueueing = cs.MaxQueueing
				}
			}
			s.sink.SimRun(run)
		}()
	}
	for q.len() > 0 {
		e := q.pop()
		if e.at > duration && e.kind == evEmit {
			continue
		}
		switch e.kind {
		case evEmit:
			emit(int(e.a), e.at)
		case evDone:
			srv := int(e.a)
			p := servers[srv].current
			if p == nil {
				return nil, fmt.Errorf("sim: completion on idle server %d", srv)
			}
			p.Hop++
			now := e.at
			if p.Hop < len(s.flows[p.Flow].Route) {
				servers[srv].busy = false
				servers[srv].current = nil
				startNext(srv, now)
				arrive(p, s.flows[p.Flow].Route[p.Hop], now)
			} else {
				deliver(p, now)
				servers[srv].busy = false
				servers[srv].current = nil
				startNext(srv, now)
			}
		}
	}
	return res, nil
}
