package sim

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"ubac/internal/traffic"
)

// mustScaleSpec parses a spec or fails the test.
func mustScaleSpec(t *testing.T, topo, arrival string, seed int64, lifetimes uint64) *ScaleSpec {
	t.Helper()
	spec, err := ParseScaleSpec(topo, arrival, seed, lifetimes, 0)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestScaleRunThroughController drives flow lifetimes through the real
// admission controller on nsfnet and checks the run's core invariants:
// every arrival is accounted for, every admitted flow is torn down, the
// observed delays stay within the verified bounds, and memory (slots,
// packets) tracks peak concurrency rather than total lifetimes.
func TestScaleRunThroughController(t *testing.T) {
	const lifetimes = 20000
	spec := mustScaleSpec(t, "nsfnet", "poisson:rate=400,holding=5", 11, lifetimes)
	rep, err := RunScaleSpec(spec, nil, 0.4, nil, ScaleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lifetimes != lifetimes {
		t.Fatalf("completed %d lifetimes, want %d", rep.Lifetimes, lifetimes)
	}
	if rep.Admitted == 0 {
		t.Fatal("nothing admitted")
	}
	if rep.Admitted+rep.Rejected != rep.Lifetimes {
		t.Fatalf("admitted %d + rejected %d != %d lifetimes", rep.Admitted, rep.Rejected, rep.Lifetimes)
	}
	if rep.Teardowns != rep.Admitted {
		t.Fatalf("%d teardowns for %d admits: flows leaked", rep.Teardowns, rep.Admitted)
	}
	if rep.Bounds == nil || !rep.Bounds.AllWithin {
		t.Fatalf("bound property violated: %s", rep.Bounds.Verdict())
	}
	var pkts, delivered uint64
	for _, pc := range rep.PerClass {
		pkts += pc.Packets
		delivered += pc.Delivered
	}
	if pkts == 0 || delivered != pkts {
		t.Fatalf("generated %d packets, delivered %d; the run must drain fully", pkts, delivered)
	}
	// Memory bound: the slot table and packet pool peak with concurrency,
	// not with lifetimes. MaxActive bounds the slots still waiting on
	// in-flight packets only loosely; a small multiple is the witness.
	if rep.PeakSlots > rep.MaxActive+64 {
		t.Fatalf("peak slots %d outruns peak active flows %d: slot reuse broken", rep.PeakSlots, rep.MaxActive)
	}
	// Steady-state concurrency here is rate*holding = 2000 flows; total
	// lifetimes is 10x that.
	if uint64(rep.PeakSlots) >= lifetimes/4 {
		t.Fatalf("peak slots %d grows with lifetimes %d", rep.PeakSlots, lifetimes)
	}
	if rep.PeakPackets > 64*1024 {
		t.Fatalf("peak live packets %d unbounded", rep.PeakPackets)
	}
}

// TestScaleOverloadRejects pins the overload path: offered load far
// beyond alpha*C must produce capacity rejections while the admitted
// flows still meet their bounds — admission control working as the
// paper claims.
func TestScaleOverloadRejects(t *testing.T) {
	spec := mustScaleSpec(t, "line:4", "poisson:rate=2000,holding=60", 3, 30000)
	rep, err := RunScaleSpec(spec, nil, 0.05, nil, ScaleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var capRejects uint64
	for _, pc := range rep.PerClass {
		capRejects += pc.RejectedCapacity
	}
	if capRejects == 0 {
		t.Fatalf("overload run produced no capacity rejections: %+v", rep)
	}
	if rep.Admitted == 0 {
		t.Fatal("overload run admitted nothing")
	}
	if !rep.Bounds.AllWithin {
		t.Fatalf("admitted flows violated bounds under overload: %s", rep.Bounds.Verdict())
	}
}

// TestScaleDeterminism is the reproducibility property: the same seed
// yields a byte-identical marshaled report, and a different seed
// diverges.
func TestScaleDeterminism(t *testing.T) {
	run := func(seed int64) []byte {
		spec := mustScaleSpec(t, "metro:5", "mmpp:high=300,low=60,on=2,off=3,holding=8", seed, 8000)
		rep, err := RunScaleSpec(spec, nil, 0.4, nil, ScaleConfig{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(42), run(42)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed reports differ:\n%s\n%s", a, b)
	}
	if c := run(43); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestScaleMultiClass runs a two-class mix (voice above a second
// real-time class) and checks both classes are exercised and both stay
// within their bounds.
func TestScaleMultiClass(t *testing.T) {
	video := traffic.Class{
		Name:     "video",
		Bucket:   traffic.LeakyBucket{Burst: 8000, Rate: 1e6},
		Deadline: 0.5,
		Priority: 1,
	}
	classes := []traffic.Class{traffic.Voice(), video}
	spec := mustScaleSpec(t, "nsfnet", "poisson:rate=300,holding=4", 9, 10000)
	rep, err := RunScaleSpec(spec, classes, 0.3, nil, ScaleConfig{ClassWeights: []float64{3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerClass) != 2 {
		t.Fatalf("got %d class reports, want 2", len(rep.PerClass))
	}
	for _, pc := range rep.PerClass {
		if pc.Admitted == 0 || pc.Delivered == 0 {
			t.Fatalf("class %s not exercised: %+v", pc.Class, pc)
		}
	}
	if rep.PerClass[0].Admitted <= rep.PerClass[1].Admitted {
		t.Fatalf("3:1 mix did not favor %s: %d vs %d",
			rep.PerClass[0].Class, rep.PerClass[0].Admitted, rep.PerClass[1].Admitted)
	}
	if !rep.Bounds.AllWithin {
		t.Fatalf("bounds violated: %s", rep.Bounds.Verdict())
	}
}

// TestScaleGoldenNSFNet pins a full machine-readable run report for a
// fixed topology, arrival process, and seed. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/sim -run TestScaleGoldenNSFNet
// after an intentional behavior change, and review the diff like code.
func TestScaleGoldenNSFNet(t *testing.T) {
	spec := mustScaleSpec(t, "nsfnet", "poisson:rate=200,holding=10", 7, 10000)
	rep, err := RunScaleSpec(spec, nil, 0.4, nil, ScaleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "golden_scale_nsfnet.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("report drifted from %s (regenerate with UPDATE_GOLDEN=1 if intended)\n got: %s\nwant: %s",
			golden, got, want)
	}
}

// TestScaleSoak is the CI property gate at soak scale: 10^5 flow
// lifetimes on the backbone preset, bound property enforced. The full
// 10^6-lifetime run lives behind UBAC_SOAK_LIFETIMES to keep ordinary
// test runs fast; CI's sim-soak job sets it.
func TestScaleSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run skipped in -short")
	}
	lifetimes := uint64(100_000)
	if v := os.Getenv("UBAC_SOAK_LIFETIMES"); v != "" {
		var n uint64
		for _, ch := range v {
			if ch < '0' || ch > '9' {
				t.Fatalf("bad UBAC_SOAK_LIFETIMES %q", v)
			}
			n = n*10 + uint64(ch-'0')
		}
		lifetimes = n
	}
	spec := mustScaleSpec(t, "backbone:21", "poisson:rate=3000,holding=6", 21, lifetimes)
	rep, err := RunScaleSpec(spec, nil, 0.3, nil, ScaleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lifetimes != lifetimes {
		t.Fatalf("completed %d lifetimes, want %d", rep.Lifetimes, lifetimes)
	}
	if rep.Teardowns != rep.Admitted {
		t.Fatalf("%d teardowns for %d admits", rep.Teardowns, rep.Admitted)
	}
	if !rep.Bounds.AllWithin {
		t.Fatalf("bound property violated at soak scale: %s", rep.Bounds.Verdict())
	}
	t.Logf("lifetimes=%d admitted=%d rejected=%d peakSlots=%d peakPackets=%d maxQ=%g",
		rep.Lifetimes, rep.Admitted, rep.Rejected, rep.PeakSlots, rep.PeakPackets, rep.ObservedMax())
}
