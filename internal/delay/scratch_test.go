package delay

import (
	"math"
	"math/rand"
	"testing"

	"ubac/internal/routes"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

// scratchEqual asserts bit-identical results between the scratch solver
// and the allocating reference.
func scratchEqual(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Converged != want.Converged || got.Iterations != want.Iterations {
		t.Fatalf("%s: converged=%v iters=%d, want converged=%v iters=%d",
			label, got.Converged, got.Iterations, want.Converged, want.Iterations)
	}
	for s := range want.D {
		if got.D[s] != want.D[s] {
			t.Fatalf("%s: D[%d] = %.17g, want %.17g (not bit-identical)", label, s, got.D[s], want.D[s])
		}
		if got.Y[s] != want.Y[s] {
			t.Fatalf("%s: Y[%d] = %.17g, want %.17g (not bit-identical)", label, s, got.Y[s], want.Y[s])
		}
	}
}

// The scratch solver (cached gains, reused buffers, active-domain sweep)
// must be bit-identical to SolveTwoClassExtra across topologies, route
// sets, warm starts, phantom routes, and alphas spanning convergence,
// slow convergence, and divergence — including its iteration counts, so
// even the trajectory matches, not just the fixed point.
func TestSolveScratchMatchesExtra(t *testing.T) {
	specs := []string{"line:6", "ring:8", "grid:4x3", "nsfnet"}
	alphas := []float64{0.05, 0.30, 0.60, 0.90, 0.97}
	cls := traffic.Voice()
	for _, spec := range specs {
		net, err := topology.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		rg := net.RouterGraph()
		rng := rand.New(rand.NewSource(11))
		set := routes.NewSet(net)
		var phantom *routes.Route
		// Grow a route set over random shortest paths; keep one route out
		// of the set as the phantom candidate.
		for trial := 0; trial < 12; trial++ {
			src, dst := rng.Intn(net.NumRouters()), rng.Intn(net.NumRouters())
			if src == dst {
				continue
			}
			p, err := rg.ShortestPath(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			r, err := routes.FromRouterPath(net, cls.Name, p)
			if err != nil {
				t.Fatal(err)
			}
			if phantom == nil {
				phantom = &r
				continue
			}
			if err := set.Add(r); err != nil {
				t.Fatal(err)
			}
		}
		m := NewModel(net)
		sc := &SolveScratch{}
		var warm []float64
		for _, alpha := range alphas {
			in := ClassInput{Class: cls, Alpha: alpha, Routes: set}
			for _, tc := range []struct {
				label string
				extra *routes.Route
				d0    []float64
			}{
				{"cold", nil, nil},
				{"cold+extra", phantom, nil},
				{"warm", nil, warm},
				{"warm+extra", phantom, warm},
			} {
				want, err := m.SolveTwoClassExtra(in, tc.extra, tc.d0)
				if err != nil {
					t.Fatal(err)
				}
				got, err := m.SolveTwoClassScratch(in, tc.extra, tc.d0, sc)
				if err != nil {
					t.Fatal(err)
				}
				scratchEqual(t, spec+"/"+tc.label, got, want)
				if tc.label == "cold" && want.Converged {
					warm = append([]float64(nil), want.D...)
				}
			}
			if warm == nil {
				warm = make([]float64, net.NumServers())
			}
		}
	}
}

// Warm-starting from the converged base of a route subset — exactly what
// the selection engine does per accepted pair — must reach the same
// fixed point as a cold solve, in no more iterations.
func TestSolveScratchWarmStartMonotone(t *testing.T) {
	net := topology.MCI()
	cls := traffic.Voice()
	rg := net.RouterGraph()
	set := routes.NewSet(net)
	pairs := net.Pairs()[:20]
	m := NewModel(net)
	sc := &SolveScratch{}
	base := make([]float64, net.NumServers())
	for _, p := range pairs {
		path, err := rg.ShortestPath(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		r, err := routes.FromRouterPath(net, cls.Name, path)
		if err != nil {
			t.Fatal(err)
		}
		if err := set.Add(r); err != nil {
			t.Fatal(err)
		}
		in := ClassInput{Class: cls, Alpha: 0.3, Routes: set}
		warm, err := m.SolveTwoClassScratch(in, nil, base, sc)
		if err != nil {
			t.Fatal(err)
		}
		if !warm.Converged {
			t.Fatalf("diverged after %d routes", set.Len())
		}
		warmIters := warm.Iterations
		copy(base, warm.D)
		cold, err := m.SolveTwoClass(in)
		if err != nil {
			t.Fatal(err)
		}
		if cold.Iterations < warmIters {
			t.Fatalf("warm start took %d iterations, cold only %d", warmIters, cold.Iterations)
		}
		for s := range base {
			if math.Abs(base[s]-cold.D[s]) > 1e-12*math.Max(1, cold.D[s]) {
				t.Fatalf("warm fixed point drifts from cold at server %d: %.17g vs %.17g",
					s, base[s], cold.D[s])
			}
		}
	}
}

// Steady-state scratch solves must not allocate: that is the contract
// the evaluation engine's per-worker scratches depend on.
func TestSolveScratchZeroAllocs(t *testing.T) {
	net := topology.MCI()
	cls := traffic.Voice()
	rg := net.RouterGraph()
	set := routes.NewSet(net)
	for _, p := range net.Pairs()[:15] {
		path, err := rg.ShortestPath(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		r, err := routes.FromRouterPath(net, cls.Name, path)
		if err != nil {
			t.Fatal(err)
		}
		if err := set.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	m := NewModel(net)
	sc := &SolveScratch{}
	in := ClassInput{Class: cls, Alpha: 0.3, Routes: set}
	if _, err := m.SolveTwoClassScratch(in, nil, nil, sc); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := m.SolveTwoClassScratch(in, nil, nil, sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state scratch solve allocates %.1f/op, want 0", allocs)
	}
}

func TestSolveScratchInputValidation(t *testing.T) {
	net := topology.MCI()
	m := NewModel(net)
	sc := &SolveScratch{}
	set := routes.NewSet(net)
	if _, err := m.SolveTwoClassScratch(ClassInput{Class: traffic.Voice(), Alpha: 1.5, Routes: set}, nil, nil, sc); err == nil {
		t.Fatal("alpha out of range accepted")
	}
	if _, err := m.SolveTwoClassScratch(ClassInput{Class: traffic.Voice(), Alpha: 0.3, Routes: set}, nil, make([]float64, 3), sc); err == nil {
		t.Fatal("short warm-start vector accepted")
	}
}
