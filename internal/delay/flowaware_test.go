package delay

import (
	"math"
	"testing"

	"ubac/internal/routes"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

func flowsOnChain(t *testing.T, net *topology.Network, n int) []Flow {
	t.Helper()
	path := make([]int, net.NumRouters())
	for i := range path {
		path[i] = i
	}
	r, err := routes.FromRouterPath(net, "voice", path)
	if err != nil {
		t.Fatal(err)
	}
	flows := make([]Flow, n)
	for i := range flows {
		flows[i] = Flow{Bucket: traffic.Voice().Bucket, Route: r}
	}
	return flows
}

func TestSolveFlowAwareValidation(t *testing.T) {
	m, net := lineModel(t, 3)
	if _, err := m.SolveFlowAware(nil); err == nil {
		t.Error("empty population accepted")
	}
	bad := flowsOnChain(t, net, 1)
	bad[0].Bucket.Rate = 0
	if _, err := m.SolveFlowAware(bad); err == nil {
		t.Error("invalid bucket accepted")
	}
	foreign, err := topology.Line(4, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	fr := flowsOnChain(t, foreign, 1)
	if _, err := m.SolveFlowAware(fr); err == nil {
		t.Error("foreign route accepted")
	}
}

func TestSolveFlowAwareOverload(t *testing.T) {
	m, net := lineModel(t, 3)
	// 100 Mb/s link, flows of 32 kb/s: > 3125 flows overload it.
	if _, err := m.SolveFlowAware(flowsOnChain(t, net, 3200)); err == nil {
		t.Error("overloaded population accepted")
	}
}

func TestSolveFlowAwareSingleFlowZeroQueueing(t *testing.T) {
	// One flow through one input link per server: the aggregate can never
	// exceed the service rate, so queueing is zero.
	m, net := lineModel(t, 4)
	res, err := m.SolveFlowAware(flowsOnChain(t, net, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.MaxServerDelay() > 1e-15 {
		t.Errorf("single flow queued: %g", res.MaxServerDelay())
	}
}

func TestSolveFlowAwareHandComputed(t *testing.T) {
	// Two flows converging from different routers onto the shared server
	// 1->2 of a Y: line 0-1-2 plus router 3 attached to 1.
	b := topology.NewBuilder("y")
	r0 := b.Router("r0", topology.Edge)
	r1 := b.Router("r1", topology.Edge)
	r2 := b.Router("r2", topology.Edge)
	r3 := b.Router("r3", topology.Edge)
	b.Link(r0, r1, 100e6).Link(r1, r2, 100e6).Link(r3, r1, 100e6)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(net)
	mk := func(path ...int) Flow {
		r, err := routes.FromRouterPath(net, "v", path)
		if err != nil {
			t.Fatal(err)
		}
		return Flow{Bucket: traffic.Voice().Bucket, Route: r}
	}
	fa := mk(0, 1, 2)
	fb := mk(3, 1, 2)
	res, err := m.SolveFlowAware([]Flow{fa, fb})
	if err != nil || !res.Converged {
		t.Fatal(err)
	}
	// At server 1->2 two single-flow input links collide. Worst backlog:
	// both bursts arrive at line rate; d = sup_I(2·min(CI, T+ρI) − CI)/C.
	// Max at the bucket breakpoint τ = T/(C−ρ): d = (T + ρτ − Cτ + ...)
	// Direct evaluation: at I=τ both terms equal T+ρτ, so backlog =
	// 2(T+ρτ) − Cτ and d = that / C.
	T, rho, C := 640.0, 32e3, 100e6
	tau := T / (C - rho)
	want := (2*(T+rho*tau) - C*tau) / C
	s12, _ := net.ServerFor(r1, r2)
	if math.Abs(res.D[s12]-want) > 1e-12 {
		t.Errorf("converging flows: d = %g, want %g", res.D[s12], want)
	}
	// Upstream servers see one flow each: zero queueing.
	s01, _ := net.ServerFor(r0, r1)
	if res.D[s01] != 0 {
		t.Errorf("upstream server queued: %g", res.D[s01])
	}
	// Per-flow bounds: d at the shared hop only.
	for fi, pf := range res.PerFlow {
		if math.Abs(pf-want) > 1e-12 {
			t.Errorf("flow %d bound = %g, want %g", fi, pf, want)
		}
	}
}

// The central soundness property: for any population admitted within the
// per-server αC/ρ limit, the flow-aware bound never exceeds the
// configuration-time bound (Theorems 1-3 assume the worst placement and
// the worst upstream jitter; reality can only be better).
func TestFlowAwareNeverExceedsConfigurationBound(t *testing.T) {
	net := topology.MCI()
	m := NewModel(net)
	voice := traffic.Voice()

	// Population: one flow per ordered pair over shortest paths — well
	// within alpha = 342·ρ·L / (C·links)… just pick alpha large enough to
	// cover the densest server.
	rg := net.RouterGraph()
	var flows []Flow
	rs := routes.NewSet(net)
	for _, p := range net.Pairs() {
		path, err := rg.ShortestPath(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		r, err := routes.FromRouterPath(net, "voice", path)
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.Add(r); err != nil {
			t.Fatal(err)
		}
		flows = append(flows, Flow{Bucket: voice.Bucket, Route: r})
	}
	// The busiest server carries max CrossCount flows; size alpha to it.
	maxCross := 0
	for s := 0; s < net.NumServers(); s++ {
		if c := rs.CrossCount(s); c > maxCross {
			maxCross = c
		}
	}
	alpha := float64(maxCross) * voice.Bucket.Rate / topology.DefaultCapacity
	cfg, err := m.SolveTwoClass(ClassInput{Class: voice, Alpha: alpha, Routes: rs})
	if err != nil || !cfg.Converged {
		t.Fatalf("configuration bound: %v", err)
	}
	fa, err := m.SolveFlowAware(flows)
	if err != nil {
		t.Fatal(err)
	}
	if !fa.Converged {
		t.Fatal("flow-aware diverged")
	}
	for s := 0; s < net.NumServers(); s++ {
		if fa.D[s] > cfg.D[s]+1e-9 {
			t.Errorf("server %s: flow-aware %g exceeds configuration bound %g",
				net.ServerName(s), fa.D[s], cfg.D[s])
		}
	}
	worstCfg, _ := rs.MaxRouteDelay(cfg.D)
	if fa.MaxFlowDelay() > worstCfg+1e-9 {
		t.Errorf("flow-aware e2e %g exceeds configuration %g", fa.MaxFlowDelay(), worstCfg)
	}
	t.Logf("aggregation penalty at this population: config %.3f ms vs flow-aware %.3f ms (%.1fx)",
		worstCfg*1e3, fa.MaxFlowDelay()*1e3, worstCfg/fa.MaxFlowDelay())
}

func BenchmarkSolveFlowAwareMCI(b *testing.B) {
	net := topology.MCI()
	m := NewModel(net)
	rg := net.RouterGraph()
	var flows []Flow
	for _, p := range net.Pairs() {
		path, err := rg.ShortestPath(p[0], p[1])
		if err != nil {
			b.Fatal(err)
		}
		r, err := routes.FromRouterPath(net, "voice", path)
		if err != nil {
			b.Fatal(err)
		}
		// 20 identical flows per pair.
		for k := 0; k < 20; k++ {
			flows = append(flows, Flow{Bucket: traffic.Voice().Bucket, Route: r})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.SolveFlowAware(flows)
		if err != nil || !res.Converged {
			b.Fatalf("solve: %v", err)
		}
	}
}
