package delay

import (
	"math"
	"testing"

	"ubac/internal/routes"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

// A single route over a line topology is the feedback-free chain of
// DESIGN.md §A.4: d_k = gT(1+gρ)^{k−1}, so the end-to-end sum
// telescopes to (T/ρ)((1+gρ)^L − 1). The solver must reproduce this
// analytic solution — sequentially and in parallel — which pins the
// closed form g = α(N−1)/(ρ(N−α)) against refactors.
func TestGoldenLineGeometricClosedForm(t *testing.T) {
	voice := traffic.Voice()
	burst, rho := voice.Bucket.Burst, voice.Bucket.Rate
	for _, nRouters := range []int{3, 5, 9} {
		for _, alpha := range []float64{0.15, 0.40, 0.75} {
			net, err := topology.Line(nRouters, 45e6)
			if err != nil {
				t.Fatal(err)
			}
			path := make([]int, nRouters)
			for i := range path {
				path[i] = i
			}
			r, err := routes.FromRouterPath(net, "voice", path)
			if err != nil {
				t.Fatal(err)
			}
			set := routes.NewSet(net)
			if err := set.Add(r); err != nil {
				t.Fatal(err)
			}
			in := ClassInput{Class: voice, Alpha: alpha, Routes: set}
			for _, workers := range []int{0, 4} {
				m := NewModel(net)
				m.Workers = workers
				res, err := m.SolveTwoClass(in)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatalf("line:%d alpha=%.2f workers=%d: did not converge", nRouters, alpha, workers)
				}
				g := Gain(alpha, rho, m.serverN(0))
				hop := g * burst // d_1 = gT
				for k, s := range r.Servers {
					want := hop * math.Pow(1+g*rho, float64(k))
					if math.Abs(res.D[s]-want) > 1e-9*math.Max(1, want) {
						t.Fatalf("line:%d alpha=%.2f workers=%d hop %d: d=%.17g, closed form %.17g",
							nRouters, alpha, workers, k, res.D[s], want)
					}
				}
				L := float64(r.Hops())
				wantSum := (burst / rho) * (math.Pow(1+g*rho, L) - 1)
				if got := r.Delay(res.D); math.Abs(got-wantSum) > 1e-9*math.Max(1, wantSum) {
					t.Fatalf("line:%d alpha=%.2f workers=%d: route sum %.17g, telescoped form %.17g",
						nRouters, alpha, workers, got, wantSum)
				}
			}
		}
	}
}
