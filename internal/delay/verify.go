package delay

import (
	"fmt"
	"math"

	"ubac/internal/routes"
)

// deadlineSlack is the relative tolerance of deadline comparisons. The
// fixed-point solver converges to ~1e-12 relative accuracy and different
// warm-start paths land on slightly different ULPs of the same fixed
// point; comparisons at exactly-tight operating points (e.g. the
// Theorem 4 lower bound, where the worst route delay equals D) must not
// flip on that noise.
const deadlineSlack = 1e-9

// MeetsDeadline reports whether a computed delay bound satisfies a
// deadline, up to the solver's numerical tolerance.
func MeetsDeadline(bound, deadline float64) bool {
	return bound <= deadline*(1+deadlineSlack)
}

// RouteReport gives the verified end-to-end delay bound of one route.
type RouteReport struct {
	Class    string
	Src, Dst int
	Hops     int
	Bound    float64 // worst-case end-to-end delay, seconds
	Deadline float64 // class deadline, seconds
	OK       bool    // Bound <= Deadline
}

// Slack returns Deadline − Bound.
func (r RouteReport) Slack() float64 { return r.Deadline - r.Bound }

// VerifyResult is the outcome of the Figure 2 verification procedure.
type VerifyResult struct {
	// Safe reports whether every route of every class meets its
	// deadline under the given utilization assignment (and the delay
	// fixed point converged).
	Safe bool
	// Converged reports whether the delay computation reached a fixed
	// point at all; when false, Safe is false and the per-route bounds
	// are meaningless.
	Converged bool
	// Routes holds one report per route, grouped by class in input
	// order.
	Routes []RouteReport
	// WorstSlack is the minimum deadline slack over all routes
	// (negative when Safe is false). +Inf for an empty configuration.
	WorstSlack float64
	// Results are the per-class solver outputs, parallel to the inputs.
	Results []*Result
}

// Verify runs the configuration-time verification of Figure 2: compute
// the per-server delay bounds for all classes, sum them along every
// route, and compare against the class deadlines. Inputs follow the
// SolveMultiClass contract (priority order, one route set per class);
// a single input runs through the two-class fast path.
func (m *Model) Verify(inputs []ClassInput) (*VerifyResult, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("delay: nothing to verify")
	}
	var (
		results []*Result
		err     error
	)
	if len(inputs) == 1 {
		var r *Result
		r, err = m.SolveTwoClass(inputs[0])
		results = []*Result{r}
	} else {
		results, err = m.SolveMultiClass(inputs)
	}
	if err != nil {
		return nil, err
	}
	out := &VerifyResult{Converged: true, Safe: true, WorstSlack: math.Inf(1), Results: results}
	for _, r := range results {
		if !r.Converged {
			out.Converged = false
			out.Safe = false
		}
	}
	for i, in := range inputs {
		res := results[i]
		for j := 0; j < in.Routes.Len(); j++ {
			rt := in.Routes.Route(j)
			bound := rt.Delay(res.D) + float64(rt.Hops())*m.FixedPerHop
			rep := RouteReport{
				Class:    in.Class.Name,
				Src:      rt.Src,
				Dst:      rt.Dst,
				Hops:     rt.Hops(),
				Bound:    bound,
				Deadline: in.Class.Deadline,
				OK:       out.Converged && MeetsDeadline(bound, in.Class.Deadline),
			}
			if !rep.OK {
				out.Safe = false
			}
			if rep.Slack() < out.WorstSlack {
				out.WorstSlack = rep.Slack()
			}
			out.Routes = append(out.Routes, rep)
		}
	}
	return out, nil
}

// HopReport describes one hop in a route's verified delay budget.
type HopReport struct {
	// Server is the link server ID; Name its "A->B" rendering.
	Server int
	Name   string
	// D is the server's worst-case queueing bound; Y the worst upstream
	// accumulated delay feeding it; Fixed the configured constant
	// per-hop delay.
	D, Y, Fixed float64
	// Cumulative is the route's bound up to and including this hop.
	Cumulative float64
}

// Breakdown decomposes a route's end-to-end delay bound into per-hop
// contributions using a solved Result — the operator-facing view of
// where a route's budget goes.
func (m *Model) Breakdown(res *Result, r routes.Route) []HopReport {
	out := make([]HopReport, 0, len(r.Servers))
	cum := 0.0
	for _, s := range r.Servers {
		cum += res.D[s] + m.FixedPerHop
		out = append(out, HopReport{
			Server:     s,
			Name:       m.net.ServerName(s),
			D:          res.D[s],
			Y:          res.Y[s],
			Fixed:      m.FixedPerHop,
			Cumulative: cum,
		})
	}
	return out
}
