package delay

import (
	"math"
	"sync"
	"sync/atomic"

	"ubac/internal/routes"
)

// This file parallelizes the two-class fixed-point sweep. Each outer
// iteration of d ← Z(d) decomposes into two data-parallel phases:
//
//	A. Y accumulation — Y_k is a max over per-route prefix sums, so the
//	   route list shards across workers (balanced by total hops), each
//	   worker accumulating into a private buffer.
//	B. Delay update — d'_k = g_k·(T + ρ·Y_k) is independent per server,
//	   so the server vector shards across workers; each worker first
//	   merges the phase-A buffers for its servers with an elementwise
//	   max, then applies the closed form and tracks its shard's maximum
//	   change and maximum delay.
//
// Determinism: every per-element value is computed by exactly the same
// float64 expression as the sequential solver, and the only cross-shard
// reductions are elementwise max (order-independent, exact in floating
// point), so a converged parallel solve is bit-identical to the
// sequential one — same D, Y, and iteration count. On divergence the
// iteration count and verdict still match exactly (the first sweep in
// which any d'_k exceeds DivergeCap is a property of the values, not of
// the schedule), but the contents of D and Y are unspecified, as they
// already are for the sequential solver ("meaningful only if
// Converged").
//
// Early exit: a worker that sees d'_k > DivergeCap publishes divergence
// through a shared atomic flag; other workers poll it and abandon the
// remainder of their shard, so a blown-up sweep costs a fraction of a
// full one.

// sweepPool runs one function on n workers and barriers on completion.
// Worker 0 is the calling goroutine, so a pool of n costs n−1
// goroutines; workers persist across iterations to keep the per-sweep
// synchronization down to one channel send and one WaitGroup wait per
// helper per phase.
type sweepPool struct {
	cmds []chan func(int)
	wg   sync.WaitGroup
}

func startSweepPool(n int) *sweepPool {
	p := &sweepPool{cmds: make([]chan func(int), n-1)}
	for i := range p.cmds {
		ch := make(chan func(int), 1)
		p.cmds[i] = ch
		worker := i + 1
		go func() {
			for f := range ch {
				f(worker)
				p.wg.Done()
			}
		}()
	}
	return p
}

// run executes f(worker) on every worker, including the caller as
// worker 0, and returns once all have finished.
func (p *sweepPool) run(f func(worker int)) {
	p.wg.Add(len(p.cmds))
	for _, ch := range p.cmds {
		ch <- f
	}
	f(0)
	p.wg.Wait()
}

func (p *sweepPool) stop() {
	for _, ch := range p.cmds {
		close(ch)
	}
}

// shard is a half-open index range [lo, hi).
type shard struct{ lo, hi int }

// shardRoutes cuts the route list into n contiguous shards balanced by
// total hop count (the unit of phase-A work), so one long route cannot
// serialize a sweep behind a single worker.
func shardRoutes(set *routes.Set, n int) []shard {
	total := 0
	for i := 0; i < set.Len(); i++ {
		total += set.Route(i).Hops()
	}
	out := make([]shard, n)
	lo, done := 0, 0
	for k := 0; k < n; k++ {
		target := (total * (k + 1)) / n
		hi := lo
		for hi < set.Len() && done < target {
			done += set.Route(hi).Hops()
			hi++
		}
		if k == n-1 {
			hi = set.Len()
		}
		out[k] = shard{lo, hi}
		lo = hi
	}
	return out
}

// shardServers cuts [0, nsrv) into n near-equal contiguous ranges.
func shardServers(nsrv, n int) []shard {
	out := make([]shard, n)
	for k := 0; k < n; k++ {
		out[k] = shard{nsrv * k / n, nsrv * (k + 1) / n}
	}
	return out
}

// divergePoll is how many servers a phase-B worker processes between
// polls of the shared divergence flag.
const divergePoll = 1024

// iterateParallel is the Workers>1 counterpart of iterateSequential.
func (m *Model) iterateParallel(in ClassInput, extra *routes.Route, res *Result, gain []float64, burst, rho float64) {
	nsrv := len(res.D)
	w := m.Workers
	rshards := shardRoutes(in.Routes, w)
	sshards := shardServers(nsrv, w)

	partial := make([][]float64, w)
	for k := range partial {
		partial[k] = make([]float64, nsrv)
	}
	next := make([]float64, nsrv)
	shardChange := make([]float64, w)
	shardMax := make([]float64, w)
	var diverged atomic.Bool

	pool := startSweepPool(w)
	defer pool.stop()

	for iter := 1; iter <= m.MaxIter; iter++ {
		res.Iterations = iter

		// Phase A: route-sharded Y accumulation into private buffers.
		pool.run(func(k int) {
			p := partial[k]
			for i := range p {
				p[i] = 0
			}
			var ex *routes.Route
			if k == w-1 {
				ex = extra // the phantom route rides the last shard
			}
			in.Routes.ComputeYPartial(res.D, p, rshards[k].lo, rshards[k].hi, ex)
		})

		// Phase B: server-sharded merge + closed-form update.
		pool.run(func(k int) {
			maxCh, maxD := 0.0, 0.0
			for s := sshards[k].lo; s < sshards[k].hi; s++ {
				if (s-sshards[k].lo)%divergePoll == 0 && diverged.Load() && k != 0 {
					// Another shard already blew past DivergeCap; this
					// sweep's values are moot. Worker 0 finishes so the
					// reduction below always sees one complete shard.
					return
				}
				y := partial[0][s]
				for j := 1; j < w; j++ {
					if partial[j][s] > y {
						y = partial[j][s]
					}
				}
				res.Y[s] = y
				v := gain[s] * (burst + rho*y)
				next[s] = v
				if ch := math.Abs(v - res.D[s]); ch > maxCh {
					maxCh = ch
				}
				if v > maxD {
					maxD = v
					if v > m.DivergeCap {
						diverged.Store(true)
					}
				}
			}
			shardChange[k], shardMax[k] = maxCh, maxD
		})

		if diverged.Load() {
			// Same sweep in which the sequential solver would have seen
			// worstD > DivergeCap: the flag is only ever set by a value
			// the sequential sweep also computes.
			res.Converged = false
			return
		}
		worstChange, worstD := 0.0, 0.0
		for k := 0; k < w; k++ {
			if shardChange[k] > worstChange {
				worstChange = shardChange[k]
			}
			if shardMax[k] > worstD {
				worstD = shardMax[k]
			}
		}
		copy(res.D, next)
		if worstChange <= m.Tol*math.Max(1, worstD) {
			res.Converged = true
			in.Routes.ComputeYExtra(res.D, res.Y, extra)
			return
		}
	}
	res.Converged = false
}
