package delay

import (
	"fmt"
	"math"

	"ubac/internal/routes"
	"ubac/internal/traffic"
)

// Flow is one concrete admitted flow for the flow-aware analysis.
type Flow struct {
	Bucket traffic.LeakyBucket
	Route  routes.Route
}

// FlowAwareResult is the outcome of SolveFlowAware.
type FlowAwareResult struct {
	// D[k] is the worst-case queueing delay of server k for the given
	// flow population.
	D []float64
	// PerFlow[f] is flow f's end-to-end queueing delay bound.
	PerFlow []float64
	// Converged reports whether the fixed point stabilized.
	Converged bool
	// Iterations is the number of outer iterations performed.
	Iterations int
}

// MaxServerDelay returns the largest per-server bound.
func (r *FlowAwareResult) MaxServerDelay() float64 {
	worst := 0.0
	for _, d := range r.D {
		if d > worst {
			worst = d
		}
	}
	return worst
}

// MaxFlowDelay returns the largest end-to-end bound over flows.
func (r *FlowAwareResult) MaxFlowDelay() float64 {
	worst := 0.0
	for _, d := range r.PerFlow {
		if d > worst {
			worst = d
		}
	}
	return worst
}

// SolveFlowAware computes worst-case per-server delays for an explicit
// flow population — the run-time, flow-state-dependent analysis
// (Equation (3) with the true per-link aggregates and per-flow upstream
// jitter) that the paper's configuration-time bound deliberately
// replaces. It exists here to quantify the aggregation penalty: how much
// utilization the flow-state-free bound gives up in exchange for
// needing no per-flow information in the core.
//
// Modeling notes. Each flow enters server k either from the previous
// link server on its route or, at its first hop, through a host ingress
// link of the source router (each source router contributes one ingress
// link, capped at the server capacity like any other input). Per input
// link j of server k, the aggregate arrival is bounded by
//
//	A_{k,j}(I) = min( C_j·I, Σ_f (T_f + ρ_f·Y_{f,k}) + (Σ_f ρ_f)·I ),
//
// where Y_{f,k} is flow f's own accumulated upstream delay (a per-flow
// prefix sum — tighter than the class-wide max the configuration-time
// analysis must assume). Then d_k = sup_I (Σ_j A_{k,j}(I) − C_k·I)/C_k,
// iterated to a fixed point from d = 0 (monotone, so divergence means
// the population is unstable).
func (m *Model) SolveFlowAware(flows []Flow) (*FlowAwareResult, error) {
	if len(flows) == 0 {
		return nil, fmt.Errorf("delay: no flows")
	}
	nsrv := m.net.NumServers()
	for i, f := range flows {
		if err := f.Bucket.Validate(); err != nil {
			return nil, fmt.Errorf("delay: flow %d: %w", i, err)
		}
		if err := f.Route.Validate(m.net); err != nil {
			return nil, fmt.Errorf("delay: flow %d: %w", i, err)
		}
	}

	// Per (server, input link) accumulators. Input link keys: previous
	// server ID for transit, nsrv+sourceRouter for host ingress.
	type linkAgg struct {
		sumBurst float64 // Σ T_f (+ ρ_f·Y_f folded in per iteration)
		sumRate  float64 // Σ ρ_f
		// flows on this link, as (flow index, position) pairs, to fold
		// the per-flow jitter term each iteration.
		members [][2]int
	}
	aggs := make([]map[int]*linkAgg, nsrv)
	for s := range aggs {
		aggs[s] = make(map[int]*linkAgg)
	}
	for fi, f := range flows {
		for pos, s := range f.Route.Servers {
			var key int
			if pos == 0 {
				key = nsrv + f.Route.Src
			} else {
				key = f.Route.Servers[pos-1]
			}
			a := aggs[s][key]
			if a == nil {
				a = &linkAgg{}
				aggs[s][key] = a
			}
			a.sumBurst += f.Bucket.Burst
			a.sumRate += f.Bucket.Rate
			a.members = append(a.members, [2]int{fi, pos})
		}
	}

	// Stability precheck: total sustained rate within capacity.
	for s := 0; s < nsrv; s++ {
		total := 0.0
		for _, a := range aggs[s] {
			total += a.sumRate
		}
		if total >= m.net.ServerCapacity(s) {
			return nil, fmt.Errorf("delay: server %s overloaded (%.3g of %.3g b/s)",
				m.net.ServerName(s), total, m.net.ServerCapacity(s))
		}
	}

	res := &FlowAwareResult{D: make([]float64, nsrv), PerFlow: make([]float64, len(flows))}
	next := make([]float64, nsrv)
	prefix := make([][]float64, len(flows)) // Y_{f,pos}
	for fi, f := range flows {
		prefix[fi] = make([]float64, len(f.Route.Servers))
	}

	lines := make([]traffic.Line, 0, 16)
	for iter := 1; iter <= m.MaxIter; iter++ {
		res.Iterations = iter
		// Per-flow prefix delays under the current d.
		for fi, f := range flows {
			sum := 0.0
			for pos, s := range f.Route.Servers {
				prefix[fi][pos] = sum
				sum += res.D[s]
			}
		}
		worstChange, worstD := 0.0, 0.0
		for s := 0; s < nsrv; s++ {
			if len(aggs[s]) == 0 {
				next[s] = 0
				continue
			}
			c := m.net.ServerCapacity(s)
			lines = lines[:0]
			capSlope := 0.0
			for _, a := range aggs[s] {
				jitterBurst := a.sumBurst
				for _, mbr := range a.members {
					jitterBurst += flows[mbr[0]].Bucket.Rate * prefix[mbr[0]][mbr[1]]
				}
				lines = append(lines, traffic.Line{A: jitterBurst, B: a.sumRate})
				capSlope += c
			}
			// Σ_j min(C·I, burst_j + rate_j·I) is concave piecewise
			// linear; build it as a Sum of two-line curves.
			curves := make([]traffic.Curve, len(lines))
			for i, l := range lines {
				curves[i] = traffic.MustCurve(traffic.Line{A: 0, B: c}, l)
			}
			total := traffic.Sum(curves...)
			backlog, _, ok := total.MaxBacklog(c)
			if !ok {
				res.Converged = false
				return res, nil
			}
			next[s] = backlog / c
			if ch := math.Abs(next[s] - res.D[s]); ch > worstChange {
				worstChange = ch
			}
			if next[s] > worstD {
				worstD = next[s]
			}
		}
		copy(res.D, next)
		if worstD > m.DivergeCap {
			res.Converged = false
			return res, nil
		}
		if worstChange <= m.Tol*math.Max(1, worstD) {
			res.Converged = true
			break
		}
	}
	if !res.Converged {
		return res, nil
	}
	for fi, f := range flows {
		res.PerFlow[fi] = f.Route.Delay(res.D) + float64(f.Route.Hops())*m.FixedPerHop
	}
	return res, nil
}
