package delay

import (
	"fmt"
	"testing"

	"ubac/internal/routes"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

// BenchmarkFixedPointParallel measures the two-class fixed-point solve
// over the full MCI shortest-path route table with the sequential sweep
// (workers=1) against the partitioned parallel sweep (workers=4). Both
// produce bit-identical delay vectors; on a single-core host the
// workers=4 variant measures partitioning overhead rather than speedup.
func BenchmarkFixedPointParallel(b *testing.B) {
	net := topology.MCI()
	rs := routes.NewSet(net)
	rg := net.RouterGraph()
	for _, p := range net.Pairs() {
		path, err := rg.ShortestPath(p[0], p[1])
		if err != nil {
			b.Fatal(err)
		}
		r, err := routes.FromRouterPath(net, "voice", path)
		if err != nil {
			b.Fatal(err)
		}
		if err := rs.Add(r); err != nil {
			b.Fatal(err)
		}
	}
	in := ClassInput{Class: traffic.Voice(), Alpha: 0.3, Routes: rs}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			m := NewModel(net)
			m.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := m.SolveTwoClass(in)
				if err != nil || !res.Converged {
					b.Fatalf("solve failed: %v", err)
				}
			}
		})
	}
}
