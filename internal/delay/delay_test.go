package delay

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ubac/internal/routes"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

const eps = 1e-9

func approx(a, b float64) bool {
	return math.Abs(a-b) <= eps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestGainHandComputed(t *testing.T) {
	// α=0.5, ρ=32 kb/s, N=2: g = 0.5·1/(32000·1.5).
	got := Gain(0.5, 32e3, 2)
	want := 0.5 / (32e3 * 1.5)
	if !approx(got, want) {
		t.Errorf("Gain = %g, want %g", got, want)
	}
}

func TestServerBoundMatchesTheorem3Shape(t *testing.T) {
	// d = (T+ρY)α/ρ + (α−1)·α(T+ρY)/(ρ(N−α)) must equal g(T+ρY).
	alpha, burst, rho, y := 0.45, 640.0, 32e3, 0.02
	n := 6
	direct := (burst+rho*y)*alpha/rho + (alpha-1)*alpha*(burst+rho*y)/(rho*(float64(n)-alpha))
	if got := ServerBound(alpha, burst, rho, n, y); !approx(got, direct) {
		t.Errorf("ServerBound = %g, explicit Theorem 3 = %g", got, direct)
	}
}

// The paper's closed form (Theorem 3) and the general busy-period
// evaluator over the worst-case aggregate (Theorems 1-2 + Equation (3))
// must agree exactly. This is the consistency obligation called out in
// DESIGN.md.
func TestClosedFormEqualsNumericProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := 0.05 + 0.9*rng.Float64()
		burst := 100 + rng.Float64()*1e5
		rho := 1e3 + rng.Float64()*1e6
		n := 2 + rng.Intn(15)
		c := rho * (10 + rng.Float64()*1e4) // keep αC/ρ meaningful
		y := rng.Float64() * 0.5
		closed := ServerBound(alpha, burst, rho, n, y)
		numeric, err := ServerBoundNumeric(alpha, burst, rho, n, c, y)
		if err != nil {
			return false
		}
		return math.Abs(closed-numeric) <= 1e-9*math.Max(1, closed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAggregateCurveShape(t *testing.T) {
	alpha, burst, rho := 0.3, 640.0, 32e3
	n, c, y := 6, 100e6, 0.01
	g := AggregateCurve(alpha, burst, rho, n, c, y)
	// Long-run rate must be α·C (the admitted population's total rate).
	if got := g.SustainedRate(); !approx(got, alpha*c) {
		t.Errorf("sustained rate = %g, want %g", got, alpha*c)
	}
	// Initial slope is N·C (all inputs bursting at line rate).
	if got := g.Eval(1e-12) / 1e-12; math.Abs(got-float64(n)*c) > 1e-3*float64(n)*c {
		t.Errorf("initial slope = %g, want %g", got, float64(n)*c)
	}
}

func lineModel(t *testing.T, nRouters int) (*Model, *topology.Network) {
	t.Helper()
	net, err := topology.Line(nRouters, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	return NewModel(net), net
}

func chainInput(t *testing.T, net *topology.Network, alpha float64) ClassInput {
	t.Helper()
	rs := routes.NewSet(net)
	path := make([]int, net.NumRouters())
	for i := range path {
		path[i] = i
	}
	r, err := routes.FromRouterPath(net, "voice", path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Add(r); err != nil {
		t.Fatal(err)
	}
	return ClassInput{Class: traffic.Voice(), Alpha: alpha, Routes: rs}
}

func TestSolveTwoClassChainGeometric(t *testing.T) {
	// A single route along a line has no feedback: the fixed point is the
	// exact geometric recursion d_k = gT(1+gρ)^(k-1).
	m, net := lineModel(t, 5)
	in := chainInput(t, net, 0.5)
	res, err := m.SolveTwoClass(in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("chain did not converge")
	}
	g := Gain(0.5, 32e3, net.MaxDegree())
	for hop := 0; hop < 4; hop++ {
		srv := in.Routes.Route(0).Servers[hop]
		want := g * 640 * math.Pow(1+g*32e3, float64(hop))
		if !approx(res.D[srv], want) {
			t.Errorf("hop %d: d = %g, want %g", hop, res.D[srv], want)
		}
	}
	// Route delay equals the geometric sum.
	wantTotal := 640.0 / 32e3 * (math.Pow(1+g*32e3, 4) - 1)
	if got := in.Routes.Route(0).Delay(res.D); !approx(got, wantTotal) {
		t.Errorf("route delay = %g, want %g", got, wantTotal)
	}
}

func TestSolveTwoClassValidation(t *testing.T) {
	m, net := lineModel(t, 3)
	rs := routes.NewSet(net)
	bad := []ClassInput{
		{Class: traffic.Voice(), Alpha: 0, Routes: rs},
		{Class: traffic.Voice(), Alpha: 1, Routes: rs},
		{Class: traffic.Voice(), Alpha: -0.2, Routes: rs},
		{Class: traffic.Voice(), Alpha: 0.5, Routes: nil},
		{Class: traffic.Class{}, Alpha: 0.5, Routes: rs},
	}
	for i, in := range bad {
		if _, err := m.SolveTwoClass(in); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Routes over a different network.
	other, err := topology.Line(4, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SolveTwoClass(ClassInput{Class: traffic.Voice(), Alpha: 0.5, Routes: routes.NewSet(other)}); err == nil {
		t.Error("foreign route set accepted")
	}
}

// ringInputAllAround builds the 3-hop all-around route set on Ring(4)
// whose feedback loop has gain 2gρ.
func ringInputAllAround(t *testing.T, net *topology.Network, alpha float64) ClassInput {
	t.Helper()
	rs := routes.NewSet(net)
	n := net.NumRouters()
	for s := 0; s < n; s++ {
		path := []int{s, (s + 1) % n, (s + 2) % n, (s + 3) % n}
		r, err := routes.FromRouterPath(net, "voice", path)
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return ClassInput{Class: traffic.Voice(), Alpha: alpha, Routes: rs}
}

func TestSolveTwoClassDivergence(t *testing.T) {
	net, err := topology.Ring(4, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(net)
	// Feedback gain 2gρ = 2α(N−1)/(N−α) with N=2: diverges iff α ≥ 2/3.
	res, err := m.SolveTwoClass(ringInputAllAround(t, net, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("expected divergence at alpha=0.7 on the feedback ring")
	}
	res, err = m.SolveTwoClass(ringInputAllAround(t, net, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("expected convergence at alpha=0.2")
	}
	// Analytic stationary point of the symmetric ring: d = gT/(1 − 2gρ).
	g := Gain(0.2, 32e3, 2)
	want := g * 640 / (1 - 2*g*32e3)
	if !approx(res.MaxServerDelay(), want) {
		t.Errorf("ring fixed point = %g, want %g", res.MaxServerDelay(), want)
	}
}

func TestDelayMonotoneInAlphaProperty(t *testing.T) {
	m, net := lineModel(t, 4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a1 := 0.05 + 0.4*rng.Float64()
		a2 := a1 + 0.2*rng.Float64()
		r1, err := m.SolveTwoClass(chainInput(t, net, a1))
		if err != nil || !r1.Converged {
			return false
		}
		r2, err := m.SolveTwoClass(chainInput(t, net, a2))
		if err != nil || !r2.Converged {
			return false
		}
		for k := range r1.D {
			if r2.D[k] < r1.D[k]-eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPerServerFanInTighter(t *testing.T) {
	// On the MCI backbone most routers have degree < 6, so the per-server
	// model must never exceed the uniform-N bound.
	net := topology.MCI()
	rs := routes.NewSet(net)
	rg := net.RouterGraph()
	for _, p := range net.Pairs()[:40] {
		path, err := rg.ShortestPath(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		r, err := routes.FromRouterPath(net, "voice", path)
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	in := ClassInput{Class: traffic.Voice(), Alpha: 0.3, Routes: rs}
	mu := NewModel(net)
	resU, err := mu.SolveTwoClass(in)
	if err != nil || !resU.Converged {
		t.Fatalf("uniform solve: %v converged=%v", err, resU != nil && resU.Converged)
	}
	mp := NewModel(net)
	mp.NMode = PerServerFanIn
	resP, err := mp.SolveTwoClass(in)
	if err != nil || !resP.Converged {
		t.Fatalf("per-server solve: %v", err)
	}
	for k := range resU.D {
		if resP.D[k] > resU.D[k]+eps {
			t.Fatalf("per-server bound %g exceeds uniform %g at server %d", resP.D[k], resU.D[k], k)
		}
	}
	if resP.MaxServerDelay() >= resU.MaxServerDelay() {
		t.Error("per-server model not strictly tighter anywhere")
	}
}

func TestMultiClassSingleEqualsTwoClass(t *testing.T) {
	m, net := lineModel(t, 5)
	in := chainInput(t, net, 0.4)
	two, err := m.SolveTwoClass(in)
	if err != nil || !two.Converged {
		t.Fatalf("two-class: %v", err)
	}
	multi, err := m.SolveMultiClass([]ClassInput{in})
	if err != nil {
		t.Fatal(err)
	}
	if !multi[0].Converged {
		t.Fatal("multi-class single input did not converge")
	}
	for k := range two.D {
		if math.Abs(two.D[k]-multi[0].D[k]) > 1e-9*math.Max(1, two.D[k]) {
			t.Errorf("server %d: two=%g multi=%g", k, two.D[k], multi[0].D[k])
		}
	}
}

func videoClass() traffic.Class {
	return traffic.Class{
		Name:     "video",
		Bucket:   traffic.LeakyBucket{Burst: 15e3, Rate: 1.5e6},
		Deadline: 0.4,
		Priority: 1,
	}
}

func TestMultiClassInterference(t *testing.T) {
	m, net := lineModel(t, 4)
	voice := chainInput(t, net, 0.2)
	videoRoutes := routes.NewSet(net)
	r, err := routes.FromRouterPath(net, "video", []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := videoRoutes.Add(r); err != nil {
		t.Fatal(err)
	}
	video := ClassInput{Class: videoClass(), Alpha: 0.3, Routes: videoRoutes}

	both, err := m.SolveMultiClass([]ClassInput{voice, video})
	if err != nil {
		t.Fatal(err)
	}
	if !both[0].Converged || !both[1].Converged {
		t.Fatal("multi-class did not converge")
	}
	// The top class must see exactly its single-class bound (higher
	// priority traffic is never affected by lower classes).
	solo, err := m.SolveTwoClass(voice)
	if err != nil {
		t.Fatal(err)
	}
	for k := range solo.D {
		if math.Abs(solo.D[k]-both[0].D[k]) > 1e-9*math.Max(1, solo.D[k]) {
			t.Fatalf("voice delay changed under video load at server %d: %g vs %g", k, solo.D[k], both[0].D[k])
		}
	}
	// The lower class must be strictly slower than it would be alone.
	videoAlone, err := m.SolveTwoClass(video)
	if err != nil || !videoAlone.Converged {
		t.Fatal(err)
	}
	if both[1].MaxServerDelay() <= videoAlone.MaxServerDelay() {
		t.Errorf("video under voice (%g) not slower than video alone (%g)",
			both[1].MaxServerDelay(), videoAlone.MaxServerDelay())
	}
}

func TestMultiClassValidation(t *testing.T) {
	m, net := lineModel(t, 3)
	in := chainInput(t, net, 0.4)
	if _, err := m.SolveMultiClass(nil); err == nil {
		t.Error("empty input accepted")
	}
	// Unordered priorities.
	v := chainInput(t, net, 0.2)
	v.Class.Priority = 1
	w := chainInput(t, net, 0.2)
	w.Class.Name = "w"
	w.Class.Priority = 0
	if _, err := m.SolveMultiClass([]ClassInput{v, w}); err == nil {
		t.Error("priority disorder accepted")
	}
	// Overload.
	a := in
	a.Alpha = 0.6
	b := chainInput(t, net, 0.5)
	b.Class.Name = "b"
	b.Class.Priority = 1
	if _, err := m.SolveMultiClass([]ClassInput{a, b}); err == nil {
		t.Error("total alpha >= 1 accepted")
	}
}

func TestVerifySafeAndUnsafe(t *testing.T) {
	m, net := lineModel(t, 5)
	// Low alpha: easily safe for a 100 ms deadline.
	res, err := m.Verify([]ClassInput{chainInput(t, net, 0.1)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Safe || !res.Converged {
		t.Fatalf("expected safe: %+v", res)
	}
	if len(res.Routes) != 1 || !res.Routes[0].OK {
		t.Errorf("route report wrong: %+v", res.Routes)
	}
	if res.WorstSlack <= 0 {
		t.Errorf("slack = %g, want > 0", res.WorstSlack)
	}
	// Tighten the deadline below the bound: unsafe but converged.
	tight := chainInput(t, net, 0.1)
	tight.Class.Deadline = 1e-6
	res, err = m.Verify([]ClassInput{tight})
	if err != nil {
		t.Fatal(err)
	}
	if res.Safe || !res.Converged {
		t.Errorf("expected unsafe but converged: %+v", res)
	}
	if res.WorstSlack >= 0 {
		t.Errorf("slack = %g, want < 0", res.WorstSlack)
	}
}

func TestVerifyDivergent(t *testing.T) {
	net, err := topology.Ring(4, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(net)
	res, err := m.Verify([]ClassInput{ringInputAllAround(t, net, 0.8)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Safe || res.Converged {
		t.Errorf("divergent config reported safe/converged: %+v", res)
	}
}

func TestVerifyEmpty(t *testing.T) {
	m, _ := lineModel(t, 3)
	if _, err := m.Verify(nil); err == nil {
		t.Error("Verify(nil) accepted")
	}
}

func TestRouteReportSlack(t *testing.T) {
	r := RouteReport{Bound: 0.03, Deadline: 0.1}
	if !approx(r.Slack(), 0.07) {
		t.Errorf("slack = %g", r.Slack())
	}
}

func BenchmarkSolveTwoClassMCI(b *testing.B) {
	net := topology.MCI()
	rs := routes.NewSet(net)
	rg := net.RouterGraph()
	for _, p := range net.Pairs() {
		path, err := rg.ShortestPath(p[0], p[1])
		if err != nil {
			b.Fatal(err)
		}
		r, err := routes.FromRouterPath(net, "voice", path)
		if err != nil {
			b.Fatal(err)
		}
		if err := rs.Add(r); err != nil {
			b.Fatal(err)
		}
	}
	m := NewModel(net)
	in := ClassInput{Class: traffic.Voice(), Alpha: 0.3, Routes: rs}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.SolveTwoClass(in)
		if err != nil || !res.Converged {
			b.Fatalf("solve failed: %v", err)
		}
	}
}

func TestModelNetworkAccessor(t *testing.T) {
	m, net := lineModel(t, 3)
	if m.Network() != net {
		t.Error("Network() accessor wrong")
	}
}

func TestMeetsDeadlineTolerance(t *testing.T) {
	if !MeetsDeadline(0.1, 0.1) {
		t.Error("exact equality rejected")
	}
	if !MeetsDeadline(0.1+1e-12, 0.1) {
		t.Error("ULP-level overshoot rejected")
	}
	if MeetsDeadline(0.1001, 0.1) {
		t.Error("real violation accepted")
	}
	if MeetsDeadline(0.2, 0.1) {
		t.Error("gross violation accepted")
	}
}

func TestSolveTwoClassFromBadWarmStart(t *testing.T) {
	m, net := lineModel(t, 3)
	in := chainInput(t, net, 0.3)
	if _, err := m.SolveTwoClassFrom(in, make([]float64, 1)); err == nil {
		t.Error("wrong-length warm start accepted")
	}
}

func TestSolveTwoClassFromWarmEqualsCold(t *testing.T) {
	m, net := lineModel(t, 5)
	in := chainInput(t, net, 0.45)
	cold, err := m.SolveTwoClass(in)
	if err != nil || !cold.Converged {
		t.Fatal(err)
	}
	// Warm start from the halved fixed point (below it) must land on the
	// same answer.
	half := make([]float64, len(cold.D))
	for i, d := range cold.D {
		half[i] = d / 2
	}
	warm, err := m.SolveTwoClassFrom(in, half)
	if err != nil || !warm.Converged {
		t.Fatal(err)
	}
	for k := range cold.D {
		if math.Abs(cold.D[k]-warm.D[k]) > 1e-9*math.Max(1, cold.D[k]) {
			t.Errorf("server %d: cold %g vs warm %g", k, cold.D[k], warm.D[k])
		}
	}
	if warm.Iterations > cold.Iterations {
		t.Errorf("warm start took more iterations (%d) than cold (%d)", warm.Iterations, cold.Iterations)
	}
}

func TestFixedPerHopChargesDeadline(t *testing.T) {
	m, net := lineModel(t, 5)
	in := chainInput(t, net, 0.3)
	clean, err := m.Verify([]ClassInput{in})
	if err != nil {
		t.Fatal(err)
	}
	m.FixedPerHop = 5e-3 // 5 ms per hop, 4 hops = 20 ms
	charged, err := m.Verify([]ClassInput{in})
	if err != nil {
		t.Fatal(err)
	}
	diff := charged.Routes[0].Bound - clean.Routes[0].Bound
	if math.Abs(diff-0.02) > 1e-12 {
		t.Errorf("per-hop charge = %g, want 0.02", diff)
	}
	// Enough constant delay makes the route miss its 100 ms deadline.
	m.FixedPerHop = 30e-3
	late, err := m.Verify([]ClassInput{in})
	if err != nil {
		t.Fatal(err)
	}
	if late.Safe {
		t.Error("120 ms of constants within a 100 ms deadline reported safe")
	}
}

func TestBreakdownSumsToBound(t *testing.T) {
	m, net := lineModel(t, 5)
	m.FixedPerHop = 1e-3
	in := chainInput(t, net, 0.4)
	res, err := m.SolveTwoClass(in)
	if err != nil || !res.Converged {
		t.Fatal(err)
	}
	rt := in.Routes.Route(0)
	hops := m.Breakdown(res, rt)
	if len(hops) != rt.Hops() {
		t.Fatalf("breakdown hops = %d, want %d", len(hops), rt.Hops())
	}
	sum := 0.0
	for i, h := range hops {
		sum += h.D + h.Fixed
		if math.Abs(h.Cumulative-sum) > 1e-12 {
			t.Errorf("hop %d cumulative %g, want %g", i, h.Cumulative, sum)
		}
		if h.Name == "" || h.Fixed != 1e-3 {
			t.Errorf("hop %d fields wrong: %+v", i, h)
		}
	}
	want := rt.Delay(res.D) + float64(rt.Hops())*m.FixedPerHop
	if math.Abs(sum-want) > 1e-12 {
		t.Errorf("breakdown total %g, want %g", sum, want)
	}
	// Y must be nondecreasing along a single chain.
	for i := 1; i < len(hops); i++ {
		if hops[i].Y < hops[i-1].Y {
			t.Errorf("Y decreasing at hop %d", i)
		}
	}
}

// Property: multi-class delays are monotone in every class's utilization
// and in priority (lower priority never beats a higher one on the same
// server set under identical traffic).
func TestMultiClassMonotoneProperty(t *testing.T) {
	m, net := lineModel(t, 4)
	mk := func(alphaV, alphaD float64) []ClassInput {
		voice := chainInput(t, net, alphaV)
		videoRoutes := routes.NewSet(net)
		r, err := routes.FromRouterPath(net, "video", []int{0, 1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := videoRoutes.Add(r); err != nil {
			t.Fatal(err)
		}
		video := ClassInput{
			Class: traffic.Class{
				Name:     "video",
				Bucket:   traffic.LeakyBucket{Burst: 15e3, Rate: 1.5e6},
				Deadline: 0.4,
				Priority: 1,
			},
			Alpha:  alphaD,
			Routes: videoRoutes,
		}
		return []ClassInput{voice, video}
	}
	base, err := m.SolveMultiClass(mk(0.15, 0.2))
	if err != nil || !base[1].Converged {
		t.Fatal(err)
	}
	// More voice load: video delays must not decrease.
	heavier, err := m.SolveMultiClass(mk(0.25, 0.2))
	if err != nil || !heavier[1].Converged {
		t.Fatal(err)
	}
	for k := range base[1].D {
		if heavier[1].D[k] < base[1].D[k]-1e-12 {
			t.Fatalf("video delay dropped when voice load grew at server %d", k)
		}
	}
	// Identical envelopes: the lower-priority class is never faster than
	// the higher one on the same server.
	samePair, err := m.SolveMultiClass([]ClassInput{
		chainInput(t, net, 0.2),
		func() ClassInput {
			in := chainInput(t, net, 0.2)
			in.Class.Name = "voice2"
			in.Class.Priority = 1
			return in
		}(),
	})
	if err != nil || !samePair[1].Converged {
		t.Fatal(err)
	}
	for k := range samePair[0].D {
		if samePair[1].D[k] < samePair[0].D[k]-1e-12 {
			t.Fatalf("lower priority faster than higher at server %d", k)
		}
	}
}
