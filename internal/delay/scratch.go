package delay

import (
	"fmt"
	"math"
	"time"

	"ubac/internal/routes"
	"ubac/internal/telemetry"
)

// SolveScratch holds the reusable state of repeated two-class solves:
// the Result vectors, the sweep buffer, the per-server gain vector
// (cached across calls with the same model/class parameters), and the
// active-domain bookkeeping. The route-selection engine gives each of
// its workers one scratch so that steady-state candidate evaluation
// performs zero heap allocations.
//
// A scratch is not safe for concurrent use; the Result returned by
// SolveTwoClassScratch aliases its buffers and is valid only until the
// next call with the same scratch.
type SolveScratch struct {
	res  Result
	next []float64

	gain      []float64
	gainModel *Model
	gainAlpha float64
	gainRho   float64
	gainNMode NMode

	active []int
	inDom  []bool
}

func (sc *SolveScratch) ensure(nsrv int) {
	if len(sc.next) != nsrv {
		sc.res.D = make([]float64, nsrv)
		sc.res.Y = make([]float64, nsrv)
		sc.next = make([]float64, nsrv)
		sc.inDom = make([]bool, nsrv)
		sc.active = make([]int, 0, nsrv)
		sc.gain = nil // force a gain recompute at the new size
	}
}

// SolveTwoClassScratch is SolveTwoClassExtra with caller-provided
// scratch: bit-identical results (same D, Y, Converged, Iterations for
// the same inputs), no per-call allocations once the scratch is warm.
// The sweep is always sequential — callers parallelize across solves,
// not within one — and restricted to the servers actually crossed by
// in.Routes or extra: every other server's update is the constant
// gain·T from the first sweep on (its Y_k is 0 in every iteration), so
// folding those servers' first-sweep change and constant delay into the
// convergence bookkeeping analytically reproduces the full sweep
// exactly, at O(active servers) per iteration.
func (m *Model) SolveTwoClassScratch(in ClassInput, extra *routes.Route, d0 []float64, sc *SolveScratch) (*Result, error) {
	if err := in.validate(m.net); err != nil {
		return nil, err
	}
	nsrv := m.net.NumServers()
	if d0 != nil && len(d0) != nsrv {
		return nil, fmt.Errorf("delay: warm start length %d, want %d", len(d0), nsrv)
	}
	sc.ensure(nsrv)
	burst, rho := in.Class.Bucket.Burst, in.Class.Bucket.Rate
	if sc.gain == nil || sc.gainModel != m || sc.gainAlpha != in.Alpha || sc.gainRho != rho || sc.gainNMode != m.NMode {
		if sc.gain == nil {
			sc.gain = make([]float64, nsrv)
		}
		for s := 0; s < nsrv; s++ {
			sc.gain[s] = Gain(in.Alpha, rho, m.serverN(s))
		}
		sc.gainModel, sc.gainAlpha, sc.gainRho, sc.gainNMode = m, in.Alpha, rho, m.NMode
	}
	res := &sc.res
	res.Converged = false
	res.Iterations = 0
	if telemetry.Active(m.Sink) {
		start := time.Now()
		defer func() {
			m.Sink.FixedPoint(telemetry.FixedPoint{
				Class:      in.Class.Name,
				Iterations: res.Iterations,
				Converged:  res.Converged,
				Elapsed:    time.Since(start),
			})
		}()
	}
	if d0 != nil {
		copy(res.D, d0)
	} else {
		for s := range res.D {
			res.D[s] = 0
		}
	}
	m.iterateActive(in, extra, res, sc, burst, rho)
	return res, nil
}

// iterateActive runs the Equation (14) sweep d ← Z(d) restricted to the
// active servers (those crossed by the route set or the phantom route),
// reproducing iterateSequential bit for bit:
//
//   - an inactive server has Y_k = 0 in every sweep, so its update is
//     the constant c_s = gain_s·T; its delta is |c_s − d0_s| in sweep 1
//     and exactly 0 afterwards, and its delay contribution to the
//     divergence test is the constant c_s;
//   - per-sweep maxima (worstChange, worstD) are exact floating-point
//     maxima, which are order-independent, so folding the precomputed
//     inactive contributions into the active loop's maxima yields the
//     same values — hence the same iteration count, verdict, and D/Y —
//     as the full sweep.
func (m *Model) iterateActive(in ClassInput, extra *routes.Route, res *Result, sc *SolveScratch, burst, rho float64) {
	if m.MaxIter < 1 {
		for s := range res.Y {
			res.Y[s] = 0
		}
		return
	}
	dom := sc.active[:0]
	inactChange1 := 0.0 // sweep-1 change contribution of inactive servers
	inactMaxD := 0.0    // every-sweep delay contribution of inactive servers
	for s := range res.D {
		if in.Routes.CrossCount(s) > 0 {
			sc.inDom[s] = true
			dom = append(dom, s)
		}
	}
	if extra != nil {
		for _, s := range extra.Servers {
			if !sc.inDom[s] {
				sc.inDom[s] = true
				dom = append(dom, s)
			}
		}
	}
	for s := range res.D {
		if sc.inDom[s] {
			continue
		}
		c := sc.gain[s] * burst
		if ch := math.Abs(c - res.D[s]); ch > inactChange1 {
			inactChange1 = ch
		}
		if c > inactMaxD {
			inactMaxD = c
		}
		res.D[s] = c // the inactive fixed point, reached at sweep 1
		res.Y[s] = 0 // no route crosses s, so its upstream delay is 0
	}
	sc.active = dom
	defer func() {
		for _, s := range dom {
			sc.inDom[s] = false
		}
	}()

	for iter := 1; iter <= m.MaxIter; iter++ {
		res.Iterations = iter
		for _, s := range dom {
			res.Y[s] = 0
		}
		in.Routes.ComputeYPartial(res.D, res.Y, 0, in.Routes.Len(), extra)
		worstChange := 0.0
		worstD := 0.0
		for _, s := range dom {
			v := sc.gain[s] * (burst + rho*res.Y[s])
			if ch := math.Abs(v - res.D[s]); ch > worstChange {
				worstChange = ch
			}
			if v > worstD {
				worstD = v
			}
			sc.next[s] = v
		}
		if iter == 1 && inactChange1 > worstChange {
			worstChange = inactChange1
		}
		if inactMaxD > worstD {
			worstD = inactMaxD
		}
		for _, s := range dom {
			res.D[s] = sc.next[s]
		}
		if worstD > m.DivergeCap {
			res.Converged = false
			return
		}
		if worstChange <= m.Tol*math.Max(1, worstD) {
			res.Converged = true
			in.Routes.ComputeYExtra(res.D, res.Y, extra)
			return
		}
	}
	res.Converged = false
}
