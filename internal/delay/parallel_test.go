package delay

import (
	"math"
	"math/rand"
	"testing"

	"ubac/internal/routes"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

// ringWithArcs builds a ring of n routers and a route set of nRoutes
// random clockwise arcs. Arc routes overlap heavily, so every server's Y
// is a max over many routes — the shape the parallel sweep shards.
func ringWithArcs(t *testing.T, n, nRoutes int, rng *rand.Rand) (*topology.Network, *routes.Set) {
	t.Helper()
	net, err := topology.Ring(n, 45e6)
	if err != nil {
		t.Fatal(err)
	}
	set := routes.NewSet(net)
	for i := 0; i < nRoutes; i++ {
		src := rng.Intn(n)
		hops := 1 + rng.Intn(n-1)
		path := make([]int, hops+1)
		for j := range path {
			path[j] = (src + j) % n
		}
		r, err := routes.FromRouterPath(net, "voice", path)
		if err != nil {
			t.Fatal(err)
		}
		if err := set.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return net, set
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// The central determinism contract: for any topology, route set, alpha,
// and worker count, the parallel solver returns the same verdict and
// iteration count as the sequential one, and on convergence the D and Y
// vectors are bit-identical.
func TestParallelMatchesSequentialExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	voice := traffic.Voice()
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(14)
		nRoutes := 1 + rng.Intn(60)
		net, set := ringWithArcs(t, n, nRoutes, rng)
		alpha := 0.05 + 0.9*rng.Float64()
		in := ClassInput{Class: voice, Alpha: alpha, Routes: set}

		seq := NewModel(net)
		ref, err := seq.SolveTwoClass(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3, 4, 8, 33} {
			par := NewModel(net)
			par.Workers = w
			got, err := par.SolveTwoClass(in)
			if err != nil {
				t.Fatal(err)
			}
			if got.Converged != ref.Converged || got.Iterations != ref.Iterations {
				t.Fatalf("trial %d workers %d (n=%d routes=%d alpha=%.3f): verdict (%v, %d) != sequential (%v, %d)",
					trial, w, n, nRoutes, alpha, got.Converged, got.Iterations, ref.Converged, ref.Iterations)
			}
			if !ref.Converged {
				continue
			}
			if !bitsEqual(got.D, ref.D) {
				t.Fatalf("trial %d workers %d: D not bit-identical to sequential", trial, w)
			}
			if !bitsEqual(got.Y, ref.Y) {
				t.Fatalf("trial %d workers %d: Y not bit-identical to sequential", trial, w)
			}
		}
	}
}

// The phantom-route path (SolveTwoClassExtra) must honor the same
// contract: the extra route rides the last shard but contributes through
// the same order-independent max reduction.
func TestParallelPhantomRouteMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	voice := traffic.Voice()
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(10)
		net, set := ringWithArcs(t, n, 1+rng.Intn(30), rng)
		src := rng.Intn(n)
		hops := 1 + rng.Intn(n-1)
		path := make([]int, hops+1)
		for j := range path {
			path[j] = (src + j) % n
		}
		extra, err := routes.FromRouterPath(net, "voice", path)
		if err != nil {
			t.Fatal(err)
		}
		in := ClassInput{Class: voice, Alpha: 0.2 + 0.5*rng.Float64(), Routes: set}

		seq := NewModel(net)
		ref, err := seq.SolveTwoClassExtra(in, &extra, nil)
		if err != nil {
			t.Fatal(err)
		}
		par := NewModel(net)
		par.Workers = 2 + rng.Intn(7)
		got, err := par.SolveTwoClassExtra(in, &extra, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Converged != ref.Converged || got.Iterations != ref.Iterations {
			t.Fatalf("trial %d: verdict (%v, %d) != sequential (%v, %d)",
				trial, got.Converged, got.Iterations, ref.Converged, ref.Iterations)
		}
		if ref.Converged && (!bitsEqual(got.D, ref.D) || !bitsEqual(got.Y, ref.Y)) {
			t.Fatalf("trial %d: phantom-route solve not bit-identical", trial)
		}
	}
}

// More workers than routes and more workers than servers must degrade to
// empty shards, not wrong answers.
func TestParallelMoreWorkersThanWork(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, set := ringWithArcs(t, 3, 2, rng)
	in := ClassInput{Class: traffic.Voice(), Alpha: 0.3, Routes: set}
	ref, err := NewModel(net).SolveTwoClass(in)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Converged {
		t.Fatal("reference solve did not converge")
	}
	par := NewModel(net)
	par.Workers = 16
	got, err := par.SolveTwoClass(in)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Converged || got.Iterations != ref.Iterations || !bitsEqual(got.D, ref.D) {
		t.Fatal("oversized pool changed the result")
	}
}

// The Equation (14) iteration from d = 0 is monotone nondecreasing: Z is
// monotone in d and Z(0) >= 0, so each sweep's iterate dominates the
// previous one elementwise. Truncating the iteration at k sweeps exposes
// the k-th iterate.
func TestIteratesMonotoneFromZero(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	voice := traffic.Voice()
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(8)
		net, set := ringWithArcs(t, n, 1+rng.Intn(20), rng)
		alpha := 0.1 + 0.7*rng.Float64()
		in := ClassInput{Class: voice, Alpha: alpha, Routes: set}
		var prev []float64
		for k := 1; k <= 12; k++ {
			for _, workers := range []int{0, 4} {
				m := NewModel(net)
				m.MaxIter = k
				m.Workers = workers
				res, err := m.SolveTwoClass(in)
				if err != nil {
					t.Fatal(err)
				}
				if workers == 0 {
					if prev != nil {
						for s := range res.D {
							if res.D[s] < prev[s] {
								t.Fatalf("trial %d sweep %d server %d: iterate decreased %g -> %g",
									trial, k, s, prev[s], res.D[s])
							}
						}
					}
					prev = append(prev[:0], res.D...)
				} else {
					seqDiverged := false
					for _, d := range prev {
						if d > m.DivergeCap {
							seqDiverged = true
							break
						}
					}
					if !res.Converged && !seqDiverged && !bitsEqual(res.D, prev) {
						// Truncated (non-diverged) parallel runs expose the
						// same k-th iterate as the sequential solver; a
						// diverged run's D is unspecified by contract.
						t.Fatalf("trial %d sweep %d: parallel iterate differs from sequential", trial, k)
					}
				}
			}
		}
	}
}

// Divergence detection must fire in the parallel solver exactly when the
// sequential solver diverges, in the same sweep. The alpha sweep crosses
// the stability boundary of a long ring, and a tightened DivergeCap
// exercises the early-exit flag well before the iteration cap.
func TestDivergenceParity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	voice := traffic.Voice()
	net, set := ringWithArcs(t, 12, 40, rng)
	sawDiverge, sawConverge := false, false
	for _, dcap := range []float64{1e4, 1.0, 1e-2} {
		for alpha := 0.05; alpha < 0.99; alpha += 0.05 {
			in := ClassInput{Class: voice, Alpha: alpha, Routes: set}
			seq := NewModel(net)
			seq.DivergeCap = dcap
			ref, err := seq.SolveTwoClass(in)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Converged {
				sawConverge = true
			} else {
				sawDiverge = true
			}
			for _, w := range []int{2, 5} {
				par := NewModel(net)
				par.DivergeCap = dcap
				par.Workers = w
				got, err := par.SolveTwoClass(in)
				if err != nil {
					t.Fatal(err)
				}
				if got.Converged != ref.Converged {
					t.Fatalf("cap=%g alpha=%.2f workers=%d: parallel converged=%v, sequential=%v",
						dcap, alpha, w, got.Converged, ref.Converged)
				}
				if got.Iterations != ref.Iterations {
					t.Fatalf("cap=%g alpha=%.2f workers=%d: diverged at sweep %d, sequential at %d",
						dcap, alpha, w, got.Iterations, ref.Iterations)
				}
			}
		}
	}
	if !sawDiverge || !sawConverge {
		t.Fatalf("alpha sweep did not cross the stability boundary (diverge=%v converge=%v)",
			sawDiverge, sawConverge)
	}
}
