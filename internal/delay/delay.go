// Package delay implements the paper's configuration-time delay analysis
// (Section 5.1): the per-server worst-case queueing delay bound of
// Theorem 3, the worst-case aggregate arrival curves behind it
// (Theorems 1 and 2), the fixed-point computation of the delay vector
// d = Z(d) (Equation (14)), the multi-class static-priority extension of
// Theorem 5 / Equation (24), and the verification procedure of Figure 2.
//
// Two interchangeable evaluators are provided and tested against each
// other: the closed form of Theorem 3 (fast; used inside route-selection
// loops) and a general numeric busy-period evaluator over piecewise-
// linear curves (needed for the multi-class case and for heterogeneous
// capacities).
package delay

import (
	"fmt"
	"math"
	"time"

	"ubac/internal/routes"
	"ubac/internal/telemetry"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

// NMode selects how N, the per-router input-link count of the analysis,
// is chosen for each link server.
type NMode int

const (
	// UniformN uses the network-wide maximum router degree for every
	// server — the paper's model ("we assume all routers to have N input
	// links"); conservative for low-degree routers.
	UniformN NMode = iota
	// PerServerFanIn uses each server's own upstream router degree,
	// a tighter per-server generalization.
	PerServerFanIn
)

// Model carries the solver configuration for one network.
// Construct with NewModel; the zero value is not usable.
type Model struct {
	net *topology.Network

	// NMode selects the input-link count model (default UniformN).
	NMode NMode
	// Tol is the relative convergence tolerance of the fixed-point
	// iterations (default 1e-12).
	Tol float64
	// MaxIter caps the outer fixed-point iterations (default 4000).
	MaxIter int
	// DivergeCap declares divergence once any per-server delay bound
	// exceeds this many seconds (default 1e4).
	DivergeCap float64
	// FixedPerHop is a constant per-hop delay in seconds (propagation,
	// switching, packetization) charged against deadlines on top of the
	// queueing bounds — the paper folds these constants into the
	// deadline requirements (Section 3). Default 0.
	FixedPerHop float64
	// Workers sets the size of the worker pool used to parallelize each
	// sweep of the two-class fixed-point iteration (route-sharded Y
	// accumulation, server-sharded delay updates). 0 or 1 runs the
	// sequential solver; either way the result is bit-identical — the
	// parallel sweep reduces with elementwise max, which is
	// order-independent. The multi-class solver is always sequential.
	Workers int
	// Sink receives one telemetry.FixedPoint event per solver run
	// (iteration count, convergence, wall time). nil or telemetry.Nop
	// (the default) disables the timestamping entirely; solves inside
	// route-selection loops then cost exactly what they did before.
	Sink telemetry.Sink
}

// NewModel returns a Model with default solver settings.
func NewModel(net *topology.Network) *Model {
	return &Model{
		net:        net,
		NMode:      UniformN,
		Tol:        1e-12,
		MaxIter:    4000,
		DivergeCap: 1e4,
	}
}

// Network returns the model's network.
func (m *Model) Network() *topology.Network { return m.net }

// serverN returns N for link server s under the configured mode.
func (m *Model) serverN(s int) int {
	switch m.NMode {
	case PerServerFanIn:
		tail, _, _ := m.net.Server(s)
		n := m.net.Degree(tail)
		if n < 2 {
			n = 2
		}
		return n
	default:
		n := m.net.MaxDegree()
		if n < 2 {
			n = 2
		}
		return n
	}
}

// Gain returns g = α(N−1) / (ρ(N−α)), the factor of the Theorem 3 closed
// form d = g·(T + ρY). It is the per-server "delay gain": the recursion
// d_k = g(T + ρ·Y_k) converges along a path of length L only when the
// accumulated gain stays below 1.
func Gain(alpha, rho float64, n int) float64 {
	return alpha * float64(n-1) / (rho * (float64(n) - alpha))
}

// ServerBound returns the Theorem 3 closed-form worst-case queueing delay
// of a server with utilization assignment alpha, per-flow envelope
// (burst, rho), N input links, and worst upstream accumulated delay y:
//
//	d = (T + ρY)·α/ρ + (α−1)·α(T + ρY)/(ρ(N−α)) = g·(T + ρY).
func ServerBound(alpha, burst, rho float64, n int, y float64) float64 {
	return Gain(alpha, rho, n) * (burst + rho*y)
}

// AggregateCurve returns the worst-case aggregate arrival curve of one
// class at one server (Theorems 1–2): the admission-controlled population
// α·C/ρ of flows is spread evenly over the N input links
// (n* = αC/(ρN) flows per link), each link is capped at its capacity C,
// and every flow is jittered by up to y seconds of upstream delay:
//
//	G(I) = N · min( C·I, n*·(T + ρ·y + ρ·I) ).
func AggregateCurve(alpha, burst, rho float64, n int, c, y float64) traffic.Curve {
	nStar := alpha * c / (rho * float64(n))
	return traffic.MustCurve(
		traffic.Line{A: 0, B: float64(n) * c},
		traffic.Line{A: float64(n) * nStar * (burst + rho*y), B: float64(n) * nStar * rho},
	)
}

// ServerBoundNumeric computes the same bound as ServerBound through the
// general busy-period evaluator d = (1/C)·sup_I (G(I) − C·I)
// (Equation (3) with the worst-case aggregate of Theorems 1–2). The two
// agree to floating-point accuracy; this form generalizes to multiple
// classes and heterogeneous capacities.
func ServerBoundNumeric(alpha, burst, rho float64, n int, c, y float64) (float64, error) {
	g := AggregateCurve(alpha, burst, rho, n, c, y)
	backlog, _, ok := g.MaxBacklog(c)
	if !ok {
		return 0, fmt.Errorf("delay: server unstable at alpha=%g", alpha)
	}
	return backlog / c, nil
}

// ClassInput describes one real-time class for the solver: its traffic
// class, its utilization assignment α, and the routes its flows take.
type ClassInput struct {
	Class  traffic.Class
	Alpha  float64
	Routes *routes.Set
}

func (in ClassInput) validate(net *topology.Network) error {
	if err := in.Class.Validate(); err != nil {
		return err
	}
	if !(in.Alpha > 0 && in.Alpha < 1) {
		return fmt.Errorf("delay: alpha %g out of (0,1) for class %q", in.Alpha, in.Class.Name)
	}
	if in.Routes == nil || in.Routes.Network() != net {
		return fmt.Errorf("delay: class %q routes missing or over a different network", in.Class.Name)
	}
	return nil
}

// Result is the outcome of a fixed-point delay computation for one class.
type Result struct {
	// D[k] is the worst-case queueing delay bound of link server k in
	// seconds. Meaningful only if Converged.
	D []float64
	// Y[k] is the worst accumulated upstream delay entering server k.
	Y []float64
	// Converged reports whether the iteration reached a fixed point; if
	// false the utilization assignment is unsafe (delays grow without
	// bound).
	Converged bool
	// Iterations is the number of outer iterations performed.
	Iterations int
}

// MaxServerDelay returns the largest per-server bound.
func (r *Result) MaxServerDelay() float64 {
	worst := 0.0
	for _, d := range r.D {
		if d > worst {
			worst = d
		}
	}
	return worst
}

// SolveTwoClass computes the delay vector for the paper's two-class
// system (one real-time class over best-effort) using the Theorem 3
// closed form inside the Equation (14) fixed-point iteration. The
// iteration starts from d = 0 and is monotone nondecreasing, so it
// converges to the least fixed point whenever one exists and is reported
// diverged otherwise.
func (m *Model) SolveTwoClass(in ClassInput) (*Result, error) {
	return m.SolveTwoClassFrom(in, nil)
}

// SolveTwoClassFrom is SolveTwoClass warm-started from the initial delay
// vector d0 (nil means all zeros). The iteration is monotone, so any d0
// below the least fixed point — e.g. the converged solution of a subset
// of the routes, as maintained by the incremental route-selection loop —
// yields the same answer in fewer iterations. A d0 above the fixed point
// is invalid and gives meaningless results.
func (m *Model) SolveTwoClassFrom(in ClassInput, d0 []float64) (*Result, error) {
	return m.SolveTwoClassExtra(in, nil, d0)
}

// SolveTwoClassExtra is SolveTwoClassFrom with one phantom route treated
// as if it were part of in.Routes — the allocation-free way to evaluate
// a route candidate without mutating the set. It never modifies
// in.Routes, so concurrent calls over the same set (with different
// phantom routes) are safe.
func (m *Model) SolveTwoClassExtra(in ClassInput, extra *routes.Route, d0 []float64) (*Result, error) {
	if err := in.validate(m.net); err != nil {
		return nil, err
	}
	nsrv := m.net.NumServers()
	if d0 != nil && len(d0) != nsrv {
		return nil, fmt.Errorf("delay: warm start length %d, want %d", len(d0), nsrv)
	}
	gain := make([]float64, nsrv)
	for s := 0; s < nsrv; s++ {
		gain[s] = Gain(in.Alpha, in.Class.Bucket.Rate, m.serverN(s))
	}
	res := &Result{D: make([]float64, nsrv), Y: make([]float64, nsrv)}
	if telemetry.Active(m.Sink) {
		start := time.Now()
		defer func() {
			m.Sink.FixedPoint(telemetry.FixedPoint{
				Class:      in.Class.Name,
				Iterations: res.Iterations,
				Converged:  res.Converged,
				Elapsed:    time.Since(start),
			})
		}()
	}
	if d0 != nil {
		copy(res.D, d0)
	}
	burst, rho := in.Class.Bucket.Burst, in.Class.Bucket.Rate
	if m.Workers > 1 {
		m.iterateParallel(in, extra, res, gain, burst, rho)
	} else {
		m.iterateSequential(in, extra, res, gain, burst, rho)
	}
	return res, nil
}

// iterateSequential runs the Equation (14) sweep d ← Z(d) on one
// goroutine until convergence, divergence, or the iteration cap.
func (m *Model) iterateSequential(in ClassInput, extra *routes.Route, res *Result, gain []float64, burst, rho float64) {
	nsrv := len(res.D)
	next := make([]float64, nsrv)
	for iter := 1; iter <= m.MaxIter; iter++ {
		res.Iterations = iter
		in.Routes.ComputeYExtra(res.D, res.Y, extra)
		worstChange := 0.0
		worstD := 0.0
		for s := 0; s < nsrv; s++ {
			next[s] = gain[s] * (burst + rho*res.Y[s])
			if ch := math.Abs(next[s] - res.D[s]); ch > worstChange {
				worstChange = ch
			}
			if next[s] > worstD {
				worstD = next[s]
			}
		}
		copy(res.D, next)
		if worstD > m.DivergeCap {
			res.Converged = false
			return
		}
		if worstChange <= m.Tol*math.Max(1, worstD) {
			res.Converged = true
			in.Routes.ComputeYExtra(res.D, res.Y, extra)
			return
		}
	}
	res.Converged = false
}

// SolveMultiClass computes per-class delay vectors for one or more
// real-time classes under class-based static priority, per Equation (24):
//
//	d_{i,k} = (1/C)·max_{I>0} ( Σ_{l<i} G_{l,k}(I + d_{i,k})
//	                            + G_{i,k}(I) − C·I ),
//
// where G_{l,k} is the worst-case aggregate of class l at server k
// (AggregateCurve with that class's upstream jitter Y_{l,k}). Inputs must
// be ordered by priority, highest first; each class carries its own route
// set. The returned slice is parallel to the inputs. Converged is false
// on any result if the joint iteration fails to stabilize.
func (m *Model) SolveMultiClass(inputs []ClassInput) ([]*Result, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("delay: no classes")
	}
	alphaSum := 0.0
	for i, in := range inputs {
		if err := in.validate(m.net); err != nil {
			return nil, err
		}
		if i > 0 && inputs[i-1].Class.Priority >= in.Class.Priority {
			return nil, fmt.Errorf("delay: classes must be ordered by priority (highest first)")
		}
		alphaSum += in.Alpha
	}
	if alphaSum >= 1 {
		return nil, fmt.Errorf("delay: total real-time utilization %g >= 1", alphaSum)
	}
	nsrv := m.net.NumServers()
	results := make([]*Result, len(inputs))
	for i := range results {
		results[i] = &Result{D: make([]float64, nsrv), Y: make([]float64, nsrv)}
	}
	if telemetry.Active(m.Sink) {
		start := time.Now()
		defer func() {
			for i, in := range inputs {
				m.Sink.FixedPoint(telemetry.FixedPoint{
					Class:      in.Class.Name,
					Iterations: results[i].Iterations,
					Converged:  results[i].Converged,
					Elapsed:    time.Since(start),
				})
			}
		}()
	}
	next := make([]float64, nsrv)
	for iter := 1; iter <= m.MaxIter; iter++ {
		worstChange, worstD := 0.0, 0.0
		for i, in := range inputs {
			res := results[i]
			res.Iterations = iter
			in.Routes.ComputeY(res.D, res.Y)
			for s := 0; s < nsrv; s++ {
				d, err := m.serverDelayMultiClass(inputs, results, i, s)
				if err != nil {
					// Unstable server: treat as divergence.
					for _, r := range results {
						r.Converged = false
					}
					return results, nil
				}
				next[s] = d
				if ch := math.Abs(d - res.D[s]); ch > worstChange {
					worstChange = ch
				}
				if d > worstD {
					worstD = d
				}
			}
			copy(res.D, next)
		}
		if worstD > m.DivergeCap {
			for _, r := range results {
				r.Converged = false
			}
			return results, nil
		}
		if worstChange <= m.Tol*math.Max(1, worstD) {
			for i, in := range inputs {
				results[i].Converged = true
				in.Routes.ComputeY(results[i].D, results[i].Y)
			}
			return results, nil
		}
	}
	for _, r := range results {
		r.Converged = false
	}
	return results, nil
}

// serverDelayMultiClass solves the implicit per-server Equation (24) for
// class index i at server s given the current delay estimates of all
// classes (through their Y vectors).
func (m *Model) serverDelayMultiClass(inputs []ClassInput, results []*Result, i, s int) (float64, error) {
	c := m.net.ServerCapacity(s)
	n := m.serverN(s)
	own := AggregateCurve(inputs[i].Alpha, inputs[i].Class.Bucket.Burst,
		inputs[i].Class.Bucket.Rate, n, c, results[i].Y[s])
	if i == 0 {
		backlog, _, ok := own.MaxBacklog(c)
		if !ok {
			return 0, fmt.Errorf("delay: unstable top class at server %d", s)
		}
		return backlog / c, nil
	}
	higher := make([]traffic.Curve, i)
	for l := 0; l < i; l++ {
		higher[l] = AggregateCurve(inputs[l].Alpha, inputs[l].Class.Bucket.Burst,
			inputs[l].Class.Bucket.Rate, n, c, results[l].Y[s])
	}
	// Monotone iteration on the implicit delay δ.
	delta := 0.0
	for it := 0; it < m.MaxIter; it++ {
		curves := make([]traffic.Curve, 0, i+1)
		for _, h := range higher {
			curves = append(curves, h.Shift(delta))
		}
		curves = append(curves, own)
		total := traffic.Sum(curves...)
		backlog, _, ok := total.MaxBacklog(c)
		if !ok {
			return 0, fmt.Errorf("delay: unstable class %d at server %d", i, s)
		}
		nd := backlog / c
		if nd > m.DivergeCap {
			return 0, fmt.Errorf("delay: diverging class %d at server %d", i, s)
		}
		if math.Abs(nd-delta) <= m.Tol*math.Max(1, nd) {
			return nd, nil
		}
		delta = nd
	}
	return 0, fmt.Errorf("delay: inner iteration did not converge at server %d", s)
}
