package config

import (
	"strings"
	"testing"
)

func TestParseClusterSpec(t *testing.T) {
	cc, err := ParseClusterSpec("id=1,members=0@h0:9444;1@h1:9444;2@h2:9444,heartbeat_ms=50,suspicion_ms=2000,ladder_ms=400,lease_ttl_ms=800,lease_block=128")
	if err != nil {
		t.Fatal(err)
	}
	if cc.NodeID != 1 {
		t.Errorf("NodeID = %d, want 1", cc.NodeID)
	}
	if len(cc.Members) != 3 || cc.Members[2] != (ClusterMember{ID: 2, Addr: "h2:9444"}) {
		t.Errorf("Members = %v", cc.Members)
	}
	if cc.HeartbeatMS != 50 || cc.SuspicionMS != 2000 || cc.LadderMS != 400 || cc.LeaseTTLMS != 800 || cc.LeaseBlock != 128 {
		t.Errorf("timings = %+v", cc)
	}

	// Minimal spec: just identity and membership.
	cc, err = ParseClusterSpec("id=0,members=0@localhost:9444")
	if err != nil {
		t.Fatal(err)
	}
	if cc.HeartbeatMS != 0 || cc.LeaseBlock != 0 {
		t.Errorf("defaults not zero: %+v", cc)
	}
}

func TestParseClusterSpecErrors(t *testing.T) {
	cases := []struct {
		spec, want string
	}{
		{"", "empty spec"},
		{"members=0@h:1", "missing id"},
		{"id=0", "missing members"},
		{"id=3,members=0@h:1;1@h:2", "not in members"},
		{"id=0,members=0@h:1;0@h:2", "duplicate member ID"},
		{"id=256,members=256@h:1", "exceeds 255"},
		{"id=0,members=0@h:1,bogus=1", "unknown argument"},
		{"id=0,members=h:1", "malformed member"},
		{"id=0,members=0@h", "missing port"},
		{"id=0,members=0@:9444", "missing host"},
		{"id=0,members=0@h:99999", "bad port"},
		{"id=0,members=0@h:1,heartbeat_ms=-5", "positive integer"},
		{"id=0,members=0@h:1,suspicion_ms=100,lease_ttl_ms=200", "exceeds suspicion_ms"},
		{"id=x,members=0@h:1", "not an integer"},
		{"id=0,members=0@h:1,", "malformed argument"},
	}
	for _, c := range cases {
		_, err := ParseClusterSpec(c.spec)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("spec %q: error %v, want containing %q", c.spec, err, c.want)
		}
	}
}

func TestFileClusterValidation(t *testing.T) {
	base := `{"topology":"mci","alphas":{"voice":0.3},`
	if _, err := ParseFile([]byte(base + `"cluster":"id=0,members=0@h:9444","wire_listen":":9444","data_dir":"/tmp/x"}`)); err != nil {
		t.Errorf("valid cluster file rejected: %v", err)
	}
	if _, err := ParseFile([]byte(base + `"cluster":"id=0,members=0@h:9444","data_dir":"/tmp/x"}`)); err == nil || !strings.Contains(err.Error(), "wire_listen") {
		t.Errorf("missing wire_listen: %v", err)
	}
	if _, err := ParseFile([]byte(base + `"cluster":"id=0,members=0@h:9444","wire_listen":":9444"}`)); err == nil || !strings.Contains(err.Error(), "data_dir") {
		t.Errorf("missing data_dir: %v", err)
	}
	if _, err := ParseFile([]byte(base + `"cluster":"id=0","wire_listen":":9444","data_dir":"/tmp/x"}`)); err == nil || !strings.Contains(err.Error(), "missing members") {
		t.Errorf("bad spec: %v", err)
	}
}
