package config

import (
	"strings"
	"testing"

	"ubac/internal/policy"
)

func TestDecodePolicyConfig(t *testing.T) {
	pc, err := DecodePolicyConfig([]byte(`{
		"kind": "token_bucket", "rate": 100, "burst": 500,
		"tenants": {"gold": {"rate": 50, "burst": 200}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if pc.Kind != "token_bucket" || pc.Rate != 100 || pc.Burst != 500 || pc.Tenants["gold"].Burst != 200 {
		t.Fatalf("decoded %+v", pc)
	}

	pc, err = DecodePolicyConfig([]byte(`{"kind": "slo_gated", "tiers": {"gold": "critical"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if pc.StandardMax != DefaultStandardMax || pc.SheddableMax != DefaultSheddableMax ||
		pc.DefaultTier != DefaultPolicyTier || pc.SampleIntervalMS != DefaultSampleIntervalMS {
		t.Fatalf("slo_gated defaults not applied: %+v", pc)
	}

	bad := []string{
		``,
		`{}`,
		`{"kind": "nope"}`,
		`{"kind": "token_bucket"}`, // missing rate
		`{"kind": "token_bucket", "rate": 1, "burst": 0.5}`,      // burst < 1
		`{"kind": "token_bucket", "rate": 1e999, "burst": 5}`,    // inf
		`{"kind": "always_admit", "rate": 1}`,                    // foreign field
		`{"kind": "token_bucket", "rate": 1, "burst": 5} {}`,     // trailing doc
		`{"kind": "token_bucket", "rate": 1, "burst": 5, "x":1}`, // unknown field
		`{"kind": "slo_gated", "standard_max": 0.5, "sheddable_max": 0.8}`,
		`{"kind": "slo_gated", "default_tier": "golden"}`,
		`{"kind": "slo_gated", "tiers": {"": "critical"}}`,
		`{"kind": "reserve_headroom"}`,
		`{"kind": "reserve_headroom", "fraction": 1.5}`,
		`{"kind": "reserve_headroom", "fraction": 0.1, "protected": [""]}`,
	}
	for _, doc := range bad {
		if _, err := DecodePolicyConfig([]byte(doc)); err == nil {
			t.Errorf("accepted %s", doc)
		}
	}
}

func TestParsePolicySpec(t *testing.T) {
	pc, err := ParsePolicySpec("")
	if err != nil || pc.Kind != "always_admit" {
		t.Fatalf("empty spec: %+v, %v", pc, err)
	}
	pc, err = ParsePolicySpec("token_bucket:rate=100,burst=500")
	if err != nil || pc.Rate != 100 || pc.Burst != 500 {
		t.Fatalf("token_bucket spec: %+v, %v", pc, err)
	}
	pc, err = ParsePolicySpec("slo_gated:standard=0.8,sheddable=0.5,gold=critical,bronze=sheddable")
	if err != nil {
		t.Fatal(err)
	}
	if pc.StandardMax != 0.8 || pc.SheddableMax != 0.5 ||
		pc.Tiers["gold"] != "critical" || pc.Tiers["bronze"] != "sheddable" {
		t.Fatalf("slo_gated spec: %+v", pc)
	}
	pc, err = ParsePolicySpec("reserve_headroom:fraction=0.15,protected=gold+voice")
	if err != nil || pc.Fraction != 0.15 || len(pc.Protected) != 2 {
		t.Fatalf("reserve spec: %+v, %v", pc, err)
	}

	for _, spec := range []string{
		"nope",
		"token_bucket:",
		"token_bucket:rate=100",           // burst missing
		"token_bucket:rate=x,burst=5",     // not a number
		"token_bucket:fraction=0.1",       // foreign key
		"slo_gated:gold=golden",           // bad tier
		"reserve_headroom:fraction=0.1,p", // malformed arg
		"@/nonexistent/policy.json",
	} {
		if _, err := ParsePolicySpec(spec); err == nil {
			t.Errorf("accepted spec %q", spec)
		}
	}
}

func TestPolicyBuild(t *testing.T) {
	pc, err := ParsePolicySpec("always_admit")
	if err != nil {
		t.Fatal(err)
	}
	p, err := pc.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(policy.AlwaysAdmit); !ok {
		t.Fatalf("built %T, want AlwaysAdmit", p)
	}

	pc, _ = ParsePolicySpec("token_bucket:rate=10,burst=20")
	if p, err = pc.Build(nil); err != nil {
		t.Fatal(err)
	}
	if p.Name() != "token_bucket" {
		t.Fatalf("built %q", p.Name())
	}

	pc, _ = ParsePolicySpec("slo_gated:standard=0.9,sheddable=0.7")
	if _, err := pc.Build(nil); err == nil {
		t.Fatal("slo_gated built without a load probe")
	}
	p, err = pc.Build(func() float64 { return 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	g, ok := p.(*policy.SLOGated)
	if !ok {
		t.Fatalf("built %T", p)
	}
	if std, shed := g.Thresholds(); std != 0.9 || shed != 0.7 {
		t.Fatalf("thresholds %g/%g", std, shed)
	}

	pc, _ = ParsePolicySpec("reserve_headroom:fraction=0.25")
	if p, err = pc.Build(nil); err != nil {
		t.Fatal(err)
	}
	if p.Needs()&policy.NeedFill == 0 {
		t.Fatal("reserve_headroom lost NeedFill through config")
	}
}

func TestParseFileWithPolicy(t *testing.T) {
	f, err := ParseFile([]byte(`{
		"topology": "mci", "alphas": {"voice": 0.4},
		"policy": {"kind": "token_bucket", "rate": 100, "burst": 500}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if f.Policy == nil || f.Policy.Kind != "token_bucket" {
		t.Fatalf("policy not parsed: %+v", f.Policy)
	}
	_, err = ParseFile([]byte(`{
		"topology": "mci", "alphas": {"voice": 0.4},
		"policy": {"kind": "token_bucket"}
	}`))
	if err == nil || !strings.Contains(err.Error(), "rate") {
		t.Fatalf("invalid embedded policy accepted: %v", err)
	}
}
