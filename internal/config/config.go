// Package config implements the paper's configuration module (Section 5),
// the first of the three resource-management components. It offers the
// three configuration procedures:
//
//  1. verification of a safe utilization assignment (routes and α given —
//     Figure 2);
//  2. safe route selection for a given utilization (α given, routes
//     chosen by a routing.Selector);
//  3. safe route selection maximizing utilization (binary search on α
//     between the Theorem 4 bounds, Section 5.3).
//
// Configuration runs at network setup or service-level-agreement changes;
// its outputs (the per-class utilization assignment and route table) feed
// the run-time admission controller in internal/admission.
package config

import (
	"fmt"

	"ubac/internal/bounds"
	"ubac/internal/delay"
	"ubac/internal/routes"
	"ubac/internal/routing"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

// Config drives configuration over one delay model. The zero value is
// not usable; construct with New.
type Config struct {
	model *delay.Model
	// Selector chooses routes in procedures 2 and 3 (default
	// routing.Heuristic{}).
	Selector routing.Selector
	// Granularity is the α resolution of the binary search (default
	// 0.0025, i.e. ~¼ percentage point).
	Granularity float64
}

// New returns a Config with the default selector (the heuristic
// portfolio, which is never worse than shortest-path routing) and
// granularity.
func New(m *delay.Model) *Config {
	return &Config{model: m, Selector: routing.Portfolio{}, Granularity: 0.0025}
}

// Model returns the underlying delay model.
func (c *Config) Model() *delay.Model { return c.model }

// VerifyAssignment is configuration procedure 1: both routes and
// utilization are given; check that every class meets its deadline on
// every route (Figure 2).
func (c *Config) VerifyAssignment(inputs []delay.ClassInput) (*delay.VerifyResult, error) {
	return c.model.Verify(inputs)
}

// SelectRoutes is configuration procedure 2: the utilization assignment
// is given and routes are chosen by the configured selector.
func (c *Config) SelectRoutes(req routing.Request) (*routes.Set, *routing.Report, error) {
	return c.Selector.Select(c.model, req)
}

// Probe records one binary-search trial.
type Probe struct {
	Alpha float64
	Safe  bool
}

// MaxUtilResult is the outcome of configuration procedure 3.
type MaxUtilResult struct {
	// Alpha is the maximum utilization at which the selector produced a
	// safe route set (0 if none was found, which violates Theorem 4 and
	// indicates a selector bug).
	Alpha float64
	// Lower and Upper are the Theorem 4 bounds that initialized the
	// search space.
	Lower, Upper float64
	// Routes is the safe route set found at Alpha.
	Routes *routes.Set
	// Report is the selector's report at Alpha.
	Report *routing.Report
	// Probes lists every α the search tried, in order.
	Probes []Probe
}

// MaxUtilization is configuration procedure 3 (Section 5.3): binary
// search on the utilization assignment between the Theorem 4 bounds,
// invoking the route selector at each probe, until the search interval
// shrinks below the configured granularity. Pairs may be nil for all
// ordered edge-router pairs.
func (c *Config) MaxUtilization(class traffic.Class, pairs [][2]int) (*MaxUtilResult, error) {
	if err := class.Validate(); err != nil {
		return nil, err
	}
	if !class.RealTime() {
		return nil, fmt.Errorf("config: class %q has no deadline to maximize against", class.Name)
	}
	net := c.model.Network()
	p := bounds.Params{
		N:        net.MaxDegree(),
		L:        net.Diameter(),
		Burst:    class.Bucket.Burst,
		Rate:     class.Bucket.Rate,
		Deadline: class.Deadline,
	}
	lower, upper, err := bounds.Bounds(p)
	if err != nil {
		return nil, err
	}
	res := &MaxUtilResult{Lower: lower, Upper: upper}
	gran := c.Granularity
	if gran <= 0 {
		gran = 0.0025
	}

	try := func(alpha float64) (bool, *routes.Set, *routing.Report, error) {
		set, rep, err := c.Selector.Select(c.model, routing.Request{
			Class: class, Alpha: alpha, Pairs: pairs,
		})
		if err != nil {
			return false, nil, nil, err
		}
		res.Probes = append(res.Probes, Probe{Alpha: alpha, Safe: rep.Safe})
		return rep.Safe, set, rep, nil
	}

	// The lower bound is safe by Theorem 4; anchor the search there so a
	// result always exists.
	lo, hi := lower, upper
	safe, set, rep, err := try(lo)
	if err != nil {
		return nil, err
	}
	if safe {
		res.Alpha, res.Routes, res.Report = lo, set, rep
	}
	for hi-lo > gran {
		mid := (lo + hi) / 2
		safe, set, rep, err := try(mid)
		if err != nil {
			return nil, err
		}
		if safe {
			res.Alpha, res.Routes, res.Report = mid, set, rep
			lo = mid
		} else {
			hi = mid
		}
	}
	return res, nil
}

// ClassSpec describes one class for multi-class configuration: the class,
// its utilization assignment, and the pairs it must route (nil for all
// edge pairs).
type ClassSpec struct {
	Class traffic.Class
	Alpha float64
	Pairs [][2]int
}

// MultiResult is the outcome of multi-class route selection.
type MultiResult struct {
	// Inputs pairs each class with its selected route set, in priority
	// order, ready for delay.Model.SolveMultiClass or the admission
	// controller.
	Inputs []delay.ClassInput
	// Reports are the per-class selector reports.
	Reports []*routing.Report
	// Verify is the joint multi-class verification of the final
	// configuration (Theorem 5 solver).
	Verify *delay.VerifyResult
}

// SelectMultiClass is the Section 5.4 variation of procedure 2: routes
// are selected class by class in priority order (each selection uses the
// two-class analysis for its own class, mirroring the paper's per-class
// route choice), then the complete configuration is verified jointly
// with the multi-class Theorem 5 analysis. A configuration is safe only
// if the joint verification passes.
func (c *Config) SelectMultiClass(specs []ClassSpec) (*MultiResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("config: no classes")
	}
	for i := 1; i < len(specs); i++ {
		if specs[i-1].Class.Priority >= specs[i].Class.Priority {
			return nil, fmt.Errorf("config: classes must be ordered by priority (highest first)")
		}
	}
	out := &MultiResult{}
	for _, spec := range specs {
		set, rep, err := c.Selector.Select(c.model, routing.Request{
			Class: spec.Class, Alpha: spec.Alpha, Pairs: spec.Pairs,
		})
		if err != nil {
			return nil, err
		}
		out.Reports = append(out.Reports, rep)
		out.Inputs = append(out.Inputs, delay.ClassInput{
			Class: spec.Class, Alpha: spec.Alpha, Routes: set,
		})
	}
	verify, err := c.model.Verify(out.Inputs)
	if err != nil {
		return nil, err
	}
	out.Verify = verify
	return out, nil
}

// MaxScaleResult is the outcome of the multi-class utilization trade-off
// search.
type MaxScaleResult struct {
	// Scale is the largest factor s such that the assignment
	// (s·α_1, ..., s·α_m) verified safely (0 if none).
	Scale float64
	// Result is the multi-class selection at Scale.
	Result *MultiResult
	// Probes lists the trials.
	Probes []Probe
}

// MaxUtilizationScale searches for the largest uniform scale factor on a
// multi-class utilization assignment that remains jointly safe — the
// "trade-off utilization assignments of classes against each other"
// procedure sketched at the end of Section 5.4. The specs' Alpha fields
// give the relative shares; the search scales them together, capped so
// the total stays below 1.
func (c *Config) MaxUtilizationScale(specs []ClassSpec) (*MaxScaleResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("config: no classes")
	}
	total := 0.0
	for _, s := range specs {
		if !(s.Alpha > 0) {
			return nil, fmt.Errorf("config: class %q needs a positive share", s.Class.Name)
		}
		total += s.Alpha
	}
	gran := c.Granularity
	if gran <= 0 {
		gran = 0.0025
	}
	out := &MaxScaleResult{}
	try := func(s float64) (bool, *MultiResult, error) {
		scaled := make([]ClassSpec, len(specs))
		copy(scaled, specs)
		for i := range scaled {
			scaled[i].Alpha = specs[i].Alpha * s
		}
		mr, err := c.SelectMultiClass(scaled)
		if err != nil {
			return false, nil, err
		}
		ok := mr.Verify.Safe
		for _, rep := range mr.Reports {
			ok = ok && rep.Safe
		}
		out.Probes = append(out.Probes, Probe{Alpha: s, Safe: ok})
		return ok, mr, nil
	}
	lo, hi := 0.0, 0.999/total
	for hi-lo > gran {
		mid := (lo + hi) / 2
		ok, mr, err := try(mid)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Scale, out.Result = mid, mr
			lo = mid
		} else {
			hi = mid
		}
	}
	return out, nil
}

// MaxUtilizationFixedRoutes binary-searches the largest utilization at
// which the given, already-selected route set still verifies safely —
// the operator's "how much headroom does my current routing have"
// query. Unlike MaxUtilization it never re-routes, so the result is also
// meaningful for route sets produced outside this library. Feasibility
// is monotone in α for fixed routes, making plain bisection exact up to
// the configured granularity.
func (c *Config) MaxUtilizationFixedRoutes(class traffic.Class, set *routes.Set) (*MaxUtilResult, error) {
	if err := class.Validate(); err != nil {
		return nil, err
	}
	if !class.RealTime() {
		return nil, fmt.Errorf("config: class %q has no deadline", class.Name)
	}
	if set == nil || set.Network() != c.model.Network() {
		return nil, fmt.Errorf("config: route set missing or over a different network")
	}
	gran := c.Granularity
	if gran <= 0 {
		gran = 0.0025
	}
	res := &MaxUtilResult{Lower: 0, Upper: 1}
	lo, hi := 0.0, 1.0
	for hi-lo > gran {
		mid := (lo + hi) / 2
		v, err := c.model.Verify([]delay.ClassInput{{Class: class, Alpha: mid, Routes: set}})
		if err != nil {
			return nil, err
		}
		res.Probes = append(res.Probes, Probe{Alpha: mid, Safe: v.Safe})
		if v.Safe {
			res.Alpha = mid
			res.Routes = set
			lo = mid
		} else {
			hi = mid
		}
	}
	return res, nil
}

// FailoverResult reports the impact of one link failure on a verified
// single-class configuration.
type FailoverResult struct {
	// BrokenRoutes counts routes of the original set that crossed the
	// failed link (in either direction).
	BrokenRoutes int
	// Network is the surviving topology.
	Network *topology.Network
	// Routes is the reconfigured route set over the surviving topology.
	Routes *routes.Set
	// Report is the selector's report for the reconfiguration; Safe
	// tells whether the same utilization is still achievable.
	Report *routing.Report
}

// Failover answers the operator question "can the network still carry
// class at utilization alpha if the a–b link dies?": it removes the
// duplex link, re-runs safe route selection on the survivor topology at
// the same α, and reports how many existing routes the failure broke.
// current may be nil when the existing route set is unknown.
func (c *Config) Failover(class traffic.Class, alpha float64, current *routes.Set, a, b int) (*FailoverResult, error) {
	net := c.model.Network()
	survivor, err := net.WithoutLink(a, b)
	if err != nil {
		return nil, err
	}
	broken := 0
	if current != nil {
		sa, _ := net.ServerFor(a, b)
		sb, _ := net.ServerFor(b, a)
		for i := 0; i < current.Len(); i++ {
			for _, s := range current.Route(i).Servers {
				if s == sa || s == sb {
					broken++
					break
				}
			}
		}
	}
	m2 := delay.NewModel(survivor)
	m2.NMode = c.model.NMode
	m2.Tol = c.model.Tol
	m2.MaxIter = c.model.MaxIter
	m2.DivergeCap = c.model.DivergeCap
	m2.FixedPerHop = c.model.FixedPerHop
	set, rep, err := c.Selector.Select(m2, routing.Request{Class: class, Alpha: alpha})
	if err != nil {
		return nil, err
	}
	return &FailoverResult{BrokenRoutes: broken, Network: survivor, Routes: set, Report: rep}, nil
}
