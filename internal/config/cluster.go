package config

import (
	"fmt"
	"strconv"
	"strings"
)

// ClusterMember is one static member of a distributed admission plane.
type ClusterMember struct {
	ID   uint32
	Addr string
}

// ClusterConfig is the parsed -cluster specification. It is
// transport-agnostic on purpose: cmd/ubacd maps it onto the cluster
// package's Config so this package stays dependency-free.
type ClusterConfig struct {
	// NodeID is this node's member ID.
	NodeID uint32
	// Members is the full static membership, this node included.
	Members []ClusterMember
	// HeartbeatMS paces the control loop (0 = package default).
	HeartbeatMS int
	// SuspicionMS is the peer-death timeout (0 = package default).
	SuspicionMS int
	// LadderMS spaces the promotion ladder (0 = package default).
	LadderMS int
	// LeaseTTLMS bounds unrenewed edge spending (0 = package default).
	LeaseTTLMS int
	// LeaseBlock is the grant block size (0 = package default).
	LeaseBlock int
}

// ParseClusterSpec resolves the -cluster flag syntax:
//
//	id=0,members=0@host1:9444;1@host2:9444;2@host3:9444
//	id=1,members=...,heartbeat_ms=100,suspicion_ms=3000,ladder_ms=500,lease_ttl_ms=1000,lease_block=64
//
// id and members are required; members is a ';'-separated list of
// ID@host:port entries and must include id. Unknown keys, duplicate
// IDs, IDs above 255 (they ride the flow-ID high byte) and timing
// inversions (lease_ttl_ms > suspicion_ms) are errors.
func ParseClusterSpec(spec string) (*ClusterConfig, error) {
	if spec == "" {
		return nil, fmt.Errorf("config: cluster: empty spec")
	}
	cc := &ClusterConfig{NodeID: ^uint32(0)}
	posInt := func(key, val string) (int, error) {
		v, err := strconv.Atoi(val)
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("config: cluster: %s=%q is not a positive integer", key, val)
		}
		return v, nil
	}
	for _, arg := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(arg, "=")
		if !ok || key == "" || val == "" {
			return nil, fmt.Errorf("config: cluster: malformed argument %q (want key=value)", arg)
		}
		var err error
		switch key {
		case "id":
			id, perr := strconv.ParseUint(val, 10, 32)
			if perr != nil {
				return nil, fmt.Errorf("config: cluster: id=%q is not an integer", val)
			}
			cc.NodeID = uint32(id)
		case "members":
			for _, m := range strings.Split(val, ";") {
				idStr, addr, ok := strings.Cut(m, "@")
				if !ok || idStr == "" || addr == "" {
					return nil, fmt.Errorf("config: cluster: malformed member %q (want id@host:port)", m)
				}
				id, perr := strconv.ParseUint(idStr, 10, 32)
				if perr != nil {
					return nil, fmt.Errorf("config: cluster: member ID %q is not an integer", idStr)
				}
				if _, _, serr := splitHostPort(addr); serr != nil {
					return nil, fmt.Errorf("config: cluster: member %s address %q: %v", idStr, addr, serr)
				}
				cc.Members = append(cc.Members, ClusterMember{ID: uint32(id), Addr: addr})
			}
		case "heartbeat_ms":
			cc.HeartbeatMS, err = posInt(key, val)
		case "suspicion_ms":
			cc.SuspicionMS, err = posInt(key, val)
		case "ladder_ms":
			cc.LadderMS, err = posInt(key, val)
		case "lease_ttl_ms":
			cc.LeaseTTLMS, err = posInt(key, val)
		case "lease_block":
			cc.LeaseBlock, err = posInt(key, val)
		default:
			return nil, fmt.Errorf("config: cluster: unknown argument %q", key)
		}
		if err != nil {
			return nil, err
		}
	}
	if cc.NodeID == ^uint32(0) {
		return nil, fmt.Errorf("config: cluster: missing id")
	}
	if len(cc.Members) == 0 {
		return nil, fmt.Errorf("config: cluster: missing members")
	}
	seen := make(map[uint32]bool, len(cc.Members))
	self := false
	for _, m := range cc.Members {
		if m.ID > 255 {
			return nil, fmt.Errorf("config: cluster: member ID %d exceeds 255 (IDs ride the flow-ID high byte)", m.ID)
		}
		if seen[m.ID] {
			return nil, fmt.Errorf("config: cluster: duplicate member ID %d", m.ID)
		}
		seen[m.ID] = true
		if m.ID == cc.NodeID {
			self = true
		}
	}
	if !self {
		return nil, fmt.Errorf("config: cluster: id %d not in members", cc.NodeID)
	}
	if cc.LeaseTTLMS > 0 && cc.SuspicionMS > 0 && cc.LeaseTTLMS > cc.SuspicionMS {
		return nil, fmt.Errorf("config: cluster: lease_ttl_ms %d exceeds suspicion_ms %d (an edge must stop spending a lease before the authority reclaims it)",
			cc.LeaseTTLMS, cc.SuspicionMS)
	}
	return cc, nil
}

// splitHostPort is a dependency-free syntactic check of host:port.
// The port must be numeric; the host may be empty ("listen on all"
// is not meaningful for a peer address, so empty hosts are rejected).
func splitHostPort(addr string) (host, port string, err error) {
	i := strings.LastIndexByte(addr, ':')
	if i < 0 {
		return "", "", fmt.Errorf("missing port")
	}
	host, port = addr[:i], addr[i+1:]
	if host == "" {
		return "", "", fmt.Errorf("missing host")
	}
	if p, perr := strconv.Atoi(port); perr != nil || p <= 0 || p > 65535 {
		return "", "", fmt.Errorf("bad port %q", port)
	}
	return host, port, nil
}
