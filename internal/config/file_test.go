package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseFileMinimalAppliesDefaults(t *testing.T) {
	f, err := ParseFile([]byte(`{"topology":"mci","alphas":{"voice":0.4}}`))
	if err != nil {
		t.Fatal(err)
	}
	if f.Topology != "mci" || f.Alphas["voice"] != 0.4 {
		t.Fatalf("parsed %+v", f)
	}
	if f.Listen != DefaultListen || f.Events != DefaultEvents ||
		f.SolverWorkers != 0 || f.RouteWorkers != 0 ||
		f.ShutdownGraceSeconds != DefaultShutdownGraceSeconds {
		t.Fatalf("defaults not applied: %+v", f)
	}
}

func TestParseFileExplicitValuesKept(t *testing.T) {
	doc := `{
		"topology": "ring:8",
		"alphas": {"voice": 0.3, "video": 0.2},
		"listen": "127.0.0.1:9090",
		"events": 128,
		"solver_workers": 4,
		"route_workers": 8,
		"shutdown_grace_seconds": 2.5
	}`
	f, err := ParseFile([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if f.Topology != "ring:8" || len(f.Alphas) != 2 || f.Listen != "127.0.0.1:9090" ||
		f.Events != 128 || f.SolverWorkers != 4 || f.RouteWorkers != 8 ||
		f.ShutdownGraceSeconds != 2.5 {
		t.Fatalf("parsed %+v", f)
	}
}

func TestParseFileRejections(t *testing.T) {
	cases := []struct{ name, doc, wantErr string }{
		{"empty", ``, "config:"},
		{"not json", `nope`, "config:"},
		{"unknown field", `{"topology":"mci","alphas":{"voice":0.4},"bogus":1}`, "bogus"},
		{"trailing data", `{"topology":"mci","alphas":{"voice":0.4}}{}`, "trailing data"},
		{"missing topology", `{"alphas":{"voice":0.4}}`, "missing topology"},
		{"missing alphas", `{"topology":"mci"}`, "missing alphas"},
		{"empty alphas", `{"topology":"mci","alphas":{}}`, "missing alphas"},
		{"empty class name", `{"topology":"mci","alphas":{"":0.4}}`, "empty class name"},
		{"alpha zero", `{"topology":"mci","alphas":{"voice":0}}`, "out of (0,1)"},
		{"alpha one", `{"topology":"mci","alphas":{"voice":1}}`, "out of (0,1)"},
		{"alpha negative", `{"topology":"mci","alphas":{"voice":-0.1}}`, "out of (0,1)"},
		{"negative events", `{"topology":"mci","alphas":{"voice":0.4},"events":-1}`, "negative events"},
		{"negative workers", `{"topology":"mci","alphas":{"voice":0.4},"solver_workers":-2}`, "negative solver_workers"},
		{"huge workers", `{"topology":"mci","alphas":{"voice":0.4},"solver_workers":5000}`, "unreasonably large"},
		{"negative route workers", `{"topology":"mci","alphas":{"voice":0.4},"route_workers":-1}`, "negative route_workers"},
		{"huge route workers", `{"topology":"mci","alphas":{"voice":0.4},"route_workers":2000}`, "unreasonably large"},
		{"negative grace", `{"topology":"mci","alphas":{"voice":0.4},"shutdown_grace_seconds":-1}`, "shutdown_grace_seconds"},
	}
	for _, tc := range cases {
		if _, err := ParseFile([]byte(tc.doc)); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.doc)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ubacd.json")
	if err := os.WriteFile(path, []byte(`{"topology":"line:4","alphas":{"voice":0.25}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Topology != "line:4" || f.Alphas["voice"] != 0.25 {
		t.Fatalf("loaded %+v", f)
	}
	if _, err := LoadFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
