package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// File is the daemon's deployable configuration: everything ubacd needs
// to configure and serve one network, as a JSON document. Field
// semantics match the corresponding ubacd flags; zero values take the
// documented defaults at load time so a minimal file is just
// {"topology":"mci","alphas":{"voice":0.4}}.
type File struct {
	// Topology is a topology spec in the shared syntax of
	// topology.Parse ("mci", "ring:8", "@file.json", ...).
	Topology string `json:"topology"`
	// Alphas maps class name to its utilization assignment α ∈ (0,1).
	Alphas map[string]float64 `json:"alphas"`
	// Listen is the HTTP listen address (default ":8080").
	Listen string `json:"listen,omitempty"`
	// WireListen is the binary wire-transport listen address; empty
	// leaves the wire listener off (HTTP only).
	WireListen string `json:"wire_listen,omitempty"`
	// Events is the decision audit ring capacity (default 4096).
	Events int `json:"events,omitempty"`
	// SolverWorkers sizes the delay solver's parallel sweep pool; 0 or
	// 1 keeps the sequential solver.
	SolverWorkers int `json:"solver_workers,omitempty"`
	// RouteWorkers sizes the route-selection candidate evaluation pool
	// (and enables concurrent portfolio members); 0 or 1 keeps the
	// sequential selection. The selected routes are bit-identical
	// either way.
	RouteWorkers int `json:"route_workers,omitempty"`
	// ShutdownGraceSeconds is the graceful-drain deadline on
	// SIGINT/SIGTERM (default 10).
	ShutdownGraceSeconds float64 `json:"shutdown_grace_seconds,omitempty"`
	// DataDir is the durability directory for the admission write-ahead
	// log and registry snapshots; empty runs the daemon non-durable.
	DataDir string `json:"data_dir,omitempty"`
	// Fsync is the WAL append mode: "async" (default; group commit
	// within the flush interval), "sync" (admit acks wait for fsync) or
	// "off" (explicitly non-durable, only valid without data_dir).
	Fsync string `json:"fsync,omitempty"`
	// Policy selects the admission policy consulted before the
	// utilization test; absent means always_admit (the paper's
	// behavior). See PolicyConfig.
	Policy *PolicyConfig `json:"policy,omitempty"`
	// Cluster is a distributed-admission-plane spec in the -cluster
	// flag syntax (see ParseClusterSpec); empty runs a single node.
	// A cluster node requires wire_listen and data_dir.
	Cluster string `json:"cluster,omitempty"`
}

// Default values applied by ParseFile.
const (
	DefaultListen               = ":8080"
	DefaultEvents               = 4096
	DefaultShutdownGraceSeconds = 10
	DefaultFsync                = "async"
)

// ParseFile decodes and validates a daemon configuration document. It
// is strict — unknown fields, trailing garbage, and out-of-range values
// are errors — and total: any byte slice either yields a valid File
// with defaults applied or an error, never a panic (fuzz-tested).
// Topology specs are validated syntactically only; resolving them (and
// hitting the filesystem for @file references) is the caller's job.
func ParseFile(data []byte) (*File, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	// A second document (or any trailing non-space token) is malformed.
	if dec.More() {
		return nil, fmt.Errorf("config: trailing data after configuration object")
	}
	if f.Topology == "" {
		return nil, fmt.Errorf("config: missing topology")
	}
	if len(f.Alphas) == 0 {
		return nil, fmt.Errorf("config: missing alphas (class → utilization)")
	}
	for name, a := range f.Alphas {
		if name == "" {
			return nil, fmt.Errorf("config: empty class name in alphas")
		}
		if !(a > 0 && a < 1) { // also rejects NaN
			return nil, fmt.Errorf("config: class %q alpha %g out of (0,1)", name, a)
		}
	}
	if f.Listen == "" {
		f.Listen = DefaultListen
	}
	if f.Events < 0 {
		return nil, fmt.Errorf("config: negative events capacity %d", f.Events)
	}
	if f.Events == 0 {
		f.Events = DefaultEvents
	}
	if f.SolverWorkers < 0 {
		return nil, fmt.Errorf("config: negative solver_workers %d", f.SolverWorkers)
	}
	if f.SolverWorkers > 1024 {
		return nil, fmt.Errorf("config: solver_workers %d unreasonably large", f.SolverWorkers)
	}
	if f.RouteWorkers < 0 {
		return nil, fmt.Errorf("config: negative route_workers %d", f.RouteWorkers)
	}
	if f.RouteWorkers > 1024 {
		return nil, fmt.Errorf("config: route_workers %d unreasonably large", f.RouteWorkers)
	}
	if f.ShutdownGraceSeconds < 0 || f.ShutdownGraceSeconds != f.ShutdownGraceSeconds {
		return nil, fmt.Errorf("config: invalid shutdown_grace_seconds %g", f.ShutdownGraceSeconds)
	}
	if f.ShutdownGraceSeconds == 0 {
		f.ShutdownGraceSeconds = DefaultShutdownGraceSeconds
	}
	switch f.Fsync {
	case "", "sync", "async", "off":
	default:
		return nil, fmt.Errorf("config: fsync %q not one of sync|async|off", f.Fsync)
	}
	if f.Fsync == "off" && f.DataDir != "" {
		return nil, fmt.Errorf("config: fsync \"off\" with data_dir set — drop data_dir to run non-durable")
	}
	if f.Fsync == "" {
		f.Fsync = DefaultFsync
	}
	if f.Policy != nil {
		if err := f.Policy.Validate(); err != nil {
			return nil, err
		}
	}
	if f.Cluster != "" {
		if _, err := ParseClusterSpec(f.Cluster); err != nil {
			return nil, err
		}
		if f.WireListen == "" {
			return nil, fmt.Errorf("config: cluster requires wire_listen (cluster frames ride the wire transport)")
		}
		if f.DataDir == "" {
			return nil, fmt.Errorf("config: cluster requires data_dir (the authority journals leases; followers mirror the log)")
		}
	}
	return &f, nil
}

// LoadFile reads and parses a daemon configuration file.
func LoadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return ParseFile(data)
}
