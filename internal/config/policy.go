package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"ubac/internal/policy"
)

// PolicyConfig selects and parameterizes the daemon's admission
// policy (the decision layer in front of the utilization test). One
// document configures exactly one policy kind; fields belonging to
// other kinds must be absent — the decoder is strict so a typo'd
// threshold fails loudly at boot instead of silently admitting
// everything.
type PolicyConfig struct {
	// Kind is "always_admit" (the default paper behavior),
	// "token_bucket", "slo_gated" or "reserve_headroom".
	Kind string `json:"kind"`

	// token_bucket: Rate is tokens (flows) per second, Burst the
	// accumulated-credit cap, for the default bucket shared by tenants
	// without a dedicated entry in Tenants.
	Rate    float64                 `json:"rate,omitempty"`
	Burst   float64                 `json:"burst,omitempty"`
	Tenants map[string]BucketConfig `json:"tenants,omitempty"`

	// slo_gated: Tiers maps tenant or class names to
	// "critical"|"standard"|"sheddable"; DefaultTier (default
	// "standard") covers unmapped names. StandardMax and SheddableMax
	// are load thresholds in (0,1] (defaults 0.9 and 0.7);
	// SampleIntervalMS spaces load-signal probes (default 10ms, 0 uses
	// the default; negative probes on every decision).
	Tiers            map[string]string `json:"tiers,omitempty"`
	DefaultTier      string            `json:"default_tier,omitempty"`
	StandardMax      float64           `json:"standard_max,omitempty"`
	SheddableMax     float64           `json:"sheddable_max,omitempty"`
	SampleIntervalMS float64           `json:"sample_interval_ms,omitempty"`

	// reserve_headroom: Fraction ∈ (0,1) of every reservation pool held
	// back; Protected lists tenant or class names exempt from the
	// reserve.
	Fraction  float64  `json:"fraction,omitempty"`
	Protected []string `json:"protected,omitempty"`
}

// BucketConfig is one tenant's token-bucket sizing in a PolicyConfig.
type BucketConfig struct {
	Rate  float64 `json:"rate"`
	Burst float64 `json:"burst"`
}

// Defaults applied by DecodePolicyConfig / Validate.
const (
	DefaultPolicyTier       = "standard"
	DefaultStandardMax      = 0.9
	DefaultSheddableMax     = 0.7
	DefaultSampleIntervalMS = 10
)

// policyKinds is the closed set of Kind values.
var policyKinds = map[string]bool{
	"always_admit":     true,
	"token_bucket":     true,
	"slo_gated":        true,
	"reserve_headroom": true,
}

// DecodePolicyConfig decodes and validates one policy document. Like
// ParseFile it is strict and total: any byte slice either yields a
// valid PolicyConfig with defaults applied or an error, never a panic
// (fuzz-tested by FuzzDecodePolicyConfig).
func DecodePolicyConfig(data []byte) (*PolicyConfig, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var pc PolicyConfig
	if err := dec.Decode(&pc); err != nil {
		return nil, fmt.Errorf("config: policy: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("config: policy: trailing data after policy object")
	}
	if err := pc.Validate(); err != nil {
		return nil, err
	}
	return &pc, nil
}

// finitePositive rejects NaN, infinities, zero and negatives.
func finitePositive(v float64) bool {
	return v > 0 && !math.IsInf(v, 0)
}

// Validate checks the configuration and applies kind-specific
// defaults. Fields belonging to other kinds must be zero.
func (pc *PolicyConfig) Validate() error {
	if pc.Kind == "" {
		return fmt.Errorf("config: policy: missing kind")
	}
	if !policyKinds[pc.Kind] {
		return fmt.Errorf("config: policy: kind %q not one of always_admit|token_bucket|slo_gated|reserve_headroom", pc.Kind)
	}
	// Normalize empty containers to nil so a validated config is a
	// marshal → decode fixed point (omitempty drops empty maps).
	if len(pc.Tenants) == 0 {
		pc.Tenants = nil
	}
	if len(pc.Tiers) == 0 {
		pc.Tiers = nil
	}
	if len(pc.Protected) == 0 {
		pc.Protected = nil
	}
	// Reject fields that belong to a different kind, so a document
	// never half-applies.
	if pc.Kind != "token_bucket" && (pc.Rate != 0 || pc.Burst != 0 || len(pc.Tenants) != 0) {
		return fmt.Errorf("config: policy: rate/burst/tenants are token_bucket fields (kind %q)", pc.Kind)
	}
	if pc.Kind != "slo_gated" && (len(pc.Tiers) != 0 || pc.DefaultTier != "" ||
		pc.StandardMax != 0 || pc.SheddableMax != 0 || pc.SampleIntervalMS != 0) {
		return fmt.Errorf("config: policy: tiers/thresholds are slo_gated fields (kind %q)", pc.Kind)
	}
	if pc.Kind != "reserve_headroom" && (pc.Fraction != 0 || len(pc.Protected) != 0) {
		return fmt.Errorf("config: policy: fraction/protected are reserve_headroom fields (kind %q)", pc.Kind)
	}
	switch pc.Kind {
	case "token_bucket":
		if !finitePositive(pc.Rate) {
			return fmt.Errorf("config: policy: token_bucket rate %g must be positive and finite", pc.Rate)
		}
		if !(pc.Burst >= 1) || math.IsInf(pc.Burst, 0) {
			return fmt.Errorf("config: policy: token_bucket burst %g must be >= 1 and finite", pc.Burst)
		}
		for name, b := range pc.Tenants {
			if name == "" {
				return fmt.Errorf("config: policy: empty tenant name")
			}
			if !finitePositive(b.Rate) {
				return fmt.Errorf("config: policy: tenant %q rate %g must be positive and finite", name, b.Rate)
			}
			if !(b.Burst >= 1) || math.IsInf(b.Burst, 0) {
				return fmt.Errorf("config: policy: tenant %q burst %g must be >= 1 and finite", name, b.Burst)
			}
		}
	case "slo_gated":
		if pc.DefaultTier == "" {
			pc.DefaultTier = DefaultPolicyTier
		}
		if _, err := policy.ParseTier(pc.DefaultTier); err != nil {
			return fmt.Errorf("config: policy: default_tier: %w", err)
		}
		for name, tier := range pc.Tiers {
			if name == "" {
				return fmt.Errorf("config: policy: empty name in tiers")
			}
			if _, err := policy.ParseTier(tier); err != nil {
				return fmt.Errorf("config: policy: tier of %q: %w", name, err)
			}
		}
		if pc.StandardMax == 0 {
			pc.StandardMax = DefaultStandardMax
		}
		if pc.SheddableMax == 0 {
			pc.SheddableMax = DefaultSheddableMax
		}
		if !(pc.StandardMax > 0 && pc.StandardMax <= 1) {
			return fmt.Errorf("config: policy: standard_max %g out of (0,1]", pc.StandardMax)
		}
		if !(pc.SheddableMax > 0 && pc.SheddableMax <= 1) {
			return fmt.Errorf("config: policy: sheddable_max %g out of (0,1]", pc.SheddableMax)
		}
		if pc.SheddableMax > pc.StandardMax {
			return fmt.Errorf("config: policy: sheddable_max %g above standard_max %g", pc.SheddableMax, pc.StandardMax)
		}
		if math.IsNaN(pc.SampleIntervalMS) || math.IsInf(pc.SampleIntervalMS, 0) {
			return fmt.Errorf("config: policy: invalid sample_interval_ms %g", pc.SampleIntervalMS)
		}
		if pc.SampleIntervalMS == 0 {
			pc.SampleIntervalMS = DefaultSampleIntervalMS
		}
	case "reserve_headroom":
		if !(pc.Fraction > 0 && pc.Fraction < 1) { // also rejects NaN
			return fmt.Errorf("config: policy: reserve fraction %g out of (0,1)", pc.Fraction)
		}
		for _, name := range pc.Protected {
			if name == "" {
				return fmt.Errorf("config: policy: empty protected name")
			}
		}
	}
	return nil
}

// Build constructs the configured policy. sample supplies the
// cluster-load probe for slo_gated (typically
// admission.Controller.MaxUtilization); it may be nil for every other
// kind. The caller installs the result with Controller.SetPolicy
// (always_admit builds policy.AlwaysAdmit, which SetPolicy strips to
// the nil fast path).
func (pc *PolicyConfig) Build(sample func() float64) (policy.Policy, error) {
	if err := pc.Validate(); err != nil {
		return nil, err
	}
	switch pc.Kind {
	case "always_admit":
		return policy.AlwaysAdmit{}, nil
	case "token_bucket":
		var tenants map[string]policy.BucketConfig
		if len(pc.Tenants) > 0 {
			tenants = make(map[string]policy.BucketConfig, len(pc.Tenants))
			for name, b := range pc.Tenants {
				tenants[name] = policy.BucketConfig{Rate: b.Rate, Burst: b.Burst}
			}
		}
		return policy.NewTokenBucket(policy.BucketConfig{Rate: pc.Rate, Burst: pc.Burst}, tenants)
	case "slo_gated":
		if sample == nil {
			return nil, fmt.Errorf("config: policy: slo_gated needs a load probe")
		}
		var tiers map[string]policy.Tier
		if len(pc.Tiers) > 0 {
			tiers = make(map[string]policy.Tier, len(pc.Tiers))
			for name, s := range pc.Tiers {
				t, err := policy.ParseTier(s)
				if err != nil {
					return nil, err
				}
				tiers[name] = t
			}
		}
		def, err := policy.ParseTier(pc.DefaultTier)
		if err != nil {
			return nil, err
		}
		load := &policy.SampledLoad{
			Sample:   sample,
			Interval: time.Duration(pc.SampleIntervalMS * float64(time.Millisecond)),
		}
		return policy.NewSLOGated(tiers, def, pc.StandardMax, pc.SheddableMax, load)
	case "reserve_headroom":
		return policy.NewReserveHeadroom(pc.Fraction, pc.Protected)
	}
	return nil, fmt.Errorf("config: policy: kind %q", pc.Kind) // unreachable after Validate
}

// ParsePolicySpec resolves the shared -policy flag syntax:
//
//	always_admit
//	token_bucket:rate=100,burst=500
//	slo_gated:standard=0.9,sheddable=0.7,gold=critical,bronze=sheddable
//	reserve_headroom:fraction=0.1,protected=gold+voice
//	@policy.json  (a PolicyConfig document)
//
// Unknown keys are errors. The empty spec means always_admit.
func ParsePolicySpec(spec string) (*PolicyConfig, error) {
	if spec == "" {
		return &PolicyConfig{Kind: "always_admit"}, nil
	}
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return nil, fmt.Errorf("config: policy: %w", err)
		}
		return DecodePolicyConfig(data)
	}
	kind, rest, hasArgs := strings.Cut(spec, ":")
	pc := &PolicyConfig{Kind: kind}
	if !policyKinds[kind] {
		return nil, fmt.Errorf("config: policy: kind %q not one of always_admit|token_bucket|slo_gated|reserve_headroom", kind)
	}
	if hasArgs && rest == "" {
		return nil, fmt.Errorf("config: policy: empty argument list in %q", spec)
	}
	var args []string
	if hasArgs {
		args = strings.Split(rest, ",")
	}
	num := func(key, val string) (float64, error) {
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return 0, fmt.Errorf("config: policy: %s=%q is not a number", key, val)
		}
		return v, nil
	}
	for _, arg := range args {
		key, val, ok := strings.Cut(arg, "=")
		if !ok || key == "" || val == "" {
			return nil, fmt.Errorf("config: policy: malformed argument %q (want key=value)", arg)
		}
		var err error
		switch {
		case kind == "token_bucket" && key == "rate":
			pc.Rate, err = num(key, val)
		case kind == "token_bucket" && key == "burst":
			pc.Burst, err = num(key, val)
		case kind == "slo_gated" && key == "standard":
			pc.StandardMax, err = num(key, val)
		case kind == "slo_gated" && key == "sheddable":
			pc.SheddableMax, err = num(key, val)
		case kind == "slo_gated" && key == "default":
			pc.DefaultTier = val
		case kind == "slo_gated" && key == "sample_ms":
			pc.SampleIntervalMS, err = num(key, val)
		case kind == "slo_gated":
			// Any other key is a tenant/class tier assignment.
			if _, terr := policy.ParseTier(val); terr != nil {
				return nil, fmt.Errorf("config: policy: %s=%s: %w", key, val, terr)
			}
			if pc.Tiers == nil {
				pc.Tiers = make(map[string]string)
			}
			pc.Tiers[key] = val
		case kind == "reserve_headroom" && key == "fraction":
			pc.Fraction, err = num(key, val)
		case kind == "reserve_headroom" && key == "protected":
			pc.Protected = strings.Split(val, "+")
		default:
			return nil, fmt.Errorf("config: policy: unknown %s argument %q", kind, key)
		}
		if err != nil {
			return nil, err
		}
	}
	if err := pc.Validate(); err != nil {
		return nil, err
	}
	return pc, nil
}

// Describe renders a one-line human summary of the policy for the
// daemon's boot banner.
func (pc *PolicyConfig) Describe() string {
	switch pc.Kind {
	case "token_bucket":
		s := fmt.Sprintf("token_bucket rate=%g burst=%g", pc.Rate, pc.Burst)
		if len(pc.Tenants) > 0 {
			names := make([]string, 0, len(pc.Tenants))
			for name := range pc.Tenants {
				names = append(names, name)
			}
			sort.Strings(names)
			s += " tenants=" + strings.Join(names, ",")
		}
		return s
	case "slo_gated":
		return fmt.Sprintf("slo_gated standard<%g sheddable<%g default=%s tiers=%d",
			pc.StandardMax, pc.SheddableMax, pc.DefaultTier, len(pc.Tiers))
	case "reserve_headroom":
		return fmt.Sprintf("reserve_headroom fraction=%g protected=%s",
			pc.Fraction, strings.Join(pc.Protected, ","))
	default:
		return "always_admit"
	}
}
