package config

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzParseFile throws arbitrary bytes at the daemon configuration
// parser: it must never panic, and any document it accepts must survive
// a marshal → parse round trip unchanged (defaults are applied exactly
// once — re-parsing the marshaled form is a fixed point).
func FuzzParseFile(f *testing.F) {
	f.Add(`{"topology":"mci","alphas":{"voice":0.4}}`)
	f.Add(`{"topology":"ring:8","alphas":{"voice":0.3,"video":0.2},"listen":":9090","events":128,"solver_workers":4,"shutdown_grace_seconds":2.5}`)
	f.Add(`{"topology":"","alphas":{"voice":0.4}}`)
	f.Add(`{"topology":"mci","alphas":{"voice":1e309}}`)
	f.Add(`{"topology":"mci","alphas":{"voice":0.4}}{}`)
	f.Add(`{"topology":"mci","alphas":{"voice":0.4},"unknown":true}`)
	f.Add(`[]`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, doc string) {
		parsed, err := ParseFile([]byte(doc))
		if err != nil {
			return // rejection is fine; panics are not
		}
		out, err := json.Marshal(parsed)
		if err != nil {
			t.Fatalf("accepted config failed to marshal: %v", err)
		}
		back, err := ParseFile(out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !reflect.DeepEqual(parsed, back) {
			t.Fatalf("round trip changed the config: %+v vs %+v", parsed, back)
		}
	})
}
