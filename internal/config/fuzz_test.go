package config

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzParseFile throws arbitrary bytes at the daemon configuration
// parser: it must never panic, and any document it accepts must survive
// a marshal → parse round trip unchanged (defaults are applied exactly
// once — re-parsing the marshaled form is a fixed point).
func FuzzParseFile(f *testing.F) {
	f.Add(`{"topology":"mci","alphas":{"voice":0.4}}`)
	f.Add(`{"topology":"ring:8","alphas":{"voice":0.3,"video":0.2},"listen":":9090","events":128,"solver_workers":4,"shutdown_grace_seconds":2.5}`)
	f.Add(`{"topology":"","alphas":{"voice":0.4}}`)
	f.Add(`{"topology":"mci","alphas":{"voice":1e309}}`)
	f.Add(`{"topology":"mci","alphas":{"voice":0.4}}{}`)
	f.Add(`{"topology":"mci","alphas":{"voice":0.4},"unknown":true}`)
	f.Add(`[]`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, doc string) {
		parsed, err := ParseFile([]byte(doc))
		if err != nil {
			return // rejection is fine; panics are not
		}
		out, err := json.Marshal(parsed)
		if err != nil {
			t.Fatalf("accepted config failed to marshal: %v", err)
		}
		back, err := ParseFile(out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !reflect.DeepEqual(parsed, back) {
			t.Fatalf("round trip changed the config: %+v vs %+v", parsed, back)
		}
	})
}

// FuzzDecodePolicyConfig throws arbitrary bytes at the policy
// decoder: it must never panic, and any document it accepts must
// survive a marshal → decode round trip unchanged (defaults are a
// fixed point) and must Build without error for kinds that need no
// load probe.
func FuzzDecodePolicyConfig(f *testing.F) {
	f.Add(`{"kind":"always_admit"}`)
	f.Add(`{"kind":"token_bucket","rate":100,"burst":500}`)
	f.Add(`{"kind":"token_bucket","rate":100,"burst":500,"tenants":{"gold":{"rate":50,"burst":200}}}`)
	f.Add(`{"kind":"slo_gated","standard_max":0.9,"sheddable_max":0.7,"tiers":{"gold":"critical","bronze":"sheddable"}}`)
	f.Add(`{"kind":"slo_gated","sample_interval_ms":-1}`)
	f.Add(`{"kind":"reserve_headroom","fraction":0.1,"protected":["gold","voice"]}`)
	f.Add(`{"kind":"token_bucket","rate":1e309,"burst":5}`)
	f.Add(`{"kind":"reserve_headroom","fraction":0.1}{}`)
	f.Add(`{"kind":"nope"}`)
	f.Add(`[]`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, doc string) {
		pc, err := DecodePolicyConfig([]byte(doc))
		if err != nil {
			return // rejection is fine; panics are not
		}
		out, err := json.Marshal(pc)
		if err != nil {
			t.Fatalf("accepted policy failed to marshal: %v", err)
		}
		back, err := DecodePolicyConfig(out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if !reflect.DeepEqual(pc, back) {
			t.Fatalf("round trip changed the policy: %+v vs %+v", pc, back)
		}
		if pc.Kind != "slo_gated" {
			if _, err := pc.Build(nil); err != nil {
				t.Fatalf("accepted policy failed to build: %v", err)
			}
		} else if _, err := pc.Build(func() float64 { return 0 }); err != nil {
			t.Fatalf("accepted slo_gated failed to build: %v", err)
		}
	})
}
