package config

import (
	"math"
	"testing"

	"ubac/internal/delay"
	"ubac/internal/routing"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

func mciConfig(t *testing.T) *Config {
	t.Helper()
	return New(delay.NewModel(topology.MCI()))
}

func TestVerifyAssignmentDelegates(t *testing.T) {
	c := mciConfig(t)
	set, _, err := c.SelectRoutes(routing.Request{Class: traffic.Voice(), Alpha: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.VerifyAssignment([]delay.ClassInput{{Class: traffic.Voice(), Alpha: 0.2, Routes: set}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Safe {
		t.Error("alpha=0.2 on MCI should verify safe")
	}
	if len(res.Routes) != 342 {
		t.Errorf("route reports = %d, want 342", len(res.Routes))
	}
}

func TestSelectRoutesUsesSelector(t *testing.T) {
	c := mciConfig(t)
	c.Selector = routing.SP{}
	_, rep, err := c.SelectRoutes(routing.Request{Class: traffic.Voice(), Alpha: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Selector != "sp" {
		t.Errorf("selector = %s, want sp", rep.Selector)
	}
}

// Table 1 integration: the binary search must land between the Theorem 4
// bounds, with the heuristic comfortably above SP.
func TestMaxUtilizationTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 search is slow")
	}
	c := mciConfig(t)

	c.Selector = routing.SP{}
	sp, err := c.MaxUtilization(traffic.Voice(), nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Selector = routing.Heuristic{}
	heur, err := c.MaxUtilization(traffic.Voice(), nil)
	if err != nil {
		t.Fatal(err)
	}

	if math.Abs(sp.Lower-0.30) > 0.005 || math.Abs(sp.Upper-0.61) > 0.005 {
		t.Errorf("bounds = %.3f/%.3f, paper reports 0.30/0.61", sp.Lower, sp.Upper)
	}
	// Theorem 4 ordering: LB <= SP <= heuristic <= UB.
	if sp.Alpha < sp.Lower-1e-9 {
		t.Errorf("SP %.3f below the guaranteed lower bound %.3f", sp.Alpha, sp.Lower)
	}
	if heur.Alpha > heur.Upper+1e-9 {
		t.Errorf("heuristic %.3f above the upper bound %.3f", heur.Alpha, heur.Upper)
	}
	// The paper's qualitative result: the heuristic beats SP by a clear
	// margin (paper: 0.45 vs 0.33 = +36%; our reconstruction gives
	// ~0.46 vs ~0.37 = +25%).
	if heur.Alpha <= sp.Alpha+0.05 {
		t.Errorf("heuristic %.3f does not clearly beat SP %.3f", heur.Alpha, sp.Alpha)
	}
	if heur.Routes == nil || heur.Report == nil || !heur.Report.Safe {
		t.Error("winning configuration missing or unsafe")
	}
	if len(sp.Probes) == 0 || len(heur.Probes) == 0 {
		t.Error("probes not recorded")
	}
}

func TestMaxUtilizationValidation(t *testing.T) {
	c := mciConfig(t)
	if _, err := c.MaxUtilization(traffic.Class{}, nil); err == nil {
		t.Error("invalid class accepted")
	}
	if _, err := c.MaxUtilization(traffic.BestEffort(1), nil); err == nil {
		t.Error("best-effort class accepted for maximization")
	}
}

func TestMaxUtilizationSmallPairSet(t *testing.T) {
	c := mciConfig(t)
	c.Granularity = 0.01
	net := c.Model().Network()
	sea, _ := net.RouterByName("Seattle")
	mia, _ := net.RouterByName("Miami")
	res, err := c.MaxUtilization(traffic.Voice(), [][2]int{{sea, mia}, {mia, sea}})
	if err != nil {
		t.Fatal(err)
	}
	// With only two flows, far more than the all-pairs utilization is
	// achievable; at minimum the search must clear the lower bound.
	if res.Alpha < res.Lower {
		t.Errorf("alpha %.3f below lower bound %.3f", res.Alpha, res.Lower)
	}
	if res.Alpha < 0.5 {
		t.Errorf("two-flow configuration should reach at least 0.5, got %.3f", res.Alpha)
	}
}

func multiSpecs(alphaVoice, alphaVideo float64) []ClassSpec {
	video := traffic.Class{
		Name:     "video",
		Bucket:   traffic.LeakyBucket{Burst: 15e3, Rate: 1.5e6},
		Deadline: 0.4,
		Priority: 1,
	}
	return []ClassSpec{
		{Class: traffic.Voice(), Alpha: alphaVoice},
		{Class: video, Alpha: alphaVideo},
	}
}

func TestSelectMultiClass(t *testing.T) {
	c := mciConfig(t)
	res, err := c.SelectMultiClass(multiSpecs(0.15, 0.15))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Inputs) != 2 || len(res.Reports) != 2 {
		t.Fatalf("inputs/reports = %d/%d", len(res.Inputs), len(res.Reports))
	}
	if !res.Verify.Safe {
		t.Errorf("moderate two-class assignment unsafe: worst slack %g", res.Verify.WorstSlack)
	}
	// Both classes routed all pairs.
	for i, in := range res.Inputs {
		if in.Routes.Len() != 342 {
			t.Errorf("class %d routed %d pairs", i, in.Routes.Len())
		}
	}
}

func TestSelectMultiClassValidation(t *testing.T) {
	c := mciConfig(t)
	if _, err := c.SelectMultiClass(nil); err == nil {
		t.Error("empty specs accepted")
	}
	specs := multiSpecs(0.15, 0.15)
	specs[0], specs[1] = specs[1], specs[0]
	if _, err := c.SelectMultiClass(specs); err == nil {
		t.Error("priority disorder accepted")
	}
}

func TestMaxUtilizationScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale search is slow")
	}
	c := mciConfig(t)
	c.Granularity = 0.02
	res, err := c.MaxUtilizationScale(multiSpecs(0.2, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Scale <= 0 {
		t.Fatal("no safe scale found")
	}
	if res.Result == nil || !res.Result.Verify.Safe {
		t.Error("winning scale has no safe result")
	}
	// The scaled total must stay below 1.
	total := 0.0
	for _, in := range res.Result.Inputs {
		total += in.Alpha
	}
	if total >= 1 {
		t.Errorf("scaled total %g >= 1", total)
	}
	if len(res.Probes) == 0 {
		t.Error("no probes recorded")
	}
}

func TestMaxUtilizationScaleValidation(t *testing.T) {
	c := mciConfig(t)
	if _, err := c.MaxUtilizationScale(nil); err == nil {
		t.Error("empty specs accepted")
	}
	bad := multiSpecs(0, 0.2)
	if _, err := c.MaxUtilizationScale(bad); err == nil {
		t.Error("zero share accepted")
	}
}

func TestMaxUtilizationFixedRoutes(t *testing.T) {
	c := mciConfig(t)
	c.Granularity = 0.005
	set, rep, err := c.SelectRoutes(routing.Request{Class: traffic.Voice(), Alpha: 0.3})
	if err != nil || !rep.Safe {
		t.Fatalf("select: %v", err)
	}
	res, err := c.MaxUtilizationFixedRoutes(traffic.Voice(), set)
	if err != nil {
		t.Fatal(err)
	}
	// The routes were selected at 0.3, so headroom is at least that.
	if res.Alpha < 0.3 {
		t.Errorf("fixed-route headroom %.3f below the selection alpha", res.Alpha)
	}
	// And it must verify at the found level but not at found+2·gran.
	v, err := c.VerifyAssignment([]delay.ClassInput{{Class: traffic.Voice(), Alpha: res.Alpha, Routes: set}})
	if err != nil || !v.Safe {
		t.Errorf("headroom level does not verify: %v", err)
	}
	v, err = c.VerifyAssignment([]delay.ClassInput{{Class: traffic.Voice(), Alpha: res.Alpha + 2*c.Granularity, Routes: set}})
	if err != nil {
		t.Fatal(err)
	}
	if v.Safe {
		t.Error("headroom not maximal")
	}
	if len(res.Probes) == 0 {
		t.Error("no probes recorded")
	}
}

func TestMaxUtilizationFixedRoutesValidation(t *testing.T) {
	c := mciConfig(t)
	if _, err := c.MaxUtilizationFixedRoutes(traffic.Voice(), nil); err == nil {
		t.Error("nil set accepted")
	}
	if _, err := c.MaxUtilizationFixedRoutes(traffic.BestEffort(1), nil); err == nil {
		t.Error("best-effort accepted")
	}
	if _, err := c.MaxUtilizationFixedRoutes(traffic.Class{}, nil); err == nil {
		t.Error("invalid class accepted")
	}
}

func TestFailover(t *testing.T) {
	c := mciConfig(t)
	net := c.Model().Network()
	set, rep, err := c.SelectRoutes(routing.Request{Class: traffic.Voice(), Alpha: 0.3})
	if err != nil || !rep.Safe {
		t.Fatalf("select: %v", err)
	}
	sea, _ := net.RouterByName("Seattle")
	chi, _ := net.RouterByName("Chicago")
	res, err := c.Failover(traffic.Voice(), 0.3, set, sea, chi)
	if err != nil {
		t.Fatal(err)
	}
	if res.BrokenRoutes == 0 {
		t.Error("Seattle-Chicago failure broke no routes?")
	}
	if res.Network.NumServers() != net.NumServers()-2 {
		t.Errorf("survivor servers = %d", res.Network.NumServers())
	}
	if !res.Report.Safe {
		t.Errorf("reconfiguration at alpha=0.3 failed after one link loss: %+v", res.Report)
	}
	if res.Routes.Len() != 342 {
		t.Errorf("survivor routed %d pairs", res.Routes.Len())
	}
	// Removing a nonexistent link errors.
	mia, _ := net.RouterByName("Miami")
	if _, err := c.Failover(traffic.Voice(), 0.3, nil, sea, mia); err == nil {
		t.Error("nonexistent link accepted")
	}
}

func TestFailoverDisconnecting(t *testing.T) {
	netL, err := topology.Line(3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	c := New(delay.NewModel(netL))
	if _, err := c.Failover(traffic.Voice(), 0.3, nil, 0, 1); err == nil {
		t.Error("disconnecting failure accepted")
	}
}
