// Package policy is the pluggable admission-policy plane: a decision
// layer that runs *in front of* the paper's utilization test. The
// utilization test answers "can this flow's deadline be guaranteed?";
// a Policy answers the orthogonal production question "do we want to
// spend headroom on this flow right now?". Differentiating traffic
// under overload — per-tenant rate limits, SLO classes that shed
// low-value work first, capacity reserves for high-priority churn —
// yields strictly better SLO outcomes than the paper's uniform
// admit/reject, without touching the delay guarantees: a policy can
// only refuse flows the utilization test would have accepted, never
// admit flows it would have refused.
//
// Four policies ship with the package:
//
//   - AlwaysAdmit: the paper's behavior. The admission controller
//     recognizes it and strips it to a nil check, so the default path
//     is bit-for-bit and allocation-for-allocation the pre-policy
//     controller.
//   - TokenBucket: per-tenant refill/burst rate limiting, lock-free
//     (CAS on packed micro-token counters) so the zero-allocation
//     admission fast path survives.
//   - SLOGated: critical / standard / sheddable tiers. Critical
//     traffic always proceeds to the utilization test; standard and
//     sheddable are gated on a cluster-load signal derived from the
//     controller's utilization counters, sheddable at the tighter
//     threshold.
//   - ReserveHeadroom: holds back a fraction of every server's
//     per-class capacity share for protected-class churn; unprotected
//     flows are refused once admitting them would eat into the
//     reserve.
//
// The package is dependency-free (stdlib only) and imported by the
// admission controller; policies never learn about controllers,
// ledgers, or routes beyond what DecisionContext carries.
package policy

import (
	"math"
	"sync/atomic"
	"time"
)

// Verdict is a policy decision. Allow forwards the flow to the
// utilization test; every Deny* verdict refuses it with a
// machine-readable reason that flows through telemetry, the audit
// ring, and the HTTP layer unchanged.
type Verdict uint8

const (
	// Allow passes the flow on to the utilization test.
	Allow Verdict = iota
	// DenyRate means a token bucket had insufficient tokens
	// (reason "policy_token_bucket", HTTP 429).
	DenyRate
	// DenyShed means an SLO gate shed the flow under cluster load
	// (reason "policy_shed", HTTP 429).
	DenyShed
	// DenyReserve means admitting would eat into a capacity reserve
	// held for protected traffic (reason "policy_reserve", HTTP 503 —
	// a capacity condition, not a client rate condition).
	DenyReserve
)

// String returns the verdict's machine-readable reject reason
// ("policy_token_bucket", "policy_shed", "policy_reserve"), or
// "allow".
func (v Verdict) String() string {
	switch v {
	case Allow:
		return "allow"
	case DenyRate:
		return "policy_token_bucket"
	case DenyShed:
		return "policy_shed"
	case DenyReserve:
		return "policy_reserve"
	default:
		return "policy_unknown"
	}
}

// Needs is a bitmask of DecisionContext fields a policy reads, so the
// admission controller only pays to compute what the installed policy
// will actually look at.
type Needs uint8

const (
	// NeedFill asks the controller to fill DecisionContext.FillAfter
	// (an O(path length) walk of the route's utilization counters).
	NeedFill Needs = 1 << iota
)

// DecisionContext is everything a policy sees about one admission
// attempt. It is passed by value on the admission fast path, so it
// must stay small and self-contained (no pointers back into the
// controller).
type DecisionContext struct {
	// Class is the traffic class name as requested.
	Class string
	// Tenant is the requesting tenant ("" when the deployment does not
	// segment tenants). Token buckets key on it; SLO tiers may map it.
	Tenant string
	// Src and Dst are the resolved router indexes.
	Src, Dst int
	// Rate is the class's per-flow reserved rate in bits/second.
	Rate float64
	// FillAfter is the worst per-server fill fraction along the
	// configured route if this flow were admitted: max over hops of
	// (reserved + rate) / (alpha * capacity). Only populated when the
	// installed policy declares NeedFill; 0 otherwise.
	FillAfter float64
}

// Policy decides whether an admission attempt may proceed to the
// utilization test. Implementations must be safe for concurrent use
// and must not allocate on Decide — the admission fast path is pinned
// at zero allocations per operation.
type Policy interface {
	// Decide returns Allow or a Deny* verdict for one attempt.
	Decide(ctx DecisionContext) Verdict
	// Needs declares which optional DecisionContext fields Decide
	// reads. It is consulted once at installation, not per decision.
	Needs() Needs
	// Name identifies the policy kind for logs and config echo.
	Name() string
}

// AlwaysAdmit is the paper's admission behavior: every flow with
// utilization headroom is admitted. The admission controller
// recognizes this type and reduces it to its pre-policy fast path, so
// installing AlwaysAdmit is exactly equivalent to installing no
// policy at all.
type AlwaysAdmit struct{}

// Decide implements Policy.
func (AlwaysAdmit) Decide(DecisionContext) Verdict { return Allow }

// Needs implements Policy.
func (AlwaysAdmit) Needs() Needs { return 0 }

// Name implements Policy.
func (AlwaysAdmit) Name() string { return "always_admit" }

// LoadSignal reports a cluster load fraction, nominally in [0, 1]
// (1 = some reservation pool is full). SLOGated consults it on every
// gated decision; implementations must be safe for concurrent use and
// allocation-free.
type LoadSignal interface {
	Load() float64
}

// StaticLoad is a fixed LoadSignal, useful in tests and as an
// explicit override.
type StaticLoad float64

// Load implements LoadSignal.
func (s StaticLoad) Load() float64 { return float64(s) }

// SampledLoad caches an expensive load probe (for example the
// admission controller's max-utilization scan, O(classes × servers))
// behind an atomic, refreshing it at most once per Interval. With
// Interval <= 0 every Load call probes — the deterministic choice for
// virtual-time replay harnesses.
type SampledLoad struct {
	// Sample computes the current load fraction.
	Sample func() float64
	// Interval is the minimum wall-clock spacing between probes.
	Interval time.Duration
	// Now overrides the clock (unix nanoseconds); nil uses real time.
	// Replay harnesses drive it from their virtual clock.
	Now func() int64

	lastNano atomic.Int64
	bits     atomic.Uint64 // math.Float64bits of the cached sample
}

// Load implements LoadSignal: it returns the cached sample, probing
// first when the cache has aged past Interval. Concurrent callers may
// race to refresh; all of them store fresh values, so the cache never
// goes backwards in time by more than one probe.
func (s *SampledLoad) Load() float64 {
	if s.Interval <= 0 {
		v := s.Sample()
		s.bits.Store(math.Float64bits(v))
		return v
	}
	now := time.Now().UnixNano()
	if s.Now != nil {
		now = s.Now()
	}
	last := s.lastNano.Load()
	if (last == 0 || now-last >= int64(s.Interval)) && s.lastNano.CompareAndSwap(last, now) {
		s.bits.Store(math.Float64bits(s.Sample()))
	}
	return math.Float64frombits(s.bits.Load())
}
