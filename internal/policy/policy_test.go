package policy

import (
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func TestVerdictStrings(t *testing.T) {
	want := map[Verdict]string{
		Allow:       "allow",
		DenyRate:    "policy_token_bucket",
		DenyShed:    "policy_shed",
		DenyReserve: "policy_reserve",
		Verdict(99): "policy_unknown",
	}
	for v, s := range want {
		if got := v.String(); got != s {
			t.Errorf("Verdict(%d).String() = %q, want %q", v, got, s)
		}
	}
}

func TestAlwaysAdmit(t *testing.T) {
	var p Policy = AlwaysAdmit{}
	if v := p.Decide(DecisionContext{Class: "voice"}); v != Allow {
		t.Fatalf("AlwaysAdmit.Decide = %v, want Allow", v)
	}
	if p.Needs() != 0 {
		t.Fatalf("AlwaysAdmit.Needs = %v, want 0", p.Needs())
	}
	if p.Name() != "always_admit" {
		t.Fatalf("AlwaysAdmit.Name = %q", p.Name())
	}
}

func TestSLOGatedCascade(t *testing.T) {
	var load StaticLoad
	tiers := map[string]Tier{
		"gold":   TierCritical,
		"silver": TierStandard,
		"bronze": TierSheddable,
	}
	g, err := NewSLOGated(tiers, TierStandard, 0.9, 0.7, &load)
	if err != nil {
		t.Fatal(err)
	}
	decide := func(tenant string) Verdict {
		return g.Decide(DecisionContext{Class: "voice", Tenant: tenant})
	}
	cases := []struct {
		load                 float64
		gold, silver, bronze Verdict
	}{
		{0.0, Allow, Allow, Allow},
		{0.69, Allow, Allow, Allow},
		{0.7, Allow, Allow, DenyShed},  // sheddable sheds first
		{0.89, Allow, Allow, DenyShed}, // standard still riding
		{0.9, Allow, DenyShed, DenyShed},
		{1.0, Allow, DenyShed, DenyShed}, // critical never gated
	}
	for _, c := range cases {
		load = StaticLoad(c.load)
		if v := decide("gold"); v != c.gold {
			t.Errorf("load=%.2f gold: %v, want %v", c.load, v, c.gold)
		}
		if v := decide("silver"); v != c.silver {
			t.Errorf("load=%.2f silver: %v, want %v", c.load, v, c.silver)
		}
		if v := decide("bronze"); v != c.bronze {
			t.Errorf("load=%.2f bronze: %v, want %v", c.load, v, c.bronze)
		}
	}
	// Unknown tenant falls back to the class mapping, then the default.
	load = 0.95
	if v := decide("unknown-tenant"); v != DenyShed {
		t.Errorf("unknown tenant at load 0.95: %v, want DenyShed (default standard)", v)
	}
	g2, err := NewSLOGated(map[string]Tier{"voice": TierCritical}, TierSheddable, 0.9, 0.7, &load)
	if err != nil {
		t.Fatal(err)
	}
	if v := g2.Decide(DecisionContext{Class: "voice", Tenant: "nobody"}); v != Allow {
		t.Errorf("class mapping not consulted for unknown tenant: %v", v)
	}
}

func TestSLOGatedValidation(t *testing.T) {
	var load StaticLoad
	if _, err := NewSLOGated(nil, TierStandard, 0.9, 0.7, nil); err == nil {
		t.Error("nil load signal accepted")
	}
	if _, err := NewSLOGated(nil, TierStandard, 0, 0.7, &load); err == nil {
		t.Error("zero standard threshold accepted")
	}
	if _, err := NewSLOGated(nil, TierStandard, 0.7, 0.9, &load); err == nil {
		t.Error("sheddable above standard accepted")
	}
	if _, err := NewSLOGated(map[string]Tier{"": TierCritical}, TierStandard, 0.9, 0.7, &load); err == nil {
		t.Error("empty tier name accepted")
	}
	if _, err := ParseTier("golden"); err == nil {
		t.Error("ParseTier accepted garbage")
	}
	for _, name := range []string{"critical", "standard", "sheddable"} {
		tier, err := ParseTier(name)
		if err != nil {
			t.Fatal(err)
		}
		if tier.String() != name {
			t.Errorf("round trip %q -> %v -> %q", name, tier, tier.String())
		}
	}
}

func TestReserveHeadroom(t *testing.T) {
	p, err := NewReserveHeadroom(0.2, []string{"gold", "voice"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Needs()&NeedFill == 0 {
		t.Fatal("ReserveHeadroom must declare NeedFill")
	}
	cases := []struct {
		class, tenant string
		fill          float64
		want          Verdict
	}{
		{"best-effort", "", 0.79, Allow},
		{"best-effort", "", 0.81, DenyReserve}, // into the reserve
		{"voice", "", 0.95, Allow},             // protected class
		{"best-effort", "gold", 0.95, Allow},   // protected tenant
		{"best-effort", "bronze", 0.85, DenyReserve},
	}
	for _, c := range cases {
		v := p.Decide(DecisionContext{Class: c.class, Tenant: c.tenant, FillAfter: c.fill})
		if v != c.want {
			t.Errorf("class=%s tenant=%s fill=%.2f: %v, want %v", c.class, c.tenant, c.fill, v, c.want)
		}
	}
	if _, err := NewReserveHeadroom(0, nil); err == nil {
		t.Error("zero reserve accepted")
	}
	if _, err := NewReserveHeadroom(1, nil); err == nil {
		t.Error("full reserve accepted")
	}
	if _, err := NewReserveHeadroom(0.5, []string{""}); err == nil {
		t.Error("empty protected name accepted")
	}
}

func TestSampledLoad(t *testing.T) {
	var probes atomic.Int64
	var now atomic.Int64
	now.Store(1)
	s := &SampledLoad{
		Sample: func() float64 {
			return float64(probes.Add(1))
		},
		Interval: time.Second,
		Now:      func() int64 { return now.Load() },
	}
	if got := s.Load(); got != 1 {
		t.Fatalf("first Load = %g, want 1 (fresh probe)", got)
	}
	if got := s.Load(); got != 1 {
		t.Fatalf("cached Load = %g, want 1 (within interval)", got)
	}
	now.Add(int64(2 * time.Second))
	if got := s.Load(); got != 2 {
		t.Fatalf("post-interval Load = %g, want 2 (re-probed)", got)
	}
	// Interval <= 0 probes every call.
	every := &SampledLoad{Sample: func() float64 { return float64(probes.Add(1)) }}
	a, b := every.Load(), every.Load()
	if a == b {
		t.Fatalf("interval<=0 must probe each call: %g, %g", a, b)
	}
}

func TestTokenBucketRefillAndBurst(t *testing.T) {
	var now atomic.Int64
	now.Store(int64(time.Hour)) // arbitrary nonzero epoch
	tb, err := NewTokenBucket(BucketConfig{Rate: 10, Burst: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tb.Clock = now.Load
	ctx := DecisionContext{Class: "voice"}

	// The bucket starts full: exactly burst admits succeed.
	for i := 0; i < 5; i++ {
		if v := tb.Decide(ctx); v != Allow {
			t.Fatalf("admit %d of burst: %v", i, v)
		}
	}
	if v := tb.Decide(ctx); v != DenyRate {
		t.Fatalf("burst exhausted but admit allowed: %v", v)
	}

	// 300ms at 10 tokens/s = 3 tokens.
	now.Add(int64(300 * time.Millisecond))
	for i := 0; i < 3; i++ {
		if v := tb.Decide(ctx); v != Allow {
			t.Fatalf("refilled admit %d: %v", i, v)
		}
	}
	if v := tb.Decide(ctx); v != DenyRate {
		t.Fatalf("over-refilled: got Allow after 3 refilled tokens")
	}

	// Idle far past the burst window: credit caps at burst.
	now.Add(int64(time.Hour))
	if lvl := tb.TenantLevel(""); math.Abs(lvl-5) > 1e-9 {
		t.Fatalf("level after long idle = %g, want burst cap 5", lvl)
	}
}

// TestTokenBucketConcurrentDeterminism is the refill-determinism
// property under concurrent admits: with the clock frozen, exactly
// burst admissions succeed no matter how many goroutines race; after
// a fixed clock advance, exactly the refilled quantum more succeed.
// Lost or double-counted CAS transitions would break the exact
// counts.
func TestTokenBucketConcurrentDeterminism(t *testing.T) {
	const (
		burst   = 64
		rate    = 1000.0
		workers = 8
		tries   = 200 // per worker, >> burst so every worker sees denials
	)
	var now atomic.Int64
	now.Store(int64(time.Hour))
	tb, err := NewTokenBucket(BucketConfig{Rate: rate, Burst: burst},
		map[string]BucketConfig{"tenant-a": {Rate: rate, Burst: burst}})
	if err != nil {
		t.Fatal(err)
	}
	tb.Clock = now.Load

	hammer := func(tenant string) int64 {
		var admitted atomic.Int64
		done := make(chan struct{})
		for w := 0; w < workers; w++ {
			go func() {
				defer func() { done <- struct{}{} }()
				for i := 0; i < tries; i++ {
					if tb.Decide(DecisionContext{Class: "voice", Tenant: tenant}) == Allow {
						admitted.Add(1)
					}
				}
			}()
		}
		for w := 0; w < workers; w++ {
			<-done
		}
		return admitted.Load()
	}

	if got := hammer("tenant-a"); got != burst {
		t.Fatalf("frozen clock: %d concurrent admits succeeded, want exactly %d", got, burst)
	}
	// Default bucket is independent: it still holds its full burst.
	if got := hammer("unknown-tenant"); got != burst {
		t.Fatalf("default bucket: %d admits, want %d", got, burst)
	}
	// Advance 16ms at 1000 tokens/s = exactly 16 tokens of credit.
	now.Add(int64(16 * time.Millisecond))
	if got := hammer("tenant-a"); got != 16 {
		t.Fatalf("post-refill: %d admits, want exactly 16", got)
	}
}

func TestTokenBucketValidation(t *testing.T) {
	if _, err := NewTokenBucket(BucketConfig{Rate: 0, Burst: 5}, nil); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewTokenBucket(BucketConfig{Rate: 1, Burst: 0.5}, nil); err == nil {
		t.Error("burst below one flow accepted")
	}
	if _, err := NewTokenBucket(BucketConfig{Rate: 1, Burst: 5},
		map[string]BucketConfig{"t": {Rate: -1, Burst: 5}}); err == nil {
		t.Error("negative tenant rate accepted")
	}
	if _, err := NewTokenBucket(BucketConfig{Rate: math.Inf(1), Burst: 5}, nil); err == nil {
		t.Error("infinite rate accepted")
	}
}
