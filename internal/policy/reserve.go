package policy

import "fmt"

// ReserveHeadroom holds back a fraction of every server's per-class
// capacity share for protected traffic. An unprotected flow is
// refused when admitting it would push any server on its route past
// (1 - Reserve) of the class's reservation pool; protected names
// (tenant or class) bypass the reserve and can use the full pool.
// This is the policy plane ROADMAP item 3's live α re-optimization
// feeds: re-solving the fixed point shrinks or grows the pool, and
// the reserve fraction rides on top of whatever the current
// assignment is.
//
// The policy declares NeedFill, so the admission controller computes
// DecisionContext.FillAfter — the worst post-admission fill fraction
// along the route — before calling Decide. That walk is O(path
// length), the same bound as the utilization test itself.
type ReserveHeadroom struct {
	reserve   float64
	protected map[string]bool
}

// NewReserveHeadroom builds the policy: reserve is the held-back
// fraction in (0, 1); protected lists tenant or class names exempt
// from it (nil protects nothing — then only the reserve's refusal
// margin differs from plain capacity rejection).
func NewReserveHeadroom(reserve float64, protected []string) (*ReserveHeadroom, error) {
	if !(reserve > 0 && reserve < 1) {
		return nil, fmt.Errorf("policy: reserve fraction %g out of (0,1)", reserve)
	}
	p := &ReserveHeadroom{reserve: reserve}
	if len(protected) > 0 {
		p.protected = make(map[string]bool, len(protected))
		for _, name := range protected {
			if name == "" {
				return nil, fmt.Errorf("policy: empty protected name")
			}
			p.protected[name] = true
		}
	}
	return p, nil
}

// Decide implements Policy.
func (p *ReserveHeadroom) Decide(ctx DecisionContext) Verdict {
	if p.protected != nil && (p.protected[ctx.Class] || (ctx.Tenant != "" && p.protected[ctx.Tenant])) {
		return Allow
	}
	if ctx.FillAfter > 1-p.reserve {
		return DenyReserve
	}
	return Allow
}

// Needs implements Policy.
func (p *ReserveHeadroom) Needs() Needs { return NeedFill }

// Name implements Policy.
func (p *ReserveHeadroom) Name() string { return "reserve_headroom" }

// Reserve returns the configured held-back fraction.
func (p *ReserveHeadroom) Reserve() float64 { return p.reserve }
