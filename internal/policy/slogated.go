package policy

import (
	"fmt"
	"sort"
)

// Tier is an SLO class. Critical traffic is never shed by the gate;
// standard and sheddable traffic are refused once the cluster load
// signal crosses their thresholds, sheddable first.
type Tier uint8

const (
	// TierCritical traffic always proceeds to the utilization test.
	TierCritical Tier = iota
	// TierStandard traffic is shed above the standard threshold.
	TierStandard
	// TierSheddable traffic is shed above the (tighter) sheddable
	// threshold — the first traffic to go under load.
	TierSheddable
)

// String returns "critical" | "standard" | "sheddable".
func (t Tier) String() string {
	switch t {
	case TierCritical:
		return "critical"
	case TierStandard:
		return "standard"
	case TierSheddable:
		return "sheddable"
	default:
		return "unknown"
	}
}

// ParseTier resolves a tier name.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "critical":
		return TierCritical, nil
	case "standard":
		return TierStandard, nil
	case "sheddable":
		return TierSheddable, nil
	default:
		return 0, fmt.Errorf("policy: tier %q not one of critical|standard|sheddable", s)
	}
}

// SLOGated is the priority-cascade gate: admission attempts carry an
// SLO tier (resolved from the tenant name first, then the traffic
// class name, then the default), and non-critical tiers are gated on
// a cluster-load signal. With StandardMax = 0.9 and SheddableMax =
// 0.7, sheddable traffic stops being admitted once the busiest
// reservation pool passes 70% while standard traffic rides to 90%,
// and critical traffic is only ever refused by the utilization test
// itself — the shape that keeps critical reject ratios ≈ 0 through
// bursts that would otherwise reject uniformly across tiers.
//
// The tier maps are fixed at construction (read-only afterwards), so
// concurrent decisions need no lock; the load signal is read once per
// gated decision.
type SLOGated struct {
	tiers   map[string]Tier // tenant or class name → tier
	def     Tier
	stdMax  float64
	shedMax float64
	load    LoadSignal
}

// NewSLOGated builds the gate. tiers maps tenant or traffic-class
// names to their SLO tier (may be empty — every attempt then takes
// def). standardMax and sheddableMax are load thresholds in (0, 1]
// with sheddableMax <= standardMax. load supplies the cluster load
// signal (required).
func NewSLOGated(tiers map[string]Tier, def Tier, standardMax, sheddableMax float64, load LoadSignal) (*SLOGated, error) {
	if load == nil {
		return nil, fmt.Errorf("policy: slo_gated needs a load signal")
	}
	if !(standardMax > 0 && standardMax <= 1) {
		return nil, fmt.Errorf("policy: standard threshold %g out of (0,1]", standardMax)
	}
	if !(sheddableMax > 0 && sheddableMax <= 1) {
		return nil, fmt.Errorf("policy: sheddable threshold %g out of (0,1]", sheddableMax)
	}
	if sheddableMax > standardMax {
		return nil, fmt.Errorf("policy: sheddable threshold %g above standard threshold %g — sheddable must shed first",
			sheddableMax, standardMax)
	}
	g := &SLOGated{def: def, stdMax: standardMax, shedMax: sheddableMax, load: load}
	if len(tiers) > 0 {
		g.tiers = make(map[string]Tier, len(tiers))
		for name, t := range tiers {
			if name == "" {
				return nil, fmt.Errorf("policy: empty name in tier map")
			}
			g.tiers[name] = t
		}
	}
	return g, nil
}

// TierOf resolves the tier of an attempt: tenant mapping first, then
// class mapping, then the default.
func (g *SLOGated) TierOf(tenant, class string) Tier {
	if g.tiers != nil {
		if tenant != "" {
			if t, ok := g.tiers[tenant]; ok {
				return t
			}
		}
		if t, ok := g.tiers[class]; ok {
			return t
		}
	}
	return g.def
}

// Decide implements Policy.
func (g *SLOGated) Decide(ctx DecisionContext) Verdict {
	switch g.TierOf(ctx.Tenant, ctx.Class) {
	case TierCritical:
		return Allow
	case TierStandard:
		if g.load.Load() < g.stdMax {
			return Allow
		}
	default: // TierSheddable
		if g.load.Load() < g.shedMax {
			return Allow
		}
	}
	return DenyShed
}

// Needs implements Policy.
func (g *SLOGated) Needs() Needs { return 0 }

// Name implements Policy.
func (g *SLOGated) Name() string { return "slo_gated" }

// Thresholds returns the configured (standard, sheddable) load
// thresholds.
func (g *SLOGated) Thresholds() (standardMax, sheddableMax float64) {
	return g.stdMax, g.shedMax
}

// TierNames returns the configured name → tier assignments sorted by
// name, for config echo and logs.
func (g *SLOGated) TierNames() []string {
	out := make([]string, 0, len(g.tiers))
	for name, t := range g.tiers {
		out = append(out, name+"="+t.String())
	}
	sort.Strings(out)
	return out
}
