package policy

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// tokenScale is the integer resolution of bucket accounting: one
// admitted flow costs tokenScale micro-tokens, so fractional refill
// rates (0.5 flows/s) accumulate exactly between decisions.
const tokenScale = 1e6

// BucketConfig sizes one token bucket: Rate tokens (flows) added per
// second, up to Burst tokens of accumulated credit.
type BucketConfig struct {
	Rate  float64
	Burst float64
}

// Validate checks the bucket parameters.
func (bc BucketConfig) Validate() error {
	if !(bc.Rate > 0) || math.IsInf(bc.Rate, 0) {
		return fmt.Errorf("policy: token bucket rate %g must be positive and finite", bc.Rate)
	}
	if !(bc.Burst >= 1) || math.IsInf(bc.Burst, 0) {
		return fmt.Errorf("policy: token bucket burst %g must be >= 1 (one flow) and finite", bc.Burst)
	}
	return nil
}

// bucket is one lock-free token bucket. tokens holds micro-tokens;
// last is the unix-nano timestamp of the most recent refill credit.
// Refill is claimed by CAS on last — exactly one of the racing
// deciders credits each elapsed interval — and spending is a CAS loop
// on tokens, so concurrent admits never lose or double-count credit.
type bucket struct {
	tokens    atomicInt64Pad
	last      atomicInt64Pad
	rateMicro float64 // micro-tokens credited per nanosecond
	burst     int64   // micro-tokens
	cost      int64   // micro-tokens per admitted flow
}

// atomicInt64Pad keeps hot per-tenant counters off shared cache lines.
type atomicInt64Pad struct {
	n atomic.Int64
	_ [56]byte
}

func (p *atomicInt64Pad) Load() int64                    { return p.n.Load() }
func (p *atomicInt64Pad) Store(v int64)                  { p.n.Store(v) }
func (p *atomicInt64Pad) CompareAndSwap(o, v int64) bool { return p.n.CompareAndSwap(o, v) }

func newBucket(cfg BucketConfig) *bucket {
	b := &bucket{
		rateMicro: cfg.Rate * tokenScale / float64(time.Second),
		burst:     int64(cfg.Burst * tokenScale),
		cost:      tokenScale,
	}
	b.tokens.Store(b.burst) // buckets start full
	return b
}

// refill credits elapsed time since the last refill, clamped to the
// burst cap. now is unix nanoseconds.
func (b *bucket) refill(now int64) {
	for {
		last := b.last.Load()
		if last == 0 {
			// First decision: anchor the clock with no credit (the bucket
			// was constructed full).
			if b.last.CompareAndSwap(0, now) {
				return
			}
			continue
		}
		if now <= last {
			return
		}
		if !b.last.CompareAndSwap(last, now) {
			continue // another decider claimed this interval
		}
		add := int64(float64(now-last) * b.rateMicro)
		if add <= 0 {
			// Sub-micro-token interval: give the time back so short
			// bursts of decisions don't starve the refill.
			b.last.Store(last)
			return
		}
		for {
			cur := b.tokens.Load()
			next := cur + add
			if next > b.burst {
				next = b.burst
			}
			if b.tokens.CompareAndSwap(cur, next) {
				return
			}
		}
	}
}

// take attempts to spend one flow's worth of tokens.
func (b *bucket) take(now int64) bool {
	b.refill(now)
	for {
		cur := b.tokens.Load()
		if cur < b.cost {
			return false
		}
		if b.tokens.CompareAndSwap(cur, cur-b.cost) {
			return true
		}
	}
}

// level returns the current token level in flows (refilling first),
// for tests and introspection.
func (b *bucket) level(now int64) float64 {
	b.refill(now)
	return float64(b.tokens.Load()) / tokenScale
}

// TokenBucket is a per-tenant rate-limiting policy: each admission
// attempt spends one token from the requesting tenant's bucket
// (unknown tenants, and requests with no tenant, share the default
// bucket). Tokens refill continuously at the configured rate up to
// the burst cap, so a tenant may burst Burst flows and then sustain
// Rate flows/second. The decision path is lock-free and
// allocation-free: one read-only map lookup plus CAS loops on the
// bucket's counters.
//
// Tenants are fixed at construction — the map is never written after
// NewTokenBucket returns, which is what makes the concurrent lookups
// safe without a lock. Capacity rejections downstream do not refund
// tokens: the policy prices admission *attempts*, mirroring
// rate-limiter behavior in production gateways.
type TokenBucket struct {
	def     *bucket
	tenants map[string]*bucket
	// Clock overrides time.Now (unix nanoseconds) for deterministic
	// replay and tests; nil uses real time. Set before serving traffic.
	Clock func() int64
}

// NewTokenBucket builds the policy: def sizes the shared default
// bucket, tenants (may be nil) sizes dedicated per-tenant buckets.
func NewTokenBucket(def BucketConfig, tenants map[string]BucketConfig) (*TokenBucket, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	tb := &TokenBucket{def: newBucket(def)}
	if len(tenants) > 0 {
		tb.tenants = make(map[string]*bucket, len(tenants))
		// Deterministic construction order (map iteration is not).
		names := make([]string, 0, len(tenants))
		for name := range tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			cfg := tenants[name]
			if err := cfg.Validate(); err != nil {
				return nil, fmt.Errorf("policy: tenant %q: %w", name, err)
			}
			tb.tenants[name] = newBucket(cfg)
		}
	}
	return tb, nil
}

// now returns the policy clock reading in unix nanoseconds.
func (tb *TokenBucket) now() int64 {
	if tb.Clock != nil {
		return tb.Clock()
	}
	return time.Now().UnixNano()
}

// Decide implements Policy.
func (tb *TokenBucket) Decide(ctx DecisionContext) Verdict {
	b := tb.def
	if tb.tenants != nil {
		if tb2, ok := tb.tenants[ctx.Tenant]; ok {
			b = tb2
		}
	}
	if b.take(tb.now()) {
		return Allow
	}
	return DenyRate
}

// Needs implements Policy.
func (tb *TokenBucket) Needs() Needs { return 0 }

// Name implements Policy.
func (tb *TokenBucket) Name() string { return "token_bucket" }

// TenantLevel reports the current token level (in flows) of the named
// tenant's bucket ("" = the default bucket) — observability and test
// hook, not on the decision path.
func (tb *TokenBucket) TenantLevel(tenant string) float64 {
	b := tb.def
	if tb.tenants != nil {
		if tb2, ok := tb.tenants[tenant]; ok {
			b = tb2
		}
	}
	return b.level(tb.now())
}
