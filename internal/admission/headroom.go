package admission

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Per-route headroom plane: the O(1) admit fast path (ROADMAP item 3).
//
// Instead of caching a per-route min-headroom figure and trying to keep
// it coherent with every ledger move, the plane holds a per-(class,
// route) *budget* of pre-reserved flow slots: a small lease carved out
// of the route's real headroom by one exact walk, then consumed one
// atomic compare-and-decrement at a time. A budgeted unit is *backed* —
// its rate is already reserved on every member server — so a fast admit
// never needs validation: the paper's per-server test was already run,
// wholesale, when the lease was taken.
//
// Exactness near saturation comes from two mechanisms:
//
//   - Guard band: a refill only takes a lease when the route's exact
//     headroom exceeds leaseGuard flows. Below that the fast path
//     disables itself and every admit runs the exact walk, so the last
//     leaseGuard admission slots on any route are always decided by the
//     paper's test, never by a cached figure.
//
//   - Reclaim: leased-but-unused budget is real reserved capacity, so
//     an exact walk that fails while sibling routes hold budget would
//     refuse a flow the paper's test (with no plane) would admit. The
//     fallback therefore drains the budgets of every route sharing a
//     hop with the failing route (one atomic Swap each, releasing the
//     backing), then retries — sequentially, a reject is returned only
//     when the route is genuinely full.
//
// Banded invalidation serves the *read* paths (fillAfter, and the
// freshness of any cached per-route figure): each (class, server)
// ledger counter is bucketed into ~bandCount power-of-two bands, and a
// reserve/release that crosses a band edge bumps the server's epoch.
// A cached route figure carries the sum of its member servers' epochs;
// a mismatch means some hop moved at least a band's width and the
// figure is recomputed. The fast admit itself never consults the
// ledger, so banding costs it nothing.
const (
	// maxLease bounds a route's unconsumed budget: at most this many
	// admission slots are held away from the exact ledger per (class,
	// route). Also the credit-back cap on teardown.
	maxLease = 64
	// leaseGuard is the exact-walk region: no lease is taken unless the
	// route's walked headroom strictly exceeds this many flows. It must
	// be >= maxLease so that even a route whose entire guard region is
	// transiently leased to siblings (before reclaim) stays admissible.
	leaseGuard = 64
	// bandCount is the target number of utilization bands per server
	// counter; band width is the largest power of two not exceeding
	// limit/bandCount.
	bandCount = 32
)

// planeEntry is one (class, route) cell, padded to a cache line so
// hot-route CAS traffic does not false-share with neighbors.
type planeEntry struct {
	// budget is the route's unconsumed lease in flow slots; always
	// >= 0 (consumers CAS b -> b-1 only from b > 0, reclaim Swaps to 0).
	budget atomic.Int64
	// mu serializes refills (and fill-cache writes), so a stampede on
	// an empty budget does one walk, not one per goroutine.
	mu sync.Mutex
	// fillStamp/fillBits cache fillAfter's worst-fill figure: bits is
	// the float64 image, stamp the sum of member-server band epochs it
	// was computed under (^0 = never computed). Writers hold mu and
	// store bits before stamp; readers double-check stamp around bits.
	fillStamp atomic.Uint64
	fillBits  atomic.Uint64
	// Pad to exactly 64 bytes: one cache line, and the entry index
	// becomes a shift instead of a multiply.
	_ [32]byte
}

// classPlane is one class's headroom plane.
type classPlane struct {
	entries []planeEntry
	// members[s] lists the route indexes traversing server s — the
	// reverse index reclaim and lease-adjusted reads walk. Built once
	// at construction.
	members [][]int32
}

// FastPathStats reports how admits were decided since construction (or
// since recovery; replayed admits are excluded).
type FastPathStats struct {
	// Hits were served by the O(1) budget decrement.
	Hits uint64
	// Stale admits waited on a refill (budget empty or contended) but
	// were still served from a lease, not an exact verdict walk.
	Stale uint64
	// Fallback admission attempts ran the exact per-server walk:
	// refill found the route inside the guard band, leasing is off, or
	// a NeedFill policy is installed. Includes both admits and rejects.
	Fallback uint64
}

// classHint is one immutable (name, index) pair; Controller.hint caches
// the most recent lookup so repeated admits of the same class skip the
// map (a string compare against an interned name is ~4x cheaper).
type classHint struct {
	name string
	ci   int
}

// classIndex resolves a class name, serving repeats from the hint
// cache. The hint array is preallocated so misses store a pointer into
// it and never allocate.
func (c *Controller) classIndex(name string) (int, bool) {
	if h := c.hint.Load(); h != nil && h.name == name {
		return h.ci, true
	}
	return c.classIndexSlow(name)
}

func (c *Controller) classIndexSlow(name string) (int, bool) {
	ci, ok := c.byName[name]
	if ok {
		c.hint.Store(&c.hintArr[ci])
	}
	return ci, ok
}

// buildPlane constructs the per-class planes, the reverse index, and
// the band shifts. Called once from NewController.
func (c *Controller) buildPlane() {
	nsrv := c.nsrv
	c.plane = make([]classPlane, len(c.classes))
	c.bandEpoch = make([]atomic.Uint32, len(c.classes)*nsrv)
	c.bandShift = make([]uint8, len(c.classes)*nsrv)
	c.hintArr = make([]classHint, len(c.classes))
	for ci := range c.classes {
		c.hintArr[ci] = classHint{name: c.classes[ci].Class.Name, ci: ci}
		nr := len(c.paths[ci])
		p := &c.plane[ci]
		p.entries = make([]planeEntry, nr)
		for r := range p.entries {
			p.entries[r].fillStamp.Store(^uint64(0))
		}
		p.members = make([][]int32, nsrv)
		for r := 0; r < nr; r++ {
			for _, s := range c.paths[ci][r] {
				p.members[s] = append(p.members[s], int32(r))
			}
		}
		for s := 0; s < nsrv; s++ {
			width := c.limits[ci][s] / bandCount
			sh := 0
			if width > 1 {
				sh = bits.Len64(uint64(width)) - 1
			}
			c.bandShift[ci*nsrv+s] = uint8(sh)
		}
	}
}

// noteBand bumps server idx's band epoch when a ledger move crossed a
// band edge.
func (c *Controller) noteBand(idx int, old, now int64) {
	sh := c.bandShift[idx]
	if old>>sh != now>>sh {
		c.bandEpoch[idx].Add(1)
	}
}

// ledReserve / ledRelease wrap the raw ledger with band-epoch
// maintenance. Every ledger move in the controller funnels through
// these two.
func (c *Controller) ledReserve(idx int, amt, limit int64) bool {
	nu, ok := c.led.tryReserve(idx, amt, limit)
	if ok {
		c.noteBand(idx, nu-amt, nu)
	}
	return ok
}

func (c *Controller) ledRelease(idx int, amt int64) {
	nu := c.led.release(idx, amt)
	c.noteBand(idx, nu+amt, nu)
}

// walkHeadroom is the exact per-server headroom walk: the number of
// additional class-ci flows route ri can hold, by raw ledger counters
// (leases count as used — that is what makes leased units backed).
func (c *Controller) walkHeadroom(ci int, ri int32) int64 {
	rate := c.rates[ci]
	base := ci * c.nsrv
	min := int64(math.MaxInt64)
	for _, s := range c.paths[ci][ri] {
		free := c.limits[ci][s] - c.led.inUse(base+s)
		if free < 0 {
			free = 0
		}
		if n := free / rate; n < min {
			min = n
		}
	}
	return min
}

// tryLease reserves n flow-slots of backing on every hop of route ri —
// the wholesale form of the paper's utilization test. All-or-nothing.
func (c *Controller) tryLease(ci int, ri int32, n int64) bool {
	amt := n * c.rates[ci]
	base := ci * c.nsrv
	servers := c.paths[ci][ri]
	for i, s := range servers {
		if !c.ledReserve(base+s, amt, c.limits[ci][s]) {
			for _, t := range servers[:i] {
				c.ledRelease(base+t, amt)
			}
			return false
		}
	}
	return true
}

// admitReserve decides one admission: O(1) budget hit when possible,
// refill or exact walk otherwise. The returned bottleneck is -1 on
// success and on fast rejects without a walked verdict (there are
// none: every reject comes from the exact walk).
func (c *Controller) admitReserve(ci int, ri int32) (bottleneck int, ok bool) {
	if c.budgetHit(ci, ri) {
		return -1, true
	}
	return c.admitReserveSlow(ci, ri)
}

// budgetHit is the whole steady-state admission test: one budget
// decrement, attempted once. Call-free so it inlines into admit.
func (c *Controller) budgetHit(ci int, ri int32) bool {
	if !c.fastOK {
		return false
	}
	e := &c.plane[ci].entries[ri]
	b := e.budget.Load()
	return b > 0 && e.budget.CompareAndSwap(b, b-1)
}

// budgetPut is budgetHit's teardown mirror: credit one slot back,
// attempted once. Call-free so it inlines into Teardown.
func (c *Controller) budgetPut(ci int, ri int32) bool {
	if !c.fastOK {
		return false
	}
	e := &c.plane[ci].entries[ri]
	b := e.budget.Load()
	return b < maxLease && e.budget.CompareAndSwap(b, b+1)
}

// admitReserveSlow is everything past the single-attempt budget hit:
// the CAS retry loop (a failed CAS under contention retries before
// falling to the refill lock), the refill path, and the exact-walk
// fallback when the fast path is off.
func (c *Controller) admitReserveSlow(ci int, ri int32) (bottleneck int, ok bool) {
	if !c.fastOK {
		s, ok := c.reserve(ci, ri)
		if ok {
			c.fbAdmits.Add(1)
		} else {
			c.fbRejects.Add(1)
		}
		return s, ok
	}
	e := &c.plane[ci].entries[ri]
	for b := e.budget.Load(); b > 0; b = e.budget.Load() {
		if e.budget.CompareAndSwap(b, b-1) {
			return -1, true
		}
	}
	return c.slowAdmitReserve(ci, ri, e)
}

// slowAdmitReserve is the refill path: under the entry lock, re-check
// the budget (a racing refiller may have filled it), then try to take
// a fresh lease; outside the guard band this succeeds in one walk.
// Otherwise fall through to the exact, reclaiming walk.
func (c *Controller) slowAdmitReserve(ci int, ri int32, e *planeEntry) (int, bool) {
	e.mu.Lock()
	for b := e.budget.Load(); b > 0; b = e.budget.Load() {
		if e.budget.CompareAndSwap(b, b-1) {
			e.mu.Unlock()
			c.staleAdmits.Add(1)
			return -1, true
		}
	}
	for attempt := 0; attempt < 3; attempt++ {
		lease := c.walkHeadroom(ci, ri) - leaseGuard
		if lease <= 0 {
			break // guard band: the exact walk decides from here
		}
		if lease > maxLease {
			lease = maxLease
		}
		if c.tryLease(ci, ri, lease) {
			// One unit consumed by this admit, the rest published.
			e.budget.Add(lease - 1)
			e.mu.Unlock()
			c.staleAdmits.Add(1)
			return -1, true
		}
		// Raced with enough traffic to invalidate the walked figure;
		// re-walk with the tighter ledger.
	}
	e.mu.Unlock()
	s, ok := c.reserveReclaim(ci, ri)
	if ok {
		c.fbAdmits.Add(1)
	} else {
		c.fbRejects.Add(1)
	}
	return s, ok
}

// reserveReclaim is the exact walk with lease reclaim: if the walk
// fails while sibling routes hold unconsumed budget on the route's
// hops, that budget is drained (returning its backing to the ledger)
// and the walk retried, so a reject is never caused by the plane's own
// hoarding.
func (c *Controller) reserveReclaim(ci int, ri int32) (int, bool) {
	s, ok := c.reserve(ci, ri)
	if ok || !c.fastOK {
		return s, ok
	}
	if !c.reclaimRoute(ci, ri) {
		return s, false
	}
	return c.reserve(ci, ri)
}

// reclaimRoute drains the budget of every route sharing a hop with ri
// (including ri itself), reporting whether any backing was freed.
func (c *Controller) reclaimRoute(ci int, ri int32) bool {
	freed := false
	for _, s := range c.paths[ci][ri] {
		for _, r := range c.plane[ci].members[s] {
			if c.drainEntry(ci, r) {
				freed = true
			}
		}
	}
	return freed
}

// drainEntry zeroes one route's budget and releases its backing.
func (c *Controller) drainEntry(ci int, r int32) bool {
	b := c.plane[ci].entries[r].budget.Swap(0)
	if b <= 0 {
		return false
	}
	amt := b * c.rates[ci]
	base := ci * c.nsrv
	for _, s := range c.paths[ci][r] {
		c.ledRelease(base+s, amt)
	}
	return true
}

// releaseFlow returns one flow's reservation on teardown. With the
// fast path on, the freed capacity is credited to the route's budget —
// the backing stays reserved and the next admit on the route is a
// budget hit — unless the budget is already at maxLease, in which case
// the ledger is released exactly.
func (c *Controller) releaseFlow(ci int, ri int32) {
	if c.budgetPut(ci, ri) {
		return
	}
	c.releaseFlowSlow(ci, ri)
}

func (c *Controller) releaseFlowSlow(ci int, ri int32) {
	if c.fastOK {
		e := &c.plane[ci].entries[ri]
		for b := e.budget.Load(); b < maxLease; b = e.budget.Load() {
			if e.budget.CompareAndSwap(b, b+1) {
				return
			}
		}
	}
	c.release(ci, ri)
}

// creditBudget returns n already-backed flow slots to route ri's
// budget, releasing exactly the surplus the maxLease cap refuses.
// Used by AdmitBatch to hand back unused claims.
func (c *Controller) creditBudget(ci int, ri int32, n int64) {
	e := &c.plane[ci].entries[ri]
	for n > 0 {
		b := e.budget.Load()
		room := maxLease - b
		if room <= 0 {
			break
		}
		add := n
		if add > room {
			add = room
		}
		if e.budget.CompareAndSwap(b, b+add) {
			n -= add
		}
	}
	if n > 0 {
		c.releaseN(ci, ri, n)
	}
}

// releaseN returns n flows' reservations on route ri to the ledger in
// one add per server.
func (c *Controller) releaseN(ci int, ri int32, n int64) {
	amt := n * c.rates[ci]
	base := ci * c.nsrv
	for _, s := range c.paths[ci][ri] {
		c.ledRelease(base+s, amt)
	}
}

// claimChunk takes up to want slots from route ri's budget in one CAS —
// the batch path's single atomic sub per route per batch.
func (c *Controller) claimChunk(ci int, ri int32, want int64) int64 {
	e := &c.plane[ci].entries[ri]
	for {
		b := e.budget.Load()
		if b <= 0 {
			return 0
		}
		take := want
		if take > b {
			take = b
		}
		if e.budget.CompareAndSwap(b, b-take) {
			return take
		}
	}
}

// leasedMicro sums the unconsumed budget held by routes of class ci
// traversing server s, in microbits/s. Reads race with budget movement;
// each term is >= 0, so the lease-adjusted counter never exceeds the
// raw one (see usedMicro).
func (c *Controller) leasedMicro(ci, s int) int64 {
	if !c.fastOK {
		return 0
	}
	sum := int64(0)
	p := &c.plane[ci]
	for _, r := range p.members[s] {
		sum += p.entries[r].budget.Load()
	}
	return sum * c.rates[ci]
}

// usedMicro is server s's class-ci reservation net of unconsumed
// leases — the externally meaningful "in use by admitted flows" figure
// behind Utilization, MaxUtilization, Headroom and fillAfter. Torn
// reads can only under-subtract (budgets are non-negative), so the
// result never exceeds the raw ledger value, which itself never
// exceeds the limit; at quiesce it is exact.
func (c *Controller) usedMicro(ci, s int) int64 {
	u := c.led.inUse(ci*c.nsrv+s) - c.leasedMicro(ci, s)
	if u < 0 {
		u = 0
	}
	return u
}

// SetFastPath enables or disables the headroom plane (default on).
// Like SetPolicy it must be called before the controller serves
// traffic: turning the plane off does not drain already-leased budget.
// The exact-walk configuration is what the equivalence property test
// compares the fast path against.
func (c *Controller) SetFastPath(on bool) {
	c.fastOn = on
	c.updateFastOK()
}

// updateFastOK recomputes whether admits may lease. NeedFill policies
// meter the exact fill headroom (reserve-headroom gates on it), so any
// leased-but-unconsumed budget would distort their input; they get the
// exact walk and an exact, band-cached fillAfter instead.
func (c *Controller) updateFastOK() {
	c.fastOK = c.fastOn && !c.policyFill
}

// FastPathStats returns the fast-path outcome counters. Hits are
// derived: admits not accounted as stale or fallback. The figures are
// cumulative since construction; FinishRecovery excludes replayed
// admits.
func (c *Controller) FastPathStats() FastPathStats {
	stale := c.staleAdmits.Load()
	fba := c.fbAdmits.Load()
	adm := c.admittedCount() - c.recoveredAdmits
	hits := uint64(0)
	if adm > stale+fba {
		hits = adm - stale - fba
	}
	return FastPathStats{Hits: hits, Stale: stale, Fallback: fba + c.fbRejects.Load()}
}
