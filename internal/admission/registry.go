package admission

import (
	"sync"
	"sync/atomic"
)

// Flow registry sharding parameters. FlowID bit layout, low to high:
//
//	bits  0..5   shard index (64 shards)
//	bits  6..31  slot index within the shard
//	bits 32..63  slot generation (never zero for a live ID)
//
// The shard index is encoded in the ID itself, so Teardown decodes its
// lock domain in two instructions and never probes; the generation
// makes a stale ID — same slot, since reused by another flow — fail
// with ErrUnknownFlow instead of tearing down someone else's flow.
const (
	flowShardBits = 6
	flowShards    = 1 << flowShardBits
	flowShardMask = flowShards - 1
	flowSlotBits  = 26
	flowSlotMask  = (1 << flowSlotBits) - 1
)

// flowSlot is one registry cell. A slot is live between put and take;
// gen bumps on every release so freed IDs can never resolve again.
type flowSlot struct {
	gen    uint32
	active bool
	class  int32
	route  int32
	seq    uint64 // global admission sequence, for admission-order snapshots
}

// flowShard is one lock domain. The padding keeps neighboring shards'
// mutexes off a shared cache line under many-core churn.
type flowShard struct {
	mu    sync.Mutex
	slots []flowSlot
	free  []int32
	_     [64]byte
}

// flowRegistry replaces the seed's single mutex around a
// map[FlowID]flowRecord with power-of-two lock shards. cursor is both
// the admission sequence and the shard selector: consecutive
// admissions land on different shards regardless of which goroutines
// issue them, and the steady state (slot freelist warm, freelist
// capacity grown) allocates nothing.
type flowRegistry struct {
	shards []flowShard
	cursor atomic.Uint64
}

func newFlowRegistry() *flowRegistry {
	return &flowRegistry{shards: make([]flowShard, flowShards)}
}

// putLocked allocates one slot in sh (caller holds sh.mu). shard is
// sh's own index, burned into the returned ID. ok is false only when
// the shard's 2^26 slot space is exhausted.
func (sh *flowShard) putLocked(class, route int32, seq, shard uint64) (FlowID, bool) {
	var slot int32
	if n := len(sh.free); n > 0 {
		slot = sh.free[n-1]
		sh.free = sh.free[:n-1]
	} else {
		if len(sh.slots) > flowSlotMask {
			return 0, false
		}
		sh.slots = append(sh.slots, flowSlot{gen: 1})
		slot = int32(len(sh.slots) - 1)
	}
	s := &sh.slots[slot]
	s.active = true
	s.class = class
	s.route = route
	s.seq = seq
	return FlowID(uint64(s.gen)<<32 | uint64(slot)<<flowShardBits | shard), true
}

// freeLocked releases a live slot (caller holds sh.mu and has checked
// liveness). The generation bump invalidates every outstanding copy of
// the slot's current ID.
func (sh *flowShard) freeLocked(slot int32) {
	s := &sh.slots[slot]
	s.active = false
	s.gen++
	if s.gen == 0 {
		s.gen = 1
	}
	sh.free = append(sh.free, slot)
}

// put registers one live flow and returns its ID and admission
// sequence (journaled by the WAL so recovery preserves snapshot
// order). ok is false only on shard slot exhaustion (2^26 concurrent
// flows in one shard).
func (r *flowRegistry) put(class, route int32) (FlowID, uint64, bool) {
	seq := r.cursor.Add(1)
	shard := seq & flowShardMask
	sh := &r.shards[shard]
	sh.mu.Lock()
	id, ok := sh.putLocked(class, route, seq, shard)
	sh.mu.Unlock()
	return id, seq, ok
}

// putBatch registers len(ids) flows under a single shard lock — the
// batch amortization the HTTP :batch endpoint rides on. classes,
// routeIdx and ids are parallel; the flows take the contiguous
// sequence block base..base+n-1. On slot exhaustion every slot already
// taken by this batch is released and ok is false (nothing registered).
func (r *flowRegistry) putBatch(classes, routeIdx []int32, ids []FlowID) (base uint64, ok bool) {
	n := len(ids)
	if n == 0 {
		return 0, true
	}
	base = r.cursor.Add(uint64(n)) - uint64(n) + 1
	shard := base & flowShardMask
	sh := &r.shards[shard]
	sh.mu.Lock()
	for i := 0; i < n; i++ {
		id, ok := sh.putLocked(classes[i], routeIdx[i], base+uint64(i), shard)
		if !ok {
			for j := 0; j < i; j++ {
				sh.freeLocked(int32(uint64(ids[j]) >> flowShardBits & flowSlotMask))
			}
			sh.mu.Unlock()
			return base, false
		}
		ids[i] = id
	}
	sh.mu.Unlock()
	return base, true
}

// splitFlowID decodes an ID into its shard, slot and generation
// fields (the inverse of putLocked's encoding).
func splitFlowID(id FlowID) (shard, slot, gen uint32) {
	return uint32(uint64(id) & flowShardMask),
		uint32(uint64(id) >> flowShardBits & flowSlotMask),
		uint32(uint64(id) >> 32)
}

// take resolves and frees a live flow. ok is false for IDs that were
// never issued, already torn down, or whose slot has since been reused
// (generation mismatch).
func (r *flowRegistry) take(id FlowID) (class, route int32, ok bool) {
	sh := &r.shards[uint64(id)&flowShardMask]
	slot := uint64(id) >> flowShardBits & flowSlotMask
	gen := uint32(uint64(id) >> 32)
	sh.mu.Lock()
	if slot >= uint64(len(sh.slots)) {
		sh.mu.Unlock()
		return 0, 0, false
	}
	s := &sh.slots[slot]
	if !s.active || s.gen != gen {
		sh.mu.Unlock()
		return 0, 0, false
	}
	class, route = s.class, s.route
	sh.freeLocked(int32(slot))
	sh.mu.Unlock()
	return class, route, true
}

// flowSnap is one live flow as captured by snapshot.
type flowSnap struct {
	seq          uint64
	class, route int32
}

// snapshot collects every live flow. Each shard is consistent in
// itself but shards are visited one at a time, so concurrent churn can
// be seen partially — callers that need an exact population (Migrate)
// quiesce admissions first, as the seed's single-mutex registry also
// required in practice.
func (r *flowRegistry) snapshot() []flowSnap {
	var out []flowSnap
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for j := range sh.slots {
			if s := &sh.slots[j]; s.active {
				out = append(out, flowSnap{seq: s.seq, class: s.class, route: s.route})
			}
		}
		sh.mu.Unlock()
	}
	return out
}
