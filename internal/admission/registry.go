package admission

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Flow registry sharding parameters. FlowID bit layout, low to high:
//
//	bits  0..5   shard index (64 shards)
//	bits  6..31  slot index within the shard
//	bits 32..63  slot generation (never zero for a live ID)
//
// The shard index is encoded in the ID itself, so Teardown decodes its
// slot in two instructions and never probes; the generation makes a
// stale ID — same slot, since reused by another flow — fail with
// ErrUnknownFlow instead of tearing down someone else's flow.
const (
	flowShardBits = 6
	flowShards    = 1 << flowShardBits
	flowShardMask = flowShards - 1
	flowSlotBits  = 26
	flowSlotMask  = (1 << flowSlotBits) - 1
)

// Slot state word layout, low to high:
//
//	bit   0       active (a live flow occupies the slot)
//	bit   1       busy (claimed by an in-flight put, not yet published)
//	bits  2..8    class index (7 bits)
//	bits  9..31   route index (23 bits)
//	bits 32..63   generation
//
// The whole lifecycle of a slot is transitions of this one word:
//
//	inactive(gen G)  --claim CAS-->  busy(gen G+1)
//	busy(gen G+1)    --seq store; state store-->  active(G+1, class, route)
//	active(gen G+1)  --take CAS-->  inactive(gen G+1)
//
// take is a single compare-and-swap: there is no freelist, so freeing
// a slot never touches shared structure beyond the slot itself. put
// finds free slots by probing a short window whose start rotates with
// the admission sequence — under steady churn the probe lands on the
// slot freed a moment ago.
const (
	slotActiveBit  = 1
	slotBusyBit    = 2
	slotClassShift = 2
	slotClassMask  = 0x7f
	slotRouteShift = 9
	slotRouteMask  = 0x7fffff

	// probeWindow bounds a claim probe: if no free slot appears within
	// the window the shard grows instead. This keeps the worst-case
	// claim O(1) at the price of growing past stranded free slots under
	// adversarial fragmentation (they are found again once churn brings
	// the probe start back around).
	probeWindow = 64

	// Chunked slot storage: chunk addresses are immutable once
	// published, so readers index without locks while the shard grows
	// (an append-realloc'd []regSlot would copy the array out from
	// under in-flight CAS loops).
	chunkBits = 10
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
)

// packSlotState builds an active slot's state word.
func packSlotState(gen uint32, class, route int32) uint64 {
	return uint64(gen)<<32 |
		uint64(uint32(route))<<slotRouteShift |
		uint64(uint32(class))<<slotClassShift |
		slotActiveBit
}

// regSlot is one registry cell: the state word and the flow's global
// admission sequence (journaled by the WAL so recovery preserves
// snapshot order). seq is atomic because snapshot and marshal read it
// concurrently with churn; loadSlot's retry-read pairs it with a
// consistent state.
type regSlot struct {
	state atomic.Uint64
	seq   atomic.Uint64
}

type flowChunk [chunkSize]regSlot

// flowShard is one probe domain. dir is the chunk directory — grown by
// copy-and-swap under growMu, read lock-free. length is the published
// slot count; every slot below it was stamped gen >= 1 before the
// publish (ensureLen's recovery-path slots excepted — FinishRecovery
// stamps those before traffic starts).
type flowShard struct {
	dir    atomic.Pointer[[]*flowChunk]
	length atomic.Uint32
	growMu sync.Mutex
	// c0 caches the first chunk: nearly every shard fits in one chunk,
	// and the two-load path (chunk pointer, slot) replaces the directory
	// walk (directory pointer, slice header, chunk pointer, slot).
	c0 atomic.Pointer[flowChunk]
	// Pad to exactly 64 bytes: one cache line per shard, and the shard
	// index becomes a shift instead of a multiply.
	_ [32]byte
}

// flowRegistry replaces the seed's single mutex around a
// map[FlowID]flowRecord with 64 lock-free probe shards. cursor is both
// the admission sequence and the shard selector: consecutive
// admissions land on different shards regardless of which goroutines
// issue them, and the steady state allocates nothing.
type flowRegistry struct {
	shards []flowShard
	cursor atomic.Uint64
}

func newFlowRegistry() *flowRegistry {
	r := &flowRegistry{shards: make([]flowShard, flowShards)}
	empty := make([]*flowChunk, 0)
	for i := range r.shards {
		r.shards[i].dir.Store(&empty)
	}
	return r
}

func (sh *flowShard) slotAt(i uint32) *regSlot {
	if i < chunkSize {
		return &sh.c0.Load()[i]
	}
	return &(*sh.dir.Load())[i>>chunkBits][i&chunkMask]
}

// claimAt probes for a free slot starting at start, wrapping within
// the published length n, visiting at most window slots. On success
// the slot is busy with its generation already bumped.
func (sh *flowShard) claimAt(start, n, window uint32) (s *regSlot, idx, gen uint32, ok bool) {
	i := start
	for k := uint32(0); k < window; k++ {
		s := sh.slotAt(i)
		st := s.state.Load()
		if st&(slotActiveBit|slotBusyBit) == 0 {
			g := uint32(st>>32) + 1
			if g == 0 {
				g = 1
			}
			if s.state.CompareAndSwap(st, uint64(g)<<32|slotBusyBit) {
				return s, i, g, true
			}
		}
		i++
		if i == n {
			i = 0
		}
	}
	return nil, 0, 0, false
}

// claim finds and claims a free slot: a bounded probe first, then
// growth. seq seeds the probe start so steady-state churn reuses the
// slots it just freed instead of walking the shard; the seed is folded
// into range with a mask instead of a modulo (an integer divide would
// cost as much as the claim CAS itself).
func (sh *flowShard) claim(seq uint64) (s *regSlot, idx, gen uint32, ok bool) {
	// First probe unrolled: under steady churn it lands on the slot
	// freed a moment ago and the claim succeeds immediately. Kept
	// call-free so admit inlines it.
	if n := sh.length.Load(); n > 0 {
		start := probeStart(seq, n)
		s = sh.slotAt(start)
		st := s.state.Load()
		if st&(slotActiveBit|slotBusyBit) == 0 {
			g := uint32(st>>32) + 1
			if g == 0 {
				g = 1
			}
			if s.state.CompareAndSwap(st, uint64(g)<<32|slotBusyBit) {
				return s, start, g, true
			}
		}
	}
	return sh.claimSlow(seq)
}

// probeStart folds seq into [0, n) with a mask instead of a modulo (an
// integer divide would cost as much as the claim CAS itself).
func probeStart(seq uint64, n uint32) uint32 {
	start := uint32(seq>>flowShardBits) & (1<<bits.Len32(n-1) - 1)
	if start >= n {
		return 0
	}
	return start
}

// claimSlow is the windowed probe past the first slot, then growth.
func (sh *flowShard) claimSlow(seq uint64) (s *regSlot, idx, gen uint32, ok bool) {
	if n := sh.length.Load(); n > 0 {
		start := probeStart(seq, n)
		window := n
		if window > probeWindow {
			window = probeWindow
		}
		next := start + 1
		if next == n {
			next = 0
		}
		if s, idx, gen, ok = sh.claimAt(next, n, window-1); ok {
			return s, idx, gen, true
		}
	}
	return sh.grow()
}

// grow appends one slot (and a chunk when the current one is full)
// and returns it claimed. When the shard's 2^26 slot space is
// exhausted it falls back to an unbounded probe, so ErrTooManyFlows is
// surfaced only when the shard is truly full.
func (sh *flowShard) grow() (s *regSlot, idx, gen uint32, ok bool) {
	sh.growMu.Lock()
	n := sh.length.Load()
	if n > flowSlotMask {
		sh.growMu.Unlock()
		return sh.claimAt(0, n, n)
	}
	dir := *sh.dir.Load()
	if int(n)>>chunkBits == len(dir) {
		grown := make([]*flowChunk, len(dir)+1)
		copy(grown, dir)
		grown[len(dir)] = new(flowChunk)
		sh.dir.Store(&grown)
		dir = grown
		if len(dir) == 1 {
			sh.c0.Store(dir[0])
		}
	}
	s = &dir[n>>chunkBits][n&chunkMask]
	s.state.Store(uint64(1)<<32 | slotBusyBit)
	sh.length.Store(n + 1)
	sh.growMu.Unlock()
	return s, n, 1, true
}

// ensureLen grows the shard to at least n slots without claiming any —
// the recovery path, materializing slots that replay will fill. Fresh
// slots carry state 0 until replay or FinishRecovery stamps them.
func (sh *flowShard) ensureLen(n uint32) bool {
	if n > flowSlotMask+1 {
		return false
	}
	sh.growMu.Lock()
	cur := sh.length.Load()
	if cur >= n {
		sh.growMu.Unlock()
		return true
	}
	dir := *sh.dir.Load()
	need := (int(n) + chunkMask) >> chunkBits
	if need > len(dir) {
		grown := make([]*flowChunk, need)
		copy(grown, dir)
		for i := len(dir); i < need; i++ {
			grown[i] = new(flowChunk)
		}
		sh.dir.Store(&grown)
		if len(dir) == 0 {
			sh.c0.Store(grown[0])
		}
	}
	sh.length.Store(n)
	sh.growMu.Unlock()
	return true
}

// activate publishes a claimed slot as the given flow. seq is stored
// before the state word so a concurrent loadSlot never pairs the new
// state with the old sequence.
func activate(s *regSlot, idx, gen uint32, class, route int32, seq, shard uint64) FlowID {
	s.seq.Store(seq)
	s.state.Store(packSlotState(gen, class, route))
	return FlowID(uint64(gen)<<32 | uint64(idx)<<flowShardBits | shard)
}

// put registers one live flow and returns its ID and admission
// sequence. ok is false only on shard slot exhaustion (2^26 concurrent
// flows in one shard).
func (r *flowRegistry) put(class, route int32) (FlowID, uint64, bool) {
	seq := r.cursor.Add(1)
	shard := seq & flowShardMask
	sh := &r.shards[shard]
	s, idx, gen, ok := sh.claim(seq)
	if !ok {
		return 0, seq, false
	}
	return activate(s, idx, gen, class, route, seq, shard), seq, true
}

// putBatch registers len(ids) flows in one shard — the batch
// amortization the HTTP :batch endpoint rides on. classes, routeIdx
// and ids are parallel; the flows take the contiguous sequence block
// base..base+n-1. On slot exhaustion every slot claimed by this batch
// is released and ok is false (nothing registered, no IDs issued).
func (r *flowRegistry) putBatch(classes, routeIdx []int32, ids []FlowID) (base uint64, ok bool) {
	n := len(ids)
	if n == 0 {
		return 0, true
	}
	base = r.cursor.Add(uint64(n)) - uint64(n) + 1
	shard := base & flowShardMask
	sh := &r.shards[shard]
	// Claim all n slots before issuing anything. The probe seed is
	// advanced past each claim so the batch walks forward through the
	// shard instead of re-probing its own busy slots; ids temporarily
	// stashes the raw (gen, idx) pairs.
	seed := base
	for i := 0; i < n; i++ {
		_, idx, gen, ok := sh.claim(seed)
		if !ok {
			for j := 0; j < i; j++ {
				idx := uint32(uint64(ids[j]))
				gen := uint64(ids[j]) >> 32
				sh.slotAt(idx).state.Store(gen << 32)
			}
			return base, false
		}
		ids[i] = FlowID(uint64(gen)<<32 | uint64(idx))
		seed = (uint64(idx) + 1) << flowShardBits
	}
	for i := 0; i < n; i++ {
		idx := uint32(uint64(ids[i]))
		gen := uint32(uint64(ids[i]) >> 32)
		ids[i] = activate(sh.slotAt(idx), idx, gen, classes[i], routeIdx[i], base+uint64(i), shard)
	}
	return base, true
}

// splitFlowID decodes an ID into its shard, slot and generation
// fields (the inverse of activate's encoding).
func splitFlowID(id FlowID) (shard, slot, gen uint32) {
	return uint32(uint64(id) & flowShardMask),
		uint32(uint64(id) >> flowShardBits & flowSlotMask),
		uint32(uint64(id) >> 32)
}

// take resolves and frees a live flow with a single compare-and-swap.
// ok is false for IDs that were never issued, already torn down, or
// whose slot has since been reused (generation mismatch). A lost CAS
// means a concurrent teardown of the same ID won the race — equally
// "not live": generations are monotone, so a matching state can never
// reappear once it changes.
func (r *flowRegistry) take(id FlowID) (class, route int32, ok bool) {
	sh := &r.shards[uint64(id)&flowShardMask]
	slot := uint32(uint64(id) >> flowShardBits & flowSlotMask)
	gen := uint64(id) >> 32
	if slot >= sh.length.Load() {
		return 0, 0, false
	}
	s := sh.slotAt(slot)
	st := s.state.Load()
	if st>>32 != gen || st&slotActiveBit == 0 {
		return 0, 0, false
	}
	if !s.state.CompareAndSwap(st, gen<<32) {
		return 0, 0, false
	}
	return int32(st >> slotClassShift & slotClassMask),
		int32(st >> slotRouteShift & slotRouteMask), true
}

// loadSlot returns a consistent (state, seq) pair for slot i. Busy
// slots (an in-flight put between claim and publish) and torn pairs
// are retried; the race window is two stores wide, so the loop is
// short.
func (sh *flowShard) loadSlot(i uint32) (st, seq uint64) {
	s := sh.slotAt(i)
	for {
		st = s.state.Load()
		if st&slotBusyBit != 0 {
			continue
		}
		seq = s.seq.Load()
		if s.state.Load() == st {
			return st, seq
		}
	}
}

// flowSnap is one live flow as captured by snapshot.
type flowSnap struct {
	seq          uint64
	class, route int32
}

// snapshot collects every live flow. Each slot is read consistently
// but the walk is not a point-in-time cut — concurrent churn can be
// seen partially, so callers that need an exact population (Migrate)
// quiesce admissions first, as the seed's single-mutex registry also
// required in practice.
func (r *flowRegistry) snapshot() []flowSnap {
	var out []flowSnap
	for i := range r.shards {
		sh := &r.shards[i]
		n := sh.length.Load()
		for j := uint32(0); j < n; j++ {
			st, seq := sh.loadSlot(j)
			if st&slotActiveBit != 0 {
				out = append(out, flowSnap{
					seq:   seq,
					class: int32(st >> slotClassShift & slotClassMask),
					route: int32(st >> slotRouteShift & slotRouteMask),
				})
			}
		}
	}
	return out
}
