package admission

import (
	"fmt"
	"sort"
)

// MigrationReport describes the outcome of moving an active flow
// population onto a new configuration (the paper's "modification to
// service level agreements": configuration reruns, then the run-time
// state must be carried over).
type MigrationReport struct {
	// Carried counts flows re-admitted on the new configuration.
	Carried int
	// Dropped lists the flows that no longer fit (per class, oldest
	// first were preferred for carrying).
	Dropped []DroppedFlow
}

// DroppedFlow identifies one casualty of a migration.
type DroppedFlow struct {
	Class    string
	Src, Dst int
}

// Snapshot captures the active flow population as (class, src, dst)
// triples for migration or persistence. Order is deterministic: the
// registry records each flow's global admission sequence number, so
// the snapshot comes out in admission order even though flow IDs are
// scattered across shards. Quiesce admissions first if an exact
// population is required; shards are captured one at a time.
func (c *Controller) Snapshot() []DroppedFlow {
	snaps := c.reg.snapshot()
	sort.Slice(snaps, func(a, b int) bool { return snaps[a].seq < snaps[b].seq })
	out := make([]DroppedFlow, 0, len(snaps))
	for _, sn := range snaps {
		rt := c.classes[sn.class].Routes.Route(int(sn.route))
		out = append(out, DroppedFlow{
			Class: c.classes[sn.class].Class.Name,
			Src:   rt.Src,
			Dst:   rt.Dst,
		})
	}
	return out
}

// Migrate re-admits a snapshot of flows onto this (fresh) controller in
// admission order. Flows that no longer fit — the new routes may be
// longer or the new α smaller — are reported as dropped rather than
// silently lost; the operator decides whether that SLA change is
// acceptable before cutting traffic over.
func (c *Controller) Migrate(snapshot []DroppedFlow) (*MigrationReport, error) {
	if st := c.Stats(); st.Active != 0 {
		return nil, fmt.Errorf("admission: migrate onto a controller with %d active flows", st.Active)
	}
	rep := &MigrationReport{}
	for _, f := range snapshot {
		if _, err := c.Admit(f.Class, f.Src, f.Dst); err != nil {
			rep.Dropped = append(rep.Dropped, f)
			continue
		}
		rep.Carried++
	}
	return rep, nil
}
