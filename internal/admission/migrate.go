package admission

import (
	"fmt"
	"sort"
)

// MigrationReport describes the outcome of moving an active flow
// population onto a new configuration (the paper's "modification to
// service level agreements": configuration reruns, then the run-time
// state must be carried over).
type MigrationReport struct {
	// Carried counts flows re-admitted on the new configuration.
	Carried int
	// Dropped lists the flows that no longer fit (per class, oldest
	// first were preferred for carrying).
	Dropped []DroppedFlow
}

// DroppedFlow identifies one casualty of a migration.
type DroppedFlow struct {
	Class    string
	Src, Dst int
}

// Snapshot captures the active flow population as (class, src, dst)
// triples for migration or persistence. Order is deterministic
// (by flow ID, i.e. admission order).
func (c *Controller) Snapshot() []DroppedFlow {
	c.mu.Lock()
	ids := make([]FlowID, 0, len(c.flows))
	for id := range c.flows {
		ids = append(ids, id)
	}
	recs := make(map[FlowID]flowRecord, len(c.flows))
	for id, rec := range c.flows {
		recs[id] = rec
	}
	c.mu.Unlock()
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	out := make([]DroppedFlow, 0, len(ids))
	for _, id := range ids {
		rec := recs[id]
		rt := c.classes[rec.class].Routes.Route(int(rec.route))
		out = append(out, DroppedFlow{
			Class: c.classes[rec.class].Class.Name,
			Src:   rt.Src,
			Dst:   rt.Dst,
		})
	}
	return out
}

// Migrate re-admits a snapshot of flows onto this (fresh) controller in
// admission order. Flows that no longer fit — the new routes may be
// longer or the new α smaller — are reported as dropped rather than
// silently lost; the operator decides whether that SLA change is
// acceptable before cutting traffic over.
func (c *Controller) Migrate(snapshot []DroppedFlow) (*MigrationReport, error) {
	if st := c.Stats(); st.Active != 0 {
		return nil, fmt.Errorf("admission: migrate onto a controller with %d active flows", st.Active)
	}
	rep := &MigrationReport{}
	for _, f := range snapshot {
		if _, err := c.Admit(f.Class, f.Src, f.Dst); err != nil {
			rep.Dropped = append(rep.Dropped, f)
			continue
		}
		rep.Carried++
	}
	return rep, nil
}
