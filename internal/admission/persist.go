package admission

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
)

// This file is the controller's durability surface. The wal package
// stays stdlib-only and dependency-free by speaking builtin types:
// MarshalRegistry matches wal's WriteSnapshot capture callback, and
// RestoreSnapshot/ReplayAdmit/ReplayTeardown satisfy wal.Handler
// structurally. FinishRecovery materializes the replayed state —
// freelists, bandwidth ledger, counters, cursor — and must run after
// wal.Recover and before the controller serves traffic.

// ErrRestore wraps every recovery-side failure: a snapshot payload
// that does not parse, replay records that reference unknown classes
// or routes, or a recovered population that exceeds the configured
// capacity. All of them mean durable state and configuration disagree.
var ErrRestore = errors.New("admission: restore failed")

// Registry snapshot payload layout (inside the wal snapshot envelope,
// which carries its own CRC and fingerprint):
//
//	magic "UBREG001" | u64 fingerprint | u64 cursor |
//	u64 admitted | u64 rejected | u64 tornDown | u64 noRoute |
//	u64 maxActive | u32 nclasses | u32 nservers |
//	i64 used[nclasses*nservers] |
//	64 × ( u32 nslots | nslots × (u32 gen | u8 active | u32 class |
//	                              u32 route | u64 seq) )
//
// Free slots are serialized too — their generations are what keep a
// stale FlowID failing with ErrUnknownFlow across a restart. The used
// array is a debug cross-check: the ledger is rebuilt authoritatively
// from the live flows, and the stored values are only compared when
// replay applied nothing on top of the snapshot.
const (
	regMagic     = "UBREG001"
	regHeaderLen = 8 + 8 + 8 + 4*8 + 8 + 4 + 4
	regSlotLen   = 4 + 1 + 4 + 4 + 8
)

// Fingerprint hashes the controller's effective configuration —
// topology capacities, classes, utilization assignments and resolved
// routes — with FNV-1a. The WAL stamps it into every segment header,
// epoch record and snapshot so recovery refuses durable state written
// under a different configuration instead of reserving the wrong
// resources.
func (c *Controller) Fingerprint() uint64 {
	h := fnv.New64a()
	var scratch [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}
	u64(uint64(c.net.NumRouters()))
	nsrv := c.net.NumServers()
	u64(uint64(nsrv))
	for s := 0; s < nsrv; s++ {
		f64(c.net.ServerCapacity(s))
	}
	u64(uint64(len(c.classes)))
	for ci, cc := range c.classes {
		str(cc.Class.Name)
		f64(cc.Class.Bucket.Burst)
		f64(cc.Class.Bucket.Rate)
		f64(cc.Class.Deadline)
		u64(uint64(int64(cc.Class.Priority)))
		f64(cc.Alpha)
		paths := c.paths[ci]
		u64(uint64(len(paths)))
		for ri, servers := range paths {
			rt := cc.Routes.Route(ri)
			u64(uint64(int64(rt.Src)))
			u64(uint64(int64(rt.Dst)))
			u64(uint64(len(servers)))
			for _, s := range servers {
				u64(uint64(int64(s)))
			}
		}
	}
	return h.Sum64()
}

// MarshalRegistry captures the full registry — live and free slots,
// counters, ledger — as a snapshot payload, returning the admission
// cursor at capture. The signature matches wal's WriteSnapshot capture
// callback, so a snapshot is `log.WriteSnapshot(ctrl.MarshalRegistry)`.
// Shards are captured one at a time; concurrent churn is reconciled on
// recovery by the seq/generation replay gates, and counters are exact
// when the capture runs quiesced (the daemon snapshots after draining).
func (c *Controller) MarshalRegistry() (seq uint64, payload []byte) {
	r := c.reg
	cursor := r.cursor.Load()
	nclasses := len(c.classes)
	nsrv := c.net.NumServers()
	buf := make([]byte, 0, regHeaderLen+nclasses*nsrv*8+flowShards*4)
	buf = append(buf, regMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, c.Fingerprint())
	buf = binary.LittleEndian.AppendUint64(buf, cursor)
	buf = binary.LittleEndian.AppendUint64(buf, cursor-c.admitGaps.Load())
	buf = binary.LittleEndian.AppendUint64(buf, c.rejected.Load())
	buf = binary.LittleEndian.AppendUint64(buf, c.tornDown.Load())
	buf = binary.LittleEndian.AppendUint64(buf, c.noRoute.Load())
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.maxActive.Load()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(nclasses))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(nsrv))
	for ci := 0; ci < nclasses; ci++ {
		for s := 0; s < nsrv; s++ {
			// Lease-adjusted: unconsumed headroom-plane budget is backed
			// by the raw ledger but belongs to no admitted flow, and
			// recovery rebuilds the ledger from flows alone. At quiesce
			// the adjustment is exact, which is when the cross-check in
			// FinishRecovery compares against these values.
			used := c.led.inUse(ci*nsrv+s) - c.leasedMicro(ci, s)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(used))
		}
	}
	for i := range r.shards {
		sh := &r.shards[i]
		n := sh.length.Load()
		buf = binary.LittleEndian.AppendUint32(buf, n)
		for j := uint32(0); j < n; j++ {
			st, seq := sh.loadSlot(j)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(st>>32))
			if st&slotActiveBit != 0 {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(st>>slotClassShift&slotClassMask))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(st>>slotRouteShift&slotRouteMask))
			buf = binary.LittleEndian.AppendUint64(buf, seq)
		}
	}
	return cursor, buf
}

// restoreState is the recovery-window scratch: counters carried from
// the snapshot and bookkeeping of what replay actually applied.
type restoreState struct {
	cursor     uint64 // stored admission cursor (0 when no snapshot)
	maxSeq     uint64 // highest admit sequence seen during replay
	admitted   uint64
	rejected   uint64
	tornDown   uint64
	noRoute    uint64
	maxActive  int64
	storedUsed []int64 // ledger as captured, for the quiesced cross-check

	appliedAdmits    uint64 // replay records that changed state
	appliedTeardowns uint64
	sawSnapshot      bool
}

// beginRestore opens the recovery window, refusing if the controller
// has already served traffic — replay into live state would corrupt
// both.
func (c *Controller) beginRestore() (*restoreState, error) {
	if c.restoring != nil {
		return c.restoring, nil
	}
	if c.reg.cursor.Load() != 0 {
		return nil, fmt.Errorf("%w: controller already has state", ErrRestore)
	}
	c.restoring = &restoreState{}
	return c.restoring, nil
}

// RestoreSnapshot loads a MarshalRegistry payload into the registry.
// It must be the first recovery call (wal.Recover guarantees this);
// replayed log records then layer on top. Ledger, freelists and
// counters are materialized later by FinishRecovery.
func (c *Controller) RestoreSnapshot(payload []byte) error {
	if c.restoring != nil {
		return fmt.Errorf("%w: snapshot after replay began", ErrRestore)
	}
	rs, err := c.beginRestore()
	if err != nil {
		return err
	}
	rs.sawSnapshot = true
	if len(payload) < regHeaderLen {
		return fmt.Errorf("%w: payload %d bytes, header is %d", ErrRestore, len(payload), regHeaderLen)
	}
	if string(payload[:8]) != regMagic {
		return fmt.Errorf("%w: bad registry magic %q", ErrRestore, payload[:8])
	}
	if fp := binary.LittleEndian.Uint64(payload[8:]); fp != c.Fingerprint() {
		return fmt.Errorf("%w: registry fingerprint %016x, controller %016x", ErrRestore, fp, c.Fingerprint())
	}
	rs.cursor = binary.LittleEndian.Uint64(payload[16:])
	rs.admitted = binary.LittleEndian.Uint64(payload[24:])
	rs.rejected = binary.LittleEndian.Uint64(payload[32:])
	rs.tornDown = binary.LittleEndian.Uint64(payload[40:])
	rs.noRoute = binary.LittleEndian.Uint64(payload[48:])
	rs.maxActive = int64(binary.LittleEndian.Uint64(payload[56:]))
	nclasses := binary.LittleEndian.Uint32(payload[64:])
	nsrv := binary.LittleEndian.Uint32(payload[68:])
	if int(nclasses) != len(c.classes) || int(nsrv) != c.net.NumServers() {
		return fmt.Errorf("%w: snapshot is %d classes × %d servers, controller is %d × %d",
			ErrRestore, nclasses, nsrv, len(c.classes), c.net.NumServers())
	}
	off := regHeaderLen
	n := int(nclasses) * int(nsrv)
	if len(payload) < off+8*n {
		return fmt.Errorf("%w: payload truncated in ledger", ErrRestore)
	}
	rs.storedUsed = make([]int64, n)
	for i := 0; i < n; i++ {
		rs.storedUsed[i] = int64(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
	}
	for i := 0; i < flowShards; i++ {
		if len(payload) < off+4 {
			return fmt.Errorf("%w: payload truncated at shard %d", ErrRestore, i)
		}
		nslots := binary.LittleEndian.Uint32(payload[off:])
		off += 4
		if nslots > flowSlotMask+1 {
			return fmt.Errorf("%w: shard %d claims %d slots", ErrRestore, i, nslots)
		}
		if len(payload) < off+regSlotLen*int(nslots) {
			return fmt.Errorf("%w: payload truncated in shard %d slots", ErrRestore, i)
		}
		sh := &c.reg.shards[i]
		sh.ensureLen(nslots)
		for j := uint32(0); j < nslots; j++ {
			gen := binary.LittleEndian.Uint32(payload[off:])
			active := payload[off+4] != 0
			class := int32(binary.LittleEndian.Uint32(payload[off+5:]))
			route := int32(binary.LittleEndian.Uint32(payload[off+9:]))
			seq := binary.LittleEndian.Uint64(payload[off+13:])
			off += regSlotLen
			if gen == 0 {
				return fmt.Errorf("%w: shard %d slot %d has generation 0", ErrRestore, i, j)
			}
			if active {
				if err := c.checkClassRoute(class, route); err != nil {
					return fmt.Errorf("%w (shard %d slot %d)", err, i, j)
				}
			}
			s := sh.slotAt(j)
			s.seq.Store(seq)
			if active {
				s.state.Store(packSlotState(gen, class, route))
			} else {
				s.state.Store(uint64(gen) << 32)
			}
		}
	}
	if off != len(payload) {
		return fmt.Errorf("%w: %d trailing bytes after shard %d", ErrRestore, len(payload)-off, flowShards-1)
	}
	return nil
}

// checkClassRoute bounds-checks a durable (class, route) pair against
// the live configuration.
func (c *Controller) checkClassRoute(class, route int32) error {
	if class < 0 || int(class) >= len(c.classes) {
		return fmt.Errorf("%w: class index %d out of range", ErrRestore, class)
	}
	if route < 0 || int(route) >= len(c.paths[class]) {
		return fmt.Errorf("%w: route index %d out of range for class %d", ErrRestore, route, class)
	}
	return nil
}

// ReplayAdmit applies one admit record from the log tail. Replay is
// at-least-once on top of the snapshot, and group commit can reorder a
// slot's reuse ahead of its predecessor's teardown in the log, so the
// gate is the admission sequence: a record strictly newer than the
// slot's stored sequence wins; anything else is already subsumed.
func (c *Controller) ReplayAdmit(id, seq uint64, class, route int32) error {
	rs, err := c.beginRestore()
	if err != nil {
		return err
	}
	if err := c.checkClassRoute(class, route); err != nil {
		return fmt.Errorf("%w (admit seq %d)", err, seq)
	}
	shard, slot, gen := splitFlowID(FlowID(id))
	if gen == 0 || seq == 0 {
		return fmt.Errorf("%w: admit record id %#x seq %d malformed", ErrRestore, id, seq)
	}
	if slot > flowSlotMask {
		return fmt.Errorf("%w: admit record slot %d out of range", ErrRestore, slot)
	}
	if seq > rs.maxSeq {
		rs.maxSeq = seq
	}
	sh := &c.reg.shards[shard]
	sh.ensureLen(slot + 1)
	s := sh.slotAt(slot)
	if seq <= s.seq.Load() {
		return nil // subsumed by the snapshot (or a newer occupant)
	}
	s.seq.Store(seq)
	s.state.Store(packSlotState(gen, class, route))
	rs.appliedAdmits++
	return nil
}

// ReplayTeardown applies one teardown record, gated on the slot
// generation burned into the flow ID: a record for a previous occupant
// of a since-reused slot matches nothing and is skipped.
func (c *Controller) ReplayTeardown(id uint64) error {
	rs, err := c.beginRestore()
	if err != nil {
		return err
	}
	shard, slot, gen := splitFlowID(FlowID(id))
	sh := &c.reg.shards[shard]
	if slot >= sh.length.Load() {
		return nil
	}
	s := sh.slotAt(slot)
	st := s.state.Load()
	if st&slotActiveBit == 0 || uint32(st>>32) != gen {
		return nil
	}
	ng := gen + 1
	if ng == 0 {
		ng = 1
	}
	s.state.Store(uint64(ng) << 32)
	rs.appliedTeardowns++
	return nil
}

// FinishRecovery materializes the replayed registry: every live flow
// re-reserves its route on the (empty) ledger, counters and the
// admission cursor are installed, and slots replay extended past but
// never touched get their virgin generation. A live flow that no
// longer fits means durable state and configuration disagree despite
// the fingerprint — that is corruption, not an admission decision, and
// recovery fails rather than silently dropping an acked SLA. Safe to
// call when nothing was recovered.
func (c *Controller) FinishRecovery() error {
	rs := c.restoring
	if rs == nil {
		return nil
	}
	c.restoring = nil
	var live int64
	for i := range c.reg.shards {
		sh := &c.reg.shards[i]
		n := sh.length.Load()
		for j := uint32(0); j < n; j++ {
			s := sh.slotAt(j)
			st := s.state.Load()
			if st>>32 == 0 {
				// Slot materialized by extension in ReplayAdmit but never
				// admitted into: give it the virgin generation.
				s.state.Store(1 << 32)
				continue
			}
			if st&slotActiveBit == 0 {
				continue
			}
			live++
			class := int32(st >> slotClassShift & slotClassMask)
			route := int32(st >> slotRouteShift & slotRouteMask)
			if bn, ok := c.reserve(int(class), route); !ok {
				return fmt.Errorf("%w: recovered flow (class %d route %d seq %d) exceeds capacity at server %d",
					ErrRestore, class, route, s.seq.Load(), bn)
			}
		}
	}
	if rs.sawSnapshot && rs.appliedAdmits == 0 && rs.appliedTeardowns == 0 {
		// Nothing layered on top of the snapshot: the rebuilt ledger must
		// equal the captured one exactly.
		for i, want := range rs.storedUsed {
			if got := c.led.inUse(i); got != want {
				return fmt.Errorf("%w: ledger cross-check failed at index %d: rebuilt %d, snapshot %d",
					ErrRestore, i, got, want)
			}
		}
	}
	cursor := rs.cursor
	if rs.maxSeq > cursor {
		cursor = rs.maxSeq
	}
	c.reg.cursor.Store(cursor)
	// Admitted is derived as cursor − admitGaps; anchor the derivation
	// to the recovered counter by absorbing the pre-crash difference
	// (rejected cursor ticks, and any cursor advance from maxSeq) into
	// the gap counter.
	c.admitGaps.Store(cursor - (rs.admitted + rs.appliedAdmits))
	// Replayed admits predate the fast-path counters: exclude them from
	// the derived hit figure (see FastPathStats).
	c.recoveredAdmits = rs.admitted + rs.appliedAdmits
	c.rejected.Store(rs.rejected)
	c.tornDown.Store(rs.tornDown + rs.appliedTeardowns)
	c.noRoute.Store(rs.noRoute)
	max := rs.maxActive
	if live > max {
		max = live
	}
	c.maxActive.Store(max)
	return nil
}
