package admission

import (
	"testing"

	"ubac/internal/delay"
	"ubac/internal/routing"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

func controllerAt(t *testing.T, net *topology.Network, alpha float64) *Controller {
	t.Helper()
	m := delay.NewModel(net)
	set, _, err := routing.SP{}.Select(m, routing.Request{Class: traffic.Voice(), Alpha: alpha})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(net, []ClassConfig{{Class: traffic.Voice(), Alpha: alpha, Routes: set}}, AtomicLedger)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSnapshotOrderAndContent(t *testing.T) {
	net, err := topology.Line(3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	c := controllerAt(t, net, 0.3)
	pairs := [][2]int{{0, 2}, {2, 0}, {0, 1}}
	for _, p := range pairs {
		if _, err := c.Admit("voice", p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	snap := c.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot = %d entries", len(snap))
	}
	for i, p := range pairs {
		if snap[i].Src != p[0] || snap[i].Dst != p[1] || snap[i].Class != "voice" {
			t.Errorf("snapshot[%d] = %+v, want %v", i, snap[i], p)
		}
	}
}

func TestMigrateCarriesEverythingWhenRoomy(t *testing.T) {
	net, err := topology.Line(3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	old := controllerAt(t, net, 0.2)
	for i := 0; i < 100; i++ {
		if _, err := old.Admit("voice", 0, 2); err != nil {
			t.Fatal(err)
		}
	}
	snap := old.Snapshot()
	// SLA upgrade: more utilization.
	fresh := controllerAt(t, net, 0.4)
	rep, err := fresh.Migrate(snap)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Carried != 100 || len(rep.Dropped) != 0 {
		t.Errorf("carried=%d dropped=%d", rep.Carried, len(rep.Dropped))
	}
	if fresh.Stats().Active != 100 {
		t.Errorf("active = %d", fresh.Stats().Active)
	}
}

func TestMigrateDropsOverflowOnDowngrade(t *testing.T) {
	net, err := topology.Line(3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	old := controllerAt(t, net, 0.4)
	admitted := 0
	for {
		if _, err := old.Admit("voice", 0, 2); err != nil {
			break
		}
		admitted++
	}
	snap := old.Snapshot()
	// SLA downgrade: half the utilization — about half the flows fit.
	fresh := controllerAt(t, net, 0.2)
	rep, err := fresh.Migrate(snap)
	if err != nil {
		t.Fatal(err)
	}
	wantCap, err := fresh.Headroom("voice", 0, 2)
	if err == nil && wantCap != 0 {
		t.Errorf("migration left headroom %d unexploited", wantCap)
	}
	if rep.Carried+len(rep.Dropped) != admitted {
		t.Errorf("carried %d + dropped %d != %d", rep.Carried, len(rep.Dropped), admitted)
	}
	if rep.Carried == 0 || len(rep.Dropped) == 0 {
		t.Errorf("expected a split: %+v", rep)
	}
	// Each dropped entry names the pair.
	for _, d := range rep.Dropped {
		if d.Src != 0 || d.Dst != 2 || d.Class != "voice" {
			t.Errorf("dropped = %+v", d)
		}
	}
}

func TestMigrateRefusesDirtyTarget(t *testing.T) {
	net, err := topology.Line(3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	c := controllerAt(t, net, 0.3)
	if _, err := c.Admit("voice", 0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Migrate(nil); err == nil {
		t.Error("migration onto an active controller accepted")
	}
}
