//go:build !race

package admission

// raceEnabled reports whether the race detector is instrumenting this
// build. Zero-allocation assertions only hold uninstrumented: -race
// adds bookkeeping allocations (e.g. in sync.Pool) that say nothing
// about the production fast path.
const raceEnabled = false
