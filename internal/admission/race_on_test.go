//go:build race

package admission

// raceEnabled reports whether the race detector is instrumenting this
// build; see race_off_test.go.
const raceEnabled = true
