package admission

// This file is the controller surface the cluster plane stands on: an
// authority node reserves whole blocks of per-(class, route) capacity
// on its ledger and delegates them to edge admitters as leases. A
// block reservation is exactly the headroom plane's wholesale lease —
// the paper's utilization test applied n flows at a time, all hops or
// none — so capacity an edge holds is always already backed on the
// authority's ledger and the utilization bound holds cluster-wide by
// construction: no interleaving of edge admits can exceed what was
// reserved here first.

// ClassCount returns the number of configured classes; indices below
// it are valid ci arguments everywhere in this file.
func (c *Controller) ClassCount() int { return len(c.classes) }

// RouteCount returns the number of configured routes of class ci.
func (c *Controller) RouteCount(ci int) int {
	if ci < 0 || ci >= len(c.classes) {
		return 0
	}
	return len(c.paths[ci])
}

// RouteIndexFor resolves (src, dst) to class ci's route index, -1 if
// the pair is unroutable — the exported form of the lookup Admit uses,
// so an edge plane and the controller agree on what ErrNoRoute means.
func (c *Controller) RouteIndexFor(ci int, src, dst int) int32 {
	if ci < 0 || ci >= len(c.classes) {
		return -1
	}
	return c.routeIndex(ci, src, dst)
}

// ReserveBlock reserves n flow-slots of class-ci capacity on every hop
// of route ri, all-or-nothing. It returns false when any hop lacks the
// headroom — nothing is held on a failed reserve.
func (c *Controller) ReserveBlock(ci int, ri int32, n int64) bool {
	if ci < 0 || ci >= len(c.classes) || ri < 0 || int(ri) >= len(c.paths[ci]) || n <= 0 {
		return false
	}
	return c.tryLease(ci, ri, n)
}

// ReleaseBlock returns n flow-slots of class-ci backing on route ri to
// the ledger. Releasing more than was reserved is a caller bug that
// corrupts accounting, exactly like a double Teardown would.
func (c *Controller) ReleaseBlock(ci int, ri int32, n int64) {
	if ci < 0 || ci >= len(c.classes) || ri < 0 || int(ri) >= len(c.paths[ci]) || n <= 0 {
		return
	}
	c.releaseN(ci, ri, n)
}

// BlockHeadroom returns how many additional class-ci flows route ri
// could hold right now by the exact per-server walk (leases count as
// used). Grant sizing uses it to avoid proposing blocks that cannot
// reserve.
func (c *Controller) BlockHeadroom(ci int, ri int32) int64 {
	if ci < 0 || ci >= len(c.classes) || ri < 0 || int(ri) >= len(c.paths[ci]) {
		return 0
	}
	return c.walkHeadroom(ci, ri)
}

// ServerCount returns the number of servers in the topology.
func (c *Controller) ServerCount() int { return c.nsrv }

// LedgerInUseMicro returns the raw ledger reservation of class ci on
// server s in microbit units — admitted flows plus leased backing —
// and LimitMicro the verified α·C limit it must never exceed. The
// cluster safety property test asserts the pair's invariant directly.
func (c *Controller) LedgerInUseMicro(ci, s int) int64 {
	if ci < 0 || ci >= len(c.classes) || s < 0 || s >= c.nsrv {
		return 0
	}
	return c.led.inUse(ci*c.nsrv + s)
}

// LimitMicro returns the per-(class, server) utilization limit in
// microbit units.
func (c *Controller) LimitMicro(ci, s int) int64 {
	if ci < 0 || ci >= len(c.classes) || s < 0 || s >= c.nsrv {
		return 0
	}
	return c.limits[ci][s]
}

// RouteServers returns the server hops of class ci's route ri; the
// slice is the controller's own — callers must not modify it.
func (c *Controller) RouteServers(ci int, ri int32) []int {
	if ci < 0 || ci >= len(c.classes) || ri < 0 || int(ri) >= len(c.paths[ci]) {
		return nil
	}
	return c.paths[ci][ri]
}
