// Package admission implements the paper's run-time admission control
// (Section 4, component 2). After configuration has established a safe
// per-class utilization assignment α_i and a route for every
// (class, src, dst), admitting a flow reduces to a utilization test on
// the link servers along its route: the flow of rate ρ_i is admitted iff
// every server still has ρ_i of its reserved α_i·C left. The test is
// O(path length) and needs no per-flow state in the core — this is the
// scalability property the paper is built around.
//
// Two bandwidth ledgers are provided: a per-server mutex ledger and a
// lock-free compare-and-swap ledger. Both admit concurrently from many
// goroutines; BenchmarkAdmissionContention compares them at 1/4/16
// goroutines on shared and disjoint routes. Flow identity lives in a
// sharded slot registry (see registry.go): the admit/teardown fast
// path takes only per-shard and per-server locks, allocates nothing in
// steady state, and AdmitBatch/TeardownBatch amortize counter and
// telemetry traffic over whole batches.
package admission

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ubac/internal/policy"
	"ubac/internal/routes"
	"ubac/internal/telemetry"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

// Sentinel errors returned by Admit and Teardown.
var (
	// ErrNoRoute means the configuration has no route for the requested
	// (class, src, dst).
	ErrNoRoute = errors.New("admission: no configured route")
	// ErrCapacity means some server on the route lacks headroom.
	ErrCapacity = errors.New("admission: insufficient capacity along route")
	// ErrUnknownFlow means the flow ID is not active.
	ErrUnknownFlow = errors.New("admission: unknown flow")
	// ErrUnknownClass means the class name is not configured.
	ErrUnknownClass = errors.New("admission: unknown class")
	// ErrNoDelayBounds means no verified delay vector has been installed
	// for the class (SetDelayBounds was never called).
	ErrNoDelayBounds = errors.New("admission: no delay bounds installed")
	// ErrTooManyFlows means a registry shard ran out of slot space
	// (2^26 concurrent flows per shard); nothing was reserved.
	ErrTooManyFlows = errors.New("admission: too many active flows")
	// ErrShuttingDown means the durability journal has been closed (the
	// daemon is draining): an Admit returning it reserved nothing; a
	// Teardown returning it took effect in memory but was not recorded
	// durably, so the flow may reappear after recovery and the caller
	// should retry the teardown then. The daemon maps it to HTTP 503.
	ErrShuttingDown = errors.New("admission: shutting down")
	// ErrPolicyRate means the installed admission policy's token bucket
	// had no tokens for the tenant; nothing was reserved. The daemon
	// maps it to HTTP 429.
	ErrPolicyRate = errors.New("admission: policy rate limit exceeded")
	// ErrPolicyShed means the installed SLO gate shed the flow under
	// cluster load; nothing was reserved. HTTP 429.
	ErrPolicyShed = errors.New("admission: policy shed under load")
	// ErrPolicyReserve means admitting would eat into the capacity
	// reserve the installed policy holds for protected traffic; nothing
	// was reserved. HTTP 503 (a capacity condition).
	ErrPolicyReserve = errors.New("admission: policy capacity reserve")
)

// LedgerKind selects the bandwidth accounting implementation.
type LedgerKind int

const (
	// LockedLedger guards each server's counters with a mutex.
	LockedLedger LedgerKind = iota
	// AtomicLedger uses lock-free compare-and-swap counters.
	AtomicLedger
)

// ledger tracks reserved bandwidth per (server, class) in microbits/s.
// The mutating methods return the resulting counter value so the
// controller's band-epoch wrappers (ledReserve/ledRelease in
// headroom.go) can detect band crossings without a second read.
type ledger interface {
	// tryReserve atomically adds rate if the result stays within limit,
	// returning the new value on success.
	tryReserve(idx int, rate, limit int64) (int64, bool)
	// release subtracts rate and returns the new value.
	release(idx int, rate int64) int64
	// inUse reads the current reservation.
	inUse(idx int) int64
}

type lockedLedger struct {
	mu   []sync.Mutex
	used []int64
}

func newLockedLedger(n int) *lockedLedger {
	return &lockedLedger{mu: make([]sync.Mutex, n), used: make([]int64, n)}
}

func (l *lockedLedger) tryReserve(idx int, rate, limit int64) (int64, bool) {
	l.mu[idx].Lock()
	defer l.mu[idx].Unlock()
	if l.used[idx]+rate > limit {
		return 0, false
	}
	l.used[idx] += rate
	return l.used[idx], true
}

func (l *lockedLedger) release(idx int, rate int64) int64 {
	l.mu[idx].Lock()
	l.used[idx] -= rate
	nu := l.used[idx]
	l.mu[idx].Unlock()
	return nu
}

func (l *lockedLedger) inUse(idx int) int64 {
	l.mu[idx].Lock()
	defer l.mu[idx].Unlock()
	return l.used[idx]
}

type atomicLedger struct {
	used []atomic.Int64
}

func newAtomicLedger(n int) *atomicLedger {
	return &atomicLedger{used: make([]atomic.Int64, n)}
}

func (l *atomicLedger) tryReserve(idx int, rate, limit int64) (int64, bool) {
	for {
		cur := l.used[idx].Load()
		if cur+rate > limit {
			return 0, false
		}
		if l.used[idx].CompareAndSwap(cur, cur+rate) {
			return cur + rate, true
		}
	}
}

func (l *atomicLedger) release(idx int, rate int64) int64 {
	return l.used[idx].Add(-rate)
}

func (l *atomicLedger) inUse(idx int) int64 {
	return l.used[idx].Load()
}

// microbit converts bits/s to the ledger's integer microbits/s unit.
func microbit(bps float64) int64 { return int64(bps * 1e6) }

// ClassConfig binds one configured class to its utilization assignment
// and route set (the outputs of the configuration module).
type ClassConfig struct {
	Class  traffic.Class
	Alpha  float64
	Routes *routes.Set
}

// FlowID identifies an admitted flow.
type FlowID uint64

// Journal is the durability hook: a write-ahead log that records every
// admit and teardown after it has taken effect in memory but before
// Admit/Teardown return. *wal.Log satisfies it structurally — the
// methods use only builtin types so admission does not import wal. In
// sync mode an Append call returns only after the record is fsynced; in
// async mode it returns once the record is staged for the next group
// commit. Any Append error is treated as the journal shutting down or
// failed: the admit is unwound and surfaced as ErrShuttingDown.
type Journal interface {
	AppendAdmit(id, seq uint64, class, route int32) error
	AppendAdmitBatch(ids []uint64, seqBase uint64, classes, routes []int32) error
	AppendTeardown(id uint64) error
	AppendTeardownBatch(ids []uint64) error
}

// Stats are cumulative controller counters.
type Stats struct {
	Admitted uint64
	Rejected uint64
	// RejectedPolicy counts flows refused by the installed admission
	// policy before the utilization test ran (also included in
	// Rejected).
	RejectedPolicy uint64
	TornDown       uint64
	NoRoute        uint64
	Active         int64
	MaxActive      int64
}

// Controller is the run-time admission control module. All methods are
// safe for concurrent use.
type Controller struct {
	net     *topology.Network
	classes []ClassConfig
	byName  map[string]int
	nsrv    int // cached net.NumServers()

	// routeOf[class][src*R+dst] is the configured route index, -1 if
	// absent.
	routeOf [][]int32

	led    ledger
	limits [][]int64 // [class][server] reserved microbits/s
	rates  []int64   // [class] per-flow rate, microbits/s
	// paths[class][route] is the route's server index slice, resolved
	// once at construction so the admit fast path never touches the
	// route set.
	paths [][][]int

	// delayMu guards the verified per-server delay vectors; the caches
	// handle their own synchronization. Both are populated lazily by
	// SetDelayBounds (typically from core.Deployment.Controller).
	delayMu    sync.RWMutex
	delayD     [][]float64          // [class] verified per-server bounds, seconds
	delayCache []*routes.DelayCache // [class] epoch-keyed route-sum cache

	// reg is the sharded flow registry (registry.go); it replaces the
	// seed's global mutex around a map[FlowID]flowRecord.
	reg *flowRegistry

	// Headroom plane (headroom.go): per-(class, route) admission budgets
	// plus the banded-invalidation epochs behind the cached read paths.
	// fastOn is the SetFastPath master switch; fastOK additionally
	// requires no NeedFill policy. Both are read unsynchronized on the
	// hot path — configure before serving traffic.
	plane     []classPlane
	bandEpoch []atomic.Uint32 // [class*nsrv+server] band-crossing epoch
	bandShift []uint8         // [class*nsrv+server] log2 band width
	fastOn    bool
	fastOK    bool
	// Fast-path outcome counters (see FastPathStats): stale = admits
	// that went through a refill, fb* = exact-walk verdicts.
	staleAdmits, fbAdmits, fbRejects atomic.Uint64
	// recoveredAdmits is the admitted counter restored by
	// FinishRecovery; replayed admits predate the plane's counters.
	recoveredAdmits uint64
	// hint caches the last classIndex lookup; hintArr holds the
	// preallocated (name, index) pairs it points into.
	hintArr []classHint
	hint    atomic.Pointer[classHint]

	// Two counters are derived instead of maintained, removing three
	// atomic adds from the admit/teardown cycle: Admitted is the
	// admission cursor minus admitGaps (cursor ticks that never became
	// an admit: registry exhaustion, journal unwinds, failed batch
	// registration — all cold paths), and Active is admitted − tornDown
	// (every unwind path increments neither). Both are exact whenever
	// the controller is quiescent and within the in-flight window
	// otherwise.
	admitGaps                   atomic.Uint64
	rejected, tornDown, noRoute atomic.Uint64
	policyRejected              atomic.Uint64
	maxActive                   atomic.Int64

	// policy, when non-nil, is consulted before the utilization test on
	// every admit; a deny refuses the flow with nothing reserved and
	// nothing journaled. AlwaysAdmit is stripped to nil by SetPolicy so
	// the default deployment pays exactly one nil-check branch, the same
	// contract as journal and sink. policyFill caches the policy's
	// NeedFill declaration so the O(path) fill computation is skipped
	// for policies that never read it.
	policy     policy.Policy
	policyFill bool

	// sink receives per-decision telemetry; telemetered gates the
	// timestamping and event construction so the default Nop sink costs
	// one branch on the hot path.
	sink        telemetry.Sink
	telemetered bool

	// journal, when non-nil, receives every admit and teardown for
	// durable replay. Like sink it is read without synchronization on
	// the hot path: install it before serving traffic. The nil default
	// costs one branch per decision, preserving the zero-alloc fast
	// path when durability is off.
	journal Journal

	// now supplies decision timestamps (telemetry latency and audit
	// events). Defaults to time.Now; SetClock swaps in a virtual clock
	// so deterministic harnesses — the discrete-event simulator — get
	// reproducible timestamps from the same admit path production runs
	// use.
	now func() time.Time

	// restoring marks the recovery window (between RestoreSnapshot /
	// the first Replay call and FinishRecovery); guards against replay
	// into a live controller.
	restoring *restoreState
}

// NewController validates the configuration and builds a controller.
// Every class must carry a route set over net; routes for missing pairs
// simply make those pairs unadmittable (ErrNoRoute).
func NewController(net *topology.Network, classes []ClassConfig, kind LedgerKind) (*Controller, error) {
	if net == nil {
		return nil, fmt.Errorf("admission: nil network")
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("admission: no classes")
	}
	if len(classes) > slotClassMask {
		// The flow registry packs the class index into 7 bits of the
		// slot state word.
		return nil, fmt.Errorf("admission: %d classes exceeds the %d limit", len(classes), slotClassMask)
	}
	c := &Controller{
		net:     net,
		classes: append([]ClassConfig(nil), classes...),
		byName:  make(map[string]int, len(classes)),
		reg:     newFlowRegistry(),
		sink:    telemetry.Nop{},
		now:     time.Now,
	}
	nsrv := net.NumServers()
	nrt := net.NumRouters()
	switch kind {
	case AtomicLedger:
		c.led = newAtomicLedger(len(classes) * nsrv)
	default:
		c.led = newLockedLedger(len(classes) * nsrv)
	}
	for i, cc := range c.classes {
		if err := cc.Class.Validate(); err != nil {
			return nil, err
		}
		if !(cc.Alpha > 0 && cc.Alpha < 1) {
			return nil, fmt.Errorf("admission: class %q alpha %g out of (0,1)", cc.Class.Name, cc.Alpha)
		}
		if cc.Routes == nil || cc.Routes.Network() != net {
			return nil, fmt.Errorf("admission: class %q routes missing or foreign", cc.Class.Name)
		}
		if _, dup := c.byName[cc.Class.Name]; dup {
			return nil, fmt.Errorf("admission: duplicate class %q", cc.Class.Name)
		}
		c.byName[cc.Class.Name] = i

		limits := make([]int64, nsrv)
		for s := 0; s < nsrv; s++ {
			limits[s] = microbit(cc.Alpha * net.ServerCapacity(s))
		}
		c.limits = append(c.limits, limits)
		c.rates = append(c.rates, microbit(cc.Class.Bucket.Rate))

		if cc.Routes.Len() > slotRouteMask {
			// Route indexes share the slot state word (24 bits).
			return nil, fmt.Errorf("admission: class %q has %d routes, limit %d", cc.Class.Name, cc.Routes.Len(), slotRouteMask)
		}
		table := make([]int32, nrt*nrt)
		for j := range table {
			table[j] = -1
		}
		paths := make([][]int, cc.Routes.Len())
		for r := 0; r < cc.Routes.Len(); r++ {
			rt := cc.Routes.Route(r)
			table[rt.Src*nrt+rt.Dst] = int32(r)
			paths[r] = rt.Servers
		}
		c.routeOf = append(c.routeOf, table)
		c.paths = append(c.paths, paths)
	}
	c.delayD = make([][]float64, len(c.classes))
	c.delayCache = make([]*routes.DelayCache, len(c.classes))
	for i, cc := range c.classes {
		c.delayCache[i] = routes.NewDelayCache(cc.Routes)
	}
	c.nsrv = nsrv
	c.buildPlane()
	c.fastOn = true
	c.updateFastOK()
	return c, nil
}

// SetDelayBounds installs the verified per-server delay vector of one
// class (the configuration-time fixed-point solution) so RouteDelay can
// answer end-to-end bound queries. Installing a new vector bumps the
// class's route-delay cache epoch: a reconfiguration — new utilization
// assignment or changed topology — re-solves the fixed point and must
// come through here, which is exactly when the cached sums go stale.
func (c *Controller) SetDelayBounds(class string, d []float64) error {
	ci, ok := c.byName[class]
	if !ok {
		return ErrUnknownClass
	}
	if len(d) != c.net.NumServers() {
		return fmt.Errorf("admission: delay vector length %d, want %d", len(d), c.net.NumServers())
	}
	c.delayMu.Lock()
	c.delayD[ci] = append([]float64(nil), d...)
	c.delayMu.Unlock()
	c.delayCache[ci].Invalidate()
	return nil
}

// RouteDelay returns the verified worst-case end-to-end queueing delay
// bound of the configured route of (class, src, dst), served from the
// per-class route-delay cache (hit/miss counters flow to the telemetry
// sink). ErrNoDelayBounds is returned until SetDelayBounds has
// installed the class's solved vector.
func (c *Controller) RouteDelay(class string, src, dst int) (float64, error) {
	ci, ok := c.byName[class]
	if !ok {
		return 0, ErrUnknownClass
	}
	ri := c.routeIndex(ci, src, dst)
	if ri < 0 {
		return 0, ErrNoRoute
	}
	c.delayMu.RLock()
	d := c.delayD[ci]
	c.delayMu.RUnlock()
	if d == nil {
		return 0, ErrNoDelayBounds
	}
	return c.delayCache[ci].RouteDelay(int(ri), d)
}

// routeIndex resolves the configured route of (src, dst) for class ci,
// -1 if the pair is unroutable. Every pair-taking query funnels
// through here so Admit, RouteDelay and Headroom agree on what
// ErrNoRoute means: out-of-range router, self-pair, or no configured
// route.
func (c *Controller) routeIndex(ci, src, dst int) int32 {
	nrt := c.net.NumRouters()
	if src < 0 || src >= nrt || dst < 0 || dst >= nrt || src == dst {
		return -1
	}
	return c.routeOf[ci][src*nrt+dst]
}

// RouteDelays returns the cached per-route end-to-end bounds of the
// named class, parallel to its route set's indexes. The slice is shared
// with the cache — callers must not modify it.
func (c *Controller) RouteDelays(class string) ([]float64, error) {
	ci, ok := c.byName[class]
	if !ok {
		return nil, ErrUnknownClass
	}
	c.delayMu.RLock()
	d := c.delayD[ci]
	c.delayMu.RUnlock()
	if d == nil {
		return nil, ErrNoDelayBounds
	}
	return c.delayCache[ci].Delays(d), nil
}

// DelayCacheStats sums hit and miss counts across the per-class
// route-delay caches.
func (c *Controller) DelayCacheStats() (hits, misses uint64) {
	for _, dc := range c.delayCache {
		h, m := dc.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}

// SetSink routes per-decision telemetry into s (nil restores the no-op
// default). Set it before the controller serves concurrent traffic; the
// field is read without synchronization on the hot path.
func (c *Controller) SetSink(s telemetry.Sink) {
	if s == nil {
		s = telemetry.Nop{}
	}
	c.sink = s
	c.telemetered = telemetry.Active(s)
	for _, dc := range c.delayCache {
		dc.SetSink(s)
	}
}

// SetJournal installs the durability journal (nil turns durability
// off). Like SetSink it must be called before the controller serves
// concurrent traffic; the field is read without synchronization on the
// hot path. Typically called right after recovery, with the same
// *wal.Log that replayed the durable state.
func (c *Controller) SetJournal(j Journal) { c.journal = j }

// SetClock installs the controller's time source for decision
// timestamps (nil restores time.Now). Deterministic harnesses install
// a virtual clock before replaying traffic so telemetry latencies and
// audit timestamps are functions of the schedule, not the wall clock.
// Like SetSink it must be called before the controller serves
// concurrent traffic; the field is read without synchronization on the
// hot path.
func (c *Controller) SetClock(now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	c.now = now
}

// SetPolicy installs the admission policy consulted before the
// utilization test (nil or policy.AlwaysAdmit restores the paper's
// behavior). A policy can only refuse flows the utilization test would
// have accepted — never admit flows it would have refused — so the
// delay guarantees are unaffected. Policy refusals reserve nothing and
// are never journaled: the WAL records admitted state, and replay
// bypasses the policy entirely. Like SetSink and SetJournal this must
// be called before the controller serves concurrent traffic.
func (c *Controller) SetPolicy(p policy.Policy) {
	if _, always := p.(policy.AlwaysAdmit); always || p == nil {
		// Strip AlwaysAdmit to the nil fast path: the default
		// deployment is bit-for-bit the pre-policy controller.
		c.policy = nil
		c.policyFill = false
		c.updateFastOK()
		return
	}
	c.policy = p
	c.policyFill = p.Needs()&policy.NeedFill != 0
	c.updateFastOK()
}

// Policy returns the installed admission policy (nil means
// always-admit).
func (c *Controller) Policy() policy.Policy { return c.policy }

// policyOutcome maps a deny verdict to its telemetry verdict and
// sentinel error.
func policyOutcome(v policy.Verdict) (telemetry.Verdict, error) {
	switch v {
	case policy.DenyRate:
		return telemetry.RejectedPolicyRate, ErrPolicyRate
	case policy.DenyShed:
		return telemetry.RejectedPolicyShed, ErrPolicyShed
	default:
		return telemetry.RejectedPolicyReserve, ErrPolicyReserve
	}
}

// fillAfter returns the worst per-server fill fraction along route ri
// of class ci if one more flow were admitted: max over hops of
// (reserved + rate) / (alpha · capacity). Computed only for policies
// that declare NeedFill. The walked figure is cached per route and
// keyed on the sum of the member servers' band epochs: while no hop
// has crossed a band edge (~1/32 of its limit) the cached figure is
// returned without touching the ledger, keeping NeedFill policy
// decisions O(path) only on band crossings. NeedFill disables leasing
// (see updateFastOK), so the raw ledger here is the exact reservation.
func (c *Controller) fillAfter(ci int, ri int32) float64 {
	e := &c.plane[ci].entries[ri]
	base := ci * c.nsrv
	var stamp uint64
	for _, s := range c.paths[ci][ri] {
		stamp += uint64(c.bandEpoch[base+s].Load())
	}
	if s1 := e.fillStamp.Load(); s1 == stamp {
		f := math.Float64frombits(e.fillBits.Load())
		if e.fillStamp.Load() == s1 {
			return f
		}
	}
	rate := c.rates[ci]
	worst := 0.0
	for _, s := range c.paths[ci][ri] {
		lim := c.limits[ci][s]
		if lim <= 0 {
			return 1
		}
		if f := float64(c.led.inUse(base+s)+rate) / float64(lim); f > worst {
			worst = f
		}
	}
	// Publish bits before stamp under the entry lock so a torn pair can
	// only be seen as stale (readers re-check the stamp around bits).
	e.mu.Lock()
	e.fillBits.Store(math.Float64bits(worst))
	e.fillStamp.Store(stamp)
	e.mu.Unlock()
	return worst
}

// MaxUtilization returns the worst fill fraction over every
// (class, server) reservation pool — the cluster-load signal the
// SLO-gated policy consumes, typically wrapped in a
// policy.SampledLoad so the O(classes × servers) scan runs at most
// once per sampling interval.
func (c *Controller) MaxUtilization() float64 {
	worst := 0.0
	for ci := range c.classes {
		for s := 0; s < c.nsrv; s++ {
			lim := c.limits[ci][s]
			if lim <= 0 {
				continue
			}
			if f := float64(c.usedMicro(ci, s)) / float64(lim); f > worst {
				worst = f
			}
		}
	}
	return worst
}

// emit reports one decision to the sink. Callers guard on c.telemetered
// so the no-op configuration pays nothing.
func (c *Controller) emit(id FlowID, class, tenant string, src, dst int, rate float64,
	v telemetry.Verdict, bottleneck int, start time.Time) {
	c.emitAt(id, class, tenant, src, dst, rate, v, bottleneck, start, c.now())
}

// emitAt is emit with the clock already read. The batch paths read it
// once per batch and fan it out here: members of one batch share start
// and end anyway, and at coalesced wire-transport rates the per-member
// clock call was the single largest line in the decision path.
func (c *Controller) emitAt(id FlowID, class, tenant string, src, dst int, rate float64,
	v telemetry.Verdict, bottleneck int, start, end time.Time) {
	c.sink.Decision(telemetry.Decision{
		FlowID:     uint64(id),
		Class:      class,
		Tenant:     tenant,
		Src:        src,
		Dst:        dst,
		Rate:       rate,
		Verdict:    v,
		Bottleneck: bottleneck,
		Latency:    end.Sub(start),
		When:       end,
	})
}

// Admit runs the utilization test along the configured route of
// (class, src, dst) and, on success, reserves the flow's rate on every
// server and returns its flow ID. On failure nothing is reserved.
func (c *Controller) Admit(class string, src, dst int) (FlowID, error) {
	if !c.telemetered && c.policy == nil {
		return c.admitLean(class, src, dst)
	}
	return c.admit(class, "", src, dst)
}

// AdmitWithTenant is Admit carrying a tenant identity for the
// installed admission policy (token buckets key on it; SLO tiers may
// map it) and for telemetry. With no policy installed the tenant only
// labels the audit event.
func (c *Controller) AdmitWithTenant(class, tenant string, src, dst int) (FlowID, error) {
	if !c.telemetered && c.policy == nil {
		return c.admitLean(class, src, dst)
	}
	return c.admit(class, tenant, src, dst)
}

// admitLean is admit specialized for the default deployment — no
// telemetry sink, no admission policy. Both fields are set before the
// controller serves traffic (see SetSink/SetPolicy), so the dispatch
// in Admit is stable. The body is the full admit minus every
// telemetry/policy branch, with the put/claim fast path folded inline:
// at ~10^7 admits/s the call frames, the time.Time zeroing, and the
// wide class-struct load are all measurable.
func (c *Controller) admitLean(class string, src, dst int) (FlowID, error) {
	// classIndex's hint hit folded inline (the call misses the inline
	// budget by the cost of its own slow-path call). eqName beats the
	// runtime memequal call for class-name-length strings.
	var ci int
	if h := c.hint.Load(); h != nil && eqName(h.name, class) {
		ci = h.ci
	} else {
		var ok bool
		if ci, ok = c.classIndexSlow(class); !ok {
			return 0, ErrUnknownClass
		}
	}
	ri := c.routeIndex(ci, src, dst)
	if ri < 0 {
		c.noRoute.Add(1)
		return 0, ErrNoRoute
	}
	if !c.budgetHit(ci, ri) {
		if _, ok := c.admitReserveSlow(ci, ri); !ok {
			c.rejected.Add(1)
			return 0, ErrCapacity
		}
	}
	// reg.put folded inline, first probe of claim included.
	reg := c.reg
	seq := reg.cursor.Add(1)
	shard := seq & flowShardMask
	sh := &reg.shards[shard]
	var slot *regSlot
	var idx, gen uint32
	ok := false
	if n := sh.length.Load(); n > 0 {
		start := probeStart(seq, n)
		s := sh.slotAt(start)
		if st := s.state.Load(); st&(slotActiveBit|slotBusyBit) == 0 {
			g := uint32(st>>32) + 1
			if g == 0 {
				g = 1
			}
			if s.state.CompareAndSwap(st, uint64(g)<<32|slotBusyBit) {
				slot, idx, gen, ok = s, start, g, true
			}
		}
	}
	if !ok {
		slot, idx, gen, ok = sh.claimSlow(seq)
	}
	if !ok {
		c.admitGaps.Add(1)
		c.release(ci, ri)
		c.rejected.Add(1)
		return 0, ErrTooManyFlows
	}
	id := activate(slot, idx, gen, int32(ci), ri, seq, shard)
	if c.journal != nil {
		if err := c.journal.AppendAdmit(uint64(id), seq, int32(ci), ri); err != nil {
			// Journal closed (drain) or failed: unwind so the admit
			// never happened — nothing durable acknowledged, nothing
			// reserved.
			c.admitGaps.Add(1)
			c.reg.take(id)
			c.release(ci, ri)
			return 0, ErrShuttingDown
		}
	}
	c.noteActive(int64(seq - c.admitGaps.Load() - c.tornDown.Load()))
	return id, nil
}

// admit is the full path: telemetry timestamps and decision events,
// and the policy consult. Reserve/registry work is delegated to the
// same helpers the lean path folds inline.
func (c *Controller) admit(class, tenant string, src, dst int) (FlowID, error) {
	var start time.Time
	if c.telemetered {
		start = c.now()
	}
	ci, ok := c.classIndex(class)
	if !ok {
		if c.telemetered {
			c.emit(0, class, tenant, src, dst, 0, telemetry.RejectedUnknownClass, -1, start)
		}
		return 0, ErrUnknownClass
	}
	rateBPS := c.classes[ci].Class.Bucket.Rate
	ri := c.routeIndex(ci, src, dst)
	if ri < 0 {
		c.noRoute.Add(1)
		if c.telemetered {
			c.emit(0, class, tenant, src, dst, rateBPS, telemetry.RejectedNoRoute, -1, start)
		}
		return 0, ErrNoRoute
	}
	if p := c.policy; p != nil {
		dctx := policy.DecisionContext{
			Class: class, Tenant: tenant, Src: src, Dst: dst, Rate: rateBPS,
		}
		if c.policyFill {
			dctx.FillAfter = c.fillAfter(ci, ri)
		}
		if v := p.Decide(dctx); v != policy.Allow {
			// Policy refusal: nothing reserved, nothing journaled — the
			// WAL records admitted state only.
			c.rejected.Add(1)
			c.policyRejected.Add(1)
			tv, err := policyOutcome(v)
			if c.telemetered {
				c.emit(0, class, tenant, src, dst, rateBPS, tv, -1, start)
			}
			return 0, err
		}
	}
	if s, ok := c.admitReserve(ci, ri); !ok {
		c.rejected.Add(1)
		if c.telemetered {
			c.emit(0, class, tenant, src, dst, rateBPS, telemetry.RejectedCapacity, s, start)
		}
		return 0, ErrCapacity
	}
	id, seq, ok := c.reg.put(int32(ci), ri)
	if !ok {
		c.admitGaps.Add(1)
		c.release(ci, ri)
		c.rejected.Add(1)
		if c.telemetered {
			c.emit(0, class, tenant, src, dst, rateBPS, telemetry.RejectedCapacity, -1, start)
		}
		return 0, ErrTooManyFlows
	}
	if c.journal != nil {
		if err := c.journal.AppendAdmit(uint64(id), seq, int32(ci), ri); err != nil {
			// Journal closed (drain) or failed: unwind so the admit never
			// happened — nothing durable acknowledged, nothing reserved.
			c.admitGaps.Add(1)
			c.reg.take(id)
			c.release(ci, ri)
			if c.telemetered {
				c.emit(0, class, tenant, src, dst, rateBPS, telemetry.RejectedCapacity, -1, start)
			}
			return 0, ErrShuttingDown
		}
	}
	c.noteActive(int64(seq - c.admitGaps.Load() - c.tornDown.Load()))
	if c.telemetered {
		c.emit(id, class, tenant, src, dst, rateBPS, telemetry.Admitted, -1, start)
	}
	return id, nil
}

// reserve runs the exact utilization test along route ri of class ci,
// reserving the class rate on every server. On failure nothing stays
// reserved and the bottleneck server is returned. This is the paper's
// per-server walk; the common case goes through admitReserve
// (headroom.go), which only lands here near saturation.
func (c *Controller) reserve(ci int, ri int32) (bottleneck int, ok bool) {
	servers := c.paths[ci][ri]
	rate := c.rates[ci]
	base := ci * c.nsrv
	for i, s := range servers {
		if !c.ledReserve(base+s, rate, c.limits[ci][s]) {
			// Roll back the servers already reserved.
			for _, t := range servers[:i] {
				c.ledRelease(base+t, rate)
			}
			return s, false
		}
	}
	return -1, true
}

// release returns route ri's reservations of class ci to the ledger.
func (c *Controller) release(ci int, ri int32) {
	rate := c.rates[ci]
	base := ci * c.nsrv
	for _, s := range c.paths[ci][ri] {
		c.ledRelease(base+s, rate)
	}
}

// noteActive folds one post-admission active count into the MaxActive
// high-water mark.
func (c *Controller) noteActive(act int64) {
	for {
		max := c.maxActive.Load()
		if act <= max || c.maxActive.CompareAndSwap(max, act) {
			return
		}
	}
}

// Teardown releases an admitted flow's reservations.
func (c *Controller) Teardown(id FlowID) error {
	var start time.Time
	if c.telemetered {
		start = c.now()
	}
	// reg.take folded inline, same reasoning as the put fold in admit.
	sh := &c.reg.shards[uint64(id)&flowShardMask]
	si := uint32(uint64(id) >> flowShardBits & flowSlotMask)
	gen := uint64(id) >> 32
	if si >= sh.length.Load() {
		return ErrUnknownFlow
	}
	s := sh.slotAt(si)
	st := s.state.Load()
	if st>>32 != gen || st&slotActiveBit == 0 || !s.state.CompareAndSwap(st, gen<<32) {
		return ErrUnknownFlow
	}
	ci := int(st >> slotClassShift & slotClassMask)
	route := int32(st >> slotRouteShift & slotRouteMask)
	if !c.budgetPut(ci, route) {
		c.releaseFlowSlow(ci, route)
	}
	c.tornDown.Add(1)
	if c.journal != nil {
		if err := c.journal.AppendTeardown(uint64(id)); err != nil {
			// The teardown took effect in memory but was not recorded: a
			// crash now resurrects the flow. Surface that honestly —
			// callers retry after the recovered daemon comes back.
			return ErrShuttingDown
		}
	}
	if c.telemetered {
		rt := c.classes[ci].Routes.Route(int(route))
		c.emit(id, c.classes[ci].Class.Name, "", rt.Src, rt.Dst,
			c.classes[ci].Class.Bucket.Rate, telemetry.TornDown, -1, start)
	}
	return nil
}

// Utilization returns the fraction of server s's capacity currently
// reserved by the named class.
func (c *Controller) Utilization(class string, s int) (float64, error) {
	ci, ok := c.byName[class]
	if !ok {
		return 0, ErrUnknownClass
	}
	if s < 0 || s >= c.nsrv {
		return 0, fmt.Errorf("admission: server %d out of range", s)
	}
	// Lease-adjusted: budget held by the headroom plane is reserved on
	// the ledger but not in use by any admitted flow.
	return float64(c.usedMicro(ci, s)) / 1e6 / c.net.ServerCapacity(s), nil
}

// Headroom returns how many more flows of the named class the route of
// (src, dst) can accept right now (0 if no route).
func (c *Controller) Headroom(class string, src, dst int) (int, error) {
	ci, ok := c.byName[class]
	if !ok {
		return 0, ErrUnknownClass
	}
	ri := c.routeIndex(ci, src, dst)
	if ri < 0 {
		return 0, ErrNoRoute
	}
	rate := c.rates[ci]
	min := int64(-1)
	for _, s := range c.paths[ci][ri] {
		free := c.limits[ci][s] - c.usedMicro(ci, s)
		if free < 0 {
			free = 0
		}
		n := free / rate
		if min < 0 || n < min {
			min = n
		}
	}
	return int(min), nil
}

// admittedCount derives the admitted counter from the admission
// cursor (see the counter comment on Controller).
// eqName compares two short interned-ish strings byte-wise. For class
// names (a handful of bytes) the open-coded loop is cheaper than the
// runtime memequal call the compiler emits for general string
// equality, and it inlines.
func eqName(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (c *Controller) admittedCount() uint64 {
	return c.reg.cursor.Load() - c.admitGaps.Load()
}

// Stats returns a snapshot of the cumulative counters. Admitted and
// Active are derived (see Controller): exact whenever the controller
// is quiescent, and within the in-flight window otherwise.
func (c *Controller) Stats() Stats {
	adm := c.admittedCount()
	torn := c.tornDown.Load()
	return Stats{
		Admitted:       adm,
		Rejected:       c.rejected.Load(),
		RejectedPolicy: c.policyRejected.Load(),
		TornDown:       torn,
		NoRoute:        c.noRoute.Load(),
		Active:         int64(adm - torn),
		MaxActive:      c.maxActive.Load(),
	}
}

// ClassRoutes returns the configured route set of the named class.
func (c *Controller) ClassRoutes(class string) (*routes.Set, error) {
	ci, ok := c.byName[class]
	if !ok {
		return nil, ErrUnknownClass
	}
	return c.classes[ci].Routes, nil
}

// Classes returns the configured class names in configuration order.
func (c *Controller) Classes() []string {
	names := make([]string, len(c.classes))
	for i, cc := range c.classes {
		names[i] = cc.Class.Name
	}
	return names
}
