package admission

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ubac/internal/policy"
	"ubac/internal/routes"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

// contentionRing is the router count of the contention benchmark
// topology; 16 workers on adjacent single-hop pairs touch 16 distinct
// link servers, so "disjoint" runs isolate the controller's shared flow
// bookkeeping from ledger contention.
const contentionRing = 16

// contentionController builds a ring of 100 Mb/s links with one
// clockwise single-hop route per adjacent pair at alpha=0.5: ~1562
// concurrent voice flows fit per server, so admit/teardown pairs from
// ≤16 workers never reject and the benchmark measures pure bookkeeping
// throughput.
func contentionController(b *testing.B, kind LedgerKind) *Controller {
	b.Helper()
	net, err := topology.Ring(contentionRing, 100e6)
	if err != nil {
		b.Fatal(err)
	}
	set := routes.NewSet(net)
	for src := 0; src < contentionRing; src++ {
		r, err := routes.FromRouterPath(net, "voice", []int{src, (src + 1) % contentionRing})
		if err != nil {
			b.Fatal(err)
		}
		if err := set.Add(r); err != nil {
			b.Fatal(err)
		}
	}
	ctrl, err := NewController(net, []ClassConfig{{Class: traffic.Voice(), Alpha: 0.5, Routes: set}}, kind)
	if err != nil {
		b.Fatal(err)
	}
	return ctrl
}

// runAdmitTeardown spreads b.N admit+teardown pairs over g goroutines.
// In disjoint mode worker w churns pair (w, w+1) — its own route and
// servers; in shared mode every worker churns pair (0, 1).
func runAdmitTeardown(b *testing.B, ctrl *Controller, g int, disjoint bool) {
	b.Helper()
	var wg sync.WaitGroup
	per, extra := b.N/g, b.N%g
	b.ResetTimer()
	for w := 0; w < g; w++ {
		n := per
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			src, dst := 0, 1
			if disjoint {
				src = w % contentionRing
				dst = (src + 1) % contentionRing
			}
			for i := 0; i < n; i++ {
				id, err := ctrl.Admit("voice", src, dst)
				if err != nil {
					b.Error(err)
					return
				}
				if err := ctrl.Teardown(id); err != nil {
					b.Error(err)
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "admits/s")
}

// BenchmarkAdmitBatch compares singleton Admit/Teardown loops against
// AdmitBatch/TeardownBatch at growing batch sizes: the delta is the
// per-decision bookkeeping (registry lock, counters, timestamps) that
// batching amortizes. ns/op is per flow, not per batch.
func BenchmarkAdmitBatch(b *testing.B) {
	for _, size := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("loop/size=%d", size), func(b *testing.B) {
			ctrl := contentionController(b, AtomicLedger)
			ids := make([]FlowID, size)
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				for j := 0; j < size; j++ {
					id, err := ctrl.Admit("voice", j%contentionRing, (j+1)%contentionRing)
					if err != nil {
						b.Fatal(err)
					}
					ids[j] = id
				}
				for j := 0; j < size; j++ {
					if err := ctrl.Teardown(ids[j]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("batch/size=%d", size), func(b *testing.B) {
			ctrl := contentionController(b, AtomicLedger)
			items := make([]BatchItem, size)
			for j := range items {
				items[j] = BatchItem{Class: "voice", Src: j % contentionRing, Dst: (j + 1) % contentionRing}
			}
			var results []BatchResult
			ids := make([]FlowID, size)
			var errs []error
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				results = ctrl.AdmitBatch(items, results)
				for j, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
					ids[j] = r.ID
				}
				errs = ctrl.TeardownBatch(ids, errs)
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAdmissionContention is the package-doc comparison: both
// ledger kinds at 1/4/16 goroutines on shared vs disjoint routes. The
// disjoint/g=16 rows are the ISSUE 4 acceptance point for the sharded
// flow registry (≥2× admits/s over the seed global-mutex registry on a
// multi-core runner).
func BenchmarkAdmissionContention(b *testing.B) {
	kinds := []struct {
		name string
		kind LedgerKind
	}{{"locked", LockedLedger}, {"atomic", AtomicLedger}}
	for _, k := range kinds {
		for _, mode := range []string{"shared", "disjoint"} {
			for _, g := range []int{1, 4, 16} {
				b.Run(fmt.Sprintf("%s/%s/g=%d", k.name, mode, g), func(b *testing.B) {
					ctrl := contentionController(b, k.kind)
					runAdmitTeardown(b, ctrl, g, mode == "disjoint")
				})
			}
		}
	}
}

// BenchmarkAdmitWithPolicy prices the policy plane on the singleton
// admit/teardown cycle: always_admit must match the policy-free
// baseline (SetPolicy strips it to nil), token_bucket adds one map
// lookup plus CAS refill/spend, slo_gated adds a cached load-signal
// read. All three stay allocation-free.
func BenchmarkAdmitWithPolicy(b *testing.B) {
	cases := []struct {
		name    string
		install func(b *testing.B, c *Controller)
	}{
		{"always_admit", func(b *testing.B, c *Controller) {
			c.SetPolicy(policy.AlwaysAdmit{})
		}},
		{"token_bucket", func(b *testing.B, c *Controller) {
			// Sized so the bucket never empties: the benchmark measures
			// decision cost, not denial cost.
			tb, err := policy.NewTokenBucket(policy.BucketConfig{Rate: 1e9, Burst: 1e9},
				map[string]policy.BucketConfig{"tenant-a": {Rate: 1e9, Burst: 1e9}})
			if err != nil {
				b.Fatal(err)
			}
			c.SetPolicy(tb)
		}},
		{"slo_gated", func(b *testing.B, c *Controller) {
			load := &policy.SampledLoad{Sample: c.MaxUtilization, Interval: 100 * time.Microsecond}
			g, err := policy.NewSLOGated(map[string]policy.Tier{"tenant-a": policy.TierStandard},
				policy.TierStandard, 0.9, 0.7, load)
			if err != nil {
				b.Fatal(err)
			}
			c.SetPolicy(g)
		}},
	}
	for _, pc := range cases {
		b.Run(pc.name, func(b *testing.B) {
			ctrl := contentionController(b, AtomicLedger)
			pc.install(b, ctrl)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id, err := ctrl.AdmitWithTenant("voice", "tenant-a", 0, 1)
				if err != nil {
					b.Fatal(err)
				}
				if err := ctrl.Teardown(id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
