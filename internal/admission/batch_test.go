package admission

import (
	"testing"

	"ubac/internal/telemetry"
)

// TestAdmitBatchMatchesSequential feeds the same request mix through
// AdmitBatch and through a loop of singleton Admits on an identical
// controller: per-item verdicts, final counters and final per-server
// utilization must agree exactly.
func TestAdmitBatchMatchesSequential(t *testing.T) {
	batchCtrl, _ := testController(t, 0.3, AtomicLedger)
	seqCtrl, net := testController(t, 0.3, AtomicLedger)

	items := []BatchItem{
		{Class: "voice", Src: 0, Dst: 2},
		{Class: "voice", Src: 2, Dst: 0},
		{Class: "nope", Src: 0, Dst: 2},  // unknown class
		{Class: "voice", Src: 0, Dst: 0}, // self pair
		{Class: "voice", Src: 1, Dst: 2},
		{Class: "voice", Src: 0, Dst: 99}, // out of range
	}
	results := batchCtrl.AdmitBatch(items, nil)
	if len(results) != len(items) {
		t.Fatalf("%d results for %d items", len(results), len(items))
	}
	for i, it := range items {
		_, seqErr := seqCtrl.Admit(it.Class, it.Src, it.Dst)
		if results[i].Err != seqErr {
			t.Errorf("item %d: batch %v, sequential %v", i, results[i].Err, seqErr)
		}
		if results[i].Err == nil && results[i].ID == 0 {
			t.Errorf("item %d admitted with zero ID", i)
		}
	}
	bs, ss := batchCtrl.Stats(), seqCtrl.Stats()
	if bs != ss {
		t.Errorf("stats diverged: batch %+v, sequential %+v", bs, ss)
	}
	for s := 0; s < net.NumServers(); s++ {
		bu, _ := batchCtrl.Utilization("voice", s)
		su, _ := seqCtrl.Utilization("voice", s)
		if bu != su {
			t.Errorf("server %d: batch utilization %g, sequential %g", s, bu, su)
		}
	}
}

// TestAdmitBatchCapacity checks that a batch straddling the capacity
// cliff admits exactly the flows that fit — each reservation is its
// own atomic utilization test, batching buys no leniency.
func TestAdmitBatchCapacity(t *testing.T) {
	c, _ := testController(t, 0.3, AtomicLedger)
	headroom, err := c.Headroom("voice", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]BatchItem, headroom+10)
	for i := range items {
		items[i] = BatchItem{Class: "voice", Src: 0, Dst: 2}
	}
	results := c.AdmitBatch(items, nil)
	admitted := 0
	for _, r := range results {
		switch r.Err {
		case nil:
			admitted++
		case ErrCapacity:
		default:
			t.Fatalf("unexpected error %v", r.Err)
		}
	}
	if admitted != headroom {
		t.Errorf("admitted %d, want headroom %d", admitted, headroom)
	}
	st := c.Stats()
	if st.Admitted != uint64(headroom) || st.Rejected != 10 {
		t.Errorf("stats %+v", st)
	}
}

// TestTeardownBatch admits a batch, then tears it down in one call
// mixed with bogus IDs; errors must align per index and the ledger
// must balance to zero.
func TestTeardownBatch(t *testing.T) {
	c, net := testController(t, 0.3, AtomicLedger)
	items := make([]BatchItem, 20)
	for i := range items {
		items[i] = BatchItem{Class: "voice", Src: 0, Dst: 2}
	}
	results := c.AdmitBatch(items, nil)
	ids := make([]FlowID, 0, len(results)+2)
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		ids = append(ids, r.ID)
	}
	ids = append(ids, FlowID(0), ids[0]) // bogus + duplicate
	errs := c.TeardownBatch(ids, nil)
	if len(errs) != len(ids) {
		t.Fatalf("%d errs for %d ids", len(errs), len(ids))
	}
	for i := 0; i < 20; i++ {
		if errs[i] != nil {
			t.Errorf("teardown %d: %v", i, errs[i])
		}
	}
	if errs[20] != ErrUnknownFlow || errs[21] != ErrUnknownFlow {
		t.Errorf("bogus teardowns: %v, %v, want ErrUnknownFlow", errs[20], errs[21])
	}
	st := c.Stats()
	if st.Active != 0 || st.TornDown != 20 {
		t.Errorf("stats %+v", st)
	}
	for s := 0; s < net.NumServers(); s++ {
		if u, _ := c.Utilization("voice", s); u != 0 {
			t.Errorf("server %d utilization %g after batch teardown", s, u)
		}
	}
}

// TestBatchTelemetry checks batch operations land in the sink with the
// same counts singleton operations would produce.
func TestBatchTelemetry(t *testing.T) {
	c, _ := testController(t, 0.3, AtomicLedger)
	sink := telemetry.NewRegistrySink(telemetry.NewRegistry(), telemetry.NewRing(64))
	c.SetSink(sink)
	items := []BatchItem{
		{Class: "voice", Src: 0, Dst: 2},
		{Class: "voice", Src: 2, Dst: 0},
		{Class: "voice", Src: 0, Dst: 0},
		{Class: "nope", Src: 0, Dst: 2},
	}
	results := c.AdmitBatch(items, nil)
	if got := sink.Admit.Value(); got != 2 {
		t.Errorf("sink admits = %d, want 2", got)
	}
	if got := sink.RejectNoRoute.Value(); got != 1 {
		t.Errorf("sink no-route rejects = %d, want 1", got)
	}
	if got := sink.RejectUnknownClass.Value(); got != 1 {
		t.Errorf("sink unknown-class rejects = %d, want 1", got)
	}
	ids := []FlowID{results[0].ID, results[1].ID}
	c.TeardownBatch(ids, nil)
	if got := sink.Teardown.Value(); got != 2 {
		t.Errorf("sink teardowns = %d, want 2", got)
	}
	if got := sink.ActiveFlows.Value(); got != 0 {
		t.Errorf("sink active gauge = %d, want 0", got)
	}

	// Capacity rejects must attribute a bottleneck server, same as the
	// singleton path: fill a pair, overflow it by one in a batch, and
	// the reject event must not carry -1.
	headroom, err := c.Headroom("voice", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	fill := make([]BatchItem, headroom+1)
	for i := range fill {
		fill[i] = BatchItem{Class: "voice", Src: 0, Dst: 2}
	}
	results = c.AdmitBatch(fill, results[:0])
	if results[headroom].Err != ErrCapacity {
		t.Fatalf("overflow item: %v, want ErrCapacity", results[headroom].Err)
	}
	evs := sink.Ring().Snapshot(1)
	if len(evs) != 1 || evs[0].Verdict != telemetry.RejectedCapacity.String() {
		t.Fatalf("newest event: %+v, want capacity reject", evs)
	}
	if evs[0].Bottleneck < 0 {
		t.Errorf("batch capacity reject lost the bottleneck server: %+v", evs[0])
	}
}

// TestBatchSteadyStateZeroAlloc pins the untelemetered batch path at
// zero allocations once the caller reuses its result slices and the
// pool's scratch has grown to the batch size.
func TestBatchSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc gate runs uninstrumented")
	}
	c, _ := testController(t, 0.3, AtomicLedger)
	items := make([]BatchItem, 64)
	for i := range items {
		items[i] = BatchItem{Class: "voice", Src: 0, Dst: 2}
	}
	var results []BatchResult
	var ids []FlowID
	var errs []error
	cycle := func() {
		results = c.AdmitBatch(items, results)
		ids = ids[:0]
		for _, r := range results {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			ids = append(ids, r.ID)
		}
		errs = c.TeardownBatch(ids, errs)
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	cycle() // warm scratch pool, freelists and result capacity
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Errorf("%g allocs per batch cycle, want 0", allocs)
	}
}
