package admission

import (
	"sync"
	"time"

	"ubac/internal/policy"
	"ubac/internal/telemetry"
)

// BatchItem is one admission request in an AdmitBatch call. Tenant
// ("" = untenanted) feeds the installed admission policy and labels
// the audit event, exactly as in AdmitWithTenant.
type BatchItem struct {
	Class    string
	Tenant   string
	Src, Dst int
}

// BatchResult is the outcome of one BatchItem: ID is valid iff Err is
// nil. Err values are the package sentinels, same as Admit's.
type BatchResult struct {
	ID  FlowID
	Err error
}

// batchScratch holds the per-call working slices of AdmitBatch so a
// steady batch workload allocates nothing (the slices keep their grown
// capacity across calls via the pool).
type batchScratch struct {
	classes []int32
	routes  []int32
	pos     []int32 // index into the results slice for each success
	bns     []int32 // per-item bottleneck server, -1 unless capacity-rejected
	ids     []FlowID
	u64     []uint64 // journal view of ids (wal speaks uint64, not FlowID)
}

var scratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// AdmitBatch runs the utilization test for every item and registers
// all admitted flows under a single registry shard lock. Each
// reservation is still an individual atomic utilization test — a batch
// buys no admission leniency, it only amortizes flow registration,
// counter updates and telemetry timestamps across items. results is
// reused when its capacity allows and returned with one BatchResult
// per item, in order. When telemetry is attached, per-decision latency
// is the batch's wall time (decisions within a batch are not timed
// individually).
func (c *Controller) AdmitBatch(items []BatchItem, results []BatchResult) []BatchResult {
	var start time.Time
	if c.telemetered {
		start = c.now()
	}
	results = results[:0]
	sc := scratchPool.Get().(*batchScratch)
	sc.classes = sc.classes[:0]
	sc.routes = sc.routes[:0]
	sc.pos = sc.pos[:0]
	sc.bns = sc.bns[:0]

	var rejected, policyRejected, noRoute uint64
	for i, it := range items {
		sc.bns = append(sc.bns, -1)
		ci, ok := c.byName[it.Class]
		if !ok {
			results = append(results, BatchResult{Err: ErrUnknownClass})
			continue
		}
		ri := c.routeIndex(ci, it.Src, it.Dst)
		if ri < 0 {
			noRoute++
			results = append(results, BatchResult{Err: ErrNoRoute})
			continue
		}
		if p := c.policy; p != nil {
			// Per-item policy verdicts: a batch buys no policy leniency
			// either — each item is decided exactly as Admit would.
			dctx := policy.DecisionContext{
				Class: it.Class, Tenant: it.Tenant, Src: it.Src, Dst: it.Dst,
				Rate: c.classes[ci].Class.Bucket.Rate,
			}
			if c.policyFill {
				dctx.FillAfter = c.fillAfter(ci, ri)
			}
			if v := p.Decide(dctx); v != policy.Allow {
				rejected++
				policyRejected++
				_, err := policyOutcome(v)
				results = append(results, BatchResult{Err: err})
				continue
			}
		}
		if bn, ok := c.reserve(ci, ri); !ok {
			rejected++
			sc.bns[i] = int32(bn)
			results = append(results, BatchResult{Err: ErrCapacity})
			continue
		}
		results = append(results, BatchResult{})
		sc.classes = append(sc.classes, int32(ci))
		sc.routes = append(sc.routes, ri)
		sc.pos = append(sc.pos, int32(i))
	}

	admitted := len(sc.pos)
	if cap(sc.ids) < admitted {
		sc.ids = make([]FlowID, admitted)
	}
	sc.ids = sc.ids[:admitted]
	baseSeq, ok := c.reg.putBatch(sc.classes, sc.routes, sc.ids)
	if !ok {
		// Registry shard exhausted: nothing was registered, so return
		// every reservation this batch took and fail its successes.
		for k := range sc.pos {
			c.release(int(sc.classes[k]), sc.routes[k])
			results[sc.pos[k]].Err = ErrTooManyFlows
		}
		rejected += uint64(admitted)
		admitted = 0
	}
	if c.journal != nil && admitted > 0 {
		if cap(sc.u64) < admitted {
			sc.u64 = make([]uint64, admitted)
		}
		sc.u64 = sc.u64[:admitted]
		for k := 0; k < admitted; k++ {
			sc.u64[k] = uint64(sc.ids[k])
		}
		if err := c.journal.AppendAdmitBatch(sc.u64, baseSeq, sc.classes, sc.routes); err != nil {
			// Journal closed or failed: unwind the whole batch's
			// registrations and reservations; the successes never happened.
			for k := 0; k < admitted; k++ {
				c.reg.take(sc.ids[k])
				c.release(int(sc.classes[k]), sc.routes[k])
				results[sc.pos[k]].Err = ErrShuttingDown
			}
			admitted = 0
		}
	}
	for k := 0; k < admitted; k++ {
		results[sc.pos[k]].ID = sc.ids[k]
	}

	if admitted > 0 {
		c.admitted.Add(uint64(admitted))
		c.noteActive(c.active.Add(int64(admitted)))
	}
	if rejected > 0 {
		c.rejected.Add(rejected)
	}
	if policyRejected > 0 {
		c.policyRejected.Add(policyRejected)
	}
	if noRoute > 0 {
		c.noRoute.Add(noRoute)
	}
	if c.telemetered {
		for i, it := range items {
			switch r := results[i]; {
			case r.Err == nil:
				c.emit(r.ID, it.Class, it.Tenant, it.Src, it.Dst, c.rateOf(it.Class), telemetry.Admitted, -1, start)
			case r.Err == ErrNoRoute:
				c.emit(0, it.Class, it.Tenant, it.Src, it.Dst, c.rateOf(it.Class), telemetry.RejectedNoRoute, -1, start)
			case r.Err == ErrUnknownClass:
				c.emit(0, it.Class, it.Tenant, it.Src, it.Dst, 0, telemetry.RejectedUnknownClass, -1, start)
			case r.Err == ErrPolicyRate:
				c.emit(0, it.Class, it.Tenant, it.Src, it.Dst, c.rateOf(it.Class), telemetry.RejectedPolicyRate, -1, start)
			case r.Err == ErrPolicyShed:
				c.emit(0, it.Class, it.Tenant, it.Src, it.Dst, c.rateOf(it.Class), telemetry.RejectedPolicyShed, -1, start)
			case r.Err == ErrPolicyReserve:
				c.emit(0, it.Class, it.Tenant, it.Src, it.Dst, c.rateOf(it.Class), telemetry.RejectedPolicyReserve, -1, start)
			case r.Err == ErrShuttingDown:
				// Not an admission verdict — the journal refused, nothing
				// was admitted or rejected on capacity grounds.
			default:
				c.emit(0, it.Class, it.Tenant, it.Src, it.Dst, c.rateOf(it.Class), telemetry.RejectedCapacity, int(sc.bns[i]), start)
			}
		}
	}
	scratchPool.Put(sc)
	return results
}

// rateOf returns the configured rate of a class in bits/s, 0 when
// unknown (telemetry labeling only; the hot path uses c.rates).
func (c *Controller) rateOf(class string) float64 {
	if ci, ok := c.byName[class]; ok {
		return c.classes[ci].Class.Bucket.Rate
	}
	return 0
}

// TeardownBatch releases a batch of admitted flows. errs is reused
// when its capacity allows and returned with one entry per ID: nil on
// success, ErrUnknownFlow for IDs that are not live. Counter and
// telemetry traffic is amortized over the batch like AdmitBatch.
func (c *Controller) TeardownBatch(ids []FlowID, errs []error) []error {
	var start time.Time
	if c.telemetered {
		start = c.now()
	}
	errs = errs[:0]
	sc := scratchPool.Get().(*batchScratch)
	sc.u64 = sc.u64[:0]
	var torn int64
	for _, id := range ids {
		class, route, ok := c.reg.take(id)
		if !ok {
			errs = append(errs, ErrUnknownFlow)
			continue
		}
		ci := int(class)
		c.release(ci, route)
		torn++
		errs = append(errs, nil)
		if c.journal != nil {
			sc.u64 = append(sc.u64, uint64(id))
		}
		if c.telemetered {
			rt := c.classes[ci].Routes.Route(int(route))
			c.emit(id, c.classes[ci].Class.Name, "", rt.Src, rt.Dst,
				c.classes[ci].Class.Bucket.Rate, telemetry.TornDown, -1, start)
		}
	}
	if torn > 0 {
		c.tornDown.Add(uint64(torn))
		c.active.Add(-torn)
	}
	if c.journal != nil && len(sc.u64) > 0 {
		if err := c.journal.AppendTeardownBatch(sc.u64); err != nil {
			// Same contract as Teardown: the releases took effect in
			// memory but are not durable, so flag each one.
			for i := range errs {
				if errs[i] == nil {
					errs[i] = ErrShuttingDown
				}
			}
		}
	}
	scratchPool.Put(sc)
	return errs
}
