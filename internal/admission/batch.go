package admission

import (
	"sync"
	"time"

	"ubac/internal/policy"
	"ubac/internal/telemetry"
)

// BatchItem is one admission request in an AdmitBatch call. Tenant
// ("" = untenanted) feeds the installed admission policy and labels
// the audit event, exactly as in AdmitWithTenant.
type BatchItem struct {
	Class    string
	Tenant   string
	Src, Dst int
}

// BatchResult is the outcome of one BatchItem: ID is valid iff Err is
// nil. Err values are the package sentinels, same as Admit's.
type BatchResult struct {
	ID  FlowID
	Err error
}

// batchScratch holds the per-call working slices of AdmitBatch so a
// steady batch workload allocates nothing (the slices keep their grown
// capacity across calls via the pool).
type batchScratch struct {
	classes []int32
	routes  []int32
	pos     []int32 // index into the results slice for each success
	bns     []int32 // per-item bottleneck server, -1 unless capacity-rejected
	ids     []FlowID
	u64     []uint64 // journal view of ids (wal speaks uint64, not FlowID)

	// Per-batch headroom claims: the first item on a (class, route)
	// claims a chunk of the route's budget in one CAS and later items
	// on the same route consume it locally, so a homogeneous batch does
	// one atomic sub per route per batch. claimN is slots still unspent.
	claimCi []int32
	claimRi []int32
	claimN  []int32
}

// maxClaimRoutes bounds the linear claim table; batches touching more
// distinct routes fall back to per-item budget CAS for the excess.
const maxClaimRoutes = 16

var scratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// batchReserve decides one batch item against the headroom plane,
// preferring the batch's local claim for the route. remaining is an
// upper bound on how many items of the batch could still want this
// route (claim chunks never exceed it, so little is left to hand back).
func (c *Controller) batchReserve(sc *batchScratch, ci int, ri int32, remaining int) (int, bool) {
	if !c.fastOK {
		s, ok := c.reserve(ci, ri)
		if ok {
			c.fbAdmits.Add(1)
		} else {
			c.fbRejects.Add(1)
		}
		return s, ok
	}
	for k := range sc.claimCi {
		if int(sc.claimCi[k]) != ci || sc.claimRi[k] != ri {
			continue
		}
		if sc.claimN[k] > 0 {
			sc.claimN[k]--
			return -1, true
		}
		if take := c.claimChunk(ci, ri, int64(remaining)); take > 0 {
			sc.claimN[k] = int32(take) - 1
			return -1, true
		}
		return c.slowAdmitReserve(ci, ri, &c.plane[ci].entries[ri])
	}
	if len(sc.claimCi) < maxClaimRoutes {
		take := c.claimChunk(ci, ri, int64(remaining))
		sc.claimCi = append(sc.claimCi, int32(ci))
		sc.claimRi = append(sc.claimRi, ri)
		if take > 0 {
			sc.claimN = append(sc.claimN, int32(take)-1)
			return -1, true
		}
		sc.claimN = append(sc.claimN, 0)
		return c.slowAdmitReserve(ci, ri, &c.plane[ci].entries[ri])
	}
	return c.admitReserve(ci, ri)
}

// returnClaims credits unspent claim slots back to their routes.
func (c *Controller) returnClaims(sc *batchScratch) {
	for k := range sc.claimCi {
		if n := sc.claimN[k]; n > 0 {
			c.creditBudget(int(sc.claimCi[k]), sc.claimRi[k], int64(n))
		}
	}
	sc.claimCi = sc.claimCi[:0]
	sc.claimRi = sc.claimRi[:0]
	sc.claimN = sc.claimN[:0]
}

// AdmitBatch runs the utilization test for every item and registers
// all admitted flows under a single registry shard lock. Each
// reservation is still an individual atomic utilization test — a batch
// buys no admission leniency, it only amortizes flow registration,
// counter updates and telemetry timestamps across items. results is
// reused when its capacity allows and returned with one BatchResult
// per item, in order. When telemetry is attached, per-decision latency
// is the batch's wall time (decisions within a batch are not timed
// individually).
func (c *Controller) AdmitBatch(items []BatchItem, results []BatchResult) []BatchResult {
	var start time.Time
	if c.telemetered {
		start = c.now()
	}
	results = results[:0]
	sc := scratchPool.Get().(*batchScratch)
	sc.classes = sc.classes[:0]
	sc.routes = sc.routes[:0]
	sc.pos = sc.pos[:0]
	sc.bns = sc.bns[:0]
	sc.claimCi = sc.claimCi[:0]
	sc.claimRi = sc.claimRi[:0]
	sc.claimN = sc.claimN[:0]

	var rejected, policyRejected, noRoute uint64
	for i, it := range items {
		sc.bns = append(sc.bns, -1)
		ci, ok := c.classIndex(it.Class)
		if !ok {
			results = append(results, BatchResult{Err: ErrUnknownClass})
			continue
		}
		ri := c.routeIndex(ci, it.Src, it.Dst)
		if ri < 0 {
			noRoute++
			results = append(results, BatchResult{Err: ErrNoRoute})
			continue
		}
		if p := c.policy; p != nil {
			// Per-item policy verdicts: a batch buys no policy leniency
			// either — each item is decided exactly as Admit would.
			dctx := policy.DecisionContext{
				Class: it.Class, Tenant: it.Tenant, Src: it.Src, Dst: it.Dst,
				Rate: c.classes[ci].Class.Bucket.Rate,
			}
			if c.policyFill {
				dctx.FillAfter = c.fillAfter(ci, ri)
			}
			if v := p.Decide(dctx); v != policy.Allow {
				rejected++
				policyRejected++
				_, err := policyOutcome(v)
				results = append(results, BatchResult{Err: err})
				continue
			}
		}
		if bn, ok := c.batchReserve(sc, ci, ri, len(items)-i); !ok {
			rejected++
			sc.bns[i] = int32(bn)
			results = append(results, BatchResult{Err: ErrCapacity})
			continue
		}
		results = append(results, BatchResult{})
		sc.classes = append(sc.classes, int32(ci))
		sc.routes = append(sc.routes, ri)
		sc.pos = append(sc.pos, int32(i))
	}
	c.returnClaims(sc)

	admitted := len(sc.pos)
	if cap(sc.ids) < admitted {
		sc.ids = make([]FlowID, admitted)
	}
	sc.ids = sc.ids[:admitted]
	baseSeq, ok := c.reg.putBatch(sc.classes, sc.routes, sc.ids)
	if !ok {
		// Registry shard exhausted: nothing was registered, so return
		// every reservation this batch took and fail its successes. The
		// batch's cursor block never became admits.
		c.admitGaps.Add(uint64(admitted))
		for k := range sc.pos {
			c.release(int(sc.classes[k]), sc.routes[k])
			results[sc.pos[k]].Err = ErrTooManyFlows
		}
		rejected += uint64(admitted)
		admitted = 0
	}
	if c.journal != nil && admitted > 0 {
		if cap(sc.u64) < admitted {
			sc.u64 = make([]uint64, admitted)
		}
		sc.u64 = sc.u64[:admitted]
		for k := 0; k < admitted; k++ {
			sc.u64[k] = uint64(sc.ids[k])
		}
		if err := c.journal.AppendAdmitBatch(sc.u64, baseSeq, sc.classes, sc.routes); err != nil {
			// Journal closed or failed: unwind the whole batch's
			// registrations and reservations; the successes never happened.
			c.admitGaps.Add(uint64(admitted))
			for k := 0; k < admitted; k++ {
				c.reg.take(sc.ids[k])
				c.release(int(sc.classes[k]), sc.routes[k])
				results[sc.pos[k]].Err = ErrShuttingDown
			}
			admitted = 0
		}
	}
	for k := 0; k < admitted; k++ {
		results[sc.pos[k]].ID = sc.ids[k]
	}

	if admitted > 0 {
		c.noteActive(int64(c.admittedCount() - c.tornDown.Load()))
	}
	if rejected > 0 {
		c.rejected.Add(rejected)
	}
	if policyRejected > 0 {
		c.policyRejected.Add(policyRejected)
	}
	if noRoute > 0 {
		c.noRoute.Add(noRoute)
	}
	if c.telemetered {
		// One clock read serves the whole batch: every member shares
		// start, so sharing end keeps their latencies consistent and
		// drops the dominant per-member cost at coalesced rates.
		end := c.now()
		for i, it := range items {
			switch r := results[i]; {
			case r.Err == nil:
				c.emitAt(r.ID, it.Class, it.Tenant, it.Src, it.Dst, c.rateOf(it.Class), telemetry.Admitted, -1, start, end)
			case r.Err == ErrNoRoute:
				c.emitAt(0, it.Class, it.Tenant, it.Src, it.Dst, c.rateOf(it.Class), telemetry.RejectedNoRoute, -1, start, end)
			case r.Err == ErrUnknownClass:
				c.emitAt(0, it.Class, it.Tenant, it.Src, it.Dst, 0, telemetry.RejectedUnknownClass, -1, start, end)
			case r.Err == ErrPolicyRate:
				c.emitAt(0, it.Class, it.Tenant, it.Src, it.Dst, c.rateOf(it.Class), telemetry.RejectedPolicyRate, -1, start, end)
			case r.Err == ErrPolicyShed:
				c.emitAt(0, it.Class, it.Tenant, it.Src, it.Dst, c.rateOf(it.Class), telemetry.RejectedPolicyShed, -1, start, end)
			case r.Err == ErrPolicyReserve:
				c.emitAt(0, it.Class, it.Tenant, it.Src, it.Dst, c.rateOf(it.Class), telemetry.RejectedPolicyReserve, -1, start, end)
			case r.Err == ErrShuttingDown:
				// Not an admission verdict — the journal refused, nothing
				// was admitted or rejected on capacity grounds.
			default:
				c.emitAt(0, it.Class, it.Tenant, it.Src, it.Dst, c.rateOf(it.Class), telemetry.RejectedCapacity, int(sc.bns[i]), start, end)
			}
		}
	}
	scratchPool.Put(sc)
	return results
}

// rateOf returns the configured rate of a class in bits/s, 0 when
// unknown (telemetry labeling only; the hot path uses c.rates).
func (c *Controller) rateOf(class string) float64 {
	if ci, ok := c.byName[class]; ok {
		return c.classes[ci].Class.Bucket.Rate
	}
	return 0
}

// TeardownBatch releases a batch of admitted flows. errs is reused
// when its capacity allows and returned with one entry per ID: nil on
// success, ErrUnknownFlow for IDs that are not live. Counter and
// telemetry traffic is amortized over the batch like AdmitBatch.
func (c *Controller) TeardownBatch(ids []FlowID, errs []error) []error {
	var start time.Time
	if c.telemetered {
		start = c.now()
	}
	errs = errs[:0]
	sc := scratchPool.Get().(*batchScratch)
	sc.u64 = sc.u64[:0]
	sc.claimCi = sc.claimCi[:0]
	sc.claimRi = sc.claimRi[:0]
	sc.claimN = sc.claimN[:0]
	// Torn-down flows are recorded here and emitted after the loop so
	// the whole batch shares one end-of-batch clock read (the AdmitBatch
	// pattern); ids/classes/routes are AdmitBatch scratch, idle here.
	sc.ids = sc.ids[:0]
	sc.classes = sc.classes[:0]
	sc.routes = sc.routes[:0]
	var torn int64
	for _, id := range ids {
		class, route, ok := c.reg.take(id)
		if !ok {
			errs = append(errs, ErrUnknownFlow)
			continue
		}
		ci := int(class)
		// Credits are aggregated per route in the claim table and
		// returned in bulk below — one budget CAS per distinct route
		// instead of one per flow.
		credited := false
		for k := range sc.claimCi {
			if int(sc.claimCi[k]) == ci && sc.claimRi[k] == route {
				sc.claimN[k]++
				credited = true
				break
			}
		}
		if !credited {
			if len(sc.claimCi) < maxClaimRoutes {
				sc.claimCi = append(sc.claimCi, int32(ci))
				sc.claimRi = append(sc.claimRi, route)
				sc.claimN = append(sc.claimN, 1)
			} else {
				c.releaseFlow(ci, route)
			}
		}
		torn++
		errs = append(errs, nil)
		if c.journal != nil {
			sc.u64 = append(sc.u64, uint64(id))
		}
		if c.telemetered {
			sc.ids = append(sc.ids, id)
			sc.classes = append(sc.classes, int32(ci))
			sc.routes = append(sc.routes, route)
		}
	}
	if c.telemetered && len(sc.ids) > 0 {
		end := c.now()
		for k, id := range sc.ids {
			ci := int(sc.classes[k])
			rt := c.classes[ci].Routes.Route(int(sc.routes[k]))
			c.emitAt(id, c.classes[ci].Class.Name, "", rt.Src, rt.Dst,
				c.classes[ci].Class.Bucket.Rate, telemetry.TornDown, -1, start, end)
		}
	}
	for k := range sc.claimCi {
		ci, ri, n := int(sc.claimCi[k]), sc.claimRi[k], int64(sc.claimN[k])
		if c.fastOK {
			c.creditBudget(ci, ri, n)
		} else {
			c.releaseN(ci, ri, n)
		}
	}
	sc.claimCi = sc.claimCi[:0]
	sc.claimRi = sc.claimRi[:0]
	sc.claimN = sc.claimN[:0]
	if torn > 0 {
		c.tornDown.Add(uint64(torn))
	}
	if c.journal != nil && len(sc.u64) > 0 {
		if err := c.journal.AppendTeardownBatch(sc.u64); err != nil {
			// Same contract as Teardown: the releases took effect in
			// memory but are not durable, so flag each one.
			for i := range errs {
				if errs[i] == nil {
					errs[i] = ErrShuttingDown
				}
			}
		}
	}
	scratchPool.Put(sc)
	return errs
}
