package admission

import (
	"math"
	"sync"
	"testing"

	"ubac/internal/delay"
	"ubac/internal/routes"
	"ubac/internal/routing"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

// testController builds a controller over a 3-router line with SP routes
// for voice at the given alpha.
func testController(t testing.TB, alpha float64, kind LedgerKind) (*Controller, *topology.Network) {
	t.Helper()
	net, err := topology.Line(3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	m := delay.NewModel(net)
	set, _, err := routing.SP{}.Select(m, routing.Request{Class: traffic.Voice(), Alpha: alpha})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(net, []ClassConfig{{Class: traffic.Voice(), Alpha: alpha, Routes: set}}, kind)
	if err != nil {
		t.Fatal(err)
	}
	return c, net
}

func TestNewControllerValidation(t *testing.T) {
	net, err := topology.Line(3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	other, err := topology.Line(4, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	set := routes.NewSet(net)
	foreign := routes.NewSet(other)
	cases := []struct {
		net     *topology.Network
		classes []ClassConfig
	}{
		{nil, []ClassConfig{{Class: traffic.Voice(), Alpha: 0.3, Routes: set}}},
		{net, nil},
		{net, []ClassConfig{{Class: traffic.Class{}, Alpha: 0.3, Routes: set}}},
		{net, []ClassConfig{{Class: traffic.Voice(), Alpha: 0, Routes: set}}},
		{net, []ClassConfig{{Class: traffic.Voice(), Alpha: 1.5, Routes: set}}},
		{net, []ClassConfig{{Class: traffic.Voice(), Alpha: 0.3, Routes: nil}}},
		{net, []ClassConfig{{Class: traffic.Voice(), Alpha: 0.3, Routes: foreign}}},
		{net, []ClassConfig{
			{Class: traffic.Voice(), Alpha: 0.3, Routes: set},
			{Class: traffic.Voice(), Alpha: 0.2, Routes: set},
		}},
	}
	for i, tc := range cases {
		if _, err := NewController(tc.net, tc.classes, LockedLedger); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAdmitAndTeardown(t *testing.T) {
	c, _ := testController(t, 0.3, LockedLedger)
	id, err := c.Admit("voice", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Admitted != 1 || st.Active != 1 || st.MaxActive != 1 {
		t.Errorf("stats after admit: %+v", st)
	}
	// Utilization on the route's first server: one 32 kb/s flow over
	// 100 Mb/s.
	u, err := c.Utilization("voice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-32e3/100e6) > 1e-12 {
		t.Errorf("utilization = %g, want %g", u, 32e3/100e6)
	}
	if err := c.Teardown(id); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Active != 0 || st.TornDown != 1 || st.MaxActive != 1 {
		t.Errorf("stats after teardown: %+v", st)
	}
	u, _ = c.Utilization("voice", 0)
	if u != 0 {
		t.Errorf("utilization after teardown = %g", u)
	}
	if err := c.Teardown(id); err != ErrUnknownFlow {
		t.Errorf("double teardown: %v", err)
	}
}

func TestAdmitErrors(t *testing.T) {
	c, _ := testController(t, 0.3, LockedLedger)
	if _, err := c.Admit("nope", 0, 2); err != ErrUnknownClass {
		t.Errorf("unknown class: %v", err)
	}
	if _, err := c.Admit("voice", 0, 0); err != ErrNoRoute {
		t.Errorf("self pair: %v", err)
	}
	if _, err := c.Admit("voice", -1, 2); err != ErrNoRoute {
		t.Errorf("bad src: %v", err)
	}
	if _, err := c.Admit("voice", 0, 99); err != ErrNoRoute {
		t.Errorf("bad dst: %v", err)
	}
	st := c.Stats()
	if st.NoRoute != 3 {
		t.Errorf("noRoute = %d, want 3", st.NoRoute)
	}
}

// TestPairValidationAlignment pins the (src, dst) validation contract
// across every pair-taking query: Admit, RouteDelay and Headroom must
// agree that out-of-range routers, self-pairs and unrouted pairs are
// all ErrNoRoute (the seed rejected self-pairs only in Admit).
func TestPairValidationAlignment(t *testing.T) {
	c, _ := testController(t, 0.3, LockedLedger)
	if err := c.SetDelayBounds("voice", make([]float64, c.net.NumServers())); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		src, dst int
	}{
		{"self pair", 0, 0},
		{"self pair nonzero", 2, 2},
		{"negative src", -1, 2},
		{"negative dst", 0, -1},
		{"src out of range", 99, 2},
		{"dst out of range", 0, 99},
		{"both out of range", 99, 99},
	}
	for _, tc := range cases {
		if _, err := c.Admit("voice", tc.src, tc.dst); err != ErrNoRoute {
			t.Errorf("%s: Admit = %v, want ErrNoRoute", tc.name, err)
		}
		if _, err := c.RouteDelay("voice", tc.src, tc.dst); err != ErrNoRoute {
			t.Errorf("%s: RouteDelay = %v, want ErrNoRoute", tc.name, err)
		}
		if _, err := c.Headroom("voice", tc.src, tc.dst); err != ErrNoRoute {
			t.Errorf("%s: Headroom = %v, want ErrNoRoute", tc.name, err)
		}
	}
	// A routed pair passes all three with the same configuration.
	if _, err := c.RouteDelay("voice", 0, 2); err != nil {
		t.Errorf("routed pair RouteDelay: %v", err)
	}
	if _, err := c.Headroom("voice", 0, 2); err != nil {
		t.Errorf("routed pair Headroom: %v", err)
	}
	if id, err := c.Admit("voice", 0, 2); err != nil {
		t.Errorf("routed pair Admit: %v", err)
	} else if err := c.Teardown(id); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityExhaustion(t *testing.T) {
	for _, kind := range []LedgerKind{LockedLedger, AtomicLedger} {
		c, _ := testController(t, 0.3, kind)
		// Reserved per server: 0.3·100 Mb/s = 30 Mb/s; voice is 32 kb/s;
		// capacity = floor(30e6/32e3) = 937 flows on the shared path.
		want := int(math.Floor(0.3 * 100e6 / 32e3))
		if hr, err := c.Headroom("voice", 0, 2); err != nil || hr != want {
			t.Errorf("kind %d: headroom = %d (%v), want %d", kind, hr, err, want)
		}
		var ids []FlowID
		for {
			id, err := c.Admit("voice", 0, 2)
			if err == ErrCapacity {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		if len(ids) != want {
			t.Errorf("kind %d: admitted %d flows, want %d", kind, len(ids), want)
		}
		st := c.Stats()
		if st.Rejected == 0 {
			t.Errorf("kind %d: no rejection recorded", kind)
		}
		// Rejected admission must not leak reservations: tear down all and
		// expect zero utilization everywhere.
		for _, id := range ids {
			if err := c.Teardown(id); err != nil {
				t.Fatal(err)
			}
		}
		for s := 0; s < 4; s++ {
			if u, _ := c.Utilization("voice", s); u != 0 {
				t.Errorf("kind %d: leaked %g on server %d", kind, u, s)
			}
		}
	}
}

func TestRollbackOnPartialFailure(t *testing.T) {
	// Two overlapping routes: 0->2 uses both servers, 0->1 only the
	// first. Exhaust 1->2 via 0->2 admissions is impossible (both fill
	// together), so instead fill 0->1 then check 0->2 rolls back cleanly.
	c, net := testController(t, 0.3, LockedLedger)
	for {
		if _, err := c.Admit("voice", 1, 2); err != nil {
			break
		}
	}
	// Server 1->2 is now full; admitting 0->2 must fail and leave server
	// 0->1 untouched.
	s01, _ := net.ServerFor(0, 1)
	before, _ := c.Utilization("voice", s01)
	if _, err := c.Admit("voice", 0, 2); err != ErrCapacity {
		t.Fatalf("expected ErrCapacity, got %v", err)
	}
	after, _ := c.Utilization("voice", s01)
	if before != after {
		t.Errorf("rollback leaked: %g -> %g", before, after)
	}
}

func TestConcurrentChurn(t *testing.T) {
	for _, kind := range []LedgerKind{LockedLedger, AtomicLedger} {
		c, _ := testController(t, 0.3, kind)
		const workers = 8
		const perWorker = 500
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				pairs := [][2]int{{0, 2}, {2, 0}, {0, 1}, {1, 2}}
				var held []FlowID
				for i := 0; i < perWorker; i++ {
					p := pairs[(i+w)%len(pairs)]
					if id, err := c.Admit("voice", p[0], p[1]); err == nil {
						held = append(held, id)
					}
					if len(held) > 4 {
						if err := c.Teardown(held[0]); err != nil {
							t.Errorf("teardown: %v", err)
							return
						}
						held = held[1:]
					}
				}
				for _, id := range held {
					if err := c.Teardown(id); err != nil {
						t.Errorf("final teardown: %v", err)
					}
				}
			}(w)
		}
		wg.Wait()
		st := c.Stats()
		if st.Active != 0 {
			t.Errorf("kind %d: %d flows leaked", kind, st.Active)
		}
		if st.Admitted != st.TornDown {
			t.Errorf("kind %d: admitted %d != torn down %d", kind, st.Admitted, st.TornDown)
		}
		// All reservations returned.
		for s := 0; s < 4; s++ {
			if u, _ := c.Utilization("voice", s); u != 0 {
				t.Errorf("kind %d: residual utilization %g on server %d", kind, u, s)
			}
		}
	}
}

// The admitted population on any server never exceeds α·C/ρ — the
// invariant Theorem 2 relies on (Equation (8)).
func TestUtilizationNeverExceedsAlpha(t *testing.T) {
	c, net := testController(t, 0.3, AtomicLedger)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				c.Admit("voice", 0, 2) //nolint:errcheck // rejection expected
			}
		}()
	}
	wg.Wait()
	for s := 0; s < net.NumServers(); s++ {
		u, err := c.Utilization("voice", s)
		if err != nil {
			t.Fatal(err)
		}
		if u > 0.3+1e-9 {
			t.Errorf("server %d exceeded alpha: %g", s, u)
		}
	}
}

func TestUtilizationErrors(t *testing.T) {
	c, _ := testController(t, 0.3, LockedLedger)
	if _, err := c.Utilization("nope", 0); err != ErrUnknownClass {
		t.Errorf("unknown class: %v", err)
	}
	if _, err := c.Utilization("voice", -1); err == nil {
		t.Error("bad server accepted")
	}
	if _, err := c.Headroom("nope", 0, 1); err != ErrUnknownClass {
		t.Errorf("headroom class: %v", err)
	}
	if _, err := c.Headroom("voice", 0, 99); err != ErrNoRoute {
		t.Errorf("headroom route: %v", err)
	}
	if got := c.Classes(); len(got) != 1 || got[0] != "voice" {
		t.Errorf("classes = %v", got)
	}
}

func benchController(b *testing.B, kind LedgerKind) *Controller {
	b.Helper()
	net := topology.MCI()
	m := delay.NewModel(net)
	set, _, err := routing.SP{}.Select(m, routing.Request{Class: traffic.Voice(), Alpha: 0.3})
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewController(net, []ClassConfig{{Class: traffic.Voice(), Alpha: 0.3, Routes: set}}, kind)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkAdmitTeardownLocked(b *testing.B) {
	c := benchController(b, LockedLedger)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := c.Admit("voice", i%19, (i+7)%19)
		if err == nil {
			if err := c.Teardown(id); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAdmitTeardownAtomic(b *testing.B) {
	c := benchController(b, AtomicLedger)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := c.Admit("voice", i%19, (i+7)%19)
		if err == nil {
			if err := c.Teardown(id); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAdmitParallelAtomic(b *testing.B) {
	c := benchController(b, AtomicLedger)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			id, err := c.Admit("voice", i%19, (i+7)%19)
			if err == nil {
				if err := c.Teardown(id); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func TestMultiClassIsolationCentral(t *testing.T) {
	net, err := topology.Line(3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	m := delay.NewModel(net)
	voice := traffic.Voice()
	video := traffic.Class{
		Name:     "video",
		Bucket:   traffic.LeakyBucket{Burst: 15e3, Rate: 1.5e6},
		Deadline: 0.4,
		Priority: 1,
	}
	vset, _, err := routing.SP{}.Select(m, routing.Request{Class: voice, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	dset, _, err := routing.SP{}.Select(m, routing.Request{Class: video, Alpha: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(net, []ClassConfig{
		{Class: voice, Alpha: 0.1, Routes: vset},
		{Class: video, Alpha: 0.3, Routes: dset},
	}, LockedLedger)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Classes(); len(got) != 2 {
		t.Fatalf("classes = %v", got)
	}
	// Exhaust video capacity; voice must be unaffected.
	videoAdmitted := 0
	for {
		if _, err := c.Admit("video", 0, 2); err != nil {
			break
		}
		videoAdmitted++
	}
	if want := int(math.Floor(0.3 * 100e6 / 1.5e6)); videoAdmitted != want {
		t.Errorf("video admitted %d, want %d", videoAdmitted, want)
	}
	if _, err := c.Admit("voice", 0, 2); err != nil {
		t.Errorf("voice blocked by video exhaustion: %v", err)
	}
	if u, _ := c.Utilization("video", 0); math.Abs(u-0.3) > 0.015 {
		t.Errorf("video utilization = %g, want ~0.3", u)
	}
}
