package admission

import (
	"errors"
	"testing"
	"time"

	"ubac/internal/policy"
)

// countJournal counts appends without persisting anything, to observe
// what the controller would journal.
type countJournal struct {
	admits, teardowns int
}

func (j *countJournal) AppendAdmit(id, seq uint64, class, route int32) error {
	j.admits++
	return nil
}

func (j *countJournal) AppendAdmitBatch(ids []uint64, seqBase uint64, classes, routes []int32) error {
	j.admits += len(ids)
	return nil
}

func (j *countJournal) AppendTeardown(id uint64) error {
	j.teardowns++
	return nil
}

func (j *countJournal) AppendTeardownBatch(ids []uint64) error {
	j.teardowns += len(ids)
	return nil
}

// TestAlwaysAdmitEquivalence is the compatibility property: a
// controller with AlwaysAdmit installed makes bit-for-bit the same
// decisions (IDs, errors, stats) as one with no policy at all, across
// admit-to-exhaustion and teardown.
func TestAlwaysAdmitEquivalence(t *testing.T) {
	plain, _ := testController(t, 0.3, AtomicLedger)
	gated, _ := testController(t, 0.3, AtomicLedger)
	gated.SetPolicy(policy.AlwaysAdmit{})
	if gated.Policy() != nil {
		t.Fatal("SetPolicy(AlwaysAdmit) must strip to the nil fast path")
	}

	var plainIDs, gatedIDs []FlowID
	for step := 0; ; step++ {
		src, dst := step%2, 2 // pairs (0,2) and (1,2)
		idP, errP := plain.Admit("voice", src, dst)
		idG, errG := gated.AdmitWithTenant("voice", "tenant-x", src, dst)
		if !errors.Is(errG, errP) && !errors.Is(errP, errG) {
			t.Fatalf("step %d: plain err %v, gated err %v", step, errP, errG)
		}
		if idP != idG {
			t.Fatalf("step %d: plain ID %d, gated ID %d", step, idP, idG)
		}
		if errP != nil {
			break
		}
		plainIDs = append(plainIDs, idP)
		gatedIDs = append(gatedIDs, idG)
		if step > 1<<20 {
			t.Fatal("never exhausted capacity")
		}
	}
	for i := range plainIDs {
		if i%2 == 1 {
			continue
		}
		errP := plain.Teardown(plainIDs[i])
		errG := gated.Teardown(gatedIDs[i])
		if (errP == nil) != (errG == nil) {
			t.Fatalf("teardown %d: plain %v, gated %v", i, errP, errG)
		}
	}
	if p, g := plain.Stats(), gated.Stats(); p != g {
		t.Fatalf("stats diverged:\nplain %+v\ngated %+v", p, g)
	}
}

// TestPolicyZeroAlloc pins the admit/teardown cycle at zero
// allocations with AlwaysAdmit installed (the ISSUE's hard gate: the
// default path must stay on the PR 4 fast path) and with a token
// bucket installed (Decide is CAS-only).
func TestPolicyZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	run := func(name string, install func(*Controller)) {
		c, _ := testController(t, 0.3, AtomicLedger)
		install(c)
		cycle := func() {
			id, err := c.AdmitWithTenant("voice", "tenant-a", 0, 2)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Teardown(id); err != nil {
				t.Fatal(err)
			}
		}
		// The singleton path rotates admissions across all registry
		// shards; warm every shard's slot array and freelist.
		for i := 0; i < 2*flowShards; i++ {
			cycle()
		}
		if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
			t.Errorf("%s: %.1f allocs per admit+teardown, want 0", name, allocs)
		}
	}
	run("always_admit", func(c *Controller) { c.SetPolicy(policy.AlwaysAdmit{}) })
	run("token_bucket", func(c *Controller) {
		tb, err := policy.NewTokenBucket(policy.BucketConfig{Rate: 1e9, Burst: 1e9},
			map[string]policy.BucketConfig{"tenant-a": {Rate: 1e9, Burst: 1e9}})
		if err != nil {
			t.Fatal(err)
		}
		c.SetPolicy(tb)
	})
	run("reserve_headroom", func(c *Controller) {
		p, err := policy.NewReserveHeadroom(0.1, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.SetPolicy(p)
	})
}

// TestPolicyRejectsNotJournaled: the WAL records admitted state only —
// a policy refusal must not produce a journal append, and must leave
// no reservation behind.
func TestPolicyRejectsNotJournaled(t *testing.T) {
	c, _ := testController(t, 0.3, AtomicLedger)
	j := &countJournal{}
	c.SetJournal(j)
	tb, err := policy.NewTokenBucket(policy.BucketConfig{Rate: 1e-3, Burst: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var now int64 = int64(time.Hour)
	tb.Clock = func() int64 { return now }
	c.SetPolicy(tb)

	before, err := c.Headroom("voice", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit("voice", 0, 2); err != nil {
		t.Fatalf("first admit (one token in the bucket): %v", err)
	}
	if _, err := c.Admit("voice", 0, 2); !errors.Is(err, ErrPolicyRate) {
		t.Fatalf("second admit: %v, want ErrPolicyRate", err)
	}
	// Batch path takes the same contract.
	res := c.AdmitBatch([]BatchItem{{Class: "voice", Src: 0, Dst: 2}}, nil)
	if !errors.Is(res[0].Err, ErrPolicyRate) {
		t.Fatalf("batch admit: %v, want ErrPolicyRate", res[0].Err)
	}
	if j.admits != 1 {
		t.Fatalf("journal saw %d admits, want 1 (policy rejects must not journal)", j.admits)
	}
	after, err := c.Headroom("voice", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if after != before-1 {
		t.Fatalf("headroom %d -> %d: policy rejects must reserve nothing", before, after)
	}
	st := c.Stats()
	if st.RejectedPolicy != 2 || st.Rejected != 2 {
		t.Fatalf("stats %+v: want RejectedPolicy=2 counted inside Rejected=2", st)
	}
}

// TestSLOCascadeBurst reproduces the SLO-shedding result in-process: a
// burst that overloads the cluster is absorbed by sheddable tenants
// first, then standard, while critical traffic is never policy-shed.
func TestSLOCascadeBurst(t *testing.T) {
	c, _ := testController(t, 0.3, AtomicLedger)
	load := &policy.SampledLoad{Sample: c.MaxUtilization} // Interval 0: probe every decision
	g, err := NewSLOGatedForTest(load)
	if err != nil {
		t.Fatal(err)
	}
	c.SetPolicy(g)

	// alpha=0.3 on 100 Mb/s with 32 kb/s voice flows: 937 flows fill a
	// server. Drive 3 tenants round-robin well past saturation.
	rejects := map[string]map[error]int{
		"gold": {}, "silver": {}, "bronze": {},
	}
	tenants := []string{"gold", "silver", "bronze"}
	for i := 0; i < 3600; i++ {
		tn := tenants[i%3]
		if _, err := c.AdmitWithTenant("voice", tn, 0, 2); err != nil {
			rejects[tn][err]++
		}
	}
	if n := rejects["gold"][ErrPolicyShed]; n != 0 {
		t.Errorf("critical tenant policy-shed %d times, want 0", n)
	}
	if rejects["bronze"][ErrPolicyShed] == 0 {
		t.Error("sheddable tenant was never shed under overload")
	}
	if rejects["silver"][ErrPolicyShed] == 0 {
		t.Error("standard tenant was never shed at saturation")
	}
	if rejects["bronze"][ErrPolicyShed] <= rejects["silver"][ErrPolicyShed] {
		t.Errorf("shed order inverted: bronze %d, silver %d",
			rejects["bronze"][ErrPolicyShed], rejects["silver"][ErrPolicyShed])
	}
	// Critical is only ever refused by the utilization test itself.
	if rejects["gold"][ErrCapacity] == 0 {
		t.Error("overload never reached the critical tenant's utilization test")
	}
}

// NewSLOGatedForTest builds the canonical gold/silver/bronze gate used
// by the cascade tests (standard sheds at 0.9, sheddable at 0.7).
func NewSLOGatedForTest(load policy.LoadSignal) (*policy.SLOGated, error) {
	return policy.NewSLOGated(map[string]policy.Tier{
		"gold":   policy.TierCritical,
		"silver": policy.TierStandard,
		"bronze": policy.TierSheddable,
	}, policy.TierStandard, 0.9, 0.7, load)
}

// TestAdmitBatchPolicyVerdicts: batches carry per-op tenants and get
// per-op policy verdicts, identical to the loop path.
func TestAdmitBatchPolicyVerdicts(t *testing.T) {
	c, _ := testController(t, 0.3, AtomicLedger)
	tb, err := policy.NewTokenBucket(policy.BucketConfig{Rate: 1e-3, Burst: 2},
		map[string]policy.BucketConfig{"vip": {Rate: 1e-3, Burst: 100}})
	if err != nil {
		t.Fatal(err)
	}
	var now int64 = int64(time.Hour)
	tb.Clock = func() int64 { return now }
	c.SetPolicy(tb)

	items := []BatchItem{
		{Class: "voice", Tenant: "a", Src: 0, Dst: 2}, // default bucket token 1
		{Class: "voice", Tenant: "b", Src: 0, Dst: 2}, // default bucket token 2
		{Class: "voice", Tenant: "c", Src: 0, Dst: 2}, // default bucket empty
		{Class: "voice", Tenant: "vip", Src: 0, Dst: 2},
		{Class: "voice", Tenant: "vip", Src: 0, Dst: 2},
	}
	res := c.AdmitBatch(items, nil)
	for i, wantErr := range []error{nil, nil, ErrPolicyRate, nil, nil} {
		if !errors.Is(res[i].Err, wantErr) {
			t.Errorf("item %d: err %v, want %v", i, res[i].Err, wantErr)
		}
	}
	if st := c.Stats(); st.RejectedPolicy != 1 || st.Admitted != 4 {
		t.Fatalf("stats %+v: want 4 admitted, 1 policy-rejected", st)
	}
}
