package admission

import (
	"math/rand"
	"sync"
	"testing"

	"ubac/internal/routes"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

// stressController builds a small ring network where every ordered pair
// is routed over its clockwise arc, sized so that capacity contention is
// real (admissions fail under load, forcing the rollback path).
func stressController(t *testing.T, kind LedgerKind, alpha float64) (*Controller, int) {
	t.Helper()
	const n = 6
	net, err := topology.Ring(n, 2e6) // 2 Mb/s links: ~6 concurrent 32 kb/s calls per hop at alpha=0.1
	if err != nil {
		t.Fatal(err)
	}
	set := routes.NewSet(net)
	for src := 0; src < n; src++ {
		for hops := 1; hops < n; hops++ {
			path := make([]int, hops+1)
			for j := range path {
				path[j] = (src + j) % n
			}
			r, err := routes.FromRouterPath(net, "voice", path)
			if err != nil {
				t.Fatal(err)
			}
			if err := set.Add(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	ctrl, err := NewController(net, []ClassConfig{{Class: traffic.Voice(), Alpha: alpha, Routes: set}}, kind)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl, n
}

// TestStressAdmitTeardown hammers Admit/Teardown from many goroutines
// (the CI run is under -race) and checks the two safety invariants the
// paper's run-time module must keep: no server is ever reserved past its
// verified utilization assignment, and the ledger balances to exactly
// zero once every admitted flow is torn down.
func TestStressAdmitTeardown(t *testing.T) {
	const (
		goroutines = 8
		opsPerG    = 2000
		alpha      = 0.1
	)
	for _, kind := range []LedgerKind{LockedLedger, AtomicLedger} {
		ctrl, n := stressController(t, kind, alpha)
		nsrv := ctrl.net.NumServers()

		var wg sync.WaitGroup
		leftover := make([][]FlowID, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(g) * 7919))
				var held []FlowID
				for op := 0; op < opsPerG; op++ {
					switch {
					case len(held) > 0 && rng.Intn(3) == 0:
						// Tear down a random held flow.
						i := rng.Intn(len(held))
						if err := ctrl.Teardown(held[i]); err != nil {
							t.Errorf("teardown of live flow: %v", err)
							return
						}
						held[i] = held[len(held)-1]
						held = held[:len(held)-1]
					default:
						src := rng.Intn(n)
						dst := (src + 1 + rng.Intn(n-1)) % n
						id, err := ctrl.Admit("voice", src, dst)
						switch err {
						case nil:
							held = append(held, id)
						case ErrCapacity:
							// Expected under contention.
						default:
							t.Errorf("admit(%d,%d): %v", src, dst, err)
							return
						}
					}
					if op%97 == 0 {
						// Mid-flight safety: reservations never exceed the
						// verified assignment (limits round down to whole
						// microbits, so alpha itself is the hard ceiling).
						s := rng.Intn(nsrv)
						u, err := ctrl.Utilization("voice", s)
						if err != nil {
							t.Errorf("utilization: %v", err)
							return
						}
						if u > alpha*(1+1e-9) {
							t.Errorf("server %d over-admitted: utilization %g > alpha %g", s, u, alpha)
							return
						}
					}
				}
				leftover[g] = held
			}(g)
		}
		wg.Wait()
		if t.Failed() {
			t.Fatalf("ledger kind %v: stress invariants violated", kind)
		}

		// Drain everything still held and check the ledger balances.
		for _, held := range leftover {
			for _, id := range held {
				if err := ctrl.Teardown(id); err != nil {
					t.Fatalf("final teardown: %v", err)
				}
			}
		}
		st := ctrl.Stats()
		if st.Active != 0 {
			t.Fatalf("ledger kind %v: %d flows active after full teardown", kind, st.Active)
		}
		if st.Admitted != st.TornDown {
			t.Fatalf("ledger kind %v: admitted %d != torn down %d", kind, st.Admitted, st.TornDown)
		}
		if st.MaxActive < st.Active || st.Admitted == 0 {
			t.Fatalf("ledger kind %v: implausible stats %+v", kind, st)
		}
		for s := 0; s < nsrv; s++ {
			u, err := ctrl.Utilization("voice", s)
			if err != nil {
				t.Fatal(err)
			}
			if u != 0 {
				t.Fatalf("ledger kind %v: server %d utilization %g after full teardown", kind, s, u)
			}
		}
		// With the ledger empty, every pair must report its full headroom.
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				h, err := ctrl.Headroom("voice", src, dst)
				if err != nil {
					t.Fatal(err)
				}
				if h <= 0 {
					t.Fatalf("ledger kind %v: pair (%d,%d) headroom %d after full teardown", kind, src, dst, h)
				}
			}
		}
	}
}
