package admission

import (
	"sync"
	"testing"
)

// TestRegistryPutTake round-trips flows through the raw registry and
// checks that IDs decode to the records that were stored.
func TestRegistryPutTake(t *testing.T) {
	r := newFlowRegistry()
	const n = 1000
	ids := make([]FlowID, n)
	for i := 0; i < n; i++ {
		id, _, ok := r.put(int32(i%3), int32(i))
		if !ok {
			t.Fatalf("put %d failed", i)
		}
		if id == 0 {
			t.Fatalf("put %d returned zero ID", i)
		}
		ids[i] = id
	}
	seen := make(map[FlowID]bool, n)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate ID %d", id)
		}
		seen[id] = true
	}
	for i, id := range ids {
		class, route, ok := r.take(id)
		if !ok {
			t.Fatalf("take %d failed", i)
		}
		if class != int32(i%3) || route != int32(i) {
			t.Fatalf("take %d: got (%d,%d), want (%d,%d)", i, class, route, i%3, i)
		}
	}
	for _, id := range ids {
		if _, _, ok := r.take(id); ok {
			t.Fatal("double take succeeded")
		}
	}
}

// TestRegistryUnknownIDs feeds the registry IDs it never issued:
// out-of-range slots, wrong generations, and zero.
func TestRegistryUnknownIDs(t *testing.T) {
	r := newFlowRegistry()
	id, _, _ := r.put(1, 2)
	for _, bogus := range []FlowID{
		0,
		id + flowShards,    // same shard+gen, slot past len(slots)
		id ^ (1 << 32),     // live slot, wrong generation
		FlowID(^uint64(0)), // everything out of range
		id ^ flowShardMask, // different shard, nothing there
	} {
		if _, _, ok := r.take(bogus); ok {
			t.Errorf("take(%#x) succeeded on never-issued ID", uint64(bogus))
		}
	}
	if _, _, ok := r.take(id); !ok {
		t.Fatal("live ID refused after bogus probes")
	}
}

// TestRegistryGenerationReuse drives one shard's slot through reuse and
// checks the stale ID from the previous occupant no longer resolves.
func TestRegistryGenerationReuse(t *testing.T) {
	r := newFlowRegistry()
	stale, _, _ := r.put(0, 7)
	if _, _, ok := r.take(stale); !ok {
		t.Fatal("take of live flow failed")
	}
	// The cursor round-robins shards, so after flowShards more puts the
	// same shard's freelist hands the slot to a new flow.
	var reused FlowID
	for i := 0; i < flowShards; i++ {
		id, _, _ := r.put(0, 99)
		if id&flowShardMask == stale&flowShardMask {
			reused = id
		} else {
			r.take(id)
		}
	}
	if reused == 0 {
		t.Fatal("slot was not reused after a full shard cycle")
	}
	if reused == stale {
		t.Fatal("reused slot got the same ID (generation not bumped)")
	}
	if _, _, ok := r.take(stale); ok {
		t.Fatal("stale ID resolved to the slot's new occupant")
	}
	if class, route, ok := r.take(reused); !ok || class != 0 || route != 99 {
		t.Fatalf("new occupant: (%d,%d,%v)", class, route, ok)
	}
}

// TestRegistryConcurrentChurn hammers the raw registry from many
// goroutines (run under -race in CI) and checks conservation: every
// put is matched by exactly one successful take, and the registry ends
// empty.
func TestRegistryConcurrentChurn(t *testing.T) {
	r := newFlowRegistry()
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var held []FlowID
			for i := 0; i < perWorker; i++ {
				id, _, ok := r.put(int32(w), int32(i))
				if !ok {
					t.Error("put failed")
					return
				}
				held = append(held, id)
				if len(held) > 16 {
					victim := held[0]
					held = held[1:]
					if class, _, ok := r.take(victim); !ok || class != int32(w) {
						t.Errorf("take returned (%d,%v), want (%d,true)", class, ok, w)
						return
					}
				}
			}
			for _, id := range held {
				if _, _, ok := r.take(id); !ok {
					t.Error("final take failed")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if live := r.snapshot(); len(live) != 0 {
		t.Fatalf("%d flows live after full drain", len(live))
	}
}

// TestControllerStaleFlowID is the controller-level ID-reuse check: a
// torn-down ID must keep failing with ErrUnknownFlow even after its
// registry slot has been recycled by later admissions.
func TestControllerStaleFlowID(t *testing.T) {
	c, _ := testController(t, 0.3, AtomicLedger)
	stale, err := c.Admit("voice", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Teardown(stale); err != nil {
		t.Fatal(err)
	}
	// Cycle enough admissions that some later flow reuses the slot.
	var held []FlowID
	for i := 0; i < 4*flowShards; i++ {
		id, err := c.Admit("voice", 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, id)
	}
	if err := c.Teardown(stale); err != ErrUnknownFlow {
		t.Fatalf("stale teardown: %v, want ErrUnknownFlow", err)
	}
	for _, id := range held {
		if err := c.Teardown(id); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Active != 0 {
		t.Fatalf("%d active after drain", st.Active)
	}
	for s := 0; s < 2; s++ {
		if u, _ := c.Utilization("voice", s); u != 0 {
			t.Fatalf("server %d utilization %g after drain", s, u)
		}
	}
}

// TestAdmitFastPathZeroAlloc pins the untelemetered admit/teardown
// fast path at zero allocations per operation, the ISSUE 4 acceptance
// gate (testing.AllocsPerRun runs the body with warmed shard
// freelists, i.e. the steady state).
func TestAdmitFastPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc gate runs uninstrumented")
	}
	for _, kind := range []LedgerKind{LockedLedger, AtomicLedger} {
		c, _ := testController(t, 0.3, kind)
		// Warm every shard's slot freelist.
		for i := 0; i < 2*flowShards; i++ {
			id, err := c.Admit("voice", 0, 2)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Teardown(id); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(1000, func() {
			id, err := c.Admit("voice", 0, 2)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Teardown(id); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("ledger kind %v: %g allocs/op on the fast path, want 0", kind, allocs)
		}
	}
}
