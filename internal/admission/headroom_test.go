package admission

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"ubac/internal/telemetry"
	"ubac/internal/wal"
)

// captureSink records every admission decision so lockstep tests can
// compare verdicts and bottleneck attribution event by event.
type captureSink struct {
	mu        sync.Mutex
	decisions []telemetry.Decision
}

func (s *captureSink) Decision(d telemetry.Decision) {
	s.mu.Lock()
	s.decisions = append(s.decisions, d)
	s.mu.Unlock()
}

func (s *captureSink) FixedPoint(telemetry.FixedPoint)   {}
func (s *captureSink) RouteSelect(telemetry.RouteSelect) {}
func (s *captureSink) RouteCache(telemetry.RouteCache)   {}
func (s *captureSink) SimRun(telemetry.SimRun)           {}

func (s *captureSink) take() []telemetry.Decision {
	s.mu.Lock()
	d := s.decisions
	s.decisions = nil
	s.mu.Unlock()
	return d
}

// twin is one side of a lockstep pair: a controller plus its capture
// sink and the flows it currently holds.
type twin struct {
	ctrl *Controller
	sink *captureSink
	live []FlowID
}

func newTwin(t *testing.T, fast bool) *twin {
	t.Helper()
	// Alpha 0.2 on the 100 Mb/s line leaves 625 voice slots per hop:
	// deep enough that refills grant real leases (headroom above the
	// guard band), small enough that the schedule reaches saturation.
	c, _ := testController(t, 0.2, AtomicLedger)
	c.SetFastPath(fast)
	s := &captureSink{}
	c.SetSink(s)
	return &twin{ctrl: c, sink: s}
}

// lockstepSchedule drives both twins through an identical seeded
// op sequence and fails on the first divergence in returned errors,
// flow IDs, decision verdicts, or bottleneck attribution. checkEvery
// also compares per-server utilization that often.
func lockstepSchedule(t *testing.T, rng *rand.Rand, a, b *twin, steps, checkEvery int) {
	t.Helper()
	pairs := [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 0}, {2, 1}, {1, 0}}
	for i := 0; i < steps; i++ {
		switch op := rng.Intn(10); {
		case op < 5: // singleton admit, biased so the population grows
			p := pairs[rng.Intn(len(pairs))]
			idA, errA := a.ctrl.Admit("voice", p[0], p[1])
			idB, errB := b.ctrl.Admit("voice", p[0], p[1])
			if !errors.Is(errA, errB) || !errors.Is(errB, errA) {
				t.Fatalf("step %d: admit verdicts diverge: fast=%v exact=%v", i, errA, errB)
			}
			if idA != idB {
				t.Fatalf("step %d: admit IDs diverge: fast=%v exact=%v", i, idA, idB)
			}
			if errA == nil {
				a.live = append(a.live, idA)
				b.live = append(b.live, idB)
			}
		case op < 6: // admit with no route / unknown class
			var errA, errB error
			if rng.Intn(2) == 0 {
				_, errA = a.ctrl.Admit("voice", 0, 0)
				_, errB = b.ctrl.Admit("voice", 0, 0)
			} else {
				_, errA = a.ctrl.Admit("nosuch", 0, 1)
				_, errB = b.ctrl.Admit("nosuch", 0, 1)
			}
			if !errors.Is(errA, errB) || !errors.Is(errB, errA) {
				t.Fatalf("step %d: error verdicts diverge: fast=%v exact=%v", i, errA, errB)
			}
		case op < 7: // batch admit
			n := 1 + rng.Intn(8)
			items := make([]BatchItem, n)
			for j := range items {
				p := pairs[rng.Intn(len(pairs))]
				items[j] = BatchItem{Class: "voice", Src: p[0], Dst: p[1]}
			}
			resA := a.ctrl.AdmitBatch(items, nil)
			resB := b.ctrl.AdmitBatch(items, nil)
			for j := range resA {
				if !errors.Is(resA[j].Err, resB[j].Err) || !errors.Is(resB[j].Err, resA[j].Err) {
					t.Fatalf("step %d item %d: batch verdicts diverge: fast=%v exact=%v",
						i, j, resA[j].Err, resB[j].Err)
				}
				if resA[j].ID != resB[j].ID {
					t.Fatalf("step %d item %d: batch IDs diverge", i, j)
				}
				if resA[j].Err == nil {
					a.live = append(a.live, resA[j].ID)
					b.live = append(b.live, resB[j].ID)
				}
			}
		case op < 9: // singleton teardown (same position both sides)
			if len(a.live) == 0 {
				continue
			}
			k := rng.Intn(len(a.live))
			errA := a.ctrl.Teardown(a.live[k])
			errB := b.ctrl.Teardown(b.live[k])
			if !errors.Is(errA, errB) || !errors.Is(errB, errA) {
				t.Fatalf("step %d: teardown verdicts diverge: fast=%v exact=%v", i, errA, errB)
			}
			a.live[k] = a.live[len(a.live)-1]
			a.live = a.live[:len(a.live)-1]
			b.live[k] = b.live[len(b.live)-1]
			b.live = b.live[:len(b.live)-1]
		default: // batch teardown of a random prefix slice
			if len(a.live) < 2 {
				continue
			}
			n := 1 + rng.Intn(len(a.live)/2)
			errsA := a.ctrl.TeardownBatch(a.live[:n], nil)
			errsB := b.ctrl.TeardownBatch(b.live[:n], nil)
			for j := 0; j < n; j++ {
				if !errors.Is(errsA[j], errsB[j]) || !errors.Is(errsB[j], errsA[j]) {
					t.Fatalf("step %d item %d: batch teardown diverges", i, j)
				}
			}
			a.live = a.live[n:]
			b.live = b.live[n:]
		}
		if checkEvery > 0 && i%checkEvery == 0 {
			compareUtil(t, a.ctrl, b.ctrl, i)
		}
	}
}

// compareUtil asserts the twins agree exactly on every per-server
// utilization figure — the fast side's lease-adjusted accounting must
// be indistinguishable from exact reservations.
func compareUtil(t *testing.T, a, b *Controller, step int) {
	t.Helper()
	for _, class := range a.Classes() {
		for s := 0; ; s++ {
			ua, errA := a.Utilization(class, s)
			ub, errB := b.Utilization(class, s)
			if (errA != nil) != (errB != nil) {
				t.Fatalf("step %d: utilization errors diverge on server %d", step, s)
			}
			if errA != nil {
				break
			}
			if ua != ub {
				t.Fatalf("step %d: utilization diverges on (%s, %d): fast=%v exact=%v",
					step, class, s, ua, ub)
			}
		}
	}
}

// compareDecisions asserts both sides emitted the same verdict and
// bottleneck sequence. Latency differs by construction and is ignored.
func compareDecisions(t *testing.T, a, b *twin) {
	t.Helper()
	da, db := a.sink.take(), b.sink.take()
	if len(da) != len(db) {
		t.Fatalf("decision counts diverge: fast=%d exact=%d", len(da), len(db))
	}
	for i := range da {
		if da[i].Verdict != db[i].Verdict {
			t.Fatalf("decision %d: verdicts diverge: fast=%v exact=%v", i, da[i].Verdict, db[i].Verdict)
		}
		if da[i].Bottleneck != db[i].Bottleneck {
			t.Fatalf("decision %d (%v): bottleneck attribution diverges: fast=%d exact=%d",
				i, da[i].Verdict, da[i].Bottleneck, db[i].Bottleneck)
		}
	}
}

// TestFastPathEquivalenceLockstep is the tentpole property test: a
// fast-path controller and an exact-walk controller driven through an
// identical seeded schedule — growth, churn, saturation, full drain —
// must agree on every verdict, every flow ID, every bottleneck
// attribution, every interim utilization reading, and final stats.
func TestFastPathEquivalenceLockstep(t *testing.T) {
	fast := newTwin(t, true)
	exact := newTwin(t, false)
	rng := rand.New(rand.NewSource(42))

	lockstepSchedule(t, rng, fast, exact, 4000, 64)

	// Surge phase: push one pair to rejection so the guard band and
	// reclaim run, verifying both sides refuse at the same admit with
	// the same bottleneck. The pair (0,2) crosses both hops, so its
	// exhaustion saturates the whole line.
	surged := false
	for i := 0; i < 5000; i++ {
		idA, errA := fast.ctrl.Admit("voice", 0, 2)
		idB, errB := exact.ctrl.Admit("voice", 0, 2)
		if !errors.Is(errA, errB) || !errors.Is(errB, errA) {
			t.Fatalf("surge %d: verdicts diverge: fast=%v exact=%v", i, errA, errB)
		}
		if errA == nil {
			if idA != idB {
				t.Fatalf("surge %d: IDs diverge", i)
			}
			fast.live = append(fast.live, idA)
			exact.live = append(exact.live, idB)
			continue
		}
		surged = true
		break
	}
	if !surged {
		t.Fatal("surge never saturated the line")
	}
	// Churn at the edge: near-full is where a stale budget or a missing
	// reclaim would let the fast side admit what the exact test refuses.
	lockstepSchedule(t, rng, fast, exact, 1500, 32)
	compareDecisions(t, fast, exact)

	// The schedule must actually have crossed into saturation: rejects
	// prove the guard band + reclaim path ran, budget hits prove the
	// fast path served steady-state traffic.
	st := fast.ctrl.Stats()
	if st.Rejected == 0 {
		t.Fatal("schedule never saturated; the test proves nothing about the guard band")
	}
	fs := fast.ctrl.FastPathStats()
	if fs.Hits == 0 || fs.Fallback == 0 {
		t.Fatalf("schedule did not exercise both decision paths: %+v", fs)
	}
	es := exact.ctrl.FastPathStats()
	if es.Hits != 0 || es.Stale != 0 {
		t.Fatalf("exact twin leaked onto the fast path: %+v", es)
	}

	// Full drain, then the two sides must agree at quiesce too.
	for k := range fast.live {
		if err := fast.ctrl.Teardown(fast.live[k]); err != nil {
			t.Fatal(err)
		}
		if err := exact.ctrl.Teardown(exact.live[k]); err != nil {
			t.Fatal(err)
		}
	}
	compareUtil(t, fast.ctrl, exact.ctrl, -1)
	sa, sb := fast.ctrl.Stats(), exact.ctrl.Stats()
	if sa != sb {
		t.Fatalf("final stats diverge:\nfast:  %+v\nexact: %+v", sa, sb)
	}
	if sa.Active != 0 {
		t.Fatalf("drained controller still has %d active flows", sa.Active)
	}
}

// TestFastPathEquivalenceAcrossRecovery kills a journaled fast-path
// controller mid-schedule and recovers the crash image into two fresh
// controllers — one fast, one exact. Both must restore identical state
// and stay in lockstep through a second schedule.
func TestFastPathEquivalenceAcrossRecovery(t *testing.T) {
	ctrl, _ := testController(t, 0.2, AtomicLedger)
	dir := t.TempDir()
	log := openJournal(t, ctrl, dir, wal.ModeSync)

	rng := rand.New(rand.NewSource(7))
	pairs := [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 0}}
	var live []FlowID
	for i := 0; i < 600; i++ {
		if rng.Intn(3) < 2 || len(live) == 0 {
			p := pairs[rng.Intn(len(pairs))]
			if id, err := ctrl.Admit("voice", p[0], p[1]); err == nil {
				live = append(live, id)
			}
		} else {
			k := rng.Intn(len(live))
			if err := ctrl.Teardown(live[k]); err != nil {
				t.Fatal(err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if i == 300 {
			if err := log.WriteSnapshot(ctrl.MarshalRegistry); err != nil {
				t.Fatal(err)
			}
		}
	}
	crash := crashImage(t, dir)
	log.Close()

	build := func(fast bool) *twin {
		c, _ := testController(t, 0.2, AtomicLedger)
		c.SetFastPath(fast)
		tw := &twin{ctrl: c, sink: &captureSink{}}
		info, err := wal.Recover(crash, c.Fingerprint(), c)
		if err != nil {
			t.Fatal(err)
		}
		if !info.SnapshotLoaded && info.ReplayedAdmits == 0 {
			t.Fatal("crash image restored nothing")
		}
		if err := c.FinishRecovery(); err != nil {
			t.Fatal(err)
		}
		c.SetSink(tw.sink)
		tw.live = append([]FlowID(nil), live...)
		return tw
	}
	fast := build(true)
	exact := build(false)

	compareUtil(t, fast.ctrl, exact.ctrl, -2)
	sa, sb := fast.ctrl.Stats(), exact.ctrl.Stats()
	if sa != sb {
		t.Fatalf("recovered stats diverge:\nfast:  %+v\nexact: %+v", sa, sb)
	}

	// The recovered images must also behave identically under load:
	// same verdicts, same IDs, same attribution, through saturation.
	lockstepSchedule(t, rand.New(rand.NewSource(99)), fast, exact, 2500, 50)
	compareDecisions(t, fast, exact)
	if fs := fast.ctrl.FastPathStats(); fs.Hits == 0 {
		t.Fatalf("post-recovery fast path never hit: %+v", fs)
	}
	compareUtil(t, fast.ctrl, exact.ctrl, -3)
}

// TestFastPathConcurrentDrain churns net-zero admit/teardown pairs
// from several goroutines on both configurations, then drains and
// compares: any budget the fast path leaked, double-credited, or
// failed to subtract in its lease-adjusted accounting shows up as a
// utilization mismatch. Run with -race this doubles as the memory
// model check on the headroom plane.
func TestFastPathConcurrentDrain(t *testing.T) {
	for _, fastOn := range []bool{true, false} {
		fast := newTwin(t, fastOn)
		const g = 4
		var wg sync.WaitGroup
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				pairs := [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 0}}
				rng := rand.New(rand.NewSource(int64(w)))
				var mine []FlowID
				for i := 0; i < 800; i++ {
					if rng.Intn(2) == 0 || len(mine) == 0 {
						p := pairs[rng.Intn(len(pairs))]
						if id, err := fast.ctrl.Admit("voice", p[0], p[1]); err == nil {
							mine = append(mine, id)
						}
					} else {
						k := rng.Intn(len(mine))
						if err := fast.ctrl.Teardown(mine[k]); err != nil {
							t.Error(err)
							return
						}
						mine[k] = mine[len(mine)-1]
						mine = mine[:len(mine)-1]
					}
				}
				for _, id := range mine {
					if err := fast.ctrl.Teardown(id); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		if st := fast.ctrl.Stats(); st.Active != 0 {
			t.Fatalf("fast=%v: %d flows leaked after drain", fastOn, st.Active)
		}
		for _, class := range fast.ctrl.Classes() {
			for s := 0; ; s++ {
				u, err := fast.ctrl.Utilization(class, s)
				if err != nil {
					break
				}
				if u != 0 {
					t.Fatalf("fast=%v: server %d still shows %v utilization after drain",
						fastOn, s, u)
				}
			}
		}
	}
}
