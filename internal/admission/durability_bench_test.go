package admission

import (
	"fmt"
	"testing"

	"ubac/internal/wal"
)

// BenchmarkAdmitDurable prices durability: the contention-ring
// admit/teardown loop with the journal off, on with async group commit,
// and on with sync (ack-after-fsync), at growing batch sizes. ns/op is
// per flow. The ISSUE 5 acceptance point is async at batch >= 64 within
// 2x of off — group commit must amortize the write+fsync across the
// batch, not serialize on it.
func BenchmarkAdmitDurable(b *testing.B) {
	for _, mode := range []string{"off", "async", "sync"} {
		for _, size := range []int{1, 64, 256} {
			b.Run(fmt.Sprintf("fsync=%s/batch=%d", mode, size), func(b *testing.B) {
				ctrl := contentionController(b, AtomicLedger)
				if mode != "off" {
					m := wal.ModeAsync
					if mode == "sync" {
						m = wal.ModeSync
					}
					l, err := wal.Open(wal.Options{Dir: b.TempDir(), Mode: m, SegmentBytes: 64 << 20, Fingerprint: ctrl.Fingerprint()})
					if err != nil {
						b.Fatal(err)
					}
					b.Cleanup(func() { l.Close() })
					ctrl.SetJournal(l)
				}
				if size == 1 {
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						id, err := ctrl.Admit("voice", i%contentionRing, (i+1)%contentionRing)
						if err != nil {
							b.Fatal(err)
						}
						if err := ctrl.Teardown(id); err != nil {
							b.Fatal(err)
						}
					}
				} else {
					items := make([]BatchItem, size)
					for j := range items {
						items[j] = BatchItem{Class: "voice", Src: j % contentionRing, Dst: (j + 1) % contentionRing}
					}
					var results []BatchResult
					ids := make([]FlowID, size)
					var errs []error
					b.ResetTimer()
					for i := 0; i < b.N; i += size {
						results = ctrl.AdmitBatch(items, results)
						for j, r := range results {
							if r.Err != nil {
								b.Fatal(r.Err)
							}
							ids[j] = r.ID
						}
						errs = ctrl.TeardownBatch(ids, errs)
						for _, err := range errs {
							if err != nil {
								b.Fatal(err)
							}
						}
					}
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "admits/s")
			})
		}
	}
}
