package admission

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ubac/internal/delay"
	"ubac/internal/routing"
	"ubac/internal/topology"
	"ubac/internal/traffic"
	"ubac/internal/wal"
)

// openJournal attaches a WAL in dir to the controller.
func openJournal(t *testing.T, c *Controller, dir string, mode wal.Mode) *wal.Log {
	t.Helper()
	l, err := wal.Open(wal.Options{Dir: dir, Mode: mode, Fingerprint: c.Fingerprint()})
	if err != nil {
		t.Fatal(err)
	}
	c.SetJournal(l)
	return l
}

// crashImage copies the WAL directory byte-for-byte while the log is
// still open: the state a rebooted process would find after a hard stop
// with no clean shutdown.
func crashImage(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// recoverInto replays the crash image into a fresh controller built by
// build, failing the test on any recovery error.
func recoverInto(t *testing.T, build func() *Controller, dir string) (*Controller, *wal.RecoveryInfo) {
	t.Helper()
	c := build()
	info, err := wal.Recover(dir, c.Fingerprint(), c)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FinishRecovery(); err != nil {
		t.Fatal(err)
	}
	return c, info
}

// utilizations snapshots Utilization for every class on every server.
func utilizations(t *testing.T, c *Controller, net *topology.Network) map[string][]float64 {
	t.Helper()
	out := map[string][]float64{}
	for _, class := range c.Classes() {
		u := make([]float64, net.NumServers())
		for s := range u {
			v, err := c.Utilization(class, s)
			if err != nil {
				t.Fatal(err)
			}
			u[s] = v
		}
		out[class] = u
	}
	return out
}

// TestKillAndRestartRecovery is the ISSUE acceptance test: admit a mix
// of singleton and batch flows under a sync journal, tear a subset
// down, snapshot mid-run, keep going, then hard-stop with no clean
// shutdown. Recovery from the crash image must reproduce the admitted
// population, the per-class utilization on every server, and the
// stale-ID semantics exactly.
func TestKillAndRestartRecovery(t *testing.T) {
	ctrl, net := testController(t, 0.4, AtomicLedger)
	dir := t.TempDir()
	log := openJournal(t, ctrl, dir, wal.ModeSync)

	pairs := [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 0}, {1, 0}, {2, 1}}
	var live, dead []FlowID
	admitOne := func(i int) {
		p := pairs[i%len(pairs)]
		id, err := ctrl.Admit("voice", p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, id)
	}

	// Wave 1: 10 singletons + one batch of 6.
	for i := 0; i < 10; i++ {
		admitOne(i)
	}
	items := make([]BatchItem, 6)
	for i := range items {
		p := pairs[i%len(pairs)]
		items[i] = BatchItem{Class: "voice", Src: p[0], Dst: p[1]}
	}
	for _, r := range ctrl.AdmitBatch(items, nil) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		live = append(live, r.ID)
	}
	// Tear down 5: three singletons, then a batch of two.
	for i := 0; i < 3; i++ {
		if err := ctrl.Teardown(live[i]); err != nil {
			t.Fatal(err)
		}
		dead = append(dead, live[i])
	}
	for _, err := range ctrl.TeardownBatch([]FlowID{live[3], live[4]}, nil) {
		if err != nil {
			t.Fatal(err)
		}
	}
	dead = append(dead, live[3], live[4])
	live = live[5:]

	// Snapshot the mid-run state, then keep mutating so recovery has to
	// layer the log tail on top of it.
	if err := log.WriteSnapshot(ctrl.MarshalRegistry); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		admitOne(i + 1)
	}
	for i := 0; i < 2; i++ {
		id := live[len(live)-1-i]
		if err := ctrl.Teardown(id); err != nil {
			t.Fatal(err)
		}
		dead = append(dead, id)
	}
	live = live[:len(live)-2]

	wantSnap := ctrl.Snapshot()
	wantUtil := utilizations(t, ctrl, net)
	wantStats := ctrl.Stats()

	img := crashImage(t, dir)
	log.Close() // hygiene only; the image above is the crash state

	build := func() *Controller { c, _ := testController(t, 0.4, AtomicLedger); return c }
	rec, info := recoverInto(t, build, img)
	if !info.SnapshotLoaded {
		t.Fatal("recovery did not load the mid-run snapshot")
	}

	if got := rec.Snapshot(); !reflect.DeepEqual(got, wantSnap) {
		t.Fatalf("recovered population:\n got %v\nwant %v", got, wantSnap)
	}
	if got := utilizations(t, rec, net); !reflect.DeepEqual(got, wantUtil) {
		t.Fatalf("recovered utilization:\n got %v\nwant %v", got, wantUtil)
	}
	gotStats := rec.Stats()
	if gotStats.Active != wantStats.Active || gotStats.Admitted != wantStats.Admitted ||
		gotStats.TornDown != wantStats.TornDown {
		t.Fatalf("recovered stats %+v, want %+v", gotStats, wantStats)
	}

	// Torn-down IDs must stay unknown: the slot generations burned into
	// them were bumped, so a stale handle can never hit a recycled slot.
	for _, id := range dead {
		if err := rec.Teardown(id); !errors.Is(err, ErrUnknownFlow) {
			t.Fatalf("stale id %#x: %v, want ErrUnknownFlow", id, err)
		}
	}
	// Every live ID still resolves, and draining them empties the ledger.
	for _, id := range live {
		if err := rec.Teardown(id); err != nil {
			t.Fatalf("live id %#x: %v", id, err)
		}
	}
	if act := rec.Stats().Active; act != 0 {
		t.Fatalf("%d flows left after draining recovered population", act)
	}
	for class, u := range utilizations(t, rec, net) {
		for s, v := range u {
			if v != 0 {
				t.Fatalf("class %s server %d: utilization %g after drain", class, s, v)
			}
		}
	}
}

// mciController mirrors testController on the paper's pinned MCI
// backbone.
func mciController(t testing.TB) (*Controller, *topology.Network) {
	t.Helper()
	net := topology.MCI()
	m := delay.NewModel(net)
	set, _, err := routing.SP{}.Select(m, routing.Request{Class: traffic.Voice(), Alpha: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(net, []ClassConfig{{Class: traffic.Voice(), Alpha: 0.4, Routes: set}}, AtomicLedger)
	if err != nil {
		t.Fatal(err)
	}
	return c, net
}

// TestRecoveryDeterminismMCI: a seeded admit/teardown/snapshot workload
// on the pinned MCI topology, hard-stopped; two independent recoveries
// of the same crash image must produce byte-identical registry images,
// and both must match the pre-crash population and utilization.
func TestRecoveryDeterminismMCI(t *testing.T) {
	ctrl, net := mciController(t)
	dir := t.TempDir()
	log := openJournal(t, ctrl, dir, wal.ModeSync)

	set, err := ctrl.ClassRoutes("voice")
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ src, dst int }
	var pairs []pair
	for i := 0; i < set.Len(); i++ {
		rt := set.Route(i)
		pairs = append(pairs, pair{rt.Src, rt.Dst})
	}
	rng := rand.New(rand.NewSource(0x5eed))
	var live []FlowID
	for op := 0; op < 300; op++ {
		if op == 150 {
			if err := log.WriteSnapshot(ctrl.MarshalRegistry); err != nil {
				t.Fatal(err)
			}
		}
		if len(live) > 0 && rng.Intn(10) < 3 {
			i := rng.Intn(len(live))
			if err := ctrl.Teardown(live[i]); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		p := pairs[rng.Intn(len(pairs))]
		id, err := ctrl.Admit("voice", p.src, p.dst)
		if err != nil {
			t.Fatal(err) // MCI at alpha 0.4 holds far more than this workload
		}
		live = append(live, id)
	}
	wantSnap := ctrl.Snapshot()
	wantUtil := utilizations(t, ctrl, net)

	img := crashImage(t, dir)
	log.Close()

	build := func() *Controller { c, _ := mciController(t); return c }
	recA, infoA := recoverInto(t, build, img)
	recB, infoB := recoverInto(t, build, img)
	if *infoA != *infoB {
		t.Fatalf("recovery info diverged: %+v vs %+v", infoA, infoB)
	}
	seqA, payA := recA.MarshalRegistry()
	seqB, payB := recB.MarshalRegistry()
	if seqA != seqB || !bytes.Equal(payA, payB) {
		t.Fatalf("independent recoveries produced different registry images (seq %d vs %d, %d vs %d bytes)",
			seqA, seqB, len(payA), len(payB))
	}
	if got := recA.Snapshot(); !reflect.DeepEqual(got, wantSnap) {
		t.Fatalf("recovered population diverged from pre-crash state: %d vs %d flows", len(got), len(wantSnap))
	}
	if got := utilizations(t, recA, net); !reflect.DeepEqual(got, wantUtil) {
		t.Fatal("recovered utilization diverged from pre-crash state")
	}
}

// TestPrefixRecoveryMatchesReplay is the controller-level crash
// property: for EVERY byte-length prefix of the journal, recovery must
// land in exactly the state the in-memory controller had after the
// operations that prefix wholly contains. The journal is written in
// sync mode with singleton ops, so op order equals record order and
// "records replayed" indexes directly into the recorded state history.
func TestPrefixRecoveryMatchesReplay(t *testing.T) {
	ctrl, net := testController(t, 0.4, AtomicLedger)
	dir := t.TempDir()
	log := openJournal(t, ctrl, dir, wal.ModeSync)

	type state struct {
		snap []DroppedFlow
		util map[string][]float64
	}
	pairs := [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 0}}
	var live []FlowID
	states := []state{{snap: ctrl.Snapshot(), util: utilizations(t, ctrl, net)}}
	rng := rand.New(rand.NewSource(7))
	const ops = 28
	for op := 0; op < ops; op++ {
		if len(live) > 2 && rng.Intn(3) == 0 {
			i := rng.Intn(len(live))
			if err := ctrl.Teardown(live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		} else {
			p := pairs[op%len(pairs)]
			id, err := ctrl.Admit("voice", p[0], p[1])
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		}
		states = append(states, state{snap: ctrl.Snapshot(), util: utilizations(t, ctrl, net)})
	}
	img := crashImage(t, dir)
	log.Close()

	// The single segment is preallocated and zero-padded; the journaled
	// data ends at the last non-zero byte.
	entries, err := os.ReadDir(img)
	if err != nil || len(entries) != 1 {
		t.Fatalf("crash image: %v, %d files", err, len(entries))
	}
	segPath := filepath.Join(img, entries[0].Name())
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	end := 0
	for i, b := range data {
		if b != 0 {
			end = i + 1
		}
	}

	for cut := 0; cut <= end+9; cut++ {
		work := t.TempDir()
		if err := os.WriteFile(filepath.Join(work, entries[0].Name()), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		c, _ := testController(t, 0.4, AtomicLedger)
		info, err := wal.Recover(work, c.Fingerprint(), c)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if err := c.FinishRecovery(); err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		n := info.ReplayedAdmits + info.ReplayedTeardowns
		if n >= uint64(len(states)) {
			t.Fatalf("cut=%d: %d records replayed, only %d ops ran", cut, n, ops)
		}
		want := states[n]
		if got := c.Snapshot(); !reflect.DeepEqual(got, want.snap) {
			t.Fatalf("cut=%d (%d ops): population\n got %v\nwant %v", cut, n, got, want.snap)
		}
		if got := utilizations(t, c, net); !reflect.DeepEqual(got, want.util) {
			t.Fatalf("cut=%d (%d ops): utilization mismatch", cut, n)
		}
	}
}

// TestJournalClosedMapsToShuttingDown: once the journal is closed (the
// drain path), admits fail fast with ErrShuttingDown and reserve
// nothing, batch admits fail item by item, and teardowns apply in
// memory but report the lost durability.
func TestJournalClosedMapsToShuttingDown(t *testing.T) {
	ctrl, net := testController(t, 0.4, AtomicLedger)
	log := openJournal(t, ctrl, t.TempDir(), wal.ModeSync)
	id0, err := ctrl.Admit("voice", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := ctrl.Admit("voice", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := utilizations(t, ctrl, net)
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := ctrl.Admit("voice", 0, 1); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("admit after close: %v, want ErrShuttingDown", err)
	}
	if got := utilizations(t, ctrl, net); !reflect.DeepEqual(got, before) {
		t.Fatal("failed admit leaked a reservation")
	}
	if act := ctrl.Stats().Active; act != 2 {
		t.Fatalf("active %d after failed admit, want 2", act)
	}
	for i, r := range ctrl.AdmitBatch([]BatchItem{
		{Class: "voice", Src: 0, Dst: 1},
		{Class: "voice", Src: 1, Dst: 2},
	}, nil) {
		if !errors.Is(r.Err, ErrShuttingDown) {
			t.Fatalf("batch item %d after close: %v, want ErrShuttingDown", i, r.Err)
		}
	}

	// Teardown: applied in memory (the flow is gone) but reported as
	// non-durable so the caller knows the log lost the record.
	if err := ctrl.Teardown(id0); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("teardown after close: %v, want ErrShuttingDown", err)
	}
	if err := ctrl.Teardown(id0); !errors.Is(err, ErrUnknownFlow) {
		t.Fatalf("second teardown: %v, want ErrUnknownFlow (first one applied)", err)
	}
	for _, err := range ctrl.TeardownBatch([]FlowID{id1}, nil) {
		if !errors.Is(err, ErrShuttingDown) {
			t.Fatalf("batch teardown after close: %v, want ErrShuttingDown", err)
		}
	}
	if act := ctrl.Stats().Active; act != 0 {
		t.Fatalf("active %d after teardowns, want 0", act)
	}
}

// TestRecoveryRefusesReconfiguredController: durable state written
// under one configuration must not load into another — the fingerprint
// covers the route set, so a different alpha is a different world.
func TestRecoveryRefusesReconfiguredController(t *testing.T) {
	ctrl, _ := testController(t, 0.4, AtomicLedger)
	dir := t.TempDir()
	log := openJournal(t, ctrl, dir, wal.ModeSync)
	if _, err := ctrl.Admit("voice", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	other, _ := testController(t, 0.3, AtomicLedger)
	if other.Fingerprint() == ctrl.Fingerprint() {
		t.Fatal("fingerprints collide across alphas")
	}
	if _, err := wal.Recover(dir, other.Fingerprint(), other); !errors.Is(err, wal.ErrFingerprintMismatch) {
		t.Fatalf("recover under different alpha: %v, want ErrFingerprintMismatch", err)
	}
}
