package admission

import (
	"testing"
	"time"

	"ubac/internal/telemetry"
)

// TestSetClockDeterministicTimestamps pins the virtual-clock hook the
// discrete-event simulator relies on: with an injected clock, decision
// latencies on the audit ring are exact functions of the clock's
// sequence — two identically clocked controllers emit identical
// events, with no wall time anywhere in them.
func TestSetClockDeterministicTimestamps(t *testing.T) {
	run := func() []telemetry.Event {
		c, _ := testController(t, 0.3, AtomicLedger)
		ring := telemetry.NewRing(16)
		c.SetSink(telemetry.NewRegistrySink(telemetry.NewRegistry(), ring))
		// Each clock read advances virtual time by exactly 1 ms.
		var ticks int64
		c.SetClock(func() time.Time {
			ticks++
			return time.Unix(0, ticks*int64(time.Millisecond))
		})
		id, err := c.Admit("voice", 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Teardown(id); err != nil {
			t.Fatal(err)
		}
		evs := ring.Snapshot(16)
		if len(evs) != 2 {
			t.Fatalf("got %d audit events, want 2", len(evs))
		}
		return evs
	}
	a, b := run(), run()
	for i := range a {
		if a[i].LatencyNS != b[i].LatencyNS {
			t.Fatalf("event %d latency differs across identically clocked runs: %d vs %d",
				i, a[i].LatencyNS, b[i].LatencyNS)
		}
		if a[i].LatencyNS <= 0 || a[i].LatencyNS%int64(time.Millisecond) != 0 {
			t.Fatalf("event %d latency %dns is not a whole number of virtual ticks", i, a[i].LatencyNS)
		}
	}
}

// SetClock(nil) must restore the wall clock, not install a nil func.
func TestSetClockNilRestoresWallClock(t *testing.T) {
	c, _ := testController(t, 0.3, AtomicLedger)
	c.SetSink(telemetry.NewRegistrySink(telemetry.NewRegistry(), telemetry.NewRing(4)))
	c.SetClock(nil)
	id, err := c.Admit("voice", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Teardown(id); err != nil {
		t.Fatal(err)
	}
}
