package topology

import (
	"bytes"
	"strings"
	"testing"
)

func TestNSFNetInvariants(t *testing.T) {
	n := NSFNet(DefaultCapacity)
	if n.NumRouters() != 14 {
		t.Errorf("routers = %d, want 14", n.NumRouters())
	}
	if got := len(n.Links()); got != 21 {
		t.Errorf("links = %d, want 21", got)
	}
	if d := n.Diameter(); d != 3 {
		t.Errorf("diameter = %d, want 3", d)
	}
	if md := n.MaxDegree(); md != 4 {
		t.Errorf("max degree = %d, want 4", md)
	}
	if c, err := n.UniformCapacity(); err != nil || c != DefaultCapacity {
		t.Errorf("capacity = %g, %v", c, err)
	}
	if _, ok := n.RouterByName("Princeton"); !ok {
		t.Error("Princeton missing")
	}
}

func TestNSFNetJSONRoundTrip(t *testing.T) {
	orig := NSFNet(45e6) // historic T3 upgrade capacity
	var buf bytes.Buffer
	if err := Encode(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumServers() != orig.NumServers() || back.Diameter() != orig.Diameter() {
		t.Error("round trip changed the graph")
	}
}

func TestEncodeDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeDOT(&buf, NSFNet(DefaultCapacity)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"graph \"nsfnet\"",
		"\"Seattle\" [shape=box]",
		"\"Seattle\" -- \"PaloAlto\" [label=\"100\"]",
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Core routers render as ellipses.
	star, err := Star(3, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := EncodeDOT(&buf, star); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"hub\" [shape=ellipse]") {
		t.Error("core router not an ellipse")
	}
}
