package topology

import (
	"sort"
	"testing"
)

func TestWaxmanBasics(t *testing.T) {
	n, err := Waxman(30, 0.2, 0.4, 1e8, 11)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumRouters() != 30 {
		t.Errorf("routers = %d", n.NumRouters())
	}
	// Connectivity is enforced by the spanning tree.
	if _, ok := n.RouterGraph().Diameter(); !ok {
		t.Error("waxman not connected")
	}
	// More links than the bare tree (with these parameters, near-surely).
	if got := len(n.Links()); got <= 29 {
		t.Errorf("links = %d, want > 29", got)
	}
}

func TestWaxmanDeterministic(t *testing.T) {
	a, err := Waxman(20, 0.2, 0.4, 1e8, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Waxman(20, 0.2, 0.4, 1e8, 5)
	if err != nil {
		t.Fatal(err)
	}
	la, lb := a.Links(), b.Links()
	if len(la) != len(lb) {
		t.Fatal("link counts differ")
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("links differ")
		}
	}
}

func TestWaxmanValidation(t *testing.T) {
	if _, err := Waxman(1, 0.2, 0.4, 1e8, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Waxman(5, 0, 0.4, 1e8, 1); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := Waxman(5, 0.2, 1.5, 1e8, 1); err == nil {
		t.Error("beta>1 accepted")
	}
}

func TestWaxmanDensityGrowsWithBeta(t *testing.T) {
	sparse, err := Waxman(40, 0.2, 0.1, 1e8, 9)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Waxman(40, 0.2, 0.9, 1e8, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(dense.Links()) <= len(sparse.Links()) {
		t.Errorf("beta=0.9 links (%d) not denser than beta=0.1 (%d)",
			len(dense.Links()), len(sparse.Links()))
	}
}

func TestBarabasiAlbertBasics(t *testing.T) {
	n, err := BarabasiAlbert(50, 2, 1e8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumRouters() != 50 {
		t.Errorf("routers = %d", n.NumRouters())
	}
	// Clique(3) has 3 links; each of the other 47 routers adds 2.
	if got, want := len(n.Links()), 3+47*2; got != want {
		t.Errorf("links = %d, want %d", got, want)
	}
	if _, ok := n.RouterGraph().Diameter(); !ok {
		t.Error("BA graph not connected")
	}
}

func TestBarabasiAlbertHubs(t *testing.T) {
	// Preferential attachment produces hubs: the max degree must clearly
	// exceed the attachment parameter m.
	n, err := BarabasiAlbert(200, 2, 1e8, 7)
	if err != nil {
		t.Fatal(err)
	}
	degs := make([]int, n.NumRouters())
	for i := range degs {
		degs[i] = n.Degree(i)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	if degs[0] < 10 {
		t.Errorf("max degree = %d, expected a hub >= 10", degs[0])
	}
	// Median degree stays near m: the distribution is heavy-tailed, not
	// uniform.
	if med := degs[len(degs)/2]; med > 6 {
		t.Errorf("median degree = %d, want <= 6", med)
	}
}

func TestBarabasiAlbertValidation(t *testing.T) {
	if _, err := BarabasiAlbert(3, 0, 1e8, 1); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := BarabasiAlbert(2, 2, 1e8, 1); err == nil {
		t.Error("n<=m accepted")
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a, err := BarabasiAlbert(30, 2, 1e8, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BarabasiAlbert(30, 2, 1e8, 42)
	if err != nil {
		t.Fatal(err)
	}
	la, lb := a.Links(), b.Links()
	if len(la) != len(lb) {
		t.Fatal("link counts differ")
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("links differ")
		}
	}
}

func TestParseSpecifications(t *testing.T) {
	cases := []struct {
		spec    string
		routers int
	}{
		{"mci", 19},
		{"nsfnet", 14},
		{"line:4", 4},
		{"ring:5", 5},
		{"star:3", 4},
		{"grid:2x3", 6},
		{"tree:2:2", 7},
		{"random:8:3:1", 8},
		{"waxman:12:9", 12},
		{"ba:10:2:5", 10},
	}
	for _, tc := range cases {
		n, err := Parse(tc.spec)
		if err != nil {
			t.Errorf("%s: %v", tc.spec, err)
			continue
		}
		if n.NumRouters() != tc.routers {
			t.Errorf("%s: routers = %d, want %d", tc.spec, n.NumRouters(), tc.routers)
		}
	}
}

func TestParseRejections(t *testing.T) {
	bad := []string{
		"", "alien", "line", "line:x", "ring:two",
		"star:x", "grid:2", "grid:2x", "grid:ax2", "grid:2xa",
		"tree:2", "tree:x:2", "tree:2:x",
		"random:8", "random:x:3:1", "random:8:x:1", "random:8:3:x",
		"waxman:12", "waxman:x:9", "waxman:12:x",
		"ba:10:2", "ba:x:2:5", "ba:10:x:5", "ba:10:2:x",
		"@/no/such/file.json",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("%q accepted", spec)
		}
	}
}

// The simulation presets must build deterministically, stay connected,
// and parse through the shared spec syntax.
func TestPresets(t *testing.T) {
	sizes := map[string]int{"metro": 32, "backbone": 48, "continental": 96}
	for _, name := range PresetNames() {
		a, err := Preset(name, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.NumRouters() != sizes[name] {
			t.Errorf("%s: %d routers, want %d", name, a.NumRouters(), sizes[name])
		}
		b, err := Preset(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		if a.NumServers() != b.NumServers() || a.Name() != b.Name() {
			t.Errorf("%s: same seed built different networks", name)
		}
		g := a.RouterGraph()
		for i := 1; i < a.NumRouters(); i++ {
			if _, err := g.ShortestPath(0, i); err != nil {
				t.Fatalf("%s: disconnected at router %d", name, i)
			}
		}
		p, err := Parse(name + ":7")
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != a.Name() {
			t.Errorf("%s: Parse built %q, Preset built %q", name, p.Name(), a.Name())
		}
	}
	if _, err := Preset("planetary", 1); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := Parse("metro"); err == nil {
		t.Error("preset without seed accepted")
	}
}
