package topology

import (
	"bytes"
	"strings"
	"testing"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder("t")
	a := b.Router("a", Edge)
	c := b.Router("c", Core)
	b.Link(a, c, 1e6)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if n.Name() != "t" || n.NumRouters() != 2 || n.NumServers() != 2 {
		t.Errorf("name=%s routers=%d servers=%d", n.Name(), n.NumRouters(), n.NumServers())
	}
	if n.Router(0).Kind != Edge || n.Router(1).Kind != Core {
		t.Error("router kinds wrong")
	}
	if n.Router(0).Kind.String() != "edge" || n.Router(1).Kind.String() != "core" {
		t.Error("RouterKind.String wrong")
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []func(*Builder){
		func(b *Builder) { b.Router("", Edge) },
		func(b *Builder) { b.Router("a", Edge); b.Router("a", Edge) },
		func(b *Builder) { a := b.Router("a", Edge); b.Link(a, a, 1) },
		func(b *Builder) { a := b.Router("a", Edge); b.Link(a, 99, 1) },
		func(b *Builder) {
			a := b.Router("a", Edge)
			c := b.Router("c", Edge)
			b.Link(a, c, 0)
		},
		func(b *Builder) {
			a := b.Router("a", Edge)
			c := b.Router("c", Edge)
			b.Link(a, c, 1).Link(c, a, 1)
		},
		func(b *Builder) { b.LinkByName("x", "y", 1) },
		func(b *Builder) { b.Router("a", Edge); b.LinkByName("a", "nope", 1) },
	}
	for i, mutate := range cases {
		b := NewBuilder("bad")
		mutate(b)
		if _, err := b.Build(); err == nil {
			t.Errorf("case %d: invalid build accepted", i)
		}
	}
	if _, err := NewBuilder("empty").Build(); err == nil {
		t.Error("empty network accepted")
	}
}

func TestBuildRejectsDisconnected(t *testing.T) {
	b := NewBuilder("disc")
	b.Router("a", Edge)
	b.Router("b", Edge)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "not connected") {
		t.Errorf("disconnected network accepted: %v", err)
	}
}

func TestServersAndPaths(t *testing.T) {
	n, err := Line(3, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumServers() != 4 {
		t.Fatalf("servers = %d, want 4", n.NumServers())
	}
	s01, ok := n.ServerFor(0, 1)
	if !ok {
		t.Fatal("no server 0->1")
	}
	tail, head, c := n.Server(s01)
	if tail != 0 || head != 1 || c != 1e6 {
		t.Errorf("server = %d->%d cap %g", tail, head, c)
	}
	if n.ServerCapacity(s01) != 1e6 {
		t.Error("ServerCapacity wrong")
	}
	if _, ok := n.ServerFor(0, 2); ok {
		t.Error("non-adjacent server found")
	}
	path, err := n.ServersFromRouterPath([]int{0, 1, 2})
	if err != nil || len(path) != 2 {
		t.Fatalf("path = %v err=%v", path, err)
	}
	if n.ServerName(path[0]) != "r0->r1" {
		t.Errorf("ServerName = %s", n.ServerName(path[0]))
	}
	if _, err := n.ServersFromRouterPath([]int{0}); err == nil {
		t.Error("short path accepted")
	}
	if _, err := n.ServersFromRouterPath([]int{0, 2}); err == nil {
		t.Error("non-adjacent path accepted")
	}
}

func TestMCIInvariants(t *testing.T) {
	n := MCI()
	if n.NumRouters() != 19 {
		t.Errorf("routers = %d, want 19", n.NumRouters())
	}
	// The two published invariants the paper's analysis depends on.
	if d := n.Diameter(); d != 4 {
		t.Errorf("diameter = %d, want 4 (paper, Section 6)", d)
	}
	if md := n.MaxDegree(); md != 6 {
		t.Errorf("max degree = %d, want 6 (paper, Section 6)", md)
	}
	if c, err := n.UniformCapacity(); err != nil || c != 100e6 {
		t.Errorf("capacity = %g err=%v, want 100 Mb/s", c, err)
	}
	if got := len(n.Pairs()); got != 19*18 {
		t.Errorf("pairs = %d, want 342", got)
	}
	if got := len(n.EdgeRouters()); got != 19 {
		t.Errorf("edge routers = %d, want 19 (all routers act as edges)", got)
	}
	if _, ok := n.RouterByName("Chicago"); !ok {
		t.Error("Chicago missing")
	}
	if _, ok := n.RouterByName("Gotham"); ok {
		t.Error("RouterByName returned a nonexistent router")
	}
}

func TestBuilders(t *testing.T) {
	tests := []struct {
		name              string
		build             func() (*Network, error)
		routers, diameter int
	}{
		{"line5", func() (*Network, error) { return Line(5, 1e6) }, 5, 4},
		{"ring6", func() (*Network, error) { return Ring(6, 1e6) }, 6, 3},
		{"star4", func() (*Network, error) { return Star(4, 1e6) }, 5, 2},
		{"grid3x3", func() (*Network, error) { return Grid(3, 3, 1e6) }, 9, 4},
		{"tree2x2", func() (*Network, error) { return Tree(2, 2, 1e6) }, 7, 4},
	}
	for _, tc := range tests {
		n, err := tc.build()
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if n.NumRouters() != tc.routers {
			t.Errorf("%s: routers = %d, want %d", tc.name, n.NumRouters(), tc.routers)
		}
		if d := n.Diameter(); d != tc.diameter {
			t.Errorf("%s: diameter = %d, want %d", tc.name, d, tc.diameter)
		}
	}
}

func TestBuilderRejections(t *testing.T) {
	if _, err := Line(1, 1); err == nil {
		t.Error("Line(1) accepted")
	}
	if _, err := Ring(2, 1); err == nil {
		t.Error("Ring(2) accepted")
	}
	if _, err := Star(1, 1); err == nil {
		t.Error("Star(1) accepted")
	}
	if _, err := Grid(1, 3, 1); err == nil {
		t.Error("Grid(1,3) accepted")
	}
	if _, err := Tree(1, 2, 1); err == nil {
		t.Error("Tree(1,2) accepted")
	}
	if _, err := Random(1, 0, 1, 0); err == nil {
		t.Error("Random(1) accepted")
	}
}

func TestStarEdgeRouters(t *testing.T) {
	n, err := Star(4, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	edges := n.EdgeRouters()
	if len(edges) != 4 {
		t.Errorf("star edge routers = %d, want 4 (hub is core)", len(edges))
	}
	for _, e := range edges {
		if n.Router(e).Kind != Edge {
			t.Errorf("router %d not edge", e)
		}
	}
	// Pairs exclude the hub.
	if got := len(n.Pairs()); got != 4*3 {
		t.Errorf("pairs = %d, want 12", got)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, err := Random(12, 6, 1e6, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(12, 6, 1e6, 99)
	if err != nil {
		t.Fatal(err)
	}
	la, lb := a.Links(), b.Links()
	if len(la) != len(lb) {
		t.Fatalf("link counts differ: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("links differ at %d: %v vs %v", i, la[i], lb[i])
		}
	}
	c, err := Random(12, 6, 1e6, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Links()) == len(la) {
		same := true
		lc := c.Links()
		for i := range la {
			if la[i] != lc[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical networks")
		}
	}
}

func TestUniformCapacityHeterogeneous(t *testing.T) {
	b := NewBuilder("het")
	x := b.Router("x", Edge)
	y := b.Router("y", Edge)
	z := b.Router("z", Edge)
	b.Link(x, y, 1e6).Link(y, z, 2e6)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.UniformCapacity(); err == nil {
		t.Error("heterogeneous capacities accepted as uniform")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := MCI()
	var buf bytes.Buffer
	if err := Encode(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != orig.Name() || back.NumRouters() != orig.NumRouters() ||
		back.NumServers() != orig.NumServers() {
		t.Errorf("round trip changed shape: %s %d %d", back.Name(), back.NumRouters(), back.NumServers())
	}
	if back.Diameter() != orig.Diameter() || back.MaxDegree() != orig.MaxDegree() {
		t.Error("round trip changed graph metrics")
	}
	for i := 0; i < orig.NumRouters(); i++ {
		if back.Router(i) != orig.Router(i) {
			t.Errorf("router %d differs", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(strings.NewReader("{not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Decode(strings.NewReader(`{"name":"x","routers":[{"name":"a","kind":"alien"}],"links":[]}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Decode(strings.NewReader(`{"name":"x","routers":[{"name":"a","kind":"edge"},{"name":"b"}],"links":[{"a":"a","b":"b","capacity_bps":1000}]}`)); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}
}

func TestWithoutLink(t *testing.T) {
	n := MCI()
	sea, _ := n.RouterByName("Seattle")
	chi, _ := n.RouterByName("Chicago")
	survivor, err := n.WithoutLink(sea, chi)
	if err != nil {
		t.Fatal(err)
	}
	if survivor.NumRouters() != n.NumRouters() {
		t.Error("routers changed")
	}
	if len(survivor.Links()) != len(n.Links())-1 {
		t.Errorf("links = %d, want %d", len(survivor.Links()), len(n.Links())-1)
	}
	if _, ok := survivor.ServerFor(sea, chi); ok {
		t.Error("failed link still present")
	}
	// Original untouched.
	if _, ok := n.ServerFor(sea, chi); !ok {
		t.Error("original mutated")
	}
	mia, _ := n.RouterByName("Miami")
	if _, err := n.WithoutLink(sea, mia); err == nil {
		t.Error("nonexistent link accepted")
	}
	// Disconnecting removal rejected.
	line, err := Line(3, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := line.WithoutLink(0, 1); err == nil {
		t.Error("disconnecting removal accepted")
	}
}
