package topology

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Parse interprets a compact topology specification string, the shared
// syntax of the command-line tools:
//
//	mci | nsfnet | line:N | ring:N | star:N | grid:WxH | tree:F:D |
//	random:N:E:SEED | waxman:N:SEED | ba:N:M:SEED |
//	metro:SEED | backbone:SEED | continental:SEED | @file.json
//
// Synthetic topologies use DefaultCapacity links. The last three are
// the large-scale simulation presets (see Preset).
func Parse(spec string) (*Network, error) {
	if strings.HasPrefix(spec, "@") {
		f, err := os.Open(spec[1:])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return Decode(f)
	}
	parts := strings.Split(spec, ":")
	c := DefaultCapacity
	switch parts[0] {
	case "mci":
		return MCI(), nil
	case "nsfnet":
		return NSFNet(c), nil
	case "line":
		n, err := oneIntArg(parts)
		if err != nil {
			return nil, err
		}
		return Line(n, c)
	case "ring":
		n, err := oneIntArg(parts)
		if err != nil {
			return nil, err
		}
		return Ring(n, c)
	case "star":
		n, err := oneIntArg(parts)
		if err != nil {
			return nil, err
		}
		return Star(n, c)
	case "grid":
		if len(parts) != 2 {
			return nil, fmt.Errorf("topology: grid needs WxH, e.g. grid:4x4")
		}
		wh := strings.Split(parts[1], "x")
		if len(wh) != 2 {
			return nil, fmt.Errorf("topology: grid needs WxH, e.g. grid:4x4")
		}
		w, err := strconv.Atoi(wh[0])
		if err != nil {
			return nil, err
		}
		h, err := strconv.Atoi(wh[1])
		if err != nil {
			return nil, err
		}
		return Grid(w, h, c)
	case "tree":
		if len(parts) != 3 {
			return nil, fmt.Errorf("topology: tree needs fanout and depth, e.g. tree:3:2")
		}
		f, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		d, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, err
		}
		return Tree(f, d, c)
	case "random":
		if len(parts) != 4 {
			return nil, fmt.Errorf("topology: random needs N, extra links and seed, e.g. random:16:8:1")
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		e, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, err
		}
		seed, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil {
			return nil, err
		}
		return Random(n, e, c, seed)
	case "waxman":
		if len(parts) != 3 {
			return nil, fmt.Errorf("topology: waxman needs N and seed, e.g. waxman:24:7")
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		seed, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return nil, err
		}
		return Waxman(n, 0.25, 0.4, c, seed)
	case "ba":
		if len(parts) != 4 {
			return nil, fmt.Errorf("topology: ba needs N, M and seed, e.g. ba:30:2:7")
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		m, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, err
		}
		seed, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil {
			return nil, err
		}
		return BarabasiAlbert(n, m, c, seed)
	case "metro", "backbone", "continental":
		if len(parts) != 2 {
			return nil, fmt.Errorf("topology: %s needs a seed, e.g. %s:7", parts[0], parts[0])
		}
		seed, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, err
		}
		return Preset(parts[0], seed)
	default:
		return nil, fmt.Errorf("topology: unknown specification %q", spec)
	}
}

func oneIntArg(parts []string) (int, error) {
	if len(parts) != 2 {
		return 0, fmt.Errorf("topology: %s needs one integer argument, e.g. %s:8", parts[0], parts[0])
	}
	return strconv.Atoi(parts[1])
}
