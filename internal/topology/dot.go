package topology

import (
	"fmt"
	"io"
)

// EncodeDOT writes the network in Graphviz DOT format for
// visualization: edge routers as boxes, core routers as ellipses, links
// labeled with capacity in Mb/s.
func EncodeDOT(w io.Writer, n *Network) error {
	if _, err := fmt.Fprintf(w, "graph %q {\n  layout=neato;\n  overlap=false;\n", n.Name()); err != nil {
		return err
	}
	for i := 0; i < n.NumRouters(); i++ {
		r := n.Router(i)
		shape := "ellipse"
		if r.Kind == Edge {
			shape = "box"
		}
		if _, err := fmt.Fprintf(w, "  %q [shape=%s];\n", r.Name, shape); err != nil {
			return err
		}
	}
	for _, l := range n.Links() {
		if _, err := fmt.Fprintf(w, "  %q -- %q [label=\"%g\"];\n",
			n.Router(l.A).Name, n.Router(l.B).Name, l.Capacity/1e6); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
