package topology

import (
	"encoding/json"
	"fmt"
	"io"
)

// fileFormat is the on-disk JSON representation of a Network.
type fileFormat struct {
	Name    string       `json:"name"`
	Routers []routerJSON `json:"routers"`
	Links   []linkJSON   `json:"links"`
}

type routerJSON struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

type linkJSON struct {
	A        string  `json:"a"`
	B        string  `json:"b"`
	Capacity float64 `json:"capacity_bps"`
}

// Encode writes the network as JSON.
func Encode(w io.Writer, n *Network) error {
	ff := fileFormat{Name: n.Name()}
	for i := 0; i < n.NumRouters(); i++ {
		r := n.Router(i)
		ff.Routers = append(ff.Routers, routerJSON{Name: r.Name, Kind: r.Kind.String()})
	}
	for _, l := range n.Links() {
		ff.Links = append(ff.Links, linkJSON{
			A:        n.Router(l.A).Name,
			B:        n.Router(l.B).Name,
			Capacity: l.Capacity,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ff)
}

// Decode reads a network from its JSON representation and validates it.
func Decode(r io.Reader) (*Network, error) {
	var ff fileFormat
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("topology: decode: %w", err)
	}
	b := NewBuilder(ff.Name)
	for _, rj := range ff.Routers {
		kind := Core
		switch rj.Kind {
		case "edge":
			kind = Edge
		case "core", "":
			kind = Core
		default:
			return nil, fmt.Errorf("topology: unknown router kind %q", rj.Kind)
		}
		b.Router(rj.Name, kind)
	}
	for _, lj := range ff.Links {
		b.LinkByName(lj.A, lj.B, lj.Capacity)
	}
	return b.Build()
}
