package topology

import (
	"fmt"
	"math/rand"
)

// DefaultCapacity is the link capacity used by the paper's experiment:
// 100 Mb/s on every link.
const DefaultCapacity = 100e6

// MCI returns the reconstructed MCI ISP backbone of Figure 4.
//
// The paper prints the topology only as a map image, so the adjacency
// below is a reconstruction of the mid-90s MCI backbone as used in
// contemporary QoS-routing studies, tuned to satisfy the two properties
// the paper states and relies on: diameter L = 4 and maximum router
// degree N = 6 (both are asserted by unit tests). All 19 routers act as
// edge routers and every link runs at 100 Mb/s, as in Section 6.
func MCI() *Network {
	b := NewBuilder("mci")
	names := []string{
		"Seattle", "Sacramento", "SanFrancisco", "LosAngeles", "SaltLakeCity",
		"Denver", "Phoenix", "Dallas", "Houston", "KansasCity",
		"Chicago", "StLouis", "Atlanta", "Miami", "Washington",
		"NewYork", "Pennsauken", "Boston", "Cleveland",
	}
	for _, nm := range names {
		b.Router(nm, Edge)
	}
	links := [][2]string{
		{"Seattle", "Sacramento"}, {"Seattle", "Chicago"}, {"Seattle", "SaltLakeCity"},
		{"Sacramento", "SanFrancisco"},
		{"SanFrancisco", "LosAngeles"}, {"SanFrancisco", "Chicago"}, {"SanFrancisco", "Dallas"},
		{"LosAngeles", "Phoenix"},
		{"SaltLakeCity", "Denver"}, {"SaltLakeCity", "KansasCity"},
		{"Denver", "KansasCity"},
		{"Phoenix", "Dallas"},
		{"Dallas", "Houston"}, {"Dallas", "KansasCity"}, {"Dallas", "StLouis"},
		{"Houston", "Atlanta"}, {"Houston", "Miami"},
		{"KansasCity", "Chicago"}, {"KansasCity", "StLouis"},
		{"Chicago", "StLouis"}, {"Chicago", "Cleveland"}, {"Chicago", "NewYork"},
		{"StLouis", "Washington"}, {"StLouis", "Cleveland"},
		{"Atlanta", "Miami"}, {"Atlanta", "Washington"},
		{"Miami", "Washington"},
		{"Washington", "Pennsauken"}, {"Washington", "Cleveland"},
		{"NewYork", "Pennsauken"}, {"NewYork", "Boston"}, {"NewYork", "Cleveland"},
		{"Pennsauken", "Boston"},
		{"Boston", "Cleveland"},
	}
	for _, l := range links {
		b.LinkByName(l[0], l[1], DefaultCapacity)
	}
	n, err := b.Build()
	if err != nil {
		panic("topology: MCI backbone invalid: " + err.Error())
	}
	return n
}

// Line returns a chain of n routers: 0 - 1 - ... - n-1.
func Line(n int, capacity float64) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: line needs >= 2 routers")
	}
	b := NewBuilder(fmt.Sprintf("line-%d", n))
	for i := 0; i < n; i++ {
		b.Router(fmt.Sprintf("r%d", i), Edge)
	}
	for i := 0; i+1 < n; i++ {
		b.Link(i, i+1, capacity)
	}
	return b.Build()
}

// Ring returns a cycle of n routers.
func Ring(n int, capacity float64) (*Network, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs >= 3 routers")
	}
	b := NewBuilder(fmt.Sprintf("ring-%d", n))
	for i := 0; i < n; i++ {
		b.Router(fmt.Sprintf("r%d", i), Edge)
	}
	for i := 0; i < n; i++ {
		b.Link(i, (i+1)%n, capacity)
	}
	return b.Build()
}

// Star returns a hub router connected to n leaf routers. Only the leaves
// are edge routers.
func Star(n int, capacity float64) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: star needs >= 2 leaves")
	}
	b := NewBuilder(fmt.Sprintf("star-%d", n))
	hub := b.Router("hub", Core)
	for i := 0; i < n; i++ {
		leaf := b.Router(fmt.Sprintf("leaf%d", i), Edge)
		b.Link(hub, leaf, capacity)
	}
	return b.Build()
}

// Grid returns a w × h mesh with 4-neighbor connectivity.
func Grid(w, h int, capacity float64) (*Network, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("topology: grid needs w,h >= 2")
	}
	b := NewBuilder(fmt.Sprintf("grid-%dx%d", w, h))
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			b.Router(fmt.Sprintf("r%d_%d", x, y), Edge)
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.Link(id(x, y), id(x+1, y), capacity)
			}
			if y+1 < h {
				b.Link(id(x, y), id(x, y+1), capacity)
			}
		}
	}
	return b.Build()
}

// Tree returns a complete tree of the given fanout and depth (depth 0 is a
// single root). Leaves are edge routers; interior routers are core.
func Tree(fanout, depth int, capacity float64) (*Network, error) {
	if fanout < 2 || depth < 1 {
		return nil, fmt.Errorf("topology: tree needs fanout >= 2 and depth >= 1")
	}
	b := NewBuilder(fmt.Sprintf("tree-f%d-d%d", fanout, depth))
	type node struct {
		id, level int
	}
	root := b.Router("n0", Core)
	frontier := []node{{root, 0}}
	next := 1
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		if cur.level == depth {
			continue
		}
		kind := Core
		if cur.level+1 == depth {
			kind = Edge
		}
		for c := 0; c < fanout; c++ {
			child := b.Router(fmt.Sprintf("n%d", next), kind)
			next++
			b.Link(cur.id, child, capacity)
			frontier = append(frontier, node{child, cur.level + 1})
		}
	}
	return b.Build()
}

// Random returns a connected random topology on n routers: a random
// spanning tree plus extra random links. Deterministic for a given seed.
func Random(n, extraLinks int, capacity float64, seed int64) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: random needs >= 2 routers")
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(fmt.Sprintf("random-%d-%d-seed%d", n, extraLinks, seed))
	for i := 0; i < n; i++ {
		b.Router(fmt.Sprintf("r%d", i), Edge)
	}
	have := make(map[[2]int]bool)
	key := func(a, c int) [2]int {
		if a > c {
			a, c = c, a
		}
		return [2]int{a, c}
	}
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		b.Link(i, j, capacity)
		have[key(i, j)] = true
	}
	for e := 0; e < extraLinks; e++ {
		for tries := 0; tries < 100; tries++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v || have[key(u, v)] {
				continue
			}
			b.Link(u, v, capacity)
			have[key(u, v)] = true
			break
		}
	}
	return b.Build()
}
