package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// Waxman returns a Waxman random topology, the standard synthetic model
// of 1990s internetwork studies (Waxman 1988): n routers placed uniformly
// in the unit square, a link between routers u and v with probability
// beta·exp(−dist(u,v)/(alpha·L)) where L is the maximum inter-router
// distance. A random spanning tree is added first so the result is
// always connected. Typical parameters: alpha ∈ [0.1, 0.3],
// beta ∈ [0.3, 0.6]. Deterministic for a given seed.
func Waxman(n int, alpha, beta, capacity float64, seed int64) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: waxman needs >= 2 routers")
	}
	if !(alpha > 0 && alpha <= 1) || !(beta > 0 && beta <= 1) {
		return nil, fmt.Errorf("topology: waxman parameters alpha=%g beta=%g out of (0,1]", alpha, beta)
	}
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	maxDist := 0.0
	dist := func(a, b int) float64 {
		dx, dy := xs[a]-xs[b], ys[a]-ys[b]
		return math.Sqrt(dx*dx + dy*dy)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := dist(i, j); d > maxDist {
				maxDist = d
			}
		}
	}
	if maxDist == 0 {
		maxDist = 1
	}
	b := NewBuilder(fmt.Sprintf("waxman-%d-seed%d", n, seed))
	for i := 0; i < n; i++ {
		b.Router(fmt.Sprintf("w%d", i), Edge)
	}
	have := make(map[[2]int]bool)
	key := func(a, c int) [2]int {
		if a > c {
			a, c = c, a
		}
		return [2]int{a, c}
	}
	// Spanning tree for connectivity.
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		b.Link(i, j, capacity)
		have[key(i, j)] = true
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if have[key(i, j)] {
				continue
			}
			p := beta * math.Exp(-dist(i, j)/(alpha*maxDist))
			if rng.Float64() < p {
				b.Link(i, j, capacity)
				have[key(i, j)] = true
			}
		}
	}
	return b.Build()
}

// Preset resolves one of the named large-scale generator presets the
// million-flow simulation harness runs on. Each is a tuned instance of
// the synthetic generators — big enough to exercise path diversity and
// hub contention, small enough that route selection over all pairs
// stays in CI budgets. Deterministic for a given seed.
//
//	metro        32-router Waxman, dense short-haul mesh (α=0.30, β=0.50)
//	backbone     48-router Barabási–Albert, hub-heavy core (m=2)
//	continental  96-router Waxman, sparse long-haul mesh (α=0.15, β=0.35)
func Preset(name string, seed int64) (*Network, error) {
	switch name {
	case "metro":
		return Waxman(32, 0.30, 0.50, DefaultCapacity, seed)
	case "backbone":
		return BarabasiAlbert(48, 2, DefaultCapacity, seed)
	case "continental":
		return Waxman(96, 0.15, 0.35, DefaultCapacity, seed)
	default:
		return nil, fmt.Errorf("topology: unknown preset %q (metro | backbone | continental)", name)
	}
}

// PresetNames lists the recognized Preset names.
func PresetNames() []string { return []string{"metro", "backbone", "continental"} }

// BarabasiAlbert returns a preferential-attachment topology: starting
// from a small clique, each new router attaches m links to existing
// routers with probability proportional to their degree, yielding the
// hub-heavy degree distribution observed in real internetworks.
// Deterministic for a given seed.
func BarabasiAlbert(n, m int, capacity float64, seed int64) (*Network, error) {
	if m < 1 {
		return nil, fmt.Errorf("topology: barabasi-albert needs m >= 1")
	}
	if n < m+1 {
		return nil, fmt.Errorf("topology: barabasi-albert needs n > m")
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(fmt.Sprintf("ba-%d-%d-seed%d", n, m, seed))
	for i := 0; i < n; i++ {
		b.Router(fmt.Sprintf("b%d", i), Edge)
	}
	// Seed clique of m+1 routers.
	var stubs []int // degree-proportional sampling pool
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			b.Link(i, j, capacity)
			stubs = append(stubs, i, j)
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := make(map[int]bool)
		var order []int // insertion order keeps the build deterministic
		for len(chosen) < m {
			u := stubs[rng.Intn(len(stubs))]
			if u != v && !chosen[u] {
				chosen[u] = true
				order = append(order, u)
			}
		}
		for _, u := range order {
			b.Link(v, u, capacity)
		}
		// Update the pool after linking so this round's picks don't bias
		// toward v's own new links.
		for _, u := range order {
			stubs = append(stubs, u, v)
		}
	}
	return b.Build()
}
