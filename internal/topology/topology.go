// Package topology implements the paper's network model (Section 3):
// routers connected by duplex links, modeled for delay analysis as a
// graph of output link servers. Each directed link (u → v) is one link
// server of capacity C; all other router components are assumed to
// contribute constant delays that are pre-subtracted from deadlines.
//
// The package provides the reconstructed MCI ISP backbone used in the
// paper's evaluation (Figure 4) together with a family of synthetic
// builders (line, ring, star, tree, grid, random) used by tests and
// supplementary experiments.
package topology

import (
	"fmt"
	"sort"

	"ubac/internal/graph"
)

// RouterKind distinguishes DiffServ edge routers (which police traffic)
// from core routers. In the paper's experiment every router can act as an
// edge router.
type RouterKind int

const (
	// Edge routers sit at the boundary and police incoming flows.
	Edge RouterKind = iota
	// Core routers forward aggregate classes only.
	Core
)

// String returns "edge" or "core".
func (k RouterKind) String() string {
	if k == Edge {
		return "edge"
	}
	return "core"
}

// Router is one node of the network.
type Router struct {
	Name string
	Kind RouterKind
}

// Link is a duplex connection between two routers. Capacity applies to
// each direction independently (two link servers).
type Link struct {
	A, B     int     // router indices
	Capacity float64 // bits/second per direction
}

// Network is an immutable router-level topology. Build one with a
// Builder, a named constructor (MCI, Ring, ...), or Decode.
type Network struct {
	name    string
	routers []Router
	links   []Link

	rg *graph.Graph // router graph (both directions per link)

	// Link-server expansion: server s represents the directed link
	// srvTail[s] -> srvHead[s]. srvID[a][b] maps a directed router pair
	// to its server.
	srvTail, srvHead []int
	srvCap           []float64
	srvID            map[[2]int]int
}

// Builder accumulates routers and links and validates them into a Network.
type Builder struct {
	name    string
	routers []Router
	links   []Link
	index   map[string]int
	err     error
}

// NewBuilder starts a topology with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, index: make(map[string]int)}
}

// Router adds a router and returns its index.
func (b *Builder) Router(name string, kind RouterKind) int {
	if b.err != nil {
		return -1
	}
	if name == "" {
		b.err = fmt.Errorf("topology: empty router name")
		return -1
	}
	if _, dup := b.index[name]; dup {
		b.err = fmt.Errorf("topology: duplicate router %q", name)
		return -1
	}
	b.index[name] = len(b.routers)
	b.routers = append(b.routers, Router{Name: name, Kind: kind})
	return len(b.routers) - 1
}

// Link adds a duplex link between routers a and b with the given capacity
// in bits/second.
func (b *Builder) Link(a, bb int, capacity float64) *Builder {
	if b.err != nil {
		return b
	}
	if a < 0 || a >= len(b.routers) || bb < 0 || bb >= len(b.routers) {
		b.err = fmt.Errorf("topology: link endpoints %d-%d out of range", a, bb)
		return b
	}
	if a == bb {
		b.err = fmt.Errorf("topology: self-link at router %d", a)
		return b
	}
	if capacity <= 0 {
		b.err = fmt.Errorf("topology: non-positive capacity %g", capacity)
		return b
	}
	for _, l := range b.links {
		if (l.A == a && l.B == bb) || (l.A == bb && l.B == a) {
			b.err = fmt.Errorf("topology: duplicate link %d-%d", a, bb)
			return b
		}
	}
	b.links = append(b.links, Link{A: a, B: bb, Capacity: capacity})
	return b
}

// LinkByName adds a duplex link between named routers.
func (b *Builder) LinkByName(a, bb string, capacity float64) *Builder {
	if b.err != nil {
		return b
	}
	ia, ok := b.index[a]
	if !ok {
		b.err = fmt.Errorf("topology: unknown router %q", a)
		return b
	}
	ib, ok := b.index[bb]
	if !ok {
		b.err = fmt.Errorf("topology: unknown router %q", bb)
		return b
	}
	return b.Link(ia, ib, capacity)
}

// Build validates the accumulated topology and returns the Network.
// The router graph must be connected.
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.routers) == 0 {
		return nil, fmt.Errorf("topology: no routers")
	}
	n := &Network{
		name:    b.name,
		routers: append([]Router(nil), b.routers...),
		links:   append([]Link(nil), b.links...),
	}
	n.rg = graph.New(len(n.routers))
	for _, l := range n.links {
		if err := n.rg.AddBoth(l.A, l.B); err != nil {
			return nil, fmt.Errorf("topology: %w", err)
		}
	}
	if len(n.routers) > 1 && !n.rg.IsConnected() {
		return nil, fmt.Errorf("topology: network %q is not connected", b.name)
	}
	n.srvID = make(map[[2]int]int, 2*len(n.links))
	addServer := func(tail, head int, c float64) {
		n.srvID[[2]int{tail, head}] = len(n.srvTail)
		n.srvTail = append(n.srvTail, tail)
		n.srvHead = append(n.srvHead, head)
		n.srvCap = append(n.srvCap, c)
	}
	for _, l := range n.links {
		addServer(l.A, l.B, l.Capacity)
		addServer(l.B, l.A, l.Capacity)
	}
	return n, nil
}

// Name returns the topology name.
func (n *Network) Name() string { return n.name }

// NumRouters returns the number of routers.
func (n *Network) NumRouters() int { return len(n.routers) }

// Router returns the i-th router.
func (n *Network) Router(i int) Router { return n.routers[i] }

// RouterByName returns the index of the named router.
func (n *Network) RouterByName(name string) (int, bool) {
	for i, r := range n.routers {
		if r.Name == name {
			return i, true
		}
	}
	return -1, false
}

// Links returns a copy of the duplex link list.
func (n *Network) Links() []Link { return append([]Link(nil), n.links...) }

// RouterGraph returns the undirected router adjacency as a digraph with
// both arcs per link. The caller must not modify it.
func (n *Network) RouterGraph() *graph.Graph { return n.rg }

// NumServers returns the number of link servers (2 per duplex link).
func (n *Network) NumServers() int { return len(n.srvTail) }

// Server returns the directed router pair and capacity of server s.
func (n *Network) Server(s int) (tail, head int, capacity float64) {
	return n.srvTail[s], n.srvHead[s], n.srvCap[s]
}

// ServerCapacity returns the capacity of link server s in bits/second.
func (n *Network) ServerCapacity(s int) float64 { return n.srvCap[s] }

// ServerFor returns the link server carrying traffic from router tail to
// adjacent router head.
func (n *Network) ServerFor(tail, head int) (int, bool) {
	s, ok := n.srvID[[2]int{tail, head}]
	return s, ok
}

// ServerName renders server s as "A->B" for diagnostics.
func (n *Network) ServerName(s int) string {
	return n.routers[n.srvTail[s]].Name + "->" + n.routers[n.srvHead[s]].Name
}

// ServersFromRouterPath converts a router-level path to the link-server
// path its packets traverse. The path must be a sequence of adjacent
// routers with at least two entries.
func (n *Network) ServersFromRouterPath(path []int) ([]int, error) {
	if len(path) < 2 {
		return nil, fmt.Errorf("topology: path %v too short", path)
	}
	srv := make([]int, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		s, ok := n.ServerFor(path[i], path[i+1])
		if !ok {
			return nil, fmt.Errorf("topology: routers %q and %q are not adjacent",
				n.routers[path[i]].Name, n.routers[path[i+1]].Name)
		}
		srv = append(srv, s)
	}
	return srv, nil
}

// Degree returns the number of links attached to router i.
func (n *Network) Degree(i int) int { return n.rg.OutDegree(i) }

// MaxDegree returns N, the paper's per-router link count, taken as the
// maximum router degree ("the maximum number of links for a router is 6"
// in the MCI experiment).
func (n *Network) MaxDegree() int { return n.rg.MaxOutDegree() }

// Diameter returns L, the router-graph diameter in hops.
func (n *Network) Diameter() int {
	d, _ := n.rg.Diameter()
	return d
}

// EdgeRouters returns the indices of routers that can source/sink flows.
// If no router is explicitly marked Edge, every router acts as an edge
// router (the paper's experimental setting).
func (n *Network) EdgeRouters() []int {
	var edges []int
	for i, r := range n.routers {
		if r.Kind == Edge {
			edges = append(edges, i)
		}
	}
	if len(edges) == 0 {
		edges = make([]int, len(n.routers))
		for i := range edges {
			edges[i] = i
		}
	}
	return edges
}

// Pairs returns every ordered (src, dst) pair of edge routers, sorted
// deterministically.
func (n *Network) Pairs() [][2]int {
	edges := n.EdgeRouters()
	pairs := make([][2]int, 0, len(edges)*(len(edges)-1))
	for _, s := range edges {
		for _, d := range edges {
			if s != d {
				pairs = append(pairs, [2]int{s, d})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return pairs
}

// UniformCapacity returns the common server capacity if all link servers
// share one, or an error otherwise. The paper's analysis assumes a single
// C; heterogeneous networks must be analyzed with the per-server general
// evaluator.
func (n *Network) UniformCapacity() (float64, error) {
	if len(n.srvCap) == 0 {
		return 0, fmt.Errorf("topology: no link servers")
	}
	c := n.srvCap[0]
	for _, x := range n.srvCap[1:] {
		if x != c {
			return 0, fmt.Errorf("topology: heterogeneous capacities (%g vs %g)", c, x)
		}
	}
	return c, nil
}

// WithoutLink returns a copy of the network with the duplex link between
// routers a and b removed — the substrate for link-failure analysis. It
// fails if the link does not exist or if removing it disconnects the
// network.
func (n *Network) WithoutLink(a, b int) (*Network, error) {
	if _, ok := n.ServerFor(a, b); !ok {
		return nil, fmt.Errorf("topology: no link between routers %d and %d", a, b)
	}
	nb := NewBuilder(n.name + "-failed")
	for _, r := range n.routers {
		nb.Router(r.Name, r.Kind)
	}
	for _, l := range n.links {
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			continue
		}
		nb.Link(l.A, l.B, l.Capacity)
	}
	return nb.Build()
}
