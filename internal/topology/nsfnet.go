package topology

// NSFNet returns the 14-node NSFNET T1 backbone (1991), the second
// standard topology of 1990s QoS-routing studies. Adjacency follows the
// canonical published map; all links share the given capacity.
// Diameter 3, maximum degree 4 (asserted by unit tests).
func NSFNet(capacity float64) *Network {
	b := NewBuilder("nsfnet")
	names := []string{
		"Seattle", "PaloAlto", "SanDiego", "SaltLake", "Boulder",
		"Houston", "Lincoln", "Champaign", "AnnArbor", "Atlanta",
		"Pittsburgh", "Ithaca", "CollegePark", "Princeton",
	}
	for _, nm := range names {
		b.Router(nm, Edge)
	}
	links := [][2]string{
		{"Seattle", "PaloAlto"}, {"Seattle", "SanDiego"}, {"Seattle", "Champaign"},
		{"PaloAlto", "SanDiego"}, {"PaloAlto", "SaltLake"},
		{"SanDiego", "Houston"},
		{"SaltLake", "Boulder"}, {"SaltLake", "AnnArbor"},
		{"Boulder", "Houston"}, {"Boulder", "Lincoln"},
		{"Houston", "Atlanta"}, {"Houston", "CollegePark"},
		{"Lincoln", "Champaign"},
		{"Champaign", "Pittsburgh"},
		{"AnnArbor", "Ithaca"}, {"AnnArbor", "Princeton"},
		{"Atlanta", "Pittsburgh"},
		{"Pittsburgh", "Ithaca"}, {"Pittsburgh", "Princeton"},
		{"Ithaca", "CollegePark"},
		{"CollegePark", "Princeton"},
	}
	for _, l := range links {
		b.LinkByName(l[0], l[1], capacity)
	}
	n, err := b.Build()
	if err != nil {
		panic("topology: NSFNet invalid: " + err.Error())
	}
	return n
}
