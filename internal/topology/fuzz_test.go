package topology

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the JSON topology decoder: it
// must never panic, and anything it accepts must re-encode and decode to
// the same shape.
func FuzzDecode(f *testing.F) {
	var seed bytes.Buffer
	if err := Encode(&seed, MCI()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"name":"x","routers":[{"name":"a","kind":"edge"},{"name":"b","kind":"core"}],"links":[{"a":"a","b":"b","capacity_bps":1000}]}`)
	f.Add(`{}`)
	f.Add(`not json at all`)
	f.Add(`{"name":"x","routers":[{"name":"a"}],"links":[{"a":"a","b":"a","capacity_bps":-5}]}`)
	f.Fuzz(func(t *testing.T, doc string) {
		n, err := Decode(strings.NewReader(doc))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Encode(&buf, n); err != nil {
			t.Fatalf("accepted network failed to encode: %v", err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumRouters() != n.NumRouters() || back.NumServers() != n.NumServers() {
			t.Fatalf("round trip changed shape")
		}
	})
}
