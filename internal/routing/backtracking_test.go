package routing

import (
	"testing"

	"ubac/internal/delay"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

func TestBacktrackingBasics(t *testing.T) {
	if (Backtracking{}).Name() != "backtracking" {
		t.Error("name wrong")
	}
	net := topology.MCI()
	m := model(t, net)
	set, rep, err := Backtracking{}.Select(m, voiceReq(0.30))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe || set.Len() != 342 {
		t.Fatalf("backtracking failed at the lower bound: %+v", rep)
	}
	if rep.Backtracks != 0 {
		t.Errorf("needed %d backtracks where greedy succeeds", rep.Backtracks)
	}
	if rep.TotalHops == 0 || rep.WorstDelay <= 0 {
		t.Error("report not filled")
	}
}

func TestBacktrackingValidation(t *testing.T) {
	net := topology.MCI()
	m := model(t, net)
	if _, _, err := (Backtracking{}).Select(m, Request{Class: traffic.Voice(), Alpha: 0}); err == nil {
		t.Error("bad alpha accepted")
	}
}

// Wherever the greedy cheap-mode heuristic succeeds, backtracking (whose
// first descent is the same greedy) must succeed too.
func TestBacktrackingDominatesGreedy(t *testing.T) {
	net := topology.MCI()
	m := model(t, net)
	for _, alpha := range []float64{0.32, 0.38, 0.44} {
		_, greedy, err := (Heuristic{Mode: Cheap}).Select(m, voiceReq(alpha))
		if err != nil {
			t.Fatal(err)
		}
		_, bt, err := (Backtracking{}).Select(m, voiceReq(alpha))
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Safe && !bt.Safe {
			t.Errorf("alpha=%.2f: greedy safe but backtracking failed", alpha)
		}
	}
}

// The cheap greedy is non-monotone on MCI: it fails at alpha=0.43-0.45
// yet succeeds at 0.46. Backtracking must repair the failure.
func TestBacktrackingRepairsCheapFailure(t *testing.T) {
	net := topology.MCI()
	m := model(t, net)
	_, greedy, err := (Heuristic{Mode: Cheap}).Select(m, voiceReq(0.43))
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Safe {
		t.Skip("cheap heuristic no longer fails at 0.43 on this topology")
	}
	_, bt, err := (Backtracking{}).Select(m, voiceReq(0.43))
	if err != nil {
		t.Fatal(err)
	}
	if !bt.Safe {
		t.Fatalf("backtracking did not repair the greedy failure: %+v", bt)
	}
	if bt.Backtracks == 0 {
		t.Error("repair without backtracking recorded")
	}
	t.Logf("repaired with %d backtracks, %d candidates", bt.Backtracks, bt.CandidatesTried)
}

func TestBacktrackingBudgetExhaustion(t *testing.T) {
	net := topology.MCI()
	m := model(t, net)
	_, rep, err := Backtracking{MaxBacktracks: 3}.Select(m, voiceReq(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Safe {
		t.Fatal("alpha=0.9 reported safe")
	}
	if rep.FailedPair == nil {
		t.Error("no failed pair recorded")
	}
	if rep.Backtracks > 3 {
		t.Errorf("budget exceeded: %d", rep.Backtracks)
	}
}

func TestBacktrackingColdReverify(t *testing.T) {
	net := topology.MCI()
	m := model(t, net)
	set, rep, err := Backtracking{}.Select(m, voiceReq(0.40))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe {
		t.Skip("0.40 infeasible")
	}
	res, err := m.SolveTwoClass(delay.ClassInput{Class: traffic.Voice(), Alpha: 0.40, Routes: set})
	if err != nil || !res.Converged {
		t.Fatalf("cold solve: %v", err)
	}
	worst, _ := set.MaxRouteDelay(res.D)
	if worst > traffic.Voice().Deadline {
		t.Errorf("cold re-verify worst %g exceeds deadline", worst)
	}
}
