package routing

import (
	"math"
	"testing"

	"ubac/internal/delay"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

// Golden regression pins for the paper's example topology: MCI backbone,
// shortest-path routing of all edge pairs, voice class. The constants
// were produced by the solver at default settings; a future refactor
// that shifts any delay bound past 1e-9 relative (or changes the
// iteration count, the verdict, or the route count) fails here. The
// tolerance is relative rather than bit-exact so a compiler that fuses
// multiply-adds differently does not trip the pin.
func TestGoldenMCIShortestPathPinned(t *testing.T) {
	pins := []struct {
		alpha          float64
		safe           bool
		routes         int
		iterations     int
		maxServerDelay float64
		worstRoute     float64
	}{
		{0.30, true, 342, 38, 0.015470547030753833, 0.054258625748725586},
		{0.40, false, 342, 73, 0.039493327155680935, 0.13007464319330458},
	}
	net := topology.MCI()
	approx := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-9*math.Max(1, math.Abs(b))
	}
	for _, pin := range pins {
		m := delay.NewModel(net)
		set, rep, err := SP{}.Select(m, Request{Class: traffic.Voice(), Alpha: pin.alpha})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Safe != pin.safe || set.Len() != pin.routes {
			t.Fatalf("alpha=%.2f: safe=%v routes=%d, pinned safe=%v routes=%d",
				pin.alpha, rep.Safe, set.Len(), pin.safe, pin.routes)
		}
		in := delay.ClassInput{Class: traffic.Voice(), Alpha: pin.alpha, Routes: set}
		for _, workers := range []int{0, 4} {
			m := delay.NewModel(net)
			m.Workers = workers
			res, err := m.SolveTwoClass(in)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged || res.Iterations != pin.iterations {
				t.Fatalf("alpha=%.2f workers=%d: converged=%v after %d iterations, pinned %d",
					pin.alpha, workers, res.Converged, res.Iterations, pin.iterations)
			}
			if got := res.MaxServerDelay(); !approx(got, pin.maxServerDelay) {
				t.Fatalf("alpha=%.2f workers=%d: max server delay %.17g, pinned %.17g",
					pin.alpha, workers, got, pin.maxServerDelay)
			}
			if worst, _ := set.MaxRouteDelay(res.D); !approx(worst, pin.worstRoute) {
				t.Fatalf("alpha=%.2f workers=%d: worst route bound %.17g, pinned %.17g",
					pin.alpha, workers, worst, pin.worstRoute)
			}
		}
	}
}
