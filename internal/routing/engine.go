package routing

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"ubac/internal/delay"
	"ubac/internal/graph"
	"ubac/internal/routes"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

// Engine is the shared candidate-evaluation backend of the selectors: a
// persistent worker pool that fans the per-pair candidate solves out
// across goroutines, plus a memo of per-pair k-shortest-path candidate
// routes so that repeated selections over the same network (portfolio
// members, backtracking revisits, repeated daemon reconfigurations)
// never recompute Yen's algorithm or the path→route conversion for a
// pair they have already seen.
//
// Parallel evaluation is bit-identical to sequential evaluation by
// construction: every candidate is solved as a phantom route from the
// same warm-start base, outcomes are gathered into a slot indexed by
// the candidate's position, and the winner is chosen by scanning those
// slots in candidate order — goroutine scheduling cannot influence any
// result. Each worker owns a delay.SolveScratch, so steady-state
// evaluation does not allocate.
//
// An Engine is safe for concurrent use by multiple selections (the
// portfolio runs its members concurrently over one engine). Close
// releases the workers; the engine must not be used afterwards.
type Engine struct {
	workers int
	start   sync.Once
	mu      sync.Mutex
	tasks   chan task
	memo    map[memoKey][]routes.Route
	closed  bool
}

// task asks a worker to evaluate candidate ci of a selection run.
type task struct {
	run *evalRun
	ci  int
	wg  *sync.WaitGroup
}

// memoKey identifies one memoized candidate-route computation. Keying
// on the network pointer makes reuse across selections of the same
// topology free while never conflating distinct networks.
type memoKey struct {
	net      *topology.Network
	src, dst int
	k, slack int
	class    string
}

// NewEngine returns an engine whose pool has the given number of
// workers. Values below 2 (including 0) yield an engine that evaluates
// inline on the calling goroutine — still memoizing candidates, never
// spawning goroutines.
func NewEngine(workers int) *Engine {
	if workers < 1 {
		workers = 1
	}
	return &Engine{workers: workers, memo: make(map[memoKey][]routes.Route)}
}

// Workers reports the pool size the engine was built with.
func (e *Engine) Workers() int { return e.workers }

// Close shuts the worker pool down. Idempotent; the engine must not be
// used for further selections afterwards.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	if e.tasks != nil {
		close(e.tasks)
	}
}

func (e *Engine) parallel() bool { return e.workers > 1 }

// startWorkers lazily spins the pool up on first parallel use, so an
// engine that only ever evaluates inline costs nothing.
func (e *Engine) startWorkers() {
	e.start.Do(func() {
		ch := make(chan task, e.workers)
		for i := 0; i < e.workers; i++ {
			go func() {
				sc := &delay.SolveScratch{}
				for t := range ch {
					t.run.evalCandidate(t.ci, sc)
					t.wg.Done()
				}
			}()
		}
		e.mu.Lock()
		e.tasks = ch
		e.mu.Unlock()
	})
}

// engineFor resolves the engine a selector should use: the caller's
// shared engine if one was provided, else a fresh owned engine the
// selector must Close when its selection finishes.
func engineFor(e *Engine, workers int) (eng *Engine, owned bool) {
	if e != nil {
		return e, false
	}
	return NewEngine(workers), true
}

// memoRoutes returns the pair's filtered, converted candidate routes,
// computing and caching them on first use. The returned slice is shared
// and must be treated as read-only.
func (e *Engine) memoRoutes(r *evalRun, p [2]int, k, slack int) ([]routes.Route, error) {
	key := memoKey{net: r.net, src: p[0], dst: p[1], k: k, slack: slack, class: r.class.Name}
	e.mu.Lock()
	rs, ok := e.memo[key]
	e.mu.Unlock()
	if ok {
		return rs, nil
	}
	paths, err := r.ksp.Paths(p[0], p[1], k)
	if err != nil {
		return nil, err
	}
	spLen := len(paths[0]) - 1 // paths[0] is a BFS shortest path
	rs = make([]routes.Route, 0, len(paths))
	for _, path := range paths {
		// Filter on raw path length before paying for the path→route
		// conversion; over-long candidates never become routes.
		if len(path)-1 > spLen+slack {
			continue
		}
		rt, err := routes.FromRouterPath(r.net, r.class.Name, path)
		if err != nil {
			return nil, err
		}
		rs = append(rs, rt)
	}
	e.mu.Lock()
	e.memo[key] = rs
	e.mu.Unlock()
	return rs, nil
}

// pairErr tags a per-pair failure with the pair it happened on.
func pairErr(p [2]int, err error) error {
	return fmt.Errorf("routing: pair %v: %w", p, err)
}

// candidate is one scored candidate route of the current pair.
type candidate struct {
	route  routes.Route
	cyclic bool
	score  float64
}

// outcome is the evaluation result of one candidate: whether it is
// feasible (fixed point converged and every route meets the deadline
// with it added), the resulting minimum slack, and the converged delay
// vector to warm-start from if it is accepted.
type outcome struct {
	ok    bool
	slack float64
	d     []float64
}

// evalRun is the per-selection state shared between the selection
// goroutine and the engine's workers. The selection goroutine owns
// cands/base between batches; during a batch the workers only read
// them and write disjoint slots of outs/errs/dbufs.
type evalRun struct {
	eng      *Engine
	m        *delay.Model
	net      *topology.Network
	rg       *graph.Graph
	class    traffic.Class
	alpha    float64
	deadline float64
	set      *routes.Set
	ksp      *graph.KSPSolver
	scratch  *delay.SolveScratch // inline-evaluation scratch
	base     []float64           // warm-start delay vector for this batch

	cands        []candidate
	scratchCands []candidate
	outs         []outcome
	errs         []error
	dbufs        [][]float64
}

func newEvalRun(eng *Engine, m *delay.Model, req Request, set *routes.Set, base []float64) *evalRun {
	net := m.Network()
	return &evalRun{
		eng:      eng,
		m:        m,
		net:      net,
		rg:       net.RouterGraph(),
		class:    req.Class,
		alpha:    req.Alpha,
		deadline: req.Class.Deadline,
		set:      set,
		ksp:      graph.NewKSPSolver(net.RouterGraph()),
		scratch:  &delay.SolveScratch{},
		base:     base,
	}
}

func (r *evalRun) input() delay.ClassInput {
	return delay.ClassInput{Class: r.class, Alpha: r.alpha, Routes: r.set}
}

// buildCandidates fills r.cands with the pair's scored, sorted
// candidates: k-shortest paths within the length slack (memoized for
// hop-count generation), scored by their end-to-end bound under the
// current base vector, acyclic candidates first (heuristics 2+3 of
// Section 5.2).
func (r *evalRun) buildCandidates(p [2]int, k, slack int, delayWeighted, checkCycles bool) error {
	r.scratchCands = r.scratchCands[:0]
	if delayWeighted {
		// Candidate paths over the current delay vector: arc cost is the
		// link server's d_k plus a small hop charge that keeps path
		// lengths bounded when delays are ~0 and breaks ties toward
		// shorter routes. Not memoized — the weights change per pair.
		hop := r.deadline / 1e4
		weight := func(u, v int) float64 {
			s, ok := r.net.ServerFor(u, v)
			if !ok {
				return math.Inf(1)
			}
			return r.base[s] + hop
		}
		paths, err := r.rg.KShortestPathsWeighted(p[0], p[1], k, weight)
		if err == nil {
			// Guarantee the hop-shortest path is among the candidates.
			if sp, err2 := r.rg.ShortestPath(p[0], p[1]); err2 == nil && !pathIn(paths, sp) {
				paths = append(paths, sp)
			}
		}
		if err != nil {
			return pairErr(p, err)
		}
		spLen := r.rg.Distance(p[0], p[1])
		for _, path := range paths {
			if len(path)-1 > spLen+slack {
				continue
			}
			rt, err := routes.FromRouterPath(r.net, r.class.Name, path)
			if err != nil {
				return err
			}
			r.scratchCands = append(r.scratchCands, candidate{route: rt})
		}
	} else {
		rs, err := r.eng.memoRoutes(r, p, k, slack)
		if err != nil {
			return pairErr(p, err)
		}
		for _, rt := range rs {
			r.scratchCands = append(r.scratchCands, candidate{route: rt})
		}
	}
	var dep *graph.Graph
	if checkCycles {
		dep = r.set.DependencyGraph()
	}
	for i := range r.scratchCands {
		c := &r.scratchCands[i]
		c.score = c.route.Delay(r.base)
		if dep != nil {
			c.cyclic = routes.WouldCycleOn(dep, c.route)
		}
	}
	cands := r.scratchCands
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].cyclic != cands[b].cyclic {
			return !cands[a].cyclic
		}
		if cands[a].score != cands[b].score {
			return cands[a].score < cands[b].score
		}
		return cands[a].route.Hops() < cands[b].route.Hops()
	})
	r.cands = cands
	return nil
}

// prepare resets the outcome slots for a batch of n candidates, keeping
// buffer capacity (dbufs in particular) across batches.
func (r *evalRun) prepare(n int) {
	if cap(r.outs) < n {
		r.outs = make([]outcome, n)
		r.errs = make([]error, n)
	}
	r.outs = r.outs[:n]
	r.errs = r.errs[:n]
	for i := 0; i < n; i++ {
		r.outs[i] = outcome{}
		r.errs[i] = nil
	}
	for len(r.dbufs) < n {
		r.dbufs = append(r.dbufs, nil)
	}
}

// evalCandidate solves the fixed point with candidate ci as a phantom
// member of the accepted set, warm-started from the batch's base, and
// records feasibility, slack, and the converged delay vector. It only
// reads shared state and writes slots indexed by ci, so distinct
// candidates evaluate concurrently without synchronization.
func (r *evalRun) evalCandidate(ci int, sc *delay.SolveScratch) {
	res, err := r.m.SolveTwoClassScratch(r.input(), &r.cands[ci].route, r.base, sc)
	if err != nil {
		r.errs[ci] = err
		return
	}
	if !res.Converged {
		return
	}
	slack, _ := r.set.MinSlackExtra(res.D, r.deadline, r.m.FixedPerHop, &r.cands[ci].route)
	if delay.MeetsDeadline(r.deadline-slack, r.deadline) {
		if r.dbufs[ci] == nil {
			r.dbufs[ci] = make([]float64, len(res.D))
		}
		copy(r.dbufs[ci], res.D)
		r.outs[ci] = outcome{ok: true, slack: slack, d: r.dbufs[ci]}
	}
}

// evaluateAll evaluates every candidate of the batch (lookahead mode
// considers them all) and returns the first evaluation error in
// candidate order, if any. Outcomes land in r.outs by candidate index.
func (r *evalRun) evaluateAll() error {
	n := len(r.cands)
	r.prepare(n)
	if r.eng.parallel() && n > 1 {
		r.eng.startWorkers()
		var wg sync.WaitGroup
		wg.Add(n)
		for ci := 0; ci < n; ci++ {
			r.eng.tasks <- task{run: r, ci: ci, wg: &wg}
		}
		wg.Wait()
	} else {
		for ci := 0; ci < n; ci++ {
			r.evalCandidate(ci, r.scratch)
		}
	}
	for _, err := range r.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// evaluateFirst finds the first feasible candidate in candidate order,
// evaluating in waves of the pool size so later candidates overlap the
// earlier ones without ever overtaking them. It returns the winning
// index (-1 if none) and the number of candidates a sequential
// first-accept scan would have tried — idx+1 on success, n on
// exhaustion — which keeps reported counters identical to sequential
// execution even though a wave may speculatively solve a few more.
func (r *evalRun) evaluateFirst() (idx, tried int, err error) {
	n := len(r.cands)
	r.prepare(n)
	wave := 1
	if r.eng.parallel() && n > 1 {
		wave = r.eng.workers
	}
	for lo := 0; lo < n; lo += wave {
		hi := lo + wave
		if hi > n {
			hi = n
		}
		if hi-lo == 1 {
			r.evalCandidate(lo, r.scratch)
		} else {
			r.eng.startWorkers()
			var wg sync.WaitGroup
			wg.Add(hi - lo)
			for ci := lo; ci < hi; ci++ {
				r.eng.tasks <- task{run: r, ci: ci, wg: &wg}
			}
			wg.Wait()
		}
		for ci := lo; ci < hi; ci++ {
			if r.errs[ci] != nil {
				return -1, 0, r.errs[ci]
			}
			if r.outs[ci].ok {
				return ci, ci + 1, nil
			}
		}
	}
	return -1, n, nil
}
