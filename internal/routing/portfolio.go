package routing

import (
	"ubac/internal/delay"
	"ubac/internal/routes"
)

// Portfolio runs a set of route selectors and returns the first safe
// result, falling back to the member that routed the most pairs when
// none succeeds. No single greedy no-backtrack heuristic dominates on
// every topology — delay-weighted candidate generation and the lookahead
// variant win on the dense MCI backbone, while the SP-guided variant is
// the only safe one near the Theorem 4 lower bound on the sparse NSFNET
// — so the portfolio realizes the paper's "our heuristics" (plural) as
// an ensemble with the useful guarantee that it is never worse than
// shortest-path routing: its last member considers exactly the shortest
// paths.
type Portfolio struct {
	// Members are tried in order; nil means the default ensemble
	// (lookahead, cheap scoring, SP-guided single-candidate).
	Members []Selector
}

// Name returns "portfolio".
func (Portfolio) Name() string { return "portfolio" }

func (p Portfolio) members() []Selector {
	if p.Members != nil {
		return p.Members
	}
	return []Selector{
		Heuristic{DelayWeighted: true},  // congestion-aware candidates
		Heuristic{},                     // lookahead, dense-topology winner
		Heuristic{Mode: Cheap},          // fast greedy, occasionally best
		Heuristic{K: 1, LengthSlack: 1}, // SP-guided: safe whenever SP is
	}
}

// Select implements Selector.
func (p Portfolio) Select(m *delay.Model, req Request) (*routes.Set, *Report, error) {
	var bestSet *routes.Set
	var bestRep *Report
	for _, sel := range p.members() {
		set, rep, err := sel.Select(m, req)
		if err != nil {
			return nil, nil, err
		}
		if rep.Safe {
			rep.Selector = "portfolio/" + rep.Selector
			return set, rep, nil
		}
		if bestRep == nil || rep.PairsRouted > bestRep.PairsRouted {
			bestSet, bestRep = set, rep
		}
	}
	bestRep.Selector = "portfolio/" + bestRep.Selector
	return bestSet, bestRep, nil
}
