package routing

import (
	"errors"
	"sync/atomic"

	"ubac/internal/delay"
	"ubac/internal/routes"
)

// Portfolio runs a set of route selectors and returns the first safe
// result, falling back to the member that routed the most pairs when
// none succeeds. No single greedy no-backtrack heuristic dominates on
// every topology — delay-weighted candidate generation and the lookahead
// variant win on the dense MCI backbone, while the SP-guided variant is
// the only safe one near the Theorem 4 lower bound on the sparse NSFNET
// — so the portfolio realizes the paper's "our heuristics" (plural) as
// an ensemble with the useful guarantee that it is never worse than
// shortest-path routing: its last member considers exactly the shortest
// paths.
//
// With Workers > 1 the members run concurrently over one shared Engine
// (pooled candidate evaluation plus a memo of per-pair candidate
// routes), and the result is still exactly the sequential one: members
// are ranked by position, the lowest-indexed safe member wins, and
// higher-indexed members are canceled once it is known. The fallback
// case (no safe member) cancels nothing, so the most-pairs comparison
// sees every member's full result, as in sequential execution.
type Portfolio struct {
	// Members are tried in order; nil means the default ensemble
	// (lookahead, cheap scoring, SP-guided single-candidate).
	Members []Selector
	// Workers sizes the shared candidate-evaluation pool and, when
	// greater than 1, runs the members concurrently. 0 or 1 keeps the
	// fully sequential behavior.
	Workers int
	// Engine, when non-nil, is a caller-owned shared evaluation engine
	// used instead of a per-Select one; Workers still gates member
	// concurrency.
	Engine *Engine
}

// Name returns "portfolio".
func (Portfolio) Name() string { return "portfolio" }

func (p Portfolio) members(eng *Engine) []Selector {
	if p.Members != nil {
		return p.Members
	}
	w := p.Workers
	return []Selector{
		Heuristic{DelayWeighted: true, Workers: w, Engine: eng},  // congestion-aware candidates
		Heuristic{Workers: w, Engine: eng},                       // lookahead, dense-topology winner
		Heuristic{Mode: Cheap, Workers: w, Engine: eng},          // fast greedy, occasionally best
		Heuristic{K: 1, LengthSlack: 1, Workers: w, Engine: eng}, // SP-guided: safe whenever SP is
	}
}

// Select implements Selector.
func (p Portfolio) Select(m *delay.Model, req Request) (*routes.Set, *Report, error) {
	eng, owned := engineFor(p.Engine, p.Workers)
	if owned {
		defer eng.Close()
	}
	members := p.members(eng)
	if p.Workers <= 1 || len(members) <= 1 {
		return p.selectSequential(m, req, members)
	}

	type result struct {
		set *routes.Set
		rep *Report
		err error
	}
	cancels := make([]*atomic.Bool, len(members))
	done := make([]chan result, len(members))
	for i, sel := range members {
		cancels[i] = new(atomic.Bool)
		done[i] = make(chan result, 1)
		mreq := req
		mreq.cancel = cancels[i]
		go func(i int, sel Selector, mreq Request) {
			set, rep, err := sel.Select(m, mreq)
			done[i] <- result{set, rep, err}
		}(i, sel, mreq)
	}
	cancelAfter := func(i int) {
		for j := i + 1; j < len(members); j++ {
			cancels[j].Store(true)
		}
	}
	var bestSet *routes.Set
	var bestRep *Report
	var firstErr error
	winner := -1
	// Collect in member order so the lowest-indexed safe member wins,
	// exactly as sequential execution would; every goroutine is drained
	// before returning so the shared engine can be closed safely.
	for i := range members {
		r := <-done[i]
		switch {
		case r.err != nil:
			if firstErr == nil && !errors.Is(r.err, ErrCanceled) {
				firstErr = r.err
				cancelAfter(i)
			}
		case winner >= 0 || firstErr != nil:
			// Late completion after the outcome is decided; ignore.
		case r.rep.Safe:
			winner = i
			bestSet, bestRep = r.set, r.rep
			cancelAfter(i)
		case bestRep == nil || r.rep.PairsRouted > bestRep.PairsRouted:
			bestSet, bestRep = r.set, r.rep
		}
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	bestRep.Selector = "portfolio/" + bestRep.Selector
	return bestSet, bestRep, nil
}

// selectSequential is the Workers<=1 path: members run one at a time,
// first safe result wins.
func (p Portfolio) selectSequential(m *delay.Model, req Request, members []Selector) (*routes.Set, *Report, error) {
	var bestSet *routes.Set
	var bestRep *Report
	for _, sel := range members {
		set, rep, err := sel.Select(m, req)
		if err != nil {
			return nil, nil, err
		}
		if rep.Safe {
			rep.Selector = "portfolio/" + rep.Selector
			return set, rep, nil
		}
		if bestRep == nil || rep.PairsRouted > bestRep.PairsRouted {
			bestSet, bestRep = set, rep
		}
	}
	bestRep.Selector = "portfolio/" + bestRep.Selector
	return bestSet, bestRep, nil
}
