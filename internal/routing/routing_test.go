package routing

import (
	"testing"

	"ubac/internal/delay"
	"ubac/internal/routes"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

func voiceReq(alpha float64) Request {
	return Request{Class: traffic.Voice(), Alpha: alpha}
}

func model(t *testing.T, net *topology.Network) *delay.Model {
	t.Helper()
	return delay.NewModel(net)
}

func TestResolvePairsValidation(t *testing.T) {
	net, err := topology.Line(3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	m := model(t, net)
	bad := []Request{
		{Class: traffic.Class{}, Alpha: 0.3},
		{Class: traffic.Voice(), Alpha: 0},
		{Class: traffic.Voice(), Alpha: 1.2},
		{Class: traffic.Voice(), Alpha: 0.3, Pairs: [][2]int{{0, 0}}},
		{Class: traffic.Voice(), Alpha: 0.3, Pairs: [][2]int{{0, 99}}},
		{Class: traffic.Voice(), Alpha: 0.3, Pairs: [][2]int{{-1, 1}}},
	}
	for i, req := range bad {
		if _, _, err := (SP{}).Select(m, req); err == nil {
			t.Errorf("SP accepted bad request %d", i)
		}
		if _, _, err := (Heuristic{}).Select(m, req); err == nil {
			t.Errorf("Heuristic accepted bad request %d", i)
		}
	}
}

func TestSPRoutesAllPairs(t *testing.T) {
	net, err := topology.Grid(3, 3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	m := model(t, net)
	set, rep, err := SP{}.Select(m, voiceReq(0.1))
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := 9 * 8
	if set.Len() != wantPairs || rep.PairsRouted != wantPairs || rep.PairsTotal != wantPairs {
		t.Errorf("routed %d/%d, set %d, want %d", rep.PairsRouted, rep.PairsTotal, set.Len(), wantPairs)
	}
	// Every route must be a shortest path.
	rg := net.RouterGraph()
	for i := 0; i < set.Len(); i++ {
		r := set.Route(i)
		if r.Hops() != rg.Distance(r.Src, r.Dst) {
			t.Errorf("route %d->%d has %d hops, shortest is %d", r.Src, r.Dst, r.Hops(), rg.Distance(r.Src, r.Dst))
		}
	}
	if !rep.Safe {
		t.Error("low alpha SP selection should be safe")
	}
	if rep.WorstDelay <= 0 || rep.WorstDelay > traffic.Voice().Deadline {
		t.Errorf("worst delay = %g", rep.WorstDelay)
	}
	if rep.Selector != "sp" || (SP{}).Name() != "sp" {
		t.Error("selector naming wrong")
	}
}

func TestSPUnsafeAtHighAlpha(t *testing.T) {
	net := topology.MCI()
	m := model(t, net)
	_, rep, err := SP{}.Select(m, voiceReq(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Safe {
		t.Error("alpha=0.9 SP selection reported safe")
	}
}

func TestHeuristicRoutesAllPairsSafely(t *testing.T) {
	net := topology.MCI()
	m := model(t, net)
	set, rep, err := Heuristic{}.Select(m, voiceReq(0.30))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe {
		t.Fatalf("heuristic failed at the Theorem 4 lower bound: %+v", rep)
	}
	if set.Len() != 342 || rep.PairsRouted != 342 {
		t.Errorf("routed %d, want 342", rep.PairsRouted)
	}
	if rep.WorstDelay > traffic.Voice().Deadline {
		t.Errorf("worst delay %g exceeds deadline", rep.WorstDelay)
	}
	// Every pair appears exactly once.
	seen := make(map[[2]int]bool)
	for i := 0; i < set.Len(); i++ {
		r := set.Route(i)
		key := [2]int{r.Src, r.Dst}
		if seen[key] {
			t.Errorf("pair %v routed twice", key)
		}
		seen[key] = true
	}
	if (Heuristic{}).Name() != "heuristic" {
		t.Error("name wrong")
	}
}

func TestHeuristicBeatsOrEqualsSPInFeasibility(t *testing.T) {
	// At an alpha where SP fails on MCI, the heuristic should still
	// succeed (this is the paper's core experimental claim; the exact
	// crossover is asserted in the Table 1 integration test).
	net := topology.MCI()
	m := model(t, net)
	alpha := 0.36
	_, spRep, err := SP{}.Select(m, voiceReq(alpha))
	if err != nil {
		t.Fatal(err)
	}
	_, hRep, err := Heuristic{}.Select(m, voiceReq(alpha))
	if err != nil {
		t.Fatal(err)
	}
	if spRep.Safe && !hRep.Safe {
		t.Errorf("heuristic lost to SP at alpha=%g", alpha)
	}
	if !hRep.Safe {
		t.Errorf("heuristic failed at alpha=%g (paper achieves 0.45)", alpha)
	}
}

func TestHeuristicFailureReportsPair(t *testing.T) {
	net := topology.MCI()
	m := model(t, net)
	_, rep, err := Heuristic{}.Select(m, voiceReq(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Safe {
		t.Fatal("alpha=0.9 reported safe")
	}
	if rep.FailedPair == nil {
		t.Error("failure did not identify the failed pair")
	}
	if rep.PairsRouted >= rep.PairsTotal {
		t.Error("failure with all pairs routed")
	}
}

func TestHeuristicDeterministic(t *testing.T) {
	net := topology.MCI()
	m := model(t, net)
	s1, r1, err := Heuristic{}.Select(m, voiceReq(0.32))
	if err != nil {
		t.Fatal(err)
	}
	s2, r2, err := Heuristic{}.Select(m, voiceReq(0.32))
	if err != nil {
		t.Fatal(err)
	}
	if r1.WorstDelay != r2.WorstDelay || r1.TotalHops != r2.TotalHops || s1.Len() != s2.Len() {
		t.Fatal("heuristic is not deterministic")
	}
	for i := 0; i < s1.Len(); i++ {
		a, b := s1.Route(i), s2.Route(i)
		if a.Src != b.Src || a.Dst != b.Dst || a.Hops() != b.Hops() {
			t.Fatalf("route %d differs between runs", i)
		}
	}
}

func TestHeuristicSubsetOfPairs(t *testing.T) {
	net := topology.MCI()
	m := model(t, net)
	chi, _ := net.RouterByName("Chicago")
	mia, _ := net.RouterByName("Miami")
	sea, _ := net.RouterByName("Seattle")
	req := voiceReq(0.5)
	req.Pairs = [][2]int{{chi, mia}, {sea, mia}, {mia, chi}}
	set, rep, err := Heuristic{}.Select(m, req)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe || set.Len() != 3 {
		t.Errorf("small selection failed: %+v", rep)
	}
}

func TestHeuristicKnobs(t *testing.T) {
	net := topology.MCI()
	m := model(t, net)
	variants := []Heuristic{
		{},
		{K: 4, LengthSlack: 1},
		{IgnoreCycles: true},
		{IgnoreOrder: true},
	}
	for i, h := range variants {
		_, rep, err := h.Select(m, voiceReq(0.30))
		if err != nil {
			t.Errorf("variant %d: %v", i, err)
			continue
		}
		if !rep.Safe {
			t.Errorf("variant %d unsafe at the lower bound", i)
		}
	}
}

// The Theorem 4 lower bound guarantees that SP itself is safe at or
// below it: verify on the actual MCI topology.
func TestSPSafeAtLowerBound(t *testing.T) {
	net := topology.MCI()
	m := model(t, net)
	_, rep, err := SP{}.Select(m, voiceReq(0.299))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe {
		t.Error("SP unsafe below the Theorem 4 lower bound")
	}
}

func TestHeuristicRouteSetsAreValid(t *testing.T) {
	net := topology.MCI()
	m := model(t, net)
	set, rep, err := Heuristic{}.Select(m, voiceReq(0.40))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe {
		t.Skip("alpha=0.40 infeasible on this reconstruction")
	}
	for i := 0; i < set.Len(); i++ {
		if err := set.Route(i).Validate(net); err != nil {
			t.Errorf("route %d invalid: %v", i, err)
		}
	}
	// The accepted set must re-verify from scratch.
	res, err := m.SolveTwoClass(delay.ClassInput{Class: traffic.Voice(), Alpha: 0.40, Routes: set})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("accepted set diverges on cold solve")
	}
	worst, _ := set.MaxRouteDelay(res.D)
	if worst > traffic.Voice().Deadline {
		t.Errorf("cold re-verify worst %g exceeds deadline", worst)
	}
}

func TestRemoveLastUsedByRollback(t *testing.T) {
	// RemoveLast after Add must restore CrossCounts exactly.
	net, err := topology.Line(4, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	set := routes.NewSet(net)
	r1, err := routes.FromRouterPath(net, "v", []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Add(r1); err != nil {
		t.Fatal(err)
	}
	before := make([]int, net.NumServers())
	for s := range before {
		before[s] = set.CrossCount(s)
	}
	r2, err := routes.FromRouterPath(net, "v", []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Add(r2); err != nil {
		t.Fatal(err)
	}
	set.RemoveLast()
	if set.Len() != 1 {
		t.Fatalf("len = %d", set.Len())
	}
	for s := range before {
		if set.CrossCount(s) != before[s] {
			t.Errorf("server %d cross count %d, want %d", s, set.CrossCount(s), before[s])
		}
	}
	set.RemoveLast()
	set.RemoveLast() // extra call is a no-op
	if set.Len() != 0 {
		t.Error("set not empty")
	}
}

func BenchmarkSPSelectMCI(b *testing.B) {
	net := topology.MCI()
	m := delay.NewModel(net)
	for i := 0; i < b.N; i++ {
		if _, _, err := (SP{}).Select(m, voiceReq(0.3)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeuristicSelectMCI(b *testing.B) {
	net := topology.MCI()
	m := delay.NewModel(net)
	for i := 0; i < b.N; i++ {
		if _, _, err := (Heuristic{}).Select(m, voiceReq(0.3)); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel lookahead must produce exactly the same route set as the
// serial evaluation — determinism is part of its contract.
func TestParallelLookaheadMatchesSerial(t *testing.T) {
	net := topology.MCI()
	m := model(t, net)
	for _, alpha := range []float64{0.32, 0.40} {
		sSet, sRep, err := (Heuristic{}).Select(m, voiceReq(alpha))
		if err != nil {
			t.Fatal(err)
		}
		pSet, pRep, err := (Heuristic{Parallel: true}).Select(m, voiceReq(alpha))
		if err != nil {
			t.Fatal(err)
		}
		if sRep.Safe != pRep.Safe || sRep.TotalHops != pRep.TotalHops || sSet.Len() != pSet.Len() {
			t.Fatalf("alpha=%.2f: parallel diverged from serial: %+v vs %+v", alpha, sRep, pRep)
		}
		for i := 0; i < sSet.Len(); i++ {
			a, b := sSet.Route(i), pSet.Route(i)
			if a.Src != b.Src || a.Dst != b.Dst || a.Hops() != b.Hops() {
				t.Fatalf("alpha=%.2f: route %d differs", alpha, i)
			}
			for j := range a.Servers {
				if a.Servers[j] != b.Servers[j] {
					t.Fatalf("alpha=%.2f: route %d server %d differs", alpha, i, j)
				}
			}
		}
	}
}

func BenchmarkHeuristicSerialLookahead(b *testing.B) {
	net := topology.MCI()
	m := delay.NewModel(net)
	for i := 0; i < b.N; i++ {
		if _, _, err := (Heuristic{}).Select(m, voiceReq(0.4)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeuristicParallelLookahead(b *testing.B) {
	net := topology.MCI()
	m := delay.NewModel(net)
	for i := 0; i < b.N; i++ {
		if _, _, err := (Heuristic{Parallel: true}).Select(m, voiceReq(0.4)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDelayWeightedHeuristic(t *testing.T) {
	net := topology.MCI()
	m := model(t, net)
	for _, alpha := range []float64{0.30, 0.40} {
		set, rep, err := (Heuristic{DelayWeighted: true}).Select(m, voiceReq(alpha))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Safe {
			t.Errorf("delay-weighted heuristic unsafe at alpha=%.2f", alpha)
			continue
		}
		if set.Len() != 342 {
			t.Errorf("routed %d pairs", set.Len())
		}
		// Re-verify cold.
		res, err := m.SolveTwoClass(delay.ClassInput{Class: traffic.Voice(), Alpha: alpha, Routes: set})
		if err != nil || !res.Converged {
			t.Fatalf("cold solve: %v", err)
		}
		worst, _ := set.MaxRouteDelay(res.D)
		if !delay.MeetsDeadline(worst, traffic.Voice().Deadline) {
			t.Errorf("cold re-verify worst %g exceeds deadline", worst)
		}
	}
}

func TestDelayWeightedDeterministic(t *testing.T) {
	net := topology.MCI()
	m := model(t, net)
	a, ra, err := (Heuristic{DelayWeighted: true}).Select(m, voiceReq(0.35))
	if err != nil {
		t.Fatal(err)
	}
	b, rb, err := (Heuristic{DelayWeighted: true}).Select(m, voiceReq(0.35))
	if err != nil {
		t.Fatal(err)
	}
	if ra.TotalHops != rb.TotalHops || a.Len() != b.Len() {
		t.Fatal("delay-weighted selection not deterministic")
	}
}
