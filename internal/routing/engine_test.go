package routing

import (
	"math/rand"
	"testing"

	"ubac/internal/delay"
	"ubac/internal/routes"
	"ubac/internal/telemetry"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

// sameReport asserts every report field matches, bitwise for floats.
func sameReport(t *testing.T, label string, got, want *Report) {
	t.Helper()
	if got.Selector != want.Selector || got.Safe != want.Safe ||
		got.PairsRouted != want.PairsRouted || got.PairsTotal != want.PairsTotal ||
		got.TotalHops != want.TotalHops || got.CandidatesTried != want.CandidatesTried ||
		got.Backtracks != want.Backtracks {
		t.Fatalf("%s: report mismatch:\n got %+v\nwant %+v", label, got, want)
	}
	if got.WorstDelay != want.WorstDelay {
		t.Fatalf("%s: WorstDelay %.17g, want %.17g (not bit-identical)", label, got.WorstDelay, want.WorstDelay)
	}
	if (got.FailedPair == nil) != (want.FailedPair == nil) {
		t.Fatalf("%s: FailedPair %v, want %v", label, got.FailedPair, want.FailedPair)
	}
	if got.FailedPair != nil && *got.FailedPair != *want.FailedPair {
		t.Fatalf("%s: FailedPair %v, want %v", label, *got.FailedPair, *want.FailedPair)
	}
}

// sameRouteSets asserts both selections picked exactly the same routes
// in the same order.
func sameRouteSets(t *testing.T, label string, got, want *routes.Set) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d routes, want %d", label, got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		a, b := got.Route(i), want.Route(i)
		if a.Src != b.Src || a.Dst != b.Dst || a.Class != b.Class || len(a.Servers) != len(b.Servers) {
			t.Fatalf("%s: route %d differs: %+v vs %+v", label, i, a, b)
		}
		for j := range a.Servers {
			if a.Servers[j] != b.Servers[j] {
				t.Fatalf("%s: route %d server %d differs", label, i, j)
			}
		}
	}
}

// randomPairs draws n distinct ordered pairs from the network's pair
// list with a fixed seed.
func randomPairs(net *topology.Network, n int, seed int64) [][2]int {
	all := net.Pairs()
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(all))
	if n > len(all) {
		n = len(all)
	}
	ps := make([][2]int, n)
	for i := 0; i < n; i++ {
		ps[i] = all[idx[i]]
	}
	return ps
}

// TestEngineParallelMatchesSequential is the determinism property of the
// evaluation engine: for every selector, parallel candidate evaluation
// (workers=4, plus concurrent portfolio members) must reproduce the
// sequential selection exactly — same route set, same report down to
// bit-identical WorstDelay, and the same re-solved delay vector — on
// random topologies, in both safe and failing regimes.
func TestEngineParallelMatchesSequential(t *testing.T) {
	cls := traffic.Voice()
	selectors := []struct {
		name string
		mk   func(w int) Selector
	}{
		{"lookahead", func(w int) Selector { return Heuristic{Workers: w} }},
		{"delay-weighted", func(w int) Selector { return Heuristic{DelayWeighted: true, Workers: w} }},
		{"cheap", func(w int) Selector { return Heuristic{Mode: Cheap, Workers: w} }},
		{"backtracking", func(w int) Selector { return Backtracking{Workers: w, MaxBacktracks: 40} }},
		{"portfolio", func(w int) Selector { return Portfolio{Workers: w} }},
	}
	for ti, spec := range []string{"grid:4x4", "grid:5x3", "nsfnet", "random:12:24:3"} {
		net, err := topology.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		pairs := randomPairs(net, 10, int64(100+ti))
		m := delay.NewModel(net)
		for _, alpha := range []float64{0.30, 0.85} {
			req := Request{Class: cls, Alpha: alpha, Pairs: pairs}
			for _, sc := range selectors {
				label := spec + "/" + sc.name
				seqSet, seqRep, err := sc.mk(1).Select(m, req)
				if err != nil {
					t.Fatalf("%s sequential: %v", label, err)
				}
				parSet, parRep, err := sc.mk(4).Select(m, req)
				if err != nil {
					t.Fatalf("%s parallel: %v", label, err)
				}
				sameReport(t, label, parRep, seqRep)
				sameRouteSets(t, label, parSet, seqSet)
				// The re-solved delay vectors must agree bitwise too.
				in := delay.ClassInput{Class: cls, Alpha: alpha, Routes: seqSet}
				want, err := m.SolveTwoClass(in)
				if err != nil {
					t.Fatal(err)
				}
				in.Routes = parSet
				got, err := m.SolveTwoClass(in)
				if err != nil {
					t.Fatal(err)
				}
				for s := range want.D {
					if got.D[s] != want.D[s] {
						t.Fatalf("%s: D[%d] = %.17g, want %.17g", label, s, got.D[s], want.D[s])
					}
				}
			}
		}
	}
}

// A persistent shared engine — warm memo, long-lived workers — must not
// change any selection relative to fresh per-Select engines, across
// repeated selections and different selectors sharing it.
func TestEngineSharedAcrossSelections(t *testing.T) {
	net, err := topology.Parse("grid:4x4")
	if err != nil {
		t.Fatal(err)
	}
	m := delay.NewModel(net)
	cls := traffic.Voice()
	pairs := randomPairs(net, 12, 7)
	eng := NewEngine(4)
	defer eng.Close()
	for _, alpha := range []float64{0.25, 0.45} {
		req := Request{Class: cls, Alpha: alpha, Pairs: pairs}
		for round := 0; round < 2; round++ { // round 2 hits the memo
			for _, tc := range []struct {
				name   string
				shared Selector
				fresh  Selector
			}{
				{"heuristic", Heuristic{Engine: eng}, Heuristic{}},
				{"cheap", Heuristic{Mode: Cheap, Engine: eng}, Heuristic{Mode: Cheap}},
				{"backtracking", Backtracking{Engine: eng}, Backtracking{}},
			} {
				gotSet, gotRep, err := tc.shared.Select(m, req)
				if err != nil {
					t.Fatal(err)
				}
				wantSet, wantRep, err := tc.fresh.Select(m, req)
				if err != nil {
					t.Fatal(err)
				}
				sameReport(t, tc.name, gotRep, wantRep)
				sameRouteSets(t, tc.name, gotSet, wantSet)
			}
		}
	}
}

// Selectors must emit one RouteSelect event per run when telemetry is
// active — and exactly one per portfolio member, never one for the
// portfolio wrapper itself.
func TestSelectEmitsRouteSelect(t *testing.T) {
	net, err := topology.Parse("grid:4x3")
	if err != nil {
		t.Fatal(err)
	}
	m := delay.NewModel(net)
	sink := telemetry.NewRegistrySink(telemetry.NewRegistry(), nil)
	m.Sink = sink
	req := Request{Class: traffic.Voice(), Alpha: 0.3, Pairs: randomPairs(net, 6, 1)}
	if _, rep, err := (Heuristic{}).Select(m, req); err != nil || !rep.Safe {
		t.Fatalf("heuristic: rep=%+v err=%v", rep, err)
	}
	if got := sink.RouteSelectDuration.Count(); got != 1 {
		t.Fatalf("select events after heuristic = %d, want 1", got)
	}
	if sink.RouteSelectCandidates.Value() == 0 {
		t.Fatal("no candidate evaluations recorded")
	}
	before := sink.RouteSelectDuration.Count()
	if _, _, err := (Portfolio{}).Select(m, req); err != nil {
		t.Fatal(err)
	}
	// The first (safe) member emits one event; the wrapper adds none.
	if got := sink.RouteSelectDuration.Count() - before; got != 1 {
		t.Fatalf("select events from portfolio = %d, want 1", got)
	}
}

// Concurrent portfolio members cancel cleanly: the winning member's
// result is returned even while higher-indexed members are abandoned
// mid-selection, and ErrCanceled never escapes.
func TestPortfolioConcurrentCancellation(t *testing.T) {
	net := topology.MCI()
	m := delay.NewModel(net)
	req := Request{Class: traffic.Voice(), Alpha: 0.30}
	set, rep, err := (Portfolio{Workers: 4}).Select(m, req)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe {
		t.Fatalf("portfolio unsafe on MCI at alpha=0.30: %+v", rep)
	}
	if set.Len() != rep.PairsRouted {
		t.Fatalf("set has %d routes, report says %d", set.Len(), rep.PairsRouted)
	}
	// Must agree with the sequential portfolio exactly.
	wantSet, wantRep, err := (Portfolio{}).Select(m, req)
	if err != nil {
		t.Fatal(err)
	}
	sameReport(t, "portfolio-mci", rep, wantRep)
	sameRouteSets(t, "portfolio-mci", set, wantSet)
}
