package routing

import (
	"strings"
	"testing"

	"ubac/internal/routes"
	"ubac/internal/topology"
)

func TestPortfolioName(t *testing.T) {
	if (Portfolio{}).Name() != "portfolio" {
		t.Error("name wrong")
	}
}

// The portfolio must succeed at the Theorem 4 lower bound on NSFNet,
// where the pure lookahead heuristic fails but the SP-guided member
// succeeds — the motivating case.
func TestPortfolioCoversNSFNetLowerBound(t *testing.T) {
	net := topology.NSFNet(topology.DefaultCapacity)
	m := model(t, net)
	const lb = 0.4545
	_, lookRep, err := (Heuristic{}).Select(m, voiceReq(lb))
	if err != nil {
		t.Fatal(err)
	}
	set, rep, err := (Portfolio{}).Select(m, voiceReq(lb))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe {
		t.Fatalf("portfolio unsafe at the NSFNet lower bound: %+v", rep)
	}
	if set.Len() != 182 {
		t.Errorf("routed %d pairs, want 182", set.Len())
	}
	if lookRep.Safe {
		t.Log("note: lookahead now succeeds alone; portfolio fallback untested here")
	}
	if !strings.HasPrefix(rep.Selector, "portfolio/") {
		t.Errorf("selector label = %s", rep.Selector)
	}
}

// On MCI the portfolio must do at least as well as its best member.
func TestPortfolioAtLeastBestMember(t *testing.T) {
	net := topology.MCI()
	m := model(t, net)
	for _, alpha := range []float64{0.36, 0.43, 0.46} {
		_, look, err := (Heuristic{}).Select(m, voiceReq(alpha))
		if err != nil {
			t.Fatal(err)
		}
		_, cheap, err := (Heuristic{Mode: Cheap}).Select(m, voiceReq(alpha))
		if err != nil {
			t.Fatal(err)
		}
		_, port, err := (Portfolio{}).Select(m, voiceReq(alpha))
		if err != nil {
			t.Fatal(err)
		}
		if (look.Safe || cheap.Safe) && !port.Safe {
			t.Errorf("alpha=%.2f: a member is safe but the portfolio is not", alpha)
		}
	}
}

func TestPortfolioFallbackReportsProgress(t *testing.T) {
	net := topology.MCI()
	m := model(t, net)
	_, rep, err := (Portfolio{}).Select(m, voiceReq(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Safe {
		t.Fatal("alpha=0.9 reported safe")
	}
	if rep.FailedPair == nil {
		t.Errorf("fallback report missing the failed pair: %+v", rep)
	}
	if !strings.HasPrefix(rep.Selector, "portfolio/") {
		t.Errorf("selector label = %s", rep.Selector)
	}
}

func TestPortfolioCustomMembers(t *testing.T) {
	net := topology.MCI()
	m := model(t, net)
	p := Portfolio{Members: []Selector{SP{}}}
	_, rep, err := p.Select(m, voiceReq(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe || rep.Selector != "portfolio/sp" {
		t.Errorf("custom members not used: %+v", rep)
	}
}

func TestPortfolioValidation(t *testing.T) {
	net := topology.MCI()
	m := model(t, net)
	if _, _, err := (Portfolio{}).Select(m, voiceReq(0)); err == nil {
		t.Error("bad alpha accepted")
	}
}

func TestAnalyzeMetrics(t *testing.T) {
	net := topology.MCI()
	m := model(t, net)
	spSet, _, err := SP{}.Select(m, voiceReq(0.3))
	if err != nil {
		t.Fatal(err)
	}
	spM, err := Analyze(net, spSet)
	if err != nil {
		t.Fatal(err)
	}
	if spM.Routes != 342 || spM.TotalHops == 0 {
		t.Fatalf("sp metrics: %+v", spM)
	}
	// SP routes have stretch exactly 1.
	if spM.Stretch != 1 {
		t.Errorf("sp stretch = %g, want 1", spM.Stretch)
	}
	hSet, rep, err := (Heuristic{}).Select(m, voiceReq(0.45))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe {
		t.Skip("0.45 infeasible")
	}
	hM, err := Analyze(net, hSet)
	if err != nil {
		t.Fatal(err)
	}
	// The heuristic trades stretch >= 1 for feasibility at higher alpha.
	if hM.Stretch < 1 {
		t.Errorf("heuristic stretch = %g < 1", hM.Stretch)
	}
	if hM.MaxServerLoad <= 0 || hM.DependencyArcs <= 0 {
		t.Errorf("heuristic metrics empty: %+v", hM)
	}
	// Errors.
	if _, err := Analyze(net, nil); err == nil {
		t.Error("nil set accepted")
	}
	empty, err := Analyze(net, routes.NewSet(net))
	if err != nil || empty.Routes != 0 {
		t.Errorf("empty set: %+v %v", empty, err)
	}
}
