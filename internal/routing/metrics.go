package routing

import (
	"fmt"

	"ubac/internal/routes"
	"ubac/internal/topology"
)

// Metrics summarizes the structural quality of a route set — the
// quantities the selection heuristics trade against each other: path
// stretch (longer routes accumulate more upstream jitter), load
// concentration (the worst server's route count), and dependency
// feedback (cyclic route unions inflate the Y_k recursion).
type Metrics struct {
	Routes int
	// TotalHops and MeanHops describe route length.
	TotalHops int
	MeanHops  float64
	// Stretch is mean(hops / shortest-path hops) ≥ 1.
	Stretch float64
	// MaxServerLoad is the largest number of routes crossing any one
	// link server; MeanServerLoad averages over used servers.
	MaxServerLoad  int
	MeanServerLoad float64
	// Cyclic reports whether the route union's dependency graph has a
	// cycle, and DependencyArcs its size.
	Cyclic         bool
	DependencyArcs int
}

// Analyze computes Metrics for a route set.
func Analyze(net *topology.Network, set *routes.Set) (*Metrics, error) {
	if set == nil || set.Network() != net {
		return nil, fmt.Errorf("routing: route set missing or over a different network")
	}
	m := &Metrics{Routes: set.Len()}
	if set.Len() == 0 {
		return m, nil
	}
	rg := net.RouterGraph()
	sumStretch := 0.0
	for i := 0; i < set.Len(); i++ {
		r := set.Route(i)
		m.TotalHops += r.Hops()
		sp := rg.Distance(r.Src, r.Dst)
		if sp <= 0 {
			return nil, fmt.Errorf("routing: unreachable pair %d->%d in set", r.Src, r.Dst)
		}
		sumStretch += float64(r.Hops()) / float64(sp)
	}
	m.MeanHops = float64(m.TotalHops) / float64(set.Len())
	m.Stretch = sumStretch / float64(set.Len())
	used := 0
	sumLoad := 0
	for s := 0; s < net.NumServers(); s++ {
		if c := set.CrossCount(s); c > 0 {
			used++
			sumLoad += c
			if c > m.MaxServerLoad {
				m.MaxServerLoad = c
			}
		}
	}
	if used > 0 {
		m.MeanServerLoad = float64(sumLoad) / float64(used)
	}
	dep := set.DependencyGraph()
	m.Cyclic = dep.HasCycle()
	m.DependencyArcs = dep.Size()
	return m, nil
}
