package routing

import (
	"fmt"
	"sort"
	"testing"

	"ubac/internal/delay"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

// benchGridPairs picks the n longest-distance pairs of the grid (the
// regime where lookahead evaluation dominates: many candidates, long
// routes), deterministically.
func benchGridPairs(net *topology.Network, n int) [][2]int {
	rg := net.RouterGraph()
	all := net.Pairs()
	idx := make([]int, len(all))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		da, db := rg.Distance(all[idx[a]][0], all[idx[a]][1]), rg.Distance(all[idx[b]][0], all[idx[b]][1])
		if da != db {
			return da > db
		}
		return idx[a] < idx[b]
	})
	if n > len(all) {
		n = len(all)
	}
	ps := make([][2]int, n)
	for i := 0; i < n; i++ {
		ps[i] = all[idx[i]]
	}
	return ps
}

func benchSelect(b *testing.B, mk func(w int) Selector, alpha float64, pairs int) {
	net, err := topology.Grid(8, 8, 100e6)
	if err != nil {
		b.Fatal(err)
	}
	m := delay.NewModel(net)
	req := Request{Class: traffic.Voice(), Alpha: alpha, Pairs: benchGridPairs(net, pairs)}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := mk(workers).Select(m, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSelectLookahead is the headline selection benchmark: the
// paper's lookahead heuristic with k=6 candidates per pair over the 24
// longest pairs of an 8×8 grid. workers=1 is the sequential baseline;
// workers=4 fans the per-pair candidate solves across the engine pool
// (same selection bit for bit). On a single-core host the workers=4
// variant measures pool overhead, not speedup — compare wall times only
// on a multi-core runner; the allocs/op reduction is machine-independent.
func BenchmarkSelectLookahead(b *testing.B) {
	benchSelect(b, func(w int) Selector { return Heuristic{K: 6, Workers: w} }, 0.10, 24)
}

// BenchmarkSelectCheap measures the first-accept scan (phantom solves
// through the same engine, waves of the pool size).
func BenchmarkSelectCheap(b *testing.B) {
	benchSelect(b, func(w int) Selector { return Heuristic{K: 6, Mode: Cheap, Workers: w} }, 0.10, 24)
}

// BenchmarkSelectPortfolio exercises concurrent portfolio members over
// one shared engine and memoized candidate generation.
func BenchmarkSelectPortfolio(b *testing.B) {
	benchSelect(b, func(w int) Selector { return Portfolio{Workers: w} }, 0.10, 24)
}
