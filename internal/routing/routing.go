// Package routing implements route selection (Section 5.2): the
// shortest-path baseline (SP) the paper compares against and the paper's
// greedy safe-route-selection heuristic. Safe route selection is NP-hard
// (reduction from Maximum Fixed-Length Disjoint Paths), so the heuristic
// is a no-backtrack search guided by the paper's three rules:
//
//  1. take source/destination pairs in decreasing order of shortest-path
//     distance;
//  2. prefer candidate routes that keep the union of selected routes
//     cycle-free at the link-server level (cycles feed delay back into
//     the Y_k recursion);
//  3. among the candidates, pick the one with the minimum end-to-end
//     delay bound.
//
// A pair's candidate is accepted only if, after adding it, the delay
// fixed point still converges and every route selected so far keeps
// meeting the class deadline — otherwise the next candidate is tried, and
// the selection fails when a pair has no acceptable candidate.
package routing

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"ubac/internal/delay"
	"ubac/internal/graph"
	"ubac/internal/routes"
	"ubac/internal/traffic"
)

// Request describes one selection problem: route every (src, dst) pair
// for flows of Class under utilization assignment Alpha.
type Request struct {
	Class traffic.Class
	Alpha float64
	// Pairs lists the ordered source/destination router pairs to route.
	// Nil means all ordered pairs of edge routers.
	Pairs [][2]int
}

// Report describes the outcome of a selection.
type Report struct {
	Selector string
	// Safe reports whether the final route set passed verification
	// (all routes within deadline, fixed point converged).
	Safe bool
	// PairsRouted and PairsTotal count progress; they differ only on
	// failure.
	PairsRouted, PairsTotal int
	// FailedPair identifies the first unroutable pair when Safe is
	// false and the failure happened during selection (nil otherwise).
	FailedPair *[2]int
	// WorstDelay is the largest end-to-end bound over selected routes.
	WorstDelay float64
	// TotalHops sums the route lengths (route-length cost of the
	// selection).
	TotalHops int
	// CandidatesTried counts tentative candidate evaluations (heuristic
	// only).
	CandidatesTried int
	// Backtracks counts undo steps (Backtracking selector only).
	Backtracks int
}

// Selector chooses a route set for a request over the model's network.
type Selector interface {
	// Name identifies the selector in reports and benchmarks.
	Name() string
	// Select routes all pairs. It returns the selected routes and a
	// report; the error is reserved for invalid inputs, while an unsafe
	// or failed selection is reported via Report.Safe=false.
	Select(m *delay.Model, req Request) (*routes.Set, *Report, error)
}

// resolvePairs expands a nil pair list to all ordered edge-router pairs.
func resolvePairs(m *delay.Model, req Request) ([][2]int, error) {
	if err := req.Class.Validate(); err != nil {
		return nil, err
	}
	if !(req.Alpha > 0 && req.Alpha < 1) {
		return nil, fmt.Errorf("routing: alpha %g out of (0,1)", req.Alpha)
	}
	pairs := req.Pairs
	if pairs == nil {
		pairs = m.Network().Pairs()
	}
	for _, p := range pairs {
		if p[0] == p[1] {
			return nil, fmt.Errorf("routing: pair %v routes a router to itself", p)
		}
		if p[0] < 0 || p[0] >= m.Network().NumRouters() || p[1] < 0 || p[1] >= m.Network().NumRouters() {
			return nil, fmt.Errorf("routing: pair %v out of range", p)
		}
	}
	return pairs, nil
}

// SP is the shortest-path baseline of Section 6: every pair takes its
// BFS shortest route, with no regard for delay feedback.
type SP struct{}

// Name returns "sp".
func (SP) Name() string { return "sp" }

// Select routes every pair over its shortest path and verifies the
// resulting set.
func (SP) Select(m *delay.Model, req Request) (*routes.Set, *Report, error) {
	pairs, err := resolvePairs(m, req)
	if err != nil {
		return nil, nil, err
	}
	set := routes.NewSet(m.Network())
	rg := m.Network().RouterGraph()
	rep := &Report{Selector: "sp", PairsTotal: len(pairs)}
	for _, p := range pairs {
		path, err := rg.ShortestPath(p[0], p[1])
		if err != nil {
			return nil, nil, fmt.Errorf("routing: pair %v: %w", p, err)
		}
		r, err := routes.FromRouterPath(m.Network(), req.Class.Name, path)
		if err != nil {
			return nil, nil, err
		}
		if err := set.Add(r); err != nil {
			return nil, nil, err
		}
		rep.PairsRouted++
		rep.TotalHops += r.Hops()
	}
	res, err := m.SolveTwoClass(delay.ClassInput{Class: req.Class, Alpha: req.Alpha, Routes: set})
	if err != nil {
		return nil, nil, err
	}
	if res.Converged {
		slack, _ := set.MinSlackExtra(res.D, req.Class.Deadline, m.FixedPerHop, nil)
		rep.WorstDelay = req.Class.Deadline - slack
		rep.Safe = delay.MeetsDeadline(rep.WorstDelay, req.Class.Deadline)
	}
	return set, rep, nil
}

// Mode selects how the heuristic scores a pair's candidate routes.
type Mode int

const (
	// Lookahead (the default) evaluates each candidate by tentatively
	// adding it and re-solving the delay fixed point, then picks the
	// feasible candidate that leaves the system with the largest
	// minimum deadline slack. This realizes the paper's "most promising
	// route" with a one-step lookahead.
	Lookahead Mode = iota
	// Cheap scores candidates by their end-to-end bound under the
	// current delay vector without re-solving, accepting the first that
	// verifies. Faster but weaker; kept for the ablation benches.
	Cheap
)

// Heuristic is the paper's safe route selection algorithm with tunable
// knobs for the ablation benches. The zero value uses the defaults.
type Heuristic struct {
	// K is the number of candidate shortest paths per pair (default 8).
	K int
	// LengthSlack admits candidates up to this many hops longer than
	// the pair's shortest path (default 2).
	LengthSlack int
	// Mode selects the candidate scoring strategy (default Lookahead).
	Mode Mode
	// IgnoreCycles disables heuristic 2 (acyclic preference) for
	// ablation.
	IgnoreCycles bool
	// IgnoreOrder disables heuristic 1 (longest pairs first) for
	// ablation, keeping the input order.
	IgnoreOrder bool
	// Parallel evaluates lookahead candidates concurrently, one
	// goroutine per candidate; each solves the fixed point with the
	// candidate as a phantom route, so no shared state is mutated. The
	// choice is deterministic regardless of goroutine scheduling (ties
	// broken by candidate index). Ignored in Cheap mode.
	Parallel bool
	// DelayWeighted generates each pair's candidate paths with Yen's
	// algorithm over the *current delay vector* (arc cost = the link
	// server's d_k plus a small hop charge) instead of hop counts, so
	// candidates actively route around already-hot servers. The
	// hop-count shortest path is always kept as a candidate.
	DelayWeighted bool
}

// Name returns "heuristic".
func (Heuristic) Name() string { return "heuristic" }

func (h Heuristic) k() int {
	if h.K > 0 {
		return h.K
	}
	return 8
}

func (h Heuristic) slack() int {
	if h.LengthSlack > 0 {
		return h.LengthSlack
	}
	return 2
}

// Select runs the greedy search described in the package comment.
func (h Heuristic) Select(m *delay.Model, req Request) (*routes.Set, *Report, error) {
	pairs, err := resolvePairs(m, req)
	if err != nil {
		return nil, nil, err
	}
	net := m.Network()
	rg := net.RouterGraph()
	rep := &Report{Selector: "heuristic", PairsTotal: len(pairs)}

	// Heuristic 1: longest pairs first (deterministic tie-break).
	ordered := append([][2]int(nil), pairs...)
	if !h.IgnoreOrder {
		dist := make([]int, len(ordered))
		for i, p := range ordered {
			dist[i] = rg.Distance(p[0], p[1])
		}
		idx := make([]int, len(ordered))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			if dist[idx[a]] != dist[idx[b]] {
				return dist[idx[a]] > dist[idx[b]]
			}
			if ordered[idx[a]][0] != ordered[idx[b]][0] {
				return ordered[idx[a]][0] < ordered[idx[b]][0]
			}
			return ordered[idx[a]][1] < ordered[idx[b]][1]
		})
		sorted := make([][2]int, len(ordered))
		for i, j := range idx {
			sorted[i] = ordered[j]
		}
		ordered = sorted
	}

	set := routes.NewSet(net)
	base := make([]float64, net.NumServers()) // converged d of the accepted set
	input := func() delay.ClassInput {
		return delay.ClassInput{Class: req.Class, Alpha: req.Alpha, Routes: set}
	}

	for _, p := range ordered {
		var paths [][]int
		var err error
		if h.DelayWeighted {
			// Hop charge keeps path lengths bounded when delays are ~0
			// (early pairs) and breaks cost ties toward shorter routes.
			hop := req.Class.Deadline / 1e4
			weight := func(u, v int) float64 {
				s, ok := net.ServerFor(u, v)
				if !ok {
					return math.Inf(1)
				}
				return base[s] + hop
			}
			paths, err = rg.KShortestPathsWeighted(p[0], p[1], h.k(), weight)
			if err == nil {
				// Guarantee the hop-shortest path is among the candidates.
				if sp, err2 := rg.ShortestPath(p[0], p[1]); err2 == nil && !pathIn(paths, sp) {
					paths = append(paths, sp)
				}
			}
		} else {
			paths, err = rg.KShortestPaths(p[0], p[1], h.k())
		}
		if err != nil {
			return nil, nil, fmt.Errorf("routing: pair %v: %w", p, err)
		}
		spLen := rg.Distance(p[0], p[1])
		type candidate struct {
			route  routes.Route
			cyclic bool
			score  float64
		}
		var cands []candidate
		var dep *graph.Graph
		if !h.IgnoreCycles {
			dep = set.DependencyGraph()
		}
		for _, path := range paths {
			if len(path)-1 > spLen+h.slack() {
				continue
			}
			r, err := routes.FromRouterPath(net, req.Class.Name, path)
			if err != nil {
				return nil, nil, err
			}
			c := candidate{route: r, score: r.Delay(base)}
			if !h.IgnoreCycles {
				c.cyclic = routes.WouldCycleOn(dep, r)
			}
			cands = append(cands, c)
		}
		// Heuristics 2+3: acyclic candidates first, then lowest current
		// delay bound, then fewest hops (stable order keeps this
		// deterministic since KShortestPaths is).
		sort.SliceStable(cands, func(a, b int) bool {
			if cands[a].cyclic != cands[b].cyclic {
				return !cands[a].cyclic
			}
			if cands[a].score != cands[b].score {
				return cands[a].score < cands[b].score
			}
			return cands[a].route.Hops() < cands[b].route.Hops()
		})

		accepted := false
		if h.Mode == Lookahead {
			// Evaluate every candidate by its one-step effect: tentatively
			// add it, re-solve the fixed point, and keep the feasible
			// candidate that leaves the largest worst-route slack.
			type outcome struct {
				ok    bool
				slack float64
				d     []float64
			}
			outs := make([]outcome, len(cands))
			// evaluate solves the fixed point with the candidate as a
			// phantom member of the set: no mutation, no cloning, safe to
			// run concurrently for different candidates.
			evaluate := func(ci int) error {
				res, err := m.SolveTwoClassExtra(input(), &cands[ci].route, base)
				if err != nil {
					return err
				}
				if !res.Converged {
					return nil
				}
				slack, _ := set.MinSlackExtra(res.D, req.Class.Deadline, m.FixedPerHop, &cands[ci].route)
				if delay.MeetsDeadline(req.Class.Deadline-slack, req.Class.Deadline) {
					outs[ci] = outcome{
						ok:    true,
						slack: slack,
						d:     append([]float64(nil), res.D...),
					}
				}
				return nil
			}
			rep.CandidatesTried += len(cands)
			if h.Parallel && len(cands) > 1 {
				var wg sync.WaitGroup
				errs := make([]error, len(cands))
				for ci := range cands {
					wg.Add(1)
					go func(ci int) {
						defer wg.Done()
						errs[ci] = evaluate(ci)
					}(ci)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						return nil, nil, err
					}
				}
			} else {
				for ci := range cands {
					if err := evaluate(ci); err != nil {
						return nil, nil, err
					}
				}
			}
			bestIdx := -1
			for ci, o := range outs {
				if o.ok && (bestIdx == -1 || o.slack > outs[bestIdx].slack) {
					bestIdx = ci
				}
			}
			if bestIdx >= 0 {
				if err := set.Add(cands[bestIdx].route); err != nil {
					return nil, nil, err
				}
				copy(base, outs[bestIdx].d)
				rep.PairsRouted++
				rep.TotalHops += cands[bestIdx].route.Hops()
				accepted = true
			}
		} else {
			// Cheap mode: accept the first candidate that verifies.
			for _, c := range cands {
				rep.CandidatesTried++
				if err := set.Add(c.route); err != nil {
					return nil, nil, err
				}
				res, err := m.SolveTwoClassFrom(input(), base)
				if err != nil {
					return nil, nil, err
				}
				ok := false
				if res.Converged {
					slack, _ := set.MinSlackExtra(res.D, req.Class.Deadline, m.FixedPerHop, nil)
					ok = delay.MeetsDeadline(req.Class.Deadline-slack, req.Class.Deadline)
				}
				if ok {
					copy(base, res.D)
					rep.PairsRouted++
					rep.TotalHops += c.route.Hops()
					accepted = true
					break
				}
				set.RemoveLast()
			}
		}
		if !accepted {
			failed := p
			rep.FailedPair = &failed
			rep.Safe = false
			slack, _ := set.MinSlackExtra(base, req.Class.Deadline, m.FixedPerHop, nil)
			rep.WorstDelay = req.Class.Deadline - slack
			return set, rep, nil
		}
	}
	slack, _ := set.MinSlackExtra(base, req.Class.Deadline, m.FixedPerHop, nil)
	rep.WorstDelay = req.Class.Deadline - slack
	rep.Safe = delay.MeetsDeadline(rep.WorstDelay, req.Class.Deadline)
	return set, rep, nil
}

// pathIn reports whether path is already present in paths.
func pathIn(paths [][]int, path []int) bool {
	for _, p := range paths {
		if len(p) != len(path) {
			continue
		}
		same := true
		for i := range p {
			if p[i] != path[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}
