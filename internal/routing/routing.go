// Package routing implements route selection (Section 5.2): the
// shortest-path baseline (SP) the paper compares against and the paper's
// greedy safe-route-selection heuristic. Safe route selection is NP-hard
// (reduction from Maximum Fixed-Length Disjoint Paths), so the heuristic
// is a no-backtrack search guided by the paper's three rules:
//
//  1. take source/destination pairs in decreasing order of shortest-path
//     distance;
//  2. prefer candidate routes that keep the union of selected routes
//     cycle-free at the link-server level (cycles feed delay back into
//     the Y_k recursion);
//  3. among the candidates, pick the one with the minimum end-to-end
//     delay bound.
//
// A pair's candidate is accepted only if, after adding it, the delay
// fixed point still converges and every route selected so far keeps
// meeting the class deadline — otherwise the next candidate is tried, and
// the selection fails when a pair has no acceptable candidate.
//
// Candidate evaluation — the dominant cost, one fixed-point solve per
// candidate — runs through a shared Engine: a persistent worker pool
// with per-worker solver scratch, warm-started from the accepted set's
// converged delay vector and memoizing per-pair candidate generation.
// Parallel and sequential evaluation produce bit-identical selections
// (see Engine).
package routing

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"ubac/internal/delay"
	"ubac/internal/graph"
	"ubac/internal/routes"
	"ubac/internal/telemetry"
	"ubac/internal/traffic"
)

// ErrCanceled is returned by a Select whose request was canceled by the
// portfolio (a lower-indexed member already produced a safe selection).
// It never escapes Portfolio.Select.
var ErrCanceled = errors.New("routing: selection canceled")

// Request describes one selection problem: route every (src, dst) pair
// for flows of Class under utilization assignment Alpha.
type Request struct {
	Class traffic.Class
	Alpha float64
	// Pairs lists the ordered source/destination router pairs to route.
	// Nil means all ordered pairs of edge routers.
	Pairs [][2]int

	// cancel, when set (by the portfolio), asks the selector to abandon
	// the selection at the next pair boundary.
	cancel *atomic.Bool
}

// canceled reports whether the request was asked to stop.
func (r Request) canceled() bool { return r.cancel != nil && r.cancel.Load() }

// Report describes the outcome of a selection.
type Report struct {
	Selector string
	// Safe reports whether the final route set passed verification
	// (all routes within deadline, fixed point converged).
	Safe bool
	// PairsRouted and PairsTotal count progress; they differ only on
	// failure.
	PairsRouted, PairsTotal int
	// FailedPair identifies the first unroutable pair when Safe is
	// false and the failure happened during selection (nil otherwise).
	FailedPair *[2]int
	// WorstDelay is the largest end-to-end bound over selected routes.
	WorstDelay float64
	// TotalHops sums the route lengths (route-length cost of the
	// selection).
	TotalHops int
	// CandidatesTried counts tentative candidate evaluations (heuristic
	// only).
	CandidatesTried int
	// Backtracks counts undo steps (Backtracking selector only).
	Backtracks int
}

// Selector chooses a route set for a request over the model's network.
type Selector interface {
	// Name identifies the selector in reports and benchmarks.
	Name() string
	// Select routes all pairs. It returns the selected routes and a
	// report; the error is reserved for invalid inputs, while an unsafe
	// or failed selection is reported via Report.Safe=false.
	Select(m *delay.Model, req Request) (*routes.Set, *Report, error)
}

// resolvePairs expands a nil pair list to all ordered edge-router pairs.
func resolvePairs(m *delay.Model, req Request) ([][2]int, error) {
	if err := req.Class.Validate(); err != nil {
		return nil, err
	}
	if !(req.Alpha > 0 && req.Alpha < 1) {
		return nil, fmt.Errorf("routing: alpha %g out of (0,1)", req.Alpha)
	}
	pairs := req.Pairs
	if pairs == nil {
		pairs = m.Network().Pairs()
	}
	for _, p := range pairs {
		if p[0] == p[1] {
			return nil, fmt.Errorf("routing: pair %v routes a router to itself", p)
		}
		if p[0] < 0 || p[0] >= m.Network().NumRouters() || p[1] < 0 || p[1] >= m.Network().NumRouters() {
			return nil, fmt.Errorf("routing: pair %v out of range", p)
		}
	}
	return pairs, nil
}

// orderPairs applies heuristic 1 — longest pairs first, with a
// deterministic tie-break — returning a fresh slice either way.
func orderPairs(rg *graph.Graph, pairs [][2]int, keepOrder bool) [][2]int {
	ordered := append([][2]int(nil), pairs...)
	if keepOrder {
		return ordered
	}
	dist := make([]int, len(ordered))
	for i, p := range ordered {
		dist[i] = rg.Distance(p[0], p[1])
	}
	idx := make([]int, len(ordered))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if dist[idx[a]] != dist[idx[b]] {
			return dist[idx[a]] > dist[idx[b]]
		}
		if ordered[idx[a]][0] != ordered[idx[b]][0] {
			return ordered[idx[a]][0] < ordered[idx[b]][0]
		}
		return ordered[idx[a]][1] < ordered[idx[b]][1]
	})
	sorted := make([][2]int, len(ordered))
	for i, j := range idx {
		sorted[i] = ordered[j]
	}
	return sorted
}

// selectStart begins timing a selection when telemetry is on; emitSelect
// reports it. Emission is skipped on error paths (the report is
// discarded there) and by the portfolio wrapper (its members each emit,
// so candidate totals are not double-counted).
func selectStart(m *delay.Model) (time.Time, bool) {
	if telemetry.Active(m.Sink) {
		return time.Now(), true
	}
	return time.Time{}, false
}

func emitSelect(m *delay.Model, emit bool, start time.Time, rep *Report) {
	if !emit {
		return
	}
	m.Sink.RouteSelect(telemetry.RouteSelect{
		Selector:    rep.Selector,
		PairsRouted: rep.PairsRouted,
		PairsTotal:  rep.PairsTotal,
		Candidates:  rep.CandidatesTried,
		Safe:        rep.Safe,
		Elapsed:     time.Since(start),
	})
}

// SP is the shortest-path baseline of Section 6: every pair takes its
// BFS shortest route, with no regard for delay feedback.
type SP struct{}

// Name returns "sp".
func (SP) Name() string { return "sp" }

// Select routes every pair over its shortest path and verifies the
// resulting set.
func (SP) Select(m *delay.Model, req Request) (*routes.Set, *Report, error) {
	start, emit := selectStart(m)
	pairs, err := resolvePairs(m, req)
	if err != nil {
		return nil, nil, err
	}
	set := routes.NewSet(m.Network())
	rg := m.Network().RouterGraph()
	rep := &Report{Selector: "sp", PairsTotal: len(pairs)}
	for _, p := range pairs {
		if req.canceled() {
			return nil, nil, ErrCanceled
		}
		path, err := rg.ShortestPath(p[0], p[1])
		if err != nil {
			return nil, nil, pairErr(p, err)
		}
		r, err := routes.FromRouterPath(m.Network(), req.Class.Name, path)
		if err != nil {
			return nil, nil, err
		}
		if err := set.Add(r); err != nil {
			return nil, nil, err
		}
		rep.PairsRouted++
		rep.TotalHops += r.Hops()
	}
	res, err := m.SolveTwoClass(delay.ClassInput{Class: req.Class, Alpha: req.Alpha, Routes: set})
	if err != nil {
		return nil, nil, err
	}
	if res.Converged {
		slack, _ := set.MinSlackExtra(res.D, req.Class.Deadline, m.FixedPerHop, nil)
		rep.WorstDelay = req.Class.Deadline - slack
		rep.Safe = delay.MeetsDeadline(rep.WorstDelay, req.Class.Deadline)
	}
	emitSelect(m, emit, start, rep)
	return set, rep, nil
}

// Mode selects how the heuristic scores a pair's candidate routes.
type Mode int

const (
	// Lookahead (the default) evaluates each candidate by tentatively
	// adding it and re-solving the delay fixed point, then picks the
	// feasible candidate that leaves the system with the largest
	// minimum deadline slack. This realizes the paper's "most promising
	// route" with a one-step lookahead.
	Lookahead Mode = iota
	// Cheap scores candidates by their end-to-end bound under the
	// current delay vector without re-solving, accepting the first that
	// verifies. Faster but weaker; kept for the ablation benches.
	Cheap
)

// Heuristic is the paper's safe route selection algorithm with tunable
// knobs for the ablation benches. The zero value uses the defaults.
type Heuristic struct {
	// K is the number of candidate shortest paths per pair (default 8).
	K int
	// LengthSlack admits candidates up to this many hops longer than
	// the pair's shortest path (default 2).
	LengthSlack int
	// Mode selects the candidate scoring strategy (default Lookahead).
	Mode Mode
	// IgnoreCycles disables heuristic 2 (acyclic preference) for
	// ablation.
	IgnoreCycles bool
	// IgnoreOrder disables heuristic 1 (longest pairs first) for
	// ablation, keeping the input order.
	IgnoreOrder bool
	// Parallel evaluates candidates concurrently over a pool sized to
	// GOMAXPROCS; equivalent to setting Workers to that size. The
	// selection is bit-identical to sequential evaluation either way.
	Parallel bool
	// Workers sets the candidate-evaluation pool size explicitly
	// (0 defers to Parallel; 1 forces sequential evaluation).
	Workers int
	// Engine, when non-nil, is a shared evaluation engine (worker pool
	// + candidate memo) owned by the caller; Workers and Parallel are
	// then ignored. When nil, Select runs a private engine.
	Engine *Engine
	// DelayWeighted generates each pair's candidate paths with Yen's
	// algorithm over the *current delay vector* (arc cost = the link
	// server's d_k plus a small hop charge) instead of hop counts, so
	// candidates actively route around already-hot servers. The
	// hop-count shortest path is always kept as a candidate.
	DelayWeighted bool
}

// Name returns "heuristic".
func (Heuristic) Name() string { return "heuristic" }

func (h Heuristic) k() int {
	if h.K > 0 {
		return h.K
	}
	return 8
}

func (h Heuristic) slack() int {
	if h.LengthSlack > 0 {
		return h.LengthSlack
	}
	return 2
}

func (h Heuristic) workers() int {
	if h.Workers > 0 {
		return h.Workers
	}
	if h.Parallel {
		if n := runtime.GOMAXPROCS(0); n > 2 {
			return n
		}
		return 2
	}
	return 1
}

// Select runs the greedy search described in the package comment.
func (h Heuristic) Select(m *delay.Model, req Request) (*routes.Set, *Report, error) {
	start, emit := selectStart(m)
	pairs, err := resolvePairs(m, req)
	if err != nil {
		return nil, nil, err
	}
	net := m.Network()
	rg := net.RouterGraph()
	rep := &Report{Selector: "heuristic", PairsTotal: len(pairs)}

	// Heuristic 1: longest pairs first (deterministic tie-break).
	ordered := orderPairs(rg, pairs, h.IgnoreOrder)

	set := routes.NewSet(net)
	base := make([]float64, net.NumServers()) // converged d of the accepted set

	eng, owned := engineFor(h.Engine, h.workers())
	if owned {
		defer eng.Close()
	}
	run := newEvalRun(eng, m, req, set, base)

	for _, p := range ordered {
		if req.canceled() {
			return nil, nil, ErrCanceled
		}
		if err := run.buildCandidates(p, h.k(), h.slack(), h.DelayWeighted, !h.IgnoreCycles); err != nil {
			return nil, nil, err
		}
		accepted := false
		if h.Mode == Lookahead {
			// Evaluate every candidate by its one-step effect: solve the
			// fixed point with the candidate as a phantom member of the
			// set, and keep the feasible candidate that leaves the
			// largest worst-route slack (ties to the lowest index).
			rep.CandidatesTried += len(run.cands)
			if err := run.evaluateAll(); err != nil {
				return nil, nil, err
			}
			bestIdx := -1
			for ci := range run.outs {
				if run.outs[ci].ok && (bestIdx == -1 || run.outs[ci].slack > run.outs[bestIdx].slack) {
					bestIdx = ci
				}
			}
			if bestIdx >= 0 {
				if err := set.Add(run.cands[bestIdx].route); err != nil {
					return nil, nil, err
				}
				copy(base, run.outs[bestIdx].d)
				rep.PairsRouted++
				rep.TotalHops += run.cands[bestIdx].route.Hops()
				accepted = true
			}
		} else {
			// Cheap mode: accept the first candidate that verifies. The
			// phantom solve is bit-identical to adding the candidate and
			// re-solving, so no tentative set mutation is needed.
			idx, tried, err := run.evaluateFirst()
			if err != nil {
				return nil, nil, err
			}
			rep.CandidatesTried += tried
			if idx >= 0 {
				if err := set.Add(run.cands[idx].route); err != nil {
					return nil, nil, err
				}
				copy(base, run.outs[idx].d)
				rep.PairsRouted++
				rep.TotalHops += run.cands[idx].route.Hops()
				accepted = true
			}
		}
		if !accepted {
			failed := p
			rep.FailedPair = &failed
			rep.Safe = false
			slack, _ := set.MinSlackExtra(base, req.Class.Deadline, m.FixedPerHop, nil)
			rep.WorstDelay = req.Class.Deadline - slack
			emitSelect(m, emit, start, rep)
			return set, rep, nil
		}
	}
	slack, _ := set.MinSlackExtra(base, req.Class.Deadline, m.FixedPerHop, nil)
	rep.WorstDelay = req.Class.Deadline - slack
	rep.Safe = delay.MeetsDeadline(rep.WorstDelay, req.Class.Deadline)
	emitSelect(m, emit, start, rep)
	return set, rep, nil
}

// pathIn reports whether path is already present in paths.
func pathIn(paths [][]int, path []int) bool {
	for _, p := range paths {
		if len(p) != len(path) {
			continue
		}
		same := true
		for i := range p {
			if p[i] != path[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}
