package routing

import (
	"fmt"
	"sort"

	"ubac/internal/delay"
	"ubac/internal/routes"
)

// Backtracking extends the paper's no-backtrack heuristic (Section 5.2
// explicitly uses a "no-backtrack search algorithm") with bounded
// chronological backtracking: when a pair has no acceptable candidate,
// the previous pair's choice is undone and its next candidate tried,
// up to MaxBacktracks undo steps in total. With MaxBacktracks = 0 it
// degenerates to the greedy heuristic; the first descent is identical,
// so it can only improve feasibility, at bounded extra cost. Provided as
// an ablation of the paper's no-backtracking design decision.
type Backtracking struct {
	// K and LengthSlack follow Heuristic (defaults 8 and 2).
	K           int
	LengthSlack int
	// MaxBacktracks bounds the total number of undo steps (default 500).
	MaxBacktracks int
}

// Name returns "backtracking".
func (Backtracking) Name() string { return "backtracking" }

func (h Backtracking) k() int {
	if h.K > 0 {
		return h.K
	}
	return 8
}

func (h Backtracking) slack() int {
	if h.LengthSlack > 0 {
		return h.LengthSlack
	}
	return 2
}

func (h Backtracking) budget() int {
	if h.MaxBacktracks > 0 {
		return h.MaxBacktracks
	}
	return 500
}

// level is the search state of one pair position.
type level struct {
	cands      []routes.Route
	next       int
	baseBefore []float64 // converged delay vector before this level's route
}

// Select implements Selector with depth-first search over per-pair
// candidate lists.
func (h Backtracking) Select(m *delay.Model, req Request) (*routes.Set, *Report, error) {
	pairs, err := resolvePairs(m, req)
	if err != nil {
		return nil, nil, err
	}
	net := m.Network()
	rg := net.RouterGraph()
	rep := &Report{Selector: "backtracking", PairsTotal: len(pairs)}

	// Same ordering as the greedy heuristic: longest pairs first.
	ordered := append([][2]int(nil), pairs...)
	dist := make([]int, len(ordered))
	for i, p := range ordered {
		dist[i] = rg.Distance(p[0], p[1])
	}
	idx := make([]int, len(ordered))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if dist[idx[a]] != dist[idx[b]] {
			return dist[idx[a]] > dist[idx[b]]
		}
		if ordered[idx[a]][0] != ordered[idx[b]][0] {
			return ordered[idx[a]][0] < ordered[idx[b]][0]
		}
		return ordered[idx[a]][1] < ordered[idx[b]][1]
	})
	sorted := make([][2]int, len(ordered))
	for i, j := range idx {
		sorted[i] = ordered[j]
	}
	ordered = sorted

	set := routes.NewSet(net)
	base := make([]float64, net.NumServers())
	levels := make([]*level, len(ordered))
	backtracks := 0
	i := 0

	buildLevel := func(p [2]int) (*level, error) {
		paths, err := rg.KShortestPaths(p[0], p[1], h.k())
		if err != nil {
			return nil, fmt.Errorf("routing: pair %v: %w", p, err)
		}
		spLen := len(paths[0]) - 1
		type scored struct {
			r      routes.Route
			cyclic bool
			score  float64
		}
		var cs []scored
		dep := set.DependencyGraph()
		for _, path := range paths {
			if len(path)-1 > spLen+h.slack() {
				continue
			}
			r, err := routes.FromRouterPath(net, req.Class.Name, path)
			if err != nil {
				return nil, err
			}
			cs = append(cs, scored{r: r, cyclic: routes.WouldCycleOn(dep, r), score: r.Delay(base)})
		}
		sort.SliceStable(cs, func(a, b int) bool {
			if cs[a].cyclic != cs[b].cyclic {
				return !cs[a].cyclic
			}
			if cs[a].score != cs[b].score {
				return cs[a].score < cs[b].score
			}
			return cs[a].r.Hops() < cs[b].r.Hops()
		})
		lv := &level{baseBefore: append([]float64(nil), base...)}
		for _, c := range cs {
			lv.cands = append(lv.cands, c.r)
		}
		return lv, nil
	}

	for i < len(ordered) {
		if levels[i] == nil {
			lv, err := buildLevel(ordered[i])
			if err != nil {
				return nil, nil, err
			}
			levels[i] = lv
		}
		lv := levels[i]
		advanced := false
		for lv.next < len(lv.cands) {
			c := lv.cands[lv.next]
			lv.next++
			rep.CandidatesTried++
			if err := set.Add(c); err != nil {
				return nil, nil, err
			}
			res, err := m.SolveTwoClassFrom(delay.ClassInput{
				Class: req.Class, Alpha: req.Alpha, Routes: set,
			}, lv.baseBefore)
			if err != nil {
				return nil, nil, err
			}
			ok := false
			if res.Converged {
				slack, _ := set.MinSlackExtra(res.D, req.Class.Deadline, m.FixedPerHop, nil)
				ok = delay.MeetsDeadline(req.Class.Deadline-slack, req.Class.Deadline)
			}
			if ok {
				copy(base, res.D)
				i++
				advanced = true
				break
			}
			set.RemoveLast()
		}
		if advanced {
			continue
		}
		// Exhausted this level: backtrack if allowed.
		levels[i] = nil
		if i == 0 || backtracks >= h.budget() {
			failed := ordered[i]
			rep.FailedPair = &failed
			rep.Safe = false
			rep.PairsRouted = set.Len()
			slack, _ := set.MinSlackExtra(base, req.Class.Deadline, m.FixedPerHop, nil)
			rep.WorstDelay = req.Class.Deadline - slack
			rep.Backtracks = backtracks
			return set, rep, nil
		}
		backtracks++
		i--
		set.RemoveLast()
		copy(base, levels[i].baseBefore)
	}

	rep.PairsRouted = set.Len()
	for r := 0; r < set.Len(); r++ {
		rep.TotalHops += set.Route(r).Hops()
	}
	slack, _ := set.MinSlackExtra(base, req.Class.Deadline, m.FixedPerHop, nil)
	rep.WorstDelay = req.Class.Deadline - slack
	rep.Safe = delay.MeetsDeadline(rep.WorstDelay, req.Class.Deadline)
	rep.Backtracks = backtracks
	return set, rep, nil
}
