package routing

import (
	"ubac/internal/delay"
	"ubac/internal/routes"
)

// Backtracking extends the paper's no-backtrack heuristic (Section 5.2
// explicitly uses a "no-backtrack search algorithm") with bounded
// chronological backtracking: when a pair has no acceptable candidate,
// the previous pair's choice is undone and its next candidate tried,
// up to MaxBacktracks undo steps in total. With MaxBacktracks = 0 it
// degenerates to the greedy heuristic; the first descent is identical,
// so it can only improve feasibility, at bounded extra cost. Provided as
// an ablation of the paper's no-backtracking design decision.
type Backtracking struct {
	// K and LengthSlack follow Heuristic (defaults 8 and 2).
	K           int
	LengthSlack int
	// MaxBacktracks bounds the total number of undo steps (default 500).
	MaxBacktracks int
	// Workers sets the candidate-evaluation pool size (default 1,
	// sequential). Candidate acceptance is bit-identical either way.
	Workers int
	// Engine, when non-nil, is a caller-owned shared evaluation engine;
	// Workers is then ignored.
	Engine *Engine
}

// Name returns "backtracking".
func (Backtracking) Name() string { return "backtracking" }

func (h Backtracking) k() int {
	if h.K > 0 {
		return h.K
	}
	return 8
}

func (h Backtracking) slack() int {
	if h.LengthSlack > 0 {
		return h.LengthSlack
	}
	return 2
}

func (h Backtracking) budget() int {
	if h.MaxBacktracks > 0 {
		return h.MaxBacktracks
	}
	return 500
}

func (h Backtracking) workers() int {
	if h.Workers > 0 {
		return h.Workers
	}
	return 1
}

// level is the search state of one pair position.
type level struct {
	cands      []candidate
	next       int
	baseBefore []float64 // converged delay vector before this level's route
}

// Select implements Selector with depth-first search over per-pair
// candidate lists. Each level's untried candidates are evaluated as
// phantom routes from the level's saved base vector — first feasible
// candidate in order wins, exactly as the sequential scan would.
func (h Backtracking) Select(m *delay.Model, req Request) (*routes.Set, *Report, error) {
	start, emit := selectStart(m)
	pairs, err := resolvePairs(m, req)
	if err != nil {
		return nil, nil, err
	}
	net := m.Network()
	rg := net.RouterGraph()
	rep := &Report{Selector: "backtracking", PairsTotal: len(pairs)}

	// Same ordering as the greedy heuristic: longest pairs first.
	ordered := orderPairs(rg, pairs, false)

	set := routes.NewSet(net)
	base := make([]float64, net.NumServers())

	eng, owned := engineFor(h.Engine, h.workers())
	if owned {
		defer eng.Close()
	}
	run := newEvalRun(eng, m, req, set, base)

	levels := make([]*level, len(ordered))
	backtracks := 0
	i := 0

	buildLevel := func(p [2]int) (*level, error) {
		if err := run.buildCandidates(p, h.k(), h.slack(), false, true); err != nil {
			return nil, err
		}
		return &level{
			cands:      append([]candidate(nil), run.cands...),
			baseBefore: append([]float64(nil), base...),
		}, nil
	}

	for i < len(ordered) {
		if req.canceled() {
			return nil, nil, ErrCanceled
		}
		if levels[i] == nil {
			lv, err := buildLevel(ordered[i])
			if err != nil {
				return nil, nil, err
			}
			levels[i] = lv
		}
		lv := levels[i]
		// Evaluate this level's remaining candidates from its saved base.
		run.cands = lv.cands[lv.next:]
		run.base = lv.baseBefore
		idx, tried, err := run.evaluateFirst()
		run.base = base
		if err != nil {
			return nil, nil, err
		}
		rep.CandidatesTried += tried
		lv.next += tried
		if idx >= 0 {
			if err := set.Add(run.cands[idx].route); err != nil {
				return nil, nil, err
			}
			copy(base, run.outs[idx].d)
			i++
			continue
		}
		// Exhausted this level: backtrack if allowed.
		levels[i] = nil
		if i == 0 || backtracks >= h.budget() {
			failed := ordered[i]
			rep.FailedPair = &failed
			rep.Safe = false
			rep.PairsRouted = set.Len()
			slack, _ := set.MinSlackExtra(base, req.Class.Deadline, m.FixedPerHop, nil)
			rep.WorstDelay = req.Class.Deadline - slack
			rep.Backtracks = backtracks
			emitSelect(m, emit, start, rep)
			return set, rep, nil
		}
		backtracks++
		i--
		set.RemoveLast()
		copy(base, levels[i].baseBefore)
	}

	rep.PairsRouted = set.Len()
	for r := 0; r < set.Len(); r++ {
		rep.TotalHops += set.Route(r).Hops()
	}
	slack, _ := set.MinSlackExtra(base, req.Class.Deadline, m.FixedPerHop, nil)
	rep.WorstDelay = req.Class.Deadline - slack
	rep.Safe = delay.MeetsDeadline(rep.WorstDelay, req.Class.Deadline)
	rep.Backtracks = backtracks
	emitSelect(m, emit, start, rep)
	return set, rep, nil
}
