package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Sentinel errors.
var (
	// ErrClosed is returned by appends that race the final flush: the
	// record was NOT made durable and the in-memory admission must be
	// unwound (the daemon maps this to HTTP 503).
	ErrClosed = errors.New("wal: log closed")
	// ErrCorrupt means the log contains damage that torn-tail tolerance
	// cannot explain: a bad frame with valid data after it, a mangled
	// segment header, or a CRC-valid record that does not decode.
	ErrCorrupt = errors.New("wal: corrupt log")
	// ErrFingerprintMismatch means the durable state was written by a
	// controller with a different configuration (topology, classes,
	// alphas or routes changed); replaying it would reserve the wrong
	// resources, so recovery refuses.
	ErrFingerprintMismatch = errors.New("wal: configuration fingerprint mismatch")
)

// Mode selects when an append returns.
type Mode int

const (
	// ModeAsync enqueues and returns; the syncer makes the record
	// durable within FlushInterval (or sooner past FlushBytes). A crash
	// can lose the last interval's admissions — the clients were acked,
	// but re-admitting them is the operator's (or their retry's) job.
	ModeAsync Mode = iota
	// ModeSync blocks the append until its record is fsynced. Group
	// commit keeps this cheaper than one fsync per record: every append
	// that arrives while a flush is in flight shares the next fsync.
	ModeSync
)

func (m Mode) String() string {
	if m == ModeSync {
		return "sync"
	}
	return "async"
}

// Observer receives hot-path notifications; the telemetry RegistrySink
// satisfies it structurally. Implementations must be safe for
// concurrent use and cheap — WALAppend is on the admission path.
type Observer interface {
	// WALAppend reports records enqueued for durability and their
	// payload bytes.
	WALAppend(records, bytes int)
	// WALSync reports one group commit: a write+fsync batch and its
	// wall time.
	WALSync(d time.Duration)
}

// Options configures Open.
type Options struct {
	// Dir is the data directory (created if missing). Segments and
	// snapshots of one controller live in one directory.
	Dir string
	// Mode is the append durability mode (default ModeAsync).
	Mode Mode
	// SegmentBytes is the preallocated segment size (default 4 MiB,
	// min 4 KiB).
	SegmentBytes int64
	// FlushInterval bounds how long an async append can sit in the
	// staging buffer before the syncer commits it (default 2ms).
	FlushInterval time.Duration
	// FlushBytes forces an early group commit once the staging buffer
	// exceeds it (default 256 KiB).
	FlushBytes int
	// MaxStagingBytes bounds the staging buffer (default 8x FlushBytes,
	// min FlushBytes). When the disk falls behind the admission rate,
	// async appends past the bound block until the next group commit
	// instead of growing the backlog without limit — memory stays
	// bounded and the admission rate degrades to what the disk sustains.
	MaxStagingBytes int
	// Fingerprint identifies the controller configuration; it is
	// stamped into every segment header and epoch-bump record, and
	// recovery refuses logs with a different one.
	Fingerprint uint64
	// Epoch is this boot's epoch number (recovered epoch + 1; default 1).
	Epoch uint64
	// Observer receives append/fsync notifications (nil = none).
	Observer Observer
}

func (o *Options) withDefaults() Options {
	opts := *o
	if opts.SegmentBytes < 4<<10 {
		if opts.SegmentBytes == 0 {
			opts.SegmentBytes = 4 << 20
		} else {
			opts.SegmentBytes = 4 << 10
		}
	}
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = 2 * time.Millisecond
	}
	if opts.FlushBytes <= 0 {
		opts.FlushBytes = 256 << 10
	}
	if opts.MaxStagingBytes <= 0 {
		opts.MaxStagingBytes = 8 * opts.FlushBytes
	}
	if opts.MaxStagingBytes < opts.FlushBytes {
		opts.MaxStagingBytes = opts.FlushBytes
	}
	if opts.Epoch == 0 {
		opts.Epoch = 1
	}
	return opts
}

// LogStats is a point-in-time read of the log's cumulative counters.
type LogStats struct {
	Appends   uint64 // records enqueued
	Fsyncs    uint64 // group commits (one write+fsync each)
	Bytes     uint64 // framed bytes written
	Rotations uint64 // segment rotations (excluding the boot segment)
	Snapshots uint64 // snapshots written
}

// Log is a segmented append-only write-ahead log with group commit.
// All Append* methods are safe for concurrent use; a dedicated syncer
// goroutine batches staged records into one write+fsync per interval,
// byte threshold, or sync-mode kick.
//
// Log's append methods use only builtin types, so it satisfies the
// admission package's Journal interface without an adapter.
type Log struct {
	opts Options

	// mu guards the staging buffer — the only lock appenders take.
	mu       sync.Mutex
	staging  []byte
	batchSeq uint64 // batch currently accumulating in staging
	closed   bool

	// flushMu/flushCond publish flush progress to sync-mode waiters.
	flushMu    sync.Mutex
	flushCond  *sync.Cond
	flushedSeq uint64
	flushErr   error // sticky: first I/O error poisons the log
	syncerDone bool

	failed atomic.Bool // mirrors flushErr != nil for lock-free checks

	kick chan struct{}
	quit chan struct{}
	done chan struct{}

	// ioMu serializes disk I/O between the syncer and WriteSnapshot and
	// guards the segment fields.
	ioMu     sync.Mutex
	f        *os.File
	segIdx   uint64
	segOff   int64
	firstSeg uint64 // oldest segment on disk at Open
	// rotatedEnd records where each segment rotated out in this boot,
	// so replication readers stop at real data instead of shipping the
	// preallocated zero tail. Segments from earlier boots are served to
	// their file size (their zero tails replay as clean end-of-data).
	rotatedEnd map[uint64]int64
	spare      []byte // double buffer returned by the syncer after a flush

	appends   atomic.Uint64
	fsyncs    atomic.Uint64
	bytes     atomic.Uint64
	rotations atomic.Uint64
	snapshots atomic.Uint64
}

// Open creates (or continues) the log in opts.Dir. A new segment is
// always started — recovery (Recover) must already have run if the
// directory holds prior state, because Open neither replays nor
// repairs. The boot is marked with a durable epoch-bump record before
// Open returns.
func Open(opts Options) (*Log, error) {
	o := opts.withDefaults()
	if o.Dir == "" {
		return nil, fmt.Errorf("wal: empty data directory")
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	listing, err := scanDir(o.Dir)
	if err != nil {
		return nil, err
	}
	nextIdx := uint64(0)
	firstSeg := uint64(0)
	if n := len(listing.segments); n > 0 {
		nextIdx = listing.segments[n-1] + 1
		firstSeg = listing.segments[0]
	}
	f, err := createSegment(o.Dir, nextIdx, o.Fingerprint, o.SegmentBytes)
	if err != nil {
		return nil, err
	}
	if err := syncDir(o.Dir); err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{
		opts:     o,
		batchSeq: 1,
		// Both halves of the double buffer are preallocated at the flush
		// threshold (plus slack for the batch that crosses it), so the
		// steady state appends into warm capacity and never pays
		// growslice copies on the admission path.
		staging:    make([]byte, 0, o.FlushBytes+64<<10),
		spare:      make([]byte, 0, o.FlushBytes+64<<10),
		kick:       make(chan struct{}, 1),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
		f:          f,
		segIdx:     nextIdx,
		segOff:     segHeaderLen,
		firstSeg:   firstSeg,
		rotatedEnd: make(map[uint64]int64),
	}
	l.flushCond = sync.NewCond(&l.flushMu)
	go l.run()

	// Durable boot marker: the epoch bump both timestamps this boot in
	// the record stream and lets recovery cross-check the fingerprint
	// even when no snapshot exists yet.
	var payload [epochPayloadLen]byte
	if err := l.commit(appendEpochPayload(payload[:0], o.Epoch, o.Fingerprint), 1, true); err != nil {
		l.Close()
		return nil, err
	}
	return l, nil
}

// Mode returns the configured append mode.
func (l *Log) Mode() Mode { return l.opts.Mode }

// Epoch returns this boot's epoch number.
func (l *Log) Epoch() uint64 { return l.opts.Epoch }

// Stats returns the cumulative log counters.
func (l *Log) Stats() LogStats {
	return LogStats{
		Appends:   l.appends.Load(),
		Fsyncs:    l.fsyncs.Load(),
		Bytes:     l.bytes.Load(),
		Rotations: l.rotations.Load(),
		Snapshots: l.snapshots.Load(),
	}
}

// AppendAdmit records one admitted flow. In ModeSync it returns once
// the record is fsynced; in ModeAsync it returns after staging.
func (l *Log) AppendAdmit(id, seq uint64, class, route int32) error {
	var payload [admitPayloadLen]byte
	return l.commit(appendAdmitPayload(payload[:0], id, seq, class, route), 1, false)
}

// AppendTeardown records one released flow.
func (l *Log) AppendTeardown(id uint64) error {
	var payload [teardownPayloadLen]byte
	return l.commit(appendTeardownPayload(payload[:0], id), 1, false)
}

// AppendLease records a node's absolute lease backing for one
// (class, route). durable forces the record fsynced before returning
// regardless of mode — a grant must be on disk before it is acked,
// while a release may ride the next group commit (losing a release
// record replays a larger, conservative backing).
func (l *Log) AppendLease(node uint32, class, route int32, backing uint64, durable bool) error {
	var payload [leasePayloadLen]byte
	return l.commit(appendLeasePayload(payload[:0], node, class, route, backing), 1, durable)
}

// AppendAdmitBatch records a batch of admitted flows whose sequence
// numbers are seqBase..seqBase+len(ids)-1 (the contiguous block the
// registry hands AdmitBatch), staging every record under one lock
// acquisition and, in ModeSync, riding one group commit.
func (l *Log) AppendAdmitBatch(ids []uint64, seqBase uint64, classes, routes []int32) error {
	if len(ids) != len(classes) || len(ids) != len(routes) {
		return fmt.Errorf("wal: admit batch slice lengths differ: %d ids, %d classes, %d routes",
			len(ids), len(classes), len(routes))
	}
	if len(ids) == 0 {
		return nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	// One frame holding one admit-batch record per chunk, encoded in
	// place in the staging buffer: the frame header, the CRC and the
	// record envelope (tag, seqBase, count) all amortize with the batch
	// exactly like the group commit's fsync does, and each flow costs
	// only its packed {id, class, route} unit on disk.
	for start := 0; start < len(ids); start += maxGroupRecords {
		chunkEnd := start + maxGroupRecords
		if chunkEnd > len(ids) {
			chunkEnd = len(ids)
		}
		var base int
		l.staging, base = beginFrame(l.staging)
		l.staging = append(l.staging, recAdmitBatch)
		l.staging = binary.LittleEndian.AppendUint64(l.staging, seqBase+uint64(start))
		l.staging = binary.LittleEndian.AppendUint32(l.staging, uint32(chunkEnd-start))
		for i := start; i < chunkEnd; i++ {
			l.staging = binary.LittleEndian.AppendUint64(l.staging, ids[i])
			l.staging = binary.LittleEndian.AppendUint32(l.staging, uint32(classes[i]))
			l.staging = binary.LittleEndian.AppendUint32(l.staging, uint32(routes[i]))
		}
		l.staging = endFrame(l.staging, base)
	}
	batch := l.batchSeq
	size := len(l.staging)
	l.mu.Unlock()
	l.noteAppend(len(ids), len(ids)*admitBatchUnitLen+admitBatchHeaderLen+frameHeaderLen)
	return l.afterAppend(batch, size)
}

// AppendTeardownBatch records a batch of released flows under one lock
// acquisition.
func (l *Log) AppendTeardownBatch(ids []uint64) error {
	if len(ids) == 0 {
		return nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	for start := 0; start < len(ids); start += maxGroupRecords {
		chunkEnd := start + maxGroupRecords
		if chunkEnd > len(ids) {
			chunkEnd = len(ids)
		}
		var base int
		l.staging, base = beginFrame(l.staging)
		l.staging = append(l.staging, recTeardownBatch)
		l.staging = binary.LittleEndian.AppendUint32(l.staging, uint32(chunkEnd-start))
		for _, id := range ids[start:chunkEnd] {
			l.staging = binary.LittleEndian.AppendUint64(l.staging, id)
		}
		l.staging = endFrame(l.staging, base)
	}
	batch := l.batchSeq
	size := len(l.staging)
	l.mu.Unlock()
	l.noteAppend(len(ids), len(ids)*teardownBatchUnitLen+teardownBatchHeaderLen+frameHeaderLen)
	return l.afterAppend(batch, size)
}

// commit stages one framed payload. forceSync waits for durability
// regardless of mode (the boot epoch marker).
func (l *Log) commit(payload []byte, records int, forceSync bool) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.staging = appendFrame(l.staging, payload)
	batch := l.batchSeq
	size := len(l.staging)
	l.mu.Unlock()
	l.noteAppend(records, len(payload)+frameHeaderLen)
	if forceSync {
		l.kickSyncer()
		return l.waitFlushed(batch)
	}
	return l.afterAppend(batch, size)
}

// noteAppend updates counters and the observer for staged records.
func (l *Log) noteAppend(records, bytes int) {
	l.appends.Add(uint64(records))
	if l.opts.Observer != nil {
		l.opts.Observer.WALAppend(records, bytes)
	}
}

// afterAppend implements the mode policy: kick the syncer when the
// record must not linger (sync mode, or byte threshold crossed), and
// wait for durability in sync mode. Async appends that find the
// staging buffer past MaxStagingBytes wait too — that is the
// backpressure that keeps a disk slower than the admission rate from
// growing the backlog without bound.
func (l *Log) afterAppend(batch uint64, stagedBytes int) error {
	if l.opts.Mode == ModeSync || stagedBytes >= l.opts.FlushBytes {
		l.kickSyncer()
	}
	if l.opts.Mode != ModeSync {
		if stagedBytes >= l.opts.MaxStagingBytes {
			return l.waitFlushed(batch)
		}
		if l.failed.Load() {
			return l.stickyErr()
		}
		return nil
	}
	return l.waitFlushed(batch)
}

func (l *Log) kickSyncer() {
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

func (l *Log) stickyErr() error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	return l.flushErr
}

// waitFlushed blocks until batch is durable, the log fails, or the
// syncer exits. It never hangs across Close: the final flush either
// commits the batch or syncerDone wakes the waiter with ErrClosed.
func (l *Log) waitFlushed(batch uint64) error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	for l.flushedSeq < batch && l.flushErr == nil && !l.syncerDone {
		l.flushCond.Wait()
	}
	if l.flushErr != nil {
		return l.flushErr
	}
	if l.flushedSeq >= batch {
		return nil
	}
	return ErrClosed
}

// Flush forces a group commit of everything staged and waits for it.
func (l *Log) Flush() error {
	l.mu.Lock()
	target := l.batchSeq
	if len(l.staging) == 0 {
		target--
	}
	l.mu.Unlock()
	l.kickSyncer()
	return l.waitFlushed(target)
}

// Close stops accepting appends, flushes the staging buffer, fsyncs,
// and stops the syncer. Appends racing Close get ErrClosed — never a
// hung write. Close is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	already := l.closed
	l.closed = true
	l.mu.Unlock()
	if !already {
		close(l.quit)
	}
	<-l.done
	return l.stickyErr()
}

// run is the syncer goroutine: the only writer of segment files.
func (l *Log) run() {
	defer close(l.done)
	ticker := time.NewTicker(l.opts.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-l.quit:
			l.flushOnce()
			l.ioMu.Lock()
			if l.f != nil {
				l.f.Close()
				l.f = nil
			}
			l.ioMu.Unlock()
			l.flushMu.Lock()
			l.syncerDone = true
			l.flushCond.Broadcast()
			l.flushMu.Unlock()
			return
		case <-l.kick:
		case <-ticker.C:
		}
		l.flushOnce()
	}
}

// flushOnce swaps the staging buffer out and commits it: one write,
// one fsync, however many records accumulated — the group commit.
func (l *Log) flushOnce() {
	l.mu.Lock()
	if len(l.staging) == 0 {
		// Nothing staged: everything before the current batch is already
		// durable; publish that so Flush waiters don't stall.
		batch := l.batchSeq - 1
		l.mu.Unlock()
		l.noteFlushed(batch, nil)
		return
	}
	buf := l.staging
	l.staging = l.spare[:0]
	l.spare = nil
	batch := l.batchSeq
	l.batchSeq++
	l.mu.Unlock()

	start := time.Now()
	err := l.writeOut(buf)
	if err == nil && l.opts.Observer != nil {
		l.opts.Observer.WALSync(time.Since(start))
	}

	l.mu.Lock()
	l.spare = buf[:0]
	l.mu.Unlock()
	l.noteFlushed(batch, err)
}

// noteFlushed publishes flush progress (or the first error) and wakes
// waiters.
func (l *Log) noteFlushed(batch uint64, err error) {
	l.flushMu.Lock()
	if err != nil {
		if l.flushErr == nil {
			l.flushErr = fmt.Errorf("wal: commit failed: %w", err)
		}
		l.failed.Store(true)
	} else if batch > l.flushedSeq {
		l.flushedSeq = batch
	}
	l.flushCond.Broadcast()
	l.flushMu.Unlock()
}

// writeOut appends buf to the current segment (rotating first when it
// would not fit) and fsyncs.
func (l *Log) writeOut(buf []byte) error {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	if l.f == nil {
		return ErrClosed
	}
	if l.segOff+int64(len(buf))+frameHeaderLen > l.opts.SegmentBytes && l.segOff > segHeaderLen {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := l.f.WriteAt(buf, l.segOff); err != nil {
		return err
	}
	l.segOff += int64(len(buf))
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.fsyncs.Add(1)
	l.bytes.Add(uint64(len(buf)))
	return nil
}

// rotateLocked finishes the current segment and opens the next
// preallocated one. Caller holds ioMu.
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.rotatedEnd[l.segIdx] = l.segOff
	if err := l.f.Close(); err != nil {
		return err
	}
	f, err := createSegment(l.opts.Dir, l.segIdx+1, l.opts.Fingerprint, l.opts.SegmentBytes)
	if err != nil {
		return err
	}
	if err := syncDir(l.opts.Dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segIdx++
	l.segOff = segHeaderLen
	l.rotations.Add(1)
	return nil
}

// WriteSnapshot cuts the log at a rotation point, captures the
// caller's state, writes it as snapshot-<seq>.bin, and truncates
// segments that the snapshot (plus its retained predecessor) makes
// redundant.
//
// The capture callback runs after the rotation point is established,
// which is what makes truncation safe: every record in a segment at or
// below the cut was applied to in-memory state before capture ran, so
// the snapshot's payload subsumes it. Records captured by the snapshot
// AND still present in the remaining tail are re-applied on recovery —
// replay is idempotent (seq/generation-gated) by contract with the
// restore handler.
func (l *Log) WriteSnapshot(capture func() (seq uint64, payload []byte)) error {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	if l.f == nil {
		return ErrClosed
	}
	if err := l.rotateLocked(); err != nil {
		return err
	}
	firstReplaySeg := l.segIdx // everything below the fresh segment is covered
	seq, payload := capture()
	if err := writeSnapshotFile(l.opts.Dir, l.opts.Fingerprint, l.opts.Epoch, seq, firstReplaySeg, payload); err != nil {
		return err
	}
	l.snapshots.Add(1)
	return l.truncateLocked()
}

// truncateLocked removes snapshots older than the two newest, and
// segments below the older retained snapshot's replay start. Keeping
// one predecessor means a latent bad sector in the newest snapshot
// still leaves a recoverable (snapshot, tail) pair on disk. Caller
// holds ioMu.
func (l *Log) truncateLocked() error {
	listing, err := scanDir(l.opts.Dir)
	if err != nil {
		return err
	}
	if len(listing.snapshots) == 0 {
		return nil
	}
	keepFrom := len(listing.snapshots) - 2
	if keepFrom < 0 {
		keepFrom = 0
	}
	removed := false
	for _, seq := range listing.snapshots[:keepFrom] {
		if err := os.Remove(filepath.Join(l.opts.Dir, snapshotName(seq))); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		removed = true
	}
	// The oldest retained snapshot defines which segments must stay.
	oldest, err := readSnapshotHeader(filepath.Join(l.opts.Dir, snapshotName(listing.snapshots[keepFrom])))
	if err != nil {
		return err
	}
	for _, idx := range listing.segments {
		if idx >= oldest.firstReplaySeg || idx == l.segIdx {
			continue
		}
		if err := os.Remove(filepath.Join(l.opts.Dir, segmentName(idx))); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		removed = true
	}
	if removed {
		return syncDir(l.opts.Dir)
	}
	return nil
}
