package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment files are named wal-<index>.log with a 16-digit hex index so
// lexical order is numeric order; snapshots are snapshot-<seq>.bin.
const (
	segmentPrefix  = "wal-"
	segmentSuffix  = ".log"
	snapshotPrefix = "snapshot-"
	snapshotSuffix = ".bin"
)

// Segment header, written once at offset 0 of every segment:
//
//	magic "UBACWAL1" | u32 version | u32 reserved | u64 fingerprint | u64 index
const (
	segMagic      = "UBACWAL1"
	segVersion    = 1
	segHeaderLen  = 8 + 4 + 4 + 8 + 8
	minSegmentLen = segHeaderLen + frameHeaderLen
)

// segmentName formats the file name of segment idx.
func segmentName(idx uint64) string {
	return fmt.Sprintf("%s%016x%s", segmentPrefix, idx, segmentSuffix)
}

// snapshotName formats the file name of the snapshot at registry
// sequence seq.
func snapshotName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", snapshotPrefix, seq, snapshotSuffix)
}

// parseIndexed extracts the hex index from a prefixed+suffixed file
// name, reporting ok=false for names that are not of that shape.
func parseIndexed(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// appendSegmentHeader encodes the segment header.
func appendSegmentHeader(b []byte, fingerprint, idx uint64) []byte {
	b = append(b, segMagic...)
	b = binary.LittleEndian.AppendUint32(b, segVersion)
	b = binary.LittleEndian.AppendUint32(b, 0)
	b = binary.LittleEndian.AppendUint64(b, fingerprint)
	b = binary.LittleEndian.AppendUint64(b, idx)
	return b
}

// parseSegmentHeader validates a segment's header against the expected
// fingerprint and index (from its file name).
func parseSegmentHeader(data []byte, fingerprint, idx uint64) error {
	if len(data) < segHeaderLen {
		return fmt.Errorf("%w: segment shorter than its header (%d bytes)", ErrCorrupt, len(data))
	}
	if string(data[:8]) != segMagic {
		return fmt.Errorf("%w: bad segment magic %q", ErrCorrupt, data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != segVersion {
		return fmt.Errorf("%w: segment version %d, want %d", ErrCorrupt, v, segVersion)
	}
	if fp := binary.LittleEndian.Uint64(data[16:]); fp != fingerprint {
		return fmt.Errorf("%w: segment fingerprint %016x, controller %016x", ErrFingerprintMismatch, fp, fingerprint)
	}
	if gotIdx := binary.LittleEndian.Uint64(data[24:]); gotIdx != idx {
		return fmt.Errorf("%w: segment header index %d under file name index %d", ErrCorrupt, gotIdx, idx)
	}
	return nil
}

// dirListing is the durable state found in a data directory.
type dirListing struct {
	segments  []uint64 // ascending segment indexes
	snapshots []uint64 // ascending snapshot sequences
}

// scanDir lists the segments and snapshots in dir. A missing directory
// is an empty listing, not an error.
func scanDir(dir string) (*dirListing, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return &dirListing{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &dirListing{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if idx, ok := parseIndexed(e.Name(), segmentPrefix, segmentSuffix); ok {
			l.segments = append(l.segments, idx)
		} else if seq, ok := parseIndexed(e.Name(), snapshotPrefix, snapshotSuffix); ok {
			l.snapshots = append(l.snapshots, seq)
		}
	}
	sort.Slice(l.segments, func(a, b int) bool { return l.segments[a] < l.segments[b] })
	sort.Slice(l.snapshots, func(a, b int) bool { return l.snapshots[a] < l.snapshots[b] })
	return l, nil
}

// createSegment creates and preallocates segment idx in dir, writes its
// header, and returns the open file positioned for appends at
// segHeaderLen. The caller is responsible for syncing the directory so
// the file's existence survives a crash.
func createSegment(dir string, idx, fingerprint uint64, size int64) (*os.File, error) {
	path := filepath.Join(dir, segmentName(idx))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	hdr := appendSegmentHeader(make([]byte, 0, segHeaderLen), fingerprint, idx)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	if size > int64(segHeaderLen) {
		// Preallocate: extend the logical size so appends never grow the
		// file's metadata, and the untouched region reads as zeros (the
		// end-of-data marker).
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
	}
	return f, nil
}

// syncDir fsyncs the directory itself so renames, creations and
// removals inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
