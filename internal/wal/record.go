// Package wal is the durability subsystem of the admission controller:
// a segmented append-only write-ahead log with CRC32C-framed records,
// group-committed fsyncs, registry snapshots, and crash recovery.
//
// The package is dependency-free (stdlib only) and treats flow IDs,
// sequence numbers and the snapshot payload as opaque values: what a
// record *means* is the admission package's business, how it survives a
// power cut is this package's. The three record kinds mirror the three
// durable admission mutations:
//
//	admit      {id, seq, class, route} — one admitted flow
//	teardown   {id}                    — one released flow
//	epoch-bump {epoch, fingerprint}    — one controller boot
//
// plus two batch forms that amortize the per-record envelope: an
// admit-batch record carries one seqBase and count followed by packed
// {id, class, route} units (the registry hands AdmitBatch a contiguous
// sequence block, so per-flow sequence numbers are implicit), and a
// teardown-batch record carries a count followed by packed ids. At
// batch 64 that is ~16 bytes per admit instead of 25 — on a log that is
// disk-bandwidth-bound, bytes per flow is admits per second.
//
// Records are framed in groups:
//
//	u32 payload length | u32 CRC32C(payload) | payload
//
// in little-endian byte order, where the payload is one or more
// concatenated records (each self-delimiting: the tag byte plus, for
// batch forms, the count field fix its length). A singleton append
// frames one record; a batch append frames the whole batch under one
// header and one CRC, so the framing overhead amortizes with the batch
// exactly like the fsync does. A zero length
// with a zero CRC marks the end of a segment's data (segments are
// preallocated and zero-filled, so the first untouched byte pair reads
// as exactly that). A frame whose length or CRC does not check out is a
// torn tail if it is the last thing in the log, and corruption if valid
// data follows it; the frame is the atomicity unit, so a torn batch is
// dropped whole, never half-replayed.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record type tags (first payload byte).
const (
	recAdmit         = 0x01
	recTeardown      = 0x02
	recEpoch         = 0x03
	recAdmitBatch    = 0x04
	recTeardownBatch = 0x05
	recLease         = 0x06
)

// Payload sizes per record type, including the tag byte.
const (
	admitPayloadLen    = 1 + 8 + 8 + 4 + 4 // tag, id, seq, class, route
	teardownPayloadLen = 1 + 8             // tag, id
	epochPayloadLen    = 1 + 8 + 8         // tag, epoch, fingerprint
	leasePayloadLen    = 1 + 4 + 4 + 4 + 8 // tag, node, class, route, backing
)

// Batch record layout: a fixed header followed by count packed units.
const (
	admitBatchHeaderLen    = 1 + 8 + 4 // tag, seqBase, count
	admitBatchUnitLen      = 8 + 4 + 4 // id, class, route
	teardownBatchHeaderLen = 1 + 4     // tag, count
	teardownBatchUnitLen   = 8         // id
)

// frameHeaderLen is the length+CRC prefix of every frame.
const frameHeaderLen = 8

// maxPayloadLen bounds a frame payload (a record group); anything
// larger in a length field is treated as corruption rather than
// allocated. Batch appends chunk at maxGroupRecords to stay under it.
const maxPayloadLen = 1 << 20

// maxGroupRecords caps how many records one frame carries: the largest
// record type at this count stays comfortably inside maxPayloadLen.
const maxGroupRecords = maxPayloadLen / (2 * admitPayloadLen)

// castagnoli is the CRC32C polynomial table shared by all framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one decoded WAL record. Kind selects which fields are
// meaningful: admit uses ID/Seq/Class/Route, teardown uses ID, epoch
// uses Epoch/Fingerprint, lease uses Node/Class/Route/Backing.
type Record struct {
	Kind        byte
	ID          uint64
	Seq         uint64
	Class       int32
	Route       int32
	Epoch       uint64
	Fingerprint uint64
	Node        uint32
	Backing     uint64
}

// ErrBadRecord is wrapped by every payload decode failure.
var ErrBadRecord = errors.New("wal: malformed record")

// appendAdmitPayload encodes one admit record payload.
func appendAdmitPayload(b []byte, id, seq uint64, class, route int32) []byte {
	b = append(b, recAdmit)
	b = binary.LittleEndian.AppendUint64(b, id)
	b = binary.LittleEndian.AppendUint64(b, seq)
	b = binary.LittleEndian.AppendUint32(b, uint32(class))
	b = binary.LittleEndian.AppendUint32(b, uint32(route))
	return b
}

// appendTeardownPayload encodes one teardown record payload.
func appendTeardownPayload(b []byte, id uint64) []byte {
	b = append(b, recTeardown)
	b = binary.LittleEndian.AppendUint64(b, id)
	return b
}

// appendEpochPayload encodes one epoch-bump record payload.
func appendEpochPayload(b []byte, epoch, fingerprint uint64) []byte {
	b = append(b, recEpoch)
	b = binary.LittleEndian.AppendUint64(b, epoch)
	b = binary.LittleEndian.AppendUint64(b, fingerprint)
	return b
}

// appendLeasePayload encodes one lease-backing record payload. Backing
// is absolute — the node's total granted flow-slot backing for the
// (class, route) after the mutation — so replay is last-writer-wins
// and re-delivery is harmless.
func appendLeasePayload(b []byte, node uint32, class, route int32, backing uint64) []byte {
	b = append(b, recLease)
	b = binary.LittleEndian.AppendUint32(b, node)
	b = binary.LittleEndian.AppendUint32(b, uint32(class))
	b = binary.LittleEndian.AppendUint32(b, uint32(route))
	b = binary.LittleEndian.AppendUint64(b, backing)
	return b
}

// appendFrame wraps payload in the length+CRC frame and appends it to b.
// payload must be the final bytes of b (appended by an appendXxxPayload
// call into a scratch area) or any other slice; the frame is
// self-contained.
func appendFrame(b, payload []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli))
	return append(b, payload...)
}

// beginFrame reserves a frame header at the end of b so a batch can
// encode its records in place — no scratch copy. endFrame seals it.
func beginFrame(b []byte) ([]byte, int) {
	base := len(b)
	return append(b, 0, 0, 0, 0, 0, 0, 0, 0), base
}

// endFrame fills in the length and CRC of the frame begun at base over
// everything appended since. An empty group is rolled back entirely: a
// zero-length frame on disk would read as end-of-data.
func endFrame(b []byte, base int) []byte {
	payload := b[base+frameHeaderLen:]
	if len(payload) == 0 {
		return b[:base]
	}
	binary.LittleEndian.PutUint32(b[base:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[base+4:], crc32.Checksum(payload, castagnoli))
	return b
}

// DecodeRecord decodes one record payload (the bytes inside a frame,
// CRC already verified). It is total over arbitrary input: any byte
// slice either yields a Record or an error wrapping ErrBadRecord,
// never a panic (fuzz-tested by FuzzDecodeWALRecord).
func DecodeRecord(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, fmt.Errorf("%w: empty payload", ErrBadRecord)
	}
	switch payload[0] {
	case recAdmit:
		if len(payload) != admitPayloadLen {
			return Record{}, fmt.Errorf("%w: admit payload length %d, want %d", ErrBadRecord, len(payload), admitPayloadLen)
		}
		return Record{
			Kind:  recAdmit,
			ID:    binary.LittleEndian.Uint64(payload[1:]),
			Seq:   binary.LittleEndian.Uint64(payload[9:]),
			Class: int32(binary.LittleEndian.Uint32(payload[17:])),
			Route: int32(binary.LittleEndian.Uint32(payload[21:])),
		}, nil
	case recTeardown:
		if len(payload) != teardownPayloadLen {
			return Record{}, fmt.Errorf("%w: teardown payload length %d, want %d", ErrBadRecord, len(payload), teardownPayloadLen)
		}
		return Record{Kind: recTeardown, ID: binary.LittleEndian.Uint64(payload[1:])}, nil
	case recEpoch:
		if len(payload) != epochPayloadLen {
			return Record{}, fmt.Errorf("%w: epoch payload length %d, want %d", ErrBadRecord, len(payload), epochPayloadLen)
		}
		return Record{
			Kind:        recEpoch,
			Epoch:       binary.LittleEndian.Uint64(payload[1:]),
			Fingerprint: binary.LittleEndian.Uint64(payload[9:]),
		}, nil
	case recLease:
		if len(payload) != leasePayloadLen {
			return Record{}, fmt.Errorf("%w: lease payload length %d, want %d", ErrBadRecord, len(payload), leasePayloadLen)
		}
		return Record{
			Kind:    recLease,
			Node:    binary.LittleEndian.Uint32(payload[1:]),
			Class:   int32(binary.LittleEndian.Uint32(payload[5:])),
			Route:   int32(binary.LittleEndian.Uint32(payload[9:])),
			Backing: binary.LittleEndian.Uint64(payload[13:]),
		}, nil
	default:
		return Record{}, fmt.Errorf("%w: unknown record type 0x%02x", ErrBadRecord, payload[0])
	}
}

// recordLen returns the encoded length of the record whose tag byte is
// tag, or 0 for an unknown tag.
func recordLen(tag byte) int {
	switch tag {
	case recAdmit:
		return admitPayloadLen
	case recTeardown:
		return teardownPayloadLen
	case recEpoch:
		return epochPayloadLen
	case recLease:
		return leasePayloadLen
	default:
		return 0
	}
}

// walkGroup decodes every record in a CRC-verified group payload in
// order, expanding batch records into their per-flow units, and hands
// each logical Record to fn. It is total over arbitrary input — short,
// unknown-tag or over-count input is an error wrapping ErrBadRecord,
// never a panic. Errors from fn are returned as-is, so a caller can
// tell a malformed group (errors.Is ErrBadRecord) from a handler
// failure.
func walkGroup(payload []byte, fn func(Record) error) error {
	for len(payload) > 0 {
		switch tag := payload[0]; tag {
		case recAdmit, recTeardown, recEpoch, recLease:
			n := recordLen(tag)
			if len(payload) < n {
				return fmt.Errorf("%w: %d bytes left in group, record type 0x%02x needs %d",
					ErrBadRecord, len(payload), tag, n)
			}
			rec, err := DecodeRecord(payload[:n])
			if err != nil {
				return err
			}
			if err := fn(rec); err != nil {
				return err
			}
			payload = payload[n:]
		case recAdmitBatch:
			if len(payload) < admitBatchHeaderLen {
				return fmt.Errorf("%w: admit batch header needs %d bytes, group has %d",
					ErrBadRecord, admitBatchHeaderLen, len(payload))
			}
			seqBase := binary.LittleEndian.Uint64(payload[1:])
			count := int(binary.LittleEndian.Uint32(payload[9:]))
			if count == 0 || count > maxGroupRecords {
				return fmt.Errorf("%w: admit batch count %d outside 1..%d", ErrBadRecord, count, maxGroupRecords)
			}
			total := admitBatchHeaderLen + count*admitBatchUnitLen
			if len(payload) < total {
				return fmt.Errorf("%w: admit batch of %d needs %d bytes, group has %d",
					ErrBadRecord, count, total, len(payload))
			}
			units := payload[admitBatchHeaderLen:total]
			for i := 0; i < count; i++ {
				u := units[i*admitBatchUnitLen:]
				rec := Record{
					Kind:  recAdmit,
					ID:    binary.LittleEndian.Uint64(u),
					Seq:   seqBase + uint64(i),
					Class: int32(binary.LittleEndian.Uint32(u[8:])),
					Route: int32(binary.LittleEndian.Uint32(u[12:])),
				}
				if err := fn(rec); err != nil {
					return err
				}
			}
			payload = payload[total:]
		case recTeardownBatch:
			if len(payload) < teardownBatchHeaderLen {
				return fmt.Errorf("%w: teardown batch header needs %d bytes, group has %d",
					ErrBadRecord, teardownBatchHeaderLen, len(payload))
			}
			count := int(binary.LittleEndian.Uint32(payload[1:]))
			if count == 0 || count > maxGroupRecords {
				return fmt.Errorf("%w: teardown batch count %d outside 1..%d", ErrBadRecord, count, maxGroupRecords)
			}
			total := teardownBatchHeaderLen + count*teardownBatchUnitLen
			if len(payload) < total {
				return fmt.Errorf("%w: teardown batch of %d needs %d bytes, group has %d",
					ErrBadRecord, count, total, len(payload))
			}
			units := payload[teardownBatchHeaderLen:total]
			for i := 0; i < count; i++ {
				rec := Record{Kind: recTeardown, ID: binary.LittleEndian.Uint64(units[i*teardownBatchUnitLen:])}
				if err := fn(rec); err != nil {
					return err
				}
			}
			payload = payload[total:]
		default:
			return fmt.Errorf("%w: unknown record type 0x%02x", ErrBadRecord, tag)
		}
	}
	return nil
}

// frameResult classifies one attempt to read a frame out of a segment's
// data region.
type frameResult int

const (
	frameOK   frameResult = iota // valid frame decoded
	frameEnd                     // clean end of data (zero frame)
	frameTorn                    // length/CRC does not check out
)

// nextFrame reads the frame at data[off:]. On frameOK it returns the
// payload (aliasing data) and the offset of the next frame.
func nextFrame(data []byte, off int) (payload []byte, next int, res frameResult) {
	if off+frameHeaderLen > len(data) {
		// A partial header at the very end: torn unless it is all zeros,
		// which is indistinguishable from preallocated padding and
		// therefore a clean end.
		for _, b := range data[off:] {
			if b != 0 {
				return nil, off, frameTorn
			}
		}
		return nil, off, frameEnd
	}
	length := binary.LittleEndian.Uint32(data[off:])
	crc := binary.LittleEndian.Uint32(data[off+4:])
	if length == 0 {
		if crc == 0 {
			return nil, off, frameEnd
		}
		return nil, off, frameTorn
	}
	if length > maxPayloadLen || off+frameHeaderLen+int(length) > len(data) {
		return nil, off, frameTorn
	}
	payload = data[off+frameHeaderLen : off+frameHeaderLen+int(length)]
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, off, frameTorn
	}
	return payload, off + frameHeaderLen + int(length), frameOK
}
