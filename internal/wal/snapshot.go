package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshot file layout:
//
//	magic "UBACSNP1" | u32 version | u32 reserved | u64 fingerprint |
//	u64 epoch | u64 seq | u64 firstReplaySeg | u32 payloadLen |
//	u32 CRC32C(payload) | payload
//
// The file is written to a temp name and renamed into place, then the
// directory is fsynced — a crash mid-snapshot leaves either the old
// snapshot set or the new one, never a half-written file under the
// final name. firstReplaySeg is the segment index replay resumes from:
// every record in a lower segment is subsumed by the payload.
const (
	snapMagic     = "UBACSNP1"
	snapVersion   = 1
	snapHeaderLen = 8 + 4 + 4 + 8 + 8 + 8 + 8 + 4 + 4
)

// snapshotHeader is the decoded fixed-size prefix of a snapshot file.
type snapshotHeader struct {
	fingerprint    uint64
	epoch          uint64
	seq            uint64
	firstReplaySeg uint64
	payloadLen     uint32
	payloadCRC     uint32
}

// writeSnapshotFile atomically materializes one snapshot.
func writeSnapshotFile(dir string, fingerprint, epoch, seq, firstReplaySeg uint64, payload []byte) error {
	buf := make([]byte, 0, snapHeaderLen+len(payload))
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, snapVersion)
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	buf = binary.LittleEndian.AppendUint64(buf, fingerprint)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, firstReplaySeg)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	buf = append(buf, payload...)

	tmp, err := os.CreateTemp(dir, ".snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { os.Remove(tmpName) }
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("wal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("wal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, snapshotName(seq))); err != nil {
		cleanup()
		return fmt.Errorf("wal: %w", err)
	}
	return syncDir(dir)
}

// parseSnapshotHeader decodes and sanity-checks the fixed prefix.
func parseSnapshotHeader(data []byte) (snapshotHeader, error) {
	var h snapshotHeader
	if len(data) < snapHeaderLen {
		return h, fmt.Errorf("%w: snapshot shorter than its header (%d bytes)", ErrCorrupt, len(data))
	}
	if string(data[:8]) != snapMagic {
		return h, fmt.Errorf("%w: bad snapshot magic %q", ErrCorrupt, data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != snapVersion {
		return h, fmt.Errorf("%w: snapshot version %d, want %d", ErrCorrupt, v, snapVersion)
	}
	h.fingerprint = binary.LittleEndian.Uint64(data[16:])
	h.epoch = binary.LittleEndian.Uint64(data[24:])
	h.seq = binary.LittleEndian.Uint64(data[32:])
	h.firstReplaySeg = binary.LittleEndian.Uint64(data[40:])
	h.payloadLen = binary.LittleEndian.Uint32(data[48:])
	h.payloadCRC = binary.LittleEndian.Uint32(data[52:])
	return h, nil
}

// readSnapshotHeader reads just the header of a snapshot file.
func readSnapshotHeader(path string) (snapshotHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return snapshotHeader{}, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var buf [snapHeaderLen]byte
	n, _ := f.Read(buf[:])
	return parseSnapshotHeader(buf[:n])
}

// readSnapshot fully validates a snapshot file (header, payload length
// and CRC) against the expected fingerprint and returns its header and
// payload.
func readSnapshot(path string, fingerprint uint64) (snapshotHeader, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return snapshotHeader{}, nil, fmt.Errorf("wal: %w", err)
	}
	h, err := parseSnapshotHeader(data)
	if err != nil {
		return h, nil, err
	}
	if h.fingerprint != fingerprint {
		return h, nil, fmt.Errorf("%w: snapshot fingerprint %016x, controller %016x",
			ErrFingerprintMismatch, h.fingerprint, fingerprint)
	}
	payload := data[snapHeaderLen:]
	if uint32(len(payload)) != h.payloadLen {
		return h, nil, fmt.Errorf("%w: snapshot payload %d bytes, header says %d",
			ErrCorrupt, len(payload), h.payloadLen)
	}
	if crc32.Checksum(payload, castagnoli) != h.payloadCRC {
		return h, nil, fmt.Errorf("%w: snapshot payload CRC mismatch", ErrCorrupt)
	}
	return h, payload, nil
}
