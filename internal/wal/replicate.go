package wal

import (
	"fmt"
	"os"
	"path/filepath"
)

// This file is the log's replication read side: a cluster authority
// serves followers verbatim segment bytes through it. Reads are
// clamped to the durable tail (writeOut advances segOff and fsyncs
// under ioMu, so any offset a reader can observe is already synced),
// which means a follower never sees a torn frame — the shipped prefix
// of a segment always replays cleanly, because the untouched region of
// a preallocated segment reads as zeros, the end-of-data marker.

// SegmentFileName returns the file name of segment idx, so a follower
// can write fetched bytes into an identically-named local file and the
// standard Recover pass replays them.
func SegmentFileName(idx uint64) string { return segmentName(idx) }

// TailPos returns the durable tail: the current segment index and the
// offset within it up to which every byte is fsynced.
func (l *Log) TailPos() (seg uint64, off int64) {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	return l.segIdx, l.segOff
}

// FirstSegment returns the oldest segment index on disk at Open time.
// A full-history log (no snapshot truncation) starts at 0.
func (l *Log) FirstSegment() uint64 {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	return l.firstSeg
}

// ReadSegmentAt reads durable bytes of segment seg starting at off into
// buf. It returns the bytes read and whether the segment is finished —
// eos means the reader should advance to segment seg+1 at offset 0.
// Reading at the durable tail of the current segment returns (0, false,
// nil): there is simply nothing new yet. Offsets beyond a segment's end
// or segments outside [FirstSegment, current] are errors.
func (l *Log) ReadSegmentAt(seg uint64, off int64, buf []byte) (n int, eos bool, err error) {
	if off < 0 {
		return 0, false, fmt.Errorf("wal: negative segment offset %d", off)
	}
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	if l.f == nil {
		return 0, false, ErrClosed
	}
	if seg > l.segIdx || seg < l.firstSeg {
		return 0, false, fmt.Errorf("wal: segment %d outside available range %d..%d", seg, l.firstSeg, l.segIdx)
	}
	if seg == l.segIdx {
		if off > l.segOff {
			return 0, false, fmt.Errorf("wal: offset %d beyond durable tail %d of segment %d", off, l.segOff, seg)
		}
		if off == l.segOff {
			return 0, false, nil
		}
		want := int64(len(buf))
		if off+want > l.segOff {
			want = l.segOff - off
		}
		n, err = l.f.ReadAt(buf[:want], off)
		if err != nil {
			return 0, false, fmt.Errorf("wal: %w", err)
		}
		return n, false, nil
	}

	// A rotated segment: fully durable. Segments rotated in this boot
	// stop at their recorded end; older ones are served to file size
	// (their preallocated zero tails are valid end-of-data on replay).
	end, ok := l.rotatedEnd[seg]
	path := filepath.Join(l.opts.Dir, segmentName(seg))
	f, err := os.Open(path)
	if err != nil {
		return 0, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	if !ok {
		st, err := f.Stat()
		if err != nil {
			return 0, false, fmt.Errorf("wal: %w", err)
		}
		end = st.Size()
	}
	if off > end {
		return 0, false, fmt.Errorf("wal: offset %d beyond end %d of segment %d", off, end, seg)
	}
	if off == end {
		return 0, true, nil
	}
	want := int64(len(buf))
	if off+want > end {
		want = end - off
	}
	n, err = f.ReadAt(buf[:want], off)
	if err != nil {
		return 0, false, fmt.Errorf("wal: %w", err)
	}
	return n, off+int64(n) == end, nil
}
