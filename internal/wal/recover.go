package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Handler consumes recovered state in log order. The admission
// controller satisfies it structurally (RestoreSnapshot, ReplayAdmit,
// ReplayTeardown). Replay is at-least-once on top of the snapshot:
// records the snapshot already subsumes ARE re-delivered and the
// handler must apply them idempotently (the admission registry gates
// admits on sequence number and teardowns on slot generation).
type Handler interface {
	// RestoreSnapshot delivers the newest valid snapshot payload, before
	// any Replay call. Not called when the log has no usable snapshot.
	RestoreSnapshot(payload []byte) error
	// ReplayAdmit delivers one admit record.
	ReplayAdmit(id, seq uint64, class, route int32) error
	// ReplayTeardown delivers one teardown record.
	ReplayTeardown(id uint64) error
}

// LeaseHandler extends Handler for logs carrying cluster lease-backing
// records. Replay delivers each record's absolute backing in log
// order, so last-writer-wins reconstruction is exact. Recovery of a
// log that contains lease records through a handler that does not
// implement LeaseHandler fails — dropping granted capacity silently
// would let a promoted authority double-grant it.
type LeaseHandler interface {
	ReplayLease(node uint32, class, route int32, backing uint64) error
}

// RecoveryInfo summarizes one recovery pass.
type RecoveryInfo struct {
	// SnapshotLoaded reports whether a snapshot seeded the replay;
	// SnapshotSeq is its registry sequence.
	SnapshotLoaded bool
	SnapshotSeq    uint64
	// SkippedSnapshots counts newer snapshot files that failed
	// validation and were passed over for an older one.
	SkippedSnapshots int
	// Segments is the number of segment files replayed.
	Segments int
	// ReplayedAdmits / ReplayedTeardowns / ReplayedLeases count records
	// delivered to the handler.
	ReplayedAdmits    uint64
	ReplayedTeardowns uint64
	ReplayedLeases    uint64
	// Epoch is the highest epoch seen (snapshot header or epoch-bump
	// records); the next Open should use Epoch+1.
	Epoch uint64
	// TailTruncated reports that a torn tail was found and the last
	// segment was truncated at the first bad frame; TruncatedBytes is
	// how much (including preallocated padding) was cut.
	TailTruncated  bool
	TruncatedBytes int64
}

// Recover loads the newest valid snapshot in dir (if any), replays the
// log tail through h, and repairs a torn tail by truncating the last
// segment at the first bad frame. A missing or empty directory
// recovers to nothing. Corruption that torn-tail tolerance cannot
// explain — a bad frame followed by valid data, a mangled segment in
// the middle of the log, a missing segment — fails with ErrCorrupt,
// and durable state written under a different configuration fails with
// ErrFingerprintMismatch; neither is silently dropped, because both
// mean admitted SLAs can no longer be accounted for.
func Recover(dir string, fingerprint uint64, h Handler) (*RecoveryInfo, error) {
	info := &RecoveryInfo{}
	lh, _ := h.(LeaseHandler)
	listing, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	if len(listing.segments) == 0 && len(listing.snapshots) == 0 {
		return info, nil
	}

	// Newest valid snapshot wins; older ones are fallbacks for the
	// (disk-rot) case where the newest no longer validates.
	startSeg := uint64(0)
	for i := len(listing.snapshots) - 1; i >= 0; i-- {
		path := filepath.Join(dir, snapshotName(listing.snapshots[i]))
		hdr, payload, err := readSnapshot(path, fingerprint)
		if errors.Is(err, ErrFingerprintMismatch) {
			return nil, err
		}
		if err != nil {
			info.SkippedSnapshots++
			continue
		}
		if err := h.RestoreSnapshot(payload); err != nil {
			return nil, fmt.Errorf("wal: restore snapshot %s: %w", snapshotName(hdr.seq), err)
		}
		info.SnapshotLoaded = true
		info.SnapshotSeq = hdr.seq
		info.Epoch = hdr.epoch
		startSeg = hdr.firstReplaySeg
		break
	}
	if !info.SnapshotLoaded && len(listing.snapshots) > 0 {
		return nil, fmt.Errorf("%w: no snapshot validates (%d corrupt)", ErrCorrupt, info.SkippedSnapshots)
	}

	// Replay segments >= startSeg, oldest first, contiguously.
	replay := listing.segments[:0:0]
	for _, idx := range listing.segments {
		if idx >= startSeg {
			replay = append(replay, idx)
		}
	}
	if len(replay) == 0 {
		if info.SnapshotLoaded {
			return info, nil
		}
		return nil, fmt.Errorf("%w: snapshots but no segments and no snapshot loaded", ErrCorrupt)
	}
	if info.SnapshotLoaded && replay[0] != startSeg {
		return nil, fmt.Errorf("%w: snapshot expects replay from segment %d, oldest on disk is %d",
			ErrCorrupt, startSeg, replay[0])
	}
	for i, idx := range replay {
		if i > 0 && idx != replay[i-1]+1 {
			return nil, fmt.Errorf("%w: segment gap: %d follows %d", ErrCorrupt, idx, replay[i-1])
		}
	}

	for i, idx := range replay {
		last := i == len(replay)-1
		path := filepath.Join(dir, segmentName(idx))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if err := parseSegmentHeader(data, fingerprint, idx); err != nil {
			if errors.Is(err, ErrFingerprintMismatch) {
				return nil, err
			}
			if last {
				// A crash between segment creation and its first header
				// write leaves a stub; drop it.
				if err := os.Remove(path); err != nil {
					return nil, fmt.Errorf("wal: %w", err)
				}
				if err := syncDir(dir); err != nil {
					return nil, err
				}
				info.TailTruncated = true
				info.TruncatedBytes += int64(len(data))
				break
			}
			return nil, err
		}
		info.Segments++
		off := segHeaderLen
	frames:
		for {
			payload, next, res := nextFrame(data, off)
			switch res {
			case frameEnd:
				break frames
			case frameTorn:
				if !last {
					return nil, fmt.Errorf("%w: bad frame at %s+%d with later segments present",
						ErrCorrupt, segmentName(idx), off)
				}
				// Torn tail: cut the segment at the first bad frame so the
				// next recovery (and this boot's appends, which go to a
				// fresh segment anyway) see a clean log.
				if err := os.Truncate(path, int64(off)); err != nil {
					return nil, fmt.Errorf("wal: %w", err)
				}
				if err := syncDir(dir); err != nil {
					return nil, err
				}
				info.TailTruncated = true
				info.TruncatedBytes += int64(len(data) - off)
				break frames
			}
			// A frame payload is a group of records (a batch append frames
			// its whole batch under one CRC); walk them in order, batch
			// records expanding to one Record per flow.
			err := walkGroup(payload, func(rec Record) error {
				switch rec.Kind {
				case recAdmit:
					if err := h.ReplayAdmit(rec.ID, rec.Seq, rec.Class, rec.Route); err != nil {
						return fmt.Errorf("wal: replay admit %s+%d: %w", segmentName(idx), off, err)
					}
					info.ReplayedAdmits++
				case recTeardown:
					if err := h.ReplayTeardown(rec.ID); err != nil {
						return fmt.Errorf("wal: replay teardown %s+%d: %w", segmentName(idx), off, err)
					}
					info.ReplayedTeardowns++
				case recEpoch:
					if rec.Fingerprint != fingerprint {
						return fmt.Errorf("%w: epoch record fingerprint %016x, controller %016x",
							ErrFingerprintMismatch, rec.Fingerprint, fingerprint)
					}
					if rec.Epoch > info.Epoch {
						info.Epoch = rec.Epoch
					}
				case recLease:
					if lh == nil {
						return fmt.Errorf("wal: lease record at %s+%d but handler does not implement LeaseHandler",
							segmentName(idx), off)
					}
					if err := lh.ReplayLease(rec.Node, rec.Class, rec.Route, rec.Backing); err != nil {
						return fmt.Errorf("wal: replay lease %s+%d: %w", segmentName(idx), off, err)
					}
					info.ReplayedLeases++
				}
				return nil
			})
			if err != nil {
				if errors.Is(err, ErrBadRecord) {
					// The CRC matched but the group does not decode: not a
					// torn write, a format problem.
					return nil, fmt.Errorf("%w: %s+%d: %v", ErrCorrupt, segmentName(idx), off, err)
				}
				return nil, err
			}
			off = next
		}
	}
	return info, nil
}
