package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

const testFP = 0x5eed0fca11ab1e01

// recHandler records everything Recover delivers, in order.
type recHandler struct {
	snapshot []byte
	admits   []Record
	tears    []uint64
}

func (h *recHandler) RestoreSnapshot(payload []byte) error {
	h.snapshot = append([]byte(nil), payload...)
	return nil
}

func (h *recHandler) ReplayAdmit(id, seq uint64, class, route int32) error {
	h.admits = append(h.admits, Record{Kind: recAdmit, ID: id, Seq: seq, Class: class, Route: route})
	return nil
}

func (h *recHandler) ReplayTeardown(id uint64) error {
	h.tears = append(h.tears, id)
	return nil
}

// copyDir simulates reading the disk after a crash: the live log keeps
// its file handles, the copy is what a rebooted process would see.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func openTest(t *testing.T, dir string, mode Mode, epoch uint64) *Log {
	t.Helper()
	l, err := Open(Options{Dir: dir, Mode: mode, Fingerprint: testFP, Epoch: epoch})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestAppendRecoverRoundTrip drives singleton and batch appends through
// a clean close and checks recovery returns every record in order.
func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, ModeAsync, 1)
	if err := l.AppendAdmit(101, 1, 0, 7); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendAdmitBatch([]uint64{102, 103}, 2, []int32{0, 1}, []int32{8, 9}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendTeardown(102); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendTeardownBatch([]uint64{101, 103}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	h := &recHandler{}
	info, err := Recover(dir, testFP, h)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 1 || info.SnapshotLoaded || info.TailTruncated {
		t.Fatalf("info: %+v", info)
	}
	if info.ReplayedAdmits != 3 || info.ReplayedTeardowns != 3 {
		t.Fatalf("replayed %d admits, %d teardowns", info.ReplayedAdmits, info.ReplayedTeardowns)
	}
	want := []Record{
		{Kind: recAdmit, ID: 101, Seq: 1, Class: 0, Route: 7},
		{Kind: recAdmit, ID: 102, Seq: 2, Class: 0, Route: 8},
		{Kind: recAdmit, ID: 103, Seq: 3, Class: 1, Route: 9},
	}
	if len(h.admits) != len(want) {
		t.Fatalf("admits: %+v", h.admits)
	}
	for i, w := range want {
		if h.admits[i] != w {
			t.Errorf("admit %d: got %+v want %+v", i, h.admits[i], w)
		}
	}
	if len(h.tears) != 3 || h.tears[0] != 102 || h.tears[1] != 101 || h.tears[2] != 103 {
		t.Errorf("teardowns: %v", h.tears)
	}
}

// TestSyncModeDurableBeforeClose checks the ModeSync contract: once an
// append returns, the record survives a crash (simulated by copying the
// directory while the log is still open, never closing it cleanly).
func TestSyncModeDurableBeforeClose(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, ModeSync, 1)
	for i := uint64(1); i <= 5; i++ {
		if err := l.AppendAdmit(100+i, i, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	crashed := copyDir(t, dir)
	l.Close()

	h := &recHandler{}
	info, err := Recover(crashed, testFP, h)
	if err != nil {
		t.Fatal(err)
	}
	if info.ReplayedAdmits != 5 {
		t.Fatalf("replayed %d admits, want 5 (sync mode acked them)", info.ReplayedAdmits)
	}
}

// TestFlushMakesAsyncDurable: after Flush returns, async appends are on
// disk even without Close.
func TestFlushMakesAsyncDurable(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, ModeAsync, 1)
	for i := uint64(1); i <= 10; i++ {
		if err := l.AppendAdmit(i, i, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	crashed := copyDir(t, dir)
	l.Close()
	h := &recHandler{}
	info, err := Recover(crashed, testFP, h)
	if err != nil {
		t.Fatal(err)
	}
	if info.ReplayedAdmits != 10 {
		t.Fatalf("replayed %d admits, want 10", info.ReplayedAdmits)
	}
}

// TestAppendAfterClose: appends racing or following Close fail with
// ErrClosed — never a hang.
func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, ModeSync, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendAdmit(1, 1, 0, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := l.AppendTeardownBatch([]uint64{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("batch append after close: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestRotation forces multiple segments with a minimum-size segment and
// checks recovery walks all of them in order.
func TestRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Mode: ModeSync, SegmentBytes: 4 << 10, Fingerprint: testFP})
	if err != nil {
		t.Fatal(err)
	}
	const n = 400 // ~33 bytes framed each; 400 records >> one 4 KiB segment
	for i := uint64(1); i <= n; i++ {
		if err := l.AppendAdmit(i, i, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Rotations == 0 {
		t.Fatal("expected at least one rotation")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	h := &recHandler{}
	info, err := Recover(dir, testFP, h)
	if err != nil {
		t.Fatal(err)
	}
	if info.ReplayedAdmits != n {
		t.Fatalf("replayed %d admits across %d segments, want %d", info.ReplayedAdmits, info.Segments, n)
	}
	if info.Segments < 2 {
		t.Fatalf("expected multiple segments, got %d", info.Segments)
	}
	for i, rec := range h.admits {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("admit %d out of order: seq %d", i, rec.Seq)
		}
	}
}

// TestSnapshotRecovery: a snapshot seeds recovery and the tail layers
// on top; segments below the retained snapshots are removed.
func TestSnapshotRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Mode: ModeSync, SegmentBytes: 4 << 10, Fingerprint: testFP})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		if err := l.AppendAdmit(i, i, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	payload := []byte("state-after-50")
	if err := l.WriteSnapshot(func() (uint64, []byte) { return 50, payload }); err != nil {
		t.Fatal(err)
	}
	for i := uint64(51); i <= 60; i++ {
		if err := l.AppendAdmit(i, i, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	h := &recHandler{}
	info, err := Recover(dir, testFP, h)
	if err != nil {
		t.Fatal(err)
	}
	if !info.SnapshotLoaded || info.SnapshotSeq != 50 {
		t.Fatalf("info: %+v", info)
	}
	if string(h.snapshot) != string(payload) {
		t.Fatalf("snapshot payload %q", h.snapshot)
	}
	// The tail must contain the post-snapshot admits (the capture point
	// was established by rotation, so 51..60 are all above the cut).
	seen := map[uint64]bool{}
	for _, rec := range h.admits {
		seen[rec.Seq] = true
	}
	for i := uint64(51); i <= 60; i++ {
		if !seen[i] {
			t.Fatalf("post-snapshot admit seq %d not replayed (admits: %d)", i, len(h.admits))
		}
	}
}

// TestSnapshotRetention: after several snapshots only the two newest
// remain, and segments below the older one are gone.
func TestSnapshotRetention(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Mode: ModeSync, SegmentBytes: 4 << 10, Fingerprint: testFP})
	if err != nil {
		t.Fatal(err)
	}
	seqs := []uint64{10, 20, 30}
	for _, s := range seqs {
		for i := uint64(1); i <= 40; i++ {
			if err := l.AppendAdmit(s*100+i, s*100+i, 0, 0); err != nil {
				t.Fatal(err)
			}
		}
		s := s
		if err := l.WriteSnapshot(func() (uint64, []byte) { return s, []byte{byte(s)} }); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	listing, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.snapshots) != 2 || listing.snapshots[0] != 20 || listing.snapshots[1] != 30 {
		t.Fatalf("snapshots on disk: %v", listing.snapshots)
	}
	h := &recHandler{}
	info, err := Recover(dir, testFP, h)
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotSeq != 30 {
		t.Fatalf("recovered snapshot seq %d, want 30", info.SnapshotSeq)
	}
}

// TestEpochAcrossBoots: each boot's epoch-bump advances the recovered
// epoch, and recovery reports the newest.
func TestEpochAcrossBoots(t *testing.T) {
	dir := t.TempDir()
	for boot := uint64(1); boot <= 3; boot++ {
		h := &recHandler{}
		info, err := Recover(dir, testFP, h)
		if err != nil {
			t.Fatal(err)
		}
		if info.Epoch != boot-1 {
			t.Fatalf("boot %d recovered epoch %d, want %d", boot, info.Epoch, boot-1)
		}
		l := openTest(t, dir, ModeSync, info.Epoch+1)
		if err := l.AppendAdmit(boot, boot, 0, 0); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFingerprintMismatch: durable state written under one
// configuration is refused under another.
func TestFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, ModeSync, 1)
	if err := l.AppendAdmit(1, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir, testFP+1, &recHandler{}); !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("recover with wrong fingerprint: %v", err)
	}
}

// TestEmptyDirRecovers: a fresh data directory is a valid (empty) log.
func TestEmptyDirRecovers(t *testing.T) {
	h := &recHandler{}
	info, err := Recover(t.TempDir(), testFP, h)
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotLoaded || info.ReplayedAdmits != 0 || info.Epoch != 0 {
		t.Fatalf("info: %+v", info)
	}
	// And a directory that does not exist at all.
	if _, err := Recover(filepath.Join(t.TempDir(), "never-created"), testFP, h); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitBatching: records staged between flushes share one
// write+fsync. With the ticker effectively off and the byte threshold
// out of reach, everything staged before the explicit Flush must ride
// a single group commit — not one fsync per record.
func TestGroupCommitBatching(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{
		Dir: dir, Mode: ModeAsync,
		FlushInterval: time.Hour, FlushBytes: 1 << 20,
		Fingerprint: testFP,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	before := l.Stats().Fsyncs // epoch-bump commit
	for i := uint64(1); i <= n; i++ {
		if err := l.AppendAdmit(i, i, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != n+1 { // +1 epoch bump
		t.Fatalf("appends %d", st.Appends)
	}
	if got := st.Fsyncs - before; got != 1 {
		t.Fatalf("%d fsyncs for %d staged records, want one group commit", got, n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	h := &recHandler{}
	info, err := Recover(dir, testFP, h)
	if err != nil {
		t.Fatal(err)
	}
	if info.ReplayedAdmits != n {
		t.Fatalf("replayed %d, want %d", info.ReplayedAdmits, n)
	}
}

// TestBatchGroupFraming: a batch append produces ONE frame carrying the
// whole group — the header and CRC amortize with the batch — and a torn
// group is dropped whole on recovery, never half-replayed.
func TestBatchGroupFraming(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, ModeSync, 1)
	ids := make([]uint64, 64)
	classes := make([]int32, 64)
	routes := make([]int32, 64)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	if err := l.AppendAdmitBatch(ids, 1, classes, routes); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	listing, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segmentName(listing.segments[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var ends []int
	off := segHeaderLen
	for {
		_, next, res := nextFrame(data, off)
		if res != frameOK {
			break
		}
		ends = append(ends, next)
		off = next
	}
	if len(ends) != 2 { // epoch bump + one group frame for all 64 admits
		t.Fatalf("%d frames on disk, want 2 (epoch + one batch group)", len(ends))
	}
	// Cut one byte into the group frame: the whole batch must vanish,
	// not replay partially.
	if err := os.Truncate(path, int64(ends[1]-1)); err != nil {
		t.Fatal(err)
	}
	h := &recHandler{}
	info, err := Recover(dir, testFP, h)
	if err != nil {
		t.Fatal(err)
	}
	if info.ReplayedAdmits != 0 || !info.TailTruncated {
		t.Fatalf("torn group frame: %+v, want 0 admits and a truncated tail", info)
	}
}

// TestAsyncBackpressure: when staging crosses MaxStagingBytes, async
// appends block on the group commit instead of growing the backlog —
// the staging buffer stays bounded no matter how far the disk lags.
func TestAsyncBackpressure(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{
		Dir: dir, Mode: ModeAsync,
		FlushInterval: time.Hour, FlushBytes: 4 << 10, MaxStagingBytes: 8 << 10,
		Fingerprint: testFP,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ~33 bytes per framed admit: thousands of appends cross the 8 KiB
	// bound many times over; each crossing waits for a flush, so the
	// log must keep up without any explicit Flush calls.
	const n = 4000
	for i := uint64(1); i <= n; i++ {
		if err := l.AppendAdmit(i, i, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Fsyncs < 2 {
		t.Fatalf("only %d fsyncs after %d appends past the staging bound", st.Fsyncs, n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	h := &recHandler{}
	info, err := Recover(dir, testFP, h)
	if err != nil {
		t.Fatal(err)
	}
	if info.ReplayedAdmits != n {
		t.Fatalf("replayed %d, want %d", info.ReplayedAdmits, n)
	}
}
