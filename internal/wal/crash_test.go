package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// buildSegments writes n admit records (seq 1..n) in ModeSync and
// closes cleanly, returning the directory.
func buildSegments(t *testing.T, n int, segmentBytes int64) string {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Mode: ModeSync, SegmentBytes: segmentBytes, Fingerprint: testFP})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= uint64(n); i++ {
		if err := l.AppendAdmit(i, i, int32(i%3), int32(i%5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// lastSegmentPath returns the path of the newest segment in dir.
func lastSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	listing, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.segments) == 0 {
		t.Fatal("no segments")
	}
	return filepath.Join(dir, segmentName(listing.segments[len(listing.segments)-1]))
}

// frameEnds scans a segment's bytes and returns the end offset of every
// valid frame, in order.
func frameEnds(t *testing.T, data []byte) []int {
	t.Helper()
	var ends []int
	off := segHeaderLen
	for {
		_, next, res := nextFrame(data, off)
		if res != frameOK {
			return ends
		}
		ends = append(ends, next)
		off = next
	}
}

// TestTornTailTruncation: a crash mid-write leaves a half-written frame
// at the tail. Recovery must keep every complete record, cut the torn
// one, and leave the repaired log clean for the next recovery.
func TestTornTailTruncation(t *testing.T) {
	const n = 12
	dir := buildSegments(t, n, 0)
	path := lastSegmentPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ends := frameEnds(t, data)
	// Frame 0 is the epoch bump; cut into the middle of the last admit.
	cut := int64(ends[len(ends)-1] - 3)
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}

	h := &recHandler{}
	info, err := Recover(dir, testFP, h)
	if err != nil {
		t.Fatal(err)
	}
	if !info.TailTruncated {
		t.Fatal("torn tail not reported")
	}
	if info.ReplayedAdmits != n-1 {
		t.Fatalf("replayed %d admits, want %d", info.ReplayedAdmits, n-1)
	}
	// The repair must be durable: a second recovery sees a clean log.
	h2 := &recHandler{}
	info2, err := Recover(dir, testFP, h2)
	if err != nil {
		t.Fatal(err)
	}
	if info2.TailTruncated {
		t.Fatal("repaired log still reports a torn tail")
	}
	if info2.ReplayedAdmits != n-1 {
		t.Fatalf("second recovery replayed %d, want %d", info2.ReplayedAdmits, n-1)
	}
}

// TestBitFlipInTail: a flipped bit in the last frame fails its CRC and
// is treated as a torn tail — truncated, not replayed, not fatal.
func TestBitFlipInTail(t *testing.T) {
	const n = 10
	dir := buildSegments(t, n, 0)
	path := lastSegmentPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ends := frameEnds(t, data)
	data[ends[len(ends)-1]-1] ^= 0x40 // inside the last frame's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	h := &recHandler{}
	info, err := Recover(dir, testFP, h)
	if err != nil {
		t.Fatal(err)
	}
	if !info.TailTruncated || info.ReplayedAdmits != n-1 {
		t.Fatalf("info: %+v", info)
	}
}

// TestBitFlipMidLogRefused: damage in a non-final segment cannot be a
// torn write — it means silent corruption, and recovery must refuse
// rather than drop acknowledged admits.
func TestBitFlipMidLogRefused(t *testing.T) {
	dir := buildSegments(t, 400, 4<<10) // forces >= 2 segments
	listing, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.segments) < 2 {
		t.Fatalf("want multiple segments, got %d", len(listing.segments))
	}
	first := filepath.Join(dir, segmentName(listing.segments[0]))
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	ends := frameEnds(t, data)
	data[ends[2]-1] ^= 0x01
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir, testFP, &recHandler{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log bit flip: %v, want ErrCorrupt", err)
	}
}

// TestStubSegmentRemoved: a crash between segment creation and its
// first header write leaves a header-less stub; recovery drops it.
func TestStubSegmentRemoved(t *testing.T) {
	const n = 6
	dir := buildSegments(t, n, 0)
	listing, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	stub := filepath.Join(dir, segmentName(listing.segments[len(listing.segments)-1]+1))
	if err := os.WriteFile(stub, make([]byte, 512), 0o644); err != nil {
		t.Fatal(err)
	}
	h := &recHandler{}
	info, err := Recover(dir, testFP, h)
	if err != nil {
		t.Fatal(err)
	}
	if info.ReplayedAdmits != n {
		t.Fatalf("replayed %d, want %d", info.ReplayedAdmits, n)
	}
	if !info.TailTruncated {
		t.Fatal("stub removal not reported as tail repair")
	}
	if _, err := os.Stat(stub); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stub still on disk: %v", err)
	}
}

// TestSegmentGapRefused: a missing middle segment is unexplainable
// loss, not a torn tail.
func TestSegmentGapRefused(t *testing.T) {
	dir := buildSegments(t, 600, 4<<10)
	listing, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.segments) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(listing.segments))
	}
	mid := filepath.Join(dir, segmentName(listing.segments[1]))
	if err := os.Remove(mid); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir, testFP, &recHandler{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("segment gap: %v, want ErrCorrupt", err)
	}
}

// TestPrefixReplayProperty is the crash-consistency property test:
// for EVERY byte-length prefix of a valid single-segment log, recovery
// must deliver exactly the records whose frames are wholly contained in
// the prefix — no more, no fewer, never an error. A power cut can stop
// the disk at any byte; whatever it keeps, recovery explains.
func TestPrefixReplayProperty(t *testing.T) {
	const n = 40
	src := buildSegments(t, n, 4<<10)
	path := lastSegmentPath(t, src)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: record i (0-based among admits) is contained in any
	// prefix of length >= admitEnds[i].
	var admitEnds []int
	off := segHeaderLen
	for {
		payload, next, res := nextFrame(data, off)
		if res != frameOK {
			break
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Kind == recAdmit {
			admitEnds = append(admitEnds, next)
		}
		off = next
	}
	if len(admitEnds) != n {
		t.Fatalf("reference scan found %d admits, want %d", len(admitEnds), n)
	}

	dir := t.TempDir()
	trunc := filepath.Join(dir, filepath.Base(path))
	for cut := segHeaderLen; cut <= len(data); cut++ {
		if err := os.WriteFile(trunc, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		want := uint64(0)
		for _, end := range admitEnds {
			if end <= cut {
				want++
			}
		}
		h := &recHandler{}
		info, err := Recover(dir, testFP, h)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if info.ReplayedAdmits != want {
			t.Fatalf("cut=%d: replayed %d admits, want %d", cut, info.ReplayedAdmits, want)
		}
		for i, rec := range h.admits {
			if rec.Seq != uint64(i+1) {
				t.Fatalf("cut=%d: admit %d has seq %d", cut, i, rec.Seq)
			}
		}
	}
}

// TestWalkGroupMalformed: every way a CRC-valid group payload can fail
// to decode must surface as ErrBadRecord — never a panic, never a
// silent partial parse. (A CRC collision is the only way such bytes
// reach walkGroup from disk, but the decoder's totality should not
// depend on the checksum.)
func TestWalkGroupMalformed(t *testing.T) {
	admitBatch := func(seqBase uint64, units ...uint64) []byte {
		b := []byte{recAdmitBatch}
		b = binary.LittleEndian.AppendUint64(b, seqBase)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(units)))
		for _, id := range units {
			b = binary.LittleEndian.AppendUint64(b, id)
			b = binary.LittleEndian.AppendUint32(b, 0)
			b = binary.LittleEndian.AppendUint32(b, 0)
		}
		return b
	}
	cases := map[string][]byte{
		"unknown tag":               {0x7f, 1, 2, 3},
		"short singleton":           {recAdmit, 1, 2},
		"short admit batch header":  {recAdmitBatch, 0, 0},
		"admit batch count zero":    admitBatch(1)[:admitBatchHeaderLen],
		"admit batch short units":   admitBatch(1, 10, 11)[:admitBatchHeaderLen+admitBatchUnitLen],
		"teardown batch zero count": {recTeardownBatch, 0, 0, 0, 0},
		"teardown batch short":      {recTeardownBatch, 2, 0, 0, 0, 1, 2, 3},
		"trailing junk after valid": append(appendTeardownPayload(nil, 9), 0xee),
	}
	for name, payload := range cases {
		err := walkGroup(payload, func(Record) error { return nil })
		if !errors.Is(err, ErrBadRecord) {
			t.Errorf("%s: err = %v, want ErrBadRecord", name, err)
		}
	}
	// A handler error must pass through unwrapped by ErrBadRecord.
	boom := errors.New("boom")
	if err := walkGroup(admitBatch(5, 1, 2), func(Record) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("handler error: %v, want boom", err)
	}
	// The valid batch decodes to per-flow records with implicit seqs.
	var got []Record
	if err := walkGroup(admitBatch(5, 41, 42), func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Seq != 5 || got[1].Seq != 6 || got[0].ID != 41 || got[1].ID != 42 {
		t.Fatalf("decoded batch: %+v", got)
	}
}

// FuzzDecodeWALRecord: DecodeRecord must be total over arbitrary bytes
// (recovery feeds it CRC-validated but otherwise untrusted payloads),
// and every successful decode must re-encode to the identical payload.
func FuzzDecodeWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendAdmitPayload(nil, 0x1234567890abcdef, 42, 3, 7))
	f.Add(appendTeardownPayload(nil, 99))
	f.Add(appendEpochPayload(nil, 5, testFP))
	f.Add([]byte{0x01, 0x02})
	f.Add([]byte{0xff, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrBadRecord) {
				t.Fatalf("decode error not ErrBadRecord: %v", err)
			}
			return
		}
		var enc []byte
		switch rec.Kind {
		case recAdmit:
			enc = appendAdmitPayload(nil, rec.ID, rec.Seq, rec.Class, rec.Route)
		case recTeardown:
			enc = appendTeardownPayload(nil, rec.ID)
		case recEpoch:
			enc = appendEpochPayload(nil, rec.Epoch, rec.Fingerprint)
		default:
			t.Fatalf("decode accepted unknown kind %#x", rec.Kind)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("round trip: decoded %+v, re-encoded % x != input % x", rec, enc, data)
		}
	})
}

// FuzzRecoverSegment: recovery over an arbitrarily mangled segment file
// must never panic, and whenever it succeeds, a second recovery of the
// repaired directory must succeed with the same record count
// (repairs are durable and idempotent).
func FuzzRecoverSegment(f *testing.F) {
	// Seed with a real segment: epoch bump + a handful of records.
	seedDir := f.TempDir()
	l, err := Open(Options{Dir: seedDir, Mode: ModeSync, SegmentBytes: 4 << 10, Fingerprint: testFP})
	if err != nil {
		f.Fatal(err)
	}
	for i := uint64(1); i <= 8; i++ {
		if err := l.AppendAdmit(i, i, 0, 1); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.AppendTeardown(3); err != nil {
		f.Fatal(err)
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	listing, err := scanDir(seedDir)
	if err != nil || len(listing.segments) != 1 {
		f.Fatalf("seed log: %v, %d segments", err, len(listing.segments))
	}
	segIdx := listing.segments[0]
	seed, err := os.ReadFile(filepath.Join(seedDir, segmentName(segIdx)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:segHeaderLen])
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	flip := append([]byte(nil), seed...)
	flip[segHeaderLen+10] ^= 0x80
	f.Add(flip)

	// Second seed: a segment whose frames carry batch records, so the
	// fuzzer starts from the packed admit-batch/teardown-batch layout too.
	batchDir := f.TempDir()
	bl, err := Open(Options{Dir: batchDir, Mode: ModeSync, SegmentBytes: 4 << 10, Fingerprint: testFP})
	if err != nil {
		f.Fatal(err)
	}
	if err := bl.AppendAdmitBatch([]uint64{11, 12, 13, 14}, 1, []int32{0, 1, 0, 1}, []int32{2, 3, 2, 3}); err != nil {
		f.Fatal(err)
	}
	if err := bl.AppendTeardownBatch([]uint64{12, 14}); err != nil {
		f.Fatal(err)
	}
	if err := bl.Close(); err != nil {
		f.Fatal(err)
	}
	batchSeed, err := os.ReadFile(filepath.Join(batchDir, segmentName(0)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(batchSeed)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segmentName(segIdx))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		h := &recHandler{}
		info, err := Recover(dir, testFP, h)
		if err != nil {
			return // refusal is a valid outcome; panics and hangs are not
		}
		h2 := &recHandler{}
		info2, err := Recover(dir, testFP, h2)
		if err != nil {
			t.Fatalf("recovery succeeded then failed on its own repair: %v", err)
		}
		if info2.TailTruncated {
			t.Fatalf("second recovery still repairing: %+v then %+v", info, info2)
		}
		if info2.ReplayedAdmits != info.ReplayedAdmits || info2.ReplayedTeardowns != info.ReplayedTeardowns {
			t.Fatalf("recovery not idempotent: %+v then %+v", info, info2)
		}
	})
}
