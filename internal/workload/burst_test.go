package workload

import (
	"math"
	"testing"
)

var burstPairs = [][2]int{{0, 1}, {1, 2}, {2, 0}}

// burstyCfg is a strongly bursty on-off process: 50 calls/s bursts of
// ~2 s mean separated by ~8 s silent gaps (mean rate 10 calls/s).
func burstyCfg() MMPPConfig {
	return MMPPConfig{HighRate: 50, LowRate: 0, MeanHigh: 2, MeanLow: 8}
}

func TestMMPPConfigValidate(t *testing.T) {
	bad := []MMPPConfig{
		{HighRate: 0, LowRate: 0, MeanHigh: 1, MeanLow: 1},
		{HighRate: -1, LowRate: 0, MeanHigh: 1, MeanLow: 1},
		{HighRate: math.NaN(), LowRate: 0, MeanHigh: 1, MeanLow: 1},
		{HighRate: 10, LowRate: -1, MeanHigh: 1, MeanLow: 1},
		{HighRate: 10, LowRate: 20, MeanHigh: 1, MeanLow: 1},
		{HighRate: 10, LowRate: 1, MeanHigh: 0, MeanLow: 1},
		{HighRate: 10, LowRate: 1, MeanHigh: 1, MeanLow: math.Inf(1)},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, cfg)
		}
	}
	if err := burstyCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMMPPGenerator(burstyCfg(), 0, burstPairs, 1); err == nil {
		t.Error("zero holding validated")
	}
	if _, err := NewMMPPGenerator(burstyCfg(), 1, nil, 1); err == nil {
		t.Error("empty pairs validated")
	}
	if _, err := NewMMPPGenerator(burstyCfg(), 1, [][2]int{{3, 3}}, 1); err == nil {
		t.Error("self pair validated")
	}
}

func TestMMPPAnalytics(t *testing.T) {
	cfg := burstyCfg()
	// High state holds 2/(2+8) of the time → mean rate 50 * 0.2 = 10.
	if got := cfg.MeanRate(); math.Abs(got-10) > 1e-12 {
		t.Errorf("mean rate = %g, want 10", got)
	}
	// IDC = 1 + 2·p1·p0·Δ²/(λ̄·(q1+q0)) = 1 + 2·0.2·0.8·2500/(10·0.625) = 129.
	want := 1 + 2*0.2*0.8*2500/(10*0.625)
	if got := cfg.IDC(); math.Abs(got-want) > 1e-9 {
		t.Errorf("IDC = %g, want %g", got, want)
	}
	// A degenerate MMPP (equal rates) is Poisson: IDC exactly 1.
	flat := MMPPConfig{HighRate: 10, LowRate: 10, MeanHigh: 1, MeanLow: 1}
	if got := flat.IDC(); math.Abs(got-1) > 1e-12 {
		t.Errorf("flat IDC = %g, want 1", got)
	}
}

// TestMMPPBurstiness checks the generated process is empirically
// bursty (interarrival CV well above 1) while a Poisson generator at
// the same mean rate measures CV ≈ 1, and that the realized mean rate
// matches the analytic one.
func TestMMPPBurstiness(t *testing.T) {
	const horizon = 2000.0
	g, err := NewMMPPGenerator(burstyCfg(), 0.1, burstPairs, 42)
	if err != nil {
		t.Fatal(err)
	}
	calls := g.Generate(horizon)
	// Count variance is IDC·λ̄·T ≈ 129·20000, so the realized rate has
	// σ ≈ 0.8 calls/s; allow ~3σ around the analytic mean of 10.
	rate := float64(len(calls)) / horizon
	if math.Abs(rate-10) > 2.5 {
		t.Errorf("realized rate %g, want ≈ 10", rate)
	}
	if cv := InterarrivalCV(calls); cv < 2 {
		t.Errorf("bursty CV = %g, want well above 1", cv)
	}
	for i := 1; i < len(calls); i++ {
		if calls[i].Arrive < calls[i-1].Arrive {
			t.Fatalf("arrivals out of order at %d", i)
		}
	}

	pg, err := NewGenerator(10, 0.1, burstPairs, 42)
	if err != nil {
		t.Fatal(err)
	}
	if cv := InterarrivalCV(pg.Generate(horizon)); cv < 0.9 || cv > 1.1 {
		t.Errorf("poisson CV = %g, want ≈ 1", cv)
	}
}

// TestMMPPDeterminism: identical seeds replay identically; different
// seeds diverge.
func TestMMPPDeterminism(t *testing.T) {
	gen := func(seed int64) []Call {
		g, err := NewMMPPGenerator(burstyCfg(), 0.1, burstPairs, seed)
		if err != nil {
			t.Fatal(err)
		}
		return g.Generate(100)
	}
	a, b := gen(7), gen(7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := gen(8)
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical workloads")
		}
	}
}

func TestApplyMix(t *testing.T) {
	g, err := NewGenerator(50, 0.1, burstPairs, 3)
	if err != nil {
		t.Fatal(err)
	}
	calls := g.Generate(200) // ~10k calls
	mix := []MixEntry{
		{Class: "voice", Tenant: "gold", Weight: 1},
		{Class: "voice", Tenant: "silver", Weight: 2},
		{Class: "voice", Tenant: "bronze", Weight: 7},
	}
	if err := ApplyMix(calls, mix, 11); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, c := range calls {
		if c.Class != "voice" {
			t.Fatalf("class = %q", c.Class)
		}
		counts[c.Tenant]++
	}
	n := float64(len(calls))
	for tenant, want := range map[string]float64{"gold": 0.1, "silver": 0.2, "bronze": 0.7} {
		got := float64(counts[tenant]) / n
		if math.Abs(got-want) > 0.03 {
			t.Errorf("tenant %s share = %.3f, want ≈ %.1f", tenant, got, want)
		}
	}

	// Deterministic under the seed.
	copies := append([]Call(nil), calls...)
	for i := range copies {
		copies[i].Class, copies[i].Tenant = "", ""
	}
	if err := ApplyMix(copies, mix, 11); err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if calls[i].Tenant != copies[i].Tenant {
			t.Fatalf("mix not deterministic at call %d", i)
		}
	}

	// Invalid mixes are rejected.
	if err := ApplyMix(calls, nil, 1); err == nil {
		t.Error("empty mix accepted")
	}
	if err := ApplyMix(calls, []MixEntry{{Class: "voice", Weight: 0}}, 1); err == nil {
		t.Error("zero weight accepted")
	}
	if err := ApplyMix(calls, []MixEntry{{Weight: 1}}, 1); err == nil {
		t.Error("classless entry accepted")
	}
}

// capAdmitter admits up to cap concurrent calls, rejecting tenant
// "blocked" outright — enough structure to check the per-tier split.
type capAdmitter struct {
	cap    int
	live   map[uint64]bool
	nextID uint64
}

func (a *capAdmitter) TryAdmitTier(class, tenant string, src, dst int) (uint64, bool) {
	if tenant == "blocked" || len(a.live) >= a.cap {
		return 0, false
	}
	a.nextID++
	a.live[a.nextID] = true
	return a.nextID, true
}

func (a *capAdmitter) Release(h uint64) { delete(a.live, h) }

func TestReplayTiered(t *testing.T) {
	g, err := NewGenerator(20, 0.5, burstPairs, 5)
	if err != nil {
		t.Fatal(err)
	}
	calls := g.Generate(100)
	mix := []MixEntry{
		{Class: "voice", Tenant: "ok", Weight: 3},
		{Class: "voice", Tenant: "blocked", Weight: 1},
	}
	if err := ApplyMix(calls, mix, 9); err != nil {
		t.Fatal(err)
	}
	adm := &capAdmitter{cap: 8, live: map[uint64]bool{}}
	st, tiers := ReplayTiered(Schedule(calls), calls, adm)
	if st.Offered != len(calls) {
		t.Fatalf("offered %d, want %d", st.Offered, len(calls))
	}
	if st.Admitted+st.Blocked != st.Offered {
		t.Fatalf("outcomes don't sum: %+v", st)
	}
	if len(adm.live) != 0 {
		t.Fatalf("%d calls leaked after drain", len(adm.live))
	}
	var sum BlockingStats
	for _, ts := range tiers {
		sum.Offered += ts.Offered
		sum.Admitted += ts.Admitted
		sum.Blocked += ts.Blocked
	}
	if sum != st {
		t.Fatalf("tier stats %+v don't sum to overall %+v", sum, st)
	}
	bl := tiers["blocked"]
	if bl == nil || bl.Admitted != 0 || bl.Blocking() != 1 {
		t.Fatalf("blocked tier = %+v, want total blocking", bl)
	}
	okT := tiers["ok"]
	if okT == nil || okT.Admitted == 0 {
		t.Fatalf("ok tier = %+v, want admissions", okT)
	}
	if okT.Blocking() >= 1 || okT.Blocking() <= 0 {
		// cap 8 against ~10 Erlangs of "ok" load guarantees partial blocking.
		t.Errorf("ok tier blocking = %g, want in (0,1)", okT.Blocking())
	}
}
