package workload_test

import (
	"fmt"

	"ubac/internal/workload"
)

// Classic switchboard planning: 10 Erlangs offered to 10 circuits.
func ExampleErlangB() {
	b, err := workload.ErlangB(10, 10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("blocking %.1f%%\n", 100*b)
	// Output: blocking 21.5%
}

func ExampleErlangBCapacity() {
	c, err := workload.ErlangBCapacity(10, 0.01)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d circuits for 1%% blocking\n", c)
	// Output: 18 circuits for 1% blocking
}
