package workload

import (
	"math/rand"
	"testing"
)

var streamPairs = [][2]int{{0, 1}, {1, 2}, {2, 0}}

// drain pulls the whole stream.
func drain(t *testing.T, s Source) []Call {
	t.Helper()
	var calls []Call
	for {
		c, ok := s.Next()
		if !ok {
			// Exhausted sources must stay exhausted.
			if _, again := s.Next(); again {
				t.Fatal("source yielded after reporting exhaustion")
			}
			return calls
		}
		calls = append(calls, c)
	}
}

// The streaming Poisson source must reproduce the batch generator's
// stream draw for draw from the same seed — the property that lets the
// scale simulator stream arrivals without changing any experiment's
// workload.
func TestPoissonSourceMatchesGenerator(t *testing.T) {
	const seed, horizon = 77, 50.0
	g, err := NewGenerator(12, 0.5, streamPairs, seed)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Generate(horizon)
	s, err := NewPoissonSource(12, 0.5, streamPairs, horizon, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, s)
	if len(got) != len(want) {
		t.Fatalf("stream yielded %d calls, batch %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("call %d differs: stream %+v batch %+v", i, got[i], want[i])
		}
	}
	if s.OfferedLoad() != g.OfferedLoad() {
		t.Errorf("offered load %g vs %g", s.OfferedLoad(), g.OfferedLoad())
	}
}

// Same property for the MMPP source.
func TestMMPPSourceMatchesGenerator(t *testing.T) {
	cfg := MMPPConfig{HighRate: 40, LowRate: 2, MeanHigh: 1.5, MeanLow: 4}
	const seed, horizon = 13, 120.0
	g, err := NewMMPPGenerator(cfg, 2, streamPairs, seed)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Generate(horizon)
	s, err := NewMMPPSource(cfg, 2, streamPairs, horizon, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, s)
	if len(got) != len(want) {
		t.Fatalf("stream yielded %d calls, batch %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("call %d differs: stream %+v batch %+v", i, got[i], want[i])
		}
	}
	if len(got) < 100 {
		t.Fatalf("window too quiet to be a meaningful test: %d calls", len(got))
	}
}

// A pure on-off source (LowRate = 0) must stream through its silent
// states without stalling.
func TestOnOffSourceSilentStates(t *testing.T) {
	cfg := MMPPConfig{HighRate: 30, LowRate: 0, MeanHigh: 1, MeanLow: 1}
	s, err := NewMMPPSource(cfg, 1, streamPairs, 60, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	calls := drain(t, s)
	if len(calls) < 100 {
		t.Fatalf("on-off source yielded only %d calls", len(calls))
	}
	for i := 1; i < len(calls); i++ {
		if calls[i].Arrive < calls[i-1].Arrive {
			t.Fatal("arrivals out of order")
		}
	}
}

func TestSourceValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewPoissonSource(0, 1, streamPairs, 10, rng); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewPoissonSource(1, 0, streamPairs, 10, rng); err == nil {
		t.Error("zero holding accepted")
	}
	if _, err := NewPoissonSource(1, 1, streamPairs, 0, rng); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := NewPoissonSource(1, 1, nil, 10, rng); err == nil {
		t.Error("empty pairs accepted")
	}
	if _, err := NewPoissonSource(1, 1, [][2]int{{2, 2}}, 10, rng); err == nil {
		t.Error("self pair accepted")
	}
	if _, err := NewPoissonSource(1, 1, streamPairs, 10, nil); err == nil {
		t.Error("nil rng accepted")
	}
	cfg := MMPPConfig{HighRate: 10, LowRate: 0, MeanHigh: 1, MeanLow: 1}
	if _, err := NewMMPPSource(MMPPConfig{}, 1, streamPairs, 10, rng); err == nil {
		t.Error("invalid mmpp config accepted")
	}
	if _, err := NewMMPPSource(cfg, -1, streamPairs, 10, rng); err == nil {
		t.Error("negative holding accepted")
	}
	if _, err := NewMMPPSource(cfg, 1, streamPairs, 10, nil); err == nil {
		t.Error("nil rng accepted")
	}
}
