package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// MMPPConfig parameterizes a two-state Markov-modulated Poisson
// process (the standard on-off burst model): arrivals are Poisson at
// HighRate while the modulating chain sits in the high state and at
// LowRate in the low state, with exponentially distributed sojourns of
// mean MeanHigh / MeanLow seconds. LowRate = 0 gives a pure on-off
// (interrupted Poisson) process. With HighRate == LowRate the process
// degenerates to plain Poisson.
//
// Burstiness is controlled by the rate ratio and the sojourn times:
// the asymptotic index of dispersion of counts (IDC, variance-to-mean
// ratio of arrivals in long windows; 1 for Poisson) is
//
//	IDC = 1 + 2·p1·p0·(λ1−λ0)² / (λ̄·(q1+q0))
//
// where q1 = 1/MeanHigh, q0 = 1/MeanLow, p1 = q0/(q0+q1) is the
// stationary probability of the high state, and λ̄ the mean rate.
type MMPPConfig struct {
	HighRate float64 // calls/second in the high (burst) state, > 0
	LowRate  float64 // calls/second in the low state, >= 0
	MeanHigh float64 // mean burst duration, seconds, > 0
	MeanLow  float64 // mean gap duration, seconds, > 0
}

// Validate checks the process parameters.
func (c MMPPConfig) Validate() error {
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
	if c.HighRate <= 0 || bad(c.HighRate) {
		return fmt.Errorf("workload: mmpp high rate %g must be positive and finite", c.HighRate)
	}
	if c.LowRate < 0 || bad(c.LowRate) {
		return fmt.Errorf("workload: mmpp low rate %g must be >= 0 and finite", c.LowRate)
	}
	if c.LowRate > c.HighRate {
		return fmt.Errorf("workload: mmpp low rate %g exceeds high rate %g", c.LowRate, c.HighRate)
	}
	if c.MeanHigh <= 0 || bad(c.MeanHigh) {
		return fmt.Errorf("workload: mmpp mean high sojourn %g must be positive and finite", c.MeanHigh)
	}
	if c.MeanLow <= 0 || bad(c.MeanLow) {
		return fmt.Errorf("workload: mmpp mean low sojourn %g must be positive and finite", c.MeanLow)
	}
	return nil
}

// probHigh is the stationary probability of the high state.
func (c MMPPConfig) probHigh() float64 {
	q1, q0 := 1/c.MeanHigh, 1/c.MeanLow
	return q0 / (q0 + q1)
}

// MeanRate returns the long-run arrival rate λ̄ in calls/second.
func (c MMPPConfig) MeanRate() float64 {
	p1 := c.probHigh()
	return p1*c.HighRate + (1-p1)*c.LowRate
}

// IDC returns the asymptotic index of dispersion of counts — the
// variance-to-mean ratio of the number of arrivals in long windows.
// Poisson traffic has IDC 1; bursty traffic exceeds it.
func (c MMPPConfig) IDC() float64 {
	p1 := c.probHigh()
	q1, q0 := 1/c.MeanHigh, 1/c.MeanLow
	d := c.HighRate - c.LowRate
	return 1 + 2*p1*(1-p1)*d*d/(c.MeanRate()*(q1+q0))
}

// MMPPGenerator produces a bursty MMPP/on-off call process over a pair
// set, mirroring Generator for the Poisson case. Construct with
// NewMMPPGenerator.
type MMPPGenerator struct {
	rng *rand.Rand
	// Config is the modulating process.
	Config MMPPConfig
	// MeanHolding is the mean call duration 1/μ in seconds.
	MeanHolding float64
	// Pairs is the set of (src, dst) pairs calls are drawn from,
	// uniformly.
	Pairs [][2]int
}

// NewMMPPGenerator validates the parameters and seeds the process.
func NewMMPPGenerator(cfg MMPPConfig, meanHolding float64, pairs [][2]int, seed int64) (*MMPPGenerator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if meanHolding <= 0 || math.IsNaN(meanHolding) || math.IsInf(meanHolding, 0) {
		return nil, fmt.Errorf("workload: invalid mean holding %g", meanHolding)
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("workload: no pairs")
	}
	for _, p := range pairs {
		if p[0] == p[1] {
			return nil, fmt.Errorf("workload: self pair %v", p)
		}
	}
	return &MMPPGenerator{
		rng:         rand.New(rand.NewSource(seed)),
		Config:      cfg,
		MeanHolding: meanHolding,
		Pairs:       append([][2]int(nil), pairs...),
	}, nil
}

// OfferedLoad returns the long-run offered load in Erlangs (λ̄/μ).
func (g *MMPPGenerator) OfferedLoad() float64 { return g.Config.MeanRate() * g.MeanHolding }

// Generate produces all calls arriving in [0, horizon), sorted by
// arrival time. The modulating chain starts in its stationary
// distribution so the window is statistically homogeneous.
func (g *MMPPGenerator) Generate(horizon float64) []Call {
	if horizon <= 0 {
		return nil
	}
	var calls []Call
	high := g.rng.Float64() < g.Config.probHigh()
	t := 0.0
	// stateEnd is when the current sojourn expires; arrivals past it
	// roll the chain forward first.
	stateEnd := t + g.sojourn(high)
	for t < horizon {
		rate := g.Config.LowRate
		if high {
			rate = g.Config.HighRate
		}
		var next float64
		if rate > 0 {
			next = t + g.rng.ExpFloat64()/rate
		} else {
			next = math.Inf(1) // silent state: jump straight to the flip
		}
		if next >= stateEnd {
			// The state flips before the candidate arrival fires. The
			// exponential's memorylessness lets us discard the candidate
			// and redraw at the new rate from the flip instant.
			t = stateEnd
			high = !high
			stateEnd = t + g.sojourn(high)
			continue
		}
		t = next
		if t >= horizon {
			break
		}
		p := g.Pairs[g.rng.Intn(len(g.Pairs))]
		calls = append(calls, Call{
			Arrive:  t,
			Holding: g.rng.ExpFloat64() * g.MeanHolding,
			Src:     p[0],
			Dst:     p[1],
		})
	}
	return calls
}

// sojourn draws one state-holding time.
func (g *MMPPGenerator) sojourn(high bool) float64 {
	if high {
		return g.rng.ExpFloat64() * g.Config.MeanHigh
	}
	return g.rng.ExpFloat64() * g.Config.MeanLow
}

// InterarrivalCV returns the empirical coefficient of variation
// (stddev/mean) of the interarrival times of a sorted call sequence.
// Poisson traffic measures ≈ 1; bursty traffic exceeds it.
func InterarrivalCV(calls []Call) float64 {
	if len(calls) < 3 {
		return 0
	}
	n := len(calls) - 1
	var sum float64
	for i := 1; i < len(calls); i++ {
		sum += calls[i].Arrive - calls[i-1].Arrive
	}
	mean := sum / float64(n)
	if mean <= 0 {
		return 0
	}
	var ss float64
	for i := 1; i < len(calls); i++ {
		d := calls[i].Arrive - calls[i-1].Arrive - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(n)) / mean
}

// MixEntry is one traffic slice of a multi-tenant workload: calls
// assigned to it carry the class and tenant labels, drawn with
// probability Weight / ΣWeight.
type MixEntry struct {
	Class  string
	Tenant string
	Weight float64
}

// ApplyMix stamps each call with a (class, tenant) drawn from the
// weighted mix, deterministically under seed. The draw is independent
// of the arrival process so burst structure and tenant identity are
// uncorrelated (every tenant sees the same bursts, which is what makes
// per-tier reject ratios comparable).
func ApplyMix(calls []Call, mix []MixEntry, seed int64) error {
	if len(mix) == 0 {
		return fmt.Errorf("workload: empty mix")
	}
	total := 0.0
	for i, m := range mix {
		if m.Weight <= 0 || math.IsNaN(m.Weight) || math.IsInf(m.Weight, 0) {
			return fmt.Errorf("workload: mix[%d] weight %g must be positive and finite", i, m.Weight)
		}
		if m.Class == "" {
			return fmt.Errorf("workload: mix[%d] has no class", i)
		}
		total += m.Weight
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range calls {
		r := rng.Float64() * total
		k := 0
		for k < len(mix)-1 && r >= mix[k].Weight {
			r -= mix[k].Weight
			k++
		}
		calls[i].Class = mix[k].Class
		calls[i].Tenant = mix[k].Tenant
	}
	return nil
}

// TierAdmitter is the class- and tenant-aware admission interface the
// tiered replay drives; admission.Controller satisfies it via a tiny
// adapter in the caller.
type TierAdmitter interface {
	// TryAdmitTier attempts to admit a call for (class, tenant) and
	// returns an opaque handle.
	TryAdmitTier(class, tenant string, src, dst int) (handle uint64, ok bool)
	// Release tears the call down.
	Release(handle uint64)
}

// TierKey is the stats bucket for one call: the tenant when the mix
// set one, else the class — the axis admission policies discriminate
// on.
func (c Call) TierKey() string {
	if c.Tenant != "" {
		return c.Tenant
	}
	if c.Class != "" {
		return c.Class
	}
	return "default"
}

// Clocked is an optional TierAdmitter extension: when implemented,
// ReplayTiered calls Advance with each event's timestamp (seconds
// from the window start) before delivering it, so virtual-time
// policies — token-bucket refill, sampled load signals — march with
// the schedule instead of the wall clock.
type Clocked interface {
	Advance(now float64)
}

// ReplayTiered pushes the event schedule through a tier-aware admitter
// and returns overall blocking statistics plus a per-tier breakdown
// keyed by TierKey. Departure events for blocked calls are skipped,
// and calls still holding at the horizon are drained, exactly as in
// Replay.
func ReplayTiered(events []Event, calls []Call, adm TierAdmitter) (BlockingStats, map[string]*BlockingStats) {
	var st BlockingStats
	tiers := make(map[string]*BlockingStats)
	handles := make(map[int]uint64, len(calls))
	clk, _ := adm.(Clocked)
	for _, ev := range events {
		if clk != nil {
			clk.Advance(ev.At)
		}
		c := calls[ev.Call]
		if ev.Start {
			key := c.TierKey()
			ts := tiers[key]
			if ts == nil {
				ts = &BlockingStats{}
				tiers[key] = ts
			}
			st.Offered++
			ts.Offered++
			if h, ok := adm.TryAdmitTier(c.Class, c.Tenant, c.Src, c.Dst); ok {
				st.Admitted++
				ts.Admitted++
				handles[ev.Call] = h
			} else {
				st.Blocked++
				ts.Blocked++
			}
			continue
		}
		if h, ok := handles[ev.Call]; ok {
			adm.Release(h)
			delete(handles, ev.Call)
		}
	}
	// Deterministic drain order keeps replays byte-identical run to run.
	rest := make([]int, 0, len(handles))
	for i := range handles {
		rest = append(rest, i)
	}
	sort.Ints(rest)
	for _, i := range rest {
		adm.Release(handles[i])
	}
	return st, tiers
}
