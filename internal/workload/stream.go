package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Source is a streaming call generator: Next yields arrivals one at a
// time in nondecreasing arrival order until the horizon, so a consumer
// can replay millions of lifetimes without materializing the whole
// call slice. Sources take an explicit *rand.Rand — the caller owns
// the run's seed discipline, nothing touches global rand — and draw in
// exactly the same order as the batch Generate methods, so a source
// and a generator built from the same seed produce identical streams
// (property-tested in stream_test.go).
type Source interface {
	// Next returns the next call, or ok=false once the horizon is
	// reached. After the first false, every call returns false.
	Next() (Call, bool)
	// OfferedLoad returns the long-run offered load in Erlangs.
	OfferedLoad() float64
}

// validatePairs is the shared pair-set check of every generator.
func validatePairs(pairs [][2]int) error {
	if len(pairs) == 0 {
		return fmt.Errorf("workload: no pairs")
	}
	for _, p := range pairs {
		if p[0] == p[1] {
			return fmt.Errorf("workload: self pair %v", p)
		}
	}
	return nil
}

// PoissonSource streams the Poisson call process of Generator.
// Construct with NewPoissonSource.
type PoissonSource struct {
	rng         *rand.Rand
	rate        float64
	meanHolding float64
	pairs       [][2]int
	horizon     float64
	t           float64
	done        bool
}

// NewPoissonSource validates the parameters and prepares the stream.
// The rng is used for every stochastic choice and is not reseeded.
func NewPoissonSource(arrivalRate, meanHolding float64, pairs [][2]int, horizon float64, rng *rand.Rand) (*PoissonSource, error) {
	if arrivalRate <= 0 || math.IsNaN(arrivalRate) || math.IsInf(arrivalRate, 0) {
		return nil, fmt.Errorf("workload: invalid arrival rate %g", arrivalRate)
	}
	if meanHolding <= 0 || math.IsNaN(meanHolding) || math.IsInf(meanHolding, 0) {
		return nil, fmt.Errorf("workload: invalid mean holding %g", meanHolding)
	}
	if horizon <= 0 || math.IsNaN(horizon) || math.IsInf(horizon, 0) {
		return nil, fmt.Errorf("workload: invalid horizon %g", horizon)
	}
	if err := validatePairs(pairs); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: nil rng")
	}
	return &PoissonSource{
		rng: rng, rate: arrivalRate, meanHolding: meanHolding,
		pairs: append([][2]int(nil), pairs...), horizon: horizon,
	}, nil
}

// OfferedLoad returns the offered load in Erlangs (λ/μ).
func (s *PoissonSource) OfferedLoad() float64 { return s.rate * s.meanHolding }

// Next returns the next arrival, mirroring Generator.Generate draw for
// draw: interarrival, pair, holding.
func (s *PoissonSource) Next() (Call, bool) {
	if s.done {
		return Call{}, false
	}
	s.t += s.rng.ExpFloat64() / s.rate
	if s.t >= s.horizon {
		s.done = true
		return Call{}, false
	}
	p := s.pairs[s.rng.Intn(len(s.pairs))]
	return Call{
		Arrive:  s.t,
		Holding: s.rng.ExpFloat64() * s.meanHolding,
		Src:     p[0],
		Dst:     p[1],
	}, true
}

// MMPPSource streams the two-state MMPP/on-off call process of
// MMPPGenerator. Construct with NewMMPPSource.
type MMPPSource struct {
	rng         *rand.Rand
	cfg         MMPPConfig
	meanHolding float64
	pairs       [][2]int
	horizon     float64

	t        float64
	high     bool
	stateEnd float64
	started  bool
	done     bool
}

// NewMMPPSource validates the parameters and prepares the stream. The
// modulating chain starts in its stationary distribution, exactly as
// MMPPGenerator.Generate does.
func NewMMPPSource(cfg MMPPConfig, meanHolding float64, pairs [][2]int, horizon float64, rng *rand.Rand) (*MMPPSource, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if meanHolding <= 0 || math.IsNaN(meanHolding) || math.IsInf(meanHolding, 0) {
		return nil, fmt.Errorf("workload: invalid mean holding %g", meanHolding)
	}
	if horizon <= 0 || math.IsNaN(horizon) || math.IsInf(horizon, 0) {
		return nil, fmt.Errorf("workload: invalid horizon %g", horizon)
	}
	if err := validatePairs(pairs); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: nil rng")
	}
	return &MMPPSource{
		rng: rng, cfg: cfg, meanHolding: meanHolding,
		pairs: append([][2]int(nil), pairs...), horizon: horizon,
	}, nil
}

// OfferedLoad returns the long-run offered load in Erlangs (λ̄/μ).
func (s *MMPPSource) OfferedLoad() float64 { return s.cfg.MeanRate() * s.meanHolding }

// Next returns the next arrival, rolling the modulating chain forward
// between candidate arrivals with the same memorylessness argument as
// the batch generator (identical draw order, identical stream).
func (s *MMPPSource) Next() (Call, bool) {
	if s.done {
		return Call{}, false
	}
	if !s.started {
		s.started = true
		s.high = s.rng.Float64() < s.cfg.probHigh()
		s.stateEnd = s.t + s.sojourn()
	}
	for s.t < s.horizon {
		rate := s.cfg.LowRate
		if s.high {
			rate = s.cfg.HighRate
		}
		var next float64
		if rate > 0 {
			next = s.t + s.rng.ExpFloat64()/rate
		} else {
			next = math.Inf(1) // silent state: jump straight to the flip
		}
		if next >= s.stateEnd {
			s.t = s.stateEnd
			s.high = !s.high
			s.stateEnd = s.t + s.sojourn()
			continue
		}
		s.t = next
		if s.t >= s.horizon {
			break
		}
		p := s.pairs[s.rng.Intn(len(s.pairs))]
		return Call{
			Arrive:  s.t,
			Holding: s.rng.ExpFloat64() * s.meanHolding,
			Src:     p[0],
			Dst:     p[1],
		}, true
	}
	s.done = true
	return Call{}, false
}

// sojourn draws one state-holding time for the current state.
func (s *MMPPSource) sojourn() float64 {
	if s.high {
		return s.rng.ExpFloat64() * s.cfg.MeanHigh
	}
	return s.rng.ExpFloat64() * s.cfg.MeanLow
}
