package workload

import (
	"math"
	"testing"
	"testing/quick"

	"ubac/internal/admission"
	"ubac/internal/delay"
	"ubac/internal/routing"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

func TestNewGeneratorValidation(t *testing.T) {
	pairs := [][2]int{{0, 1}}
	cases := []struct {
		rate, hold float64
		pairs      [][2]int
	}{
		{0, 1, pairs},
		{-1, 1, pairs},
		{math.NaN(), 1, pairs},
		{1, 0, pairs},
		{1, math.Inf(1), pairs},
		{1, 1, nil},
		{1, 1, [][2]int{{2, 2}}},
	}
	for i, c := range cases {
		if _, err := NewGenerator(c.rate, c.hold, c.pairs, 1); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGenerateStatistics(t *testing.T) {
	g, err := NewGenerator(100, 0.5, [][2]int{{0, 1}, {1, 0}, {0, 2}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.OfferedLoad() != 50 {
		t.Errorf("offered load = %g, want 50 Erlangs", g.OfferedLoad())
	}
	const horizon = 100.0
	calls := g.Generate(horizon)
	// Poisson(100/s · 100 s): expect ~10000 ± a few hundred.
	if len(calls) < 9000 || len(calls) > 11000 {
		t.Fatalf("generated %d calls, want ~10000", len(calls))
	}
	var sumHold float64
	prev := 0.0
	for _, c := range calls {
		if c.Arrive < prev {
			t.Fatal("calls not sorted by arrival")
		}
		prev = c.Arrive
		if c.Arrive >= horizon || c.Holding <= 0 {
			t.Fatalf("bad call %+v", c)
		}
		if c.Src == c.Dst {
			t.Fatalf("self call %+v", c)
		}
		sumHold += c.Holding
	}
	meanHold := sumHold / float64(len(calls))
	if math.Abs(meanHold-0.5) > 0.05 {
		t.Errorf("mean holding = %g, want ~0.5", meanHold)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	mk := func() []Call {
		g, err := NewGenerator(10, 1, [][2]int{{0, 1}}, 99)
		if err != nil {
			t.Fatal(err)
		}
		return g.Generate(10)
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d differs", i)
		}
	}
}

func TestGenerateEmptyHorizon(t *testing.T) {
	g, err := NewGenerator(10, 1, [][2]int{{0, 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if calls := g.Generate(0); calls != nil {
		t.Error("non-nil calls for zero horizon")
	}
}

func TestScheduleOrdering(t *testing.T) {
	calls := []Call{
		{Arrive: 1, Holding: 2, Src: 0, Dst: 1}, // departs at 3
		{Arrive: 3, Holding: 1, Src: 1, Dst: 0}, // arrives exactly at 3
		{Arrive: 0.5, Holding: 10, Src: 0, Dst: 1},
	}
	evs := Schedule(calls)
	if len(evs) != 6 {
		t.Fatalf("events = %d", len(evs))
	}
	prev := 0.0
	for _, e := range evs {
		if e.At < prev {
			t.Fatal("events out of order")
		}
		prev = e.At
	}
	// At t=3 the departure of call 0 must precede the arrival of call 1.
	for i, e := range evs {
		if e.At == 3 && e.Start {
			if i == 0 || evs[i-1].At != 3 || evs[i-1].Start {
				t.Error("departure did not precede same-time arrival")
			}
		}
	}
}

func TestErlangBKnownValues(t *testing.T) {
	// Classic switchboard numbers: B(a=10 E, c=10) ≈ 0.2146,
	// B(a=10, c=15) ≈ 0.0365, B(a=1, c=1) = 0.5.
	cases := []struct {
		a    float64
		c    int
		want float64
	}{
		{10, 10, 0.2146},
		{10, 15, 0.0365},
		{1, 1, 0.5},
		{0, 5, 0},
		{5, 0, 1},
	}
	for _, tc := range cases {
		got, err := ErlangB(tc.a, tc.c)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 5e-4 {
			t.Errorf("ErlangB(%g, %d) = %.4f, want %.4f", tc.a, tc.c, got, tc.want)
		}
	}
}

func TestErlangBValidation(t *testing.T) {
	if _, err := ErlangB(-1, 5); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := ErlangB(math.NaN(), 5); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := ErlangB(1, -1); err == nil {
		t.Error("negative circuits accepted")
	}
}

func TestErlangBCapacityRoundTrip(t *testing.T) {
	c, err := ErlangBCapacity(10, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Known: 10 Erlangs at 1% blocking needs 18 circuits.
	if c != 18 {
		t.Errorf("capacity = %d, want 18", c)
	}
	bAt, _ := ErlangB(10, c)
	bBelow, _ := ErlangB(10, c-1)
	if bAt > 0.01 || bBelow <= 0.01 {
		t.Errorf("capacity not minimal: B(%d)=%g B(%d)=%g", c, bAt, c-1, bBelow)
	}
	if _, err := ErlangBCapacity(10, 0); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := ErlangBCapacity(-1, 0.01); err == nil {
		t.Error("negative load accepted")
	}
}

// Property: Erlang-B is increasing in offered load and decreasing in
// circuit count.
func TestErlangBMonotoneProperty(t *testing.T) {
	f := func(loadCentiE uint16, circuits uint8) bool {
		a := float64(loadCentiE)/100 + 0.01
		c := int(circuits%64) + 1
		b1, err := ErlangB(a, c)
		if err != nil {
			return false
		}
		b2, err := ErlangB(a*1.5, c)
		if err != nil {
			return false
		}
		b3, err := ErlangB(a, c+1)
		if err != nil {
			return false
		}
		return b2 >= b1-1e-12 && b3 <= b1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// ctrlAdmitter adapts admission.Controller to the Admitter interface.
type ctrlAdmitter struct {
	ctrl  *admission.Controller
	class string
}

func (a ctrlAdmitter) TryAdmit(src, dst int) (uint64, bool) {
	id, err := a.ctrl.Admit(a.class, src, dst)
	return uint64(id), err == nil
}

func (a ctrlAdmitter) Release(h uint64) {
	_ = a.ctrl.Teardown(admission.FlowID(h))
}

// Replaying a Poisson load against the real admission controller on a
// single bottleneck path must reproduce Erlang-B blocking to within
// simulation noise — the end-to-end check that the utilization-test
// controller behaves like a c-circuit loss system.
func TestReplayMatchesErlangB(t *testing.T) {
	net, err := topology.Line(3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	m := delay.NewModel(net)
	voice := traffic.Voice()
	const alpha = 0.01 // capacity: 0.01·100e6/32e3 = 31 circuits
	set, _, err := routing.SP{}.Select(m, routing.Request{Class: voice, Alpha: alpha})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := admission.NewController(net,
		[]admission.ClassConfig{{Class: voice, Alpha: alpha, Routes: set}},
		admission.AtomicLedger)
	if err != nil {
		t.Fatal(err)
	}
	circuits, err := ctrl.Headroom("voice", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if circuits != 31 {
		t.Fatalf("circuits = %d, want 31", circuits)
	}

	offered := 28.0 // Erlangs, close to capacity so blocking is visible
	g, err := NewGenerator(offered/2.0, 2.0, [][2]int{{0, 2}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	calls := g.Generate(4000)
	st := Replay(Schedule(calls), calls, ctrlAdmitter{ctrl: ctrl, class: "voice"})
	if st.Offered != len(calls) || st.Admitted+st.Blocked != st.Offered {
		t.Fatalf("accounting broken: %+v", st)
	}
	want, err := ErlangB(offered, circuits)
	if err != nil {
		t.Fatal(err)
	}
	got := st.Blocking()
	if math.Abs(got-want) > 0.02 {
		t.Errorf("measured blocking %.4f vs Erlang-B %.4f", got, want)
	}
	// Controller must be fully drained.
	if ctrl.Stats().Active != 0 {
		t.Errorf("replay leaked %d flows", ctrl.Stats().Active)
	}
}

func BenchmarkGenerate(b *testing.B) {
	g, err := NewGenerator(1000, 1, [][2]int{{0, 1}, {1, 2}}, 5)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		g.Generate(10)
	}
}

func BenchmarkErlangB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ErlangB(500, 600); err != nil {
			b.Fatal(err)
		}
	}
}
