// Package workload generates call-level workloads for exercising the
// run-time admission controller: Poisson call arrivals with
// exponentially distributed holding times over a configurable pair
// distribution, plus the Erlang-B reference model used to sanity-check
// measured blocking probabilities.
//
// The paper's evaluation stops at the achievable utilization level; this
// package supplies the call-churn layer a deployment study needs on top
// of it (offered load in Erlangs, measured vs. analytic blocking).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Call is one generated call: it arrives at Arrive, lasts Holding
// seconds, and connects Src to Dst. Class and Tenant are optional
// labels stamped by ApplyMix for multi-tenant workloads; plain
// generators leave them empty.
type Call struct {
	Arrive   float64
	Holding  float64
	Src, Dst int
	Class    string
	Tenant   string
}

// Generator produces a Poisson call process. The zero value is not
// usable; construct with NewGenerator.
type Generator struct {
	rng *rand.Rand
	// ArrivalRate is the aggregate call arrival rate λ in calls/second.
	ArrivalRate float64
	// MeanHolding is the mean call duration 1/μ in seconds.
	MeanHolding float64
	// Pairs is the set of (src, dst) pairs calls are drawn from,
	// uniformly.
	Pairs [][2]int
}

// NewGenerator validates the parameters and seeds the process.
func NewGenerator(arrivalRate, meanHolding float64, pairs [][2]int, seed int64) (*Generator, error) {
	if arrivalRate <= 0 || math.IsNaN(arrivalRate) || math.IsInf(arrivalRate, 0) {
		return nil, fmt.Errorf("workload: invalid arrival rate %g", arrivalRate)
	}
	if meanHolding <= 0 || math.IsNaN(meanHolding) || math.IsInf(meanHolding, 0) {
		return nil, fmt.Errorf("workload: invalid mean holding %g", meanHolding)
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("workload: no pairs")
	}
	for _, p := range pairs {
		if p[0] == p[1] {
			return nil, fmt.Errorf("workload: self pair %v", p)
		}
	}
	return &Generator{
		rng:         rand.New(rand.NewSource(seed)),
		ArrivalRate: arrivalRate,
		MeanHolding: meanHolding,
		Pairs:       append([][2]int(nil), pairs...),
	}, nil
}

// OfferedLoad returns the offered load in Erlangs (λ/μ) across all
// pairs.
func (g *Generator) OfferedLoad() float64 { return g.ArrivalRate * g.MeanHolding }

// Generate produces all calls arriving in [0, horizon), sorted by
// arrival time.
func (g *Generator) Generate(horizon float64) []Call {
	if horizon <= 0 {
		return nil
	}
	var calls []Call
	t := 0.0
	for {
		t += g.rng.ExpFloat64() / g.ArrivalRate
		if t >= horizon {
			break
		}
		p := g.Pairs[g.rng.Intn(len(g.Pairs))]
		calls = append(calls, Call{
			Arrive:  t,
			Holding: g.rng.ExpFloat64() * g.MeanHolding,
			Src:     p[0],
			Dst:     p[1],
		})
	}
	return calls
}

// Event is a call arrival or departure in a replayable schedule.
type Event struct {
	At    float64
	Start bool // true = arrival, false = departure
	Call  int  // index into the call slice
}

// Schedule flattens calls into a time-ordered arrival/departure event
// list for replay against an admission controller.
func Schedule(calls []Call) []Event {
	evs := make([]Event, 0, 2*len(calls))
	for i, c := range calls {
		evs = append(evs, Event{At: c.Arrive, Start: true, Call: i})
		evs = append(evs, Event{At: c.Arrive + c.Holding, Start: false, Call: i})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].At != evs[b].At {
			return evs[a].At < evs[b].At
		}
		// Departures before arrivals at identical timestamps frees
		// capacity first, matching real signaling.
		return !evs[a].Start && evs[b].Start
	})
	return evs
}

// ErlangB returns the Erlang-B blocking probability for offered load a
// (Erlangs) on c circuits, computed with the standard stable recursion
// B(0)=1, B(k) = a·B(k−1) / (k + a·B(k−1)).
func ErlangB(a float64, c int) (float64, error) {
	if a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
		return 0, fmt.Errorf("workload: invalid offered load %g", a)
	}
	if c < 0 {
		return 0, fmt.Errorf("workload: negative circuit count %d", c)
	}
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b, nil
}

// ErlangBCapacity returns the smallest circuit count whose Erlang-B
// blocking does not exceed target for offered load a.
func ErlangBCapacity(a, target float64) (int, error) {
	if !(target > 0 && target < 1) {
		return 0, fmt.Errorf("workload: target blocking %g out of (0,1)", target)
	}
	if a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
		return 0, fmt.Errorf("workload: invalid offered load %g", a)
	}
	b := 1.0
	for k := 1; ; k++ {
		b = a * b / (float64(k) + a*b)
		if b <= target {
			return k, nil
		}
		if k > 1<<24 {
			return 0, fmt.Errorf("workload: capacity search overflow")
		}
	}
}

// BlockingStats accumulates measured admission outcomes.
type BlockingStats struct {
	Offered  int
	Admitted int
	Blocked  int
}

// Blocking returns the measured blocking probability.
func (s BlockingStats) Blocking() float64 {
	if s.Offered == 0 {
		return 0
	}
	return float64(s.Blocked) / float64(s.Offered)
}

// Admitter is the minimal admission interface the replay needs;
// admission.Controller satisfies it via a tiny adapter in the caller.
type Admitter interface {
	// TryAdmit attempts to admit a call and returns an opaque handle.
	TryAdmit(src, dst int) (handle uint64, ok bool)
	// Release tears the call down.
	Release(handle uint64)
}

// Replay pushes the event schedule through an admitter and returns the
// measured blocking statistics. Departure events for calls that were
// blocked (or never started) are skipped.
func Replay(events []Event, calls []Call, adm Admitter) BlockingStats {
	var st BlockingStats
	handles := make(map[int]uint64, len(calls))
	for _, ev := range events {
		if ev.Start {
			st.Offered++
			if h, ok := adm.TryAdmit(calls[ev.Call].Src, calls[ev.Call].Dst); ok {
				st.Admitted++
				handles[ev.Call] = h
			} else {
				st.Blocked++
			}
			continue
		}
		if h, ok := handles[ev.Call]; ok {
			adm.Release(h)
			delete(handles, ev.Call)
		}
	}
	// Drain calls still holding at the horizon.
	for _, h := range handles {
		adm.Release(h)
	}
	return st
}
