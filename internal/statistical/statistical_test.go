package statistical

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// voipSource is talkspurt voice: 32 kb/s peak, ~40% activity.
func voipSource() Source {
	return Source{Peak: 32e3, Mean: 12.8e3}
}

func TestSourceValidate(t *testing.T) {
	if err := voipSource().Validate(); err != nil {
		t.Errorf("valid source rejected: %v", err)
	}
	bad := []Source{
		{Peak: 0, Mean: 1},
		{Peak: -1, Mean: 1},
		{Peak: math.Inf(1), Mean: 1},
		{Peak: 10, Mean: 0},
		{Peak: 10, Mean: 11},
		{Peak: 10, Mean: math.NaN()},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
	if a := voipSource().Activity(); math.Abs(a-0.4) > 1e-12 {
		t.Errorf("activity = %g", a)
	}
}

func TestDeterministicCount(t *testing.T) {
	// 30 Mb/s budget at 32 kb/s peak: 937 flows, the Table 1 arithmetic.
	n, err := DeterministicCount(voipSource(), 30e6)
	if err != nil {
		t.Fatal(err)
	}
	if n != 937 {
		t.Errorf("deterministic count = %d, want 937", n)
	}
	if _, err := DeterministicCount(voipSource(), 0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := DeterministicCount(Source{}, 1); err == nil {
		t.Error("invalid source accepted")
	}
}

func TestOverflowEdgeCases(t *testing.T) {
	src := voipSource()
	for _, f := range []func(Source, int, float64) (float64, error){HoeffdingOverflow, ChernoffOverflow} {
		if p, err := f(src, 0, 1e6); err != nil || p != 0 {
			t.Errorf("n=0: p=%g err=%v", p, err)
		}
		if _, err := f(src, -1, 1e6); err == nil {
			t.Error("negative n accepted")
		}
		// Vacuous: mean load at/above budget.
		if p, err := f(src, 1000, 1000*src.Mean); err != nil || p != 1 {
			t.Errorf("vacuous: p=%g err=%v", p, err)
		}
	}
	// Chernoff knows overflow is impossible below the all-on rate.
	if p, err := ChernoffOverflow(src, 10, 10*src.Peak); err != nil || p != 0 {
		t.Errorf("all-on: p=%g err=%v", p, err)
	}
}

func TestCountsOrdering(t *testing.T) {
	// Deterministic <= Hoeffding <= Chernoff for on-off sources: the
	// multiplexing gain grows as the bound uses more distribution
	// information.
	src := voipSource()
	budget := 30e6
	eps := 1e-6
	det, err := DeterministicCount(src, budget)
	if err != nil {
		t.Fatal(err)
	}
	hoeff, err := HoeffdingCount(src, budget, eps)
	if err != nil {
		t.Fatal(err)
	}
	cher, err := ChernoffCount(src, budget, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !(det <= hoeff && hoeff <= cher) {
		t.Errorf("ordering violated: det=%d hoeff=%d chernoff=%d", det, hoeff, cher)
	}
	if cher <= det {
		t.Errorf("no multiplexing gain: det=%d chernoff=%d", det, cher)
	}
	// Sanity: gain is bounded by 1/activity (cannot beat mean-rate
	// allocation).
	if float64(cher) > budget/src.Mean {
		t.Errorf("chernoff %d beats mean-rate allocation %g", cher, budget/src.Mean)
	}
}

func TestCountsCollapseToDeterministicAtTinyEps(t *testing.T) {
	src := voipSource()
	budget := 3e6
	det, _ := DeterministicCount(src, budget)
	cher, err := ChernoffCount(src, budget, 1e-300)
	if err != nil {
		t.Fatal(err)
	}
	// At astronomically small eps the statistical count approaches (but
	// never drops below a fraction of) the deterministic count.
	if cher < det/2 || cher > int(budget/src.Mean) {
		t.Errorf("tiny-eps chernoff = %d, det = %d", cher, det)
	}
}

func TestCountRespectsEps(t *testing.T) {
	// At the returned count the bound holds; at count+1 it fails.
	src := voipSource()
	budget := 10e6
	eps := 1e-4
	for name, count := range map[string]func(Source, float64, float64) (int, error){
		"hoeffding": HoeffdingCount,
		"chernoff":  ChernoffCount,
	} {
		n, err := count(src, budget, eps)
		if err != nil {
			t.Fatal(err)
		}
		var over func(Source, int, float64) (float64, error)
		if name == "hoeffding" {
			over = HoeffdingOverflow
		} else {
			over = ChernoffOverflow
		}
		pAt, err := over(src, n, budget)
		if err != nil {
			t.Fatal(err)
		}
		pNext, err := over(src, n+1, budget)
		if err != nil {
			t.Fatal(err)
		}
		if pAt > eps {
			t.Errorf("%s: overflow %g at count %d exceeds eps", name, pAt, n)
		}
		if pNext <= eps {
			t.Errorf("%s: count %d not maximal (next overflow %g)", name, n, pNext)
		}
	}
}

func TestCountValidation(t *testing.T) {
	src := voipSource()
	for _, eps := range []float64{0, 1, -0.1, math.NaN()} {
		if _, err := HoeffdingCount(src, 1e6, eps); err == nil {
			t.Errorf("hoeffding eps=%g accepted", eps)
		}
		if _, err := ChernoffCount(src, 1e6, eps); err == nil {
			t.Errorf("chernoff eps=%g accepted", eps)
		}
	}
	if _, err := HoeffdingCount(src, -1, 0.01); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := ChernoffCount(src, math.Inf(1), 0.01); err == nil {
		t.Error("inf budget accepted")
	}
}

// Monte Carlo: the admitted population's measured overflow probability
// must not exceed eps (the bounds are conservative).
func TestMonteCarloRespectsTarget(t *testing.T) {
	src := voipSource()
	budget := 5e6
	eps := 0.01
	n, err := ChernoffCount(src, budget, eps)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	a := src.Activity()
	const trials = 200000
	overflow := 0
	for trial := 0; trial < trials; trial++ {
		on := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < a {
				on++
			}
		}
		if float64(on)*src.Peak > budget {
			overflow++
		}
	}
	measured := float64(overflow) / trials
	if measured > eps {
		t.Errorf("measured overflow %g exceeds target %g at n=%d", measured, eps, n)
	}
	t.Logf("n=%d: measured overflow %.5f vs target %.2f (bound conservatism)", n, measured, eps)
}

// Property: overflow bounds are monotone in n and antitone in budget,
// and Chernoff never exceeds Hoeffding for on-off sources.
func TestOverflowMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := Source{Peak: 1e3 + rng.Float64()*1e6}
		src.Mean = src.Peak * (0.05 + 0.9*rng.Float64())
		n := 1 + rng.Intn(2000)
		budget := float64(n) * src.Mean * (1.05 + rng.Float64())
		h1, err := HoeffdingOverflow(src, n, budget)
		if err != nil {
			return false
		}
		h2, err := HoeffdingOverflow(src, n+10, budget)
		if err != nil {
			return false
		}
		h3, err := HoeffdingOverflow(src, n, budget*1.2)
		if err != nil {
			return false
		}
		if h2 < h1-1e-12 || h3 > h1+1e-12 {
			return false
		}
		c1, err := ChernoffOverflow(src, n, budget)
		if err != nil {
			return false
		}
		return c1 <= h1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPlan(t *testing.T) {
	p, err := NewPlan(voipSource(), 30e6, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if p.Deterministic != 937 {
		t.Errorf("deterministic = %d", p.Deterministic)
	}
	if p.Gain() <= 1 {
		t.Errorf("gain = %g, want > 1", p.Gain())
	}
	if p.EffectiveRate >= p.Source.Peak || p.EffectiveRate <= p.Source.Mean {
		t.Errorf("effective rate %g outside (mean, peak)", p.EffectiveRate)
	}
	// Effective rate reproduces the Chernoff count through the standard
	// utilization test.
	if got := int(p.Budget / p.EffectiveRate); got != p.Chernoff {
		t.Errorf("budget/effective = %d, want %d", got, p.Chernoff)
	}
	if _, err := NewPlan(Source{}, 1e6, 0.01); err == nil {
		t.Error("invalid source accepted")
	}
	if _, err := NewPlan(voipSource(), 1e6, 0); err == nil {
		t.Error("invalid eps accepted")
	}
}

func TestPlanGainDegenerate(t *testing.T) {
	// Budget below one peak: deterministic count 0, gain defined as 1.
	p, err := NewPlan(voipSource(), 10e3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Deterministic != 0 || p.Gain() != 1 {
		t.Errorf("degenerate plan: %+v gain=%g", p, p.Gain())
	}
}

func BenchmarkChernoffCount(b *testing.B) {
	src := voipSource()
	for i := 0; i < b.N; i++ {
		if _, err := ChernoffCount(src, 30e6, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHoeffdingCount(b *testing.B) {
	src := voipSource()
	for i := 0; i < b.N; i++ {
		if _, err := HoeffdingCount(src, 30e6, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
}

// The Chernoff bound must dominate the exact binomial tail for on-off
// sources (it is a bound, not an estimate): P(Bin(n, a)·peak > budget).
func TestChernoffDominatesExactBinomial(t *testing.T) {
	src := Source{Peak: 1000, Mean: 300} // activity 0.3
	a := src.Activity()
	binomTail := func(n, k int) float64 {
		// P(X > k) for X ~ Bin(n, a), exact via logs.
		logC := 0.0
		p := 0.0
		for i := 0; i <= n; i++ {
			if i > k {
				p += math.Exp(logC + float64(i)*math.Log(a) + float64(n-i)*math.Log(1-a))
			}
			logC += math.Log(float64(n-i)) - math.Log(float64(i+1))
		}
		return p
	}
	for _, n := range []int{10, 25, 50} {
		for _, budgetFlows := range []int{n / 2, 2 * n / 3, n - 2} {
			budget := float64(budgetFlows) * src.Peak
			bound, err := ChernoffOverflow(src, n, budget)
			if err != nil {
				t.Fatal(err)
			}
			exact := binomTail(n, budgetFlows)
			if bound < exact-1e-9 {
				t.Errorf("n=%d budget=%d: Chernoff %g below exact %g", n, budgetFlows, bound, exact)
			}
		}
	}
}
