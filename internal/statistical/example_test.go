package statistical_test

import (
	"fmt"

	"ubac/internal/statistical"
)

// Talkspurt voice over a verified 30 Mb/s budget: how many more calls
// does statistical admission buy at a 10^-6 overflow target?
func ExampleNewPlan() {
	plan, err := statistical.NewPlan(
		statistical.Source{Peak: 32e3, Mean: 12.8e3}, // 40% activity
		30e6, // verified alpha·C
		1e-6, // overflow probability target
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("deterministic=%d chernoff=%d gain=%.2fx\n",
		plan.Deterministic, plan.Chernoff, plan.Gain())
	// Output: deterministic=937 chernoff=2050 gain=2.19x
}
