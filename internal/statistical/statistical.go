// Package statistical implements the extension the paper's conclusion
// (Section 7) leaves as future work: statistical rather than
// deterministic guarantees. "The quality of IP telephony ... would not
// suffer from the underlying system providing high-quality statistical
// guarantees instead of deterministic guarantees."
//
// The deterministic methodology verifies deadlines under the assumption
// that every admitted flow simultaneously sends at its policed rate ρ,
// so a server admits at most αC/ρ flows. Real variable-bit-rate sources
// (talkspurt voice, VBR video) transmit at ρ only a fraction of the
// time. This package computes how many such flows can share the same
// verified bandwidth budget αC while keeping the probability that their
// instantaneous aggregate rate exceeds the budget below a target ε —
// the delay bound verified at configuration time then holds except
// during overload episodes of probability at most ε.
//
// Two admission rules are provided, both classical and both conservative
// (they bound, never estimate, the overflow probability):
//
//   - Hoeffding: P(Σrᵢ > αC) ≤ exp(−2(αC − n·m)²/(n·p²)) for n
//     independent sources with rates in [0, p] and mean m.
//   - Chernoff: exact large-deviations bound for on-off sources,
//     inf_s { n·ln(1 + a(e^{sp}−1)) − s·αC } ≤ ln ε, with activity
//     a = m/p, minimized numerically over s.
//
// Chernoff dominates Hoeffding for on-off sources (it uses the actual
// two-point distribution instead of only the range), which the tests
// assert. Both collapse to the deterministic count αC/p as ε → 0.
package statistical

import (
	"fmt"
	"math"
)

// Source models one variable-bit-rate flow as a stationary random rate:
// instantaneous transmission rate in [0, Peak] with long-run mean Mean.
// For the on-off interpretation, the activity factor is Mean/Peak.
type Source struct {
	Peak float64 // bits/second while transmitting (the policed ρ)
	Mean float64 // long-run average bits/second
}

// Validate checks the source parameters.
func (s Source) Validate() error {
	if s.Peak <= 0 || math.IsNaN(s.Peak) || math.IsInf(s.Peak, 0) {
		return fmt.Errorf("statistical: invalid peak %g", s.Peak)
	}
	if s.Mean <= 0 || s.Mean > s.Peak || math.IsNaN(s.Mean) {
		return fmt.Errorf("statistical: mean %g out of (0, peak=%g]", s.Mean, s.Peak)
	}
	return nil
}

// Activity returns the on-off activity factor Mean/Peak in (0, 1].
func (s Source) Activity() float64 { return s.Mean / s.Peak }

// DeterministicCount is the paper's deterministic admission limit for
// the budget: every flow counted at its peak (policed) rate.
func DeterministicCount(src Source, budget float64) (int, error) {
	if err := src.Validate(); err != nil {
		return 0, err
	}
	if budget <= 0 || math.IsNaN(budget) || math.IsInf(budget, 0) {
		return 0, fmt.Errorf("statistical: invalid budget %g", budget)
	}
	return int(budget / src.Peak), nil
}

// HoeffdingOverflow bounds P(aggregate rate of n sources > budget) via
// Hoeffding's inequality. It returns 1 when the bound is vacuous
// (n·mean ≥ budget).
func HoeffdingOverflow(src Source, n int, budget float64) (float64, error) {
	if err := src.Validate(); err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("statistical: negative flow count")
	}
	if n == 0 {
		return 0, nil
	}
	slack := budget - float64(n)*src.Mean
	if slack <= 0 {
		return 1, nil
	}
	return math.Exp(-2 * slack * slack / (float64(n) * src.Peak * src.Peak)), nil
}

// HoeffdingCount returns the largest n with HoeffdingOverflow ≤ eps.
func HoeffdingCount(src Source, budget, eps float64) (int, error) {
	if err := checkEps(eps); err != nil {
		return 0, err
	}
	if err := src.Validate(); err != nil {
		return 0, err
	}
	if budget <= 0 || math.IsNaN(budget) || math.IsInf(budget, 0) {
		return 0, fmt.Errorf("statistical: invalid budget %g", budget)
	}
	// Overflow is monotone in n; binary search an upper bracket first.
	hi := 1
	for {
		p, err := HoeffdingOverflow(src, hi, budget)
		if err != nil {
			return 0, err
		}
		if p > eps {
			break
		}
		hi *= 2
		if hi > 1<<40 {
			return 0, fmt.Errorf("statistical: count search overflow")
		}
	}
	lo := hi / 2 // lo admissible (or 0), hi not
	if hi == 1 {
		return 0, nil
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		p, err := HoeffdingOverflow(src, mid, budget)
		if err != nil {
			return 0, err
		}
		if p <= eps {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// ChernoffOverflow bounds P(aggregate rate of n on-off sources > budget)
// with the optimized Chernoff bound exp(inf_s n·lnM(s) − s·budget),
// M(s) = 1 + a(e^{s·p} − 1). Returns 1 when vacuous.
func ChernoffOverflow(src Source, n int, budget float64) (float64, error) {
	if err := src.Validate(); err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("statistical: negative flow count")
	}
	if n == 0 {
		return 0, nil
	}
	mean := float64(n) * src.Mean
	if mean >= budget {
		return 1, nil
	}
	if budget >= float64(n)*src.Peak {
		return 0, nil // cannot overflow: all-on stays within budget
	}
	a := src.Activity()
	exponent := func(s float64) float64 {
		return float64(n)*math.Log(1+a*(math.Exp(s*src.Peak)-1)) - s*budget
	}
	// The exponent is convex in s with minimum at the tilting point;
	// golden-section search on a bracketed interval. Scale s by 1/peak
	// to keep the argument of Exp tame.
	lo, hi := 0.0, 1.0/src.Peak
	for exponentDecreasing(exponent, hi) {
		hi *= 2
		if hi > 1e9/src.Peak {
			break
		}
	}
	const phi = 0.6180339887498949
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, f2 := exponent(x1), exponent(x2)
	for i := 0; i < 200 && hi-lo > 1e-12*hi; i++ {
		if f1 <= f2 {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = exponent(x1)
		} else {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = exponent(x2)
		}
	}
	v := math.Exp(math.Min(f1, f2))
	if v > 1 {
		v = 1
	}
	return v, nil
}

func exponentDecreasing(f func(float64) float64, at float64) bool {
	const h = 1e-6
	return f(at*(1+h)) < f(at)
}

// ChernoffCount returns the largest n with ChernoffOverflow ≤ eps.
func ChernoffCount(src Source, budget, eps float64) (int, error) {
	if err := checkEps(eps); err != nil {
		return 0, err
	}
	if err := src.Validate(); err != nil {
		return 0, err
	}
	if budget <= 0 || math.IsNaN(budget) || math.IsInf(budget, 0) {
		return 0, fmt.Errorf("statistical: invalid budget %g", budget)
	}
	hi := 1
	for {
		p, err := ChernoffOverflow(src, hi, budget)
		if err != nil {
			return 0, err
		}
		if p > eps {
			break
		}
		hi *= 2
		if hi > 1<<40 {
			return 0, fmt.Errorf("statistical: count search overflow")
		}
	}
	if hi == 1 {
		return 0, nil
	}
	lo := hi / 2
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		p, err := ChernoffOverflow(src, mid, budget)
		if err != nil {
			return 0, err
		}
		if p <= eps {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

func checkEps(eps float64) error {
	if !(eps > 0 && eps < 1) {
		return fmt.Errorf("statistical: eps %g out of (0,1)", eps)
	}
	return nil
}

// Plan summarizes the statistical admission design for one class on one
// verified bandwidth budget.
type Plan struct {
	Source Source
	Budget float64 // the verified αC in bits/second
	Eps    float64 // target overflow probability

	// Deterministic, Hoeffding and Chernoff are the per-server flow
	// count limits under the three rules.
	Deterministic, Hoeffding, Chernoff int
	// EffectiveRate is the per-flow bandwidth the Chernoff count
	// corresponds to (Budget/Chernoff); configuring the run-time
	// controller with this rate instead of the peak makes the standard
	// utilization test enforce the statistical limit with the same
	// O(path) mechanics.
	EffectiveRate float64
}

// NewPlan computes all three limits.
func NewPlan(src Source, budget, eps float64) (*Plan, error) {
	det, err := DeterministicCount(src, budget)
	if err != nil {
		return nil, err
	}
	hoeff, err := HoeffdingCount(src, budget, eps)
	if err != nil {
		return nil, err
	}
	cher, err := ChernoffCount(src, budget, eps)
	if err != nil {
		return nil, err
	}
	p := &Plan{Source: src, Budget: budget, Eps: eps,
		Deterministic: det, Hoeffding: hoeff, Chernoff: cher}
	if cher > 0 {
		p.EffectiveRate = budget / float64(cher)
	} else {
		p.EffectiveRate = src.Peak
	}
	return p, nil
}

// Gain returns the multiplexing gain of the Chernoff rule over
// deterministic admission (1 when no gain).
func (p *Plan) Gain() float64 {
	if p.Deterministic == 0 {
		return 1
	}
	g := float64(p.Chernoff) / float64(p.Deterministic)
	if g < 1 {
		return 1
	}
	return g
}
