// Package sched provides the packet scheduling disciplines used by the
// discrete-event simulator: the class-based static-priority scheduler the
// paper's forwarding module mandates (Section 4: "packets are transmitted
// according to their class priorities, and packets are served in FIFO
// order within a class"), plain FIFO, and class-based weighted fair
// queueing as a comparison substrate.
package sched

import "fmt"

// Packet is one simulated packet. Times are in seconds of simulation
// time; sizes in bits.
type Packet struct {
	ID    uint64
	Class int // priority index, 0 = highest
	Flow  int // flow index within the simulation
	Size  float64
	// Born is the packet's creation time at the source.
	Born float64
	// Enqueued is maintained by the scheduler: the arrival time at the
	// current server.
	Enqueued float64
	// Hop is the packet's current position in its route.
	Hop int
	// Wait accumulates the packet's queueing delay across hops. The
	// simulator owns it; schedulers never touch it. Keeping it on the
	// packet (instead of a side table keyed by ID) is what lets the
	// million-flow harness run without a per-packet map.
	Wait float64
}

// Scheduler is a work-conserving packet queue.
type Scheduler interface {
	// Enqueue adds a packet at time now.
	Enqueue(p *Packet, now float64)
	// Dequeue removes the next packet to transmit, or returns false if
	// the queue is empty.
	Dequeue(now float64) (*Packet, bool)
	// Len returns the number of queued packets.
	Len() int
}

// NewScheduler constructs the named discipline for the given number of
// classes. Recognized kinds: "priority", "fifo", "wfq", "drr" (weights
// double as DRR quanta in bits).
func NewScheduler(kind string, classes int, weights []float64) (Scheduler, error) {
	switch kind {
	case "priority":
		return NewStaticPriority(classes), nil
	case "fifo":
		return NewFIFO(), nil
	case "wfq":
		return NewWFQ(classes, weights)
	case "drr":
		return NewDRR(classes, weights)
	default:
		return nil, fmt.Errorf("sched: unknown scheduler %q", kind)
	}
}

// ring is a growable FIFO ring buffer of packets.
type ring struct {
	buf        []*Packet
	head, size int
}

func (r *ring) push(p *Packet) {
	if r.size == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.size)%len(r.buf)] = p
	r.size++
}

func (r *ring) pop() *Packet {
	if r.size == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.size--
	return p
}

func (r *ring) grow() {
	n := len(r.buf) * 2
	if n == 0 {
		n = 16
	}
	nb := make([]*Packet, n)
	for i := 0; i < r.size; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf, r.head = nb, 0
}

// StaticPriority serves the lowest class index first; FIFO within a
// class. This is the paper's forwarding discipline.
type StaticPriority struct {
	queues []ring
	n      int
}

// NewStaticPriority returns a static-priority scheduler for the given
// number of classes.
func NewStaticPriority(classes int) *StaticPriority {
	if classes < 1 {
		classes = 1
	}
	return &StaticPriority{queues: make([]ring, classes)}
}

// Enqueue implements Scheduler.
func (s *StaticPriority) Enqueue(p *Packet, now float64) {
	c := p.Class
	if c < 0 {
		c = 0
	}
	if c >= len(s.queues) {
		c = len(s.queues) - 1
	}
	p.Enqueued = now
	s.queues[c].push(p)
	s.n++
}

// Dequeue implements Scheduler.
func (s *StaticPriority) Dequeue(now float64) (*Packet, bool) {
	for c := range s.queues {
		if s.queues[c].size > 0 {
			s.n--
			return s.queues[c].pop(), true
		}
	}
	return nil, false
}

// Len implements Scheduler.
func (s *StaticPriority) Len() int { return s.n }

// FIFO serves packets strictly in arrival order, ignoring class.
type FIFO struct {
	q ring
}

// NewFIFO returns a FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Enqueue implements Scheduler.
func (f *FIFO) Enqueue(p *Packet, now float64) {
	p.Enqueued = now
	f.q.push(p)
}

// Dequeue implements Scheduler.
func (f *FIFO) Dequeue(now float64) (*Packet, bool) {
	if f.q.size == 0 {
		return nil, false
	}
	return f.q.pop(), true
}

// Len implements Scheduler.
func (f *FIFO) Len() int { return f.q.size }

// WFQ is class-based weighted fair queueing: each class holds a FIFO and
// packets finish in order of virtual finish time computed from the class
// weights (a packet-by-packet approximation of GPS over class
// aggregates).
type WFQ struct {
	queues  []ring
	weights []float64
	finish  []float64 // last assigned virtual finish time per class
	vtime   float64
	n       int
}

// NewWFQ returns a WFQ scheduler over the given class weights. Nil
// weights mean equal shares.
func NewWFQ(classes int, weights []float64) (*WFQ, error) {
	if classes < 1 {
		return nil, fmt.Errorf("sched: wfq needs >= 1 class")
	}
	w := weights
	if w == nil {
		w = make([]float64, classes)
		for i := range w {
			w[i] = 1
		}
	}
	if len(w) != classes {
		return nil, fmt.Errorf("sched: %d weights for %d classes", len(w), classes)
	}
	for i, x := range w {
		if x <= 0 {
			return nil, fmt.Errorf("sched: non-positive weight %g for class %d", x, i)
		}
	}
	return &WFQ{
		queues:  make([]ring, classes),
		weights: append([]float64(nil), w...),
		finish:  make([]float64, classes),
	}, nil
}

// Enqueue implements Scheduler. The virtual finish time of the packet is
// max(vtime, class finish) + size/weight.
func (w *WFQ) Enqueue(p *Packet, now float64) {
	c := p.Class
	if c < 0 {
		c = 0
	}
	if c >= len(w.queues) {
		c = len(w.queues) - 1
	}
	start := w.vtime
	if w.finish[c] > start {
		start = w.finish[c]
	}
	w.finish[c] = start + p.Size/w.weights[c]
	p.Enqueued = now
	w.queues[c].push(p)
	w.n++
}

// Dequeue implements Scheduler: pick the backlogged class whose head has
// the smallest virtual finish time. Heads within a class finish in FIFO
// order, so comparing the per-class head finish times reduces to
// comparing the earliest enqueue-assigned times; we track them per ring.
func (w *WFQ) Dequeue(now float64) (*Packet, bool) {
	// Recompute the head finish time of each backlogged class from the
	// class finish tracker: the head of class c has finish
	// finish[c] − (queued-1 packets' worth). For simplicity and
	// determinism we compare classes by the virtual finish of their
	// head packet computed incrementally below.
	best := -1
	bestFinish := 0.0
	for c := range w.queues {
		if w.queues[c].size == 0 {
			continue
		}
		head := w.queues[c].buf[w.queues[c].head]
		f := w.headFinish(c, head)
		if best == -1 || f < bestFinish {
			best, bestFinish = c, f
		}
	}
	if best == -1 {
		return nil, false
	}
	w.n--
	p := w.queues[best].pop()
	if bestFinish > w.vtime {
		w.vtime = bestFinish
	}
	return p, true
}

// headFinish approximates the head packet's virtual finish: the class
// tracker minus the sizes of the packets queued behind it.
func (w *WFQ) headFinish(c int, head *Packet) float64 {
	behind := 0.0
	q := &w.queues[c]
	for i := 1; i < q.size; i++ {
		behind += q.buf[(q.head+i)%len(q.buf)].Size
	}
	return w.finish[c] - behind/w.weights[c]
}

// Len implements Scheduler.
func (w *WFQ) Len() int { return w.n }

// DRR is class-based deficit round robin (Shreedhar & Varghese 1996):
// each backlogged class is visited in cyclic order and may send as many
// whole packets as its accumulated deficit (quantum per visit) allows —
// an O(1) approximation of fair queueing common in DiffServ hardware.
type DRR struct {
	queues  []ring
	quantum []float64
	deficit []float64
	cursor  int
	n       int
}

// NewDRR returns a DRR scheduler; quanta default to 1500 bytes per class
// when nil. A class's quantum must cover its largest packet or that
// packet can starve.
func NewDRR(classes int, quanta []float64) (*DRR, error) {
	if classes < 1 {
		return nil, fmt.Errorf("sched: drr needs >= 1 class")
	}
	q := quanta
	if q == nil {
		q = make([]float64, classes)
		for i := range q {
			q[i] = 12000 // 1500 bytes in bits
		}
	}
	if len(q) != classes {
		return nil, fmt.Errorf("sched: %d quanta for %d classes", len(q), classes)
	}
	for i, x := range q {
		if x <= 0 {
			return nil, fmt.Errorf("sched: non-positive quantum %g for class %d", x, i)
		}
	}
	return &DRR{
		queues:  make([]ring, classes),
		quantum: append([]float64(nil), q...),
		deficit: make([]float64, classes),
	}, nil
}

// Enqueue implements Scheduler.
func (d *DRR) Enqueue(p *Packet, now float64) {
	c := p.Class
	if c < 0 {
		c = 0
	}
	if c >= len(d.queues) {
		c = len(d.queues) - 1
	}
	p.Enqueued = now
	d.queues[c].push(p)
	d.n++
}

// Dequeue implements Scheduler: round-robin over backlogged classes,
// spending deficit.
func (d *DRR) Dequeue(now float64) (*Packet, bool) {
	if d.n == 0 {
		return nil, false
	}
	for spins := 0; spins < 2*len(d.queues)+1; spins++ {
		c := d.cursor
		q := &d.queues[c]
		if q.size == 0 {
			d.deficit[c] = 0
			d.cursor = (d.cursor + 1) % len(d.queues)
			continue
		}
		head := q.buf[q.head]
		if d.deficit[c] < head.Size {
			// Refill and move on; the class sends on a later visit.
			d.deficit[c] += d.quantum[c]
			d.cursor = (d.cursor + 1) % len(d.queues)
			continue
		}
		d.deficit[c] -= head.Size
		d.n--
		return q.pop(), true
	}
	// Quanta guarantee progress within two sweeps; reaching here means a
	// packet larger than its quantum. Serve it anyway (work conserving).
	for c := range d.queues {
		if d.queues[c].size > 0 {
			d.n--
			return d.queues[c].pop(), true
		}
	}
	return nil, false
}

// Len implements Scheduler.
func (d *DRR) Len() int { return d.n }
