package sched

import (
	"testing"
)

func pkt(id uint64, class int, size float64) *Packet {
	return &Packet{ID: id, Class: class, Size: size}
}

func TestRingGrowAndOrder(t *testing.T) {
	var r ring
	for i := uint64(0); i < 100; i++ {
		r.push(pkt(i, 0, 1))
	}
	for i := uint64(0); i < 100; i++ {
		p := r.pop()
		if p == nil || p.ID != i {
			t.Fatalf("pop %d: got %v", i, p)
		}
	}
	if r.pop() != nil {
		t.Error("pop on empty ring returned a packet")
	}
}

func TestRingInterleaved(t *testing.T) {
	var r ring
	next := uint64(0)
	want := uint64(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			r.push(pkt(next, 0, 1))
			next++
		}
		for i := 0; i < 2; i++ {
			p := r.pop()
			if p.ID != want {
				t.Fatalf("got %d, want %d", p.ID, want)
			}
			want++
		}
	}
}

func TestStaticPriorityOrdering(t *testing.T) {
	s := NewStaticPriority(3)
	s.Enqueue(pkt(1, 2, 100), 0)
	s.Enqueue(pkt(2, 0, 100), 0)
	s.Enqueue(pkt(3, 1, 100), 0)
	s.Enqueue(pkt(4, 0, 100), 0)
	wantOrder := []uint64{2, 4, 3, 1}
	for i, want := range wantOrder {
		p, ok := s.Dequeue(0)
		if !ok || p.ID != want {
			t.Fatalf("dequeue %d: got %v, want id %d", i, p, want)
		}
	}
	if _, ok := s.Dequeue(0); ok {
		t.Error("dequeue on empty succeeded")
	}
	if s.Len() != 0 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestStaticPriorityFIFOWithinClass(t *testing.T) {
	s := NewStaticPriority(2)
	for i := uint64(0); i < 10; i++ {
		s.Enqueue(pkt(i, 1, 1), float64(i))
	}
	for i := uint64(0); i < 10; i++ {
		p, ok := s.Dequeue(0)
		if !ok || p.ID != i {
			t.Fatalf("within-class order broken at %d: %v", i, p)
		}
	}
}

func TestStaticPriorityClampsClass(t *testing.T) {
	s := NewStaticPriority(2)
	s.Enqueue(pkt(1, -5, 1), 0)
	s.Enqueue(pkt(2, 99, 1), 0)
	p1, _ := s.Dequeue(0)
	p2, _ := s.Dequeue(0)
	if p1.ID != 1 || p2.ID != 2 {
		t.Errorf("clamped classes misordered: %d, %d", p1.ID, p2.ID)
	}
}

func TestStaticPriorityEnqueueStampsTime(t *testing.T) {
	s := NewStaticPriority(1)
	p := pkt(1, 0, 1)
	s.Enqueue(p, 42.5)
	if p.Enqueued != 42.5 {
		t.Errorf("Enqueued = %g", p.Enqueued)
	}
}

func TestNewStaticPriorityClampsClasses(t *testing.T) {
	s := NewStaticPriority(0)
	s.Enqueue(pkt(1, 0, 1), 0)
	if _, ok := s.Dequeue(0); !ok {
		t.Error("zero-class scheduler unusable")
	}
}

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO()
	f.Enqueue(pkt(1, 2, 1), 0)
	f.Enqueue(pkt(2, 0, 1), 1)
	f.Enqueue(pkt(3, 1, 1), 2)
	if f.Len() != 3 {
		t.Errorf("len = %d", f.Len())
	}
	for i := uint64(1); i <= 3; i++ {
		p, ok := f.Dequeue(0)
		if !ok || p.ID != i {
			t.Fatalf("fifo order broken: %v", p)
		}
	}
	if _, ok := f.Dequeue(0); ok {
		t.Error("empty dequeue succeeded")
	}
}

func TestWFQValidation(t *testing.T) {
	if _, err := NewWFQ(0, nil); err == nil {
		t.Error("0 classes accepted")
	}
	if _, err := NewWFQ(2, []float64{1}); err == nil {
		t.Error("weight count mismatch accepted")
	}
	if _, err := NewWFQ(2, []float64{1, 0}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewWFQ(2, []float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestWFQEqualWeightsAlternates(t *testing.T) {
	w, err := NewWFQ(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Two classes, equal-size backlogs: service must alternate.
	for i := uint64(0); i < 3; i++ {
		w.Enqueue(pkt(10+i, 0, 100), 0)
		w.Enqueue(pkt(20+i, 1, 100), 0)
	}
	var classes []int
	for {
		p, ok := w.Dequeue(0)
		if !ok {
			break
		}
		classes = append(classes, p.Class)
	}
	if len(classes) != 6 {
		t.Fatalf("dequeued %d packets", len(classes))
	}
	c0, c1 := 0, 0
	for i, c := range classes {
		if c == 0 {
			c0++
		} else {
			c1++
		}
		// Never more than one packet of imbalance at any prefix.
		if d := c0 - c1; d < -1 || d > 1 {
			t.Fatalf("unfair prefix at %d: %v", i, classes)
		}
	}
}

func TestWFQWeightsBias(t *testing.T) {
	w, err := NewWFQ(2, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		w.Enqueue(pkt(i, 0, 100), 0)
		w.Enqueue(pkt(100+i, 1, 100), 0)
	}
	// In the first 8 dequeues, class 0 (weight 3) should get ~3/4.
	c0 := 0
	for i := 0; i < 8; i++ {
		p, ok := w.Dequeue(0)
		if !ok {
			t.Fatal("queue ran dry")
		}
		if p.Class == 0 {
			c0++
		}
	}
	if c0 < 5 {
		t.Errorf("weight-3 class got only %d of 8 slots", c0)
	}
}

func TestWFQLen(t *testing.T) {
	w, err := NewWFQ(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Enqueue(pkt(1, 0, 1), 0)
	w.Enqueue(pkt(2, 1, 1), 0)
	if w.Len() != 2 {
		t.Errorf("len = %d", w.Len())
	}
	w.Dequeue(0)
	if w.Len() != 1 {
		t.Errorf("len = %d", w.Len())
	}
	if _, ok := w.Dequeue(0); !ok {
		t.Error("second dequeue failed")
	}
	if _, ok := w.Dequeue(0); ok {
		t.Error("empty dequeue succeeded")
	}
}

func TestNewScheduler(t *testing.T) {
	for _, kind := range []string{"priority", "fifo", "wfq"} {
		s, err := NewScheduler(kind, 2, nil)
		if err != nil || s == nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
	if _, err := NewScheduler("alien", 2, nil); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := NewScheduler("wfq", 2, []float64{1, 0}); err == nil {
		t.Error("bad weights accepted")
	}
}

func BenchmarkStaticPriorityEnqueueDequeue(b *testing.B) {
	s := NewStaticPriority(3)
	ps := make([]*Packet, 64)
	for i := range ps {
		ps[i] = pkt(uint64(i), i%3, 1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ps[i%64]
		s.Enqueue(p, 0)
		s.Dequeue(0)
	}
}

func TestDRRValidation(t *testing.T) {
	if _, err := NewDRR(0, nil); err == nil {
		t.Error("0 classes accepted")
	}
	if _, err := NewDRR(2, []float64{1}); err == nil {
		t.Error("quanta count mismatch accepted")
	}
	if _, err := NewDRR(2, []float64{1, 0}); err == nil {
		t.Error("zero quantum accepted")
	}
}

func TestDRRFairUnderEqualQuanta(t *testing.T) {
	d, err := NewDRR(2, []float64{1000, 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 6; i++ {
		d.Enqueue(pkt(10+i, 0, 500), 0)
		d.Enqueue(pkt(20+i, 1, 500), 0)
	}
	if d.Len() != 12 {
		t.Fatalf("len = %d", d.Len())
	}
	c0, c1 := 0, 0
	for i := 0; i < 12; i++ {
		p, ok := d.Dequeue(0)
		if !ok {
			t.Fatal("queue ran dry")
		}
		if p.Class == 0 {
			c0++
		} else {
			c1++
		}
		// Fairness: never more than one quantum's worth (2 packets) apart.
		if diff := c0 - c1; diff < -2 || diff > 2 {
			t.Fatalf("unfair prefix at %d: %d vs %d", i, c0, c1)
		}
	}
	if _, ok := d.Dequeue(0); ok {
		t.Error("empty dequeue succeeded")
	}
}

func TestDRRQuantumBias(t *testing.T) {
	d, err := NewDRR(2, []float64{3000, 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 12; i++ {
		d.Enqueue(pkt(i, 0, 1000), 0)
		d.Enqueue(pkt(100+i, 1, 1000), 0)
	}
	c0 := 0
	for i := 0; i < 8; i++ {
		p, ok := d.Dequeue(0)
		if !ok {
			t.Fatal("dry")
		}
		if p.Class == 0 {
			c0++
		}
	}
	if c0 < 5 {
		t.Errorf("3:1 quanta gave class 0 only %d of 8 slots", c0)
	}
}

func TestDRROversizePacketStillServed(t *testing.T) {
	d, err := NewDRR(1, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	d.Enqueue(pkt(1, 0, 10000), 0) // far larger than the quantum
	if _, ok := d.Dequeue(0); !ok {
		t.Error("oversize packet starved")
	}
}

func TestDRRWorkConserving(t *testing.T) {
	d, err := NewDRR(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Only the last class backlogged: must still be served immediately.
	d.Enqueue(pkt(1, 2, 500), 0)
	p, ok := d.Dequeue(0)
	if !ok || p.ID != 1 {
		t.Errorf("work conservation broken: %v %v", p, ok)
	}
}
