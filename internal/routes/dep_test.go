package routes

import (
	"math/rand"
	"testing"

	"ubac/internal/graph"
	"ubac/internal/topology"
)

// rebuildDep is the from-scratch dependency graph construction the
// incremental cache replaced; the parity oracle for these tests.
func rebuildDep(s *Set) *graph.Graph {
	g := graph.New(s.net.NumServers())
	for _, r := range s.routes {
		for i := 0; i+1 < len(r.Servers); i++ {
			u, v := r.Servers[i], r.Servers[i+1]
			if !g.HasEdge(u, v) {
				if err := g.AddEdge(u, v); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

func sameDigraph(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.Order() != want.Order() || got.Size() != want.Size() {
		t.Fatalf("graph shape: %d vertices %d arcs, want %d vertices %d arcs",
			got.Order(), got.Size(), want.Order(), want.Size())
	}
	for u := 0; u < want.Order(); u++ {
		for _, v := range want.Neighbors(u) {
			if !got.HasEdge(u, v) {
				t.Fatalf("missing arc %d->%d", u, v)
			}
		}
	}
	if got.HasCycle() != want.HasCycle() {
		t.Fatalf("HasCycle: %v, want %v", got.HasCycle(), want.HasCycle())
	}
}

// The incrementally maintained dependency graph must match a full
// rebuild after every Add and RemoveLast, including arcs shared by
// several routes (multiplicity > 1) that must survive the removal of
// one sharer.
func TestDependencyGraphIncrementalMatchesRebuild(t *testing.T) {
	net, err := topology.Grid(4, 3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	rg := net.RouterGraph()
	rng := rand.New(rand.NewSource(7))
	s := NewSet(net)
	// Materialize the cache up front so every mutation below exercises
	// the incremental path.
	if s.DependencyGraph().Size() != 0 {
		t.Fatal("empty set has dependency arcs")
	}
	var pool []Route
	for trial := 0; trial < 60; trial++ {
		src, dst := rng.Intn(net.NumRouters()), rng.Intn(net.NumRouters())
		if src == dst {
			continue
		}
		paths, err := rg.KShortestPaths(src, dst, 3)
		if err != nil {
			t.Fatal(err)
		}
		r, err := FromRouterPath(net, "v", paths[rng.Intn(len(paths))])
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, r)
	}
	for step, r := range pool {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
		sameDigraph(t, s.DependencyGraph(), rebuildDep(s))
		// Occasionally pop one or two routes to exercise removal.
		for n := rng.Intn(3); n > 0 && s.Len() > 0; n-- {
			s.RemoveLast()
			sameDigraph(t, s.DependencyGraph(), rebuildDep(s))
		}
		_ = step
	}
	for s.Len() > 0 {
		s.RemoveLast()
		sameDigraph(t, s.DependencyGraph(), rebuildDep(s))
	}
	if s.DependencyGraph().Size() != 0 {
		t.Fatal("arcs left after removing every route")
	}
}

// A lazily built cache (first DependencyGraph call after many mutations)
// must agree with one maintained from the start, and a Clone must not
// share or inherit stale cache state.
func TestDependencyGraphLazyAndClone(t *testing.T) {
	net, err := topology.Ring(6, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	rg := net.RouterGraph()
	s := NewSet(net)
	for dst := 1; dst < 4; dst++ {
		p, err := rg.ShortestPath(0, dst)
		if err != nil {
			t.Fatal(err)
		}
		r, err := FromRouterPath(net, "v", p)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	sameDigraph(t, s.DependencyGraph(), rebuildDep(s))

	c := s.Clone()
	sameDigraph(t, c.DependencyGraph(), rebuildDep(c))
	// Mutating the clone must not disturb the original's cache.
	c.RemoveLast()
	sameDigraph(t, c.DependencyGraph(), rebuildDep(c))
	sameDigraph(t, s.DependencyGraph(), rebuildDep(s))
}

// WouldCycleOn over the cached graph must agree with a mutate-and-check
// oracle for both cyclic and acyclic candidates.
func TestWouldCycleOnCachedGraph(t *testing.T) {
	net, err := topology.Ring(4, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSet(net)
	// Routes 0->1->2 and 2->3->0 leave the union acyclic...
	for _, p := range [][]int{{0, 1, 2}, {2, 3, 0}} {
		r, err := FromRouterPath(net, "v", p)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	dep := s.DependencyGraph()
	around, err := FromRouterPath(net, "v", []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, cand := range []Route{around} {
		tmp := s.Clone()
		if err := tmp.Add(cand); err != nil {
			t.Fatal(err)
		}
		if got, want := WouldCycleOn(dep, cand), tmp.HasCycle(); got != want {
			t.Fatalf("WouldCycleOn(%v) = %v, oracle %v", cand.Servers, got, want)
		}
	}
}
