package routes

import (
	"sync"
	"testing"

	"ubac/internal/telemetry"
)

func cacheFixture(t *testing.T) (*Set, *DelayCache, []float64) {
	t.Helper()
	net := line5(t)
	set := NewSet(net)
	for _, path := range [][]int{{0, 1, 2}, {1, 2, 3, 4}, {0, 1, 2, 3, 4}} {
		r, err := FromRouterPath(net, "voice", path)
		if err != nil {
			t.Fatal(err)
		}
		if err := set.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	d := make([]float64, net.NumServers())
	for i := range d {
		d[i] = 0.001 * float64(i+1)
	}
	return set, NewDelayCache(set), d
}

func TestDelayCacheHitMissAndInvalidate(t *testing.T) {
	set, c, d := cacheFixture(t)
	if e := c.Epoch(); e != 0 {
		t.Fatalf("fresh cache epoch %d", e)
	}
	for i := 0; i < set.Len(); i++ {
		got, err := c.RouteDelay(i, d)
		if err != nil {
			t.Fatal(err)
		}
		if want := set.Route(i).Delay(d); got != want {
			t.Fatalf("route %d: cached %g, direct %g", i, got, want)
		}
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != uint64(set.Len()-1) {
		t.Fatalf("after %d lookups: hits=%d misses=%d, want %d/1", set.Len(), hits, misses, set.Len()-1)
	}

	// A new delay vector arrives with a configuration change: the epoch
	// bumps and the next lookup recomputes against the new vector.
	for i := range d {
		d[i] *= 2
	}
	c.Invalidate()
	if e := c.Epoch(); e != 1 {
		t.Fatalf("epoch after invalidate %d", e)
	}
	got, err := c.RouteDelay(0, d)
	if err != nil {
		t.Fatal(err)
	}
	if want := set.Route(0).Delay(d); got != want {
		t.Fatalf("stale sum served after invalidate: %g, want %g", got, want)
	}
	if _, misses := c.Stats(); misses != 2 {
		t.Fatalf("invalidate did not force a miss: misses=%d", misses)
	}

	if _, err := c.RouteDelay(-1, d); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := c.RouteDelay(set.Len(), d); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestDelayCacheTelemetry(t *testing.T) {
	_, c, d := cacheFixture(t)
	sink := telemetry.NewRegistrySink(telemetry.NewRegistry(), nil)
	c.SetSink(sink)
	c.Delays(d)
	c.Delays(d)
	c.Delays(d)
	if h := sink.RouteCacheHits.Value(); h != 2 {
		t.Fatalf("sink hits %d, want 2", h)
	}
	if m := sink.RouteCacheMisses.Value(); m != 1 {
		t.Fatalf("sink misses %d, want 1", m)
	}
}

// Concurrent readers racing an Invalidate must each see either the old
// or the new sums, never a torn mix, and the counters must balance.
func TestDelayCacheConcurrent(t *testing.T) {
	set, c, d := cacheFixture(t)
	want := make([]float64, set.Len())
	for i := range want {
		want[i] = set.Route(i).Delay(d)
	}
	const readers = 8
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 500; k++ {
				sums := c.Delays(d)
				for i := range sums {
					if sums[i] != want[i] {
						t.Errorf("torn read: route %d = %g, want %g", i, sums[i], want[i])
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 100; k++ {
			c.Invalidate()
		}
	}()
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses != readers*500 {
		t.Fatalf("counters don't balance: %d hits + %d misses != %d lookups", hits, misses, readers*500)
	}
}
