package routes

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ubac/internal/telemetry"
)

// DelayCache memoizes the per-route end-to-end delay sums of one route
// set (Route.Delay over a solved per-server vector), keyed by a
// configuration epoch. The sums only change when the configuration
// changes — a new utilization assignment or a topology change forces a
// re-solve of the delay fixed point — so owners bump the epoch with
// Invalidate at exactly those moments and every read in between is a
// cache hit. Hit and miss counts flow into the telemetry sink as
// ubac_route_cache_lookups_total{result=...}.
//
// The cache is safe for concurrent readers; Invalidate may race with
// readers (a reader either sees the old epoch's sums or recomputes
// against the new vector, never a mix).
type DelayCache struct {
	set  *Set
	sink telemetry.Sink

	mu    sync.RWMutex
	epoch uint64    // current configuration epoch (bumped by Invalidate)
	built uint64    // epoch the sums were computed at
	valid bool      // sums computed since the last Invalidate
	sums  []float64 // per route index, end-to-end delay in seconds

	hits, misses atomic.Uint64
}

// NewDelayCache returns an empty cache over the set at epoch 0. The
// first lookup is a miss that computes every route's sum.
func NewDelayCache(set *Set) *DelayCache {
	return &DelayCache{set: set, sink: telemetry.Nop{}}
}

// SetSink routes hit/miss telemetry into s (nil restores the no-op
// default).
func (c *DelayCache) SetSink(s telemetry.Sink) {
	if s == nil {
		s = telemetry.Nop{}
	}
	c.mu.Lock()
	c.sink = s
	c.mu.Unlock()
}

// Epoch returns the current configuration epoch.
func (c *DelayCache) Epoch() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epoch
}

// Invalidate bumps the configuration epoch, discarding the cached sums.
// Call it whenever the utilization assignment or the topology changes —
// i.e. whenever the per-server delay vector the sums were computed from
// is re-solved.
func (c *DelayCache) Invalidate() {
	c.mu.Lock()
	c.epoch++
	c.valid = false
	c.mu.Unlock()
}

// Stats returns the cumulative hit and miss counts.
func (c *DelayCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// RouteDelay returns the end-to-end delay sum of route i under the
// per-server vector d, which must be the solved vector of the current
// epoch (callers re-solve and Invalidate together). All sums are
// computed on the first lookup after an Invalidate and served from the
// cache afterwards.
func (c *DelayCache) RouteDelay(i int, d []float64) (float64, error) {
	if i < 0 || i >= c.set.Len() {
		return 0, fmt.Errorf("routes: cache route index %d out of range", i)
	}
	sums := c.Delays(d)
	return sums[i], nil
}

// Delays returns the cached per-route sums for the current epoch,
// recomputing them from d if the cache is stale. The returned slice is
// shared — callers must not modify it.
func (c *DelayCache) Delays(d []float64) []float64 {
	c.mu.RLock()
	if c.valid && c.built == c.epoch {
		sums := c.sums
		sink := c.sink
		c.mu.RUnlock()
		c.hits.Add(1)
		sink.RouteCache(telemetry.RouteCache{Hits: 1})
		return sums
	}
	c.mu.RUnlock()

	c.mu.Lock()
	if c.valid && c.built == c.epoch { // raced with another filler
		sums := c.sums
		sink := c.sink
		c.mu.Unlock()
		c.hits.Add(1)
		sink.RouteCache(telemetry.RouteCache{Hits: 1})
		return sums
	}
	n := c.set.Len()
	sums := make([]float64, n)
	for i := 0; i < n; i++ {
		sums[i] = c.set.Route(i).Delay(d)
	}
	c.sums = sums
	c.built = c.epoch
	c.valid = true
	sink := c.sink
	c.mu.Unlock()
	c.misses.Add(1)
	sink.RouteCache(telemetry.RouteCache{Misses: 1})
	return sums
}
