package routes

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ubac/internal/topology"
)

func line5(t *testing.T) *topology.Network {
	t.Helper()
	n, err := topology.Line(5, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func mustRoute(t *testing.T, net *topology.Network, class string, path ...int) Route {
	t.Helper()
	r, err := FromRouterPath(net, class, path)
	if err != nil {
		t.Fatalf("FromRouterPath(%v): %v", path, err)
	}
	return r
}

func TestFromRouterPathAndValidate(t *testing.T) {
	net := line5(t)
	r := mustRoute(t, net, "voice", 0, 1, 2, 3)
	if r.Src != 0 || r.Dst != 3 || r.Hops() != 3 {
		t.Errorf("route = %+v", r)
	}
	if err := r.Validate(net); err != nil {
		t.Errorf("valid route rejected: %v", err)
	}
	if _, err := FromRouterPath(net, "voice", []int{0, 2}); err == nil {
		t.Error("non-adjacent path accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	net := line5(t)
	good := mustRoute(t, net, "v", 0, 1, 2)
	cases := []Route{
		{Src: 0, Dst: 2, Servers: nil},
		{Src: 0, Dst: 2, Servers: []int{999}},
		{Src: 0, Dst: 2, Servers: []int{-1}},
		{Src: 1, Dst: 2, Servers: good.Servers},                                // wrong src
		{Src: 0, Dst: 3, Servers: good.Servers},                                // wrong dst
		{Src: 0, Dst: 2, Servers: []int{good.Servers[0], good.Servers[0]}},     // repeat
		{Src: 0, Dst: 0, Servers: []int{good.Servers[0], good.Servers[0] ^ 1}}, // discontinuity or bad end
		{Src: 0, Dst: 2, Servers: []int{good.Servers[1], good.Servers[0]}},     // disconnected order
	}
	for i, r := range cases {
		if err := r.Validate(net); err == nil {
			t.Errorf("case %d: invalid route accepted: %+v", i, r)
		}
	}
}

func TestSetAddAndIndex(t *testing.T) {
	net := line5(t)
	s := NewSet(net)
	if s.Network() != net {
		t.Error("Network() wrong")
	}
	r1 := mustRoute(t, net, "v", 0, 1, 2, 3)
	r2 := mustRoute(t, net, "v", 1, 2, 3, 4)
	if err := s.Add(r1); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(r2); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Route(0).Src != 0 || s.Route(1).Src != 1 {
		t.Error("routes out of order")
	}
	// Server 1->2 is crossed by both; 0->1 only by r1.
	s12, _ := net.ServerFor(1, 2)
	s01, _ := net.ServerFor(0, 1)
	if s.CrossCount(s12) != 2 || s.CrossCount(s01) != 1 {
		t.Errorf("cross counts: %d, %d", s.CrossCount(s12), s.CrossCount(s01))
	}
	if got := len(s.UsedServers()); got != 4 {
		t.Errorf("used servers = %d, want 4", got)
	}
	if err := s.Add(Route{Src: 0, Dst: 1, Servers: []int{99}}); err == nil {
		t.Error("invalid route accepted by Add")
	}
}

func TestComputeY(t *testing.T) {
	net := line5(t)
	s := NewSet(net)
	if err := s.Add(mustRoute(t, net, "v", 0, 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	d := make([]float64, net.NumServers())
	for i := range d {
		d[i] = 1 // one second per server for easy arithmetic
	}
	y := make([]float64, net.NumServers())
	s.ComputeY(d, y)
	s01, _ := net.ServerFor(0, 1)
	s12, _ := net.ServerFor(1, 2)
	s23, _ := net.ServerFor(2, 3)
	if y[s01] != 0 || y[s12] != 1 || y[s23] != 2 {
		t.Errorf("Y = %g,%g,%g, want 0,1,2", y[s01], y[s12], y[s23])
	}
	// Add a longer upstream path through server 2->3.
	if err := s.Add(mustRoute(t, net, "v", 4, 3, 2, 1, 0)); err != nil {
		t.Fatal(err)
	}
	s.ComputeY(d, y)
	s10, _ := net.ServerFor(1, 0)
	if y[s10] != 3 {
		t.Errorf("Y[1->0] = %g, want 3", y[s10])
	}
}

func TestComputeYLengthPanics(t *testing.T) {
	net := line5(t)
	s := NewSet(net)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad slice lengths")
		}
	}()
	s.ComputeY(make([]float64, 1), make([]float64, net.NumServers()))
}

func TestRouteDelayAndMax(t *testing.T) {
	net := line5(t)
	s := NewSet(net)
	r1 := mustRoute(t, net, "v", 0, 1, 2)
	r2 := mustRoute(t, net, "v", 0, 1, 2, 3, 4)
	if err := s.Add(r1); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(r2); err != nil {
		t.Fatal(err)
	}
	d := make([]float64, net.NumServers())
	for i := range d {
		d[i] = 0.5
	}
	if got := r2.Delay(d); got != 2.0 {
		t.Errorf("delay = %g, want 2", got)
	}
	worst, idx := s.MaxRouteDelay(d)
	if worst != 2.0 || idx != 1 {
		t.Errorf("max = %g at %d", worst, idx)
	}
	empty := NewSet(net)
	if _, idx := empty.MaxRouteDelay(d); idx != -1 {
		t.Error("empty set should return -1")
	}
}

func TestDependencyCycle(t *testing.T) {
	net, err := topology.Ring(4, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSet(net)
	// Two straight routes: no cycle.
	if err := s.Add(mustRoute(t, net, "v", 0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(mustRoute(t, net, "v", 2, 3, 0)); err != nil {
		t.Fatal(err)
	}
	if s.HasCycle() {
		t.Error("straight routes reported cyclic")
	}
	// A third route extends the chain but still closes no loop.
	if err := s.Add(mustRoute(t, net, "v", 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if s.HasCycle() {
		t.Error("open chain reported cyclic")
	}
	// 3->0->1 adds the arc (3->0)->(0->1), completing the directed ring
	// over servers 0->1, 1->2, 2->3, 3->0.
	closing := mustRoute(t, net, "v", 3, 0, 1)
	if !s.WouldCycle(closing) {
		t.Error("WouldCycle missed feedback")
	}
	if s.HasCycle() {
		t.Error("WouldCycle mutated the set")
	}
	if err := s.Add(closing); err != nil {
		t.Fatal(err)
	}
	if !s.HasCycle() {
		t.Error("cycle not detected after Add")
	}
}

func TestCloneIndependence(t *testing.T) {
	net := line5(t)
	s := NewSet(net)
	if err := s.Add(mustRoute(t, net, "v", 0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if err := c.Add(mustRoute(t, net, "v", 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || c.Len() != 2 {
		t.Errorf("lens: orig=%d clone=%d", s.Len(), c.Len())
	}
	s23, _ := net.ServerFor(2, 3)
	if s.CrossCount(s23) != 0 {
		t.Error("clone mutated original index")
	}
}

func TestRoutesCopy(t *testing.T) {
	net := line5(t)
	s := NewSet(net)
	if err := s.Add(mustRoute(t, net, "v", 0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	rs := s.Routes()
	rs[0].Src = 99
	if s.Route(0).Src != 0 {
		t.Error("Routes() exposed internal storage")
	}
}

// Property: Y_k is always bounded by the max route delay over the set, and
// ComputeY is monotone in d.
func TestComputeYMonotoneProperty(t *testing.T) {
	net, err := topology.Grid(3, 3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSet(net)
		rg := net.RouterGraph()
		for i := 0; i < 6; i++ {
			src, dst := rng.Intn(9), rng.Intn(9)
			if src == dst {
				continue
			}
			p, err := rg.ShortestPath(src, dst)
			if err != nil {
				return false
			}
			r, err := FromRouterPath(net, "v", p)
			if err != nil {
				return false
			}
			if err := s.Add(r); err != nil {
				return false
			}
		}
		d1 := make([]float64, net.NumServers())
		d2 := make([]float64, net.NumServers())
		for i := range d1 {
			d1[i] = rng.Float64()
			d2[i] = d1[i] + rng.Float64() // d2 >= d1 pointwise
		}
		y1 := make([]float64, net.NumServers())
		y2 := make([]float64, net.NumServers())
		s.ComputeY(d1, y1)
		s.ComputeY(d2, y2)
		worst1, _ := s.MaxRouteDelay(d1)
		for k := range y1 {
			if y2[k] < y1[k] {
				return false // not monotone
			}
			if y1[k] > worst1 {
				return false // Y exceeds any full route delay
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkComputeY(b *testing.B) {
	net := topology.MCI()
	s := NewSet(net)
	rg := net.RouterGraph()
	for _, p := range net.Pairs() {
		path, err := rg.ShortestPath(p[0], p[1])
		if err != nil {
			b.Fatal(err)
		}
		r, err := FromRouterPath(net, "v", path)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Add(r); err != nil {
			b.Fatal(err)
		}
	}
	d := make([]float64, net.NumServers())
	y := make([]float64, net.NumServers())
	for i := range d {
		d[i] = 0.001
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ComputeY(d, y)
	}
}

func TestRemoveLastDirect(t *testing.T) {
	net := line5(t)
	s := NewSet(net)
	s.RemoveLast() // empty: no-op
	if err := s.Add(mustRoute(t, net, "v", 0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(mustRoute(t, net, "v", 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	s.RemoveLast()
	if s.Len() != 1 || s.Route(0).Src != 0 {
		t.Errorf("RemoveLast broke the set: len=%d", s.Len())
	}
	s23, _ := net.ServerFor(2, 3)
	if s.CrossCount(s23) != 0 {
		t.Error("occurrence index not cleaned")
	}
	// The dependency graph must shrink accordingly.
	if s.DependencyGraph().Size() != 1 {
		t.Errorf("dependency arcs = %d, want 1", s.DependencyGraph().Size())
	}
}

// Property: evaluating a candidate as a phantom route is exactly
// equivalent to adding it — the contract the selection heuristics'
// zero-allocation fast path depends on.
func TestPhantomEvaluationEquivalenceProperty(t *testing.T) {
	net, err := topology.Grid(3, 3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	rg := net.RouterGraph()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSet(net)
		mk := func() (Route, bool) {
			src, dst := rng.Intn(9), rng.Intn(9)
			if src == dst {
				return Route{}, false
			}
			p, err := rg.ShortestPath(src, dst)
			if err != nil {
				return Route{}, false
			}
			r, err := FromRouterPath(net, "v", p)
			if err != nil {
				return Route{}, false
			}
			return r, true
		}
		for i := 0; i < 5; i++ {
			if r, ok := mk(); ok {
				if err := s.Add(r); err != nil {
					return false
				}
			}
		}
		cand, ok := mk()
		if !ok {
			return true
		}
		d := make([]float64, net.NumServers())
		for i := range d {
			d[i] = rng.Float64() * 0.01
		}
		yPhantom := make([]float64, net.NumServers())
		s.ComputeYExtra(d, yPhantom, &cand)
		slackPhantom, _ := s.MinSlackExtra(d, 0.1, 1e-3, &cand)
		worstPhantom, _ := s.MaxRouteDelayExtra(d, &cand)

		if err := s.Add(cand); err != nil {
			return false
		}
		yReal := make([]float64, net.NumServers())
		s.ComputeY(d, yReal)
		slackReal, _ := s.MinSlackExtra(d, 0.1, 1e-3, nil)
		worstReal, _ := s.MaxRouteDelay(d)
		for k := range yReal {
			if yPhantom[k] != yReal[k] {
				return false
			}
		}
		return slackPhantom == slackReal && worstPhantom == worstReal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
