// Package routes represents flow routes as link-server paths and
// implements the upstream-delay machinery of the delay analysis: the set
// S_k of upstream path prefixes for flows traversing server k and the
// worst accumulated upstream delay Y_k of Equation (6), plus the
// route-union cycle analysis used by the safe route selection heuristic
// (Section 5.2: routes that form cycles feed delays back into the Y_k
// recursion and should be avoided).
package routes

import (
	"fmt"

	"ubac/internal/graph"
	"ubac/internal/topology"
)

// Route is the path of one source/destination pair: an ordered list of
// link servers from the paper's server graph. Class names the traffic
// class the route carries (all pairs share one class in the two-class
// experiments; multi-class configurations route each class separately).
type Route struct {
	Src, Dst int    // edge routers
	Class    string // traffic class carried
	Servers  []int  // link-server path, in traversal order
}

// Validate checks the route against the network: the server path must be
// non-empty, connected tail-to-head, start at Src, end at Dst, and visit
// no server twice.
func (r Route) Validate(net *topology.Network) error {
	if len(r.Servers) == 0 {
		return fmt.Errorf("routes: empty server path for %d->%d", r.Src, r.Dst)
	}
	if r.Src == r.Dst {
		return fmt.Errorf("routes: route from router %d to itself", r.Src)
	}
	seen := make(map[int]bool, len(r.Servers))
	for i, s := range r.Servers {
		if s < 0 || s >= net.NumServers() {
			return fmt.Errorf("routes: server %d out of range", s)
		}
		if seen[s] {
			return fmt.Errorf("routes: server %d repeated", s)
		}
		seen[s] = true
		tail, head, _ := net.Server(s)
		if i == 0 && tail != r.Src {
			return fmt.Errorf("routes: path starts at router %d, want %d", tail, r.Src)
		}
		if i == len(r.Servers)-1 && head != r.Dst {
			return fmt.Errorf("routes: path ends at router %d, want %d", head, r.Dst)
		}
		if i > 0 {
			_, prevHead, _ := net.Server(r.Servers[i-1])
			if prevHead != tail {
				return fmt.Errorf("routes: discontinuity between servers %d and %d", r.Servers[i-1], s)
			}
		}
	}
	return nil
}

// Hops returns the number of link servers the route traverses.
func (r Route) Hops() int { return len(r.Servers) }

// occurrence records that a route passes through a server at a position.
type occurrence struct {
	route int // index into Set.routes
	pos   int // index into Route.Servers
}

// Set is a collection of routes over one network with an index from each
// link server to the routes crossing it. The zero value is not usable;
// create with NewSet.
type Set struct {
	net    *topology.Network
	routes []Route
	users  [][]occurrence // per server
	// dep is the cached dependency graph over link servers, built lazily
	// by DependencyGraph and maintained incrementally by Add/RemoveLast
	// through depCount, the multiplicity of each consecutive-server arc
	// across all routes (an arc leaves dep when its count drops to 0).
	dep      *graph.Graph
	depCount map[[2]int]int
}

// NewSet returns an empty route set over the network.
func NewSet(net *topology.Network) *Set {
	return &Set{net: net, users: make([][]occurrence, net.NumServers())}
}

// Network returns the network the set routes over.
func (s *Set) Network() *topology.Network { return s.net }

// Len returns the number of routes.
func (s *Set) Len() int { return len(s.routes) }

// Route returns the i-th route.
func (s *Set) Route(i int) Route { return s.routes[i] }

// Routes returns a copy of the route list.
func (s *Set) Routes() []Route {
	out := make([]Route, len(s.routes))
	copy(out, s.routes)
	return out
}

// Add validates the route and appends it to the set.
func (s *Set) Add(r Route) error {
	if err := r.Validate(s.net); err != nil {
		return err
	}
	idx := len(s.routes)
	s.routes = append(s.routes, r)
	for pos, srv := range r.Servers {
		s.users[srv] = append(s.users[srv], occurrence{route: idx, pos: pos})
	}
	if s.dep != nil {
		s.depAdd(r)
	}
	return nil
}

// RemoveLast removes the most recently added route, undoing the matching
// Add. It supports the tentative-add/rollback pattern of the route
// selection heuristic. Calling it on an empty set is a no-op.
func (s *Set) RemoveLast() {
	if len(s.routes) == 0 {
		return
	}
	last := len(s.routes) - 1
	for _, srv := range s.routes[last].Servers {
		occ := s.users[srv]
		// The last route's occurrences are necessarily the tail entries of
		// each touched server's user list.
		if len(occ) == 0 || occ[len(occ)-1].route != last {
			panic("routes: index corrupted in RemoveLast")
		}
		s.users[srv] = occ[:len(occ)-1]
	}
	if s.dep != nil {
		s.depRemove(s.routes[last])
	}
	s.routes = s.routes[:last]
}

// depAdd bumps the arc counts of r's consecutive-server arcs, adding
// newly seen arcs to the cached dependency graph.
func (s *Set) depAdd(r Route) {
	for i := 0; i+1 < len(r.Servers); i++ {
		a := [2]int{r.Servers[i], r.Servers[i+1]}
		if s.depCount[a] == 0 {
			if err := s.dep.AddEdge(a[0], a[1]); err != nil {
				panic("routes: dependency graph: " + err.Error())
			}
		}
		s.depCount[a]++
	}
}

// depRemove undoes depAdd, dropping arcs whose count reaches zero.
func (s *Set) depRemove(r Route) {
	for i := 0; i+1 < len(r.Servers); i++ {
		a := [2]int{r.Servers[i], r.Servers[i+1]}
		s.depCount[a]--
		if s.depCount[a] == 0 {
			s.dep.RemoveEdge(a[0], a[1])
		}
	}
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := NewSet(s.net)
	for _, r := range s.routes {
		rc := r
		rc.Servers = append([]int(nil), r.Servers...)
		idx := len(c.routes)
		c.routes = append(c.routes, rc)
		for pos, srv := range rc.Servers {
			c.users[srv] = append(c.users[srv], occurrence{route: idx, pos: pos})
		}
	}
	return c
}

// UsedServers returns the servers crossed by at least one route.
func (s *Set) UsedServers() []int {
	var used []int
	for srv, occ := range s.users {
		if len(occ) > 0 {
			used = append(used, srv)
		}
	}
	return used
}

// CrossCount returns how many routes traverse server srv.
func (s *Set) CrossCount(srv int) int { return len(s.users[srv]) }

// ComputeY fills y with Y_k of Equation (6) for every server: the maximum
// over routes through k of the summed per-server delay bounds d along the
// route's prefix strictly before k. Servers crossed by no route get 0.
// len(d) and len(y) must equal the network's server count. The slices may
// not alias.
func (s *Set) ComputeY(d, y []float64) {
	s.ComputeYExtra(d, y, nil)
}

// ComputeYExtra is ComputeY over the set plus one phantom route that is
// not (yet) a member — the zero-allocation way to evaluate a candidate
// route without mutating the set. extra may be nil.
func (s *Set) ComputeYExtra(d, y []float64, extra *Route) {
	if len(d) != s.net.NumServers() || len(y) != s.net.NumServers() {
		panic("routes: ComputeY slice length mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	for i := range s.routes {
		accumulateY(d, y, s.routes[i].Servers)
	}
	if extra != nil {
		accumulateY(d, y, extra.Servers)
	}
}

// ComputeYPartial accumulates into y the Y_k contributions of the routes
// with index in [lo, hi), plus extra if non-nil. Unlike ComputeYExtra it
// does not zero y first — the caller provides a zeroed (or partially
// accumulated) buffer. The parallel solver shards the route list across
// workers this way; merging the per-shard buffers with an elementwise
// max reproduces ComputeYExtra bit for bit, because Y_k is itself a max
// over per-route prefix sums and max is order-independent.
func (s *Set) ComputeYPartial(d, y []float64, lo, hi int, extra *Route) {
	if hi > len(s.routes) {
		hi = len(s.routes)
	}
	for i := lo; i < hi; i++ {
		accumulateY(d, y, s.routes[i].Servers)
	}
	if extra != nil {
		accumulateY(d, y, extra.Servers)
	}
}

func accumulateY(d, y []float64, servers []int) {
	prefix := 0.0
	for _, srv := range servers {
		if prefix > y[srv] {
			y[srv] = prefix
		}
		prefix += d[srv]
	}
}

// MaxRouteDelay returns the largest end-to-end delay bound over all
// routes, given per-server bounds d, together with the index of the
// worst route (-1 if the set is empty).
func (s *Set) MaxRouteDelay(d []float64) (float64, int) {
	worst, worstIdx := 0.0, -1
	for i, r := range s.routes {
		if v := r.Delay(d); v > worst || worstIdx == -1 {
			worst, worstIdx = v, i
		}
	}
	return worst, worstIdx
}

// MaxRouteDelayExtra is MaxRouteDelay over the set plus one phantom
// route (index len(Set) if the phantom is the worst). extra may be nil.
func (s *Set) MaxRouteDelayExtra(d []float64, extra *Route) (float64, int) {
	worst, worstIdx := s.MaxRouteDelay(d)
	if extra != nil {
		if v := extra.Delay(d); v > worst || worstIdx == -1 {
			worst, worstIdx = v, len(s.routes)
		}
	}
	return worst, worstIdx
}

// MinSlackExtra returns the minimum deadline slack over the set plus an
// optional phantom route, charging perHop seconds of constant delay per
// hop on top of the queueing bounds d:
//
//	slack_i = deadline − (Delay_i(d) + Hops_i·perHop).
//
// The returned index identifies the binding route (len(Set) for the
// phantom, -1 for an empty set, whose slack is +deadline by convention).
func (s *Set) MinSlackExtra(d []float64, deadline, perHop float64, extra *Route) (float64, int) {
	min, minIdx := deadline, -1
	for i := range s.routes {
		sl := deadline - s.routes[i].Delay(d) - float64(len(s.routes[i].Servers))*perHop
		if sl < min || minIdx == -1 {
			min, minIdx = sl, i
		}
	}
	if extra != nil {
		sl := deadline - extra.Delay(d) - float64(len(extra.Servers))*perHop
		if sl < min || minIdx == -1 {
			min, minIdx = sl, len(s.routes)
		}
	}
	return min, minIdx
}

// Delay returns the end-to-end delay bound of the route: the sum of the
// per-server bounds along its path (Section 5.1, Step 2).
func (r Route) Delay(d []float64) float64 {
	sum := 0.0
	for _, srv := range r.Servers {
		sum += d[srv]
	}
	return sum
}

// DependencyGraph returns the digraph over link servers whose arcs join
// consecutive servers of every route. Cycles in this graph are exactly
// the "feedback in the queuing of packets" the selection heuristic
// minimizes (Section 5.2, heuristic 2).
//
// The graph is built on first call and then maintained incrementally by
// Add and RemoveLast, so the per-pair cost inside selection loops is
// O(route hops) instead of O(set hops). It is owned by the set: callers
// must treat it as read-only (Clone it before mutating) and must not
// hold it across Add/RemoveLast if they need a snapshot.
func (s *Set) DependencyGraph() *graph.Graph {
	if s.dep == nil {
		s.dep = graph.New(s.net.NumServers())
		s.depCount = make(map[[2]int]int)
		for _, r := range s.routes {
			s.depAdd(r)
		}
	}
	return s.dep
}

// HasCycle reports whether the route union contains dependency feedback.
func (s *Set) HasCycle() bool { return s.DependencyGraph().HasCycle() }

// WouldCycle reports whether adding the candidate route would make the
// dependency graph cyclic, without mutating the set. When testing many
// candidates against the same set, build the graph once with
// DependencyGraph and use WouldCycleOn instead.
func (s *Set) WouldCycle(candidate Route) bool {
	return WouldCycleOn(s.DependencyGraph(), candidate)
}

// WouldCycleOn reports whether adding the candidate's arcs to a prebuilt
// dependency graph (from DependencyGraph of the same set) closes a
// cycle. dep is not modified — the candidate's arcs are overlaid
// virtually, so testing many candidates against one set needs no
// cloning.
func WouldCycleOn(dep *graph.Graph, candidate Route) bool {
	if len(candidate.Servers) < 2 {
		return dep.HasCycle()
	}
	arcs := make([][2]int, 0, len(candidate.Servers)-1)
	for i := 0; i+1 < len(candidate.Servers); i++ {
		arcs = append(arcs, [2]int{candidate.Servers[i], candidate.Servers[i+1]})
	}
	return dep.HasCycleWithArcs(arcs)
}

// FromRouterPath builds a Route for the given class from a router-level
// path using the network's link servers.
func FromRouterPath(net *topology.Network, class string, path []int) (Route, error) {
	srv, err := net.ServersFromRouterPath(path)
	if err != nil {
		return Route{}, err
	}
	return Route{Src: path[0], Dst: path[len(path)-1], Class: class, Servers: srv}, nil
}
