package bounds

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperParams is the Table 1 scenario: MCI backbone (N=6, L=4), VoIP
// traffic (T=640 bits, ρ=32 kb/s), 100 ms deadline.
func paperParams() Params {
	return Params{N: 6, L: 4, Burst: 640, Rate: 32e3, Deadline: 0.1}
}

func TestTable1LowerBound(t *testing.T) {
	lb, err := Lower(paperParams())
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports 0.30 (Table 1).
	if math.Abs(lb-0.30) > 0.005 {
		t.Errorf("lower bound = %.4f, paper reports 0.30", lb)
	}
}

func TestTable1UpperBound(t *testing.T) {
	ub, err := Upper(paperParams())
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports 0.61 (Table 1).
	if math.Abs(ub-0.61) > 0.005 {
		t.Errorf("upper bound = %.4f, paper reports 0.61", ub)
	}
}

func TestBoundsTogether(t *testing.T) {
	lb, ub, err := Bounds(paperParams())
	if err != nil {
		t.Fatal(err)
	}
	if lb >= ub {
		t.Errorf("lower %g >= upper %g", lb, ub)
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{N: 1, L: 4, Burst: 640, Rate: 32e3, Deadline: 0.1},
		{N: 6, L: 0, Burst: 640, Rate: 32e3, Deadline: 0.1},
		{N: 6, L: 4, Burst: -1, Rate: 32e3, Deadline: 0.1},
		{N: 6, L: 4, Burst: 640, Rate: 0, Deadline: 0.1},
		{N: 6, L: 4, Burst: 640, Rate: 32e3, Deadline: 0},
		{N: 6, L: 4, Burst: 640, Rate: 32e3, Deadline: math.Inf(1)},
		{N: 6, L: 4, Burst: math.NaN(), Rate: 32e3, Deadline: 0.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
		if _, err := Lower(p); err == nil {
			t.Errorf("Lower accepted case %d", i)
		}
		if _, err := Upper(p); err == nil {
			t.Errorf("Upper accepted case %d", i)
		}
		if _, _, err := Bounds(p); err == nil {
			t.Errorf("Bounds accepted case %d", i)
		}
	}
}

func TestUpperZeroBurst(t *testing.T) {
	p := paperParams()
	p.Burst = 0
	ub, err := Upper(p)
	if err != nil || ub != 1 {
		t.Errorf("zero burst upper = %g, %v; want 1", ub, err)
	}
}

// Property: 0 < lower <= upper <= 1 across the whole parameter space.
func TestBoundsOrderedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{
			N:        2 + rng.Intn(15),
			L:        1 + rng.Intn(9),
			Burst:    10 + rng.Float64()*1e5,
			Rate:     1e3 + rng.Float64()*1e7,
			Deadline: 1e-3 + rng.Float64(),
		}
		lb, ub, err := Bounds(p)
		if err != nil {
			return false
		}
		return lb > 0 && lb <= ub+1e-12 && ub <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: both bounds increase with the deadline and decrease with the
// diameter (more slack per hop ⇒ more admissible utilization).
func TestBoundsMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{
			N:        2 + rng.Intn(10),
			L:        2 + rng.Intn(6),
			Burst:    10 + rng.Float64()*1e4,
			Rate:     1e3 + rng.Float64()*1e6,
			Deadline: 0.01 + rng.Float64()*0.2,
		}
		lb1, ub1, err := Bounds(p)
		if err != nil {
			return false
		}
		longer := p
		longer.Deadline *= 1.5
		lb2, ub2, err := Bounds(longer)
		if err != nil {
			return false
		}
		if lb2 < lb1-1e-12 || ub2 < ub1-1e-12 {
			return false
		}
		wider := p
		wider.L++
		lb3, ub3, err := Bounds(wider)
		if err != nil {
			return false
		}
		return lb3 <= lb1+1e-12 && ub3 <= ub1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLowerBoundSingleHop(t *testing.T) {
	// L = 1: β = Dρ/T, no upstream jitter term.
	p := Params{N: 4, L: 1, Burst: 1000, Rate: 1e4, Deadline: 0.05}
	lb, err := Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	beta := 0.05 * 1e4 / 1000
	want := 4 * beta / (3 + beta)
	if beta >= 1 {
		// alphaFromGainRho clamps at 1.
		want = math.Min(want, 1)
	}
	if math.Abs(lb-want) > 1e-12 {
		t.Errorf("L=1 lower = %g, want %g", lb, want)
	}
}

func TestMinDeadlineForAlphaRoundTrip(t *testing.T) {
	p := paperParams()
	lb, err := Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	d, err := MinDeadlineForAlpha(lb, p.N, p.L, p.Burst, p.Rate)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-p.Deadline) > 1e-9 {
		t.Errorf("round trip deadline = %g, want %g", d, p.Deadline)
	}
}

func TestMinDeadlineForAlphaErrors(t *testing.T) {
	if _, err := MinDeadlineForAlpha(0, 6, 4, 640, 32e3); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := MinDeadlineForAlpha(1, 6, 4, 640, 32e3); err == nil {
		t.Error("alpha=1 accepted")
	}
	if _, err := MinDeadlineForAlpha(0.5, 1, 4, 640, 32e3); err == nil {
		t.Error("N=1 accepted")
	}
	// β(L−1) ≥ 1 makes the deadline unreachable: large alpha, long L.
	if _, err := MinDeadlineForAlpha(0.9, 6, 10, 640, 32e3); err == nil {
		t.Error("unreachable alpha accepted")
	}
}

func TestMaxDiameterForAlpha(t *testing.T) {
	p := paperParams()
	lb, err := Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	// At the L=4 lower bound, diameter 4 must be admissible but not 5.
	got := MaxDiameterForAlpha(lb-1e-9, p.N, p.Burst, p.Rate, p.Deadline)
	if got != 4 {
		t.Errorf("max diameter = %d, want 4", got)
	}
	// At L=1 the voice scenario's lower bound clamps to 1, so even a
	// near-1 alpha is admissible at a single hop — but no further.
	if got := MaxDiameterForAlpha(0.99, p.N, p.Burst, p.Rate, p.Deadline); got != 1 {
		t.Errorf("near-1 alpha max diameter = %d, want 1", got)
	}
}

func BenchmarkBounds(b *testing.B) {
	p := paperParams()
	for i := 0; i < b.N; i++ {
		if _, _, err := Bounds(p); err != nil {
			b.Fatal(err)
		}
	}
}
