// Package bounds implements Theorem 4 of the paper: closed-form lower and
// upper bounds on α*, the maximum utilization assignable to the real-time
// class in any network of diameter L with N input links per router,
// leaky-bucket traffic (T, ρ) and end-to-end deadline D.
//
// The printed formulas in the paper are typographically damaged; the
// forms below are re-derived from the paper's own proof sketches
// (Section 5.3.2) and reproduce Table 1 exactly (0.30 and 0.61 for the
// VoIP scenario):
//
//	Lower: with β = D·ρ / (L·T + (L−1)·D·ρ),   α_LB = N·β / (N−1+β).
//	Upper: with x = (D·ρ/T + 1)^(1/L) − 1,     α_UB = N·x / (N−1+x).
//
// Derivations. Per Theorem 3, every server obeys d = g·(T + ρY) with
// g = α(N−1)/(ρ(N−α)). For the lower bound, shortest-path routing keeps
// every path within L hops, so Y ≤ (L−1)·d for the uniform worst server
// delay d; solving d = g(T + ρ(L−1)d) and requiring L·d ≤ D yields
// g·ρ ≤ β, i.e. α(N−1)/(N−α) ≤ β. For the upper bound, the most
// favorable (feedback-free) routing gives the per-hop recursion
// d_k = g(T + ρ·Σ_{j<k} d_j), whose end-to-end sum over L hops is
// (T/ρ)((1+gρ)^L − 1); requiring it to stay within D yields
// g·ρ ≤ (Dρ/T + 1)^(1/L) − 1. Both conditions invert to
// α = N·v/(N−1+v) for the respective v.
package bounds

import (
	"fmt"
	"math"
)

// Params carries the topology-independent quantities Theorem 4 needs.
type Params struct {
	N        int     // input links per router (≥ 2)
	L        int     // network diameter in hops (≥ 1)
	Burst    float64 // T, bits
	Rate     float64 // ρ, bits/second
	Deadline float64 // D, seconds
}

// Validate checks the parameter ranges.
func (p Params) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("bounds: N = %d, need >= 2", p.N)
	}
	if p.L < 1 {
		return fmt.Errorf("bounds: L = %d, need >= 1", p.L)
	}
	if p.Burst < 0 || math.IsNaN(p.Burst) || math.IsInf(p.Burst, 0) {
		return fmt.Errorf("bounds: invalid burst %g", p.Burst)
	}
	if p.Rate <= 0 || math.IsNaN(p.Rate) || math.IsInf(p.Rate, 0) {
		return fmt.Errorf("bounds: invalid rate %g", p.Rate)
	}
	if p.Deadline <= 0 || math.IsNaN(p.Deadline) || math.IsInf(p.Deadline, 0) {
		return fmt.Errorf("bounds: invalid deadline %g", p.Deadline)
	}
	return nil
}

// alphaFromGainRho inverts g·ρ = v, i.e. α(N−1)/(N−α) = v, to
// α = N·v / (N−1+v), clamped to [0, 1).
func alphaFromGainRho(v float64, n int) float64 {
	if v <= 0 {
		return 0
	}
	a := float64(n) * v / (float64(n) - 1 + v)
	if a >= 1 {
		return 1
	}
	return a
}

// Lower returns the Theorem 4 lower bound on α*: any utilization not
// exceeding it admits a safe route selection (shortest-path routing
// suffices) in every topology with the given N and L.
func Lower(p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	beta := p.Deadline * p.Rate /
		(float64(p.L)*p.Burst + float64(p.L-1)*p.Deadline*p.Rate)
	return alphaFromGainRho(beta, p.N), nil
}

// Upper returns the Theorem 4 upper bound on α*: beyond it no route
// selection can meet the deadline on a diameter-length path even with
// feedback-free routing.
func Upper(p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if p.Burst == 0 {
		// No burst: the per-hop recursion contributes no delay growth and
		// the deadline never binds; the assignment is limited only by
		// stability.
		return 1, nil
	}
	x := math.Pow(p.Deadline*p.Rate/p.Burst+1, 1/float64(p.L)) - 1
	return alphaFromGainRho(x, p.N), nil
}

// Bounds returns (lower, upper) together.
func Bounds(p Params) (lower, upper float64, err error) {
	if lower, err = Lower(p); err != nil {
		return 0, 0, err
	}
	if upper, err = Upper(p); err != nil {
		return 0, 0, err
	}
	return lower, upper, nil
}

// MinDeadlineForAlpha inverts the lower bound: the smallest end-to-end
// deadline D for which the given α is still below the topology-
// independent safe level. It returns an error when α is out of range or
// unreachable for any deadline (α ≥ N/(N−1+1/(L−1)·...) asymptote).
func MinDeadlineForAlpha(alpha float64, n, l int, burst, rate float64) (float64, error) {
	if !(alpha > 0 && alpha < 1) {
		return 0, fmt.Errorf("bounds: alpha %g out of (0,1)", alpha)
	}
	if n < 2 || l < 1 || burst < 0 || rate <= 0 {
		return 0, fmt.Errorf("bounds: invalid parameters")
	}
	// α = Nβ/(N−1+β) ⇒ β = α(N−1)/(N−α); then β = Dρ/(LT+(L−1)Dρ)
	// ⇒ D = β·L·T / (ρ(1 − β(L−1))).
	beta := alpha * (float64(n) - 1) / (float64(n) - alpha)
	den := 1 - beta*float64(l-1)
	if den <= 0 {
		return 0, fmt.Errorf("bounds: alpha %g unreachable at L=%d for any deadline", alpha, l)
	}
	return beta * float64(l) * burst / (rate * den), nil
}

// MaxDiameterForAlpha returns the largest diameter L (≥1) at which the
// lower bound still admits the given α, or 0 when even L = 1 cannot.
func MaxDiameterForAlpha(alpha float64, n int, burst, rate, deadline float64) int {
	for l := 1; ; l++ {
		lb, err := Lower(Params{N: n, L: l, Burst: burst, Rate: rate, Deadline: deadline})
		if err != nil || lb < alpha {
			return l - 1
		}
		if l > 1<<20 {
			return l // unbounded in practice
		}
	}
}
