package bounds_test

import (
	"fmt"

	"ubac/internal/bounds"
)

// The Table 1 scenario: the MCI backbone's voice bounds.
func ExampleBounds() {
	lower, upper, err := bounds.Bounds(bounds.Params{
		N:        6,     // input links per router
		L:        4,     // network diameter
		Burst:    640,   // bits
		Rate:     32e3,  // bits/second
		Deadline: 0.100, // seconds
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("alpha in [%.2f, %.2f]\n", lower, upper)
	// Output: alpha in [0.30, 0.61]
}

func ExampleMinDeadlineForAlpha() {
	// How tight a deadline can a 25% assignment tolerate on MCI-class
	// topologies?
	d, err := bounds.MinDeadlineForAlpha(0.25, 6, 4, 640, 32e3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.1f ms\n", d*1e3)
	// Output: 50.0 ms
}
