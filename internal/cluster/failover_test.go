package cluster

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ubac/internal/wire"
)

// TestFailoverPromotion is the kill-the-authority test: a 3-node
// cluster under live admission load loses its authority; a follower
// promotes from its WAL mirror, settles against the surviving edges'
// reattach reports, and the promoted ledger ends exactly equal to what
// the edges actually hold — with the utilization bound intact at every
// step and admits flowing again afterwards.
func TestFailoverPromotion(t *testing.T) {
	nodes := startCluster(t, 3)
	auth := authorityOf(nodes)
	if auth == nil {
		t.Fatal("no authority")
	}

	// Live load against both followers for the whole test, through the
	// failover: admit a burst, tear half down, repeat. Errors during the
	// blip are expected (leases expire while the cluster is headless);
	// admitted flows and bound safety are what we track.
	var stop atomic.Bool
	var admitted, rejected, errored atomic.Int64
	var wg sync.WaitGroup
	for _, tn := range nodes {
		if tn == auth {
			continue
		}
		wg.Add(1)
		go func(tn *testNode) {
			defer wg.Done()
			cl := dialNode(t, tn)
			pairs := routePairsOf(t, cl)
			reqs := make([]wire.AdmitReq, 8)
			for i := range reqs {
				p := pairs[i%len(pairs)]
				reqs[i] = wire.AdmitReq{Class: p.Class, Src: p.Src, Dst: p.Dst}
			}
			var res []wire.AdmitResult
			var live []uint64
			for !stop.Load() {
				var err error
				res, err = cl.Admit(reqs, res)
				if err != nil {
					errored.Add(1)
					time.Sleep(5 * time.Millisecond)
					continue
				}
				for _, r := range res {
					switch {
					case r.Status == wire.StatusOK:
						admitted.Add(1)
						live = append(live, r.ID)
					case wire.StatusRejected(r.Status):
						rejected.Add(1)
					default:
						errored.Add(1)
					}
				}
				if len(live) > 64 {
					if _, err := cl.Teardown(live[:32], nil); err == nil {
						live = live[32:]
					}
				}
			}
		}(tn)
	}

	// Let the load warm the lease cells, then kill the authority.
	time.Sleep(300 * time.Millisecond)
	if admitted.Load() == 0 {
		t.Fatal("no admits before failover")
	}
	t.Logf("killing authority node %d", auth.id)
	killNode(t, auth)

	// A survivor must promote and finish settling.
	var next *testNode
	waitFor(t, 5*time.Second, "promotion", func() bool {
		next = authorityOf(nodes)
		return next != nil && next.node.settled()
	})
	t.Logf("node %d promoted at epoch %d", next.id, next.node.Epoch())
	if next.node.Epoch() < 2 {
		t.Errorf("promoted epoch %d, want >= 2", next.node.Epoch())
	}
	assertBound(t, next)

	// Admits must flow again on every survivor.
	before := admitted.Load()
	waitFor(t, 5*time.Second, "post-failover admits", func() bool {
		return admitted.Load() > before
	})

	stop.Store(true)
	wg.Wait()

	// Quiesce: give the renewer a few TTLs to report exact sums, then
	// check replayed-state exactness — every surviving edge's holdings
	// match the promoted authority's ledger entry for it, cell by cell.
	waitFor(t, 5*time.Second, "ledger convergence", func() bool {
		backing := next.node.auth.backingSnapshot()
		for _, tn := range nodes {
			if tn.dead {
				continue
			}
			ctrl := tn.ctrl
			for ci := 0; ci < ctrl.ClassCount(); ci++ {
				for ri := int32(0); int(ri) < ctrl.RouteCount(ci); ri++ {
					sum := tn.node.edge.cellSum(ci, ri)
					if backing[backKey{node: tn.id, ci: int32(ci), ri: ri}] != sum {
						return false
					}
				}
			}
		}
		// No stale backing beyond live edges' cells may remain either:
		// every key must belong to a live node (the dead authority's was
		// reclaimed at settle).
		for k := range backing {
			live := false
			for _, tn := range nodes {
				if !tn.dead && tn.id == k.node {
					live = true
				}
			}
			if !live {
				return false
			}
		}
		return true
	})
	assertBound(t, next)
	t.Logf("admitted %d, rejected %d, errored %d across the failover",
		admitted.Load(), rejected.Load(), errored.Load())
}

// TestFailoverWithIdleEdges: promotion settles even when no load runs,
// purely from reattach renewals, and the bound holds.
func TestFailoverWithIdleEdges(t *testing.T) {
	nodes := startCluster(t, 3)
	auth := authorityOf(nodes)

	// Warm one follower cell so there is real backing to replay.
	cl := dialNode(t, nodes[2])
	pairs := routePairsOf(t, cl)
	res, err := cl.Admit([]wire.AdmitReq{{Class: pairs[0].Class, Src: pairs[0].Src, Dst: pairs[0].Dst}}, nil)
	if err != nil || res[0].Status != wire.StatusOK {
		t.Fatalf("warm admit: %v status %d", err, res[0].Status)
	}
	// Let the grant land in the WAL and replicate.
	time.Sleep(200 * time.Millisecond)

	killNode(t, auth)
	var next *testNode
	waitFor(t, 5*time.Second, "promotion", func() bool {
		next = authorityOf(nodes)
		return next != nil && next.node.settled()
	})
	assertBound(t, next)

	// The warmed edge's holdings survived and are accounted.
	waitFor(t, 2*time.Second, "reattach exactness", func() bool {
		backing := next.node.auth.backingSnapshot()
		tn := nodes[2]
		if tn.dead {
			return true
		}
		for ci := 0; ci < tn.ctrl.ClassCount(); ci++ {
			for ri := int32(0); int(ri) < tn.ctrl.RouteCount(ci); ri++ {
				if tn.node.edge.cellSum(ci, ri) != backing[backKey{node: tn.id, ci: int32(ci), ri: ri}] {
					return false
				}
			}
		}
		return true
	})
}
