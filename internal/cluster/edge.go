package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"ubac/internal/admission"
	"ubac/internal/routes"
)

// The edge plane is where every admit in the cluster lands, on every
// node. Each (class, route) pair owns one lease cell whose packed
// atomic word splits the edge's delegated capacity into admitted flows
// (active, high 32 bits) and spendable headroom (budget, low 32 bits).
// An admit is one CAS moving a unit from budget to active; a teardown
// moves it back. Both preserve the cell's sum — only the renewer, one
// serialized caller under leaseMu, changes the sum by applying grants
// or trimming idle budget — so the sum a renewal reports is exact no
// matter how many admits race it, and the authority's backing for this
// edge is always at least the cell sum: the utilization bound cannot
// be overdrawn from here.
//
// A cell's budget is spendable only while its lease TTL holds. When
// the TTL lapses (the authority is unreachable or rejected the cell's
// renewal), admits fall to the sync path, which performs a grant round
// trip inline; failing that, the admit is rejected. That fail-safe is
// the failover story: edges never admit past what a live authority has
// durably accounted.

const (
	budgetMask = (uint64(1) << 32) - 1
	activeUnit = uint64(1) << 32

	// flowShards shards the edge flow table.
	flowShards = 32
	// idMask keeps the flow counter below the node-ID byte.
	idMask = (uint64(1) << 56) - 1
	// maxLeaseItems bounds one lease call (well under wire.MaxFrameOps
	// and MaxPayload).
	maxLeaseItems = 2048
)

// cell is one (class, route) lease cell.
type cell struct {
	v          atomic.Uint64 // active<<32 | budget
	validUntil atomic.Int64  // unix nanos; budget spendable while now < validUntil
	hot        atomic.Uint32 // admits since the last renewal: the demand signal

	// dryUntil backs off the sync path after a grant round trip came
	// back empty-handed: until it passes, budgetless admits reject
	// locally instead of repeating the round trip per attempt. A
	// teardown returning budget makes the cell admittable again
	// immediately (the fast path runs first), and the renewer keeps
	// asking for budget in the background, so a dry spell ends as soon
	// as capacity exists — the backoff only caps the RPC rate of
	// rejections while the cluster is saturated.
	dryUntil atomic.Int64

	// lastAcked is the sum the authority last acknowledged for this
	// cell (its backing). Guarded by the plane's leaseMu. A cell is
	// reported while its sum or lastAcked is nonzero, so the authority
	// always hears about a cell going idle exactly once.
	lastAcked uint64
}

type flowRef struct {
	ci int32
	ri int32
}

type flowShard struct {
	mu sync.Mutex
	m  map[uint64]flowRef
}

// grantFunc performs one lease call: grants are aligned with items
// (leaseRejected marks items the authority refused to account), ttl is
// the renewal deadline for the non-rejected items. Called under
// leaseMu.
type grantFunc func(items []leaseItem) (grants []uint64, ttl time.Duration, err error)

// edgePlane implements wire.Backend over lease cells. One per node.
type edgePlane struct {
	ctrl     *admission.Controller
	cfg      Config
	obs      Observer
	classIdx map[string]int
	cells    [][]cell // [class][route]
	idBase   uint64
	nextID   atomic.Uint64
	shards   [flowShards]flowShard

	// leaseMu serializes every sum-changing operation: renewals, sync
	// grants, trims and detach. Admits and teardowns never take it.
	leaseMu    sync.Mutex
	grant      grantFunc
	lastRenew  time.Time
	fullReport bool // next renewal reports every cell (reattach)

	// downUntil is set when a grant call fails outright (authority
	// unreachable or mid-failover): until it passes, sync admits reject
	// immediately instead of each queueing behind leaseMu for a full
	// RPC timeout — a convoy that would also stall the node control
	// loop's renewal tick and with it the failure-detector probes. The
	// periodic renewer keeps probing and clears it on the first
	// successful grant call.
	downUntil atomic.Int64
}

func newEdgePlane(ctrl *admission.Controller, cfg Config, obs Observer, grant grantFunc) *edgePlane {
	e := &edgePlane{
		ctrl:     ctrl,
		cfg:      cfg,
		obs:      obs,
		grant:    grant,
		idBase:   uint64(cfg.NodeID) << 56,
		classIdx: make(map[string]int),
	}
	names := ctrl.Classes()
	e.cells = make([][]cell, len(names))
	for ci, name := range names {
		e.classIdx[name] = ci
		e.cells[ci] = make([]cell, ctrl.RouteCount(ci))
	}
	for i := range e.shards {
		e.shards[i].m = make(map[uint64]flowRef)
	}
	e.fullReport = true // first renewal after start is a reattach
	return e
}

// Classes implements wire.Backend.
func (e *edgePlane) Classes() []string { return e.ctrl.Classes() }

// ClassRoutes implements wire.Backend.
func (e *edgePlane) ClassRoutes(class string) (*routes.Set, error) { return e.ctrl.ClassRoutes(class) }

// tryLocal is the zero-round-trip admit: one CAS against the cell,
// valid only while the lease TTL holds.
func (e *edgePlane) tryLocal(c *cell, now int64) bool {
	if now >= c.validUntil.Load() {
		return false
	}
	for {
		v := c.v.Load()
		if v&budgetMask == 0 {
			return false
		}
		if c.v.CompareAndSwap(v, v+activeUnit-1) {
			return true
		}
	}
}

// syncAdmit is the slow path: a grant round trip inline with the
// admit. Serialized under leaseMu so concurrent misses on the same
// cell coalesce into one grant.
func (e *edgePlane) syncAdmit(ci int, ri int32, c *cell, now int64) error {
	e.leaseMu.Lock()
	defer e.leaseMu.Unlock()
	if e.tryLocal(c, now) {
		return nil // a racing grant already refilled the cell
	}
	if time.Now().UnixNano() < c.dryUntil.Load() {
		// The call we queued behind already learned the cell is dry.
		c.hot.Add(1)
		return admission.ErrCapacity
	}
	if time.Now().UnixNano() < e.downUntil.Load() {
		// The authority is unreachable: fail safe locally rather than
		// pay (and make everyone behind us pay) an RPC timeout each.
		c.hot.Add(1)
		return admission.ErrCapacity
	}
	want := uint64(e.cfg.LeaseBlock)
	if err := e.renewLocked([]leaseItem{e.itemFor(ci, ri, c, want)}, []*cell{c}); err != nil {
		return err
	}
	if e.tryLocal(c, time.Now().UnixNano()) {
		return nil
	}
	// The authority had nothing to grant: go dry for one renewal period
	// so saturated cells reject at local speed, not one RPC per attempt.
	c.hot.Add(1)
	c.dryUntil.Store(time.Now().Add(e.cfg.LeaseTTL / 3).UnixNano())
	return admission.ErrCapacity
}

// itemFor snapshots a cell into a lease item. The sum it reads is
// exact: only leaseMu holders change it, and we hold leaseMu.
func (e *edgePlane) itemFor(ci int, ri int32, c *cell, want uint64) leaseItem {
	v := c.v.Load()
	return leaseItem{ci: int32(ci), ri: ri, act: v >> 32, bud: v & budgetMask, want: want}
}

// renewLocked performs one grant call for items and applies the
// result. cells is aligned with items. Caller holds leaseMu.
func (e *edgePlane) renewLocked(items []leaseItem, cells []*cell) error {
	start := time.Now()
	grants, ttl, err := e.grant(items)
	if err != nil {
		e.downUntil.Store(time.Now().Add(e.cfg.LeaseTTL / 3).UnixNano())
		return err
	}
	e.downUntil.Store(0)
	e.obs.ClusterGrant(time.Since(start))
	deadline := time.Now().Add(ttl).UnixNano()
	for i, g := range grants {
		c := cells[i]
		if g == leaseRejected {
			// The authority could not account this cell (mid-settling
			// reattach contention). Leave the TTL unrefreshed: the budget
			// stays spendable until the old deadline and then fails safe.
			continue
		}
		if g > 0 {
			c.v.Add(g) // budget rides the low bits
		}
		c.lastAcked = items[i].act + items[i].bud + g
		c.validUntil.Store(deadline)
	}
	return nil
}

// budgetTarget is the standing budget a cell may keep across a
// renewal: nothing when idle, otherwise one plus half its in-flight
// count plus half the admits it saw in the last renewal window, capped
// at one block. Churn is self-financing — a teardown returns its unit
// to the same cell — so standing budget only rides the gap between an
// admit arriving and capacity returning; the demand term sizes that
// buffer to the cell's actual arrival rate (pipelined clients land
// bursts of admits before the matching teardowns return), while
// keeping every claim proportional to demonstrated demand. A route
// admitting hundreds of flows a window keeps a block of slack, a route
// admitting two keeps a couple of units, and nobody parks capacity it
// is not using — the hoard that would otherwise starve sibling routes
// (and other nodes) for good, since a granted block never came back
// while its cell stayed warm. Bursts beyond the target are absorbed by
// the sync path, which still asks for a full block.
func (e *edgePlane) budgetTarget(act, hot uint64) uint64 {
	if hot == 0 {
		return 0
	}
	if t := 1 + act/2 + hot/2; t < uint64(e.cfg.LeaseBlock) {
		return t
	}
	return uint64(e.cfg.LeaseBlock)
}

// maybeRenew runs a renewal pass when a third of the lease TTL has
// passed since the last one; the node's control loop calls it every
// heartbeat tick. TryLock, not Lock: the control loop also drives the
// failure-detector probes, so it must never queue behind a sync-admit
// convoy — a busy lease plane just renews on a later tick.
func (e *edgePlane) maybeRenew(now time.Time) {
	if !e.leaseMu.TryLock() {
		return
	}
	defer e.leaseMu.Unlock()
	if now.Sub(e.lastRenew) < e.cfg.LeaseTTL/3 {
		return
	}
	e.renewAllLocked(now)
}

// renewNow forces a renewal pass (promotion self-attach, tests).
func (e *edgePlane) renewNow(now time.Time) {
	e.leaseMu.Lock()
	defer e.leaseMu.Unlock()
	e.renewAllLocked(now)
}

// markReattach makes the next renewal report every cell — on first
// contact with a (new) authority the edge declares its full holdings
// so stale backing from a previous incarnation is released.
func (e *edgePlane) markReattach() {
	e.leaseMu.Lock()
	e.fullReport = true
	e.leaseMu.Unlock()
	// A fresh authority is reachable; any fail-fast window belonged to
	// the old, dead one.
	e.downUntil.Store(0)
}

func (e *edgePlane) renewAllLocked(now time.Time) {
	e.lastRenew = now
	full := e.fullReport
	var items []leaseItem
	var cells []*cell
	flush := func() error {
		if len(items) == 0 {
			return nil
		}
		err := e.renewLocked(items, cells)
		items, cells = items[:0], cells[:0]
		return err
	}
	for ci := range e.cells {
		for ri := range e.cells[ci] {
			c := &e.cells[ci][ri]
			hot := uint64(c.hot.Swap(0))
			target := e.budgetTarget(c.v.Load()>>32, hot)
			// Trim: budget beyond the target rides back to the authority
			// in this report's (smaller) sum, so capacity no route is
			// using pools there instead of idling here.
			for {
				v := c.v.Load()
				bud := v & budgetMask
				if bud <= target {
					break
				}
				if c.v.CompareAndSwap(v, v-(bud-target)) {
					break
				}
			}
			v := c.v.Load()
			sum := (v >> 32) + (v & budgetMask)
			var want uint64
			if bud := v & budgetMask; hot > 0 && bud < target {
				want = target - bud
			}
			if !full && sum == 0 && c.lastAcked == 0 && want == 0 {
				continue
			}
			items = append(items, leaseItem{ci: int32(ci), ri: int32(ri), act: v >> 32, bud: v & budgetMask, want: want})
			cells = append(cells, c)
			if len(items) == maxLeaseItems {
				if flush() != nil {
					return // authority unreachable; TTLs will fail safe
				}
			}
		}
	}
	if flush() == nil {
		e.fullReport = false
	}
}

// detach zeroes every cell and returns the relinquished amounts for a
// graceful revoke call. Active flows are dropped — a detaching edge is
// shutting down.
func (e *edgePlane) detach() []revokeItem {
	e.leaseMu.Lock()
	defer e.leaseMu.Unlock()
	var items []revokeItem
	for ci := range e.cells {
		for ri := range e.cells[ci] {
			c := &e.cells[ci][ri]
			v := c.v.Swap(0)
			c.validUntil.Store(0)
			c.lastAcked = 0
			if sum := (v >> 32) + (v & budgetMask); sum > 0 {
				items = append(items, revokeItem{ci: int32(ci), ri: int32(ri), amount: sum})
			}
		}
	}
	return items
}

// cellSum returns active+budget of one cell (tests, safety checks).
func (e *edgePlane) cellSum(ci int, ri int32) uint64 {
	v := e.cells[ci][ri].v.Load()
	return (v >> 32) + (v & budgetMask)
}

func (e *edgePlane) shardOf(id uint64) *flowShard { return &e.shards[id%flowShards] }

// AdmitBatch implements wire.Backend: each item is one local CAS in
// the common case; misses take one grant round trip.
func (e *edgePlane) AdmitBatch(items []admission.BatchItem, results []admission.BatchResult) []admission.BatchResult {
	results = results[:0]
	now := time.Now().UnixNano()
	var local, synced int
	for _, it := range items {
		ci, ok := e.classIdx[it.Class]
		if !ok {
			results = append(results, admission.BatchResult{Err: admission.ErrUnknownClass})
			continue
		}
		ri := e.ctrl.RouteIndexFor(ci, it.Src, it.Dst)
		if ri < 0 {
			results = append(results, admission.BatchResult{Err: admission.ErrNoRoute})
			continue
		}
		c := &e.cells[ci][ri]
		if e.tryLocal(c, now) {
			local++
		} else if now < c.dryUntil.Load() {
			// A recent grant round trip found no headroom; reject locally
			// until the backoff passes instead of hammering the authority.
			// Still a demand signal: keep the cell hot so the renewer asks
			// for budget the moment capacity frees up.
			c.hot.Add(1)
			results = append(results, admission.BatchResult{Err: admission.ErrCapacity})
			continue
		} else {
			if err := e.syncAdmit(ci, ri, c, now); err != nil {
				results = append(results, admission.BatchResult{Err: err})
				continue
			}
			synced++
		}
		c.hot.Add(1)
		id := e.idBase | (e.nextID.Add(1) & idMask)
		sh := e.shardOf(id)
		sh.mu.Lock()
		sh.m[id] = flowRef{ci: int32(ci), ri: ri}
		sh.mu.Unlock()
		results = append(results, admission.BatchResult{ID: admission.FlowID(id)})
	}
	if local > 0 {
		e.obs.ClusterAdmitLocal(local)
	}
	if synced > 0 {
		e.obs.ClusterAdmitSync(synced)
	}
	return results
}

// TeardownBatch implements wire.Backend: the flow's unit moves back
// from active to budget, staying leased to this edge for reuse.
func (e *edgePlane) TeardownBatch(ids []admission.FlowID, errs []error) []error {
	errs = errs[:0]
	for _, fid := range ids {
		id := uint64(fid)
		sh := e.shardOf(id)
		sh.mu.Lock()
		ref, ok := sh.m[id]
		if ok {
			delete(sh.m, id)
		}
		sh.mu.Unlock()
		if !ok {
			errs = append(errs, admission.ErrUnknownFlow)
			continue
		}
		c := &e.cells[ref.ci][ref.ri]
		c.v.Add(1 + ^(activeUnit - 1)) // active-1, budget+1; sum preserved
		errs = append(errs, nil)
	}
	return errs
}
