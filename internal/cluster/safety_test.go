package cluster

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ubac/internal/admission"
)

// TestLeaseSafetyProperty is the lease-expiry safety property test,
// meant to run under -race: while many goroutines hammer every node's
// edge plane in-process and the authority is killed and replaced
// mid-run, the authority's ledger — which holds every admitted flow
// AND every outstanding lease budget as reservations — never exceeds
// the exact per-(class, server) utilization limit, and no edge cell
// ever holds more than the ledger backs for it.
func TestLeaseSafetyProperty(t *testing.T) {
	nodes := startCluster(t, 3)

	var stop atomic.Bool
	var violations atomic.Int64

	// Continuous bound checker over every live node's ledger. Follower
	// ledgers are idle (zero) so the authority's — wherever it currently
	// lives — is the one that matters; checking all is free.
	var checkers sync.WaitGroup
	checkers.Add(1)
	go func() {
		defer checkers.Done()
		for !stop.Load() {
			for _, tn := range nodes {
				ctrl := tn.ctrl
				for ci := 0; ci < ctrl.ClassCount(); ci++ {
					for s := 0; s < ctrl.ServerCount(); s++ {
						if in, lim := ctrl.LedgerInUseMicro(ci, s), ctrl.LimitMicro(ci, s); in > lim {
							violations.Add(1)
							t.Errorf("node %d class %d server %d: ledger %d exceeds limit %d", tn.id, ci, s, in, lim)
							stop.Store(true)
							return
						}
					}
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Hammer every node's edge plane directly (in-process: maximal
	// interleaving under the race detector). Each worker rotates over
	// real routable pairs of the first class.
	class := nodes[0].ctrl.Classes()[0]
	set, err := nodes[0].ctrl.ClassRoutes(class)
	if err != nil {
		t.Fatal(err)
	}
	var pairs [][2]int
	for _, r := range set.Routes() {
		pairs = append(pairs, [2]int{r.Src, r.Dst})
	}
	if len(pairs) == 0 {
		t.Fatal("no routable pairs")
	}
	var workers sync.WaitGroup
	for _, tn := range nodes {
		for w := 0; w < 2; w++ {
			workers.Add(1)
			go func(tn *testNode, w int) {
				defer workers.Done()
				backend := tn.node.Backend()
				items := make([]admission.BatchItem, 3)
				for i := range items {
					p := pairs[(w+i)%len(pairs)]
					items[i] = admission.BatchItem{Class: class, Src: p[0], Dst: p[1]}
				}
				var results []admission.BatchResult
				var live []admission.FlowID
				var errs []error
				for !stop.Load() {
					results = backend.AdmitBatch(items, results)
					admitted := 0
					for _, r := range results {
						if r.Err == nil {
							admitted++
							live = append(live, r.ID)
						}
					}
					if admitted == 0 {
						// Saturated or failing over: pace the retry loop
						// like a real client would, so the reject spin does
						// not starve the nodes' control loops (this test
						// shares one box with three whole clusters' worth
						// of goroutines under the race detector).
						time.Sleep(200 * time.Microsecond)
					}
					if len(live) > 48 {
						errs = backend.TeardownBatch(live[:24], errs)
						for i, err := range errs {
							if err != nil {
								t.Errorf("teardown %d: %v", i, err)
							}
						}
						live = live[24:]
					}
				}
			}(tn, w)
		}
	}

	// Mid-run, crash the authority so the property spans a promote and
	// replay; survivors keep admitting from leased budget throughout.
	time.Sleep(400 * time.Millisecond)
	auth := authorityOf(nodes)
	if auth == nil {
		t.Fatal("no authority to kill")
	}
	killNode(t, auth)
	waitFor(t, 5*time.Second, "promotion", func() bool {
		a := authorityOf(nodes)
		return a != nil && a.node.settled()
	})
	time.Sleep(400 * time.Millisecond)

	stop.Store(true)
	workers.Wait()
	checkers.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d bound violations", violations.Load())
	}

	// After quiescing, every edge cell is bounded by its ledger backing:
	// a cell's sum may lag below its backing (releases are reported
	// lazily) but must never exceed it.
	var next *testNode
	waitFor(t, 5*time.Second, "cells within backing", func() bool {
		next = authorityOf(nodes)
		if next == nil || !next.node.settled() {
			return false
		}
		backing := next.node.auth.backingSnapshot()
		for _, tn := range nodes {
			if tn.dead {
				continue
			}
			for ci := 0; ci < tn.ctrl.ClassCount(); ci++ {
				for ri := int32(0); int(ri) < tn.ctrl.RouteCount(ci); ri++ {
					if tn.node.edge.cellSum(ci, ri) > backing[backKey{node: tn.id, ci: int32(ci), ri: ri}] {
						return false
					}
				}
			}
		}
		return true
	})
	assertBound(t, next)
}
