package cluster

import (
	"encoding/binary"
	"fmt"
	"time"

	"ubac/internal/wire"
)

// Cluster frame bodies, packed little-endian against the unit sizes
// exported by the wire package (the layouts are documented there).

// leaseItem is one (class, route) cell's renewal: the edge's current
// split and how much more budget it wants. Grants come back positive;
// leaseRejected marks an item the authority could not account (the
// edge must not refresh that cell's TTL).
type leaseItem struct {
	ci   int32
	ri   int32
	act  uint64
	bud  uint64
	want uint64
}

// leaseRejected is the grant sentinel for an item the authority
// rejected (reattach reservation failed); distinct from a plain
// zero-grant renewal, which still refreshes the TTL.
const leaseRejected = ^uint64(0)

func appendLeaseReq(b []byte, node uint32, items []leaseItem) []byte {
	b = binary.LittleEndian.AppendUint32(b, node)
	for _, it := range items {
		b = binary.LittleEndian.AppendUint32(b, uint32(it.ci))
		b = binary.LittleEndian.AppendUint32(b, uint32(it.ri))
		b = binary.LittleEndian.AppendUint64(b, it.act)
		b = binary.LittleEndian.AppendUint64(b, it.bud)
		b = binary.LittleEndian.AppendUint64(b, it.want)
	}
	return b
}

func decodeLeaseReq(count uint16, body []byte) (node uint32, items []leaseItem, err error) {
	if len(body) != 4+int(count)*wire.LeaseReqUnitLen {
		return 0, nil, fmt.Errorf("cluster: lease request body %d bytes, want %d", len(body), 4+int(count)*wire.LeaseReqUnitLen)
	}
	node = binary.LittleEndian.Uint32(body)
	items = make([]leaseItem, count)
	off := 4
	for i := range items {
		items[i] = leaseItem{
			ci:   int32(binary.LittleEndian.Uint32(body[off:])),
			ri:   int32(binary.LittleEndian.Uint32(body[off+4:])),
			act:  binary.LittleEndian.Uint64(body[off+8:]),
			bud:  binary.LittleEndian.Uint64(body[off+16:]),
			want: binary.LittleEndian.Uint64(body[off+24:]),
		}
		off += wire.LeaseReqUnitLen
	}
	return node, items, nil
}

func appendLeaseResp(b []byte, ttl time.Duration, items []leaseItem, grants []uint64) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(ttl/time.Millisecond))
	for i, it := range items {
		b = binary.LittleEndian.AppendUint32(b, uint32(it.ci))
		b = binary.LittleEndian.AppendUint32(b, uint32(it.ri))
		b = binary.LittleEndian.AppendUint64(b, grants[i])
	}
	return b
}

// leaseGrant is one granted (or rejected) item of a lease response.
type leaseGrant struct {
	ci    int32
	ri    int32
	grant uint64
}

func decodeLeaseResp(body []byte) (ttl time.Duration, grants []leaseGrant, err error) {
	if len(body) < 4 || (len(body)-4)%wire.LeaseRespUnitLen != 0 {
		return 0, nil, fmt.Errorf("cluster: lease response body %d bytes", len(body))
	}
	ttl = time.Duration(binary.LittleEndian.Uint32(body)) * time.Millisecond
	n := (len(body) - 4) / wire.LeaseRespUnitLen
	grants = make([]leaseGrant, n)
	off := 4
	for i := range grants {
		grants[i] = leaseGrant{
			ci:    int32(binary.LittleEndian.Uint32(body[off:])),
			ri:    int32(binary.LittleEndian.Uint32(body[off+4:])),
			grant: binary.LittleEndian.Uint64(body[off+8:]),
		}
		off += wire.LeaseRespUnitLen
	}
	return ttl, grants, nil
}

func appendHeartbeatReq(b []byte, node uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, node)
}

func decodeHeartbeatReq(body []byte) (node uint32, err error) {
	if len(body) != 4 {
		return 0, fmt.Errorf("cluster: heartbeat request body %d bytes", len(body))
	}
	return binary.LittleEndian.Uint32(body), nil
}

func appendHeartbeatResp(b []byte, role Role, authority uint32, epoch uint64) []byte {
	b = append(b, byte(role))
	b = binary.LittleEndian.AppendUint32(b, authority)
	return binary.LittleEndian.AppendUint64(b, epoch)
}

func decodeHeartbeatResp(body []byte) (role Role, authority uint32, epoch uint64, err error) {
	if len(body) != wire.HeartbeatRespLen {
		return 0, 0, 0, fmt.Errorf("cluster: heartbeat response body %d bytes", len(body))
	}
	return Role(body[0]), binary.LittleEndian.Uint32(body[1:]), binary.LittleEndian.Uint64(body[5:]), nil
}

func appendFetchReq(b []byte, seg uint64, off int64, max uint32) []byte {
	b = binary.LittleEndian.AppendUint64(b, seg)
	b = binary.LittleEndian.AppendUint64(b, uint64(off))
	return binary.LittleEndian.AppendUint32(b, max)
}

func decodeFetchReq(body []byte) (seg uint64, off int64, max uint32, err error) {
	if len(body) != wire.FetchReqLen {
		return 0, 0, 0, fmt.Errorf("cluster: fetch request body %d bytes", len(body))
	}
	return binary.LittleEndian.Uint64(body), int64(binary.LittleEndian.Uint64(body[8:])),
		binary.LittleEndian.Uint32(body[16:]), nil
}

func appendFetchResp(b []byte, tailSeg uint64, tailOff int64, eos bool, data []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, tailSeg)
	b = binary.LittleEndian.AppendUint64(b, uint64(tailOff))
	if eos {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return append(b, data...)
}

func decodeFetchResp(body []byte) (tailSeg uint64, tailOff int64, eos bool, data []byte, err error) {
	if len(body) < wire.FetchRespHeadLen {
		return 0, 0, false, nil, fmt.Errorf("cluster: fetch response body %d bytes", len(body))
	}
	return binary.LittleEndian.Uint64(body), int64(binary.LittleEndian.Uint64(body[8:])),
		body[16] != 0, body[wire.FetchRespHeadLen:], nil
}

// revokeItem is one relinquished amount: a detaching edge handing
// budget back to the authority.
type revokeItem struct {
	ci     int32
	ri     int32
	amount uint64
}

func appendRevokeReq(b []byte, node uint32, items []revokeItem) []byte {
	b = binary.LittleEndian.AppendUint32(b, node)
	for _, it := range items {
		b = binary.LittleEndian.AppendUint32(b, uint32(it.ci))
		b = binary.LittleEndian.AppendUint32(b, uint32(it.ri))
		b = binary.LittleEndian.AppendUint64(b, it.amount)
	}
	return b
}

func decodeRevokeReq(count uint16, body []byte) (node uint32, items []revokeItem, err error) {
	if len(body) != 4+int(count)*wire.RevokeReqUnitLen {
		return 0, nil, fmt.Errorf("cluster: revoke request body %d bytes, want %d", len(body), 4+int(count)*wire.RevokeReqUnitLen)
	}
	node = binary.LittleEndian.Uint32(body)
	items = make([]revokeItem, count)
	off := 4
	for i := range items {
		items[i] = revokeItem{
			ci:     int32(binary.LittleEndian.Uint32(body[off:])),
			ri:     int32(binary.LittleEndian.Uint32(body[off+4:])),
			amount: binary.LittleEndian.Uint64(body[off+8:]),
		}
		off += wire.RevokeReqUnitLen
	}
	return node, items, nil
}
