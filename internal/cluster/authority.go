package cluster

import (
	"fmt"
	"sync"
	"time"

	"ubac/internal/admission"
	"ubac/internal/wal"
)

// The authority owns the cluster's real utilization ledger. Every unit
// of capacity an edge holds — on any node, this one included — was
// first reserved here via ReserveBlock, the headroom plane's
// all-or-nothing per-hop wholesale reservation, and journaled to the
// WAL as an absolute per-(node, class, route) backing record before
// the grant was acknowledged. Releases are journaled asynchronously: a
// lost release replays as a larger backing, which is conservative, and
// because the WAL is strictly ordered any durable prefix of it was a
// consistent past state of this ledger — so a promoted authority can
// always re-reserve what it replays.

const (
	// fetchMax bounds one fetch response's data (below wire.MaxPayload
	// with room for the head).
	fetchMax = 64 << 10
)

type backKey struct {
	node uint32
	ci   int32
	ri   int32
}

type authority struct {
	ctrl *admission.Controller
	log  *wal.Log
	cfg  Config
	logf func(string, ...any)

	mu       sync.Mutex
	backing  map[backKey]uint64
	lastSeen map[uint32]time.Time
	attached map[uint32]bool
	settling bool
	settleBy time.Time
}

// newAuthority wraps an already-reserved replayed backing map. When
// any backing was replayed the authority starts settling: it grants
// nothing new until every static member has reattached (reported its
// exact holdings) or outlived the suspicion timeout and had its
// backing reclaimed.
func newAuthority(ctrl *admission.Controller, log *wal.Log, cfg Config, logf func(string, ...any),
	replayed map[backKey]uint64, now time.Time) *authority {
	a := &authority{
		ctrl:     ctrl,
		log:      log,
		cfg:      cfg,
		logf:     logf,
		backing:  replayed,
		lastSeen: make(map[uint32]time.Time),
		attached: make(map[uint32]bool),
		settling: len(replayed) > 0,
		settleBy: now.Add(cfg.SuspicionTimeout),
	}
	if a.backing == nil {
		a.backing = make(map[backKey]uint64)
	}
	return a
}

// noteSeen records contact from a node (heartbeats keep idle edges
// from being reaped).
func (a *authority) noteSeen(node uint32, now time.Time) {
	a.mu.Lock()
	a.lastSeen[node] = now
	a.mu.Unlock()
}

// handleLease is the grant path: adjust this node's backing to the
// reported sums, grant wanted budget while headroom holds, journal
// every change as an absolute record, and fsync before acknowledging
// any grant.
func (a *authority) handleLease(node uint32, items []leaseItem, now time.Time) ([]uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.lastSeen[node] = now
	if a.settling && !a.attached[node] {
		a.attached[node] = true
		a.checkSettleLocked(now)
	}
	grants := make([]uint64, len(items))
	anyGrant := false
	for i, it := range items {
		ci := int(it.ci)
		if ci < 0 || ci >= a.ctrl.ClassCount() || it.ri < 0 || int(it.ri) >= a.ctrl.RouteCount(ci) {
			return nil, fmt.Errorf("cluster: lease item (%d,%d) out of range", it.ci, it.ri)
		}
		key := backKey{node: node, ci: it.ci, ri: it.ri}
		old := a.backing[key]
		reported := it.act + it.bud
		cur := old
		switch {
		case reported < old:
			// The edge shrank (teardown-driven trim, or a reattach after
			// losing flows): return the difference to the ledger.
			a.ctrl.ReleaseBlock(ci, it.ri, int64(old-reported))
			cur = reported
		case reported > old:
			// The edge holds more than this ledger knows — a reattach to a
			// promoted authority whose replayed backing predates the last
			// grants. The capacity fit the bound when the old authority
			// granted it, so the reservation succeeds once every member's
			// stale backing has been adjusted; until then, reject the item
			// and let the edge retry (its TTL stays unrefreshed, failing
			// safe if this never converges).
			if !a.ctrl.ReserveBlock(ci, it.ri, int64(reported-old)) {
				a.logf("cluster: cannot yet account node %d (%d,%d): reported %d, backed %d",
					node, it.ci, it.ri, reported, old)
				grants[i] = leaseRejected
				continue
			}
			cur = reported
		}
		if it.want > 0 && !a.settling {
			g := int64(it.want)
			for g > 0 && !a.ctrl.ReserveBlock(ci, it.ri, g) {
				g >>= 1
			}
			if g > 0 {
				grants[i] = uint64(g)
				cur += uint64(g)
				anyGrant = true
			}
		}
		if cur != old {
			if err := a.log.AppendLease(node, it.ci, it.ri, cur, false); err != nil {
				// Journal refused (shutdown): unwind the grant and fail the
				// call; nothing unjournaled is ever acknowledged.
				if g := grants[i]; g > 0 && g != leaseRejected {
					a.ctrl.ReleaseBlock(ci, it.ri, int64(g))
				}
				return nil, err
			}
			if cur == 0 {
				delete(a.backing, key)
			} else {
				a.backing[key] = cur
			}
		}
	}
	if anyGrant {
		// One group commit covers every record this call staged; grants
		// are durable before the edge hears about them.
		if err := a.log.Flush(); err != nil {
			return nil, err
		}
	}
	return grants, nil
}

// handleRevoke releases capacity a detaching edge hands back. Statuses
// are 0 per item, 1 when the relinquished amount exceeded the backing
// (clamped — a protocol oddity, not a safety problem).
func (a *authority) handleRevoke(node uint32, items []revokeItem, now time.Time) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	statuses := make([]byte, len(items))
	for i, it := range items {
		ci := int(it.ci)
		if ci < 0 || ci >= a.ctrl.ClassCount() || it.ri < 0 || int(it.ri) >= a.ctrl.RouteCount(ci) {
			return nil, fmt.Errorf("cluster: revoke item (%d,%d) out of range", it.ci, it.ri)
		}
		key := backKey{node: node, ci: it.ci, ri: it.ri}
		old := a.backing[key]
		take := it.amount
		if take > old {
			take, statuses[i] = old, 1
		}
		if take == 0 {
			continue
		}
		a.ctrl.ReleaseBlock(ci, it.ri, int64(take))
		cur := old - take
		if err := a.log.AppendLease(node, it.ci, it.ri, cur, false); err != nil {
			return nil, err
		}
		if cur == 0 {
			delete(a.backing, key)
		} else {
			a.backing[key] = cur
		}
	}
	return statuses, nil
}

// handleFetch serves verbatim durable segment bytes plus the current
// tail position (the follower's lag gauge).
func (a *authority) handleFetch(seg uint64, off int64, max uint32) (tailSeg uint64, tailOff int64, eos bool, data []byte, err error) {
	if max > fetchMax {
		max = fetchMax
	}
	buf := make([]byte, max)
	n, eos, err := a.log.ReadSegmentAt(seg, off, buf)
	if err != nil {
		return 0, 0, false, nil, err
	}
	tailSeg, tailOff = a.log.TailPos()
	return tailSeg, tailOff, eos, buf[:n], nil
}

// reap reclaims the backing of edges silent past the suspicion
// timeout. Their lease TTLs (≤ the suspicion timeout) have lapsed, so
// they stopped spending the budget before it is reclaimed here.
func (a *authority) reap(now time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for node, seen := range a.lastSeen {
		if node == a.cfg.NodeID || now.Sub(seen) <= a.cfg.SuspicionTimeout {
			continue
		}
		a.logf("cluster: node %d silent for %v, reclaiming its leases", node, now.Sub(seen))
		a.dropNodeLocked(node)
		delete(a.lastSeen, node)
	}
	a.checkSettleLocked(now)
}

// dropNodeLocked releases and journals away all of a node's backing.
func (a *authority) dropNodeLocked(node uint32) {
	for key, n := range a.backing {
		if key.node != node {
			continue
		}
		a.ctrl.ReleaseBlock(int(key.ci), key.ri, int64(n))
		if err := a.log.AppendLease(node, key.ci, key.ri, 0, false); err != nil {
			a.logf("cluster: journaling lease reclaim for node %d: %v", node, err)
		}
		delete(a.backing, key)
	}
}

// checkSettleLocked ends the settling phase once every member has
// reattached, or the deadline has passed — at which point members that
// never reported are declared dead and their replayed backing is
// reclaimed.
func (a *authority) checkSettleLocked(now time.Time) {
	if !a.settling {
		return
	}
	expired := !now.Before(a.settleBy)
	for _, m := range a.cfg.Members {
		if a.attached[m.ID] {
			continue
		}
		if !expired {
			return
		}
		a.logf("cluster: member %d never reattached, reclaiming its leases", m.ID)
		a.dropNodeLocked(m.ID)
	}
	a.settling = false
	a.logf("cluster: settled; grants open")
}

// backingSnapshot copies the backing map (tests, status).
func (a *authority) backingSnapshot() map[backKey]uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[backKey]uint64, len(a.backing))
	for k, v := range a.backing {
		out[k] = v
	}
	return out
}

// replayState collects lease records during promotion replay. A
// cluster-mode log carries only epoch and lease records; anything else
// means the directory belonged to a single-node daemon and cannot be
// promoted from.
type replayState struct {
	ctrl    *admission.Controller
	backing map[backKey]uint64
}

func newReplayState(ctrl *admission.Controller) *replayState {
	return &replayState{ctrl: ctrl, backing: make(map[backKey]uint64)}
}

func (r *replayState) RestoreSnapshot([]byte) error {
	return fmt.Errorf("cluster: snapshot in a cluster-mode log (cluster logs are full-history)")
}

func (r *replayState) ReplayAdmit(id, seq uint64, class, route int32) error {
	return fmt.Errorf("cluster: single-node admit record in a cluster-mode log")
}

func (r *replayState) ReplayTeardown(id uint64) error {
	return fmt.Errorf("cluster: single-node teardown record in a cluster-mode log")
}

// ReplayLease applies one absolute backing record; last writer wins.
func (r *replayState) ReplayLease(node uint32, class, route int32, backing uint64) error {
	ci := int(class)
	if ci < 0 || ci >= r.ctrl.ClassCount() || route < 0 || int(route) >= r.ctrl.RouteCount(ci) {
		return fmt.Errorf("cluster: lease record (%d,%d) out of range", class, route)
	}
	key := backKey{node: node, ci: class, ri: route}
	if backing == 0 {
		delete(r.backing, key)
	} else {
		r.backing[key] = backing
	}
	return nil
}
