package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sync"

	"ubac/internal/admission"
	"ubac/internal/wal"
	"ubac/internal/wire"
)

// Node ties the pieces into one cluster member: the edge plane every
// admit lands on, the follower loop that heartbeats the authority and
// mirrors its WAL, the rank-ladder promotion that replays the mirror
// into a fresh ledger when the authority dies, and the authority state
// once promoted. It implements wire.ClusterHandler, so a single wire
// listener carries both admission traffic (dispatched to the edge
// plane via Backend) and cluster control frames.
type Node struct {
	cfg      Config
	ctrl     *admission.Controller
	edge     *edgePlane
	obs      Observer
	logf     func(string, ...any)
	dir      string
	fp       uint64
	segBytes int64
	timeout  time.Duration // one cluster RPC

	mu          sync.Mutex
	role        Role
	authorityID uint32 // NoAuthority when unknown
	epoch       uint64 // highest cluster epoch heard
	auth        *authority
	log         *wal.Log
	lastContact time.Time
	cursorSeg   uint64 // follower replication cursor
	cursorOff   int64
	paused      bool // replication paused: local mirror ahead of a new authority
	clients     map[uint32]*wire.Client
	mirror      *os.File // open segment file the cursor points into
	mirrorSeg   uint64

	stop chan struct{}
	done chan struct{}
}

// NodeOptions configures NewNode.
type NodeOptions struct {
	// Config is the static cluster configuration (validated here).
	Config Config
	// Controller is this node's admission controller, built from the
	// shared configuration: route/class resolution on every node, the
	// live utilization ledger on the authority.
	Controller *admission.Controller
	// DataDir holds the WAL (authored when authority, mirrored when
	// follower). Created if missing.
	DataDir string
	// SegmentBytes is the WAL segment size when this node authors
	// (default 4 MiB). Must match across members.
	SegmentBytes int64
	// Observer receives cluster telemetry (nil = none).
	Observer Observer
	// Logf receives operational log lines (nil = discard).
	Logf func(format string, args ...any)
}

// NewNode builds a node. Every node starts as a follower with no known
// authority: the first suspicion window elects the lowest-ID live
// member through the ordinary promotion ladder, so cold boot and
// failover share one code path.
func NewNode(opts NodeOptions) (*Node, error) {
	cfg := opts.Config.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Controller == nil {
		return nil, fmt.Errorf("cluster: nil controller")
	}
	if opts.DataDir == "" {
		return nil, fmt.Errorf("cluster: no data directory")
	}
	if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	n := &Node{
		cfg:         cfg,
		ctrl:        opts.Controller,
		obs:         opts.Observer,
		logf:        opts.Logf,
		dir:         opts.DataDir,
		fp:          opts.Controller.Fingerprint(),
		segBytes:    opts.SegmentBytes,
		role:        RoleFollower,
		authorityID: NoAuthority,
		clients:     make(map[uint32]*wire.Client),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	if n.segBytes <= 0 {
		n.segBytes = 4 << 20
	}
	if n.obs == nil {
		n.obs = nopObserver{}
	}
	if n.logf == nil {
		n.logf = func(string, ...any) {}
	}
	n.timeout = cfg.SuspicionTimeout / 2
	if n.timeout < 50*time.Millisecond {
		n.timeout = 50 * time.Millisecond
	}
	n.edge = newEdgePlane(n.ctrl, cfg, n.obs, n.dispatchGrant)
	n.cursorSeg, n.cursorOff = scanMirror(n.dir)
	return n, nil
}

// scanMirror finds the local replication cursor: the highest
// contiguous segment file from 0 and its size.
func scanMirror(dir string) (seg uint64, off int64) {
	for i := uint64(0); ; i++ {
		st, err := os.Stat(filepath.Join(dir, wal.SegmentFileName(i)))
		if err != nil {
			if i == 0 {
				return 0, 0
			}
			return i - 1, off
		}
		off = st.Size()
		seg = i
	}
}

// Backend returns the edge plane for wire.NewServer.
func (n *Node) Backend() wire.Backend { return n.edge }

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// AuthorityID returns the authority this node currently believes in
// (NoAuthority when unknown).
func (n *Node) AuthorityID() uint32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RoleAuthority {
		return n.cfg.NodeID
	}
	return n.authorityID
}

// Epoch returns the highest cluster epoch this node has heard.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// Start launches the control loop.
func (n *Node) Start() {
	n.mu.Lock()
	n.lastContact = time.Now()
	n.mu.Unlock()
	go n.run()
}

// Stop shuts the node down: a follower relinquishes its leases to the
// authority (best effort), an authority closes its log.
func (n *Node) Stop() {
	close(n.stop)
	<-n.done
	n.mu.Lock()
	role, aid := n.role, n.authorityID
	log, mirror := n.log, n.mirror
	clients := n.clients
	n.clients = make(map[uint32]*wire.Client)
	n.mirror = nil
	n.mu.Unlock()
	if role == RoleFollower && aid != NoAuthority {
		if items := n.edge.detach(); len(items) > 0 {
			if cl, ok := clients[aid]; ok {
				body := appendRevokeReq(nil, n.cfg.NodeID, items)
				_, err := cl.ClusterCall(wire.FrameRevoke, uint16(len(items)), body, n.timeout)
				if err != nil {
					n.logf("cluster: relinquish on shutdown: %v", err)
				}
			}
		}
	}
	if mirror != nil {
		mirror.Close()
	}
	if log != nil {
		if err := log.Close(); err != nil {
			n.logf("cluster: closing log: %v", err)
		}
	}
	for _, cl := range clients {
		cl.Close()
	}
}

func (n *Node) run() {
	defer close(n.done)
	t := time.NewTicker(n.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case now := <-t.C:
			n.tick(now)
			n.edge.maybeRenew(now)
		}
	}
}

func (n *Node) tick(now time.Time) {
	n.mu.Lock()
	role, aid := n.role, n.authorityID
	n.mu.Unlock()
	switch role {
	case RoleAuthority:
		n.mu.Lock()
		a := n.auth
		n.mu.Unlock()
		a.reap(now)
	case RoleFollower:
		if aid != NoAuthority {
			n.contactAuthority(aid, now)
		} else {
			n.probe(now)
		}
		n.maybePromote(now)
	}
}

// clientFor returns (dialing if needed) the wire client for a member.
func (n *Node) clientFor(id uint32) (*wire.Client, error) {
	n.mu.Lock()
	cl, ok := n.clients[id]
	n.mu.Unlock()
	if ok {
		return cl, nil
	}
	addr := n.cfg.addrOf(id)
	if addr == "" {
		return nil, fmt.Errorf("cluster: unknown member %d", id)
	}
	cl, err := wire.Dial(wire.ClientOptions{
		Addr:         addr,
		Conns:        1,
		DialTimeout:  n.timeout,
		Timeout:      n.timeout,
		Reconnect:    true,
		ReconnectMin: n.cfg.HeartbeatInterval / 2,
		ReconnectMax: n.cfg.SuspicionTimeout,
	})
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if prior, ok := n.clients[id]; ok {
		n.mu.Unlock()
		cl.Close()
		return prior, nil
	}
	n.clients[id] = cl
	n.mu.Unlock()
	return cl, nil
}

// heartbeat asks one member who it thinks it is.
func (n *Node) heartbeat(id uint32) (Role, uint32, uint64, error) {
	cl, err := n.clientFor(id)
	if err != nil {
		return 0, 0, 0, err
	}
	body := appendHeartbeatReq(nil, n.cfg.NodeID)
	resp, err := cl.ClusterCall(wire.FrameHeartbeat, 0, body, n.timeout)
	if err != nil {
		return 0, 0, 0, err
	}
	return decodeHeartbeatResp(resp)
}

// contactAuthority is the follower's per-tick exchange with its
// authority: one heartbeat, then fetch until caught up.
func (n *Node) contactAuthority(aid uint32, now time.Time) {
	role, _, epoch, err := n.heartbeat(aid)
	if err != nil {
		n.obs.ClusterHeartbeatMiss()
		return
	}
	if role != RoleAuthority {
		// It abdicated or never was; forget it and probe next tick.
		n.mu.Lock()
		if n.authorityID == aid {
			n.authorityID = NoAuthority
		}
		n.mu.Unlock()
		return
	}
	n.mu.Lock()
	n.lastContact = now
	if epoch > n.epoch {
		n.epoch = epoch
	}
	paused := n.paused
	n.mu.Unlock()
	if !paused {
		n.fetchFrom(aid)
	}
}

// fetchFrom drains the authority's durable log into the local mirror.
func (n *Node) fetchFrom(aid uint32) {
	cl, err := n.clientFor(aid)
	if err != nil {
		return
	}
	for rounds := 0; rounds < 64; rounds++ {
		n.mu.Lock()
		seg, off := n.cursorSeg, n.cursorOff
		n.mu.Unlock()
		body := appendFetchReq(nil, seg, off, fetchMax)
		resp, err := cl.ClusterCall(wire.FrameFetch, 0, body, n.timeout)
		if err != nil {
			// An offset error means our mirror runs ahead of this
			// authority's log (we out-fetched the member that promoted).
			// The mirror is still a valid prefix-plus of the old history;
			// pause replication rather than corrupt it.
			if !n.pauseIfAhead(aid, err) {
				n.obs.ClusterHeartbeatMiss()
			}
			return
		}
		tailSeg, tailOff, eos, data, err := decodeFetchResp(resp)
		if err != nil {
			n.logf("cluster: fetch decode: %v", err)
			return
		}
		if len(data) > 0 {
			if err := n.mirrorWrite(seg, off, data); err != nil {
				n.logf("cluster: mirror write: %v", err)
				return
			}
			n.mu.Lock()
			n.cursorOff += int64(len(data))
			n.mu.Unlock()
		}
		if eos {
			n.mu.Lock()
			n.cursorSeg++
			n.cursorOff = 0
			n.mu.Unlock()
			continue
		}
		if len(data) == 0 {
			// Caught up to the durable tail.
			lag := (int64(tailSeg)-int64(seg))*n.segBytes + (tailOff - off)
			if lag < 0 {
				lag = 0
			}
			n.obs.ClusterLag(lag)
			return
		}
	}
	// Still behind after a full burst: report remaining lag next tick.
}

// pauseIfAhead detects the mirror-ahead-of-authority fetch error and
// pauses replication until the authority changes again.
func (n *Node) pauseIfAhead(aid uint32, err error) bool {
	s := err.Error()
	if !contains(s, "beyond durable tail") && !contains(s, "outside available range") {
		return false
	}
	n.mu.Lock()
	already := n.paused
	n.paused = true
	n.mu.Unlock()
	if !already {
		n.logf("cluster: local mirror ahead of authority %d (%v); replication paused — restart this node with a clean data dir to resume", aid, err)
	}
	return true
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// mirrorWrite appends verbatim fetched bytes to the local copy of a
// segment, fsyncing each batch so the cursor never runs ahead of disk.
func (n *Node) mirrorWrite(seg uint64, off int64, data []byte) error {
	n.mu.Lock()
	f := n.mirror
	if f != nil && n.mirrorSeg != seg {
		f.Close()
		f, n.mirror = nil, nil
	}
	n.mu.Unlock()
	if f == nil {
		var err error
		f, err = os.OpenFile(filepath.Join(n.dir, wal.SegmentFileName(seg)), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		n.mu.Lock()
		n.mirror, n.mirrorSeg = f, seg
		n.mu.Unlock()
	}
	if _, err := f.WriteAt(data, off); err != nil {
		return err
	}
	return f.Sync()
}

// probe scans the membership for a live authority. It reports whether
// it saw a peer mid-promotion (RoleCandidate) instead: replaying a
// mirror and re-reserving backings takes real time, and a ladder that
// only recognizes finished authorities would fire into that window and
// split the cluster.
func (n *Node) probe(now time.Time) (sawCandidate bool) {
	for _, id := range n.cfg.sortedIDs() {
		if id == n.cfg.NodeID {
			continue
		}
		role, _, epoch, err := n.heartbeat(id)
		if err != nil {
			continue
		}
		if role == RoleCandidate {
			sawCandidate = true
			continue
		}
		if role != RoleAuthority {
			continue
		}
		n.mu.Lock()
		n.authorityID = id
		n.lastContact = now
		n.paused = false
		if epoch > n.epoch {
			n.epoch = epoch
		}
		n.mu.Unlock()
		n.edge.markReattach()
		n.logf("cluster: following authority %d (epoch %d)", id, epoch)
		return false
	}
	return sawCandidate
}

// maybePromote walks the promotion ladder: after the suspicion timeout
// plus this node's rank delay with no authority contact, probe once
// more and, if the cluster is still headless, promote. A peer seen
// mid-promotion resets the clock instead: defer to it, and if it fails
// (it demotes itself) a full suspicion cycle restarts the ladder.
func (n *Node) maybePromote(now time.Time) {
	n.mu.Lock()
	if n.role != RoleFollower {
		n.mu.Unlock()
		return
	}
	silent := now.Sub(n.lastContact)
	dead := n.authorityID
	n.mu.Unlock()
	wait := n.cfg.SuspicionTimeout + time.Duration(n.cfg.rank(dead))*n.cfg.LadderDelay
	if silent < wait {
		return
	}
	if n.probe(now) {
		n.mu.Lock()
		n.lastContact = now
		n.mu.Unlock()
		n.logf("cluster: a peer is promoting; deferring")
		return
	}
	n.mu.Lock()
	headless := n.authorityID == NoAuthority || now.Sub(n.lastContact) >= wait
	n.mu.Unlock()
	if !headless {
		return
	}
	n.promote(now, silent)
}

// promote replays the local mirror into the ledger and takes over as
// authority at a fresh epoch.
func (n *Node) promote(now time.Time, silent time.Duration) {
	n.mu.Lock()
	n.role = RoleCandidate
	if f := n.mirror; f != nil {
		f.Close()
		n.mirror = nil
	}
	knownEpoch := n.epoch
	n.mu.Unlock()
	n.obs.ClusterRoleChange()
	n.logf("cluster: no authority for %v; promoting from local mirror", silent)

	fail := func(err error) {
		n.logf("cluster: promotion failed: %v", err)
		n.mu.Lock()
		n.role = RoleFollower
		n.lastContact = time.Now() // full suspicion cycle before retrying
		n.mu.Unlock()
		n.obs.ClusterRoleChange()
	}

	rs := newReplayState(n.ctrl)
	info, err := wal.Recover(n.dir, n.fp, rs)
	if err != nil {
		fail(err)
		return
	}
	if info.SnapshotLoaded {
		fail(fmt.Errorf("snapshot in cluster data dir (cluster logs are full-history)"))
		return
	}
	// Re-reserve every replayed backing on the fresh ledger. The old
	// authority enforced the bound over these same backings, so this
	// cannot fail; if it somehow does, nothing unsafe has happened (the
	// ledger holds at most the bound) but this node cannot serve.
	reserved := make([]backKey, 0, len(rs.backing))
	for key, b := range rs.backing {
		if !n.ctrl.ReserveBlock(int(key.ci), key.ri, int64(b)) {
			for _, k := range reserved {
				n.ctrl.ReleaseBlock(int(k.ci), k.ri, int64(rs.backing[k]))
			}
			fail(fmt.Errorf("replayed backing (%d,%d,%d)=%d does not fit the ledger", key.node, key.ci, key.ri, b))
			return
		}
		reserved = append(reserved, key)
	}
	epoch := info.Epoch
	if knownEpoch > epoch {
		epoch = knownEpoch
	}
	log, err := wal.Open(wal.Options{
		Dir:           n.dir,
		SegmentBytes:  n.segBytes,
		Fingerprint:   n.fp,
		Epoch:         epoch + 1,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		for _, k := range reserved {
			n.ctrl.ReleaseBlock(int(k.ci), k.ri, int64(rs.backing[k]))
		}
		fail(err)
		return
	}
	nBackings := len(rs.backing) // snapshot before the authority owns the map
	a := newAuthority(n.ctrl, log, n.cfg, n.logf, rs.backing, now)
	n.mu.Lock()
	n.auth = a
	n.log = log
	n.role = RoleAuthority
	n.authorityID = n.cfg.NodeID
	n.epoch = epoch + 1
	n.mu.Unlock()
	n.obs.ClusterRoleChange()
	n.logf("cluster: promoted to authority at epoch %d (replayed %d lease records, %d backings, %d segments)",
		epoch+1, info.ReplayedLeases, nBackings, info.Segments)
	// Reattach the local edge immediately: its holdings survive the
	// promotion and count toward settling.
	n.edge.markReattach()
	n.edge.renewNow(time.Now())
}

// dispatchGrant is the edge plane's grant function: in-process when
// this node is the authority, one wire round trip otherwise.
func (n *Node) dispatchGrant(items []leaseItem) ([]uint64, time.Duration, error) {
	n.mu.Lock()
	role, a, aid := n.role, n.auth, n.authorityID
	n.mu.Unlock()
	if role == RoleAuthority {
		grants, err := a.handleLease(n.cfg.NodeID, items, time.Now())
		if err != nil {
			return nil, 0, err
		}
		return grants, n.cfg.LeaseTTL, nil
	}
	if aid == NoAuthority {
		return nil, 0, fmt.Errorf("cluster: no known authority")
	}
	cl, err := n.clientFor(aid)
	if err != nil {
		return nil, 0, err
	}
	body := appendLeaseReq(nil, n.cfg.NodeID, items)
	resp, err := cl.ClusterCall(wire.FrameLease, uint16(len(items)), body, n.timeout)
	if err != nil {
		return nil, 0, err
	}
	ttl, gs, err := decodeLeaseResp(resp)
	if err != nil {
		return nil, 0, err
	}
	if len(gs) != len(items) {
		return nil, 0, fmt.Errorf("cluster: lease response has %d items, want %d", len(gs), len(items))
	}
	grants := make([]uint64, len(items))
	for i, g := range gs {
		if g.ci != items[i].ci || g.ri != items[i].ri {
			return nil, 0, fmt.Errorf("cluster: lease response item %d is (%d,%d), want (%d,%d)", i, g.ci, g.ri, items[i].ci, items[i].ri)
		}
		grants[i] = g.grant
	}
	return grants, ttl, nil
}

// ClusterFrame implements wire.ClusterHandler: the server hands every
// cluster-typed frame here and writes back whatever this returns.
func (n *Node) ClusterFrame(typ byte, count uint16, body []byte) (uint16, []byte, uint32, string) {
	switch typ {
	case wire.FrameHeartbeat:
		node, err := decodeHeartbeatReq(body)
		if err != nil {
			return 0, nil, wire.StatusInternal, err.Error()
		}
		n.mu.Lock()
		role, aid, epoch, a := n.role, n.authorityID, n.epoch, n.auth
		n.mu.Unlock()
		if role == RoleAuthority {
			aid = n.cfg.NodeID
			a.noteSeen(node, time.Now())
		}
		return 0, appendHeartbeatResp(nil, role, aid, epoch), wire.StatusOK, ""

	case wire.FrameLease:
		a, ok := n.authorityState()
		if !ok {
			return 0, nil, wire.StatusInternal, "not the authority"
		}
		node, items, err := decodeLeaseReq(count, body)
		if err != nil {
			return 0, nil, wire.StatusInternal, err.Error()
		}
		grants, err := a.handleLease(node, items, time.Now())
		if err != nil {
			return 0, nil, wire.StatusInternal, err.Error()
		}
		return count, appendLeaseResp(nil, n.cfg.LeaseTTL, items, grants), wire.StatusOK, ""

	case wire.FrameFetch:
		a, ok := n.authorityState()
		if !ok {
			return 0, nil, wire.StatusInternal, "not the authority"
		}
		seg, off, max, err := decodeFetchReq(body)
		if err != nil {
			return 0, nil, wire.StatusInternal, err.Error()
		}
		tailSeg, tailOff, eos, data, err := a.handleFetch(seg, off, max)
		if err != nil {
			return 0, nil, wire.StatusInternal, err.Error()
		}
		return 0, appendFetchResp(nil, tailSeg, tailOff, eos, data), wire.StatusOK, ""

	case wire.FrameRevoke:
		a, ok := n.authorityState()
		if !ok {
			return 0, nil, wire.StatusInternal, "not the authority"
		}
		node, items, err := decodeRevokeReq(count, body)
		if err != nil {
			return 0, nil, wire.StatusInternal, err.Error()
		}
		statuses, err := a.handleRevoke(node, items, time.Now())
		if err != nil {
			return 0, nil, wire.StatusInternal, err.Error()
		}
		return count, statuses, wire.StatusOK, ""
	}
	return 0, nil, wire.StatusInternal, fmt.Sprintf("cluster: unhandled frame 0x%02x", typ)
}

// settled reports whether this node is the authority and its settling
// phase (if any) has completed — grants are open.
func (n *Node) settled() bool {
	a, ok := n.authorityState()
	if !ok {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return !a.settling
}

func (n *Node) authorityState() (*authority, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != RoleAuthority {
		return nil, false
	}
	return n.auth, true
}
