// Package cluster is the distributed admission plane: a static set of
// nodes that together enforce the paper's utilization bound while
// serving admits from every node.
//
// One node at a time is the authority. It owns the real per-server
// utilization ledger (an admission.Controller used purely as that
// ledger) and delegates capacity to the other nodes as leases: a lease
// is a block of per-(class, route) flow-slots, reserved wholesale on
// every hop of the route via the controller's headroom plane before it
// is granted — the paper's admission test applied n flows at a time,
// all hops or none. An edge that holds budget therefore holds capacity
// the authority has already accounted, and the utilization bound holds
// cluster-wide by construction: no interleaving of edge admits can
// exceed what was reserved first.
//
// Every node — the authority included — serves admits through the same
// edge plane: an admit is one compare-and-swap on a local lease cell
// and zero cross-node round trips; only lease grant, renewal, reclaim
// and WAL shipping cross the network, as cluster frames on the wire
// protocol. The authority's own edge plane simply grants in-process.
//
// The authority journals every lease change to its WAL as an absolute
// backing record (grants fsynced before the ack, releases async — a
// lost release replays as a larger, conservative backing) and serves
// the log to followers as verbatim segment bytes. On authority failure
// the followers promote by rank: replay the fetched log, re-reserve
// every replayed backing on a fresh ledger, open a new epoch, and
// settle — accept reattach reports carrying each edge's exact held
// capacity, granting nothing new until every static member has
// reattached or outlived the suspicion timeout. Edges keep admitting
// against their leased budget through the failover and stop when the
// lease TTL runs out unrefreshed, so the bound holds even while no
// authority is reachable.
//
// Known limitations, by design at this scale: membership is static;
// there is no quorum, so a partitioned minority that exhausts the
// rank ladder can promote a second authority (deploy odd ladders and
// fencing at the operational layer); a failed authority must rejoin
// with a clean data directory; and the cluster log is full-history —
// snapshots would break verbatim segment shipping, so the log grows
// for the lifetime of the deployment.
package cluster

import (
	"fmt"
	"sort"
	"time"
)

// Role is a node's current position in the cluster.
type Role int32

const (
	// RoleFollower serves admits from leased budget and replicates the
	// authority's WAL.
	RoleFollower Role = iota
	// RoleCandidate is mid-promotion: replaying the local log copy.
	RoleCandidate
	// RoleAuthority owns the ledger and grants leases.
	RoleAuthority
)

func (r Role) String() string {
	switch r {
	case RoleFollower:
		return "follower"
	case RoleCandidate:
		return "candidate"
	case RoleAuthority:
		return "authority"
	}
	return fmt.Sprintf("role(%d)", int32(r))
}

// NoAuthority is the heartbeat-response authority field when the
// answering node does not currently know one.
const NoAuthority = ^uint32(0)

// Member is one static cluster member. IDs must be unique and below
// 256: the high byte of every edge-issued flow ID is the node ID, so
// teardowns route back to the admitting node.
type Member struct {
	ID   uint32
	Addr string
}

// Config is a node's static cluster configuration. Every member must
// run with an identical Members list and identical admission
// configuration (the config fingerprint is stamped into the WAL and
// checked on replay).
type Config struct {
	// NodeID is this node's member ID.
	NodeID uint32
	// Members is the full static membership, this node included.
	Members []Member
	// HeartbeatInterval paces the node's control loop: follower
	// heartbeat + fetch, authority reaping (default 100ms).
	HeartbeatInterval time.Duration
	// SuspicionTimeout is how long without contact before a peer is
	// presumed dead: followers start the promotion ladder, the
	// authority reclaims a silent edge's backing (default 3s).
	SuspicionTimeout time.Duration
	// LadderDelay spaces the promotion ladder: the rank-r live member
	// waits SuspicionTimeout + r×LadderDelay before promoting, probing
	// for an earlier promoter first, so exactly one node usually wins
	// (default 500ms).
	LadderDelay time.Duration
	// LeaseTTL bounds how long an edge may admit from budget without a
	// successful renewal. Must not exceed SuspicionTimeout: the edge
	// must stop spending a lease before the authority may reclaim it
	// (default 1s).
	LeaseTTL time.Duration
	// LeaseBlock caps a (class, route) cell's standing budget and
	// sizes the wholesale sync-path grant; the renewer holds each cell
	// to a demand-proportional target below it (default 64).
	LeaseBlock int64
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.SuspicionTimeout <= 0 {
		c.SuspicionTimeout = 3 * time.Second
	}
	if c.LadderDelay <= 0 {
		c.LadderDelay = 500 * time.Millisecond
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = time.Second
	}
	if c.LeaseBlock <= 0 {
		c.LeaseBlock = 64
	}
	return c
}

// Validate checks a fully-defaulted Config; NewNode calls it for you.
func (c Config) Validate() error {
	if len(c.Members) == 0 {
		return fmt.Errorf("cluster: no members")
	}
	seen := make(map[uint32]bool, len(c.Members))
	self := false
	for _, m := range c.Members {
		if m.ID > 255 {
			return fmt.Errorf("cluster: member ID %d exceeds 255 (IDs ride the flow-ID high byte)", m.ID)
		}
		if seen[m.ID] {
			return fmt.Errorf("cluster: duplicate member ID %d", m.ID)
		}
		seen[m.ID] = true
		if m.Addr == "" {
			return fmt.Errorf("cluster: member %d has no address", m.ID)
		}
		if m.ID == c.NodeID {
			self = true
		}
	}
	if !self {
		return fmt.Errorf("cluster: node ID %d not in member list", c.NodeID)
	}
	if c.LeaseTTL > c.SuspicionTimeout {
		return fmt.Errorf("cluster: lease TTL %v exceeds suspicion timeout %v (an edge must stop spending a lease before the authority reclaims it)",
			c.LeaseTTL, c.SuspicionTimeout)
	}
	return nil
}

// sortedIDs returns the member IDs ascending.
func (c Config) sortedIDs() []uint32 {
	ids := make([]uint32, len(c.Members))
	for i, m := range c.Members {
		ids[i] = m.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// rank returns this node's position on the promotion ladder when
// member `dead` (NoAuthority = nobody) is excluded.
func (c Config) rank(dead uint32) int {
	r := 0
	for _, id := range c.sortedIDs() {
		if id == c.NodeID {
			return r
		}
		if id != dead {
			r++
		}
	}
	return r
}

// addrOf returns a member's address, "" when unknown.
func (c Config) addrOf(id uint32) string {
	for _, m := range c.Members {
		if m.ID == id {
			return m.Addr
		}
	}
	return ""
}

// Observer receives cluster telemetry. telemetry.RegistrySink
// satisfies it structurally; nil observers are replaced by a no-op.
type Observer interface {
	// ClusterAdmitLocal counts admits answered from local leased budget.
	ClusterAdmitLocal(n int)
	// ClusterAdmitSync counts admits that needed a grant round trip.
	ClusterAdmitSync(n int)
	// ClusterGrant records one grant call and its wall time.
	ClusterGrant(d time.Duration)
	// ClusterLag reports the follower's replication lag in bytes.
	ClusterLag(bytes int64)
	// ClusterRoleChange counts role transitions on this node.
	ClusterRoleChange()
	// ClusterHeartbeatMiss counts failed heartbeat/fetch probes.
	ClusterHeartbeatMiss()
}

type nopObserver struct{}

func (nopObserver) ClusterAdmitLocal(int)      {}
func (nopObserver) ClusterAdmitSync(int)       {}
func (nopObserver) ClusterGrant(time.Duration) {}
func (nopObserver) ClusterLag(int64)           {}
func (nopObserver) ClusterRoleChange()         {}
func (nopObserver) ClusterHeartbeatMiss()      {}
