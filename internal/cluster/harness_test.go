package cluster

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"ubac/internal/admission"
	"ubac/internal/core"
	"ubac/internal/telemetry"
	"ubac/internal/topology"
	"ubac/internal/traffic"
	"ubac/internal/wire"
)

// The telemetry sink must satisfy the cluster observer contract
// structurally, like it does the WAL's and the wire transport's.
var _ Observer = (*telemetry.RegistrySink)(nil)

// newTestController builds the standard MCI voice controller; every
// call yields an identical twin (deterministic route selection), which
// is exactly the cluster's deployment contract: every member runs the
// same admission configuration.
func newTestController(t testing.TB) *admission.Controller {
	t.Helper()
	classes, err := traffic.NewClassSet(traffic.Voice(), traffic.BestEffort(1))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(topology.MCI(), classes)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Configure(map[string]float64{"voice": 0.30})
	if err != nil || !dep.Safe() {
		t.Fatalf("configure: %v", err)
	}
	ctrl, err := dep.Controller(admission.AtomicLedger)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

// countObs counts cluster telemetry with atomics (the registry sink is
// exercised separately; tests want exact per-node numbers).
type countObs struct {
	local, synced, grants, misses, roles atomic.Int64
}

func (o *countObs) ClusterAdmitLocal(n int)    { o.local.Add(int64(n)) }
func (o *countObs) ClusterAdmitSync(n int)     { o.synced.Add(int64(n)) }
func (o *countObs) ClusterGrant(time.Duration) { o.grants.Add(1) }
func (o *countObs) ClusterLag(int64)           {}
func (o *countObs) ClusterRoleChange()         { o.roles.Add(1) }
func (o *countObs) ClusterHeartbeatMiss()      { o.misses.Add(1) }

// testNode is one harness member: real controller, real node, real
// wire server on a real loopback listener.
type testNode struct {
	id   uint32
	addr string
	ctrl *admission.Controller
	node *Node
	srv  *wire.Server
	ln   net.Listener
	obs  *countObs
	done chan error
	dead bool
}

// testTimings returns aggressive-but-stable harness timings. The
// suspicion timeout leaves ample slack over loopback RPC latency even
// under the race detector's slowdown: a spurious promotion here is a
// split brain, which the harness treats as a failure.
func testTimings() Config {
	return Config{
		HeartbeatInterval: 15 * time.Millisecond,
		SuspicionTimeout:  600 * time.Millisecond,
		LadderDelay:       300 * time.Millisecond,
		LeaseTTL:          300 * time.Millisecond,
		LeaseBlock:        32,
	}
}

// startCluster boots an n-node in-process cluster over loopback TCP
// and waits until it has elected an authority.
func startCluster(t *testing.T, n int) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	members := make([]Member, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = &testNode{id: uint32(i), ln: ln, addr: ln.Addr().String()}
		members[i] = Member{ID: uint32(i), Addr: nodes[i].addr}
	}
	base := t.TempDir()
	for i, tn := range nodes {
		tn.ctrl = newTestController(t)
		tn.obs = &countObs{}
		cfg := testTimings()
		cfg.NodeID = tn.id
		cfg.Members = members
		node, err := NewNode(NodeOptions{
			Config:       cfg,
			Controller:   tn.ctrl,
			DataDir:      filepath.Join(base, fmt.Sprintf("node%d", i)),
			SegmentBytes: 64 << 10,
			Observer:     tn.obs,
			Logf:         t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		tn.node = node
		tn.srv = wire.NewServer(node.Backend(), wire.Options{Cluster: node})
		tn.done = make(chan error, 1)
		go func(tn *testNode) { tn.done <- tn.srv.Serve(tn.ln) }(tn)
	}
	for _, tn := range nodes {
		tn.node.Start()
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			if tn.dead {
				continue
			}
			killNode(t, tn)
		}
	})
	waitAuthority(t, nodes, 5*time.Second)
	return nodes
}

// killNode simulates a crash: the wire server goes away abruptly and
// the control loop stops. The data directory is left as it fell.
func killNode(t *testing.T, tn *testNode) {
	t.Helper()
	if tn.dead {
		return
	}
	tn.dead = true
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	_ = tn.srv.Shutdown(ctx)
	cancel()
	<-tn.done
	tn.node.Stop()
}

// authorityOf returns the unique live authority node, or nil.
func authorityOf(nodes []*testNode) *testNode {
	var auth *testNode
	for _, tn := range nodes {
		if tn.dead {
			continue
		}
		if tn.node.Role() == RoleAuthority {
			if auth != nil {
				return nil // split brain: not an elected state
			}
			auth = tn
		}
	}
	return auth
}

// waitAuthority polls until one live node is authority and every other
// live node follows it.
func waitAuthority(t *testing.T, nodes []*testNode, timeout time.Duration) *testNode {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if a := authorityOf(nodes); a != nil {
			agreed := true
			for _, tn := range nodes {
				if tn.dead || tn == a {
					continue
				}
				if tn.node.AuthorityID() != a.id {
					agreed = false
					break
				}
			}
			if agreed {
				return a
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no authority elected")
	return nil
}

// waitFor polls cond until true or the timeout fails the test.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// dialNode opens a reconnecting wire client to one node.
func dialNode(t *testing.T, tn *testNode) *wire.Client {
	t.Helper()
	cl, err := wire.Dial(wire.ClientOptions{
		Addr:         tn.addr,
		Timeout:      2 * time.Second,
		Reconnect:    true,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// routePairsOf fetches the admittable (class, src, dst) tuples.
func routePairsOf(t *testing.T, cl *wire.Client) []wire.RoutePair {
	t.Helper()
	pairs, err := cl.Routes(wire.AllClasses)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("no routes")
	}
	return pairs
}

// statusesOf extracts the status bytes for failure messages.
func statusesOf(res []wire.AdmitResult) []uint32 {
	out := make([]uint32, len(res))
	for i, r := range res {
		out[i] = r.Status
	}
	return out
}

// assertBound fails if any (class, server) ledger entry on the node
// exceeds its verified utilization limit.
func assertBound(t *testing.T, tn *testNode) {
	t.Helper()
	ctrl := tn.ctrl
	for ci := 0; ci < ctrl.ClassCount(); ci++ {
		for s := 0; s < ctrl.ServerCount(); s++ {
			if in, lim := ctrl.LedgerInUseMicro(ci, s), ctrl.LimitMicro(ci, s); in > lim {
				t.Fatalf("node %d: class %d server %d: ledger %d exceeds limit %d", tn.id, ci, s, in, lim)
			}
		}
	}
}

// TestClusterElectsAndAdmits: cold boot elects the lowest live ID, and
// a warmed-up edge serves admits with zero cross-node round trips.
func TestClusterElectsAndAdmits(t *testing.T) {
	nodes := startCluster(t, 3)
	auth := authorityOf(nodes)
	if auth == nil {
		t.Fatal("no authority")
	}
	if auth.id != 0 {
		t.Errorf("cold boot elected node %d, want lowest ID 0", auth.id)
	}

	// Drive admits through a follower and warm its lease cells.
	follower := nodes[1]
	cl := dialNode(t, follower)
	pairs := routePairsOf(t, cl)
	reqs := make([]wire.AdmitReq, 16)
	for i := range reqs {
		p := pairs[i%len(pairs)]
		reqs[i] = wire.AdmitReq{Class: p.Class, Src: p.Src, Dst: p.Dst}
	}
	var ids []uint64
	res, err := cl.Admit(reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Status == wire.StatusOK {
			ids = append(ids, r.ID)
		}
	}
	if len(ids) == 0 {
		t.Fatalf("warmup admitted nothing: statuses %v", statusesOf(res))
	}
	for _, id := range ids {
		if id>>56 != uint64(follower.id) {
			t.Fatalf("flow ID %x does not carry node ID %d", id, follower.id)
		}
	}

	// Warmed: a burst against the same routes must be all-local.
	preLocal, preSync := follower.obs.local.Load(), follower.obs.synced.Load()
	res, err = cl.Admit(reqs, res)
	if err != nil {
		t.Fatal(err)
	}
	admitted := 0
	for _, r := range res {
		if r.Status == wire.StatusOK {
			ids = append(ids, r.ID)
			admitted++
		}
	}
	if got := follower.obs.local.Load() - preLocal; got != int64(admitted) {
		t.Errorf("warmed burst: %d local-path admits for %d admitted", got, admitted)
	}
	if got := follower.obs.synced.Load() - preSync; got != 0 {
		t.Errorf("warmed burst took %d sync round trips, want 0", got)
	}

	// Teardown everything; the budget returns to this edge's cells.
	statuses, err := cl.Teardown(ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range statuses {
		if st != wire.StatusOK {
			t.Errorf("teardown %d: status %d", i, st)
		}
	}
	assertBound(t, auth)
}

// TestClusterRejectsUnroutable: wire error semantics pass through the
// edge plane unchanged.
func TestClusterRejectsUnroutable(t *testing.T) {
	nodes := startCluster(t, 2)
	cl := dialNode(t, nodes[1])
	res, err := cl.Admit([]wire.AdmitReq{{Class: 0, Src: 0, Dst: 0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Status != wire.StatusNoRoute {
		t.Fatalf("self-pair admit: status %d, want %d", res[0].Status, wire.StatusNoRoute)
	}
	if _, err := cl.Teardown([]uint64{999}, nil); err != nil {
		t.Fatal(err)
	}
}
