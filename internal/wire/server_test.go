package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"ubac/internal/admission"
	"ubac/internal/core"
	"ubac/internal/telemetry"
	"ubac/internal/topology"
	"ubac/internal/traffic"
)

// The telemetry sink must keep satisfying the transport's observer
// contract structurally, like it does the WAL's.
var _ Observer = (*telemetry.RegistrySink)(nil)

// newTestController configures a fresh MCI controller the way ubacd
// does; every call yields an identical twin (route selection is
// deterministic), which the bit-identical property test relies on.
func newTestController(t testing.TB) *admission.Controller {
	t.Helper()
	classes, err := traffic.NewClassSet(traffic.Voice(), traffic.BestEffort(1))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(topology.MCI(), classes)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Configure(map[string]float64{"voice": 0.30})
	if err != nil || !dep.Safe() {
		t.Fatalf("configure: %v", err)
	}
	ctrl, err := dep.Controller(admission.AtomicLedger)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

// startServer serves a controller on a loopback listener and tears it
// down with the test.
func startServer(t testing.TB, ctrl *admission.Controller, opts Options) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ctrl, opts)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func TestClientEndToEnd(t *testing.T) {
	ctrl := newTestController(t)
	_, addr := startServer(t, ctrl, Options{})
	c, err := Dial(ClientOptions{Addr: addr, Conns: 2, Pipeline: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	want := ctrl.Classes()
	got := c.Classes()
	if len(got) != len(want) {
		t.Fatalf("classes %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("classes %v, want %v", got, want)
		}
	}
	voice, ok := c.ClassIndex("voice")
	if !ok {
		t.Fatal("no voice class")
	}
	routes, err := c.Routes(voice)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) == 0 {
		t.Fatal("no routes for voice")
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// Concurrent pipelined admits followed by teardowns: the wire path
	// must leave the controller exactly as it found it.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var held []uint64
	errCh := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rt := routes[w%len(routes)]
			res, err := c.Admit([]AdmitReq{{Class: voice, Src: rt.Src, Dst: rt.Dst}}, nil)
			if err != nil {
				errCh <- err
				return
			}
			if res[0].Status == StatusOK {
				mu.Lock()
				held = append(held, res[0].ID)
				mu.Unlock()
			} else if !StatusRejected(res[0].Status) {
				errCh <- res[0].Err()
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if len(held) == 0 {
		t.Fatal("no admits landed")
	}
	statuses, err := c.Teardown(held, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range statuses {
		if st != StatusOK {
			t.Fatalf("teardown %d: status %d", held[i], st)
		}
	}
	if active := ctrl.Stats().Active; active != 0 {
		t.Fatalf("%d flows left active", active)
	}

	// Per-operation verdict mapping: unknown class and unknown flow
	// surface as the admission sentinels, not transport errors.
	res, err := c.Admit([]AdmitReq{{Class: 99, Src: 0, Dst: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res[0].Err(), admission.ErrUnknownClass) {
		t.Fatalf("bogus class: %v", res[0].Err())
	}
	st, err := c.Teardown([]uint64{1 << 60}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(StatusErr(st[0]), admission.ErrUnknownFlow) {
		t.Fatalf("bogus teardown: status %d", st[0])
	}
}

// rawConn is a handshaken raw socket for tests that need byte-level
// control over pipelining.
type rawConn struct {
	t       *testing.T
	nc      net.Conn
	pending []byte
}

func rawDial(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	r := &rawConn{t: t, nc: nc}
	if _, err := nc.Write(Magic[:]); err != nil {
		t.Fatal(err)
	}
	hello := AppendFrame(nil, FrameHello, 0, 0, 1, binary.LittleEndian.AppendUint32(nil, ProtoVersion))
	if _, err := nc.Write(hello); err != nil {
		t.Fatal(err)
	}
	f := r.readFrame()
	if f.Type != FrameHello || f.Flags&FlagResp == 0 {
		t.Fatalf("handshake response %+v", f)
	}
	return r
}

// readFrame blocks for the next complete frame, copying its body out
// of the reassembly buffer.
func (r *rawConn) readFrame() Frame {
	r.t.Helper()
	r.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 64<<10)
	for {
		f, n, err := DecodeFrame(r.pending)
		if err == nil {
			body := append([]byte(nil), f.Body...)
			r.pending = r.pending[:copy(r.pending, r.pending[n:])]
			f.Body = body
			return f
		}
		if !errors.Is(err, ErrShort) {
			r.t.Fatalf("decode: %v", err)
		}
		n, rerr := r.nc.Read(buf)
		r.pending = append(r.pending, buf[:n]...)
		if rerr != nil && n == 0 {
			r.t.Fatalf("read: %v", rerr)
		}
	}
}

// wireOp is one scripted operation for the bit-identical test: an
// admit of (class, src, dst) wire indices, or a teardown of the flow
// admitted at position ref.
type wireOp struct {
	admit         bool
	cls, src, dst uint32
	ref           int
}

// TestPipelinedVerdictsBitIdentical is the acceptance property: a
// scripted op sequence pushed through pipelined wire frames (and thus
// the server's coalesced batch calls) must produce byte-for-byte the
// verdict sequence that per-request Controller.Admit/Teardown produces
// on an identical twin controller.
func TestPipelinedVerdictsBitIdentical(t *testing.T) {
	wireCtrl := newTestController(t)
	seqCtrl := newTestController(t)
	_, addr := startServer(t, wireCtrl, Options{})
	rc := rawDial(t, addr)

	classes := seqCtrl.Classes()
	set, err := seqCtrl.ClassRoutes("voice")
	if err != nil {
		t.Fatal(err)
	}
	voiceIdx := uint32(0)
	for i, n := range classes {
		if n == "voice" {
			voiceIdx = uint32(i)
		}
	}
	rng := rand.New(rand.NewSource(9))
	var (
		script   []wireOp
		admitPos []int // script positions of admits, for teardown refs
	)
	for i := 0; i < 600; i++ {
		if len(admitPos) > 0 && rng.Intn(3) == 0 {
			// Teardown a previously admitted position (possibly twice, so
			// ErrUnknownFlow verdicts appear in both paths).
			script = append(script, wireOp{ref: admitPos[rng.Intn(len(admitPos))]})
			continue
		}
		op := wireOp{admit: true, cls: voiceIdx}
		switch rng.Intn(10) {
		case 0:
			op.cls = 99 // unknown class
		case 1:
			op.src, op.dst = 1<<31+5, 2 // index overflow → no route
		case 2:
			op.src, op.dst = 3, 3 // src == dst → no route
		default:
			rt := set.Route(rng.Intn(set.Len()) % 3) // few routes → capacity rejects
			op.src, op.dst = uint32(rt.Src), uint32(rt.Dst)
		}
		admitPos = append(admitPos, len(script))
		script = append(script, op)
	}

	// The sequential twin: per-request calls, recording one status per
	// op. Teardowns resolve refs through the twin's own IDs.
	seqStatus := make([]uint32, len(script))
	seqIDs := make([]uint64, len(script))
	for i, op := range script {
		if op.admit {
			name := ""
			if int(op.cls) < len(classes) {
				name = classes[op.cls]
			}
			id, err := seqCtrl.Admit(name, indexOf(op.src), indexOf(op.dst))
			seqStatus[i] = statusOf(err)
			seqIDs[i] = uint64(id)
		} else {
			seqStatus[i] = statusOf(seqCtrl.Teardown(admission.FlowID(seqIDs[op.ref])))
			seqIDs[op.ref] = 0 // torn down; a second ref is unknown on both paths
		}
	}

	// The wire path: rounds of pipelined frames written in ONE socket
	// write, so the server's read loop sees them together and coalesces.
	// Teardown refs need IDs from earlier rounds, so the script splits
	// wherever a teardown references the current round.
	wireStatus := make([]uint32, len(script))
	wireIDs := make([]uint64, len(script))
	start := 0
	for start < len(script) {
		end, roundStart := start, start
		for end < len(script) && (script[end].admit || script[end].ref < roundStart) {
			end++
		}
		if end == start {
			end++ // lone teardown referencing this round's admit: flush it alone
		}
		var burst []byte
		for i := start; i < end; i++ {
			op := script[i]
			if op.admit {
				body := make([]byte, 0, admitReqUnitLen)
				body = binary.LittleEndian.AppendUint32(body, op.cls)
				body = binary.LittleEndian.AppendUint32(body, op.src)
				body = binary.LittleEndian.AppendUint32(body, op.dst)
				burst = AppendFrame(burst, FrameAdmit, 0, 1, uint64(i+10), body)
			} else {
				body := binary.LittleEndian.AppendUint64(nil, wireIDs[op.ref])
				burst = AppendFrame(burst, FrameTeardown, 0, 1, uint64(i+10), body)
			}
		}
		if _, err := rc.nc.Write(burst); err != nil {
			t.Fatal(err)
		}
		for i := start; i < end; i++ {
			f := rc.readFrame()
			if f.Seq != uint64(i+10) || f.Flags&FlagError != 0 {
				t.Fatalf("op %d: response %+v", i, f)
			}
			if script[i].admit {
				if f.Type != FrameAdmit || len(f.Body) != admitRespUnitLen {
					t.Fatalf("op %d: admit response %+v", i, f)
				}
				wireIDs[i] = binary.LittleEndian.Uint64(f.Body)
				wireStatus[i] = binary.LittleEndian.Uint32(f.Body[8:])
			} else {
				if f.Type != FrameTeardown || len(f.Body) != 1 {
					t.Fatalf("op %d: teardown response %+v", i, f)
				}
				wireStatus[i] = uint32(f.Body[0])
				wireIDs[script[i].ref] = 0
			}
		}
		start = end
	}

	mismatches := 0
	for i := range script {
		if wireStatus[i] != seqStatus[i] {
			t.Errorf("op %d (%+v): wire status %d, sequential %d", i, script[i], wireStatus[i], seqStatus[i])
			if mismatches++; mismatches > 10 {
				break
			}
		}
	}
	if wa, sa := wireCtrl.Stats().Active, seqCtrl.Stats().Active; wa != sa {
		t.Errorf("active flows diverged: wire %d, sequential %d", wa, sa)
	}
	rejected := 0
	for _, st := range wireStatus {
		if st != StatusOK {
			rejected++
		}
	}
	if rejected == 0 || rejected == len(script) {
		t.Fatalf("degenerate script: %d/%d rejected — property not exercised", rejected, len(script))
	}
}

// TestTornFrameDisconnect: a peer that dies mid-frame is cleaned up
// without the partial frame being acted on.
func TestTornFrameDisconnect(t *testing.T) {
	ctrl := newTestController(t)
	srv, addr := startServer(t, ctrl, Options{})
	rc := rawDial(t, addr)

	body := make([]byte, 0, admitReqUnitLen)
	body = binary.LittleEndian.AppendUint32(body, 0)
	body = binary.LittleEndian.AppendUint32(body, 0)
	body = binary.LittleEndian.AppendUint32(body, 1)
	frame := AppendFrame(nil, FrameAdmit, 0, 1, 2, body)
	if _, err := rc.nc.Write(frame[:len(frame)-5]); err != nil {
		t.Fatal(err)
	}
	rc.nc.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.ConnCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("torn connection not reaped: %d live", srv.ConnCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if active := ctrl.Stats().Active; active != 0 {
		t.Fatalf("torn frame admitted %d flows", active)
	}
}

// TestSlowReaderBackpressure: a peer that pipelines requests but never
// reads responses is disconnected at the write-queue bound instead of
// growing server memory without limit.
func TestSlowReaderBackpressure(t *testing.T) {
	ctrl := newTestController(t)
	srv, addr := startServer(t, ctrl, Options{
		MaxWriteBuffer: 1, // clamps to the 64 KiB floor
		WriteTimeout:   500 * time.Millisecond,
	})
	rc := rawDial(t, addr)

	// Full-size admit frames of unknown-class units: each 48 KiB request
	// produces a 48 KiB response the test never reads.
	body := make([]byte, 0, MaxFrameOps*admitReqUnitLen)
	for i := 0; i < MaxFrameOps; i++ {
		body = binary.LittleEndian.AppendUint32(body, 99)
		body = binary.LittleEndian.AppendUint32(body, 0)
		body = binary.LittleEndian.AppendUint32(body, 1)
	}
	frame := AppendFrame(nil, FrameAdmit, 0, MaxFrameOps, 5, body)
	rc.nc.SetWriteDeadline(time.Now().Add(10 * time.Second))
	disconnected := false
	for i := 0; i < 512; i++ { // ≤ 24 MiB of un-read responses if unbounded
		if _, err := rc.nc.Write(frame); err != nil {
			disconnected = true
			break
		}
	}
	if !disconnected {
		// The writes all landed in kernel buffers; the disconnect still
		// must surface as EOF/reset on a read.
		rc.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
		buf := make([]byte, 1)
		for {
			if _, err := rc.nc.Read(buf); err != nil {
				break
			}
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.ConnCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("slow reader not disconnected: %d live", srv.ConnCount())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGracefulDrain: Shutdown answers every frame already on the wire
// before closing, and refuses new connections afterwards.
func TestGracefulDrain(t *testing.T) {
	ctrl := newTestController(t)
	set, err := ctrl.ClassRoutes("voice")
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, ctrl, Options{DrainGrace: 500 * time.Millisecond})
	rc := rawDial(t, addr)

	const inflight = 8
	var burst []byte
	for i := 0; i < inflight; i++ {
		rt := set.Route(i % set.Len())
		body := make([]byte, 0, admitReqUnitLen)
		body = binary.LittleEndian.AppendUint32(body, 0)
		body = binary.LittleEndian.AppendUint32(body, uint32(rt.Src))
		body = binary.LittleEndian.AppendUint32(body, uint32(rt.Dst))
		burst = AppendFrame(burst, FrameAdmit, 0, 1, uint64(100+i), body)
	}
	if _, err := rc.nc.Write(burst); err != nil {
		t.Fatal(err)
	}
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Every in-flight frame is answered despite the concurrent drain.
	for i := 0; i < inflight; i++ {
		f := rc.readFrame()
		if f.Type != FrameAdmit || f.Flags&FlagError != 0 {
			t.Fatalf("frame %d: %+v", i, f)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestObserverTelemetry: the registry sink observes connections,
// frames and coalesce depth.
func TestObserverTelemetry(t *testing.T) {
	ctrl := newTestController(t)
	reg := telemetry.NewRegistry()
	sink := telemetry.NewRegistrySink(reg, telemetry.NewRing(16))
	_, addr := startServer(t, ctrl, Options{Observer: sink})
	rc := rawDial(t, addr)

	// Three pipelined single-admit frames in one write: one coalesced
	// batch of 3 ops (or several batches summing to 3 if reads split).
	set, err := ctrl.ClassRoutes("voice")
	if err != nil {
		t.Fatal(err)
	}
	rt := set.Route(0)
	var burst []byte
	for i := 0; i < 3; i++ {
		body := make([]byte, 0, admitReqUnitLen)
		body = binary.LittleEndian.AppendUint32(body, 0)
		body = binary.LittleEndian.AppendUint32(body, uint32(rt.Src))
		body = binary.LittleEndian.AppendUint32(body, uint32(rt.Dst))
		burst = AppendFrame(burst, FrameAdmit, 0, 1, uint64(i+1), body)
	}
	if _, err := rc.nc.Write(burst); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rc.readFrame()
	}
	if got := sink.WireConns.Value(); got < 1 {
		t.Fatalf("connections counter %d", got)
	}
	if got := sink.WireFramesRx.Value(); got < 4 { // hello + 3 admits
		t.Fatalf("frames rx %d", got)
	}
	if got := sink.WireFramesTx.Value(); got < 4 {
		t.Fatalf("frames tx %d", got)
	}
	if got := sink.WireBatchOps.Value(); got != 3 {
		t.Fatalf("coalesced ops %d, want 3", got)
	}
	if b := sink.WireBatches.Value(); b < 1 || b > 3 {
		t.Fatalf("coalesced batches %d", b)
	}
}
