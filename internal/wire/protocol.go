// Package wire is the daemon's binary transport: a length-prefixed,
// CRC32C-checked framed protocol over TCP that carries admission
// traffic at a fraction of the HTTP path's per-request cost, plus the
// pipelined client that drives it.
//
// A connection opens with an 8-byte versioned magic from the client,
// then exchanges frames in both directions. Frames reuse the WAL's
// framing discipline exactly — little-endian u32 length, u32
// CRC32C(payload), payload — so torn and corrupt frames are detected
// the same way a torn log tail is, and the packed per-operation units
// inside admit/teardown frames mirror the WAL's packed batch record
// encodings (a teardown unit IS the WAL teardown-batch unit):
//
//	u32 payloadLen | u32 CRC32C(payload) | payload
//	payload: u8 type | u8 flags | u16 count | u64 seq | body
//
// count is the number of packed units in the body for batch-shaped
// frames; seq correlates a response (FlagResp set) with its request,
// so a client may pipeline any number of frames and match answers out
// of order. Bodies by type:
//
//	hello     req: u32 proto version        resp: u32 version, count × {u8 len, name}
//	admit     req: count × {u32 class, u32 src, u32 dst}
//	          resp: count × {u64 id, u32 status}
//	teardown  req: count × {u64 id}         resp: count × {u8 status}
//	routes    req: u32 class (^0 = all)     resp: count × {u32 class, u32 src, u32 dst}
//	ping      req: empty                    resp: empty
//
// The server drains every complete frame a read pass delivers before
// answering any of them: consecutive runs of admit (or teardown)
// frames are coalesced into one Controller.AdmitBatch (TeardownBatch)
// call, so a pipelined connection amortizes syscall, scheduler and
// shard-lock cost across everything in flight while verdicts stay
// bit-identical to per-request processing (runs never reorder an admit
// past a teardown or vice versa).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"ubac/internal/admission"
)

// Magic is the connection preamble: protocol name plus version digit.
// A server that cannot speak the dialed version closes the connection
// at the preamble, before any frame is interpreted.
var Magic = [8]byte{'U', 'B', 'A', 'C', 'W', 'R', '0', '1'}

// ProtoVersion is carried in hello frames (and as the magic's trailing
// digits) so both ends agree before any admission traffic flows.
const ProtoVersion = 1

// Frame types. A response carries the request's type with FlagResp set.
const (
	FrameHello    = 0x01
	FrameAdmit    = 0x02
	FrameTeardown = 0x03
	FrameRoutes   = 0x04
	FramePing     = 0x05

	// Cluster frame types, dispatched to Options.Cluster when one is
	// configured (otherwise they are protocol errors, exactly like any
	// unknown type). Bodies are packed by internal/cluster; the wire
	// layer only defines the type space and unit sizes.
	//
	//	lease     req: u32 node, count × {u32 class, u32 route, u64 active, u64 budget, u64 want}
	//	          resp: u32 ttlMillis, count × {u32 class, u32 route, u64 grant}
	//	heartbeat req: u32 node                resp: u8 role, u32 authority, u64 epoch
	//	fetch     req: u64 seg, u64 off, u32 max
	//	          resp: u64 tailSeg, u64 tailOff, u8 eos, data
	//	          (tail fields are the authority's durable WAL tail, so a
	//	          follower computes replication lag from the same response
	//	          that ships it bytes; data starts at the requested offset)
	//	revoke    req: u32 node, count × {u32 class, u32 route, u64 amount}
	//	          resp: count × {u8 status}
	FrameLease     = 0x06
	FrameHeartbeat = 0x07
	FrameFetch     = 0x08
	FrameRevoke    = 0x09
)

// Frame flags.
const (
	// FlagResp marks a response frame.
	FlagResp = 0x01
	// FlagError marks a response whose body is a protocol-level error:
	// u32 status followed by a human-readable message. Per-operation
	// admission outcomes are NOT errors — they ride the normal response
	// units' status fields.
	FlagError = 0x02
	// FlagMore marks a chunked response continuation: more frames with
	// the same seq follow (used by routes responses whose unit count
	// exceeds MaxFrameOps).
	FlagMore = 0x04
)

// Frame geometry, shared with the WAL's framing constants.
const (
	// frameHeaderLen is the u32 length + u32 CRC prefix.
	frameHeaderLen = 8
	// payloadHeaderLen is the type/flags/count/seq header inside the
	// CRC-covered payload.
	payloadHeaderLen = 12
	// MaxPayload bounds one frame's payload; a length field beyond it is
	// corruption (or an attack), not an allocation request.
	MaxPayload = 1 << 20
	// MaxFrameOps bounds the unit count of one batch-shaped frame,
	// matching the HTTP batch endpoint's cap.
	MaxFrameOps = 4096
)

// Packed unit sizes.
const (
	admitReqUnitLen  = 12 // u32 class, u32 src, u32 dst
	admitRespUnitLen = 12 // u64 id, u32 status
	teardownUnitLen  = 8  // u64 id (the WAL teardown-batch unit)
	teardownRespLen  = 1  // u8 status
	routeUnitLen     = 12 // u32 class, u32 src, u32 dst

	// Cluster unit sizes, exported so internal/cluster packs bodies with
	// the same constants the server validates against.
	LeaseReqUnitLen  = 32 // u32 class, u32 route, u64 active, u64 budget, u64 want
	LeaseRespUnitLen = 16 // u32 class, u32 route, u64 grant
	RevokeReqUnitLen = 16 // u32 class, u32 route, u64 amount
	FetchReqLen      = 20 // u64 seg, u64 off, u32 max
	FetchRespHeadLen = 17 // u64 seg, u64 off, u8 eos
	HeartbeatRespLen = 13 // u8 role, u32 authority, u64 epoch
)

// Per-operation status codes carried in response units.
const (
	StatusOK            = 0
	StatusCapacity      = 1
	StatusNoRoute       = 2
	StatusUnknownClass  = 3
	StatusUnknownFlow   = 4
	StatusShuttingDown  = 5
	StatusPolicyRate    = 6
	StatusPolicyShed    = 7
	StatusPolicyReserve = 8
	StatusTooManyFlows  = 9
	StatusInternal      = 10
)

// castagnoli is the same CRC32C table the WAL frames with.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode errors.
var (
	// ErrShort means the buffer ends before the frame does: read more
	// bytes and retry. A stream that ends mid-frame is torn.
	ErrShort = errors.New("wire: incomplete frame")
	// ErrFrame means the bytes can never become a valid frame — bad
	// length, bad CRC — and the connection carrying them is broken.
	ErrFrame = errors.New("wire: malformed frame")
)

// Frame is one decoded frame. Body aliases the decode input and is
// only valid until the caller recycles that buffer.
type Frame struct {
	Type  byte
	Flags byte
	Count uint16
	Seq   uint64
	Body  []byte
}

// AppendFrame encodes one frame onto dst and returns the extended
// slice. It is the only encoder — clients, the server and the golden
// vectors all share it.
func AppendFrame(dst []byte, typ, flags byte, count uint16, seq uint64, body []byte) []byte {
	payloadLen := payloadHeaderLen + len(body)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payloadLen))
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0) // CRC patched below
	dst = append(dst, typ, flags)
	dst = binary.LittleEndian.AppendUint16(dst, count)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = append(dst, body...)
	crc := crc32.Checksum(dst[base+4:], castagnoli)
	binary.LittleEndian.PutUint32(dst[base:], crc)
	return dst
}

// DecodeFrame parses the frame at the head of b. On success it returns
// the frame (Body aliasing b) and the bytes consumed. ErrShort means b
// holds a frame prefix and more bytes are needed; consumed is 0 and
// the caller should read more. Any other error means b can never parse
// and the stream is corrupt. DecodeFrame is total over arbitrary
// input: it never panics and never allocates beyond the returned
// struct (fuzz-tested by FuzzDecodeFrame).
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < frameHeaderLen {
		return Frame{}, 0, ErrShort
	}
	payloadLen := binary.LittleEndian.Uint32(b)
	if payloadLen < payloadHeaderLen {
		return Frame{}, 0, fmt.Errorf("%w: payload length %d below header %d", ErrFrame, payloadLen, payloadHeaderLen)
	}
	if payloadLen > MaxPayload {
		return Frame{}, 0, fmt.Errorf("%w: payload length %d exceeds %d", ErrFrame, payloadLen, MaxPayload)
	}
	total := frameHeaderLen + int(payloadLen)
	if len(b) < total {
		return Frame{}, 0, ErrShort
	}
	crc := binary.LittleEndian.Uint32(b[4:])
	payload := b[frameHeaderLen:total]
	if crc32.Checksum(payload, castagnoli) != crc {
		return Frame{}, 0, fmt.Errorf("%w: CRC mismatch", ErrFrame)
	}
	return Frame{
		Type:  payload[0],
		Flags: payload[1],
		Count: binary.LittleEndian.Uint16(payload[2:]),
		Seq:   binary.LittleEndian.Uint64(payload[4:]),
		Body:  payload[payloadHeaderLen:],
	}, total, nil
}

// statusOf maps an admission sentinel to its wire status code.
func statusOf(err error) uint32 {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, admission.ErrCapacity):
		return StatusCapacity
	case errors.Is(err, admission.ErrNoRoute):
		return StatusNoRoute
	case errors.Is(err, admission.ErrUnknownClass):
		return StatusUnknownClass
	case errors.Is(err, admission.ErrUnknownFlow):
		return StatusUnknownFlow
	case errors.Is(err, admission.ErrShuttingDown):
		return StatusShuttingDown
	case errors.Is(err, admission.ErrPolicyRate):
		return StatusPolicyRate
	case errors.Is(err, admission.ErrPolicyShed):
		return StatusPolicyShed
	case errors.Is(err, admission.ErrPolicyReserve):
		return StatusPolicyReserve
	case errors.Is(err, admission.ErrTooManyFlows):
		return StatusTooManyFlows
	default:
		return StatusInternal
	}
}

// StatusErr maps a wire status code back to the admission sentinel the
// server derived it from, so wire clients surface the same error
// values an in-process caller would see. StatusOK maps to nil.
func StatusErr(status uint32) error {
	switch status {
	case StatusOK:
		return nil
	case StatusCapacity:
		return admission.ErrCapacity
	case StatusNoRoute:
		return admission.ErrNoRoute
	case StatusUnknownClass:
		return admission.ErrUnknownClass
	case StatusUnknownFlow:
		return admission.ErrUnknownFlow
	case StatusShuttingDown:
		return admission.ErrShuttingDown
	case StatusPolicyRate:
		return admission.ErrPolicyRate
	case StatusPolicyShed:
		return admission.ErrPolicyShed
	case StatusPolicyReserve:
		return admission.ErrPolicyReserve
	case StatusTooManyFlows:
		return admission.ErrTooManyFlows
	default:
		return fmt.Errorf("wire: status %d", status)
	}
}

// StatusRejected reports whether a status is an admission rejection —
// a verdict, as opposed to a transport or server failure. Load
// generators count these as rejects, not errors.
func StatusRejected(status uint32) bool {
	switch status {
	case StatusCapacity, StatusNoRoute, StatusUnknownClass,
		StatusPolicyRate, StatusPolicyShed, StatusPolicyReserve:
		return true
	}
	return false
}

// RoutePair is one admittable (class, src, dst) tuple from a routes
// response; indices are the daemon's configured class and router
// indices.
type RoutePair struct {
	Class    uint32
	Src, Dst uint32
}

// AllClasses is the routes-request class wildcard.
const AllClasses = math.MaxUint32

// appendErrorFrame encodes a protocol-error response for seq.
func appendErrorFrame(dst []byte, typ byte, seq uint64, status uint32, msg string) []byte {
	body := make([]byte, 0, 4+len(msg))
	body = binary.LittleEndian.AppendUint32(body, status)
	body = append(body, msg...)
	return AppendFrame(dst, typ, FlagResp|FlagError, 0, seq, body)
}
