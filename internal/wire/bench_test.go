package wire

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
)

// benchFrame builds one admit frame with n units.
func benchFrame(n int) []byte {
	body := make([]byte, 0, n*admitReqUnitLen)
	for i := 0; i < n; i++ {
		body = binary.LittleEndian.AppendUint32(body, 0)
		body = binary.LittleEndian.AppendUint32(body, uint32(i%8))
		body = binary.LittleEndian.AppendUint32(body, uint32(i%8+1))
	}
	return AppendFrame(nil, FrameAdmit, 0, uint16(n), 1, body)
}

// BenchmarkAppendFrame is the encode hot path: one 32-unit admit
// frame into a reused buffer, the shape a pipelined client emits.
func BenchmarkAppendFrame(b *testing.B) {
	body := benchFrame(32)[frameHeaderLen+payloadHeaderLen:]
	buf := make([]byte, 0, 1024)
	b.SetBytes(int64(frameHeaderLen + payloadHeaderLen + len(body)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], FrameAdmit, 0, 32, uint64(i), body)
	}
}

// BenchmarkDecodeFrame is the decode hot path: CRC verify + header
// parse of the same 32-unit frame.
func BenchmarkDecodeFrame(b *testing.B) {
	frame := benchFrame(32)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeFrameSingleton decodes the smallest real frame, the
// per-message floor of the protocol.
func BenchmarkDecodeFrameSingleton(b *testing.B) {
	frame := benchFrame(1)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireLoopback measures end-to-end admits/s over a real TCP
// loopback: pipelined client goroutines against a served controller,
// admit+teardown per op so capacity never fills. Informational — the
// committed baseline gates only the CPU-bound encode/decode benches,
// because socket throughput on shared CI runners is weather.
func BenchmarkWireLoopback(b *testing.B) {
	for _, batch := range []int{1, 32} {
		b.Run(map[int]string{1: "batch=1", 32: "batch=32"}[batch], func(b *testing.B) {
			ctrl := newTestController(b)
			_, addr := startServer(b, ctrl, Options{})
			c, err := Dial(ClientOptions{Addr: addr, Conns: 4, Pipeline: 64})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			voice, _ := c.ClassIndex("voice")
			routes, err := c.Routes(voice)
			if err != nil || len(routes) == 0 {
				b.Fatalf("routes: %v", err)
			}
			var ops atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			workers := 32
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					reqs := make([]AdmitReq, batch)
					var res []AdmitResult
					var ids []uint64
					var sts []uint32
					rt := routes[w%len(routes)]
					for i := range reqs {
						reqs[i] = AdmitReq{Class: voice, Src: rt.Src, Dst: rt.Dst}
					}
					for ops.Add(int64(batch)) <= int64(b.N) {
						res, err = c.Admit(reqs, res[:0])
						if err != nil {
							b.Error(err)
							return
						}
						ids = ids[:0]
						for _, r := range res {
							if r.Status == StatusOK {
								ids = append(ids, r.ID)
							}
						}
						if len(ids) > 0 {
							if sts, err = c.Teardown(ids, sts[:0]); err != nil {
								b.Error(err)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}
