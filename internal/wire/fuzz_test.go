package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeFrame is the decoder's totality proof: for arbitrary
// input it must classify (valid / ErrShort / ErrFrame) without
// panicking, and every valid decode must re-encode byte-exact.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, FrameHello, 0, 0, 1, []byte{1, 0, 0, 0}))
	f.Add(AppendFrame(nil, FrameAdmit, FlagResp, 2, 7, make([]byte, 2*admitRespUnitLen)))
	f.Add(AppendFrame(nil, FramePing, 0, 0, 0xdeadbeef, nil))
	// Torn: a valid frame cut mid-payload.
	whole := AppendFrame(nil, FrameTeardown, 0, 1, 8, []byte{42, 0, 0, 0, 0, 0, 0, 0})
	f.Add(whole[:len(whole)-3])
	// Oversized length field.
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	// Corrupt CRC.
	bad := AppendFrame(nil, FrameAdmit, 0, 1, 7, []byte{1, 2, 3, 4})
	bad[5] ^= 0x80
	f.Add(bad)
	// Two frames back to back.
	f.Add(AppendFrame(AppendFrame(nil, FramePing, 0, 0, 1, nil), FramePing, 0, 0, 2, nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		switch {
		case err == nil:
			if n < frameHeaderLen+payloadHeaderLen || n > len(data) {
				t.Fatalf("consumed %d of %d", n, len(data))
			}
			// Differential round trip: re-encoding the decoded frame must
			// reproduce the consumed bytes exactly.
			re := AppendFrame(nil, fr.Type, fr.Flags, fr.Count, fr.Seq, fr.Body)
			if !bytes.Equal(re, data[:n]) {
				t.Fatalf("round trip drifted:\n in  %x\n out %x", data[:n], re)
			}
		case errors.Is(err, ErrShort):
			if n != 0 {
				t.Fatalf("ErrShort consumed %d", n)
			}
			// A short frame must become decodable when its missing bytes
			// arrive — unless the header itself is invalid, which DecodeFrame
			// would have rejected as ErrFrame instead.
		case errors.Is(err, ErrFrame):
			if n != 0 {
				t.Fatalf("ErrFrame consumed %d", n)
			}
		default:
			t.Fatalf("unexpected error class: %v", err)
		}
	})
}
