package wire

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ubac/internal/admission"
)

var update = flag.Bool("update", false, "rewrite testdata golden vectors")

func TestFrameRoundTrip(t *testing.T) {
	bodies := [][]byte{nil, {}, {0x01}, bytes.Repeat([]byte{0xab}, 4096), make([]byte, MaxPayload-payloadHeaderLen)}
	for _, body := range bodies {
		buf := AppendFrame(nil, FrameAdmit, FlagResp, 3, 0x1122334455667788, body)
		f, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("decode %d-byte body: %v", len(body), err)
		}
		if n != len(buf) {
			t.Fatalf("consumed %d of %d", n, len(buf))
		}
		if f.Type != FrameAdmit || f.Flags != FlagResp || f.Count != 3 || f.Seq != 0x1122334455667788 {
			t.Fatalf("header mismatch: %+v", f)
		}
		if !bytes.Equal(f.Body, body) {
			t.Fatalf("body mismatch for %d bytes", len(body))
		}
	}
}

func TestDecodeFrameShort(t *testing.T) {
	full := AppendFrame(nil, FramePing, 0, 0, 42, []byte("abc"))
	for cut := 0; cut < len(full); cut++ {
		_, n, err := DecodeFrame(full[:cut])
		if !errors.Is(err, ErrShort) {
			t.Fatalf("prefix %d/%d: want ErrShort, got %v", cut, len(full), err)
		}
		if n != 0 {
			t.Fatalf("prefix %d: consumed %d", cut, n)
		}
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	// Oversized length field: corruption, not an allocation request.
	huge := make([]byte, frameHeaderLen)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := DecodeFrame(huge); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized length: want ErrFrame, got %v", err)
	}
	// Length below the payload header minimum.
	tiny := make([]byte, frameHeaderLen)
	tiny[0] = payloadHeaderLen - 1
	if _, _, err := DecodeFrame(tiny); !errors.Is(err, ErrFrame) {
		t.Fatalf("undersized length: want ErrFrame, got %v", err)
	}
	// Flipped payload bit: CRC catches it.
	full := AppendFrame(nil, FrameAdmit, 0, 1, 7, []byte{1, 2, 3, 4})
	full[len(full)-1] ^= 0x01
	if _, _, err := DecodeFrame(full); !errors.Is(err, ErrFrame) {
		t.Fatalf("corrupt payload: want ErrFrame, got %v", err)
	}
	// Flipped CRC field.
	full = AppendFrame(nil, FrameAdmit, 0, 1, 7, []byte{1, 2, 3, 4})
	full[5] ^= 0x80
	if _, _, err := DecodeFrame(full); !errors.Is(err, ErrFrame) {
		t.Fatalf("corrupt CRC: want ErrFrame, got %v", err)
	}
}

func TestStatusMappingBijective(t *testing.T) {
	sentinels := []error{
		nil, admission.ErrCapacity, admission.ErrNoRoute, admission.ErrUnknownClass,
		admission.ErrUnknownFlow, admission.ErrShuttingDown, admission.ErrPolicyRate,
		admission.ErrPolicyShed, admission.ErrPolicyReserve, admission.ErrTooManyFlows,
	}
	seen := map[uint32]bool{}
	for _, sent := range sentinels {
		st := statusOf(sent)
		if seen[st] {
			t.Fatalf("status %d mapped twice", st)
		}
		seen[st] = true
		back := StatusErr(st)
		if sent == nil {
			if back != nil {
				t.Fatalf("StatusOK mapped to %v", back)
			}
			continue
		}
		if !errors.Is(back, sent) {
			t.Fatalf("status %d: %v round-tripped to %v", st, sent, back)
		}
	}
	if statusOf(errors.New("surprise")) != StatusInternal {
		t.Fatal("unknown errors must map to StatusInternal")
	}
	if StatusErr(StatusInternal) == nil || StatusErr(999) == nil {
		t.Fatal("internal / unknown statuses must map to a non-nil error")
	}
}

// goldenVector pins one frame's exact byte layout. The committed
// vectors are the wire format's compatibility contract: a change that
// fails this test breaks every peer speaking version 1.
type goldenVector struct {
	Name  string `json:"name"`
	Type  byte   `json:"type"`
	Flags byte   `json:"flags"`
	Count uint16 `json:"count"`
	Seq   uint64 `json:"seq"`
	Body  string `json:"body_hex"`
	Frame string `json:"frame_hex"`
}

func goldenInputs() []goldenVector {
	return []goldenVector{
		{Name: "hello_req", Type: FrameHello, Count: 0, Seq: 1, Body: "01000000"},
		{Name: "hello_resp_two_classes", Type: FrameHello, Flags: FlagResp, Count: 2, Seq: 1,
			Body: "01000000" + "05" + hex.EncodeToString([]byte("voice")) + "0b" + hex.EncodeToString([]byte("best-effort"))},
		{Name: "admit_req_two_units", Type: FrameAdmit, Count: 2, Seq: 7,
			Body: "00000000" + "01000000" + "02000000" + "00000000" + "03000000" + "04000000"},
		{Name: "admit_resp_ok_and_capacity", Type: FrameAdmit, Flags: FlagResp, Count: 2, Seq: 7,
			Body: "0100000000000000" + "00000000" + "0000000000000000" + "01000000"},
		{Name: "teardown_req_one_id", Type: FrameTeardown, Count: 1, Seq: 8, Body: "2a00000000000000"},
		{Name: "teardown_resp_ok", Type: FrameTeardown, Flags: FlagResp, Count: 1, Seq: 8, Body: "00"},
		{Name: "routes_req_all", Type: FrameRoutes, Count: 0, Seq: 9, Body: "ffffffff"},
		{Name: "routes_resp_chunk", Type: FrameRoutes, Flags: FlagResp | FlagMore, Count: 1, Seq: 9,
			Body: "00000000" + "05000000" + "06000000"},
		{Name: "ping", Type: FramePing, Count: 0, Seq: 0xdeadbeef},
		{Name: "error_shutting_down", Type: FrameAdmit, Flags: FlagResp | FlagError, Count: 0, Seq: 10,
			Body: "05000000" + hex.EncodeToString([]byte("drain"))},
	}
}

func TestGoldenVectors(t *testing.T) {
	path := filepath.Join("testdata", "golden_frames.json")
	if *update {
		vecs := goldenInputs()
		for i := range vecs {
			body, err := hex.DecodeString(vecs[i].Body)
			if err != nil {
				t.Fatal(err)
			}
			vecs[i].Frame = hex.EncodeToString(AppendFrame(nil, vecs[i].Type, vecs[i].Flags, vecs[i].Count, vecs[i].Seq, body))
		}
		data, err := json.MarshalIndent(vecs, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden vectors missing (run with -update to regenerate): %v", err)
	}
	var vecs []goldenVector
	if err := json.Unmarshal(data, &vecs); err != nil {
		t.Fatal(err)
	}
	if len(vecs) != len(goldenInputs()) {
		t.Fatalf("testdata has %d vectors, test defines %d", len(vecs), len(goldenInputs()))
	}
	for _, v := range vecs {
		body, err := hex.DecodeString(v.Body)
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		want, err := hex.DecodeString(v.Frame)
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		got := AppendFrame(nil, v.Type, v.Flags, v.Count, v.Seq, body)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: encoding drifted\n got %x\nwant %x", v.Name, got, want)
		}
		f, n, err := DecodeFrame(want)
		if err != nil || n != len(want) {
			t.Errorf("%s: decode: n=%d err=%v", v.Name, n, err)
			continue
		}
		if f.Type != v.Type || f.Flags != v.Flags || f.Count != v.Count || f.Seq != v.Seq || !bytes.Equal(f.Body, body) {
			t.Errorf("%s: decoded %+v does not match vector", v.Name, f)
		}
	}
}
