package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ClientOptions tunes Dial.
type ClientOptions struct {
	// Addr is the daemon's wire listener, host:port.
	Addr string
	// Conns is how many TCP connections to open (default 1). Calls are
	// spread round-robin; more connections mean more server-side
	// read/write loop parallelism.
	Conns int
	// Pipeline bounds outstanding frames per connection (default 32).
	// Callers beyond the bound block — that is the client-side
	// backpressure matching the server's bounded write queue.
	Pipeline int
	// DialTimeout bounds connection + handshake (default 5s).
	DialTimeout time.Duration
	// Timeout bounds one round trip (default 10s).
	Timeout time.Duration
	// Reconnect re-establishes a dropped connection on the next call
	// that lands on it, with capped exponential backoff between failed
	// dial attempts. The call that observed the drop still fails (the
	// client cannot know whether the request landed); the connection
	// heals underneath for subsequent calls. Off by default: a
	// non-reconnecting client fails fast forever once a connection dies,
	// which is the right shape for tests and one-shot tools.
	Reconnect bool
	// ReconnectMin / ReconnectMax bound the dial backoff (defaults 50ms
	// and 2s). Each failed dial doubles the wait, jittered ±50% so a
	// fleet of clients does not retry in lockstep.
	ReconnectMin time.Duration
	ReconnectMax time.Duration
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Conns <= 0 {
		o.Conns = 1
	}
	if o.Pipeline <= 0 {
		o.Pipeline = 32
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.ReconnectMin <= 0 {
		o.ReconnectMin = 50 * time.Millisecond
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = 2 * time.Second
	}
	if o.ReconnectMax < o.ReconnectMin {
		o.ReconnectMax = o.ReconnectMin
	}
	return o
}

// AdmitReq is one admission request unit on the wire: the daemon's
// class index and router indices (discovered via Classes/Routes).
type AdmitReq struct {
	Class    uint32
	Src, Dst uint32
}

// AdmitResult is one admit outcome: ID is valid iff Status is
// StatusOK. Err() maps Status back to the admission sentinels.
type AdmitResult struct {
	ID     uint64
	Status uint32
}

// Err returns the admission sentinel for the result's status.
func (r AdmitResult) Err() error { return StatusErr(r.Status) }

// Client is a pipelined wire-protocol client: any number of
// goroutines may call it concurrently; each call is one frame on one
// of the client's connections, correlated back by sequence number, so
// concurrent callers on a shared connection ARE the pipeline the
// server coalesces.
type Client struct {
	opts    ClientOptions
	conns   []*connSlot
	next    atomic.Uint64
	classes []string
	closed  atomic.Bool
}

// connSlot is one connection's lifecycle: the live conn, and — when
// Reconnect is on — the backoff state that gates redial attempts after
// it drops. Slots redial lazily, on the first call that lands on them
// past the backoff deadline, so an idle client costs nothing.
type connSlot struct {
	mu       sync.Mutex
	cc       *clientConn // nil before the first successful (re)dial
	nextDial time.Time   // earliest permitted redial
	backoff  time.Duration
	rng      uint64 // xorshift state for dial jitter
}

// Dial connects, handshakes every connection and learns the daemon's
// class table.
func Dial(opts ClientOptions) (*Client, error) {
	o := opts.withDefaults()
	c := &Client{opts: o}
	for i := 0; i < o.Conns; i++ {
		cc, classes, err := dialConn(o)
		if err != nil {
			c.Close()
			return nil, err
		}
		if i == 0 {
			c.classes = classes
		}
		c.conns = append(c.conns, &connSlot{cc: cc, rng: uint64(2*i + 1)})
	}
	return c, nil
}

// Classes returns the daemon's class names in wire index order.
func (c *Client) Classes() []string { return c.classes }

// ClassIndex resolves a class name to its wire index.
func (c *Client) ClassIndex(name string) (uint32, bool) {
	for i, n := range c.classes {
		if n == name {
			return uint32(i), true
		}
	}
	return 0, false
}

// Close tears down every connection; in-flight calls fail and no
// further redials happen.
func (c *Client) Close() error {
	c.closed.Store(true)
	var first error
	for _, s := range c.conns {
		s.mu.Lock()
		cc := s.cc
		s.mu.Unlock()
		if cc == nil {
			continue
		}
		if err := cc.close(errClientClosed); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// conn picks a connection round-robin. A slot whose connection died is
// redialed in place when Reconnect is on and the slot's backoff has
// elapsed; otherwise the pick fails with the connection's close error
// (fast — no dial attempt inside the backoff window).
func (c *Client) conn() (*clientConn, error) {
	s := c.conns[c.next.Add(1)%uint64(len(c.conns))]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cc != nil && !s.cc.isClosed() {
		return s.cc, nil
	}
	if c.closed.Load() {
		return nil, errClientClosed
	}
	if !c.opts.Reconnect {
		if s.cc != nil {
			return s.cc, nil // roundTrip surfaces the stored close error
		}
		return nil, ErrConnClosed
	}
	now := time.Now()
	if now.Before(s.nextDial) {
		return nil, ErrConnClosed
	}
	cc, _, err := dialConn(c.opts)
	if err != nil {
		if s.backoff <= 0 {
			s.backoff = c.opts.ReconnectMin
		} else if s.backoff < c.opts.ReconnectMax {
			s.backoff *= 2
			if s.backoff > c.opts.ReconnectMax {
				s.backoff = c.opts.ReconnectMax
			}
		}
		s.nextDial = now.Add(s.jitter(s.backoff))
		return nil, fmt.Errorf("wire: redial %s: %w", c.opts.Addr, err)
	}
	if c.closed.Load() {
		// Close raced the redial; don't resurrect the client.
		cc.close(errClientClosed)
		return nil, errClientClosed
	}
	s.cc = cc
	s.backoff = 0
	s.nextDial = time.Time{}
	return cc, nil
}

// jitter spreads a backoff wait uniformly over [d/2, d] so clients
// that lost the same server do not redial in lockstep.
func (s *connSlot) jitter(d time.Duration) time.Duration {
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	return d/2 + time.Duration(s.rng%uint64(d/2+1))
}

// Admit sends one admit frame carrying every request and appends the
// per-request outcomes to res (reused when capacity allows).
func (c *Client) Admit(reqs []AdmitReq, res []AdmitResult) ([]AdmitResult, error) {
	if len(reqs) == 0 || len(reqs) > MaxFrameOps {
		return res[:0], fmt.Errorf("wire: admit count %d outside 1..%d", len(reqs), MaxFrameOps)
	}
	cc, err := c.conn()
	if err != nil {
		return res[:0], err
	}
	call, err := cc.roundTrip(FrameAdmit, uint16(len(reqs)), func(b []byte) []byte {
		for _, r := range reqs {
			b = binary.LittleEndian.AppendUint32(b, r.Class)
			b = binary.LittleEndian.AppendUint32(b, r.Src)
			b = binary.LittleEndian.AppendUint32(b, r.Dst)
		}
		return b
	}, c.opts.Timeout)
	if err != nil {
		return res[:0], err
	}
	defer putCall(call)
	body := call.body
	if len(body) != len(reqs)*admitRespUnitLen {
		return res[:0], fmt.Errorf("wire: admit response body %d bytes for %d requests", len(body), len(reqs))
	}
	res = res[:0]
	for off := 0; off < len(body); off += admitRespUnitLen {
		res = append(res, AdmitResult{
			ID:     binary.LittleEndian.Uint64(body[off:]),
			Status: binary.LittleEndian.Uint32(body[off+8:]),
		})
	}
	return res, nil
}

// Teardown sends one teardown frame and appends per-ID status codes to
// statuses (StatusOK or StatusUnknownFlow/StatusShuttingDown).
func (c *Client) Teardown(ids []uint64, statuses []uint32) ([]uint32, error) {
	if len(ids) == 0 || len(ids) > MaxFrameOps {
		return statuses[:0], fmt.Errorf("wire: teardown count %d outside 1..%d", len(ids), MaxFrameOps)
	}
	cc, err := c.conn()
	if err != nil {
		return statuses[:0], err
	}
	call, err := cc.roundTrip(FrameTeardown, uint16(len(ids)), func(b []byte) []byte {
		for _, id := range ids {
			b = binary.LittleEndian.AppendUint64(b, id)
		}
		return b
	}, c.opts.Timeout)
	if err != nil {
		return statuses[:0], err
	}
	defer putCall(call)
	body := call.body
	if len(body) != len(ids) {
		return statuses[:0], fmt.Errorf("wire: teardown response body %d bytes for %d ids", len(body), len(ids))
	}
	statuses = statuses[:0]
	for _, b := range body {
		statuses = append(statuses, uint32(b))
	}
	return statuses, nil
}

// Routes fetches the admittable (class, src, dst) tuples for one class
// index, or every class with AllClasses.
func (c *Client) Routes(class uint32) ([]RoutePair, error) {
	cc, err := c.conn()
	if err != nil {
		return nil, err
	}
	call, err := cc.roundTrip(FrameRoutes, 0, func(b []byte) []byte {
		return binary.LittleEndian.AppendUint32(b, class)
	}, c.opts.Timeout)
	if err != nil {
		return nil, err
	}
	defer putCall(call)
	body := call.body
	if len(body)%routeUnitLen != 0 {
		return nil, fmt.Errorf("wire: routes response body %d bytes not unit-aligned", len(body))
	}
	pairs := make([]RoutePair, 0, len(body)/routeUnitLen)
	for off := 0; off < len(body); off += routeUnitLen {
		pairs = append(pairs, RoutePair{
			Class: binary.LittleEndian.Uint32(body[off:]),
			Src:   binary.LittleEndian.Uint32(body[off+4:]),
			Dst:   binary.LittleEndian.Uint32(body[off+8:]),
		})
	}
	return pairs, nil
}

// Ping round-trips an empty frame — a health probe and drain test.
func (c *Client) Ping() error {
	cc, err := c.conn()
	if err != nil {
		return err
	}
	call, err := cc.roundTrip(FramePing, 0, nil, c.opts.Timeout)
	if err != nil {
		return err
	}
	putCall(call)
	return nil
}

// ClusterCall round-trips one cluster frame (lease, heartbeat, fetch,
// revoke) and returns a copy of the response body; layouts belong to
// internal/cluster. timeout <= 0 uses the client default.
func (c *Client) ClusterCall(typ byte, count uint16, body []byte, timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		timeout = c.opts.Timeout
	}
	cc, err := c.conn()
	if err != nil {
		return nil, err
	}
	call, err := cc.roundTrip(typ, count, func(b []byte) []byte {
		return append(b, body...)
	}, timeout)
	if err != nil {
		return nil, err
	}
	defer putCall(call)
	return append([]byte(nil), call.body...), nil
}

// Client-side errors.
var (
	errClientClosed = errors.New("wire: client closed")
	// ErrConnClosed is returned by calls whose connection died before
	// the response arrived.
	ErrConnClosed = errors.New("wire: connection closed")
	// ErrTimeout is returned by calls that waited past ClientOptions.Timeout.
	ErrTimeout = errors.New("wire: round-trip timeout")
)

// call is one in-flight request; body holds a copy of the response
// body (accumulated across FlagMore continuations).
type call struct {
	done chan struct{}
	body []byte
	err  error
}

var callPool = sync.Pool{New: func() any { return &call{done: make(chan struct{}, 1)} }}

func getCall() *call {
	cl := callPool.Get().(*call)
	cl.body = cl.body[:0]
	cl.err = nil
	// Drain a stale signal (a timed-out call abandoned before its
	// response landed).
	select {
	case <-cl.done:
	default:
	}
	return cl
}

func putCall(cl *call) { callPool.Put(cl) }

// clientConn is one handshaken connection with its response
// correlation table.
type clientConn struct {
	nc  net.Conn
	seq atomic.Uint64
	sem chan struct{}

	wmu     sync.Mutex
	wbuf    []byte
	bodyBuf []byte

	mu     sync.Mutex
	calls  map[uint64]*call
	closed bool
	err    error

	readerDone chan struct{}
}

// dialConn connects one TCP connection: magic preamble, hello
// exchange, reader started.
func dialConn(o ClientOptions) (*clientConn, []string, error) {
	nc, err := net.DialTimeout("tcp", o.Addr, o.DialTimeout)
	if err != nil {
		return nil, nil, err
	}
	cc := &clientConn{
		nc:         nc,
		sem:        make(chan struct{}, o.Pipeline),
		calls:      make(map[uint64]*call),
		readerDone: make(chan struct{}),
	}
	nc.SetDeadline(time.Now().Add(o.DialTimeout))
	if _, err := nc.Write(Magic[:]); err != nil {
		nc.Close()
		return nil, nil, err
	}
	nc.SetDeadline(time.Time{})
	go cc.readLoop()
	hello, err := cc.roundTrip(FrameHello, 0, func(b []byte) []byte {
		return binary.LittleEndian.AppendUint32(b, ProtoVersion)
	}, o.DialTimeout)
	if err != nil {
		cc.close(err)
		return nil, nil, fmt.Errorf("wire: handshake: %w", err)
	}
	defer putCall(hello)
	body := hello.body
	if len(body) < 4 || binary.LittleEndian.Uint32(body) != ProtoVersion {
		cc.close(ErrConnClosed)
		return nil, nil, fmt.Errorf("wire: handshake: server version mismatch")
	}
	classes, err := parseClassTable(body[4:])
	if err != nil {
		cc.close(ErrConnClosed)
		return nil, nil, err
	}
	return cc, classes, nil
}

// parseClassTable decodes the hello response's {u8 len, name} entries.
func parseClassTable(b []byte) ([]string, error) {
	var classes []string
	for len(b) > 0 {
		n := int(b[0])
		if len(b) < 1+n {
			return nil, fmt.Errorf("wire: truncated class table")
		}
		classes = append(classes, string(b[1:1+n]))
		b = b[1+n:]
	}
	return classes, nil
}

// roundTrip sends one frame (body appended by fill into a pooled
// buffer) and waits for its response. The pipeline semaphore is held
// for the round trip's duration.
func (cc *clientConn) roundTrip(typ byte, count uint16, fill func([]byte) []byte, timeout time.Duration) (*call, error) {
	cc.sem <- struct{}{}
	defer func() { <-cc.sem }()

	seq := cc.seq.Add(1)
	cl := getCall()
	cc.mu.Lock()
	if cc.closed {
		err := cc.err
		cc.mu.Unlock()
		putCall(cl)
		return nil, err
	}
	cc.calls[seq] = cl
	cc.mu.Unlock()

	cc.wmu.Lock()
	var body []byte
	if fill != nil {
		cc.bodyBuf = fill(cc.bodyBuf[:0])
		body = cc.bodyBuf
	}
	buf := AppendFrame(cc.wbuf[:0], typ, 0, count, seq, body)
	cc.wbuf = buf
	_, werr := cc.nc.Write(buf)
	cc.wmu.Unlock()
	if werr != nil {
		cc.forget(seq, cl)
		cc.close(werr)
		return nil, werr
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-cl.done:
		if cl.err != nil {
			err := cl.err
			putCall(cl)
			return nil, err
		}
		return cl, nil
	case <-timer.C:
		cc.forget(seq, cl)
		return nil, ErrTimeout
	}
}

// isClosed reports whether the connection has died.
func (cc *clientConn) isClosed() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.closed
}

// forget unregisters a call that will never complete normally.
func (cc *clientConn) forget(seq uint64, cl *call) {
	cc.mu.Lock()
	if cc.calls[seq] == cl {
		delete(cc.calls, seq)
	}
	cc.mu.Unlock()
}

// readLoop decodes response frames and completes their calls; on any
// connection error every pending call fails.
func (cc *clientConn) readLoop() {
	defer close(cc.readerDone)
	pending := make([]byte, 0, 64<<10)
	for {
		if len(pending) == cap(pending) {
			grown := make([]byte, len(pending), min2(2*cap(pending), MaxPayload+frameHeaderLen))
			copy(grown, pending)
			pending = grown
		}
		n, err := cc.nc.Read(pending[len(pending):cap(pending):cap(pending)])
		pending = pending[:len(pending)+n]
		consumed := 0
		for {
			f, fn, derr := DecodeFrame(pending[consumed:])
			if derr != nil {
				if errors.Is(derr, ErrShort) {
					break
				}
				cc.close(derr)
				return
			}
			consumed += fn
			cc.deliver(f)
		}
		if consumed > 0 {
			pending = pending[:copy(pending, pending[consumed:])]
		}
		if err != nil {
			cc.close(ErrConnClosed)
			return
		}
	}
}

// deliver routes one response frame to its waiting call.
func (cc *clientConn) deliver(f Frame) {
	more := f.Flags&FlagMore != 0
	cc.mu.Lock()
	cl := cc.calls[f.Seq]
	if cl != nil && !more {
		delete(cc.calls, f.Seq)
	}
	cc.mu.Unlock()
	if cl == nil {
		return // abandoned (timed out) call; drop the late response
	}
	if f.Flags&FlagError != 0 {
		if len(f.Body) >= 4 {
			status := binary.LittleEndian.Uint32(f.Body)
			cl.err = fmt.Errorf("wire: server error: %w (%s)", StatusErr(statusOrInternal(status)), f.Body[4:])
		} else {
			cl.err = errors.New("wire: malformed server error frame")
		}
		cl.done <- struct{}{}
		return
	}
	cl.body = append(cl.body, f.Body...)
	if !more {
		cl.done <- struct{}{}
	}
}

// statusOrInternal clamps unknown codes so StatusErr never returns nil
// for an error frame.
func statusOrInternal(status uint32) uint32 {
	if status == StatusOK {
		return StatusInternal
	}
	return status
}

// close fails every pending call and closes the socket. Idempotent;
// the first error wins.
func (cc *clientConn) close(err error) error {
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return nil
	}
	cc.closed = true
	cc.err = err
	pending := cc.calls
	cc.calls = make(map[uint64]*call)
	cc.mu.Unlock()
	cerr := cc.nc.Close()
	for _, cl := range pending {
		cl.err = err
		cl.done <- struct{}{}
	}
	return cerr
}
